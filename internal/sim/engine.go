package sim

import (
	"fmt"
)

// Event is a scheduled callback. It is returned by the Schedule family so
// callers can cancel pending work (for example a retransmit timer).
type Event struct {
	at Time
	// prio orders events scheduled for the same instant: lower fires
	// first, and PrioDefault — what the plain Schedule family assigns —
	// sorts last, leaving those events in the familiar FIFO (seq) order.
	// Explicit priorities exist for events whose same-instant order must
	// be a structural property of the scenario rather than an accident of
	// scheduling history: wire link deliveries on delayed cables use the
	// link's topology-assigned key here, which is what lets the sharded
	// runtime (internal/shard) replay cross-shard arrivals byte-exactly.
	prio   uint64
	seq    uint64 // tie-break: FIFO among events at the same (at, prio)
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// PrioDefault is the scheduling priority of the plain Schedule family:
// it sorts after every explicit priority, so same-instant events without
// one fire in FIFO order exactly as before priorities existed.
const PrioDefault = ^uint64(0)

// At returns the instant the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.cancel = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancel }

// Pending reports whether the event is still in the queue waiting to
// fire (a cancelled-but-unpopped event still counts as pending).
func (ev *Event) Pending() bool { return ev.index != -1 }

// The event queue is a 4-ary min-heap over (at, prio, seq): time first,
// then explicit priority, then insertion sequence. Events scheduled
// without a priority carry PrioDefault, so among themselves they fire in
// FIFO order — deterministic ordering is essential: experiment results
// must not depend on map or heap tie-breaking accidents. Explicit
// priorities order same-instant events by a structural key of the
// scenario (a delayed link's topology ordinal) instead of scheduling
// history, which is what makes a partitioned run (internal/shard)
// reproduce a single-engine run to the byte.
//
// The heap is hand-inlined rather than built on container/heap: that
// package moves every element through `any` and dispatches every
// comparison through an interface table, which costs real time on a path
// crossed once per scheduled event. Each heap entry additionally carries
// the event's instant inline, so the sift loops decide the common
// earlier/later case from contiguous slice memory and only dereference
// two scattered Events on an exact-instant tie — at fat-tree queue
// depths the pointer chase was the single hottest line in the whole
// simulator. The heap is 4-ary rather than binary: a pop's sift-down
// touches half the levels, and with 16-byte entries the four children it
// scans per level sit in a single cache line, so the extra compares are
// nearly free next to the misses they replace. The loops hole-shift: the
// moving entry stays in registers while the others shift into the hole,
// halving the stores of a swap-based sift.

// heapEntry is one queued event with its arrival instant denormalised
// alongside the pointer: the sift loops and the RunUntil horizon check
// read contiguous slice memory for the common earlier/later verdict and
// only dereference the Events on an exact-instant tie (broken by prio,
// then seq). The instant is authoritative while queued: Reprogram
// rewrites the Event's fields and then re-keys the entry via fix.
type heapEntry struct {
	at Time
	ev *Event
}

// entryKey builds ev's heap entry from its current sort key.
func entryKey(ev *Event) heapEntry {
	return heapEntry{at: ev.at, ev: ev}
}

// entryLess orders the heap: earlier instant first, then lower explicit
// priority, then FIFO by insertion sequence.
func entryLess(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	ea, eb := a.ev, b.ev
	if ea.prio != eb.prio {
		return ea.prio < eb.prio
	}
	return ea.seq < eb.seq
}

// push appends ev to the queue and sifts it up to its heap position.
func (e *Engine) push(ev *Event) {
	q := append(e.queue, entryKey(ev))
	i := len(q) - 1
	entry := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(&entry, &q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].ev.index = i
		i = parent
	}
	q[i] = entry
	entry.ev.index = i
	e.queue = q
}

// pop removes and returns the minimum event, marking it popped.
func (e *Engine) pop() *Event {
	q := e.queue
	min := q[0].ev
	min.index = -1
	n := len(q) - 1
	last := q[n]
	q[n].ev = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(last, 0)
	}
	return min
}

// siftDown places entry at heap index i and sinks it until no child is
// smaller.
func (e *Engine) siftDown(entry heapEntry, i int) {
	q := e.queue
	n := len(q)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if entryLess(&q[j], &q[m]) {
				m = j
			}
		}
		if !entryLess(&q[m], &entry) {
			break
		}
		q[i] = q[m]
		q[i].ev.index = i
		i = m
	}
	q[i] = entry
	entry.ev.index = i
}

// fix re-keys the entry holding ev (whose at/seq just changed) and
// re-establishes heap order: sift up first, and only if the entry did
// not move, down.
func (e *Engine) fix(ev *Event) {
	q := e.queue
	start := ev.index
	entry := entryKey(ev)
	i := start
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(&entry, &q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].ev.index = i
		i = parent
	}
	if i != start {
		q[i] = entry
		entry.ev.index = i
		return
	}
	e.siftDown(entry, i)
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not ready to use; construct one with NewEngine.
//
// Engine is deliberately not safe for concurrent use: OSNT's hardware
// pipelines are modelled as a causal sequence of events, and determinism is
// a design requirement (see DESIGN.md).
type Engine struct {
	now     Time
	queue   []heapEntry
	seq     uint64
	running bool
	fired   uint64
}

// NewEngine returns an engine with its clock at instant 0 and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far. Useful for
// workload accounting in benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// it would mean a component violated causality, which is always a bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, prio: PrioDefault, seq: e.seq, fn: fn}
	e.seq++
	e.push(ev)
	return ev
}

// SchedulePrio queues fn to run at instant at with an explicit
// same-instant priority: among events at one instant, lower prio fires
// first and PrioDefault fires last (in FIFO order). Wire links use a
// delayed cable's topology key here so simultaneous arrivals on
// different cables are served in a structural order rather than whatever
// order their delivery events happened to be armed in.
func (e *Engine) SchedulePrio(at Time, prio uint64, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, prio: prio, seq: e.seq, fn: fn}
	e.seq++
	e.push(ev)
	return ev
}

// ScheduleAfter queues fn to run d after the current instant. A negative d
// panics.
func (e *Engine) ScheduleAfter(d Duration, fn func()) *Event {
	return e.Schedule(e.now.Add(d), fn)
}

// Reschedule re-arms an event that has already fired (or been popped as
// cancelled), reusing its allocation and callback instead of building a
// fresh Event. This is the zero-allocation path for self-rescheduling
// work: a component that fires once per packet keeps a single Event alive
// for its whole lifetime rather than pushing one heap allocation per
// packet through the garbage collector. Rescheduling an event that is
// still queued panics — that would corrupt the heap.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	if ev.index != -1 {
		panic("sim: reschedule of an event still in the queue")
	}
	ev.at = at
	ev.prio = PrioDefault
	ev.seq = e.seq
	ev.cancel = false
	e.seq++
	e.push(ev)
}

// ReschedulePrio is Reschedule with an explicit same-instant priority,
// the reusable-event spelling of SchedulePrio.
func (e *Engine) ReschedulePrio(ev *Event, at Time, prio uint64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	if ev.index != -1 {
		panic("sim: reschedule of an event still in the queue")
	}
	ev.at = at
	ev.prio = prio
	ev.seq = e.seq
	ev.cancel = false
	e.seq++
	e.push(ev)
}

// RescheduleAfter re-arms a fired event d after the current instant.
func (e *Engine) RescheduleAfter(ev *Event, d Duration) {
	e.Reschedule(ev, e.now.Add(d))
}

// Reprogram moves an event to a new instant whether or not it is still
// queued: a pending event is re-keyed in place (heap.Fix, no pop/push
// churn) and a fired or cancelled-and-popped one is re-armed exactly like
// Reschedule. Either way the event takes a fresh sequence number, so it
// orders after everything already scheduled for the same instant — the
// same FIFO position a freshly scheduled event would get. Batch consumers
// use this to slide an in-flight completion event (a DMA drain, a
// retransmit timer) forward or backward without cancel/re-create pairs.
func (e *Engine) Reprogram(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reprogram at %v before now %v", at, e.now))
	}
	if ev.index == -1 {
		e.Reschedule(ev, at)
		return
	}
	ev.at = at
	ev.prio = PrioDefault
	ev.seq = e.seq
	ev.cancel = false
	e.seq++
	e.fix(ev)
}

// Step executes the next pending event, advancing the clock to its instant.
// It returns false when the queue is empty. Cancelled events are discarded
// without advancing the clock.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil executes events up to and including instant t, then sets the
// clock to t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	for e.running && len(e.queue) > 0 {
		if e.queue[0].at > t {
			break
		}
		head := e.queue[0].ev
		if head.cancel {
			e.pop()
			continue
		}
		e.pop()
		e.now = head.at
		e.fired++
		head.fn()
	}
	e.running = false
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for a span d of virtual time from the current
// instant.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop makes a Run/RunUntil in progress return after the current event.
// Calling Stop outside an event callback has no effect.
func (e *Engine) Stop() { e.running = false }

// Peek returns the instant of the next pending event without executing
// it.
func (e *Engine) Peek() (Time, bool) { return e.peek() }

func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].ev.cancel {
			e.pop()
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// ScheduleEvery schedules fn at t0, t0+period, t0+2*period, ... until the
// returned Ticker is stopped; fn observes the engine clock at each firing.
// It is the allocation-free periodic primitive: one Event (and one
// callback closure) is reused for every tick, so a CBR source ticking
// 14.88 M times per simulated second costs the event heap nothing beyond
// its single long-lived entry.
func (e *Engine) ScheduleEvery(t0 Time, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.ev = e.Schedule(t0, t.fire)
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual-time period. The
// underlying Event is reused across firings (see ScheduleEvery).
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.engine.RescheduleAfter(t.ev, t.period)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

// Reset re-arms a stopped ticker to fire at t0 (and every period after),
// reusing the ticker's event. It is the sanctioned stop-then-reuse path:
// Stop leaves the event cancel-flagged — possibly still sitting in the
// queue — and a bare Reschedule of it would panic on the pending case
// and silently keep the cancel flag on the popped one. Reprogram handles
// both: a still-queued event is re-keyed in place and a popped one is
// re-armed, and either way the cancel flag clears. Resetting a running
// ticker simply moves its next firing to t0.
func (t *Ticker) Reset(t0 Time) {
	t.stopped = false
	t.engine.Reprogram(t.ev, t0)
}
