package integration_test

import (
	"fmt"
	"testing"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// conservationRates are the rate tiers the randomized topologies mix.
var conservationRates = []wire.Rate{wire.Rate10G, wire.Rate40G}

// TestPropertyLossConservationRandomChains is the fuzz-style invariant
// behind the whole loss-attribution subsystem: on a randomized
// mixed-rate chain — random per-segment rates (conversions inside the
// DUTs), random queue and lookup capacities, random service costs,
// jitter, load, frame size, plus injected runts — every frame offered
// to the scenario must be either delivered to the terminal sink or
// attributed to exactly one (hop, reason) ledger cell. Exactly: not
// within tolerance, to the packet.
func TestPropertyLossConservationRandomChains(t *testing.T) {
	for seed := 0; seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := sim.NewRand(uint64(seed)*7919 + 1)
			nSwitches := 1 + rnd.Intn(3)
			segRates := make([]wire.Rate, nSwitches+1)
			for i := range segRates {
				segRates[i] = conservationRates[rnd.Intn(len(conservationRates))]
			}

			e := sim.NewEngine()
			b := topo.New().
				Tester("tx", netfpga.Config{Ports: 1, Rate: segRates[0]}).
				Sink("end")
			for k := 1; k <= nSwitches; k++ {
				b.DUT(fmt.Sprintf("sw%d", k), switchsim.Config{
					Ports:          2,
					PortRates:      []wire.Rate{segRates[k-1], segRates[k]},
					EgressQueueCap: 4 + rnd.Intn(60),
					LookupQueueCap: 4 + rnd.Intn(28),
					LookupPerByte:  sim.Picoseconds(int64(300 + rnd.Intn(600))),
					LookupJitter:   rnd.Float64() * 0.5,
					Seed:           uint64(seed*16 + k),
				})
			}
			b.Link("tx:0", "sw1:0")
			for k := 1; k < nSwitches; k++ {
				b.Link(fmt.Sprintf("sw%d:1", k), fmt.Sprintf("sw%d:0", k+1))
			}
			b.Link(fmt.Sprintf("sw%d:1", nSwitches), "end")
			tp := b.MustBuild(e)

			spec := probeTopoSpec()
			for k := 1; k <= nSwitches; k++ {
				tp.DUT(fmt.Sprintf("sw%d", k)).Learn(spec.DstMAC, 1)
			}

			frameSize := []int{64, 256, 512, 1518}[rnd.Intn(4)]
			load := 0.3 + 0.7*rnd.Float64()
			slot := wire.SerializationTime(frameSize, segRates[0])
			g, err := gen.New(tp.Port("tx:0"), gen.Config{
				Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: 1 + rnd.Intn(8), FrameSize: frameSize},
				Spacing: gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
				Pool:    wire.DefaultPool,
				Seed:    uint64(seed)*31 + 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			g.Start(0)

			const duration = 2 * sim.Millisecond
			runts := rnd.Intn(20)
			txPort := tp.Port("tx:0")
			for r := 0; r < runts; r++ {
				at := sim.Time(rnd.Intn(int(duration)))
				e.Schedule(at, func() { txPort.Enqueue(wire.NewFrame(make([]byte, 6))) })
			}

			e.RunUntil(sim.Time(duration))
			g.Stop()
			e.Run() // drain every queue and in-flight frame

			// Offered counts every frame that entered the scenario,
			// including the ones the TX queue itself refused — those are
			// attributed as tx-overflow at the tester's hop.
			offered := g.Sent().Packets + g.Dropped() + uint64(runts)
			delivered := tp.Sink("end").Received().Packets
			lm := stats.NewLossMap(offered, delivered, tp.Drops())
			if !lm.Conserved() {
				t.Fatalf("chain of %d (rates %v, frame %d, load %.2f) leaks frames:\n%s",
					nSwitches, segRates, frameSize, load, lm.Table().String())
			}
		})
	}
}

// TestPropertyLossConservationSprayFabric repeats the invariant on the
// ECMP shape: two edge flows spraying over a 2-member uplink group with
// deliberately tiny queues. Hash imbalance, group spraying and the
// conversion to a sink must not open any unaccounted loss path.
func TestPropertyLossConservationSprayFabric(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := sim.NewRand(uint64(seed)*104729 + 3)
			rate := conservationRates[rnd.Intn(len(conservationRates))]

			e := sim.NewEngine()
			tp := topo.New().
				Tester("tx", netfpga.Config{Ports: 2, Rate: rate}).
				DUT("leaf", switchsim.Config{
					Ports:          4,
					Rate:           rate,
					EgressQueueCap: 4 + rnd.Intn(28),
				}).
				DUT("spine", switchsim.Config{
					Ports:          3,
					Rate:           rate,
					EgressQueueCap: 4 + rnd.Intn(28),
				}).
				Sink("end").
				Link("tx:0", "leaf:0").
				Link("tx:1", "leaf:1").
				Group("leaf:2", "spine:0", 2).
				Link("spine:2", "end").
				MustBuild(e)

			spec := probeTopoSpec()
			leaf := tp.DUT("leaf")
			leaf.LearnGroup(spec.DstMAC, leaf.AddGroup(2, 3))
			tp.DUT("spine").Learn(spec.DstMAC, 2)

			gens := make([]*gen.Generator, 2)
			for p := 0; p < 2; p++ {
				src := spec
				src.SrcMAC[5] = byte(0x20 + p)
				src.SrcPort = uint16(5000 + 16*p)
				load := 0.5 + 0.5*rnd.Float64()
				slot := wire.SerializationTime(512, rate)
				g, err := gen.New(tp.Port(fmt.Sprintf("tx:%d", p)), gen.Config{
					Source:  &gen.UDPFlowSource{Spec: src, NumFlows: 16, FrameSize: 512},
					Spacing: gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
					Pool:    wire.DefaultPool,
					Seed:    uint64(seed)*67 + uint64(p),
				})
				if err != nil {
					t.Fatal(err)
				}
				g.Start(0)
				gens[p] = g
			}
			e.RunUntil(sim.Time(2 * sim.Millisecond))
			var offered uint64
			for _, g := range gens {
				g.Stop()
				offered += g.Sent().Packets + g.Dropped()
			}
			e.Run()

			lm := stats.NewLossMap(offered, tp.Sink("end").Received().Packets, tp.Drops())
			if !lm.Conserved() {
				t.Fatalf("spray fabric at %v leaks frames:\n%s", rate, lm.Table().String())
			}
			if lm.Attributed() == 0 {
				t.Fatalf("tiny queues at ≥50%% fan-in load dropped nothing — rig too gentle to test attribution")
			}
		})
	}
}

// probeTopoSpec is the shared conservation workload (unicast, so the
// pre-learned FDBs never flood).
func probeTopoSpec() packet.UDPSpec { return spec }
