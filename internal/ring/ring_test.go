package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r FIFO[int]
	if r.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 0; i < 1000; i++ {
		r.Push(i)
	}
	if r.Len() != 1000 {
		t.Fatalf("Len = %d", r.Len())
	}
	if *r.Peek() != 0 {
		t.Fatalf("Peek = %d", *r.Peek())
	}
	for i := 0; i < 1000; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop %d = %d", i, got)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var r FIFO[int]
	next, want := 0, 0
	// Interleave pushes and pops with a persistent backlog so the
	// compaction path (head ≥ 64, dead prefix ≥ half) is exercised.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := r.Pop(); got != want {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain: Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d values, pushed %d", want, next)
	}
}

// Steady-state queueing must not allocate: the backing array is recycled
// once warm, whatever the head position.
func TestFIFOSteadyStateZeroAlloc(t *testing.T) {
	var r FIFO[int]
	for i := 0; i < 256; i++ {
		r.Push(i)
	}
	for r.Len() > 0 {
		r.Pop()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r.Push(i)
		}
		for r.Len() > 0 {
			r.Pop()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f per cycle, want 0", avg)
	}
}

// Pop must zero vacated slots so popped pointers are not retained by the
// backing array.
func TestFIFOClearsSlots(t *testing.T) {
	var r FIFO[*int]
	v := 7
	r.Push(&v)
	r.Push(&v)
	r.Pop()
	if got := r.buf[0]; got != nil {
		t.Fatal("popped slot still holds the pointer")
	}
}
