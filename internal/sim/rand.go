package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (splitmix64-seeded xorshift64*). Every stochastic component of the
// simulator (Poisson arrivals, oscillator wander, host scheduling jitter)
// owns its own Rand so that adding or removing one component never perturbs
// the random stream of another — a property plain math/rand sharing would
// not give us.
type Rand struct {
	s uint64
	// cached second normal variate from Box-Muller
	haveNorm bool
	norm     float64
}

// NewRand returns a generator seeded from seed via splitmix64, so nearby
// integer seeds still yield uncorrelated streams.
func NewRand(seed uint64) *Rand {
	// splitmix64 step to spread low-entropy seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &Rand{s: z}
}

// Uint64 returns the next value of the xorshift64* stream.
func (r *Rand) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// suitable for Poisson inter-arrival times after scaling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	if r.haveNorm {
		r.haveNorm = false
		return r.norm
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		rad := math.Sqrt(-2 * math.Log(u))
		ang := 2 * math.Pi * v
		r.norm = rad * math.Sin(ang)
		r.haveNorm = true
		return rad * math.Cos(ang)
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
