package sim

// CalendarQueue is an alternative pending-event set implementation used by
// the ablation benchmarks in DESIGN.md ("binary-heap event queue vs
// calendar bucketing"). It is a classic calendar queue: a ring of time
// buckets of fixed width; Pop scans forward from the current bucket.
//
// It is intentionally not wired into Engine — the heap is the default
// because the calendar queue degrades when event spacing is far from the
// bucket width — but the benchmark quantifies that trade-off on the
// simulator's actual workload shape.
type CalendarQueue struct {
	buckets [][]*Event
	width   Duration // virtual-time width of one bucket
	cursor  int      // bucket holding the earliest possible event
	base    Time     // start time of the cursor bucket's current lap
	size    int
	seq     uint64
}

// NewCalendarQueue builds a queue of n buckets each spanning width of
// virtual time.
func NewCalendarQueue(n int, width Duration) *CalendarQueue {
	if n <= 0 || width <= 0 {
		panic("sim: invalid calendar queue shape")
	}
	return &CalendarQueue{buckets: make([][]*Event, n), width: width}
}

// Len returns the number of queued events.
func (q *CalendarQueue) Len() int { return q.size }

// Push inserts an event at instant at.
func (q *CalendarQueue) Push(at Time, fn func()) *Event {
	ev := &Event{at: at, seq: q.seq, fn: fn}
	q.seq++
	idx := int(int64(at) / int64(q.width) % int64(len(q.buckets)))
	// Insertion keeps buckets sorted; buckets are short when the width is
	// well matched to event spacing, so linear insertion is fine.
	b := q.buckets[idx]
	pos := len(b)
	for pos > 0 && (b[pos-1].at > at || (b[pos-1].at == at && b[pos-1].seq > ev.seq)) {
		pos--
	}
	b = append(b, nil)
	copy(b[pos+1:], b[pos:])
	b[pos] = ev
	q.buckets[idx] = b
	q.size++
	return ev
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *CalendarQueue) Pop() *Event {
	if q.size == 0 {
		return nil
	}
	for {
		b := q.buckets[q.cursor]
		// The head of the bucket belongs to the current lap when its
		// timestamp falls inside [base, base+width).
		if len(b) > 0 && b[0].at < q.base.Add(q.width) {
			ev := b[0]
			copy(b, b[1:])
			b[len(b)-1] = nil
			q.buckets[q.cursor] = b[:len(b)-1]
			q.size--
			return ev
		}
		q.cursor++
		q.base = q.base.Add(q.width)
		if q.cursor == len(q.buckets) {
			q.cursor = 0
		}
	}
}
