package timing

import (
	"osnt/internal/sim"
)

// Oscillator models the free-running crystal that clocks the stamping
// counter on a NetFPGA-10G board. Its device time advances at a rate
// (1 + offset_ppm·1e-6) relative to true (virtual) time, and the offset
// itself performs a bounded random walk ("wander"), the dominant error
// sources in real timestamping hardware.
//
// An Oscillator is passive: it has no events of its own. Reading it at
// instant t lazily integrates device time (including any wander steps)
// forward to t, so the trajectory is a pure function of the seed and the
// configuration regardless of how often it is read.
type Oscillator struct {
	// InitialOffsetPPM is the frequency error at t=0 in parts per million.
	// Commodity crystals sit in the ±50 ppm range.
	InitialOffsetPPM float64
	// WanderPPM is the standard deviation of the random-walk step applied
	// to the frequency offset once per WanderInterval.
	WanderPPM float64
	// WanderInterval is the spacing of wander steps. Zero disables wander.
	WanderInterval sim.Duration

	rand *sim.Rand

	started    bool
	offsetPPM  float64  // current frequency error
	lastTrue   sim.Time // true time of last integration point
	device     float64  // device time at lastTrue, in picoseconds
	nextWander sim.Time
}

// NewOscillator returns an oscillator with the given initial frequency
// error and wander behaviour, seeded deterministically.
func NewOscillator(offsetPPM, wanderPPM float64, wanderInterval sim.Duration, seed uint64) *Oscillator {
	return &Oscillator{
		InitialOffsetPPM: offsetPPM,
		WanderPPM:        wanderPPM,
		WanderInterval:   wanderInterval,
		rand:             sim.NewRand(seed),
	}
}

func (o *Oscillator) start(t sim.Time) {
	o.started = true
	o.offsetPPM = o.InitialOffsetPPM
	o.lastTrue = t
	o.device = float64(t.Picoseconds())
	if o.WanderInterval > 0 {
		o.nextWander = t.Add(o.WanderInterval)
	}
}

// advance integrates device time from lastTrue to t, applying any wander
// steps whose boundaries fall inside the interval.
func (o *Oscillator) advance(t sim.Time) {
	if !o.started {
		o.start(t)
		return
	}
	if t < o.lastTrue {
		panic("timing: oscillator read moved backwards")
	}
	for o.WanderInterval > 0 && o.nextWander <= t {
		o.integrate(o.nextWander)
		o.offsetPPM += o.rand.NormFloat64() * o.WanderPPM
		o.nextWander = o.nextWander.Add(o.WanderInterval)
	}
	o.integrate(t)
}

func (o *Oscillator) integrate(t sim.Time) {
	dt := float64(t.Sub(o.lastTrue).Picoseconds())
	o.device += dt * (1 + o.offsetPPM*1e-6)
	o.lastTrue = t
}

// DeviceTimeAt returns the oscillator's notion of elapsed time at true
// instant t, in picoseconds of device time.
func (o *Oscillator) DeviceTimeAt(t sim.Time) sim.Time {
	o.advance(t)
	return sim.Time(o.device)
}

// OffsetPPMAt returns the instantaneous frequency error at t, after
// applying any wander steps up to t.
func (o *Oscillator) OffsetPPMAt(t sim.Time) float64 {
	o.advance(t)
	return o.offsetPPM
}

// AdjustPhase slews the device time by delta immediately. The discipline
// servo uses this to cancel accumulated phase error at a PPS edge.
func (o *Oscillator) AdjustPhase(delta sim.Duration) {
	o.device += float64(delta.Picoseconds())
}

// AdjustFreqPPM adds delta (ppm) to the oscillator's effective rate. The
// discipline servo uses this to steer the frequency toward the GPS
// reference.
func (o *Oscillator) AdjustFreqPPM(delta float64) {
	o.offsetPPM += delta
}
