package packet

import (
	"fmt"
	"math/rand"
	"testing"
)

// refChecksum is the textbook RFC 1071 implementation — 16-bit
// big-endian pairs into a wide accumulator, folded at the end — kept as
// the oracle the word-at-a-time production Checksum must match bit for
// bit on every input.
func refChecksum(data []byte, initial uint32) uint16 {
	sum := uint64(initial)
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint64(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TestChecksumMatchesReference is the property test for the 8-byte-word
// checksum: random contents, every length through the word loop and all
// three tail paths, random initial partial sums, and odd start offsets
// (the word loop may not assume alignment).
func TestChecksumMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0517))
	initials := []uint32{0, 1, 0xffff, 0x10000, 0xfffffffe, 0xffffffff}
	buf := make([]byte, 4096)
	for trial := 0; trial < 2000; trial++ {
		var n int
		if trial < 128 {
			n = trial // every small length: word loop 0..16 times, all tails
		} else {
			n = rng.Intn(len(buf))
		}
		data := buf[:n]
		rng.Read(data)
		initial := initials[trial%len(initials)]
		if trial%3 == 0 {
			initial = rng.Uint32()
		}
		if got, want := Checksum(data, initial), refChecksum(data, initial); got != want {
			t.Fatalf("trial %d: Checksum(len %d, initial %#x) = %#04x, want %#04x",
				trial, n, initial, got, want)
		}
		if n > 1 {
			off := data[1:] // odd offset into the same backing array
			if got, want := Checksum(off, initial), refChecksum(off, initial); got != want {
				t.Fatalf("trial %d: offset Checksum(len %d, initial %#x) = %#04x, want %#04x",
					trial, n-1, initial, got, want)
			}
		}
	}
}

// TestChecksumCarrySaturation hammers the end-around carry: all-0xff
// buffers make every 64-bit add wrap, so a missed carry increment (or a
// missing final fold) shows up immediately.
func TestChecksumCarrySaturation(t *testing.T) {
	data := make([]byte, 2048)
	for i := range data {
		data[i] = 0xff
	}
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 2048} {
		for _, initial := range []uint32{0, 0xffff, 0xffffffff} {
			if got, want := Checksum(data[:n], initial), refChecksum(data[:n], initial); got != want {
				t.Fatalf("Checksum(0xff × %d, initial %#x) = %#04x, want %#04x",
					n, initial, got, want)
			}
		}
	}
}

// TestChecksumVerifyRoundTrip pins the defining property a transport
// stack relies on: patching the computed checksum into the segment makes
// the segment sum to zero.
func TestChecksumVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1518))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 20+rng.Intn(1500))
		rng.Read(data)
		data[16], data[17] = 0, 0 // checksum field
		c := Checksum(data, 0)
		data[16], data[17] = byte(c>>8), byte(c)
		if got := Checksum(data, 0); got != 0 {
			t.Fatalf("trial %d: patched segment sums to %#04x, want 0", trial, got)
		}
	}
}

var checksumSink uint16

// BenchmarkPacketChecksum measures the word-at-a-time Internet checksum
// over the 100G sweep's frame sizes; benchgate tracks it via its
// in-process PacketChecksum driver.
func BenchmarkPacketChecksum(b *testing.B) {
	for _, size := range []int{64, 512, 1518} {
		data := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(data)
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				checksumSink = Checksum(data, 0)
			}
		})
	}
}
