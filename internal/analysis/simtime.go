package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimTime enforces virtual-time hygiene outside internal/sim, where the
// picosecond representation of sim.Time is an implementation detail:
//
//   - raw binary arithmetic (+ - * / %) on sim.Time operands is banned —
//     instants combine with durations through Time.Add / Time.Sub, which
//     keep instants and spans distinct (t+t, t*2 and untyped-constant
//     mixing like t+800 are all meaningless or unit-unsafe);
//   - Engine.Schedule / Reschedule / ScheduleEvery time arguments built
//     from a subtraction or a negated Add offset are flagged: a time that
//     can precede the engine's now is the statically visible half of the
//     causality-violation panic.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "report raw integer arithmetic on sim.Time and Schedule time " +
		"arguments that can precede the engine's now, outside internal/sim",
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	// The sim package itself implements Time and owns its representation.
	if pkgPathMatches(pass.Pkg.Path(), "sim") || pkgPathMatches(pass.Pkg.Path(), "internal/sim") {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				switch x.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
				default:
					return true
				}
				if isSimTimeExpr(info, x.X) || isSimTimeExpr(info, x.Y) {
					pass.Reportf(x.Pos(), "raw %s arithmetic on sim.Time; use Time.Add(sim.Duration) / Time.Sub to keep instants and durations distinct", x.Op)
				}

			case *ast.CallExpr:
				fn := calleeFunc(info, x)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil || !isNamedFrom(sig.Recv().Type(), "sim", "Engine") {
					return true
				}
				switch fn.Name() {
				case "Schedule", "ScheduleAt", "Reschedule", "ScheduleEvery":
				default:
					return true
				}
				params := sig.Params()
				for i, arg := range x.Args {
					if i >= params.Len() {
						break
					}
					if !isNamedFrom(params.At(i).Type(), "sim", "Time") {
						continue
					}
					if reason := backwardTimeExpr(info, arg); reason != "" {
						pass.Reportf(arg.Pos(), "%s time argument %s: it can precede the engine's now and panic at runtime; clamp or restructure (lint:ignore simtime with the invariant if provably monotone)", fn.Name(), reason)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSimTimeExpr reports whether e's static type is sim.Time.
func isSimTimeExpr(info *types.Info, e ast.Expr) bool {
	t, ok := info.Types[e]
	if !ok {
		return false
	}
	// A conversion like sim.Time(x) is an explicit, visible cast; only
	// flag operands that are already Time-typed values or constants the
	// checker implicitly converted.
	return isNamedFrom(t.Type, "sim", "Time")
}

// backwardTimeExpr describes why a time expression may run backward, or
// returns "" when it cannot tell.
func backwardTimeExpr(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if x.Op == token.SUB {
			return "is a subtraction"
		}
	case *ast.CallExpr:
		// Unwrap conversions like sim.Time(expr) to inspect the payload.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return backwardTimeExpr(info, x.Args[0])
		}
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		switch sel.Sel.Name {
		case "Sub":
			return "is built from Time.Sub"
		case "Add":
			if len(x.Args) != 1 {
				return ""
			}
			arg := ast.Unparen(x.Args[0])
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.SUB {
				return "adds a negated duration"
			}
			if t, ok := info.Types[x.Args[0]]; ok && t.Value != nil {
				if v, exact := constInt64(t.Value); exact && v < 0 {
					return "adds a negative constant duration"
				}
			}
		}
	}
	return ""
}
