// Command osnt-mon is the OSNT traffic monitor CLI: it drives a traffic
// source through the simulated capture engine — hardware wildcard
// filters, packet thinning, hashing, and the loss-limited multi-queue
// DMA path — and writes the capture to a nanosecond PCAP, printing the
// pipeline and per-queue statistics a driver would read from the card's
// registers.
//
// Examples:
//
//	osnt-mon -out cap.pcap -snap 64 -load 1.0 -dur 10
//	osnt-mon -filter-dport 53 -out dns.pcap
//	osnt-mon -queues 4 -steer hash -snap 64 -load 1.0
//	osnt-mon -losses -load 1.0         # per-hop/per-reason loss attribution
//	osnt-mon -queues 8 -flows 64 -heavy 8  # merged capture + per-flow analytics
//
// With -flows the capture queues feed a k-way merge that restores the
// global hardware-timestamp order before any sink runs — the PCAP comes
// out globally ordered even across queues — and the merged stream drives
// a flow table plus count-min/space-saving sketches, printed after the
// run. Flow keying forces header-only hashing (the embedded TX timestamp
// must not enter the digest).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"osnt/internal/filter"
	"osnt/internal/flowstats"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/pcap"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("osnt-mon: ")

	out := flag.String("out", "", "PCAP output for captured packets")
	snap := flag.Int("snap", 0, "thinning snap length in bytes (0 = full packets)")
	hashBytes := flag.Int("hash", 64, "hash the first N bytes of each capture (0 = off)")
	load := flag.Float64("load", 0.5, "traffic source load fraction of line rate")
	size := flag.Int("size", 512, "traffic frame size")
	durMS := flag.Int("dur", 10, "capture duration in virtual milliseconds")
	dport := flag.Int("filter-dport", 0, "capture only this UDP destination port (0 = all)")
	ring := flag.Int("ring", 1024, "per-queue DMA descriptor ring size")
	queues := flag.Int("queues", 1, "DMA capture queues (per-queue ring + host core)")
	steer := flag.String("steer", "hash", "queue steering policy: hash (RSS) or rr (round-robin)")
	losses := flag.Bool("losses", false, "print the per-hop/per-reason loss attribution table")
	flows := flag.Int("flows", 0, "generate N UDP flows and print per-flow analytics over the merged capture (0 = off; forces header-only hashing and TX timestamp embedding)")
	heavy := flag.Int("heavy", 8, "heavy-hitter summary size for -flows")
	flag.Parse()

	if *queues < 1 {
		log.Fatalf("-queues %d: need at least one capture queue", *queues)
	}
	if *flows > 0 {
		if *size < gen.DefaultTimestampOffset+gen.TimestampLen {
			log.Fatalf("-flows needs -size ≥ %d to carry the embedded TX timestamp", gen.DefaultTimestampOffset+gen.TimestampLen)
		}
		// Flow keying must hash headers only: the embedded timestamp
		// starts right after them and differs packet by packet.
		*hashBytes = packet.HeaderDigestBytes
	}
	var policy mon.Steer
	switch *steer {
	case "hash":
		policy = mon.SteerHash
	case "rr":
		policy = mon.SteerRoundRobin
	default:
		log.Fatalf("unknown -steer %q (valid: hash, rr)", *steer)
	}

	e := sim.NewEngine()
	txCard := netfpga.New(e, netfpga.Config{})
	rxCard := netfpga.New(e, netfpga.Config{})
	txCard.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rxCard.Port(0)))

	// Loss-attribution ledger over the rig's two loss points: the TX
	// card's MAC queue and the capture engine (filter rejects + DMA
	// ring overflow). stats.LossMap reduces it after the run.
	ledger := &wire.DropLedger{}
	txCard.SetDropSite(ledger, ledger.Add("tx-card"))

	var sink *pcap.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink, err = pcap.NewWriter(f, 0, true)
		if err != nil {
			log.Fatal(err)
		}
	}

	var tbl *filter.Table
	if *dport > 0 {
		tbl = filter.NewTable(filter.Drop)
		if err := tbl.Append(&filter.Rule{
			Name: "dport", Action: filter.Capture,
			Proto:      packet.ProtoUDP,
			DstPortMin: uint16(*dport), DstPortMax: uint16(*dport),
		}); err != nil {
			log.Fatal(err)
		}
	}

	var captured uint64
	emit := func(rec mon.Record) {
		captured++
		if sink != nil {
			if err := sink.Write(pcap.Record{
				TS: rec.TS.Sim(), Data: rec.Data, OrigLen: rec.WireSize - wire.FCSLen,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	qcfgs := make([]mon.QueueConfig, *queues)
	for i := range qcfgs {
		qcfgs[i] = mon.QueueConfig{RingSize: *ring}
	}
	monitor, err := mon.New(rxCard.Port(0), mon.Config{
		Filters:   tbl,
		SnapLen:   *snap,
		HashBytes: *hashBytes,
		Queues:    qcfgs,
		Steer:     policy,
		Sink:      emit,
	})
	if err != nil {
		log.Fatal(err)
	}
	monitor.SetDropSite(ledger, ledger.Add("mon"))

	// -flows: interpose the k-way merge between the queues and the sink,
	// so the PCAP and the analytics both see one globally ordered stream.
	var merge *mon.Merge
	var ft *flowstats.FlowTable
	var ss *flowstats.SpaceSaving
	var cm *flowstats.CountMin
	if *flows > 0 {
		ft = flowstats.NewFlowTable(4 * *flows)
		ss = flowstats.NewSpaceSaving(*heavy)
		cm = flowstats.NewCountMin(4, 1<<12)
		merge = mon.NewMerge(monitor, func(rec mon.Record) {
			s := flowstats.Sample{Digest: rec.Hash, RxTS: rec.TS, Wire: rec.WireSize, Trace: rec.Trace}
			if tx, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset); ok {
				s.TxTS, s.HasTx = tx, true
			}
			ft.Observe(s)
			ss.Add(rec.Hash, 1)
			cm.Add(rec.Hash, 1)
			emit(rec)
		})
	}

	spec := packet.UDPSpec{
		SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
		DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
		SrcIP:   packet.IP4{10, 0, 0, 1},
		DstIP:   packet.IP4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 7000,
	}
	numFlows := 8
	if *flows > 0 {
		numFlows = *flows
	}
	g, err := gen.New(txCard.Port(0), gen.Config{
		Source:         &gen.UDPFlowSource{Spec: spec, NumFlows: numFlows, FrameSize: *size},
		Spacing:        gen.CBRForLoad(*size, wire.Rate10G, *load),
		EmbedTimestamp: *flows > 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	g.Start(0)
	e.RunUntil(sim.After(sim.Milliseconds(int64(*durMS))))
	g.Stop()
	e.Run()
	if merge != nil {
		merge.Flush()
	}

	fmt.Printf("pipeline: seen %d, filtered %d, accepted %d, ring drops %d, delivered %d\n",
		monitor.Seen().Packets, monitor.Filtered(), monitor.Accepted().Packets,
		monitor.RingDrops(), monitor.Delivered().Packets)
	fmt.Printf("loss-limited path loss: %.2f%%\n", monitor.LossFraction()*100)

	pq := stats.NewPerQueue(monitor.NumQueues())
	for q := 0; q < monitor.NumQueues(); q++ {
		qs := monitor.QueueStats(q)
		pq.Set(q, qs.Seen.Packets, qs.Delivered.Packets, qs.RingDrops)
	}
	qt := &stats.Table{
		Title:   fmt.Sprintf("capture queues (steer=%s)", *steer),
		Columns: []string{"queue", "steered", "share(%)", "ring-drops", "delivered", "loss(%)"},
	}
	for q := 0; q < monitor.NumQueues(); q++ {
		qs := monitor.QueueStats(q)
		qt.AddRow(
			fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", qs.Seen.Packets),
			fmt.Sprintf("%.1f", pq.Share(q)*100),
			fmt.Sprintf("%d", qs.RingDrops),
			fmt.Sprintf("%d", qs.Delivered.Packets),
			fmt.Sprintf("%.2f", pq.DropFraction(q)*100),
		)
	}
	fmt.Println(qt.String())

	if merge != nil {
		fmt.Printf("merged stream: %d records in global (ts, queue, seq) order, %d order violations, %d overflow samples\n",
			merge.Emitted(), merge.OrderViolations(), ft.Overflow())
		fTbl := &stats.Table{
			Title:   fmt.Sprintf("per-flow analytics over the merged capture (top %d of %d tracked flows)", *heavy, ft.Len()),
			Columns: []string{"rank", "flow-digest", "pkts", "bytes", "lat-mean(µs)", "lat-max(µs)", "reorders", "holes"},
		}
		for i, f := range ft.Top(*heavy) {
			fTbl.AddRow(
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%016x", f.Digest),
				fmt.Sprintf("%d", f.Packets),
				fmt.Sprintf("%d", f.Bytes),
				fmt.Sprintf("%.2f", f.LatencyMean().Seconds()*1e6),
				fmt.Sprintf("%.2f", f.LatencyMax().Seconds()*1e6),
				fmt.Sprintf("%d", f.Reorders),
				fmt.Sprintf("%d", f.Holes),
			)
		}
		fmt.Println(fTbl.String())
		hTbl := &stats.Table{
			Title:   "heavy hitters (space-saving summary, count-min cross-check)",
			Columns: []string{"flow-digest", "count", "err", "cm-est"},
		}
		for _, h := range ss.Top(*heavy) {
			hTbl.AddRow(
				fmt.Sprintf("%016x", h.Digest),
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%d", h.Err),
				fmt.Sprintf("%d", cm.Estimate(h.Digest)),
			)
		}
		fmt.Println(hTbl.String())
	}

	if *losses {
		// Conservation closes over the whole rig: every frame the
		// generator pushed into the MAC either reached a host sink or
		// sits in exactly one ledger cell (filter rejects, ring
		// overflow, TX queue overflow).
		lm := stats.NewLossMap(g.Sent().Packets+g.Dropped(), monitor.Delivered().Packets, ledger)
		fmt.Println(lm.Table().String())
	}

	if *out != "" {
		fmt.Printf("wrote %d packets to %s\n", captured, *out)
	}
	for _, name := range rxCard.Regs.Names() {
		fmt.Printf("reg %-22s %d\n", name, rxCard.Regs.Get(name))
	}
}
