package switchsim

import (
	"testing"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	macC = packet.MAC{2, 0, 0, 0, 0, 0xc}
)

func udpFrame(src, dst packet.MAC, size int) *wire.Frame {
	return wire.NewFrame(packet.UDPSpec{
		SrcMAC: src, DstMAC: dst,
		SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameSize: size,
	}.Build())
}

// topo: three hosts (cards) on switch ports 0,1,2.
type topo struct {
	e     *sim.Engine
	sw    *Switch
	hosts []*netfpga.Card
	rx    [][]sim.Time // arrival times per host
}

func newTopo(t *testing.T, cfg Config, hosts int) *topo {
	t.Helper()
	tp := &topo{e: sim.NewEngine()}
	tp.sw = New(tp.e, cfg)
	tp.rx = make([][]sim.Time, hosts)
	for i := 0; i < hosts; i++ {
		i := i
		card := netfpga.New(tp.e, netfpga.Config{Ports: 1})
		toSwitch, toHost := wire.Connect(tp.e, wire.Rate10G, 0, card.Port(0), tp.sw.Port(i))
		card.Port(0).SetLink(toSwitch)
		tp.sw.Port(i).SetLink(toHost)
		card.Port(0).OnReceive = func(f *wire.Frame, at sim.Time, _ timing.Timestamp) {
			tp.rx[i] = append(tp.rx[i], at)
		}
		tp.hosts = append(tp.hosts, card)
	}
	return tp
}

func (tp *topo) send(host int, f *wire.Frame) { tp.hosts[host].Port(0).Enqueue(f) }

func TestFloodThenLearn(t *testing.T) {
	tp := newTopo(t, Config{}, 3)
	// A → B: B unknown, flood to ports 1 and 2.
	tp.send(0, udpFrame(macA, macB, 64))
	tp.e.Run()
	if len(tp.rx[1]) != 1 || len(tp.rx[2]) != 1 {
		t.Fatalf("flood delivery %d/%d", len(tp.rx[1]), len(tp.rx[2]))
	}
	if tp.sw.Floods() != 1 {
		t.Fatalf("floods = %d", tp.sw.Floods())
	}
	// B → A: A learned on port 0, unicast only.
	tp.send(1, udpFrame(macB, macA, 64))
	tp.e.Run()
	if len(tp.rx[0]) != 1 {
		t.Fatal("unicast to A missing")
	}
	if len(tp.rx[2]) != 1 {
		t.Fatalf("C received unicast: %d", len(tp.rx[2]))
	}
	// A → B again: B now learned.
	tp.send(0, udpFrame(macA, macB, 64))
	tp.e.Run()
	if len(tp.rx[1]) != 2 || len(tp.rx[2]) != 1 {
		t.Fatal("learned unicast flooded")
	}
	tbl := tp.sw.MACTable()
	if tbl[macA] != 0 || tbl[macB] != 1 {
		t.Fatalf("fdb %v", tbl)
	}
}

func TestNoHairpin(t *testing.T) {
	tp := newTopo(t, Config{}, 2)
	// Teach the switch that both MACs live on port 0, then send A→B from
	// port 0: the frame must not be sent back out port 0.
	tp.send(0, udpFrame(macA, macC, 64))
	tp.e.Run()
	tp.send(0, udpFrame(macB, macC, 64))
	tp.e.Run()
	before := len(tp.rx[0])
	tp.send(0, udpFrame(macA, macB, 64))
	tp.e.Run()
	if len(tp.rx[0]) != before {
		t.Fatal("hairpin forwarding")
	}
}

func TestBroadcastFloods(t *testing.T) {
	tp := newTopo(t, Config{}, 3)
	bc := packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	tp.send(0, udpFrame(macA, bc, 64))
	tp.e.Run()
	if len(tp.rx[1]) != 1 || len(tp.rx[2]) != 1 || len(tp.rx[0]) != 0 {
		t.Fatal("broadcast delivery wrong")
	}
}

func TestStoreAndForwardLatency(t *testing.T) {
	// Single 1518B frame at idle: latency from first bit at switch to
	// last bit at receiver = frame serialisation (store) + lookup +
	// egress serialisation.
	cfg := Config{Mode: StoreAndForward}
	cfg.fill()
	tp := newTopo(t, cfg, 2)
	tp.send(0, udpFrame(macA, macB, 1518))
	tp.e.Run()
	tp.rx[1] = nil
	// Second frame unicasts (learned? B never spoke: still flood). Teach B:
	tp.send(1, udpFrame(macB, macA, 64))
	tp.e.Run()
	tp.rx[1] = nil

	start := tp.e.Now()
	tp.send(0, udpFrame(macA, macB, 1518))
	tp.e.Run()
	if len(tp.rx[1]) != 1 {
		t.Fatal("frame not delivered")
	}
	ser := wire.SerializationTime(1518, wire.Rate10G)
	lookup := cfg.LookupPerPacket + 1518*sim.Duration(cfg.LookupPerByte) + cfg.PipelineLatency
	want := start.Add(ser).Add(lookup).Add(ser) // ingress store + lookup + egress
	got := tp.rx[1][0]
	if got != want {
		t.Fatalf("SF delivery at %v, want %v", got, want)
	}
}

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	run := func(mode ForwardingMode) sim.Duration {
		cfg := Config{Mode: mode}
		tp := newTopo(t, cfg, 2)
		// learn both directions
		tp.send(0, udpFrame(macA, macB, 64))
		tp.e.Run()
		tp.send(1, udpFrame(macB, macA, 64))
		tp.e.Run()
		tp.rx[1] = nil
		start := tp.e.Now()
		tp.send(0, udpFrame(macA, macB, 1518))
		tp.e.Run()
		return tp.rx[1][0].Sub(start)
	}
	sf := run(StoreAndForward)
	ct := run(CutThrough)
	if ct >= sf {
		t.Fatalf("cut-through %v not faster than store-and-forward %v", ct, sf)
	}
	// The gap is the full store time (serialisation slot including
	// preamble and IFG) minus the 64B cut-through window.
	wantGap := wire.SerializationTime(1518, wire.Rate10G) - 64*wire.Rate10G.ByteTime()
	gap := sf - ct
	if gap != wantGap {
		t.Fatalf("CT advantage %v, want %v", gap, wantGap)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	// Poisson traffic port0→port1 at 30% vs 95% of line rate: mean
	// latency must grow substantially (M/D/1 queueing at the lookup).
	meanLatency := func(load float64) float64 {
		e := sim.NewEngine()
		// Capacity slightly below line rate plus jittered service: the
		// configuration E3 uses to reproduce the latency-vs-load curve.
		sw := New(e, Config{LookupPerByte: sim.Picoseconds(820), LookupJitter: 0.5, Seed: 7})
		cardA := netfpga.New(e, netfpga.Config{Ports: 1})
		cardB := netfpga.New(e, netfpga.Config{Ports: 1})
		aOut, aIn := wire.Connect(e, wire.Rate10G, 0, cardA.Port(0), sw.Port(0))
		cardA.Port(0).SetLink(aOut)
		sw.Port(0).SetLink(aIn)
		bOut, bIn := wire.Connect(e, wire.Rate10G, 0, cardB.Port(0), sw.Port(1))
		cardB.Port(0).SetLink(bOut)
		sw.Port(1).SetLink(bIn)

		// Pre-teach the FDB.
		cardB.Port(0).Enqueue(udpFrame(macB, macA, 64))
		e.Run()

		var sum float64
		var n int
		cardB.Port(0).OnReceive = func(f *wire.Frame, at sim.Time, _ timing.Timestamp) {
			if ts, ok := gen.ExtractTimestamp(f.Data, gen.DefaultTimestampOffset); ok {
				sum += float64(at.Sub(ts.Sim()))
				n++
			}
		}
		slot := wire.SerializationTime(512, wire.Rate10G)
		g, err := gen.New(cardA.Port(0), gen.Config{
			Source:         &gen.UDPFlowSource{Spec: packet.UDPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2}, SrcPort: 1, DstPort: 2}, FrameSize: 512},
			Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
			EmbedTimestamp: true,
			Seed:           99,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(e.Now())
		e.RunUntil(e.Now() + 20*sim.Time(sim.Millisecond))
		g.Stop()
		if n < 100 {
			t.Fatalf("too few samples at load %v: %d", load, n)
		}
		return sum / float64(n)
	}
	low := meanLatency(0.3)
	high := meanLatency(0.95)
	if high < low*1.5 {
		t.Fatalf("latency at 95%% load (%v ps) not ≫ 30%% load (%v ps)", high, low)
	}
}

func TestEgressContentionQueues(t *testing.T) {
	// Two senders at 70% each into one receiver: egress is oversubscribed,
	// the queue must build and eventually drop.
	e := sim.NewEngine()
	sw := New(e, Config{EgressQueueCap: 32})
	var cards []*netfpga.Card
	for i := 0; i < 3; i++ {
		card := netfpga.New(e, netfpga.Config{Ports: 1})
		out, in := wire.Connect(e, wire.Rate10G, 0, card.Port(0), sw.Port(i))
		card.Port(0).SetLink(out)
		sw.Port(i).SetLink(in)
		cards = append(cards, card)
	}
	// Teach the receiver's MAC.
	cards[2].Port(0).Enqueue(udpFrame(macC, macA, 64))
	e.Run()

	mk := func(i int, srcMAC packet.MAC) *gen.Generator {
		g, err := gen.New(cards[i].Port(0), gen.Config{
			Source: &gen.UDPFlowSource{Spec: packet.UDPSpec{
				SrcMAC: srcMAC, DstMAC: macC,
				SrcIP: packet.IP4{10, 0, 0, byte(i)}, DstIP: packet.IP4{10, 0, 0, 9},
				SrcPort: 1, DstPort: 2}, FrameSize: 512},
			Spacing: gen.CBRForLoad(512, wire.Rate10G, 0.7),
			Seed:    uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g0, g1 := mk(0, macA), mk(1, macB)
	g0.Start(e.Now())
	g1.Start(e.Now())
	e.RunUntil(e.Now() + 5*sim.Time(sim.Millisecond))
	g0.Stop()
	g1.Stop()
	if sw.Port(2).Drops() == 0 {
		t.Fatal("oversubscribed egress did not drop")
	}
	if sw.Port(2).Egress().Packets == 0 {
		t.Fatal("nothing forwarded")
	}
}

func TestLookupQueueOverflow(t *testing.T) {
	e := sim.NewEngine()
	sw := New(e, Config{LookupQueueCap: 4, LookupPerPacket: 100 * sim.Microsecond})
	card := netfpga.New(e, netfpga.Config{Ports: 1})
	out, in := wire.Connect(e, wire.Rate10G, 0, card.Port(0), sw.Port(0))
	card.Port(0).SetLink(out)
	sw.Port(0).SetLink(in)
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, nil))
	for i := 0; i < 20; i++ {
		card.Port(0).Enqueue(udpFrame(macA, macB, 64))
	}
	e.RunUntil(sim.Time(sim.Millisecond))
	if sw.LookupDrops() == 0 {
		t.Fatal("slow lookup pipeline did not overflow")
	}
}

func TestRuntFrameDropped(t *testing.T) {
	e := sim.NewEngine()
	sw := New(e, Config{})
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, nil))
	got := 0
	sw.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, nil))
	l := wire.NewLink(e, wire.Rate10G, 0, sw.Port(0))
	l.Transmit(&wire.Frame{Data: make([]byte, 8), Size: 12})
	e.Run()
	if got != 0 || sw.Forwarded().Packets != 0 {
		t.Fatal("runt frame forwarded")
	}
}

func TestModeString(t *testing.T) {
	if StoreAndForward.String() != "store-and-forward" || CutThrough.String() != "cut-through" {
		t.Fatal("mode strings")
	}
}

func BenchmarkSwitchForwarding(b *testing.B) {
	e := sim.NewEngine()
	sw := New(e, Config{})
	cardA := netfpga.New(e, netfpga.Config{Ports: 1, TxQueueCap: 1 << 20})
	cardB := netfpga.New(e, netfpga.Config{Ports: 1})
	aOut, aIn := wire.Connect(e, wire.Rate10G, 0, cardA.Port(0), sw.Port(0))
	cardA.Port(0).SetLink(aOut)
	sw.Port(0).SetLink(aIn)
	bOut, bIn := wire.Connect(e, wire.Rate10G, 0, cardB.Port(0), sw.Port(1))
	cardB.Port(0).SetLink(bOut)
	sw.Port(1).SetLink(bIn)
	cardB.Port(0).Enqueue(udpFrame(macB, macA, 64))
	e.Run()
	f := udpFrame(macA, macB, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cardA.Port(0).Enqueue(f.Clone())
		for e.Step() {
		}
	}
}

// mixedTopo wires a two-port mixed-rate switch: host 0 on a fast ingress
// port, host 1 on a slow egress port, each link at its port's own rate.
func mixedTopo(t *testing.T, cfg Config) *topo {
	t.Helper()
	tp := &topo{e: sim.NewEngine()}
	tp.sw = New(tp.e, cfg)
	tp.rx = make([][]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		rate := tp.sw.PortRate(i)
		card := netfpga.New(tp.e, netfpga.Config{Ports: 1, Rate: rate, TxQueueCap: 1 << 16})
		toSwitch, toHost := wire.Connect(tp.e, rate, 0, card.Port(0), tp.sw.Port(i))
		card.Port(0).SetLink(toSwitch)
		tp.sw.Port(i).SetLink(toHost)
		card.Port(0).OnReceive = func(f *wire.Frame, at sim.Time, _ timing.Timestamp) {
			tp.rx[i] = append(tp.rx[i], at)
		}
		tp.hosts = append(tp.hosts, card)
	}
	tp.sw.Learn(macA, 0)
	tp.sw.Learn(macB, 1)
	return tp
}

func TestPortRateDefaultsAndOverrides(t *testing.T) {
	e := sim.NewEngine()
	uniform := New(e, Config{})
	if uniform.PortRate(3) != wire.Rate10G {
		t.Fatalf("uniform switch: rate %v", uniform.PortRate(3))
	}
	mixed := New(e, Config{PortRates: []wire.Rate{0, wire.Rate40G}})
	if mixed.PortRate(0) != wire.Rate10G || mixed.PortRate(1) != wire.Rate40G {
		t.Fatalf("mixed switch: rates %v/%v", mixed.PortRate(0), mixed.PortRate(1))
	}
}

func TestTooManyPortRatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 5 rates on a 4-port switch")
		}
	}()
	New(sim.NewEngine(), Config{PortRates: []wire.Rate{0, 0, 0, 0, wire.Rate40G}})
}

// Store-and-forward speed conversion: a burst entering a 10G port bound
// for a 1G egress drains the egress FIFO at the egress port's own rate —
// the frames leave back-to-back at 1G spacing, not 10G spacing.
func TestSpeedConversionDrainsAtEgressRate(t *testing.T) {
	tp := mixedTopo(t, Config{Ports: 2, PortRates: []wire.Rate{wire.Rate10G, wire.Rate1G}})
	const n = 8
	for i := 0; i < n; i++ {
		tp.send(0, udpFrame(macA, macB, 512))
	}
	tp.e.Run()
	if len(tp.rx[1]) != n {
		t.Fatalf("delivered %d of %d", len(tp.rx[1]), n)
	}
	gap := wire.SerializationTime(512, wire.Rate1G)
	for i := 1; i < n; i++ {
		if got := tp.rx[1][i].Sub(tp.rx[1][i-1]); got != gap {
			t.Fatalf("inter-arrival %d: %v, want 1G slot %v", i, got, gap)
		}
	}
}

// Sustained fan-in overload past the bounded egress FIFO becomes tail
// drop, with the drop counter accounting for every missing frame.
func TestSpeedConversionTailDrop(t *testing.T) {
	tp := mixedTopo(t, Config{
		Ports: 2, PortRates: []wire.Rate{wire.Rate10G, wire.Rate1G},
		EgressQueueCap: 2,
	})
	const n = 16
	for i := 0; i < n; i++ {
		tp.send(0, udpFrame(macA, macB, 512))
	}
	tp.e.Run()
	drops := tp.sw.Port(1).Drops()
	if drops == 0 {
		t.Fatal("10G→1G overload with a 2-deep egress queue dropped nothing")
	}
	if got := uint64(len(tp.rx[1])) + drops; got != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", len(tp.rx[1]), drops, n)
	}
}

// Crossing a rate boundary forces store-and-forward even in cut-through
// mode: egress serialisation cannot begin before the frame has fully
// arrived at the ingress MAC.
func TestCutThroughConversionStoresFully(t *testing.T) {
	tp := mixedTopo(t, Config{
		Ports: 2, PortRates: []wire.Rate{wire.Rate10G, wire.Rate1G},
		Mode: CutThrough,
		// Near-zero lookup and pipeline so the cut-through decision is
		// ready long before the frame has arrived — only the conversion
		// clamp can delay egress.
		LookupPerPacket: sim.Nanosecond,
		LookupPerByte:   sim.Picosecond,
		PipelineLatency: sim.Nanosecond,
	})
	start := tp.e.Now()
	tp.send(0, udpFrame(macA, macB, 1518))
	tp.e.Run()
	if len(tp.rx[1]) != 1 {
		t.Fatal("frame not delivered")
	}
	want := start.
		Add(wire.SerializationTime(1518, wire.Rate10G)). // full ingress store
		Add(wire.SerializationTime(1518, wire.Rate1G))   // egress at port rate
	if got := tp.rx[1][0]; got != want {
		t.Fatalf("converted cut-through delivery at %v, want store-and-forward %v", got, want)
	}
}

// A switch with a hop ID stamps every forwarded frame's trace at the
// instant the last bit leaves its egress port.
func TestHopStamping(t *testing.T) {
	tp := mixedTopo(t, Config{Ports: 2, HopID: 7})
	var hops []wire.Hop
	tp.hosts[1].Port(0).OnReceive = func(f *wire.Frame, at sim.Time, _ timing.Timestamp) {
		tp.rx[1] = append(tp.rx[1], at)
		if f.Trace.Len() == 1 {
			hops = append(hops, f.Trace.At(0))
		}
	}
	tp.send(0, udpFrame(macA, macB, 512))
	tp.e.Run()
	if len(tp.rx[1]) != 1 || len(hops) != 1 {
		t.Fatalf("delivered %d frames, %d single-hop traces", len(tp.rx[1]), len(hops))
	}
	// Zero propagation delay: the egress last-bit instant is the arrival
	// instant at the host.
	if hops[0].Node != 7 || hops[0].At != tp.rx[1][0] {
		t.Fatalf("hop stamp %+v, want node 7 at %v", hops[0], tp.rx[1][0])
	}
}

// The previously silent runt drop must now be counted and attributed.
func TestRuntDropCountedAndAttributed(t *testing.T) {
	e := sim.NewEngine()
	sw := New(e, Config{HopID: 3})
	ledger := &wire.DropLedger{}
	ledger.Register(3, "sw")
	sw.SetDropSite(ledger, 3)
	sw.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, nil))
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, nil))
	l := wire.NewLink(e, wire.Rate10G, 0, sw.Port(0))
	l.Transmit(&wire.Frame{Data: make([]byte, 8), Size: 12})
	l.Transmit(udpFrame(macA, macB, 64)) // a parseable frame is not a runt
	e.Run()
	if got := sw.RuntDrops(); got != 1 {
		t.Fatalf("RuntDrops = %d, want 1", got)
	}
	if got := ledger.Count(3, wire.DropRunt); got != 1 {
		t.Fatalf("ledger runts at hop 3 = %d, want 1", got)
	}
	if ledger.Total() != 1 {
		t.Fatalf("ledger total = %d (parseable frame misattributed?)", ledger.Total())
	}
}

// Hairpin drops (destination learned on the ingress port) are counted
// and attributed like every other loss.
func TestHairpinDropCountedAndAttributed(t *testing.T) {
	tp := newTopo(t, Config{}, 2)
	ledger := &wire.DropLedger{}
	hop := ledger.Add("sw")
	tp.sw.SetDropSite(ledger, hop)
	tp.sw.Learn(macB, 0) // B behind port 0
	tp.send(0, udpFrame(macA, macB, 64))
	tp.e.Run()
	if got := tp.sw.HairpinDrops(); got != 1 {
		t.Fatalf("HairpinDrops = %d, want 1", got)
	}
	if got := ledger.Count(hop, wire.DropHairpin); got != 1 {
		t.Fatalf("ledger hairpins = %d, want 1", got)
	}
	if len(tp.rx[0]) != 0 && len(tp.rx[1]) != 0 {
		t.Fatal("hairpin frame was forwarded")
	}
}

// Drop classification: overflowing an egress FIFO at a speed-conversion
// point is rate-boundary, same-rate overflow is egress-overflow; the
// Port.Drops view counts both.
func TestDropReasonClassifiesRateBoundary(t *testing.T) {
	e := sim.NewEngine()
	// Port 0 ingress at 40G, port 1 egress at 10G, queue of 2: sustained
	// 40G input must tail-drop at the conversion point.
	sw := New(e, Config{
		Ports:           2,
		PortRates:       []wire.Rate{wire.Rate40G},
		EgressQueueCap:  2,
		LookupPerPacket: sim.Nanosecond,
		LookupPerByte:   sim.Picoseconds(10),
	})
	ledger := &wire.DropLedger{}
	hop := ledger.Add("conv")
	sw.SetDropSite(ledger, hop)
	sw.Learn(macB, 1)
	sink := wire.EndpointFunc(func(f *wire.Frame, _, _ sim.Time) { f.Release() })
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, &sink))
	in := wire.NewLink(e, wire.Rate40G, 0, sw.Port(0))
	for i := 0; i < 64; i++ {
		in.Transmit(udpFrame(macA, macB, 512))
	}
	e.Run()
	rb := ledger.Count(hop, wire.DropRateBoundary)
	if rb == 0 {
		t.Fatal("conversion overflow not classified as rate-boundary")
	}
	if eo := ledger.Count(hop, wire.DropEgressOverflow); eo != 0 {
		t.Fatalf("conversion overflow misclassified as egress-overflow ×%d", eo)
	}
	if got := sw.Port(1).Drops(); got != rb {
		t.Fatalf("Port.Drops view %d != ledger rate-boundary %d", got, rb)
	}
}

// ECMP groups: flows spray deterministically across members, each flow
// sticks to one member, and both members carry traffic for a multi-flow
// workload.
func TestECMPSprayPerFlowSticky(t *testing.T) {
	tp := newTopo(t, Config{Ports: 3}, 3)
	gid := tp.sw.AddGroup(1, 2)
	tp.sw.LearnGroup(macB, gid)

	// 8 flows × 4 packets each: every packet of one flow must take the
	// same member port.
	for rep := 0; rep < 4; rep++ {
		for flow := 0; flow < 8; flow++ {
			f := wire.NewFrame(packet.UDPSpec{
				SrcMAC: macA, DstMAC: macB,
				SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
				SrcPort: uint16(1000 + flow), DstPort: 2000, FrameSize: 128,
			}.Build())
			tp.send(0, f)
		}
	}
	tp.e.Run()
	got1, got2 := len(tp.rx[1]), len(tp.rx[2])
	if got1+got2 != 32 {
		t.Fatalf("delivered %d+%d, want 32", got1, got2)
	}
	if got1 == 0 || got2 == 0 {
		t.Fatalf("8 flows collapsed onto one member: %d/%d", got1, got2)
	}
	if got1%4 != 0 || got2%4 != 0 {
		t.Fatalf("a flow straddled members: %d/%d (want multiples of 4)", got1, got2)
	}
	if tp.sw.Sprays() != 32 {
		t.Fatalf("Sprays = %d, want 32", tp.sw.Sprays())
	}
}

// A flood treats a group as one logical port: exactly one member
// carries the copy.
func TestFloodSendsOneCopyPerGroup(t *testing.T) {
	tp := newTopo(t, Config{Ports: 3}, 3)
	tp.sw.AddGroup(1, 2)
	tp.send(0, udpFrame(macA, macC, 64)) // unknown dst: flood
	tp.e.Run()
	if got := len(tp.rx[1]) + len(tp.rx[2]); got != 1 {
		t.Fatalf("flood delivered %d copies into a 2-member group, want 1", got)
	}
}

// Group bookkeeping is validated at registration.
func TestAddGroupValidates(t *testing.T) {
	e := sim.NewEngine()
	sw := New(e, Config{Ports: 4})
	gid := sw.AddGroup(1, 2)
	if ports := sw.GroupPorts(gid); len(ports) != 2 || ports[0] != 1 || ports[1] != 2 {
		t.Fatalf("GroupPorts = %v", ports)
	}
	for _, fn := range []func(){
		func() { sw.AddGroup(3) },          // too few members
		func() { sw.AddGroup(2, 3) },       // port 2 already grouped
		func() { sw.AddGroup(0, 9) },       // out of range
		func() { sw.LearnGroup(macA, 99) }, // unknown group
		func() { sw.LearnGroup(macA, 0) },  // groups are 1-based
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid group operation did not panic")
				}
			}()
			fn()
		}()
	}
}

// LAG-aware learning: reverse traffic arriving over a bundle member
// must not collapse a group-learned station onto that single member;
// arrival on a non-member port (a real station move) must relearn.
func TestGroupLearningSurvivesReverseTraffic(t *testing.T) {
	tp := newTopo(t, Config{Ports: 4}, 4)
	gid := tp.sw.AddGroup(1, 2)
	tp.sw.LearnGroup(macB, gid)

	// B replies over member port 2: the group pin must survive, so
	// traffic for B keeps spraying (8 flows must still use both members).
	tp.sw.Learn(macA, 0)
	tp.send(2, udpFrame(macB, macA, 64))
	for flow := 0; flow < 8; flow++ {
		f := wire.NewFrame(packet.UDPSpec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
			SrcPort: uint16(1000 + flow), DstPort: 2000, FrameSize: 128,
		}.Build())
		tp.send(0, f)
	}
	tp.e.Run()
	if len(tp.rx[1]) == 0 || len(tp.rx[2]) == 0 {
		t.Fatalf("reverse traffic collapsed the bundle: member counts %d/%d",
			len(tp.rx[1]), len(tp.rx[2]))
	}

	// B then shows up on non-member port 3: the station moved, so the
	// group pin is replaced and traffic follows it there.
	tp.send(3, udpFrame(macB, macA, 64))
	before := len(tp.rx[3])
	tp.send(0, udpFrame(macA, macB, 64))
	tp.e.Run()
	if len(tp.rx[3]) != before+1 {
		t.Fatal("station move off the bundle was not relearned")
	}
}

// A frame must never be sprayed back into the bundle it arrived on:
// ingress on one member, destination group-learned on the same bundle,
// is a hairpin drop even when the hash picks the sibling member.
func TestGroupHairpinDropped(t *testing.T) {
	tp := newTopo(t, Config{Ports: 4}, 4)
	gid := tp.sw.AddGroup(1, 2)
	tp.sw.LearnGroup(macB, gid)
	ledger := &wire.DropLedger{}
	hop := ledger.Add("sw")
	tp.sw.SetDropSite(ledger, hop)

	// 8 flows in from member port 1 toward the group: with a correct
	// hairpin rule nothing leaves on either member.
	for flow := 0; flow < 8; flow++ {
		f := wire.NewFrame(packet.UDPSpec{
			SrcMAC: macC, DstMAC: macB,
			SrcIP: packet.IP4{10, 0, 0, 3}, DstIP: packet.IP4{10, 0, 0, 2},
			SrcPort: uint16(4000 + flow), DstPort: 2000, FrameSize: 128,
		}.Build())
		tp.send(1, f)
	}
	tp.e.Run()
	if got := len(tp.rx[1]) + len(tp.rx[2]); got != 0 {
		t.Fatalf("%d frames sprayed back into their own bundle", got)
	}
	if got := tp.sw.HairpinDrops(); got != 8 {
		t.Fatalf("HairpinDrops = %d, want 8", got)
	}
	if got := ledger.Count(hop, wire.DropHairpin); got != 8 {
		t.Fatalf("ledger hairpins = %d, want 8", got)
	}
}
