package openflow

import (
	"encoding/binary"
	"fmt"
)

// Stats types (ofp_stats_types).
const (
	StatsDesc      uint16 = 0
	StatsFlow      uint16 = 1
	StatsAggregate uint16 = 2
	StatsTable     uint16 = 3
	StatsPort      uint16 = 4
)

// StatsRequest is OFPT_STATS_REQUEST. Exactly one of the typed request
// bodies is set, matching StatsType.
type StatsRequest struct {
	StatsType uint16
	Flags     uint16
	Flow      *FlowStatsRequest // StatsFlow and StatsAggregate
	Port      *PortStatsRequest // StatsPort
}

// FlowStatsRequest selects the flows a flow/aggregate stats request
// covers.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// PortStatsRequest selects a port (PortNone = all ports).
type PortStatsRequest struct {
	PortNo uint16
}

// Type implements Message.
func (*StatsRequest) Type() MsgType { return TypeStatsRequest }
func (m *StatsRequest) encode(b []byte) []byte {
	b = be16(b, m.StatsType)
	b = be16(b, m.Flags)
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		fr := m.Flow
		if fr == nil {
			fr = &FlowStatsRequest{Match: MatchAll(), OutPort: PortNone}
		}
		b = fr.Match.encode(b)
		b = append(b, fr.TableID, 0)
		b = be16(b, fr.OutPort)
	case StatsPort:
		pr := m.Port
		if pr == nil {
			pr = &PortStatsRequest{PortNo: PortNone}
		}
		b = be16(b, pr.PortNo)
		b = append(b, make([]byte, 6)...)
	}
	return b
}
func (m *StatsRequest) decode(d []byte) error {
	if len(d) < 4 {
		return ErrTruncated
	}
	m.StatsType = binary.BigEndian.Uint16(d[0:2])
	m.Flags = binary.BigEndian.Uint16(d[2:4])
	body := d[4:]
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		if len(body) < matchLen+4 {
			return ErrTruncated
		}
		fr := &FlowStatsRequest{}
		if err := fr.Match.decode(body); err != nil {
			return err
		}
		fr.TableID = body[matchLen]
		fr.OutPort = binary.BigEndian.Uint16(body[matchLen+2 : matchLen+4])
		m.Flow = fr
	case StatsPort:
		if len(body) < 8 {
			return ErrTruncated
		}
		m.Port = &PortStatsRequest{PortNo: binary.BigEndian.Uint16(body[0:2])}
	}
	return nil
}

// FlowStats is one ofp_flow_stats entry.
type FlowStats struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

const flowStatsFixed = 4 + matchLen + 44 // length..actions

func (f *FlowStats) encode(b []byte) []byte {
	acts := encodeActions(f.Actions)
	b = be16(b, uint16(flowStatsFixed+len(acts)))
	b = append(b, f.TableID, 0)
	b = f.Match.encode(b)
	b = be32(b, f.DurationSec)
	b = be32(b, f.DurationNsec)
	b = be16(b, f.Priority)
	b = be16(b, f.IdleTimeout)
	b = be16(b, f.HardTimeout)
	b = append(b, make([]byte, 6)...)
	b = be64(b, f.Cookie)
	b = be64(b, f.PacketCount)
	b = be64(b, f.ByteCount)
	return append(b, acts...)
}

func (f *FlowStats) decode(d []byte) (rest []byte, err error) {
	if len(d) < flowStatsFixed {
		return nil, ErrTruncated
	}
	length := int(binary.BigEndian.Uint16(d[0:2]))
	if length < flowStatsFixed || length > len(d) {
		return nil, ErrBadLength
	}
	f.TableID = d[2]
	if err := f.Match.decode(d[4:]); err != nil {
		return nil, err
	}
	p := d[4+matchLen:]
	f.DurationSec = binary.BigEndian.Uint32(p[0:4])
	f.DurationNsec = binary.BigEndian.Uint32(p[4:8])
	f.Priority = binary.BigEndian.Uint16(p[8:10])
	f.IdleTimeout = binary.BigEndian.Uint16(p[10:12])
	f.HardTimeout = binary.BigEndian.Uint16(p[12:14])
	f.Cookie = binary.BigEndian.Uint64(p[20:28])
	f.PacketCount = binary.BigEndian.Uint64(p[28:36])
	f.ByteCount = binary.BigEndian.Uint64(p[36:44])
	f.Actions, err = decodeActions(d[flowStatsFixed:length])
	if err != nil {
		return nil, err
	}
	return d[length:], nil
}

// AggregateStats is ofp_aggregate_stats_reply.
type AggregateStats struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

func (a *AggregateStats) encode(b []byte) []byte {
	b = be64(b, a.PacketCount)
	b = be64(b, a.ByteCount)
	b = be32(b, a.FlowCount)
	return append(b, 0, 0, 0, 0)
}

func (a *AggregateStats) decode(d []byte) error {
	if len(d) < 24 {
		return ErrTruncated
	}
	a.PacketCount = binary.BigEndian.Uint64(d[0:8])
	a.ByteCount = binary.BigEndian.Uint64(d[8:16])
	a.FlowCount = binary.BigEndian.Uint32(d[16:20])
	return nil
}

// PortStats is one ofp_port_stats entry (the subset of counters the
// simulated datapath maintains; unsupported counters encode as
// 0xffffffffffffffff per the spec's "unavailable" convention).
type PortStats struct {
	PortNo    uint16
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

const portStatsLen = 104

const unavailable = ^uint64(0)

func (p *PortStats) encode(b []byte) []byte {
	b = be16(b, p.PortNo)
	b = append(b, make([]byte, 6)...)
	b = be64(b, p.RxPackets)
	b = be64(b, p.TxPackets)
	b = be64(b, p.RxBytes)
	b = be64(b, p.TxBytes)
	b = be64(b, p.RxDropped)
	b = be64(b, p.TxDropped)
	for i := 0; i < 6; i++ { // rx_errors..collisions unavailable
		b = be64(b, unavailable)
	}
	return b
}

func (p *PortStats) decode(d []byte) ([]byte, error) {
	if len(d) < portStatsLen {
		return nil, ErrTruncated
	}
	p.PortNo = binary.BigEndian.Uint16(d[0:2])
	p.RxPackets = binary.BigEndian.Uint64(d[8:16])
	p.TxPackets = binary.BigEndian.Uint64(d[16:24])
	p.RxBytes = binary.BigEndian.Uint64(d[24:32])
	p.TxBytes = binary.BigEndian.Uint64(d[32:40])
	p.RxDropped = binary.BigEndian.Uint64(d[40:48])
	p.TxDropped = binary.BigEndian.Uint64(d[48:56])
	return d[portStatsLen:], nil
}

// StatsReply is OFPT_STATS_REPLY. The body matching StatsType is set.
type StatsReply struct {
	StatsType uint16
	Flags     uint16
	Flows     []FlowStats     // StatsFlow
	Aggregate *AggregateStats // StatsAggregate
	Ports     []PortStats     // StatsPort
}

// Type implements Message.
func (*StatsReply) Type() MsgType { return TypeStatsReply }
func (m *StatsReply) encode(b []byte) []byte {
	b = be16(b, m.StatsType)
	b = be16(b, m.Flags)
	switch m.StatsType {
	case StatsFlow:
		for i := range m.Flows {
			b = m.Flows[i].encode(b)
		}
	case StatsAggregate:
		agg := m.Aggregate
		if agg == nil {
			agg = &AggregateStats{}
		}
		b = agg.encode(b)
	case StatsPort:
		for i := range m.Ports {
			b = m.Ports[i].encode(b)
		}
	}
	return b
}
func (m *StatsReply) decode(d []byte) error {
	if len(d) < 4 {
		return ErrTruncated
	}
	m.StatsType = binary.BigEndian.Uint16(d[0:2])
	m.Flags = binary.BigEndian.Uint16(d[2:4])
	body := d[4:]
	switch m.StatsType {
	case StatsFlow:
		m.Flows = nil
		for len(body) > 0 {
			var fs FlowStats
			rest, err := fs.decode(body)
			if err != nil {
				return err
			}
			m.Flows = append(m.Flows, fs)
			body = rest
		}
	case StatsAggregate:
		m.Aggregate = &AggregateStats{}
		return m.Aggregate.decode(body)
	case StatsPort:
		m.Ports = nil
		for len(body) > 0 {
			var ps PortStats
			rest, err := ps.decode(body)
			if err != nil {
				return err
			}
			m.Ports = append(m.Ports, ps)
			body = rest
		}
	default:
		return fmt.Errorf("openflow: unsupported stats type %d", m.StatsType)
	}
	return nil
}
