// Demo Part I: "accurately measure the packet-processing latency of a
// legacy switch under different load conditions".
//
// Two OSNT ports are connected to the switch under test. One generates
// traffic at a finely controlled rate with the transmission timestamp
// embedded in each packet; the other captures packets after they traverse
// the switch, and the userspace application estimates the switching
// latency from the two hardware timestamps — exactly the workflow the
// paper demonstrates. The sweep also contrasts store-and-forward and
// cut-through forwarding.
//
//	go run ./examples/switch-latency
package main

import (
	"fmt"
	"log"

	"osnt/internal/core"
	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

var probe = packet.UDPSpec{
	SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
	DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

func measure(mode switchsim.ForwardingMode, frameSize int, load float64) *core.LatencyResult {
	engine := sim.NewEngine()
	// The Demo Part I rig as a topology graph, with the capture-side
	// station pre-learned so nothing floods.
	t := topo.New().
		Tester("osnt", netfpga.Config{}).
		DUT("sw", switchsim.Config{
			Mode:          mode,
			LookupPerByte: sim.Picoseconds(820),
			LookupJitter:  0.5,
			Seed:          11,
		}).
		Link("osnt:0", "sw:0").
		Duplex("sw:1", "osnt:1").
		MustBuild(engine)
	device := t.Tester("osnt")
	t.DUT("sw").Learn(probe.DstMAC, 1)
	slot := wire.SerializationTime(frameSize, wire.Rate10G)
	res, err := (&core.LatencyTest{
		Device: device, TxPort: 0, RxPort: 1,
		Spec: probe, FrameSize: frameSize, Load: load,
		Spacing:  gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
		Duration: 20 * sim.Millisecond,
		Seed:     42,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	tbl := &stats.Table{
		Title: "Demo Part I: switching latency under different load conditions",
		Columns: []string{
			"mode", "frame(B)", "load(%)", "mean(µs)", "p99(µs)", "loss(%)",
		},
	}
	for _, mode := range []switchsim.ForwardingMode{switchsim.StoreAndForward, switchsim.CutThrough} {
		for _, fs := range []int{64, 512, 1518} {
			for _, load := range []float64{0.2, 0.8, 0.95} {
				res := measure(mode, fs, load)
				tbl.AddRow(
					mode.String(),
					fmt.Sprintf("%d", fs),
					fmt.Sprintf("%.0f", load*100),
					fmt.Sprintf("%.2f", res.Latency.Mean()/1e6),
					fmt.Sprintf("%.2f", float64(res.Latency.Percentile(99))/1e6),
					fmt.Sprintf("%.2f", res.LossFraction()*100),
				)
			}
		}
	}
	fmt.Println(tbl.String())
	fmt.Println("note: cut-through latency is lower by the store time of the frame;")
	fmt.Println("both modes queue (and eventually drop) as the load approaches the")
	fmt.Println("switch's internal capacity — the hockey stick of Demo Part I.")
}
