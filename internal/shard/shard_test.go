package shard_test

import (
	"fmt"
	"testing"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/shard"
	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

func TestNewClusterRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster(0) did not panic")
		}
	}()
	shard.NewCluster(0)
}

func TestCrossLinkRejectsZeroDelay(t *testing.T) {
	c := shard.NewCluster(2)
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("CrossLink with zero delay did not panic")
		}
	}()
	c.CrossLink(0, 1, c.Engine(0), wire.Rate10G, 0, nil)
}

func TestLookaheadIsMinimumCutDelay(t *testing.T) {
	c := shard.NewCluster(2)
	defer c.Close()
	if got := c.Lookahead(); got != 0 {
		t.Fatalf("lookahead before any boundary link: %v, want 0", got)
	}
	var sink topo.Sink
	c.CrossLink(0, 1, c.Engine(0), wire.Rate10G, 5*sim.Microsecond, &sink)
	c.CrossLink(1, 0, c.Engine(1), wire.Rate10G, 2*sim.Microsecond, &sink)
	c.CrossLink(0, 1, c.Engine(0), wire.Rate10G, 9*sim.Microsecond, &sink)
	if got := c.Lookahead(); got != 2*sim.Microsecond {
		t.Fatalf("lookahead = %v, want the 2µs minimum cut delay", got)
	}
}

func TestSingleShardPassthrough(t *testing.T) {
	c := shard.NewCluster(1)
	defer c.Close()
	if c.Shards() != 1 || len(c.Engines()) != 1 {
		t.Fatalf("1-shard cluster reports %d shards / %d engines", c.Shards(), len(c.Engines()))
	}
	fired := 0
	c.Engine(0).Schedule(sim.Time(100), func() { fired++ })
	c.RunUntil(sim.Time(50))
	if fired != 0 {
		t.Fatal("event before its instant")
	}
	c.RunFor(sim.Duration(50))
	if fired != 1 {
		t.Fatalf("event at t=100 fired %d times after RunUntil(100)", fired)
	}
	c.Close() // idempotent, no goroutines to stop
	c.Close()
}

// randomScenario describes one randomized delayed topology: n testers
// whose ports are joined by a random permutation of cables, each with
// its own positive propagation delay, plus per-port generator seeds.
// The description is plain data so the same scenario can be declared
// again for every shard count (a topo.Builder is single-use).
type randomScenario struct {
	testers int
	ports   int
	// wire[i] is the receiving port index (global: tester*ports+port)
	// of the cable headed by transmit port i.
	wire []int
	// delay[i] is cable i's propagation delay, always positive so every
	// partition of the testers is a legal cut.
	delay []sim.Duration
	seed  []uint64
}

func makeScenario(rng *sim.Rand) randomScenario {
	s := randomScenario{testers: 3 + rng.Intn(3), ports: 2}
	n := s.testers * s.ports
	s.wire = rng.Perm(n)
	s.delay = make([]sim.Duration, n)
	s.seed = make([]uint64, n)
	for i := range s.delay {
		// 200 ns – 2.2 µs: cuts get lookaheads spanning an order of
		// magnitude, so windows and barrier cadence vary per scenario.
		s.delay[i] = sim.Duration(200+rng.Intn(2000)) * sim.Nanosecond
		s.seed[i] = rng.Uint64()
	}
	return s
}

// runScenario declares the scenario onto a cluster partitioned by
// shardOf (tester index → shard) and returns the traffic digest: per
// receiving port, an FNV-1a fold over every delivered frame's embedded
// send timestamp, measured latency and size, combined in global port
// order. Any retiming, reordering or loss anywhere changes it.
func runScenario(t *testing.T, s randomScenario, shards int, shardOf func(i int) int) uint64 {
	t.Helper()
	cl := shard.NewCluster(shards)
	defer cl.Close()

	b := topo.New()
	for i := 0; i < s.testers; i++ {
		b.Tester(fmt.Sprintf("t%d", i), netfpga.Config{Ports: s.ports})
	}
	ref := func(global int) string {
		return fmt.Sprintf("t%d:%d", global/s.ports, global%s.ports)
	}
	for from, to := range s.wire {
		b.LinkAt(ref(from), ref(to), 0, s.delay[from])
	}
	tp, err := b.BuildPartitioned(cl.Partition(func(name string) int {
		var i int
		fmt.Sscanf(name, "t%d", &i)
		return shardOf(i)
	}))
	if err != nil {
		t.Fatal(err)
	}

	digests := make([]uint64, s.testers*s.ports)
	for i := range digests {
		digests[i] = 14695981039346656037
		d := &digests[i]
		tp.Port(ref(i)).OnReceive = func(f *wire.Frame, _ sim.Time, ts timing.Timestamp) {
			if t0, ok := gen.ExtractTimestamp(f.Data, gen.DefaultTimestampOffset); ok {
				*d = fnvMix(fnvMix(fnvMix(*d, uint64(t0)), uint64(ts.Sub(t0))), uint64(f.Size))
			}
		}
	}

	var gens []*gen.Generator
	for i := range s.wire {
		g, err := gen.New(tp.Port(ref(i)), gen.Config{
			Source: &gen.UDPFlowSource{Spec: packet.UDPSpec{
				SrcMAC: packet.MAC{2, 0, 0, 0, 0, byte(i + 1)},
				DstMAC: packet.MAC{2, 0, 0, 0, 1, byte(s.wire[i] + 1)},
				SrcIP:  packet.IP4{10, 0, 0, byte(i + 1)},
				DstIP:  packet.IP4{10, 0, 1, byte(s.wire[i] + 1)},
			}, NumFlows: 4, FrameSize: 512},
			Spacing:        gen.Poisson{Mean: 2 * wire.SerializationTime(512, wire.Rate10G)},
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           s.seed[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(0)
		gens = append(gens, g)
	}
	cl.RunUntil(sim.Time(50 * sim.Microsecond))
	for _, g := range gens {
		g.Stop()
	}
	cl.Run() // drain in-flight frames

	digest := uint64(14695981039346656037)
	for _, d := range digests {
		digest = fnvMix(digest, d)
	}
	return digest
}

// fnvMix folds one 64-bit value into an FNV-1a digest byte by byte
// (the same fold the E20 experiment uses).
func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * prime
		v >>= 8
	}
	return h
}

// TestRandomPartitionDigest is the fuzz-style partition test: for a set
// of seeded random delayed topologies, ANY cut — every tester assigned
// to a uniformly random shard, including lopsided and empty-shard
// assignments — reproduces the single-shard stream digest exactly.
// Every cable carries a positive delay, so every assignment is legal;
// determinism must come from the structural delivery keys and the
// sorted boundary replay, not from any property of a particular
// partition shape.
func TestRandomPartitionDigest(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := sim.NewRand(0x5eed<<8 | uint64(trial))
			s := makeScenario(rng)
			want := runScenario(t, s, 1, func(int) int { return 0 })
			for _, shards := range []int{2, 3, 4} {
				for cut := 0; cut < 3; cut++ {
					assign := make([]int, s.testers)
					for i := range assign {
						assign[i] = rng.Intn(shards)
					}
					got := runScenario(t, s, shards, func(i int) int { return assign[i] })
					if got != want {
						t.Fatalf("digest %016x at %d shards (cut %v) != single-shard %016x",
							got, shards, assign, want)
					}
				}
			}
		})
	}
}
