package packet

// This file holds the transport-layer codecs: UDP, TCP and ICMPv4.

// pseudoHeader describes the network-layer context a transport checksum
// covers. Either v4 or v6 addresses are set.
type pseudoHeader struct {
	v6       bool
	src4     IP4
	dst4     IP4
	src6     IP6
	dst6     IP6
	proto    byte
	totalLen uint32
}

func (p *pseudoHeader) sum() uint32 {
	var s uint32
	if p.v6 {
		s += sumBytes(p.src6[:])
		s += sumBytes(p.dst6[:])
	} else {
		s += sumBytes(p.src4[:])
		s += sumBytes(p.dst4[:])
	}
	s += uint32(p.proto)
	s += p.totalLen & 0xffff
	s += p.totalLen >> 16
	return s
}

// PseudoV4 returns the checksum seed for a transport segment carried by
// IPv4 between src and dst with the given transport protocol and length.
func PseudoV4(src, dst IP4, proto byte, length int) uint32 {
	p := pseudoHeader{src4: src, dst4: dst, proto: proto, totalLen: uint32(length)}
	return p.sum()
}

// PseudoV6 is PseudoV4 for IPv6.
func PseudoV6(src, dst IP6, proto byte, length int) uint32 {
	p := pseudoHeader{v6: true, src6: src, dst6: dst, proto: proto, totalLen: uint32(length)}
	return p.sum()
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	payload          []byte

	// Pseudo-header context for checksum computation during serialization.
	// Set via SetNetworkForChecksum.
	pseudo *pseudoHeader
}

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// DecodeFromBytes parses a UDP header, resetting u.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrTooShort
	}
	u.SrcPort = beU16(data[0:2])
	u.DstPort = beU16(data[2:4])
	u.Length = beU16(data[4:6])
	u.Checksum = beU16(data[6:8])
	end := len(data)
	if l := int(u.Length); l >= UDPHeaderLen && l <= len(data) {
		end = l
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// Payload returns the UDP payload.
func (u *UDP) Payload() []byte { return u.payload }

// SetNetworkForChecksum records the IPv4 endpoints used to compute the
// pseudo-header checksum when serializing with ComputeChecksums.
func (u *UDP) SetNetworkForChecksum(src, dst IP4) {
	u.pseudo = &pseudoHeader{src4: src, dst4: dst, proto: ProtoUDP}
}

// SetNetworkForChecksumV6 is SetNetworkForChecksum for IPv6.
func (u *UDP) SetNetworkForChecksumV6(src, dst IP6) {
	u.pseudo = &pseudoHeader{v6: true, src6: src, dst6: dst, proto: ProtoUDP}
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := b.Len()
	h := b.PrependBytes(UDPHeaderLen)
	putU16(h[0:2], u.SrcPort)
	putU16(h[2:4], u.DstPort)
	if opts.FixLengths {
		u.Length = uint16(UDPHeaderLen + payloadLen)
	}
	putU16(h[4:6], u.Length)
	putU16(h[6:8], 0)
	if opts.ComputeChecksums && u.pseudo != nil {
		u.pseudo.totalLen = uint32(u.Length)
		seg := b.Bytes()[:u.Length]
		u.Checksum = Checksum(seg, u.pseudo.sum())
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: zero means "no checksum"
		}
	}
	putU16(h[6:8], u.Checksum)
	return nil
}

// VerifyChecksum checks the UDP checksum of a decoded segment. seg must be
// the full UDP segment (header+payload) and the addresses those of the
// enclosing IP header.
func (u *UDP) VerifyChecksum(seg []byte, src, dst IP4) bool {
	if u.Checksum == 0 {
		return true // checksum disabled
	}
	return Checksum(seg, PseudoV4(src, dst, ProtoUDP, len(seg))) == 0
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP header with raw options.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
	payload          []byte

	pseudo *pseudoHeader
}

// TCPMinLen is the option-less TCP header size.
const TCPMinLen = 20

// DecodeFromBytes parses a TCP header, resetting t.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPMinLen {
		return ErrTooShort
	}
	off := int(data[12]>>4) * 4
	if off < TCPMinLen || len(data) < off {
		return ErrTooShort
	}
	t.SrcPort = beU16(data[0:2])
	t.DstPort = beU16(data[2:4])
	t.Seq = beU32(data[4:8])
	t.Ack = beU32(data[8:12])
	t.Flags = data[13] & 0x3f
	t.Window = beU16(data[14:16])
	t.Checksum = beU16(data[16:18])
	t.Urgent = beU16(data[18:20])
	t.Options = data[TCPMinLen:off]
	t.payload = data[off:]
	return nil
}

// Payload returns the TCP payload.
func (t *TCP) Payload() []byte { return t.payload }

// SetNetworkForChecksum records the IPv4 endpoints used for the
// pseudo-header checksum.
func (t *TCP) SetNetworkForChecksum(src, dst IP4) {
	t.pseudo = &pseudoHeader{src4: src, dst4: dst, proto: ProtoTCP}
}

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	optLen := (len(t.Options) + 3) / 4 * 4
	hl := TCPMinLen + optLen
	h := b.PrependBytes(hl)
	putU16(h[0:2], t.SrcPort)
	putU16(h[2:4], t.DstPort)
	putU32(h[4:8], t.Seq)
	putU32(h[8:12], t.Ack)
	h[12] = uint8(hl/4) << 4
	h[13] = t.Flags
	putU16(h[14:16], t.Window)
	putU16(h[16:18], 0)
	putU16(h[18:20], t.Urgent)
	for i := range h[TCPMinLen:] {
		h[TCPMinLen+i] = 0
	}
	copy(h[TCPMinLen:], t.Options)
	if opts.ComputeChecksums && t.pseudo != nil {
		seg := b.Bytes()
		t.pseudo.totalLen = uint32(len(seg))
		t.Checksum = Checksum(seg, t.pseudo.sum())
	}
	putU16(h[16:18], t.Checksum)
	return nil
}

// VerifyChecksum checks the TCP checksum of a decoded segment.
func (t *TCP) VerifyChecksum(seg []byte, src, dst IP4) bool {
	return Checksum(seg, PseudoV4(src, dst, ProtoTCP, len(seg))) == 0
}

// ICMPv4 message types used in tests and examples.
const (
	ICMPv4EchoReply   uint8 = 0
	ICMPv4EchoRequest uint8 = 8
)

// ICMPv4 is an ICMPv4 header. Rest carries the type-specific second word
// (identifier/sequence for echo).
type ICMPv4 struct {
	Type, Code uint8
	Checksum   uint16
	Rest       uint32
	payload    []byte
}

// ICMPv4HeaderLen is the ICMPv4 header size.
const ICMPv4HeaderLen = 8

// DecodeFromBytes parses an ICMPv4 header, resetting c.
func (c *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPv4HeaderLen {
		return ErrTooShort
	}
	c.Type = data[0]
	c.Code = data[1]
	c.Checksum = beU16(data[2:4])
	c.Rest = beU32(data[4:8])
	c.payload = data[ICMPv4HeaderLen:]
	return nil
}

// Payload returns the ICMP payload.
func (c *ICMPv4) Payload() []byte { return c.payload }

// SerializeTo implements SerializableLayer.
func (c *ICMPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	h := b.PrependBytes(ICMPv4HeaderLen)
	h[0] = c.Type
	h[1] = c.Code
	putU16(h[2:4], 0)
	putU32(h[4:8], c.Rest)
	if opts.ComputeChecksums {
		c.Checksum = Checksum(b.Bytes(), 0)
	}
	putU16(h[2:4], c.Checksum)
	return nil
}

// Checksum computes the Internet checksum (RFC 1071) of data with an
// initial partial sum, typically a pseudo-header sum.
//
// The accumulator walks 8-byte big-endian words with end-around carry —
// the word-at-a-time form compilers turn into straight-line loads and
// adc chains. It computes the same ones-complement sum as the 16-bit
// pair loop because 2^16 ≡ 1 (mod 2^16−1): every 16-bit lane of a
// 64-bit word carries weight 1 once the final folds collapse it, and a
// wrapped 64-bit add loses exactly 2^64 ≡ 1, which the carry increment
// restores.
func Checksum(data []byte, initial uint32) uint16 {
	sum := uint64(initial)
	for len(data) >= 8 {
		w := uint64(data[0])<<56 | uint64(data[1])<<48 | uint64(data[2])<<40 | uint64(data[3])<<32 |
			uint64(data[4])<<24 | uint64(data[5])<<16 | uint64(data[6])<<8 | uint64(data[7])
		sum += w
		if sum < w {
			sum++ // end-around carry: 2^64 ≡ 1 (mod 2^16−1)
		}
		data = data[8:]
	}
	// One 64→33-bit fold makes the tail adds overflow-free.
	sum = sum>>32 + sum&0xffffffff
	if len(data) >= 4 {
		sum += uint64(data[0])<<24 | uint64(data[1])<<16 | uint64(data[2])<<8 | uint64(data[3])
		data = data[4:]
	}
	if len(data) >= 2 {
		sum += uint64(data[0])<<8 | uint64(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint64(data[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func sumBytes(b []byte) uint32 {
	var s uint32
	for i := 0; i+1 < len(b); i += 2 {
		s += uint32(b[i])<<8 | uint32(b[i+1])
	}
	return s
}
