package timing

import (
	"testing"
	"testing/quick"

	"osnt/internal/sim"
)

func TestTimestampRoundTrip(t *testing.T) {
	cases := []sim.Time{
		0,
		sim.Time(sim.Nanosecond),
		sim.Time(6250),                         // one hardware tick
		sim.Time(sim.Second),                   // 1 s
		sim.Time(86400) * sim.Time(sim.Second), // 1 day
		123456789012345,
	}
	for _, tm := range cases {
		ts := FromSim(tm)
		back := ts.Sim()
		diff := back.Sub(tm)
		if diff < -sim.Duration(1000) || diff > sim.Duration(1000) {
			t.Errorf("round trip of %v drifted by %v", tm, diff)
		}
	}
}

// Property: FromSim/Sim round trip never loses more than one fraction unit
// (2^-32 s ≈ 233 ps) for any representable instant.
func TestPropertyTimestampRoundTrip(t *testing.T) {
	f := func(ps uint64) bool {
		ps %= uint64(1) << 50 // keep within ~13 days, well inside range
		tm := sim.Time(ps)
		diff := FromSim(tm).Sim().Sub(tm)
		return diff >= -233 && diff <= 233
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: timestamps preserve ordering.
func TestPropertyTimestampMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= uint64(1) << 50
		b %= uint64(1) << 50
		ta, tb := sim.Time(a), sim.Time(b)
		if ta <= tb {
			return FromSim(ta) <= FromSim(tb)
		}
		return FromSim(ta) >= FromSim(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampFields(t *testing.T) {
	// 2.5 s → seconds field 2, fraction 0.5 → 0x80000000.
	ts := FromSim(sim.Time(2500) * sim.Time(sim.Millisecond))
	if ts.Seconds() != 2 {
		t.Fatalf("Seconds = %d, want 2", ts.Seconds())
	}
	if ts.Frac() != 0x80000000 {
		t.Fatalf("Frac = %#x, want 0x80000000", ts.Frac())
	}
}

func TestTimestampSub(t *testing.T) {
	a := FromSim(sim.Time(1000 * 1000)) // 1 µs
	b := FromSim(sim.Time(3500 * 1000)) // 3.5 µs
	d := b.Sub(a)
	if d < sim.Duration(2499*1000) || d > sim.Duration(2501*1000) {
		t.Fatalf("Sub = %v, want ≈2.5µs", d)
	}
	if a.Sub(b) >= 0 {
		t.Fatalf("reverse Sub should be negative, got %v", a.Sub(b))
	}
}

func TestTimestampAdd(t *testing.T) {
	a := FromSim(sim.Time(sim.Second))
	b := a.Add(250 * sim.Microsecond)
	got := b.Sub(a)
	if got < 249999*sim.Nanosecond || got > 250001*sim.Nanosecond {
		t.Fatalf("Add(250µs) moved by %v", got)
	}
}

func TestQuantize(t *testing.T) {
	// An event 1 ps after a tick boundary must latch the boundary value.
	tick := sim.Time(Resolution)
	ts := Quantize(tick + 1)
	if ts != FromSim(tick) {
		t.Fatalf("Quantize(tick+1ps) = %v, want %v", ts, FromSim(tick))
	}
	// Quantisation error is always in [0, Resolution).
	for ps := sim.Time(0); ps < 30000; ps += 917 {
		q := Quantize(ps).Sim()
		err := ps.Sub(q)
		if err < 0 || err >= sim.Duration(Resolution) {
			t.Fatalf("Quantize(%d) error %v outside [0, 6.25ns)", ps, err)
		}
	}
}

func TestTimestampString(t *testing.T) {
	ts := FromSim(sim.Time(1500) * sim.Time(sim.Millisecond))
	if got := ts.String(); got != "1.500000000s" {
		t.Fatalf("String = %q", got)
	}
}

func TestOscillatorPerfect(t *testing.T) {
	o := NewOscillator(0, 0, 0, 1)
	for _, tm := range []sim.Time{0, 1000, sim.Time(sim.Second), 5 * sim.Time(sim.Second)} {
		if got := o.DeviceTimeAt(tm); got != tm {
			t.Fatalf("zero-offset oscillator at %v reads %v", tm, got)
		}
	}
}

func TestOscillatorDrift(t *testing.T) {
	// +50 ppm: after 1 s device time leads by 50 µs.
	o := NewOscillator(50, 0, 0, 1)
	o.DeviceTimeAt(0)
	dev := o.DeviceTimeAt(sim.Time(sim.Second))
	lead := dev.Sub(sim.Time(sim.Second))
	want := 50 * sim.Microsecond
	if lead < want-sim.Nanosecond || lead > want+sim.Nanosecond {
		t.Fatalf("50ppm oscillator lead after 1s = %v, want ≈%v", lead, want)
	}
}

func TestOscillatorNegativeDrift(t *testing.T) {
	o := NewOscillator(-10, 0, 0, 1)
	o.DeviceTimeAt(0)
	dev := o.DeviceTimeAt(10 * sim.Time(sim.Second))
	lag := sim.Time(10 * sim.Second).Sub(dev)
	want := 100 * sim.Microsecond
	if lag < want-10*sim.Nanosecond || lag > want+10*sim.Nanosecond {
		t.Fatalf("-10ppm oscillator lag after 10s = %v, want ≈%v", lag, want)
	}
}

func TestOscillatorLazyIntegrationIndependence(t *testing.T) {
	// Reading at many intermediate points must give the same trajectory as
	// reading once at the end (wander boundaries are lazily processed).
	a := NewOscillator(20, 0.5, 100*sim.Millisecond, 99)
	b := NewOscillator(20, 0.5, 100*sim.Millisecond, 99)
	a.DeviceTimeAt(0)
	b.DeviceTimeAt(0)
	for tm := sim.Time(0); tm <= 2*sim.Time(sim.Second); tm += sim.Time(10 * sim.Millisecond) {
		a.DeviceTimeAt(tm)
	}
	end := 2 * sim.Time(sim.Second)
	da, db := a.DeviceTimeAt(end), b.DeviceTimeAt(end)
	diff := da.Sub(db)
	if diff < -sim.Nanosecond || diff > sim.Nanosecond {
		t.Fatalf("read pattern changed trajectory: %v vs %v (diff %v)", da, db, diff)
	}
}

func TestOscillatorBackwardsReadPanics(t *testing.T) {
	o := NewOscillator(0, 0, 0, 1)
	o.DeviceTimeAt(1000)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards read did not panic")
		}
	}()
	o.DeviceTimeAt(500)
}

func TestOscillatorAdjustments(t *testing.T) {
	o := NewOscillator(0, 0, 0, 1)
	o.DeviceTimeAt(0)
	o.AdjustPhase(500 * sim.Nanosecond)
	dev := o.DeviceTimeAt(sim.Time(sim.Microsecond))
	lead := dev.Sub(sim.Time(sim.Microsecond))
	if lead != 500*sim.Nanosecond {
		t.Fatalf("phase step lost: lead = %v", lead)
	}
	o.AdjustFreqPPM(100)
	dev = o.DeviceTimeAt(sim.Time(sim.Microsecond) + sim.Time(sim.Second))
	lead = dev.Sub(sim.Time(sim.Microsecond) + sim.Time(sim.Second))
	want := 500*sim.Nanosecond + 100*sim.Microsecond
	if lead < want-10*sim.Nanosecond || lead > want+10*sim.Nanosecond {
		t.Fatalf("freq adjust lead = %v, want ≈%v", lead, want)
	}
}

func TestDisciplineConverges(t *testing.T) {
	e := sim.NewEngine()
	osc := NewOscillator(50, 0.01, 100*sim.Millisecond, 7)
	osc.DeviceTimeAt(0)
	d := NewDiscipline(osc)
	d.Start(e)
	e.RunUntil(120 * sim.Time(sim.Second))

	if !d.Locked() {
		t.Fatal("servo not locked after 120 PPS edges")
	}
	// Paper claim: sub-µs precision with GPS correction. Allow the first 30
	// edges for convergence.
	if max := d.MaxOffsetAfter(30); max >= sim.Microsecond {
		t.Fatalf("steady-state PPS offset %v, want < 1µs", max)
	}
	if d.Edges() != 120 {
		t.Fatalf("Edges = %d, want 120", d.Edges())
	}
}

func TestDisciplineStepsGrossOffset(t *testing.T) {
	e := sim.NewEngine()
	osc := NewOscillator(0, 0, 0, 7)
	osc.DeviceTimeAt(0)
	osc.AdjustPhase(50 * sim.Millisecond) // beyond StepThreshold
	d := NewDiscipline(osc)
	d.Start(e)
	e.RunUntil(3 * sim.Time(sim.Second))
	// After the step the clock should be aligned to within the servo noise.
	dev := osc.DeviceTimeAt(3 * sim.Time(sim.Second))
	off := absDur(dev.Sub(3 * sim.Time(sim.Second)))
	if off > sim.Microsecond {
		t.Fatalf("offset after gross step = %v", off)
	}
}

func TestFreeVsDisciplinedClock(t *testing.T) {
	// E2 in miniature: a free-running 50 ppm clock accumulates ≥ millisecond
	// error over a minute while the disciplined one stays sub-µs.
	e := sim.NewEngine()
	free := NewOscillator(50, 0.01, 100*sim.Millisecond, 3)
	free.DeviceTimeAt(0)
	disc := NewOscillator(50, 0.01, 100*sim.Millisecond, 4)
	disc.DeviceTimeAt(0)
	servo := NewDiscipline(disc)
	servo.Start(e)
	e.RunUntil(60 * sim.Time(sim.Second))

	now := e.Now()
	freeErr := absDur((&FreeClock{free}).Now(now).Sim().Sub(now))
	discErr := absDur((&DisciplinedClock{disc}).Now(now).Sim().Sub(now))
	if freeErr < sim.Millisecond {
		t.Fatalf("free-running error = %v, expected ≥ 1ms at 50ppm over 60s", freeErr)
	}
	if discErr > 2*sim.Microsecond {
		t.Fatalf("disciplined error = %v, expected µs-scale", discErr)
	}
}

func TestPerfectClockQuantises(t *testing.T) {
	var c PerfectClock
	ts := c.Now(sim.Time(Resolution) + 3000)
	if ts != FromSim(sim.Time(Resolution)) {
		t.Fatalf("PerfectClock did not quantise: %v", ts)
	}
}

func BenchmarkFromSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FromSim(sim.Time(i) * 6250)
	}
}

func BenchmarkOscillatorRead(b *testing.B) {
	o := NewOscillator(25, 0.01, 100*sim.Millisecond, 5)
	o.DeviceTimeAt(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.DeviceTimeAt(sim.Time(i) * 1000)
	}
}
