// Package hotpath is the corpus for the hot-path allocation analyzer:
// //lint:hotpath roots, same-package reachability, and each flagged
// allocation construct, plus the cold-path ignore idiom.
package hotpath

import "fmt"

type ring struct {
	buf  []int
	svc  func()
	stat uint64
}

// drain is a declared hot-path root.
//
//lint:hotpath
func (r *ring) drain(n int) {
	for i := 0; i < n; i++ {
		r.step(i)
	}
	cb := r.service // want "method value .service .* allocates a bound closure"
	cb()
}

// step is hot by reachability from drain, not by annotation.
func (r *ring) step(i int) {
	f := func() { r.stat++ } // want "closure literal in hot path step allocates"
	f()
	m := map[int]int{} // want "map literal in hot path step allocates"
	m[i] = i
	s := fmt.Sprint(i) // want "fmt.Sprint in hot path step allocates"
	_ = s
	var local []int
	local = append(local, i)        // want "append to function-local slice local in hot path step"
	r.buf = append(r.buf, local...) // amortised reuse into a field: allowed
}

// service is hot via the method value in drain.
func (r *ring) service() {
	r.stat++
}

// grow is hot and carries a deliberate cold-path exception.
//
//lint:hotpath
func (r *ring) grow(n int) {
	if cap(r.buf) < n {
		//lint:ignore hotpathalloc cold path: first use grows the buffer, steady state reuses it
		r.buf = make([]int, n)
	}
	r.buf = r.buf[:n]
}

// boxing passes a non-pointer value into an interface parameter.
//
//lint:hotpath
func (r *ring) boxing(sink func(any)) {
	sink(r.stat) // want "boxes a non-pointer value into an interface in hot path boxing"
	sink(r)      // pointer: no boxing allocation
}

// concat builds a string per call.
//
//lint:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation in hot path concat allocates"
}

// coldSetup is NOT hot: identical constructs go unflagged.
func coldSetup(n int) []int {
	m := map[int]int{}
	for i := 0; i < n; i++ {
		m[i] = i
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m[i])
	}
	return out
}

// fatal allocates only on the panic path, which is exempt.
//
//lint:hotpath
func fatal(ok bool, code int) {
	if !ok {
		panic(fmt.Sprintf("bad code %d", code))
	}
}
