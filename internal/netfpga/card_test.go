package netfpga

import (
	"testing"

	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

func frame(n int) *wire.Frame { return wire.NewFrame(make([]byte, n-4)) }

func TestCardDefaults(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{})
	if c.NumPorts() != 4 {
		t.Fatalf("ports = %d, want 4", c.NumPorts())
	}
	if c.Rate() != wire.Rate10G {
		t.Fatalf("rate = %v", c.Rate())
	}
	if c.Regs.Get("device.ports") != 4 {
		t.Fatal("device.ports register")
	}
	for i := 0; i < 4; i++ {
		if c.Port(i).Index() != i || c.Port(i).Card() != c {
			t.Fatal("port wiring")
		}
	}
	if c.CaptureQueues() != 8 {
		t.Fatalf("capture queue budget = %d, want 8", c.CaptureQueues())
	}
	if New(e, Config{CaptureQueues: 2}).CaptureQueues() != 2 {
		t.Fatal("capture queue budget override ignored")
	}
}

func TestPortTransmitTimestampLatch(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{})
	p := c.Port(0)

	var rxFrames int
	sink := wire.EndpointFunc(func(f *wire.Frame, _, _ sim.Time) { rxFrames++ })
	p.SetLink(wire.NewLink(e, wire.Rate10G, 0, sink))

	var latched []sim.Time
	p.OnTransmit = func(f *wire.Frame, start sim.Time, ts timing.Timestamp) {
		latched = append(latched, start)
		if ts != timing.Quantize(start) {
			t.Errorf("latched ts %v != quantized start %v", ts, timing.Quantize(start))
		}
	}

	// Enqueue 3 frames at t=0: the MAC must latch timestamps at the
	// *start* of each serialisation, spaced by exactly one 64B slot.
	for i := 0; i < 3; i++ {
		if !p.Enqueue(frame(64)) {
			t.Fatal("enqueue failed")
		}
	}
	e.Run()
	want := []sim.Time{0, 67200, 134400}
	for i := range want {
		if latched[i] != want[i] {
			t.Fatalf("latch %d at %v, want %v", i, latched[i], want[i])
		}
	}
	if rxFrames != 3 {
		t.Fatalf("delivered %d", rxFrames)
	}
	if got := p.TxStats().Packets; got != 3 {
		t.Fatalf("tx packets = %d", got)
	}
	if got := p.TxStats().Bytes; got != 3*84 {
		t.Fatalf("tx wire bytes = %d", got)
	}
	if c.Regs.Get("port0.tx_packets") != 3 {
		t.Fatal("tx register not updated")
	}
}

func TestPortTxQueueOverflow(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{TxQueueCap: 4})
	p := c.Port(0)
	p.SetLink(wire.NewLink(e, wire.Rate10G, 0, nil))

	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Enqueue(frame(1518)) {
			accepted++
		}
	}
	// One frame goes straight into the MAC, 4 queue slots: 5 accepted.
	if accepted != 5 {
		t.Fatalf("accepted = %d, want 5", accepted)
	}
	if p.TxDrops() != 5 {
		t.Fatalf("drops = %d, want 5", p.TxDrops())
	}
	if c.Regs.Get("port0.tx_drops") != 5 {
		t.Fatal("drop register")
	}
	e.Run()
	if p.TxQueueDepth() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestPortReceiveTimestamps(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{})
	p := c.Port(1)
	var gotTS timing.Timestamp
	var gotAt sim.Time
	p.OnReceive = func(f *wire.Frame, at sim.Time, ts timing.Timestamp) {
		gotAt, gotTS = at, ts
	}
	l := wire.NewLink(e, wire.Rate10G, 10*sim.Nanosecond, p)
	e.Schedule(1000, func() { l.Transmit(frame(64)) })
	e.Run()
	wantAt := sim.Time(1000).Add(wire.SerializationTime(64, wire.Rate10G)).Add(10 * sim.Nanosecond)
	if gotAt != wantAt {
		t.Fatalf("arrival %v, want %v", gotAt, wantAt)
	}
	if gotTS != timing.Quantize(wantAt) {
		t.Fatalf("rx ts %v, want %v", gotTS, timing.Quantize(wantAt))
	}
	if p.RxStats().Packets != 1 || c.Regs.Get("port1.rx_packets") != 1 {
		t.Fatal("rx stats")
	}
}

func TestPortEnqueueWithoutLinkPanics(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Port(0).Enqueue(frame(64))
}

func TestCardWithDriftingClock(t *testing.T) {
	// A card with a +50ppm free-running clock must stamp RX packets with
	// a visible lead over true time.
	e := sim.NewEngine()
	osc := timing.NewOscillator(50, 0, 0, 1)
	osc.DeviceTimeAt(0)
	c := New(e, Config{Clock: &timing.FreeClock{Osc: osc}})
	p := c.Port(0)
	var ts timing.Timestamp
	var at sim.Time
	p.OnReceive = func(_ *wire.Frame, a sim.Time, s timing.Timestamp) { at, ts = a, s }
	l := wire.NewLink(e, wire.Rate10G, 0, p)
	e.Schedule(sim.Time(sim.Second), func() { l.Transmit(frame(64)) })
	e.Run()
	lead := ts.Sim().Sub(at)
	// ≈ 50 µs lead at 1 s, minus up to one 6.25ns quantisation step.
	if lead < 49*sim.Microsecond || lead > 51*sim.Microsecond {
		t.Fatalf("drifting clock lead = %v, want ≈50µs", lead)
	}
}

func TestRegisters(t *testing.T) {
	r := NewRegisters()
	if r.Get("missing") != 0 {
		t.Fatal("absent register must read 0")
	}
	r.Set("a", 5)
	r.Add("a", 3)
	r.Add("b", 1)
	if r.Get("a") != 8 || r.Get("b") != 1 {
		t.Fatal("set/add")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
}

func TestFullDuplexPair(t *testing.T) {
	// Two cards wired back to back; traffic flows both ways without
	// interference.
	e := sim.NewEngine()
	a := New(e, Config{})
	b := New(e, Config{})
	ab, ba := wire.Connect(e, wire.Rate10G, sim.Microsecond, a.Port(0), b.Port(0))
	a.Port(0).SetLink(ab)
	b.Port(0).SetLink(ba)

	var aGot, bGot int
	a.Port(0).OnReceive = func(*wire.Frame, sim.Time, timing.Timestamp) { aGot++ }
	b.Port(0).OnReceive = func(*wire.Frame, sim.Time, timing.Timestamp) { bGot++ }
	for i := 0; i < 100; i++ {
		a.Port(0).Enqueue(frame(64))
		b.Port(0).Enqueue(frame(1518))
	}
	e.Run()
	if aGot != 100 || bGot != 100 {
		t.Fatalf("duplex delivery %d/%d", aGot, bGot)
	}
}

func BenchmarkPortForwardingPath(b *testing.B) {
	e := sim.NewEngine()
	c := New(e, Config{TxQueueCap: 1 << 20})
	p := c.Port(0)
	sink := wire.EndpointFunc(func(*wire.Frame, sim.Time, sim.Time) {})
	p.SetLink(wire.NewLink(e, wire.Rate10G, 0, sink))
	f := frame(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Enqueue(f)
		for e.Step() {
		}
	}
}
