// Package race reports whether the Go race detector is compiled into
// this binary. Allocation-regression tests consult it: under -race,
// sync.Pool intentionally drops a fraction of Puts to shake out
// lifetime bugs, so strict zero-allocation assertions only hold in
// normal builds.
package race
