// Package analysis is the repository's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver shape (Analyzer, Pass, diagnostics, an analysistest-style corpus
// runner) plus four custom passes that enforce the codebase's load-bearing
// contracts at compile time instead of megabytes of simulation later:
//
//   - framelease: every pooled wire.Frame/wire.Train acquired from a Pool
//     reaches Release/Recycle or an ownership-transfer sink on every path —
//     the silent-leak and double-release classes.
//   - hotpathalloc: functions annotated //lint:hotpath (and everything they
//     reach inside their package) stay free of allocation-inducing
//     constructs: closures, map literals, fmt calls, interface boxing.
//   - detorder: internal simulation packages must not let map iteration
//     order, wall-clock time, global math/rand, or multi-way selects feed
//     output, scheduling, or hashing — the byte-identical-tables killer.
//   - simtime: raw integer arithmetic on sim.Time outside internal/sim, and
//     Schedule calls whose time argument can precede the engine's now.
//
// The framework is stdlib-only (go/ast, go/types, go/importer) because the
// build environment is hermetic; the API mirrors x/tools closely enough
// that the passes could be ported to a real multichecker by swapping the
// driver.
//
// Deliberate exceptions are encoded in the source as
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it; the driver drops matching
// diagnostics. Hot-path roots are declared with //lint:hotpath on the
// function's doc comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and lint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by lintcheck -help.
	Doc string
	// Run inspects one type-checked package via the Pass and reports
	// findings through it.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position plus a message.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package into an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{FrameLease, HotPathAlloc, DetOrder, SimTime}
}

// RunAnalyzers applies each analyzer to the package, filters diagnostics
// through the package's lint:ignore directives, and returns the survivors
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	diags = Suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreDirective is one //lint:ignore in a file.
type ignoreDirective struct {
	line     int    // line the directive's comment starts on
	analyzer string // analyzer name or "all"
}

// ignoresIn extracts lint:ignore directives from a file. A directive
// suppresses matching diagnostics on its own line (trailing comment) and
// on the following line (comment above the statement).
func ignoresIn(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				// A bare lint:ignore without analyzer+reason is malformed;
				// refusing to honour it keeps reasons mandatory.
				continue
			}
			out = append(out, ignoreDirective{
				line:     fset.Position(c.Pos()).Line,
				analyzer: fields[0],
			})
		}
	}
	return out
}

// Suppress drops diagnostics covered by a lint:ignore directive in their
// file. Exported so the analysistest harness applies the exact production
// suppression path.
func Suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	covered := make(map[key][]string)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, d := range ignoresIn(pkg.Fset, f) {
			covered[key{name, d.line}] = append(covered[key{name, d.line}], d.analyzer)
			covered[key{name, d.line + 1}] = append(covered[key{name, d.line + 1}], d.analyzer)
		}
	}
	if len(covered) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		names := covered[key{pos.Filename, pos.Line}]
		suppressed := false
		for _, n := range names {
			if n == "all" || n == d.Analyzer {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// --- shared type/AST helpers used by the passes ---

// namedType unwraps pointers and returns the *types.Named beneath t, or
// nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// isNamedFrom reports whether t (possibly behind pointers) is the named
// type `name` declared in a package whose path is pkgPath or ends in
// "/"+pkgPath. Matching by path suffix lets the analysistest corpora
// declare miniature stand-ins (package "wire" under testdata) that the
// passes recognise exactly like the real osnt/internal/wire.
func isNamedFrom(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// pkgPathMatches reports whether path is exactly want or ends in "/"+want.
func pkgPathMatches(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// calleeFunc resolves the *types.Func a call statically invokes (plain
// function or method), or nil for indirect calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// receiverExpr returns the receiver expression of a method call selector,
// or nil.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// funcDocHas reports whether the function declaration carries the given
// //lint: directive (e.g. "hotpath") in its doc comment or on the line
// directly above its declaration.
func funcDocHas(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	want := "lint:" + directive
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// constInt64 extracts an int64 from a constant value when it is exactly
// representable.
func constInt64(v constant.Value) (int64, bool) {
	return constant.Int64Val(constant.ToInt(v))
}

// wantRe is the comment syntax understood by the analysistest harness; it
// lives here so the harness and the self-documentation stay in sync.
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)
