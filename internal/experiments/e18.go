package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E18TrainCaps sweeps the generator's frame-train cap. Cap 1 is the
// per-frame reference path every other cap must reproduce bit-exactly.
var E18TrainCaps = []int{1, 4, 16, 64}

// E18FrameSizes spans the same 100G extremes as E14: 64 B is the
// 148.81 Mpps event-rate worst case batching exists for, 1518 B the
// easy case where per-frame events were already cheap.
var E18FrameSizes = []int{64, 512, 1518}

// e18DUT is a 2-port 100G store-and-forward switch whose lookup stays
// just under the back-to-back slot at every frame size (5.2 vs 6.72 ns
// at 64 B), so a saturated single-flow stream forwards losslessly and
// the train fast path's "lookups chain without queueing" guard holds.
func e18DUT() switchsim.Config {
	return switchsim.Config{
		Ports:           2,
		PortRates:       []wire.Rate{wire.Rate100G, wire.Rate100G},
		LookupPerPacket: 2 * sim.Nanosecond,
		LookupPerByte:   sim.Picoseconds(50),
	}
}

// E18TrainSpeedup measures what GRO/GSO-style frame-train coalescing
// buys the simulator on the 100G tier: one flow at 100% of line rate
// crosses a store-and-forward DUT into an idealised capture, once per
// train cap. At load 1.0 every frame abuts its predecessor, so the
// generator emits full trains and every hot-path layer — generator MAC,
// link, switch lookup and egress, capture steering and ring — handles
// one event per train instead of one per frame; cap 1 is the unchanged
// per-frame path.
//
// The table is the proof obligation, not just the speedup: ev/frame is
// engine events fired per frame delivered (the cost batching removes),
// ev-x its improvement over cap 1, and digest an order-sensitive
// FNV-1a over every delivered record's (timestamp, header digest). ok
// requires the digest to be bit-identical to the cap-1 run — trains
// may only coalesce bookkeeping, never move, reorder or retime a frame.
func E18TrainSpeedup(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E18: frame-train coalescing at 100G — events per frame vs train cap (single flow at 100% load, bit-exact across caps)",
		Columns: []string{"frame(B)", "cap", "host(Mpps)", "ev/frame", "ev-x", "digest", "ok"},
	}
	tbl.Rows = sweeper().Rows(len(E18FrameSizes), func(i int) [][]string {
		fs := E18FrameSizes[i]
		rows := make([][]string, 0, len(E18TrainCaps))
		var refDigest uint64
		var refEvPerFrame float64
		for _, cap := range E18TrainCaps {
			e := sim.NewEngine()
			t := topo.New().
				Tester("tx", netfpga.Config{Ports: 1, Rate: wire.Rate100G}).
				Tester("rx", netfpga.Config{Ports: 1, Rate: wire.Rate100G}).
				DUT("sw", e18DUT()).
				Link("tx:0", "sw:0").
				Link("sw:1", "rx:0").
				MustBuild(e)
			t.DUT("sw").Learn(probeSpec.DstMAC, 1)

			digest := uint64(e17StreamSeed)
			m := t.AttachMonitor("rx:0", mon.Config{
				SnapLen:   64,
				HashBytes: packet.HeaderDigestBytes,
				Queues: []mon.QueueConfig{{
					RingSize:      1 << 20,
					HostPerPacket: sim.Picosecond,
					HostPerByte:   -1,
				}},
				RecycleRecords: true,
				Sink: func(rec mon.Record) {
					digest = fnvFold(fnvFold(digest, uint64(rec.TS)), rec.Hash)
				},
			})

			g, err := gen.New(t.Port("tx:0"), gen.Config{
				Source:   &gen.UDPFlowSource{Spec: probeSpec, NumFlows: 1, FrameSize: fs},
				Spacing:  gen.CBRForLoad(fs, wire.Rate100G, 1.0),
				Pool:     wire.DefaultPool,
				Seed:     runner.PointSeed(0xe18, i),
				MaxTrain: cap,
				Until:    sim.Time(duration),
			})
			if err != nil {
				panic(err)
			}
			g.Start(0)
			e.RunUntil(sim.Time(duration))
			g.Stop()
			e.Run() // drain the DUT and the capture ring

			frames := m.Delivered().Packets
			evPerFrame := 0.0
			if frames > 0 {
				evPerFrame = float64(e.Fired()) / float64(frames)
			}
			if cap == 1 {
				refDigest = digest
				refEvPerFrame = evPerFrame
			}
			evX := 0.0
			if evPerFrame > 0 {
				evX = refEvPerFrame / evPerFrame
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", fs),
				fmt.Sprintf("%d", cap),
				fmt.Sprintf("%.3f", float64(frames)/duration.Seconds()/1e6),
				fmt.Sprintf("%.3f", evPerFrame),
				fmt.Sprintf("%.2f", evX),
				fmt.Sprintf("%016x", digest),
				fmt.Sprintf("%v", digest == refDigest),
			})
		}
		return rows
	})
	return tbl
}
