package oflops

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/ofswitch"
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// ruleProbeSource emits UDP probes cycling the destination address across
// rules 0..N-1, so every rule under test is exercised round-robin.
type ruleProbeSource struct {
	n     int
	size  int
	built []*wire.Frame
	pos   int
}

// probeFrameSize keeps room for the embedded timestamp.
const probeFrameSize = 128

func newRuleProbeSource(n int) *ruleProbeSource {
	return &ruleProbeSource{n: n, size: probeFrameSize}
}

// Next implements gen.Source.
func (s *ruleProbeSource) Next() *wire.Frame {
	if s.built == nil {
		for i := 0; i < s.n; i++ {
			spec := ProbeSpec
			spec.DstIP = RuleIP(i)
			spec.FrameSize = s.size
			s.built = append(s.built, wire.NewFrame(spec.Build()))
		}
	}
	f := s.built[s.pos%len(s.built)].Clone()
	s.pos++
	return f
}

// probeRule recovers the rule index a captured probe matched.
func probeRule(data []byte) (int, bool) {
	fl, ok := packet.ExtractFlow(data)
	if !ok {
		return 0, false
	}
	ip := fl.DstIP4()
	if ip[0] != 10 || ip[1] != 1 {
		return 0, false
	}
	return int(ip[2])<<8 | int(ip[3]), true
}

// installBaseline pre-loads the dataplane table directly (test fixture,
// not part of the measurement): a lowest-priority drop-all plus count
// pre-existing rules with the given actions.
func installBaseline(ctx *Context, count int, actions []openflow.Action) {
	now := ctx.Engine.Now()
	ctx.Switch.Table().Add(&ofswitch.Entry{
		Match: openflow.MatchAll(), Priority: 0, InstalledAt: now, LastUsed: now,
	}) // empty action list = drop
	for i := 0; i < count; i++ {
		ctx.Switch.Table().Add(&ofswitch.Entry{
			Match: RuleMatch(i), Priority: 100,
			Actions: actions, InstalledAt: now, LastUsed: now,
		})
	}
}

// startProbes arms the OSNT generator with round-robin rule probes.
func startProbes(ctx *Context, rules int, gap sim.Duration) error {
	g, err := ctx.OSNT.ConfigureGenerator(ctx.GenPort, gen.Config{
		Source:         newRuleProbeSource(rules),
		Spacing:        gen.CBR{Interval: gap},
		EmbedTimestamp: true,
	})
	if err != nil {
		return err
	}
	g.Start(ctx.Engine.Now())
	return nil
}

// FlowInsertLatency measures the demo's headline Part II quantity: "the
// latency to modify the entries of the switch flow table through control
// and data plane measurements". It installs Rules flow entries in one
// batch, timing the barrier acknowledgement (control plane) and the
// first probe packet forwarded by each new rule (data plane).
type FlowInsertLatency struct {
	// Rules is the batch size.
	Rules int
	// ProbeGap spaces the probes (default 2 µs → 500 kpps aggregate).
	ProbeGap sim.Duration

	start      sim.Time
	controlAck sim.Time
	firstSeen  []sim.Time
	seen       int
	barrierXid uint32
}

// Name implements Module.
func (m *FlowInsertLatency) Name() string {
	return fmt.Sprintf("flow_insert_latency(n=%d)", m.Rules)
}

// Start implements Module.
func (m *FlowInsertLatency) Start(ctx *Context) error {
	if m.Rules == 0 {
		m.Rules = 64
	}
	if m.ProbeGap == 0 {
		m.ProbeGap = 2 * sim.Microsecond
	}
	m.firstSeen = make([]sim.Time, m.Rules)
	installBaseline(ctx, 0, nil) // drop-all only: probes vanish until rules land
	if err := startProbes(ctx, m.Rules, m.ProbeGap); err != nil {
		return err
	}

	m.start = ctx.Engine.Now()
	for i := 0; i < m.Rules; i++ {
		ctx.Ctl.Send(&openflow.FlowMod{
			Match: RuleMatch(i), Command: openflow.FCAdd, Priority: 100,
			BufferID: 0xffffffff, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}, ctx.NextXid())
	}
	m.barrierXid = ctx.NextXid()
	ctx.Ctl.Send(&openflow.BarrierRequest{}, m.barrierXid)
	return nil
}

// HandleDataPlane implements Module.
func (m *FlowInsertLatency) HandleDataPlane(ctx *Context, rec mon.Record) {
	rule, ok := probeRule(rec.Data)
	if !ok || rule >= m.Rules {
		return
	}
	if m.firstSeen[rule] == 0 {
		m.firstSeen[rule] = rec.TS.Sim()
		m.seen++
	}
}

// HandleOF implements Module.
func (m *FlowInsertLatency) HandleOF(ctx *Context, msg openflow.Message, xid uint32) {
	if msg.Type() == openflow.TypeBarrierReply && xid == m.barrierXid {
		m.controlAck = ctx.Engine.Now()
	}
}

// Finished implements Module.
func (m *FlowInsertLatency) Finished(*Context) bool {
	return m.controlAck != 0 && m.seen == m.Rules
}

// ControlLatency returns send-to-barrier-reply.
func (m *FlowInsertLatency) ControlLatency() sim.Duration {
	if m.controlAck == 0 {
		return -1
	}
	return m.controlAck.Sub(m.start)
}

// DataLatencies returns per-rule send-to-first-forwarded durations in a
// histogram (picoseconds), plus how many rules were confirmed.
func (m *FlowInsertLatency) DataLatencies() (*stats.Histogram, int) {
	h := stats.NewHistogram()
	for _, t := range m.firstSeen {
		if t != 0 {
			h.Record(int64(t.Sub(m.start)))
		}
	}
	return h, m.seen
}

// FlowModifyLatency measures modification of existing entries: rules
// initially blackhole to an unconnected port and are modified to forward
// to the capture port.
type FlowModifyLatency struct {
	Rules    int
	ProbeGap sim.Duration

	start      sim.Time
	controlAck sim.Time
	firstSeen  []sim.Time
	seen       int
	barrierXid uint32
}

// Name implements Module.
func (m *FlowModifyLatency) Name() string {
	return fmt.Sprintf("flow_modify_latency(n=%d)", m.Rules)
}

// Start implements Module.
func (m *FlowModifyLatency) Start(ctx *Context) error {
	if m.Rules == 0 {
		m.Rules = 64
	}
	if m.ProbeGap == 0 {
		m.ProbeGap = 2 * sim.Microsecond
	}
	m.firstSeen = make([]sim.Time, m.Rules)
	// Pre-existing rules point at OF port 4 (unconnected: blackhole).
	installBaseline(ctx, m.Rules, []openflow.Action{&openflow.ActionOutput{Port: 4}})
	if err := startProbes(ctx, m.Rules, m.ProbeGap); err != nil {
		return err
	}
	m.start = ctx.Engine.Now()
	for i := 0; i < m.Rules; i++ {
		ctx.Ctl.Send(&openflow.FlowMod{
			Match: RuleMatch(i), Command: openflow.FCModifyStrict, Priority: 100,
			BufferID: 0xffffffff, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}, ctx.NextXid())
	}
	m.barrierXid = ctx.NextXid()
	ctx.Ctl.Send(&openflow.BarrierRequest{}, m.barrierXid)
	return nil
}

// HandleDataPlane implements Module.
func (m *FlowModifyLatency) HandleDataPlane(ctx *Context, rec mon.Record) {
	rule, ok := probeRule(rec.Data)
	if !ok || rule >= m.Rules {
		return
	}
	if m.firstSeen[rule] == 0 {
		m.firstSeen[rule] = rec.TS.Sim()
		m.seen++
	}
}

// HandleOF implements Module.
func (m *FlowModifyLatency) HandleOF(ctx *Context, msg openflow.Message, xid uint32) {
	if msg.Type() == openflow.TypeBarrierReply && xid == m.barrierXid {
		m.controlAck = ctx.Engine.Now()
	}
}

// Finished implements Module.
func (m *FlowModifyLatency) Finished(*Context) bool {
	return m.controlAck != 0 && m.seen == m.Rules
}

// ControlLatency returns send-to-barrier-reply.
func (m *FlowModifyLatency) ControlLatency() sim.Duration {
	if m.controlAck == 0 {
		return -1
	}
	return m.controlAck.Sub(m.start)
}

// DataLatencies returns per-rule modification-visible durations.
func (m *FlowModifyLatency) DataLatencies() (*stats.Histogram, int) {
	h := stats.NewHistogram()
	for _, t := range m.firstSeen {
		if t != 0 {
			h.Record(int64(t.Sub(m.start)))
		}
	}
	return h, m.seen
}

// ForwardingConsistency reproduces the demo's closing observation:
// "forwarding consistency during large flow table updates". Pre-existing
// rules mark probes with tp_src=1; a batch modification re-marks them
// with tp_src=2. Probes observed with the OLD marker AFTER the barrier
// acknowledgement are inconsistencies: the control plane said "done"
// while the dataplane still ran old state.
type ForwardingConsistency struct {
	Rules    int
	ProbeGap sim.Duration

	start           sim.Time
	controlAck      sim.Time
	barrierXid      uint32
	lastOld         sim.Time
	firstNew        sim.Time
	oldAfterBarrier uint64
	oldTotal        uint64
	newTotal        uint64
	newSeen         []bool
	newRules        int
}

// Markers written into tp_src by rule generation.
const (
	markerOld uint16 = 1
	markerNew uint16 = 2
)

// Name implements Module.
func (m *ForwardingConsistency) Name() string {
	return fmt.Sprintf("forwarding_consistency(n=%d)", m.Rules)
}

// Start implements Module.
func (m *ForwardingConsistency) Start(ctx *Context) error {
	if m.Rules == 0 {
		m.Rules = 256
	}
	if m.ProbeGap == 0 {
		m.ProbeGap = 2 * sim.Microsecond
	}
	m.newSeen = make([]bool, m.Rules)
	installBaseline(ctx, m.Rules, []openflow.Action{
		&openflow.ActionSetTpPort{TypeCode: openflow.ActTypeSetTpSrc, Port: markerOld},
		&openflow.ActionOutput{Port: 2},
	})
	if err := startProbes(ctx, m.Rules, m.ProbeGap); err != nil {
		return err
	}
	m.start = ctx.Engine.Now()
	for i := 0; i < m.Rules; i++ {
		ctx.Ctl.Send(&openflow.FlowMod{
			Match: RuleMatch(i), Command: openflow.FCModifyStrict, Priority: 100,
			BufferID: 0xffffffff, OutPort: openflow.PortNone,
			Actions: []openflow.Action{
				&openflow.ActionSetTpPort{TypeCode: openflow.ActTypeSetTpSrc, Port: markerNew},
				&openflow.ActionOutput{Port: 2},
			},
		}, ctx.NextXid())
	}
	m.barrierXid = ctx.NextXid()
	ctx.Ctl.Send(&openflow.BarrierRequest{}, m.barrierXid)
	return nil
}

// HandleDataPlane implements Module.
func (m *ForwardingConsistency) HandleDataPlane(ctx *Context, rec mon.Record) {
	rule, ok := probeRule(rec.Data)
	if !ok || rule >= m.Rules {
		return
	}
	fl, _ := packet.ExtractFlow(rec.Data)
	at := rec.TS.Sim()
	switch fl.SrcPort {
	case markerOld:
		m.oldTotal++
		if at > m.lastOld {
			m.lastOld = at
		}
		if m.controlAck != 0 && at > m.controlAck {
			m.oldAfterBarrier++
		}
	case markerNew:
		m.newTotal++
		if m.firstNew == 0 || at < m.firstNew {
			m.firstNew = at
		}
		if !m.newSeen[rule] {
			m.newSeen[rule] = true
			m.newRules++
		}
	}
}

// HandleOF implements Module.
func (m *ForwardingConsistency) HandleOF(ctx *Context, msg openflow.Message, xid uint32) {
	if msg.Type() == openflow.TypeBarrierReply && xid == m.barrierXid {
		m.controlAck = ctx.Engine.Now()
	}
}

// Finished implements Module.
func (m *ForwardingConsistency) Finished(ctx *Context) bool {
	if m.controlAck == 0 || m.newRules < m.Rules {
		return false
	}
	// Observe a settling window after the last rule flips.
	return ctx.Engine.Now().Sub(m.controlAck) > 10*sim.Millisecond
}

// Result summarises the consistency observation.
type ConsistencyResult struct {
	// OldAfterBarrier counts packets handled by pre-update rules after
	// the switch acknowledged the barrier.
	OldAfterBarrier uint64
	// TransitionWindow spans first-new-output to last-old-output — the
	// mixed-state interval.
	TransitionWindow sim.Duration
	// OldTotal and NewTotal count all marked packets.
	OldTotal, NewTotal uint64
	// ControlLatency is send-to-barrier-reply.
	ControlLatency sim.Duration
}

// Result returns the measurement.
func (m *ForwardingConsistency) Result() ConsistencyResult {
	window := sim.Duration(0)
	if m.firstNew != 0 && m.lastOld > m.firstNew {
		window = m.lastOld.Sub(m.firstNew)
	}
	return ConsistencyResult{
		OldAfterBarrier:  m.oldAfterBarrier,
		TransitionWindow: window,
		OldTotal:         m.oldTotal,
		NewTotal:         m.newTotal,
		ControlLatency:   m.controlAck.Sub(m.start),
	}
}

// PacketInLatency measures the miss path: probe packets with no matching
// rule must surface as PACKET_IN at the controller; the latency is
// recovered from OSNT's embedded transmit timestamp, still present in the
// PACKET_IN payload.
type PacketInLatency struct {
	Count    int
	ProbeGap sim.Duration

	latencies *stats.Histogram
	got       int
}

// Name implements Module.
func (m *PacketInLatency) Name() string { return fmt.Sprintf("packet_in_latency(n=%d)", m.Count) }

// Start implements Module.
func (m *PacketInLatency) Start(ctx *Context) error {
	if m.Count == 0 {
		m.Count = 100
	}
	if m.ProbeGap == 0 {
		m.ProbeGap = 1 * sim.Millisecond // keep the slow path unqueued
	}
	m.latencies = stats.NewHistogram()
	g, err := ctx.OSNT.ConfigureGenerator(ctx.GenPort, gen.Config{
		Source:         newRuleProbeSource(1),
		Spacing:        gen.CBR{Interval: m.ProbeGap},
		Count:          uint64(m.Count),
		EmbedTimestamp: true,
	})
	if err != nil {
		return err
	}
	g.Start(ctx.Engine.Now())
	return nil
}

// HandleDataPlane implements Module.
func (m *PacketInLatency) HandleDataPlane(*Context, mon.Record) {}

// HandleOF implements Module.
func (m *PacketInLatency) HandleOF(ctx *Context, msg openflow.Message, _ uint32) {
	pin, ok := msg.(*openflow.PacketIn)
	if !ok {
		return
	}
	ts, ok := gen.ExtractTimestamp(pin.Data, gen.DefaultTimestampOffset)
	if !ok {
		return
	}
	m.latencies.Record(int64(ctx.Engine.Now().Sub(ts.Sim())))
	m.got++
}

// Finished implements Module.
func (m *PacketInLatency) Finished(*Context) bool { return m.got >= m.Count }

// Latencies returns the collected packet-in latencies (picoseconds).
func (m *PacketInLatency) Latencies() *stats.Histogram { return m.latencies }

// EchoUnderLoad measures control-channel responsiveness (echo RTT) while
// the dataplane forwards at a configured load — the coupling OFLOPS-turbo
// exposed on switches whose management CPU also serves the dataplane.
type EchoUnderLoad struct {
	// Load is the offered dataplane load fraction of line rate.
	Load float64
	// Echoes is the sample count (default 20).
	Echoes int
	// EchoGap spaces the echo requests (default 5 ms).
	EchoGap sim.Duration

	rtts    *stats.Histogram
	sentAt  map[uint32]sim.Time
	got     int
	started bool
}

// Name implements Module.
func (m *EchoUnderLoad) Name() string {
	return fmt.Sprintf("echo_under_load(load=%.0f%%)", m.Load*100)
}

// Start implements Module.
func (m *EchoUnderLoad) Start(ctx *Context) error {
	if m.Echoes == 0 {
		m.Echoes = 20
	}
	if m.EchoGap == 0 {
		m.EchoGap = 5 * sim.Millisecond
	}
	m.rtts = stats.NewHistogram()
	m.sentAt = make(map[uint32]sim.Time)

	// One match-all forwarding rule so dataplane traffic never misses.
	installBaseline(ctx, 0, nil)
	ctx.Switch.Table().Add(&ofswitch.Entry{
		Match: RuleMatch(0), Priority: 100,
		Actions:     []openflow.Action{&openflow.ActionOutput{Port: 2}},
		InstalledAt: ctx.Engine.Now(), LastUsed: ctx.Engine.Now(),
	})
	if m.Load > 0 {
		g, err := ctx.OSNT.ConfigureGenerator(ctx.GenPort, gen.Config{
			Source:  newRuleProbeSource(1),
			Spacing: gen.CBRForLoad(probeFrameSize, ctx.OSNT.Card.Rate(), m.Load),
		})
		if err != nil {
			return err
		}
		g.Start(ctx.Engine.Now())
	}

	var sendEcho func()
	sent := 0
	sendEcho = func() {
		if sent >= m.Echoes {
			return
		}
		sent++
		xid := ctx.NextXid()
		m.sentAt[xid] = ctx.Engine.Now()
		ctx.Ctl.Send(&openflow.EchoRequest{Data: []byte{byte(xid)}}, xid)
		ctx.Engine.ScheduleAfter(m.EchoGap, sendEcho)
	}
	sendEcho()
	return nil
}

// HandleDataPlane implements Module.
func (m *EchoUnderLoad) HandleDataPlane(*Context, mon.Record) {}

// HandleOF implements Module.
func (m *EchoUnderLoad) HandleOF(ctx *Context, msg openflow.Message, xid uint32) {
	if msg.Type() != openflow.TypeEchoReply {
		return
	}
	if t0, ok := m.sentAt[xid]; ok {
		m.rtts.Record(int64(ctx.Engine.Now().Sub(t0)))
		delete(m.sentAt, xid)
		m.got++
	}
}

// Finished implements Module.
func (m *EchoUnderLoad) Finished(*Context) bool { return m.got >= m.Echoes }

// RTTs returns the echo round-trip samples (picoseconds).
func (m *EchoUnderLoad) RTTs() *stats.Histogram { return m.rtts }
