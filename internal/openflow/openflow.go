// Package openflow implements the OpenFlow 1.0 wire protocol subset that
// OFLOPS-turbo exercises against switches: HELLO/ECHO handshakes,
// FEATURES, FLOW_MOD with the full ofp_match wildcard semantics,
// PACKET_IN/PACKET_OUT, FLOW_REMOVED, PORT_STATUS, BARRIER and
// FLOW/PORT/AGGREGATE statistics. Encoding is exact OpenFlow 1.0
// big-endian wire format, usable over real TCP connections as well as the
// simulated control channel.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"osnt/internal/packet"
)

// Version is the OpenFlow wire version this package speaks (1.0).
const Version = 0x01

// HeaderLen is the fixed ofp_header size.
const HeaderLen = 8

// MsgType enumerates OpenFlow 1.0 message types.
type MsgType uint8

// OpenFlow 1.0 message types.
const (
	TypeHello MsgType = iota
	TypeError
	TypeEchoRequest
	TypeEchoReply
	TypeVendor
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeGetConfigRequest
	TypeGetConfigReply
	TypeSetConfig
	TypePacketIn
	TypeFlowRemoved
	TypePortStatus
	TypePacketOut
	TypeFlowMod
	TypePortMod
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
)

// String names the message type.
func (t MsgType) String() string {
	names := [...]string{
		"HELLO", "ERROR", "ECHO_REQUEST", "ECHO_REPLY", "VENDOR",
		"FEATURES_REQUEST", "FEATURES_REPLY", "GET_CONFIG_REQUEST",
		"GET_CONFIG_REPLY", "SET_CONFIG", "PACKET_IN", "FLOW_REMOVED",
		"PORT_STATUS", "PACKET_OUT", "FLOW_MOD", "PORT_MOD",
		"STATS_REQUEST", "STATS_REPLY", "BARRIER_REQUEST", "BARRIER_REPLY",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Reserved port numbers.
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// FlowMod commands.
const (
	FCAdd uint16 = iota
	FCModify
	FCModifyStrict
	FCDelete
	FCDeleteStrict
)

// FlowMod flags.
const (
	FlagSendFlowRem uint16 = 1 << iota
	FlagCheckOverlap
	FlagEmerg
)

// PacketIn reasons.
const (
	ReasonNoMatch uint8 = iota
	ReasonAction
)

// FlowRemoved reasons.
const (
	RemovedIdleTimeout uint8 = iota
	RemovedHardTimeout
	RemovedDelete
)

// Errors returned by the codec.
var (
	ErrTruncated  = errors.New("openflow: truncated message")
	ErrBadVersion = errors.New("openflow: unsupported version")
	ErrBadLength  = errors.New("openflow: inconsistent length")
)

// Message is one OpenFlow protocol message (body only; the header is
// handled by Encode/Decode).
type Message interface {
	// Type returns the wire message type.
	Type() MsgType
	// encode appends the body's wire form.
	encode(b []byte) []byte
	// decode parses the body.
	decode(data []byte) error
}

// Encode serialises a full message with the given transaction id.
func Encode(m Message, xid uint32) []byte {
	body := m.encode(make([]byte, 0, 64))
	buf := make([]byte, HeaderLen, HeaderLen+len(body))
	buf[0] = Version
	buf[1] = byte(m.Type())
	binary.BigEndian.PutUint16(buf[2:4], uint16(HeaderLen+len(body)))
	binary.BigEndian.PutUint32(buf[4:8], xid)
	return append(buf, body...)
}

// Decode parses one complete message from data (which must contain
// exactly one message's bytes).
func Decode(data []byte) (Message, uint32, error) {
	if len(data) < HeaderLen {
		return nil, 0, ErrTruncated
	}
	if data[0] != Version {
		return nil, 0, ErrBadVersion
	}
	length := int(binary.BigEndian.Uint16(data[2:4]))
	if length < HeaderLen || length > len(data) {
		return nil, 0, ErrBadLength
	}
	xid := binary.BigEndian.Uint32(data[4:8])
	m := newMessage(MsgType(data[1]))
	if m == nil {
		return nil, xid, fmt.Errorf("openflow: unsupported message type %d", data[1])
	}
	if err := m.decode(data[HeaderLen:length]); err != nil {
		return nil, xid, err
	}
	return m, xid, nil
}

func newMessage(t MsgType) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &Error{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePortStatus:
		return &PortStatus{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeStatsRequest:
		return &StatsRequest{}
	case TypeStatsReply:
		return &StatsReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	}
	return nil
}

// WriteMessage writes one framed message to w.
func WriteMessage(w io.Writer, m Message, xid uint32) error {
	_, err := w.Write(Encode(m, xid))
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, uint32, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < HeaderLen {
		return nil, 0, ErrBadLength
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: body: %w", err)
	}
	return Decode(buf)
}

// ---- simple messages ----

// Hello is OFPT_HELLO.
type Hello struct{}

// Type implements Message.
func (*Hello) Type() MsgType          { return TypeHello }
func (*Hello) encode(b []byte) []byte { return b }
func (*Hello) decode([]byte) error    { return nil }

// EchoRequest is OFPT_ECHO_REQUEST with an arbitrary payload.
type EchoRequest struct{ Data []byte }

// Type implements Message.
func (*EchoRequest) Type() MsgType            { return TypeEchoRequest }
func (m *EchoRequest) encode(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoRequest) decode(d []byte) error  { m.Data = append([]byte(nil), d...); return nil }

// EchoReply is OFPT_ECHO_REPLY echoing the request payload.
type EchoReply struct{ Data []byte }

// Type implements Message.
func (*EchoReply) Type() MsgType            { return TypeEchoReply }
func (m *EchoReply) encode(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoReply) decode(d []byte) error  { m.Data = append([]byte(nil), d...); return nil }

// BarrierRequest is OFPT_BARRIER_REQUEST.
type BarrierRequest struct{}

// Type implements Message.
func (*BarrierRequest) Type() MsgType          { return TypeBarrierRequest }
func (*BarrierRequest) encode(b []byte) []byte { return b }
func (*BarrierRequest) decode([]byte) error    { return nil }

// BarrierReply is OFPT_BARRIER_REPLY.
type BarrierReply struct{}

// Type implements Message.
func (*BarrierReply) Type() MsgType          { return TypeBarrierReply }
func (*BarrierReply) encode(b []byte) []byte { return b }
func (*BarrierReply) decode([]byte) error    { return nil }

// FeaturesRequest is OFPT_FEATURES_REQUEST.
type FeaturesRequest struct{}

// Type implements Message.
func (*FeaturesRequest) Type() MsgType          { return TypeFeaturesRequest }
func (*FeaturesRequest) encode(b []byte) []byte { return b }
func (*FeaturesRequest) decode([]byte) error    { return nil }

// Error is OFPT_ERROR.
type Error struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (*Error) Type() MsgType { return TypeError }
func (m *Error) encode(b []byte) []byte {
	b = be16(b, m.ErrType)
	b = be16(b, m.Code)
	return append(b, m.Data...)
}
func (m *Error) decode(d []byte) error {
	if len(d) < 4 {
		return ErrTruncated
	}
	m.ErrType = binary.BigEndian.Uint16(d[0:2])
	m.Code = binary.BigEndian.Uint16(d[2:4])
	m.Data = append([]byte(nil), d[4:]...)
	return nil
}

// SetConfig is OFPT_SET_CONFIG.
type SetConfig struct {
	Flags       uint16
	MissSendLen uint16
}

// Type implements Message.
func (*SetConfig) Type() MsgType { return TypeSetConfig }
func (m *SetConfig) encode(b []byte) []byte {
	b = be16(b, m.Flags)
	return be16(b, m.MissSendLen)
}
func (m *SetConfig) decode(d []byte) error {
	if len(d) < 4 {
		return ErrTruncated
	}
	m.Flags = binary.BigEndian.Uint16(d[0:2])
	m.MissSendLen = binary.BigEndian.Uint16(d[2:4])
	return nil
}

// PhyPort is ofp_phy_port (48 bytes).
type PhyPort struct {
	No     uint16
	HWAddr packet.MAC
	Name   string // up to 15 bytes
	Config uint32
	State  uint32
	Curr   uint32
}

const phyPortLen = 48

func (p *PhyPort) encode(b []byte) []byte {
	b = be16(b, p.No)
	b = append(b, p.HWAddr[:]...)
	name := make([]byte, 16)
	copy(name, p.Name)
	b = append(b, name...)
	b = be32(b, p.Config)
	b = be32(b, p.State)
	b = be32(b, p.Curr)
	// advertised, supported, peer: zero
	return append(b, make([]byte, 12)...)
}

func (p *PhyPort) decode(d []byte) error {
	if len(d) < phyPortLen {
		return ErrTruncated
	}
	p.No = binary.BigEndian.Uint16(d[0:2])
	copy(p.HWAddr[:], d[2:8])
	name := d[8:24]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(d[24:28])
	p.State = binary.BigEndian.Uint32(d[28:32])
	p.Curr = binary.BigEndian.Uint32(d[32:36])
	return nil
}

// FeaturesReply is OFPT_FEATURES_REPLY.
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

// Type implements Message.
func (*FeaturesReply) Type() MsgType { return TypeFeaturesReply }
func (m *FeaturesReply) encode(b []byte) []byte {
	b = be64(b, m.DatapathID)
	b = be32(b, m.NBuffers)
	b = append(b, m.NTables, 0, 0, 0)
	b = be32(b, m.Capabilities)
	b = be32(b, m.Actions)
	for i := range m.Ports {
		b = m.Ports[i].encode(b)
	}
	return b
}
func (m *FeaturesReply) decode(d []byte) error {
	if len(d) < 24 {
		return ErrTruncated
	}
	m.DatapathID = binary.BigEndian.Uint64(d[0:8])
	m.NBuffers = binary.BigEndian.Uint32(d[8:12])
	m.NTables = d[12]
	m.Capabilities = binary.BigEndian.Uint32(d[16:20])
	m.Actions = binary.BigEndian.Uint32(d[20:24])
	m.Ports = nil
	for rest := d[24:]; len(rest) >= phyPortLen; rest = rest[phyPortLen:] {
		var p PhyPort
		if err := p.decode(rest); err != nil {
			return err
		}
		m.Ports = append(m.Ports, p)
	}
	return nil
}

// PacketIn is OFPT_PACKET_IN.
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// Type implements Message.
func (*PacketIn) Type() MsgType { return TypePacketIn }
func (m *PacketIn) encode(b []byte) []byte {
	b = be32(b, m.BufferID)
	b = be16(b, m.TotalLen)
	b = be16(b, m.InPort)
	b = append(b, m.Reason, 0)
	return append(b, m.Data...)
}
func (m *PacketIn) decode(d []byte) error {
	if len(d) < 10 {
		return ErrTruncated
	}
	m.BufferID = binary.BigEndian.Uint32(d[0:4])
	m.TotalLen = binary.BigEndian.Uint16(d[4:6])
	m.InPort = binary.BigEndian.Uint16(d[6:8])
	m.Reason = d[8]
	m.Data = append([]byte(nil), d[10:]...)
	return nil
}

// PacketOut is OFPT_PACKET_OUT.
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

// Type implements Message.
func (*PacketOut) Type() MsgType { return TypePacketOut }
func (m *PacketOut) encode(b []byte) []byte {
	acts := encodeActions(m.Actions)
	b = be32(b, m.BufferID)
	b = be16(b, m.InPort)
	b = be16(b, uint16(len(acts)))
	b = append(b, acts...)
	return append(b, m.Data...)
}
func (m *PacketOut) decode(d []byte) error {
	if len(d) < 8 {
		return ErrTruncated
	}
	m.BufferID = binary.BigEndian.Uint32(d[0:4])
	m.InPort = binary.BigEndian.Uint16(d[4:6])
	actLen := int(binary.BigEndian.Uint16(d[6:8]))
	if len(d) < 8+actLen {
		return ErrTruncated
	}
	var err error
	m.Actions, err = decodeActions(d[8 : 8+actLen])
	if err != nil {
		return err
	}
	m.Data = append([]byte(nil), d[8+actLen:]...)
	return nil
}

// FlowMod is OFPT_FLOW_MOD.
type FlowMod struct {
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// Type implements Message.
func (*FlowMod) Type() MsgType { return TypeFlowMod }
func (m *FlowMod) encode(b []byte) []byte {
	b = m.Match.encode(b)
	b = be64(b, m.Cookie)
	b = be16(b, m.Command)
	b = be16(b, m.IdleTimeout)
	b = be16(b, m.HardTimeout)
	b = be16(b, m.Priority)
	b = be32(b, m.BufferID)
	b = be16(b, m.OutPort)
	b = be16(b, m.Flags)
	return append(b, encodeActions(m.Actions)...)
}
func (m *FlowMod) decode(d []byte) error {
	if len(d) < matchLen+24 {
		return ErrTruncated
	}
	if err := m.Match.decode(d); err != nil {
		return err
	}
	d = d[matchLen:]
	m.Cookie = binary.BigEndian.Uint64(d[0:8])
	m.Command = binary.BigEndian.Uint16(d[8:10])
	m.IdleTimeout = binary.BigEndian.Uint16(d[10:12])
	m.HardTimeout = binary.BigEndian.Uint16(d[12:14])
	m.Priority = binary.BigEndian.Uint16(d[14:16])
	m.BufferID = binary.BigEndian.Uint32(d[16:20])
	m.OutPort = binary.BigEndian.Uint16(d[20:22])
	m.Flags = binary.BigEndian.Uint16(d[22:24])
	var err error
	m.Actions, err = decodeActions(d[24:])
	return err
}

// FlowRemoved is OFPT_FLOW_REMOVED.
type FlowRemoved struct {
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// Type implements Message.
func (*FlowRemoved) Type() MsgType { return TypeFlowRemoved }
func (m *FlowRemoved) encode(b []byte) []byte {
	b = m.Match.encode(b)
	b = be64(b, m.Cookie)
	b = be16(b, m.Priority)
	b = append(b, m.Reason, 0)
	b = be32(b, m.DurationSec)
	b = be32(b, m.DurationNsec)
	b = be16(b, m.IdleTimeout)
	b = append(b, 0, 0)
	b = be64(b, m.PacketCount)
	return be64(b, m.ByteCount)
}
func (m *FlowRemoved) decode(d []byte) error {
	if len(d) < matchLen+40 {
		return ErrTruncated
	}
	if err := m.Match.decode(d); err != nil {
		return err
	}
	d = d[matchLen:]
	m.Cookie = binary.BigEndian.Uint64(d[0:8])
	m.Priority = binary.BigEndian.Uint16(d[8:10])
	m.Reason = d[10]
	m.DurationSec = binary.BigEndian.Uint32(d[12:16])
	m.DurationNsec = binary.BigEndian.Uint32(d[16:20])
	m.IdleTimeout = binary.BigEndian.Uint16(d[20:22])
	m.PacketCount = binary.BigEndian.Uint64(d[24:32])
	m.ByteCount = binary.BigEndian.Uint64(d[32:40])
	return nil
}

// PortStatus is OFPT_PORT_STATUS.
type PortStatus struct {
	Reason uint8
	Desc   PhyPort
}

// Type implements Message.
func (*PortStatus) Type() MsgType { return TypePortStatus }
func (m *PortStatus) encode(b []byte) []byte {
	b = append(b, m.Reason, 0, 0, 0, 0, 0, 0, 0)
	return m.Desc.encode(b)
}
func (m *PortStatus) decode(d []byte) error {
	if len(d) < 8+phyPortLen {
		return ErrTruncated
	}
	m.Reason = d[0]
	return m.Desc.decode(d[8:])
}

func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func be64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
