package gen

import (
	"testing"

	"osnt/internal/netfpga"
	"osnt/internal/sim"
	"osnt/internal/wire"
)

// trainCollector observes the wire as a batch-aware endpoint: whole
// trains arrive via ReceiveTrain, everything else per frame.
type trainCollector struct {
	trainLens []int
	uniforms  []bool
	singles   int
	frames    uint64
}

func (c *trainCollector) Receive(f *wire.Frame, _, _ sim.Time) {
	c.singles++
	c.frames++
	f.Release()
}

func (c *trainCollector) ReceiveTrain(t *wire.Train, _, _ sim.Time) {
	c.trainLens = append(c.trainLens, t.Len())
	c.uniforms = append(c.uniforms, t.Uniform)
	c.frames += uint64(t.Len())
	t.Release()
}

// trainRig builds a one-port card wired into a batch-aware collector.
func trainRig() (*sim.Engine, *netfpga.Card, *trainCollector) {
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{})
	rx := &trainCollector{}
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rx))
	return e, card, rx
}

// runTrain drives one generator config to its Until deadline and
// returns the generator for counter checks.
func runTrain(t *testing.T, e *sim.Engine, card *netfpga.Card, cfg Config) *Generator {
	t.Helper()
	g, err := New(card.Port(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(cfg.Until))
	g.Stop()
	e.Run()
	return g
}

// TestTrainFormationAtLineRate checks the coalescing happy path: at load
// 1.0 every frame abuts its predecessor, so the generator forms
// full-length trains (modulo the deadline tail) and the delivered frame
// count matches the per-frame CBR arithmetic.
func TestTrainFormationAtLineRate(t *testing.T) {
	e, card, rx := trainRig()
	const dur = sim.Millisecond
	g := runTrain(t, e, card, Config{
		Source:   &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing:  CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:     wire.DefaultPool,
		MaxTrain: 8,
		Until:    sim.Time(dur),
	})
	if rx.frames < 14880 || rx.frames > 14882 {
		t.Fatalf("delivered %d frames in 1ms, want ≈14881", rx.frames)
	}
	if g.Sent().Packets != rx.frames {
		t.Fatalf("sent %d != delivered %d", g.Sent().Packets, rx.frames)
	}
	if len(rx.trainLens) == 0 {
		t.Fatal("no trains formed at load 1.0")
	}
	full := 0
	for _, n := range rx.trainLens {
		if n < 2 || n > 8 {
			t.Fatalf("train of %d frames outside (1, MaxTrain]", n)
		}
		if n == 8 {
			full++
		}
	}
	// At a perfectly even cadence nearly every run should hit the cap.
	if full < len(rx.trainLens)*9/10 {
		t.Errorf("only %d/%d trains reached the cap", full, len(rx.trainLens))
	}
	for i, u := range rx.uniforms {
		if !u {
			t.Fatalf("train %d of a one-flow CBR source not Uniform", i)
		}
	}
}

// TestTrainNoCoalesceBelowLineRate checks the abutment rule: at load 0.5
// consecutive departures never touch, so even a generous cap must
// produce zero trains — the per-frame path, packet for packet.
func TestTrainNoCoalesceBelowLineRate(t *testing.T) {
	e, card, rx := trainRig()
	const dur = sim.Millisecond
	runTrain(t, e, card, Config{
		Source:   &UDPFlowSource{Spec: spec, FrameSize: 512},
		Spacing:  CBRForLoad(512, wire.Rate10G, 0.5),
		Pool:     wire.DefaultPool,
		MaxTrain: 64,
		Until:    sim.Time(dur),
	})
	if len(rx.trainLens) != 0 {
		t.Fatalf("%d trains formed below line rate (lens %v)", len(rx.trainLens), rx.trainLens)
	}
	if rx.singles == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestTrainUniformityAcrossFlows checks the Uniform contract: a
// multi-flow source varies bytes frame to frame, so its trains still
// form (the wire is saturated) but must not claim uniformity, and an
// OnTransmit mutation hook (timestamp embedding) voids the flag even
// for a single flow.
func TestTrainUniformityAcrossFlows(t *testing.T) {
	e, card, rx := trainRig()
	const dur = sim.Millisecond
	runTrain(t, e, card, Config{
		Source:   &UDPFlowSource{Spec: spec, NumFlows: 4, FrameSize: 64},
		Spacing:  CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:     wire.DefaultPool,
		MaxTrain: 8,
		Until:    sim.Time(dur),
	})
	if len(rx.trainLens) == 0 {
		t.Fatal("no trains formed")
	}
	for i, u := range rx.uniforms {
		if u && rx.trainLens[i] > 1 {
			t.Fatalf("train %d of a 4-flow source claims Uniform", i)
		}
	}

	e2, card2, rx2 := trainRig()
	runTrain(t, e2, card2, Config{
		Source:         &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing:        CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:           wire.DefaultPool,
		MaxTrain:       8,
		Until:          sim.Time(dur),
		EmbedTimestamp: true,
	})
	if len(rx2.trainLens) == 0 {
		t.Fatal("no trains formed with timestamp embedding")
	}
	for i, u := range rx2.uniforms {
		if u {
			t.Fatalf("train %d claims Uniform despite per-frame timestamp embedding", i)
		}
	}
}

// TestTrainCountBudget checks that the Count limit binds mid-train: the
// run stops at exactly Count frames no matter where the train boundary
// falls, and the done callback still fires.
func TestTrainCountBudget(t *testing.T) {
	e, card, rx := trainRig()
	done := false
	g, err := New(card.Port(0), Config{
		Source:   &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing:  CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:     wire.DefaultPool,
		MaxTrain: 8,
		Count:    21, // not a multiple of the cap: the last train is short
		Until:    sim.Time(sim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.OnDone(func() { done = true })
	g.Start(0)
	e.Run()
	if rx.frames != 21 {
		t.Fatalf("delivered %d frames, want 21", rx.frames)
	}
	if g.Sent().Packets != 21 {
		t.Fatalf("sent counter %d, want 21", g.Sent().Packets)
	}
	if !done || g.Running() {
		t.Fatal("done callback / running state wrong")
	}
}

// TestTrainTimingMatchesPerFrame is the generator-level equivalence
// check: the same config run with cap 1 and cap 64 into a plain
// per-frame endpoint must deliver identical frame counts and identical
// arrival instants — coalescing may never move a packet in time.
func TestTrainTimingMatchesPerFrame(t *testing.T) {
	const dur = 200 * sim.Microsecond
	run := func(cap int) []sim.Time {
		e := sim.NewEngine()
		card := netfpga.New(e, netfpga.Config{})
		rx := &rxCollector{}
		card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rx))
		g, err := New(card.Port(0), Config{
			Source:   &UDPFlowSource{Spec: spec, NumFlows: 3, FrameSize: 128},
			Spacing:  CBRForLoad(128, wire.Rate10G, 1.0),
			Pool:     wire.DefaultPool,
			MaxTrain: cap,
			Until:    sim.Time(dur),
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(0)
		e.RunUntil(sim.Time(dur))
		g.Stop()
		e.Run()
		return rx.times
	}
	ref := run(1)
	got := run(64)
	if len(ref) == 0 || len(got) != len(ref) {
		t.Fatalf("delivered %d frames with trains, %d without", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("frame %d arrives at %v with trains, %v without", i, got[i], ref[i])
		}
	}
}
