package mon

import (
	"testing"

	"osnt/internal/filter"
	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

var spec = packet.UDPSpec{
	SrcMAC:  packet.MAC{2, 0, 0, 0, 0, 1},
	DstMAC:  packet.MAC{2, 0, 0, 0, 0, 2},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

// rig wires generator card port 0 -> monitor card port 0.
type rig struct {
	e    *sim.Engine
	tx   *netfpga.Card
	rx   *netfpga.Card
	mon  *Monitor
	recs []Record
}

func newRig(t *testing.T, cfg Config, frameSize int, load float64) (*rig, *gen.Generator) {
	t.Helper()
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	if cfg.Sink == nil {
		cfg.Sink = func(rec Record) { r.recs = append(r.recs, rec) }
	}
	r.mon = Attach(r.rx.Port(0), cfg)
	g, err := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: frameSize},
		Spacing: gen.CBRForLoad(frameSize, wire.Rate10G, load),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

func TestCaptureBasics(t *testing.T) {
	r, g := newRig(t, Config{}, 512, 0.01)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run() // let the ring drain

	if r.mon.Seen().Packets == 0 {
		t.Fatal("monitor saw nothing")
	}
	if r.mon.RingDrops() != 0 {
		t.Fatalf("low-rate capture dropped %d", r.mon.RingDrops())
	}
	if uint64(len(r.recs)) != r.mon.Seen().Packets {
		t.Fatalf("delivered %d of %d", len(r.recs), r.mon.Seen().Packets)
	}
	rec := r.recs[0]
	if rec.WireSize != 512 || len(rec.Data) != 508 {
		t.Fatalf("record size %d/%d", rec.WireSize, len(rec.Data))
	}
	if rec.Port != 0 || rec.Rule != -1 {
		t.Fatalf("record meta %+v", rec)
	}
	// MAC timestamp within one quantum below true arrival.
	errPs := rec.Arrival.Sub(rec.TS.Sim())
	if errPs < 0 || errPs >= sim.Duration(6250) {
		t.Fatalf("timestamp error %v", errPs)
	}
	if rec.Delivered <= rec.Arrival {
		t.Fatal("delivery must be after arrival")
	}
}

func TestThinning(t *testing.T) {
	r, g := newRig(t, Config{SnapLen: 64}, 1518, 0.01)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range r.recs {
		if len(rec.Data) != 64 {
			t.Fatalf("thinned record len %d", len(rec.Data))
		}
		if rec.WireSize != 1518 {
			t.Fatalf("wire size lost: %d", rec.WireSize)
		}
	}
}

func TestFilterDropAndCounters(t *testing.T) {
	tbl := filter.NewTable(filter.Capture)
	// Drop everything UDP from the generator's first flow port.
	_ = tbl.Append(&filter.Rule{
		Action: filter.Drop, Proto: packet.ProtoUDP,
		SrcPortMin: 5000, SrcPortMax: 5000,
	})
	r, g := newRig(t, Config{Filters: tbl}, 256, 0.01)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) != 0 {
		t.Fatalf("filter leak: %d records", len(r.recs))
	}
	if r.mon.Filtered() != r.mon.Seen().Packets {
		t.Fatalf("filtered %d of %d", r.mon.Filtered(), r.mon.Seen().Packets)
	}
	if r.mon.Accepted().Packets != 0 {
		t.Fatal("accepted counter should be zero")
	}
}

func TestPerRuleSnapLenOverride(t *testing.T) {
	tbl := filter.NewTable(filter.Capture)
	_ = tbl.Append(&filter.Rule{
		Action: filter.Capture, Proto: packet.ProtoUDP, SnapLen: 96,
	})
	r, g := newRig(t, Config{Filters: tbl, SnapLen: 1500}, 1024, 0.01)
	g.Start(0)
	r.e.RunUntil(200 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range r.recs {
		if len(rec.Data) != 96 {
			t.Fatalf("rule snap override: len %d, want 96", len(rec.Data))
		}
		if rec.Rule != 0 {
			t.Fatalf("rule index %d", rec.Rule)
		}
	}
}

func TestHashing(t *testing.T) {
	r, g := newRig(t, Config{HashBytes: 64}, 512, 0.01)
	g.Start(0)
	r.e.RunUntil(100 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) < 2 {
		t.Fatal("need records")
	}
	// Same template packet → same digest.
	if r.recs[0].Hash == 0 || r.recs[0].Hash != r.recs[1].Hash {
		t.Fatalf("hashes %x %x", r.recs[0].Hash, r.recs[1].Hash)
	}
	want := packet.PacketDigest(r.recs[0].Data, 64)
	if r.recs[0].Hash != want {
		t.Fatal("hash mismatch with PacketDigest")
	}
}

func TestLossLimitedPathOverflows(t *testing.T) {
	// E7 in miniature: full-size frames at line rate far exceed the host
	// drain (~1.25GB/s effective) → ring overflow.
	r, g := newRig(t, Config{RingSize: 64}, 1518, 1.0)
	g.Start(0)
	r.e.RunUntil(5 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if r.mon.RingDrops() == 0 {
		t.Fatal("line-rate full-size capture did not overflow the ring")
	}
	if r.mon.LossFraction() <= 0 {
		t.Fatal("loss fraction")
	}
}

func TestThinningRestoresLosslessness(t *testing.T) {
	// Same offered load, thinned to 64B: per-packet host cost dominates
	// but at 812kpps (1518B frames) the host keeps up.
	r, g := newRig(t, Config{RingSize: 64, SnapLen: 64}, 1518, 1.0)
	g.Start(0)
	r.e.RunUntil(5 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if r.mon.RingDrops() != 0 {
		t.Fatalf("thinned capture dropped %d", r.mon.RingDrops())
	}
}

func TestThinBeforeFilterAblation(t *testing.T) {
	// A filter that needs the UDP header fails when thinning to 20 bytes
	// happens first — the documented pipeline-order ablation.
	mk := func(thinFirst bool) uint64 {
		tbl := filter.NewTable(filter.Drop)
		_ = tbl.Append(&filter.Rule{
			Action: filter.Capture, Proto: packet.ProtoUDP,
			DstPortMin: 7000, DstPortMax: 7000,
		})
		r, g := newRig(t, Config{Filters: tbl, SnapLen: 20, ThinBeforeFilter: thinFirst}, 256, 0.01)
		g.Start(0)
		r.e.RunUntil(100 * sim.Time(sim.Microsecond))
		g.Stop()
		r.e.Run()
		return r.mon.Accepted().Packets
	}
	filterFirst := mk(false)
	thinFirst := mk(true)
	if filterFirst == 0 {
		t.Fatal("filter-first pipeline captured nothing")
	}
	if thinFirst != 0 {
		t.Fatalf("thin-first pipeline should break the port match, got %d", thinFirst)
	}
}

func TestRingDepthBounded(t *testing.T) {
	r, g := newRig(t, Config{RingSize: 16}, 1518, 1.0)
	maxDepth := 0
	r.e.ScheduleEvery(0, 10*sim.Microsecond, func() {
		if d := r.mon.RingDepth(); d > maxDepth {
			maxDepth = d
		}
	})
	g.Start(0)
	r.e.RunUntil(2 * sim.Time(sim.Millisecond))
	g.Stop()
	if maxDepth > 16 {
		t.Fatalf("ring depth %d exceeded capacity 16", maxDepth)
	}
}

func TestNilSinkStillCounts(t *testing.T) {
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	m := Attach(r.rx.Port(0), Config{Sink: nil})
	g, _ := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: gen.CBR{Interval: 10 * sim.Microsecond},
		Count:   10,
	})
	g.Start(0)
	r.e.Run()
	if m.Delivered().Packets != 10 {
		t.Fatalf("delivered %d", m.Delivered().Packets)
	}
}

func TestRecordDataIsCopied(t *testing.T) {
	// The record's bytes must survive datapath buffer reuse.
	r, g := newRig(t, Config{}, 128, 0.01)
	g.Start(0)
	r.e.RunUntil(50 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) < 2 {
		t.Fatal("need records")
	}
	d0 := append([]byte(nil), r.recs[0].Data...)
	// Mutate a later record's buffer; the first must be unaffected.
	r.recs[1].Data[0] = ^r.recs[1].Data[0]
	for i := range d0 {
		if r.recs[0].Data[i] != d0[i] {
			t.Fatal("record buffers alias")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero config", Config{}, true},
		{"negative ring", Config{RingSize: -1}, false},
		{"negative host per packet", Config{HostPerPacket: -sim.Nanosecond}, false},
		{"negative host per byte is zero-cost", Config{HostPerByte: -1}, true},
		{"empty queues slice", Config{Queues: []QueueConfig{}}, false},
		{"one default queue", Config{Queues: []QueueConfig{{}}}, true},
		{"queue negative ring", Config{Queues: []QueueConfig{{}, {RingSize: -5}}}, false},
		{"queue negative host per packet", Config{Queues: []QueueConfig{{HostPerPacket: -1}}}, false},
		{"queue negative host per byte is zero-cost", Config{Queues: []QueueConfig{{HostPerByte: -1}}}, true},
		{"eight queues", Config{Queues: make([]QueueConfig, 8)}, true},
		{"unknown steer policy", Config{Steer: Steer(9), Queues: make([]QueueConfig, 2)}, false},
		{"round robin", Config{Steer: SteerRoundRobin, Queues: make([]QueueConfig, 2)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() accepted an invalid config")
			}
			// New must agree with Validate on a real port.
			e := sim.NewEngine()
			card := netfpga.New(e, netfpga.Config{})
			_, err = New(card.Port(0), tc.cfg)
			if tc.ok != (err == nil) {
				t.Fatalf("New() error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestNewRejectsQueueBudgetAndBadPins(t *testing.T) {
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{}) // CaptureQueues default 8
	if _, err := New(card.Port(0), Config{Queues: make([]QueueConfig, 9)}); err == nil {
		t.Fatal("nine queues accepted against a budget of eight")
	}
	// Raising the card's budget legalises the same config.
	big := netfpga.New(e, netfpga.Config{CaptureQueues: 16})
	if _, err := New(big.Port(0), Config{Queues: make([]QueueConfig, 9)}); err != nil {
		t.Fatalf("nine queues rejected under a budget of sixteen: %v", err)
	}
	// A filter rule pinning a queue the monitor lacks is a config error.
	tbl := filter.NewTable(filter.Capture)
	if err := tbl.Append(&filter.Rule{Action: filter.Capture, PinQueue: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(card.Port(1), Config{Filters: tbl, Queues: make([]QueueConfig, 2)}); err == nil {
		t.Fatal("pin to queue 3 accepted on a 2-queue monitor")
	}
	if _, err := New(card.Port(1), Config{Filters: tbl, Queues: make([]QueueConfig, 4)}); err != nil {
		t.Fatalf("valid pin rejected: %v", err)
	}
}

func TestAttachPanicsOnInvalidConfig(t *testing.T) {
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Attach accepted a negative ring size")
		}
	}()
	Attach(card.Port(0), Config{RingSize: -1})
}

// multiQueueRig wires the gen→mon loopback with an N-queue monitor and a
// multi-flow workload, recording every record per queue.
func multiQueueRig(t *testing.T, cfg Config, flows, frameSize int, load float64) (*rig, *gen.Generator, *[][]Record) {
	t.Helper()
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	byQueue := make([][]Record, len(cfg.Queues))
	if cfg.Sink == nil {
		cfg.Sink = func(rec Record) { byQueue[rec.Queue] = append(byQueue[rec.Queue], rec) }
	}
	r.mon = Attach(r.rx.Port(0), cfg)
	g, err := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: flows, FrameSize: frameSize},
		Spacing: gen.CBRForLoad(frameSize, wire.Rate10G, load),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, g, &byQueue
}

func TestSingleQueueShorthandEquivalence(t *testing.T) {
	// The explicit one-entry Queues config and the legacy shorthand must
	// produce bit-identical captures: same records, same delivery
	// instants, same counters.
	run := func(cfg Config) (recs []Record, drops uint64) {
		r := &rig{e: sim.NewEngine()}
		r.tx = netfpga.New(r.e, netfpga.Config{})
		r.rx = netfpga.New(r.e, netfpga.Config{})
		r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
		cfg.Sink = func(rec Record) {
			rec.Data = append([]byte(nil), rec.Data...)
			recs = append(recs, rec)
		}
		m := Attach(r.rx.Port(0), cfg)
		g, err := gen.New(r.tx.Port(0), gen.Config{
			Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: 4, FrameSize: 1518},
			Spacing: gen.CBRForLoad(1518, wire.Rate10G, 1.0),
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(0)
		r.e.RunUntil(2 * sim.Time(sim.Millisecond))
		g.Stop()
		r.e.Run()
		return recs, m.RingDrops()
	}
	oldShape, oldDrops := run(Config{RingSize: 64})
	newShape, newDrops := run(Config{Queues: []QueueConfig{{RingSize: 64}}})
	if oldDrops == 0 {
		t.Fatal("rig under-loaded: want ring overflow in both shapes")
	}
	if oldDrops != newDrops {
		t.Fatalf("drops diverge: shorthand %d, Queues %d", oldDrops, newDrops)
	}
	if len(oldShape) != len(newShape) {
		t.Fatalf("record counts diverge: %d vs %d", len(oldShape), len(newShape))
	}
	for i := range oldShape {
		a, b := oldShape[i], newShape[i]
		if a.Delivered != b.Delivered || a.TS != b.TS || a.WireSize != b.WireSize ||
			a.Queue != b.Queue || string(a.Data) != string(b.Data) {
			t.Fatalf("record %d diverges:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

func TestHashSteeringPerFlowAffinity(t *testing.T) {
	cfg := Config{Queues: make([]QueueConfig, 4), SnapLen: 64}
	r, g, byQueue := multiQueueRig(t, cfg, 16, 256, 0.2)
	g.Start(0)
	r.e.RunUntil(2 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()

	// Every flow's records must land on exactly one queue (RSS affinity),
	// and with 16 flows over 4 queues every queue should see traffic.
	flowQueue := map[uint16]int{}
	total := 0
	for q, recs := range *byQueue {
		if len(recs) == 0 {
			t.Errorf("queue %d never steered to", q)
		}
		for _, rec := range recs {
			total++
			if rec.Queue != q {
				t.Fatalf("record carries Queue=%d but arrived on sink view %d", rec.Queue, q)
			}
			srcPort := uint16(rec.Data[34])<<8 | uint16(rec.Data[35])
			if prev, seen := flowQueue[srcPort]; seen && prev != q {
				t.Fatalf("flow %d split across queues %d and %d", srcPort, prev, q)
			}
			flowQueue[srcPort] = q
		}
	}
	if total == 0 || uint64(total) != r.mon.Delivered().Packets {
		t.Fatalf("sinks saw %d records, monitor delivered %d", total, r.mon.Delivered().Packets)
	}
	if len(flowQueue) != 16 {
		t.Fatalf("saw %d flows, want 16", len(flowQueue))
	}
}

func TestRoundRobinSteeringBalanced(t *testing.T) {
	cfg := Config{Queues: make([]QueueConfig, 4), Steer: SteerRoundRobin, SnapLen: 64}
	r, g, byQueue := multiQueueRig(t, cfg, 1, 256, 0.2)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if r.mon.RingDrops() != 0 {
		t.Fatalf("low-rate capture dropped %d", r.mon.RingDrops())
	}
	min, max := -1, 0
	for q := range *byQueue {
		n := len((*byQueue)[q])
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin imbalance: min %d max %d", min, max)
	}
}

func TestRulePinnedSteeringOverridesPolicy(t *testing.T) {
	tbl := filter.NewTable(filter.Capture)
	// Pin the generator's first flow to queue 2 (1-based); everything
	// else falls through to the default action and hash steering.
	_ = tbl.Append(&filter.Rule{
		Action: filter.Capture, Proto: packet.ProtoUDP,
		SrcPortMin: 5000, SrcPortMax: 5000,
		PinQueue: 2,
	})
	cfg := Config{Filters: tbl, Queues: make([]QueueConfig, 4), SnapLen: 64}
	r, g, byQueue := multiQueueRig(t, cfg, 8, 256, 0.2)
	g.Start(0)
	r.e.RunUntil(2 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()

	pinned := 0
	for q, recs := range *byQueue {
		for _, rec := range recs {
			srcPort := uint16(rec.Data[34])<<8 | uint16(rec.Data[35])
			if srcPort == 5000 {
				pinned++
				if q != 1 {
					t.Fatalf("pinned flow landed on queue %d, want 1", q)
				}
				if rec.Rule != 0 {
					t.Fatalf("pinned record rule %d", rec.Rule)
				}
			}
		}
	}
	if pinned == 0 {
		t.Fatal("pinned flow never captured")
	}
	qs := r.mon.QueueStats(1)
	if qs.Seen.Packets < uint64(pinned) {
		t.Fatalf("queue 1 stats %+v, want at least the %d pinned records", qs, pinned)
	}
}

func TestLateAppendedOutOfRangePinWraps(t *testing.T) {
	// The filter table stays live after Attach; a rule appended later
	// with a pin beyond the queue count must steer deterministically
	// in range, not panic the capture path.
	tbl := filter.NewTable(filter.Capture)
	cfg := Config{Filters: tbl, Queues: make([]QueueConfig, 2), SnapLen: 64}
	r, g, _ := multiQueueRig(t, cfg, 1, 256, 0.1)
	if err := tbl.Append(&filter.Rule{Action: filter.Capture, Proto: packet.ProtoUDP, PinQueue: 7}); err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	r.e.RunUntil(200 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if r.mon.Delivered().Packets == 0 {
		t.Fatal("nothing captured")
	}
	// pin 7 on 2 queues wraps to (7-1)%2 = queue 0.
	if got := r.mon.QueueStats(0).Delivered.Packets; got != r.mon.Delivered().Packets {
		t.Fatalf("wrapped pin delivered %d of %d to queue 0", got, r.mon.Delivered().Packets)
	}
}

func TestPerQueueSinksAndStats(t *testing.T) {
	// Per-queue sinks see exactly their queue's records, and the
	// QueueStats sum matches the monitor-level aggregates.
	var q0, q1 int
	cfg := Config{
		Queues: []QueueConfig{
			{Sink: func(rec Record) {
				q0++
				if rec.Queue != 0 {
					panic("queue 0 sink got a foreign record")
				}
			}},
			{Sink: func(rec Record) {
				q1++
				if rec.Queue != 1 {
					panic("queue 1 sink got a foreign record")
				}
			}},
		},
		Steer:   SteerRoundRobin,
		SnapLen: 64,
	}
	r, g, _ := multiQueueRig(t, cfg, 1, 512, 0.1)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if q0 == 0 || q1 == 0 {
		t.Fatalf("per-queue sinks saw %d/%d", q0, q1)
	}
	var sumSeen, sumDel stats.Counter
	var sumDrops uint64
	for q := 0; q < r.mon.NumQueues(); q++ {
		qs := r.mon.QueueStats(q)
		sumSeen.Packets += qs.Seen.Packets
		sumSeen.Bytes += qs.Seen.Bytes
		sumDel.Packets += qs.Delivered.Packets
		sumDel.Bytes += qs.Delivered.Bytes
		sumDrops += qs.RingDrops
	}
	if sumSeen != r.mon.Accepted() {
		t.Fatalf("steered sum %+v != accepted %+v", sumSeen, r.mon.Accepted())
	}
	if sumDel != r.mon.Delivered() {
		t.Fatalf("delivered sum %+v != aggregate %+v", sumDel, r.mon.Delivered())
	}
	if sumDrops != r.mon.RingDrops() {
		t.Fatalf("drop sum %d != aggregate %d", sumDrops, r.mon.RingDrops())
	}
	if uint64(q0+q1) != sumDel.Packets {
		t.Fatalf("sinks saw %d, stats say %d", q0+q1, sumDel.Packets)
	}
}

func TestRingCompactionAcrossThreshold(t *testing.T) {
	// Sustained overload walks the ring head far past the 256-record
	// compaction threshold while live records sit behind it. Compaction
	// must neither lose nor corrupt records, and the backing array must
	// stay proportional to the ring capacity instead of the packet
	// count.
	r, g := newRig(t, Config{RingSize: 512}, 1518, 1.0)
	g.Start(0)
	r.e.RunUntil(20 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()

	q := &r.mon.queues[0]
	if r.mon.RingDrops() == 0 {
		t.Fatal("rig under-loaded: the ring never overflowed")
	}
	if got := r.mon.QueueStats(0); got.Depth != 0 {
		t.Fatalf("ring not drained: depth %d", got.Depth)
	}
	if delivered := uint64(len(r.recs)); delivered != r.mon.Delivered().Packets {
		t.Fatalf("sink saw %d, monitor delivered %d", len(r.recs), r.mon.Delivered().Packets)
	}
	if acc := r.mon.QueueStats(0).Accepted.Packets; acc != r.mon.Delivered().Packets {
		t.Fatalf("accepted %d != delivered %d after drain", acc, r.mon.Delivered().Packets)
	}
	// Thousands of records flowed through; a leak of the dead prefix
	// would leave cap(ring) proportional to that count.
	if c := cap(q.ring); c > 4*512 {
		t.Fatalf("ring backing array grew to %d slots for a 512-deep ring (compaction rotted?)", c)
	}
	last := sim.Time(0)
	for i, rec := range r.recs {
		if rec.WireSize != 1518 {
			t.Fatalf("record %d corrupted: wire size %d", i, rec.WireSize)
		}
		if rec.Delivered < last {
			t.Fatalf("record %d delivered out of order", i)
		}
		last = rec.Delivered
	}
}

func TestRecycleRecordsSinkMustCopy(t *testing.T) {
	// With RecycleRecords on, a sink that retains rec.Data sees the
	// buffer rewritten by later captures — the documented contract that
	// retained bytes must be copied out. The flows cycle, so a reused
	// buffer's content provably changes.
	var retained []byte
	var original []byte
	cfg := Config{
		RecycleRecords: true,
		SnapLen:        64,
		Queues: []QueueConfig{{
			Sink: func(rec Record) {
				if retained == nil {
					retained = rec.Data
					original = append([]byte(nil), rec.Data...)
				}
			},
		}},
	}
	r, g, _ := multiQueueRig(t, cfg, 4, 256, 0.2)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if retained == nil {
		t.Fatal("no records")
	}
	if r.mon.Delivered().Packets < 4 {
		t.Fatal("need several records to observe reuse")
	}
	if string(retained) == string(original) {
		t.Fatal("retained buffer unchanged: RecycleRecords never reused it")
	}
	// The internal free list is actually in rotation.
	if len(r.mon.queues[0].bufFree) == 0 && r.mon.QueueStats(0).Depth == 0 {
		t.Fatal("free list empty after drain: recycling is not happening")
	}
}

func TestNilSinkRecyclesBuffers(t *testing.T) {
	// A nil sink forces recycling regardless of the flag: the steady
	// state must rotate a bounded buffer set, not allocate per record.
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	m := Attach(r.rx.Port(0), Config{SnapLen: 64})
	g, err := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 256},
		Spacing: gen.CBR{Interval: 5 * sim.Microsecond},
		Count:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	r.e.Run()
	if m.Delivered().Packets != 500 {
		t.Fatalf("delivered %d", m.Delivered().Packets)
	}
	q := &m.queues[0]
	if len(q.bufFree) == 0 {
		t.Fatal("nil-sink monitor kept no free buffers")
	}
	// One record in flight at a time → one buffer in rotation.
	if len(q.bufFree) > 2 {
		t.Fatalf("free list holds %d buffers for a 1-deep steady state", len(q.bufFree))
	}
}

func BenchmarkMonitorPipeline(b *testing.B) {
	e := sim.NewEngine()
	tx := netfpga.New(e, netfpga.Config{})
	rx := netfpga.New(e, netfpga.Config{})
	tx.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rx.Port(0)))
	tbl := filter.NewTable(filter.Capture)
	_ = tbl.Append(&filter.Rule{Action: filter.Capture, Proto: packet.ProtoUDP})
	Attach(rx.Port(0), Config{Filters: tbl, SnapLen: 64, HashBytes: 64})
	g, _ := gen.New(tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 256},
		Spacing: gen.CBRForLoad(256, wire.Rate10G, 0.5),
	})
	g.Start(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.RunFor(sim.Microsecond)
	}
	g.Stop()
}

// The capture engine reports its two loss mechanisms — ring overflow
// and filter rejects — into an attached drop ledger, and the ledger
// counts agree with the engine's own views.
func TestMonitorReportsIntoDropLedger(t *testing.T) {
	filters := filter.NewTable(filter.Capture)
	if err := filters.Append(&filter.Rule{
		Name: "no-dns", Action: filter.Drop,
		Proto:      packet.ProtoUDP,
		DstPortMin: 7000, DstPortMax: 7000,
	}); err != nil {
		t.Fatal(err)
	}
	// The rule rejects the workload's only flow, so every frame is a
	// filter-reject and the (tiny) ring never even fills.
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	r.mon = Attach(r.rx.Port(0), Config{Filters: filters, RingSize: 4})
	ledger := &wire.DropLedger{}
	hop := ledger.Add("mon")
	r.mon.SetDropSite(ledger, hop)

	g, err := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: 1, FrameSize: 1518},
		Spacing: gen.CBRForLoad(1518, wire.Rate10G, 1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	r.e.RunUntil(sim.Time(2 * sim.Millisecond))
	g.Stop()
	r.e.Run()

	if got := ledger.Count(hop, wire.DropFilterReject); got == 0 || got != r.mon.Filtered() {
		t.Fatalf("ledger filter rejects %d, monitor filtered %d", got, r.mon.Filtered())
	}
	if got := ledger.Count(hop, wire.DropFilterReject); got != filters.DropHits() {
		t.Fatalf("ledger %d != filter.DropHits %d", got, filters.DropHits())
	}
	if r.mon.RingDrops() != 0 {
		t.Fatalf("everything was rejected, yet the ring dropped %d", r.mon.RingDrops())
	}
}

// Ring overflow reports ring-full per lost packet, per queue, summed at
// the monitor's hop.
func TestRingOverflowReportsIntoLedger(t *testing.T) {
	r, g := newRig(t, Config{RingSize: 4, Sink: func(Record) {}}, 1518, 1.0)
	ledger := &wire.DropLedger{}
	hop := ledger.Add("mon")
	r.mon.SetDropSite(ledger, hop)
	g.Start(0)
	r.e.RunUntil(sim.Time(2 * sim.Millisecond))
	g.Stop()
	r.e.Run()
	if r.mon.RingDrops() == 0 {
		t.Fatal("full-size line-rate capture into a 4-slot ring did not overflow")
	}
	if got := ledger.Count(hop, wire.DropRingFull); got != r.mon.RingDrops() {
		t.Fatalf("ledger ring-full %d != RingDrops %d", got, r.mon.RingDrops())
	}
	// Conservation across the capture pipeline: seen = filtered +
	// ring drops + delivered once the rings have drained.
	if seen := r.mon.Seen().Packets; seen != r.mon.Filtered()+r.mon.RingDrops()+r.mon.Delivered().Packets {
		t.Fatalf("capture pipeline does not conserve: seen %d", seen)
	}
}
