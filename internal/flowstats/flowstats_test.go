package flowstats

import (
	"testing"

	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

func ts(d sim.Duration) timing.Timestamp { return timing.FromSim(sim.Time(d)) }

func TestFlowTableBasics(t *testing.T) {
	tbl := NewFlowTable(64)
	for i := 0; i < 10; i++ {
		tbl.Observe(Sample{Digest: 7, RxTS: ts(sim.Duration(i) * sim.Microsecond), Wire: 64})
	}
	tbl.Observe(Sample{Digest: 9, RxTS: ts(sim.Millisecond), Wire: 128})
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	f := tbl.Lookup(7)
	if f == nil || f.Packets != 10 || f.Bytes != 640 {
		t.Fatalf("flow 7 = %+v", f)
	}
	if f.FirstRx != ts(0) || f.LastRx != ts(9*sim.Microsecond) {
		t.Fatalf("flow 7 window = %v..%v", f.FirstRx, f.LastRx)
	}
	if tbl.Lookup(8) != nil {
		t.Fatal("phantom flow 8")
	}
	// Digest 0 is a legal key.
	tbl.Observe(Sample{Digest: 0, RxTS: ts(0), Wire: 64})
	if tbl.Lookup(0) == nil {
		t.Fatal("digest 0 not tracked")
	}
}

func TestFlowTableOverflowBounded(t *testing.T) {
	tbl := NewFlowTable(16) // capacity 16, limit 14
	for i := uint64(0); i < 40; i++ {
		tbl.Observe(Sample{Digest: i, RxTS: ts(0), Wire: 64})
	}
	if tbl.Len() != 14 {
		t.Fatalf("Len = %d, want limit 14", tbl.Len())
	}
	if tbl.Overflow() != 26 {
		t.Fatalf("Overflow = %d, want 26", tbl.Overflow())
	}
	// Tracked flows keep updating past the limit.
	if !tbl.Observe(Sample{Digest: 0, RxTS: ts(0), Wire: 64}) {
		t.Fatal("tracked flow refused after overflow")
	}
}

func TestFlowTableLatency(t *testing.T) {
	tbl := NewFlowTable(16)
	// Embedded TX timestamps: latencies 10, 20, 30 µs.
	for i := 1; i <= 3; i++ {
		lat := sim.Duration(i) * 10 * sim.Microsecond
		tx := ts(sim.Duration(i) * sim.Millisecond)
		tbl.Observe(Sample{Digest: 1, TxTS: tx, HasTx: true, RxTS: tx.Add(lat), Wire: 64})
	}
	f := tbl.Lookup(1)
	if f.LatencyCount() != 3 {
		t.Fatalf("latency count = %d", f.LatencyCount())
	}
	// The 32.32 timestamp format quantises at ~233 ps; compare to 1 ns.
	near := func(got, want sim.Duration) bool {
		d := got - want
		return d > -sim.Nanosecond && d < sim.Nanosecond
	}
	if !near(f.LatencyMean(), 20*sim.Microsecond) || !near(f.LatencyMin(), 10*sim.Microsecond) || !near(f.LatencyMax(), 30*sim.Microsecond) {
		t.Fatalf("latency mean/min/max = %v/%v/%v", f.LatencyMean(), f.LatencyMin(), f.LatencyMax())
	}

	// No embedded timestamp: the first HopTrace stamp is the reference.
	var tr wire.HopTrace
	tr.Stamp(3, sim.Time(sim.Millisecond))
	tr.Stamp(4, sim.Time(sim.Millisecond+50*sim.Microsecond))
	tbl.Observe(Sample{Digest: 2, RxTS: ts(sim.Millisecond + 70*sim.Microsecond), Trace: tr, Wire: 64})
	g := tbl.Lookup(2)
	if g.LatencyCount() != 1 || !near(g.LatencyMean(), 70*sim.Microsecond) {
		t.Fatalf("trace-derived latency = %v (n=%d)", g.LatencyMean(), g.LatencyCount())
	}
}

func TestFlowTableReordersAndHoles(t *testing.T) {
	tbl := NewFlowTable(16)
	const gap = 10 * sim.Microsecond
	send := func(k int) { // k-th packet of a CBR flow
		tx := ts(sim.Duration(k) * gap)
		tbl.Observe(Sample{Digest: 5, TxTS: tx, HasTx: true, RxTS: tx.Add(sim.Microsecond), Wire: 64})
	}
	send(1)
	send(2) // establishes minGap
	send(3)
	send(6) // 4 and 5 lost: gap 3×minGap → 2 holes
	f := tbl.Lookup(5)
	if f.Holes != 2 {
		t.Fatalf("Holes = %d, want 2", f.Holes)
	}
	send(5) // late arrival: sent before 6, captured after → reorder
	if f.Reorders != 1 {
		t.Fatalf("Reorders = %d, want 1", f.Reorders)
	}
	send(7) // gap from 6 (not from the reordered 5): no new holes
	if f.Holes != 2 {
		t.Fatalf("Holes after reorder = %d, want 2", f.Holes)
	}
}

func TestFlowTableTopDeterministic(t *testing.T) {
	tbl := NewFlowTable(64)
	counts := map[uint64]int{11: 5, 22: 9, 33: 9, 44: 1}
	for d, n := range counts {
		for i := 0; i < n; i++ {
			tbl.Observe(Sample{Digest: d, RxTS: ts(0), Wire: 64})
		}
	}
	top := tbl.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d", len(top))
	}
	// Descending packets, ties by ascending digest.
	want := []uint64{22, 33, 11}
	for i, f := range top {
		if f.Digest != want[i] {
			t.Fatalf("Top[%d] = %d, want %d", i, f.Digest, want[i])
		}
	}
}

func TestFlowTableObserveZeroAlloc(t *testing.T) {
	tbl := NewFlowTable(1 << 10)
	digests := make([]uint64, 512)
	for i := range digests {
		digests[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		d := digests[i%len(digests)]
		tx := ts(sim.Duration(i) * sim.Microsecond)
		tbl.Observe(Sample{Digest: d, TxTS: tx, HasTx: true, RxTS: tx.Add(sim.Microsecond), Wire: 64})
		i++
	})
	if avg != 0 {
		t.Fatalf("Observe allocates %.2f per sample, want 0", avg)
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(4, 1<<12)
	truth := make(map[uint64]uint64)
	rnd := sim.NewRand(42)
	for i := 0; i < 5000; i++ {
		d := uint64(rnd.Intn(300)) * 0x9e3779b97f4a7c15
		n := uint64(1 + rnd.Intn(3))
		cm.Add(d, n)
		truth[d] += n
	}
	for d, n := range truth {
		if est := cm.Estimate(d); est < n {
			t.Fatalf("digest %x: estimate %d < true %d", d, est, n)
		}
	}
}

func TestCountMinAddZeroAlloc(t *testing.T) {
	cm := NewCountMin(4, 1<<12)
	i := uint64(0)
	avg := testing.AllocsPerRun(1000, func() {
		cm.Add(i*0x9e3779b97f4a7c15, 1)
		i++
	})
	if avg != 0 {
		t.Fatalf("Add allocates %.2f per sample, want 0", avg)
	}
}

func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	ss := NewSpaceSaving(8)
	for d := uint64(1); d <= 4; d++ {
		ss.Add(d, d*10)
	}
	top := ss.Top(4)
	if len(top) != 4 {
		t.Fatalf("Top returned %d", len(top))
	}
	if top[0].Digest != 4 || top[0].Count != 40 || top[0].Err != 0 {
		t.Fatalf("Top[0] = %+v", top[0])
	}
	if top[3].Digest != 1 || top[3].Count != 10 {
		t.Fatalf("Top[3] = %+v", top[3])
	}
}

func TestSpaceSavingKeepsHeavyHitters(t *testing.T) {
	ss := NewSpaceSaving(8)
	rnd := sim.NewRand(7)
	// 4 elephants with 200 packets each among 200 one-packet mice.
	elephants := []uint64{0xe0, 0xe1, 0xe2, 0xe3}
	for i := 0; i < 200; i++ {
		for _, e := range elephants {
			ss.Add(e, 1)
		}
		ss.Add(0x1000+uint64(rnd.Intn(200)), 1)
	}
	for _, e := range elephants {
		if !ss.Monitored(e) {
			t.Fatalf("elephant %x evicted", e)
		}
	}
	for _, h := range ss.Top(4) {
		if h.Count-h.Err > 200 {
			t.Fatalf("%x: guaranteed count %d exceeds truth 200", h.Digest, h.Count-h.Err)
		}
		if h.Count < 200 {
			t.Fatalf("%x: count %d undercounts truth 200", h.Digest, h.Count)
		}
	}
}

func TestSpaceSavingAddZeroAlloc(t *testing.T) {
	ss := NewSpaceSaving(64)
	i := uint64(0)
	avg := testing.AllocsPerRun(1000, func() {
		ss.Add(i%97, 1)
		i++
	})
	if avg != 0 {
		t.Fatalf("Add allocates %.2f per sample, want 0", avg)
	}
}
