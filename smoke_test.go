package osnt_test

import (
	"os/exec"
	"strings"
	"testing"
)

// goRun builds and runs a main package in-tree, returning its combined
// output. The entry points have zero unit coverage by nature; this is the
// CI backbone's answer: every PR proves they still compile and produce
// their expected output shape.
func goRun(t *testing.T, args ...string) string {
	t.Helper()
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cmd := exec.Command(gobin, append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestOSNTBenchListSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	out := goRun(t, "./cmd/osnt-bench", "-list")
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"\t") && !strings.HasPrefix(out, id) && !strings.Contains(out, "\n"+id) {
			t.Errorf("-list output missing %s:\n%s", id, out)
		}
	}
}

func TestOSNTBenchRunsOneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	// E2 is the cheapest full experiment (a handful of clock samples).
	out := goRun(t, "./cmd/osnt-bench", "-e", "e2")
	if !strings.Contains(out, "E2: clock error") {
		t.Fatalf("unexpected -e e2 output:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 4 {
		t.Fatalf("suspiciously short table (%d lines):\n%s", lines, out)
	}
}

func TestOSNTBenchRejectsUnknownExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cmd := exec.Command(gobin, "run", "./cmd/osnt-bench", "-e", "nope")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown experiment exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Fatalf("missing error message:\n%s", out)
	}
}

func TestExampleQuickstartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	out := goRun(t, "./examples/quickstart")
	for _, want := range []string{"sent", "captured", "switch latency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
}
