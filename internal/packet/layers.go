package packet

// This file holds the link- and network-layer codecs. Each layer decodes
// in place from a byte slice (keeping a reference to its payload, no
// copies) and serializes by prepending onto a SerializeBuffer.

// Ethernet is an untagged Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
	payload   []byte
}

// HeaderLen is the Ethernet II header size.
const EthernetHeaderLen = 14

// DecodeFromBytes parses an Ethernet header, resetting e.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTooShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = beU16(data[12:14])
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// Payload returns the bytes following the header.
func (e *Ethernet) Payload() []byte { return e.payload }

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(EthernetHeaderLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	putU16(h[12:14], e.EtherType)
	return nil
}

// VLAN is an 802.1Q tag. On the wire it follows an Ethernet header whose
// EtherType is EtherTypeVLAN.
type VLAN struct {
	Priority  uint8 // PCP, 3 bits
	DropOK    bool  // DEI bit
	ID        uint16
	EtherType uint16 // encapsulated EtherType
	payload   []byte
}

// VLANHeaderLen is the length of the 802.1Q tag body (TCI + EtherType).
const VLANHeaderLen = 4

// DecodeFromBytes parses a VLAN tag, resetting v.
func (v *VLAN) DecodeFromBytes(data []byte) error {
	if len(data) < VLANHeaderLen {
		return ErrTooShort
	}
	tci := beU16(data[0:2])
	v.Priority = uint8(tci >> 13)
	v.DropOK = tci&0x1000 != 0
	v.ID = tci & 0x0fff
	v.EtherType = beU16(data[2:4])
	v.payload = data[VLANHeaderLen:]
	return nil
}

// Payload returns the bytes following the tag.
func (v *VLAN) Payload() []byte { return v.payload }

// SerializeTo implements SerializableLayer.
func (v *VLAN) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(VLANHeaderLen)
	tci := uint16(v.Priority)<<13 | v.ID&0x0fff
	if v.DropOK {
		tci |= 0x1000
	}
	putU16(h[0:2], tci)
	putU16(h[2:4], v.EtherType)
	return nil
}

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Op                 uint16
	SenderHW, TargetHW MAC
	SenderIP, TargetIP IP4
}

// ARPLen is the Ethernet/IPv4 ARP body size.
const ARPLen = 28

// DecodeFromBytes parses an ARP body, resetting a. Only the
// Ethernet/IPv4 combination is accepted.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPLen {
		return ErrTooShort
	}
	if beU16(data[0:2]) != 1 || beU16(data[2:4]) != EtherTypeIPv4 || data[4] != 6 || data[5] != 4 {
		return ErrTooShort
	}
	a.Op = beU16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(ARPLen)
	putU16(h[0:2], 1) // Ethernet
	putU16(h[2:4], EtherTypeIPv4)
	h[4], h[5] = 6, 4
	putU16(h[6:8], a.Op)
	copy(h[8:14], a.SenderHW[:])
	copy(h[14:18], a.SenderIP[:])
	copy(h[18:24], a.TargetHW[:])
	copy(h[24:28], a.TargetIP[:])
	return nil
}

// IPv4 flag bits.
const (
	IPv4DontFragment  uint8 = 0x2
	IPv4MoreFragments uint8 = 0x1
)

// IPv4 is an IPv4 header with options.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Proto    byte
	Checksum uint16
	Src, Dst IP4
	Options  []byte
	payload  []byte
}

// IPv4MinLen is the option-less IPv4 header size.
const IPv4MinLen = 20

// DecodeFromBytes parses an IPv4 header, resetting ip.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4MinLen {
		return ErrTooShort
	}
	if data[0]>>4 != 4 {
		return ErrVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4MinLen || len(data) < ihl {
		return ErrTooShort
	}
	ip.TOS = data[1]
	ip.TotalLen = beU16(data[2:4])
	ip.ID = beU16(data[4:6])
	ff := beU16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Proto = data[9]
	ip.Checksum = beU16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	ip.Options = data[IPv4MinLen:ihl]
	// Trust TotalLen when plausible so trailing Ethernet padding is not
	// mistaken for payload.
	end := len(data)
	if tl := int(ip.TotalLen); tl >= ihl && tl <= len(data) {
		end = tl
	}
	ip.payload = data[ihl:end]
	return nil
}

// Payload returns the bytes between header and TotalLen (or the end of
// data when TotalLen is implausible).
func (ip *IPv4) Payload() []byte { return ip.payload }

// HeaderLen returns the header size implied by Options.
func (ip *IPv4) HeaderLen() int { return IPv4MinLen + (len(ip.Options)+3)/4*4 }

// VerifyChecksum recomputes the header checksum over data's header bytes
// and reports whether it is consistent. data must be the same slice the
// header was decoded from.
func (ip *IPv4) VerifyChecksum(data []byte) bool {
	ihl := IPv4MinLen + len(ip.Options)
	if len(data) < ihl {
		return false
	}
	return Checksum(data[:ihl], 0) == 0
}

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	optLen := (len(ip.Options) + 3) / 4 * 4
	hl := IPv4MinLen + optLen
	payloadLen := b.Len()
	h := b.PrependBytes(hl)
	h[0] = 4<<4 | uint8(hl/4)
	h[1] = ip.TOS
	if opts.FixLengths {
		ip.TotalLen = uint16(hl + payloadLen)
	}
	putU16(h[2:4], ip.TotalLen)
	putU16(h[4:6], ip.ID)
	putU16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Proto
	putU16(h[10:12], 0)
	copy(h[12:16], ip.Src[:])
	copy(h[16:20], ip.Dst[:])
	for i := range h[IPv4MinLen:] {
		h[IPv4MinLen+i] = 0
	}
	copy(h[IPv4MinLen:], ip.Options)
	if opts.ComputeChecksums {
		ip.Checksum = Checksum(h[:hl], 0)
	}
	putU16(h[10:12], ip.Checksum)
	return nil
}

// IPv6 is a fixed IPv6 header (extension headers are treated as payload).
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   byte
	HopLimit     uint8
	Src, Dst     IP6
	payload      []byte
}

// IPv6HeaderLen is the fixed IPv6 header size.
const IPv6HeaderLen = 40

// DecodeFromBytes parses an IPv6 header, resetting ip.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return ErrTooShort
	}
	if data[0]>>4 != 6 {
		return ErrVersion
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = beU32(data[0:4]) & 0xfffff
	ip.PayloadLen = beU16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])
	end := len(data)
	if pl := IPv6HeaderLen + int(ip.PayloadLen); pl <= len(data) {
		end = pl
	}
	ip.payload = data[IPv6HeaderLen:end]
	return nil
}

// Payload returns the bytes following the fixed header.
func (ip *IPv6) Payload() []byte { return ip.payload }

// SerializeTo implements SerializableLayer.
func (ip *IPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := b.Len()
	h := b.PrependBytes(IPv6HeaderLen)
	putU32(h[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	if opts.FixLengths {
		ip.PayloadLen = uint16(payloadLen)
	}
	putU16(h[4:6], ip.PayloadLen)
	h[6] = ip.NextHeader
	h[7] = ip.HopLimit
	copy(h[8:24], ip.Src[:])
	copy(h[24:40], ip.Dst[:])
	return nil
}
