package flowstats

import "osnt/internal/packet"

// CountMin is a count-min sketch over flow digests: d rows of w
// counters, each row indexed by an independently whitened hash of the
// digest. Estimates never undercount and overcount by at most the
// collision mass of the narrowest row — the classic bound — so it pairs
// with SpaceSaving: the summary proposes heavy candidates, the sketch
// bounds their true volume when the exact table has overflowed.
type CountMin struct {
	rows   int
	mask   uint64
	counts []uint64 // rows × width, row-major
}

// NewCountMin returns a sketch with the given depth (rows; minimum 1)
// and width rounded up to a power of two (minimum 16).
func NewCountMin(rows, width int) *CountMin {
	if rows < 1 {
		rows = 1
	}
	w := 16
	for w < width {
		w <<= 1
	}
	return &CountMin{rows: rows, mask: uint64(w - 1), counts: make([]uint64, rows*w)}
}

// rowSeeds decorrelate the per-row hash functions; any fixed odd
// constants work with the Mix64 avalanche.
var rowSeeds = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb,
	0xd6e8feb86659fd93, 0xa5a3564d4e9ae0f9, 0xc2b2ae3d27d4eb4f,
}

// Add counts n more packets (or bytes) for digest and returns the new
// point estimate.
func (c *CountMin) Add(digest uint64, n uint64) uint64 {
	est := ^uint64(0)
	w := int(c.mask) + 1
	for r := 0; r < c.rows; r++ {
		i := packet.Mix64(digest^rowSeeds[r%len(rowSeeds)]) & c.mask
		cell := &c.counts[r*w+int(i)]
		*cell += n
		if *cell < est {
			est = *cell
		}
	}
	return est
}

// Estimate returns the sketch's (never-undercounting) estimate for
// digest.
func (c *CountMin) Estimate(digest uint64) uint64 {
	est := ^uint64(0)
	w := int(c.mask) + 1
	for r := 0; r < c.rows; r++ {
		i := packet.Mix64(digest^rowSeeds[r%len(rowSeeds)]) & c.mask
		if v := c.counts[r*w+int(i)]; v < est {
			est = v
		}
	}
	return est
}

// HeavyHitter is one SpaceSaving candidate: Count overestimates the
// true volume by at most Err.
type HeavyHitter struct {
	Digest uint64
	Count  uint64
	Err    uint64
}

// SpaceSaving is the space-saving top-k summary (Metwally et al.): at
// most k monitored flows; an unmonitored arrival evicts the current
// minimum and inherits its count as error bound. Any flow with true
// volume above the evicted minimum is guaranteed to be monitored, which
// is the property heavy-hitter reports need.
//
// Membership is a linear scan over a dense digest array rather than the
// textbook stream-summary pointer structure: for capture-path k (tens
// to a few hundred) the scan touches a handful of cache lines, costs no
// allocation ever, and stays deterministic — the same cache-over-
// pointers trade the flow table makes.
type SpaceSaving struct {
	digests []uint64
	counts  []uint64
	errs    []uint64
	n       int
}

// NewSpaceSaving returns a summary monitoring at most k flows
// (minimum 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{
		digests: make([]uint64, k),
		counts:  make([]uint64, k),
		errs:    make([]uint64, k),
	}
}

// Add counts n more packets for digest.
func (s *SpaceSaving) Add(digest uint64, n uint64) {
	minIdx := 0
	for i := 0; i < s.n; i++ {
		if s.digests[i] == digest {
			s.counts[i] += n
			return
		}
		if s.counts[i] < s.counts[minIdx] {
			minIdx = i
		}
	}
	if s.n < len(s.digests) {
		s.digests[s.n], s.counts[s.n], s.errs[s.n] = digest, n, 0
		s.n++
		return
	}
	// Evict the minimum: the newcomer inherits its count as error.
	s.errs[minIdx] = s.counts[minIdx]
	s.digests[minIdx] = digest
	s.counts[minIdx] += n
}

// Len returns the number of monitored flows.
func (s *SpaceSaving) Len() int { return s.n }

// Monitored reports whether digest is currently tracked.
func (s *SpaceSaving) Monitored(digest uint64) bool {
	for i := 0; i < s.n; i++ {
		if s.digests[i] == digest {
			return true
		}
	}
	return false
}

// Top returns up to k monitored flows by descending count (ties by
// ascending digest). It allocates the result — call it off the hot
// path.
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	var top []HeavyHitter
	for i := 0; i < s.n; i++ {
		h := HeavyHitter{Digest: s.digests[i], Count: s.counts[i], Err: s.errs[i]}
		pos := len(top)
		for pos > 0 && hhMore(h, top[pos-1]) {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(top) < k {
			top = append(top, HeavyHitter{})
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = h
	}
	return top
}

func hhMore(a, b HeavyHitter) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Digest < b.Digest
}
