package packet

// This file provides convenience constructors for the packets the OSNT
// generator, examples and tests craft most often.

// UDPSpec describes a UDP-in-IPv4-in-Ethernet packet to craft.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IP4
	SrcPort, DstPort uint16
	TTL              uint8 // default 64
	TOS              uint8
	// FrameSize is the desired FCS-inclusive frame size (64–1518). The
	// payload is padded with zeroes to reach it. Zero means "just the
	// headers plus Payload".
	FrameSize int
	Payload   []byte
}

// Build crafts the packet (without FCS) into a fresh slice.
func (s UDPSpec) Build() []byte {
	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	payload := s.Payload
	if s.FrameSize > 0 {
		want := s.FrameSize - 4 - EthernetHeaderLen - IPv4MinLen - UDPHeaderLen
		if want < len(payload) {
			want = len(payload)
		}
		p := make([]byte, want)
		copy(p, payload)
		payload = p
	}
	udp := &UDP{SrcPort: s.SrcPort, DstPort: s.DstPort}
	udp.SetNetworkForChecksum(s.SrcIP, s.DstIP)
	ip := &IPv4{TOS: s.TOS, TTL: ttl, Proto: ProtoUDP, Src: s.SrcIP, Dst: s.DstIP}
	eth := &Ethernet{Dst: s.DstMAC, Src: s.SrcMAC, EtherType: EtherTypeIPv4}
	buf := NewSerializeBuffer(EthernetHeaderLen+IPv4MinLen+UDPHeaderLen, len(payload))
	out, err := Serialize(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		eth, ip, udp, Payload(payload))
	if err != nil {
		panic("packet: UDP craft failed: " + err.Error()) // all inputs validated above
	}
	res := make([]byte, len(out))
	copy(res, out)
	return res
}

// TCPSpec describes a TCP-in-IPv4-in-Ethernet packet to craft.
type TCPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IP4
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Payload          []byte
}

// Build crafts the packet (without FCS) into a fresh slice.
func (s TCPSpec) Build() []byte {
	tcp := &TCP{
		SrcPort: s.SrcPort, DstPort: s.DstPort,
		Seq: s.Seq, Ack: s.Ack, Flags: s.Flags, Window: s.Window,
	}
	tcp.SetNetworkForChecksum(s.SrcIP, s.DstIP)
	ip := &IPv4{TTL: 64, Proto: ProtoTCP, Src: s.SrcIP, Dst: s.DstIP}
	eth := &Ethernet{Dst: s.DstMAC, Src: s.SrcMAC, EtherType: EtherTypeIPv4}
	buf := NewSerializeBuffer(EthernetHeaderLen+IPv4MinLen+TCPMinLen, len(s.Payload))
	out, err := Serialize(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		eth, ip, tcp, Payload(s.Payload))
	if err != nil {
		panic("packet: TCP craft failed: " + err.Error())
	}
	res := make([]byte, len(out))
	copy(res, out)
	return res
}

// MinUDPFrameSize is the smallest FCS-inclusive frame a UDPSpec can build
// (headers only, padded to the Ethernet minimum).
const MinUDPFrameSize = 64
