package integration_test

import (
	"testing"

	"osnt/internal/flowstats"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/ofswitch"
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/race"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
	"osnt/internal/wire"
)

// perPacketRig wires the canonical hot path — pooled generator → TX
// queue → MAC/link → RX MAC → monitor ring → host drain — on one engine,
// driven at 64 B line rate (the 14.88 Mpps worst case).
func perPacketRig(tb testing.TB, pool *wire.Pool) (*sim.Engine, *gen.Generator, *mon.Monitor) {
	tb.Helper()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 2})
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, card.Port(1)))
	m := mon.Attach(card.Port(1), mon.Config{SnapLen: 64}) // nil Sink → buffers recycle
	g, err := gen.New(card.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:    pool,
	})
	if err != nil {
		tb.Fatal(err)
	}
	g.Start(0)
	return e, g, m
}

// TestPerPacketPathZeroAlloc pins the tentpole's win: once warmed, the
// gen→port→mon per-packet path must stay at ~0 allocations per packet.
// The bound is deliberately tiny but nonzero — a stray GC cycle may cool
// the sync.Pool mid-measurement — and still fails loudly if any per-packet
// allocation (frame, event, closure, ring copy) creeps back in.
func TestPerPacketPathZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	pool := wire.NewPool()
	e, _, m := perPacketRig(t, pool)

	// Warm-up: populate the pool, queue capacity, and register file.
	e.RunFor(200 * sim.Microsecond)

	const span = sim.Millisecond
	interval := gen.CBRForLoad(64, wire.Rate10G, 1.0).Interval
	pktPerSpan := float64(span) / float64(interval) // ≈ 14881

	avg := testing.AllocsPerRun(5, func() {
		e.RunFor(span)
	})
	perPacket := avg / pktPerSpan
	t.Logf("allocs: %.1f per %0.f-packet span = %.4f/packet", avg, pktPerSpan, perPacket)
	if perPacket > 0.01 {
		t.Errorf("per-packet path allocates %.4f/packet, want ~0 (pooled path rotted?)", perPacket)
	}

	if seen := m.Seen().Packets; seen == 0 {
		t.Fatal("monitor saw no packets — rig is miswired")
	}
	gets, _, fresh := pool.Stats()
	if fresh >= gets {
		t.Errorf("pool never recycled: %d gets, %d fresh", gets, fresh)
	}
}

// TestMultiQueuePathZeroAlloc extends the zero-alloc bound to the
// multi-queue capture engine: 64 B line rate hash-steered across four
// per-queue DMA rings (8 flows so the RSS spread is real). The rings run
// over capacity, so the drop path, the per-queue drain events and the
// per-queue buffer recycling are all on the measured path.
func TestMultiQueuePathZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	pool := wire.NewPool()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 2})
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, card.Port(1)))
	m := mon.Attach(card.Port(1), mon.Config{
		SnapLen: 64,
		Queues:  make([]mon.QueueConfig, 4), // nil sinks → buffers recycle
	})
	g, err := gen.New(card.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: 8, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:    pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)

	e.RunFor(200 * sim.Microsecond) // warm-up

	const span = sim.Millisecond
	interval := gen.CBRForLoad(64, wire.Rate10G, 1.0).Interval
	pktPerSpan := float64(span) / float64(interval)
	avg := testing.AllocsPerRun(5, func() {
		e.RunFor(span)
	})
	perPacket := avg / pktPerSpan
	t.Logf("allocs: %.1f per %0.f-packet span = %.4f/packet", avg, pktPerSpan, perPacket)
	if perPacket > 0.01 {
		t.Errorf("multi-queue path allocates %.4f/packet, want ~0", perPacket)
	}
	for q := 0; q < m.NumQueues(); q++ {
		if m.QueueStats(q).Seen.Packets == 0 {
			t.Errorf("queue %d was never steered to — hash spread is degenerate", q)
		}
	}
}

// TestOFSwitchDataplaneZeroAlloc pins the dataplane satellite: pooled
// generator → OpenFlow switch (single-output rule, E8-style per-packet
// CPU tax) → capture port must stay at ~0 allocations per packet once
// warmed — no per-packet Clone, egress event, or queue churn.
func TestOFSwitchDataplaneZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	pool := wire.NewPool()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 2})
	sw := ofswitch.New(e, ofswitch.Config{DataplaneCPUTax: 150 * sim.Nanosecond})
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, sw.Port(0)))
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, card.Port(1)))
	m := mon.Attach(card.Port(1), mon.Config{SnapLen: 64}) // nil sink → recycle
	sw.Table().Add(&ofswitch.Entry{
		Match: openflow.MatchAll(), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	})
	g, err := gen.New(card.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:    pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)

	e.RunFor(200 * sim.Microsecond) // warm-up

	const span = sim.Millisecond
	interval := gen.CBRForLoad(64, wire.Rate10G, 1.0).Interval
	pktPerSpan := float64(span) / float64(interval)
	avg := testing.AllocsPerRun(5, func() {
		e.RunFor(span)
	})
	perPacket := avg / pktPerSpan
	t.Logf("allocs: %.1f per %0.f-packet span = %.4f/packet", avg, pktPerSpan, perPacket)
	if perPacket > 0.01 {
		t.Errorf("ofswitch dataplane allocates %.4f/packet, want ~0 (per-packet Clone/event back?)", perPacket)
	}
	if m.Seen().Packets == 0 {
		t.Fatal("monitor saw no packets — rig is miswired")
	}
	if sw.Forwarded().Packets == 0 {
		t.Fatal("switch forwarded nothing")
	}
}

// TestTrainPathZeroAlloc pins the frame-train tentpole: the coalesced
// hot path — gen emitting 64-frame trains at 100G line rate, one train
// event through the link, one bulk admission into an idealised capture
// queue — must stay at 0.0 allocations per packet once warmed, and must
// actually be coalescing: far fewer than one engine event per packet.
func TestTrainPathZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	pool := wire.NewPool()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 2, Rate: wire.Rate100G})
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate100G, 0, card.Port(1)))
	m := mon.Attach(card.Port(1), mon.Config{
		SnapLen: 64,
		Queues: []mon.QueueConfig{{
			RingSize:      1 << 16,
			HostPerPacket: sim.Picosecond,
			HostPerByte:   -1,
		}}, // idealised drain, nil sink → buffers recycle
	})
	g, err := gen.New(card.Port(0), gen.Config{
		Source:   &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing:  gen.CBRForLoad(64, wire.Rate100G, 1.0),
		Pool:     pool,
		MaxTrain: 64,
		Until:    sim.Time(sim.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)

	e.RunFor(200 * sim.Microsecond) // warm-up

	const span = sim.Millisecond
	interval := gen.CBRForLoad(64, wire.Rate100G, 1.0).Interval
	pktPerSpan := float64(span) / float64(interval) // ≈ 148810
	firedBefore, sentBefore := e.Fired(), g.Sent().Packets
	avg := testing.AllocsPerRun(5, func() {
		e.RunFor(span)
	})
	perPacket := avg / pktPerSpan
	t.Logf("allocs: %.1f per %0.f-packet span = %.4f/packet", avg, pktPerSpan, perPacket)
	if perPacket > 0.001 {
		t.Errorf("train path allocates %.4f/packet, want 0.0 (coalesced path rotted?)", perPacket)
	}
	evPerPkt := float64(e.Fired()-firedBefore) / float64(g.Sent().Packets-sentBefore)
	t.Logf("events: %.3f/packet", evPerPkt)
	if evPerPkt > 1 {
		t.Errorf("train path fired %.3f events/packet, want ≪1 — trains are not forming", evPerPkt)
	}
	if m.Seen().Packets == 0 {
		t.Fatal("monitor saw no packets — rig is miswired")
	}
}

// TestUnpooledPathStillWorks locks the fallback: without a Pool the same
// rig runs correctly (allocating per packet), so pooling stays an
// optimisation, not a requirement.
func TestUnpooledPathStillWorks(t *testing.T) {
	e, g, m := perPacketRig(t, nil)
	e.RunFor(100 * sim.Microsecond)
	g.Stop()
	e.Run()
	if m.Seen().Packets != g.Sent().Packets {
		t.Fatalf("sent %d, monitor saw %d", g.Sent().Packets, m.Seen().Packets)
	}
}

// TestPooledAndUnpooledAgree runs the rig both ways for the same virtual
// time and demands identical packet counts and MAC byte counters: the
// pool must be invisible to the simulation's arithmetic.
func TestPooledAndUnpooledAgree(t *testing.T) {
	run := func(pool *wire.Pool) (sent, seen, delivered uint64, bytes uint64) {
		e, g, m := perPacketRig(t, pool)
		e.RunFor(500 * sim.Microsecond)
		g.Stop()
		e.Run()
		return g.Sent().Packets, m.Seen().Packets, m.Delivered().Packets, m.Seen().Bytes
	}
	ps, pSeen, pDel, pBytes := run(wire.NewPool())
	us, uSeen, uDel, uBytes := run(nil)
	if ps != us || pSeen != uSeen || pDel != uDel || pBytes != uBytes {
		t.Fatalf("pooled (%d/%d/%d/%dB) != unpooled (%d/%d/%d/%dB)",
			ps, pSeen, pDel, pBytes, us, uSeen, uDel, uBytes)
	}
}

// TestDropLedgerPathZeroAlloc pins the loss-attribution satellite: a
// 2:1 same-rate fan-in whose egress FIFO overflows on every other
// packet, with the scenario ledger attached, must stay at ~0
// allocations per packet — attribution is an array increment, and the
// dropped frames go straight back to the pool.
func TestDropLedgerPathZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	pool := wire.NewPool()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 3})
	sw := switchsim.New(e, switchsim.Config{
		Ports:          3,
		EgressQueueCap: 16,
		// Overspeed lookup so the egress FIFO is the only drop point.
		LookupPerPacket: sim.Nanosecond,
		LookupPerByte:   sim.Picoseconds(10),
	})
	ledger := &wire.DropLedger{}
	sw.SetDropSite(ledger, ledger.Add("sw"))
	for p := 0; p < 2; p++ {
		card.Port(p).SetLink(wire.NewLink(e, wire.Rate10G, 0, sw.Port(p)))
	}
	sw.Port(2).SetLink(wire.NewLink(e, wire.Rate10G, 0, card.Port(2)))
	m := mon.Attach(card.Port(2), mon.Config{SnapLen: 64}) // nil sink → recycle
	sw.Learn(spec.DstMAC, 2)
	for p := 0; p < 2; p++ {
		src := spec
		src.SrcMAC[5] = byte(0x10 + p)
		src.SrcPort = uint16(5000 + p)
		g, err := gen.New(card.Port(p), gen.Config{
			Source:  &gen.UDPFlowSource{Spec: src, FrameSize: 64},
			Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
			Pool:    pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(0)
	}

	e.RunFor(200 * sim.Microsecond) // warm-up

	const span = sim.Millisecond
	interval := gen.CBRForLoad(64, wire.Rate10G, 1.0).Interval
	pktPerSpan := 2 * float64(span) / float64(interval) // both generators
	avg := testing.AllocsPerRun(5, func() {
		e.RunFor(span)
	})
	perPacket := avg / pktPerSpan
	t.Logf("allocs: %.1f per %0.f-packet span = %.4f/packet", avg, pktPerSpan, perPacket)
	if perPacket > 0.01 {
		t.Errorf("ledger drop path allocates %.4f/packet, want ~0", perPacket)
	}
	if ledger.Count(1, wire.DropEgressOverflow) == 0 {
		t.Fatal("fan-in overload never hit the ledger — rig is miswired")
	}
	if m.Seen().Packets == 0 {
		t.Fatal("monitor saw no packets — rig is miswired")
	}
}

// TestMergedFlowPathZeroAlloc pins the flow-analytics satellite: 64 B
// line rate hash-steered across four DMA rings, re-sequenced by the
// k-way merge into global (TS, Queue, Seq) order and folded into the
// flow table plus both sketches — the full E17 sink — must stay at ~0
// allocations per packet once warmed. The merge's buffer free list and
// the analytics structures are all preallocated or steady-state
// recycled, so nothing on this path should touch the heap per record.
func TestMergedFlowPathZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	pool := wire.NewPool()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 2})
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, card.Port(1)))
	m := mon.Attach(card.Port(1), mon.Config{
		SnapLen:   64,
		HashBytes: packet.HeaderDigestBytes, // headers only: one digest per flow
		Queues:    make([]mon.QueueConfig, 4),
	})
	ft := flowstats.NewFlowTable(64)
	ss := flowstats.NewSpaceSaving(8)
	cm := flowstats.NewCountMin(4, 1<<10)
	merge := mon.NewMerge(m, func(rec mon.Record) {
		s := flowstats.Sample{Digest: rec.Hash, RxTS: rec.TS, Wire: rec.WireSize, Trace: rec.Trace}
		if tx, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset); ok {
			s.TxTS, s.HasTx = tx, true
		}
		ft.Observe(s)
		ss.Add(rec.Hash, 1)
		cm.Add(rec.Hash, 1)
	})
	g, err := gen.New(card.Port(0), gen.Config{
		Source:         &gen.UDPFlowSource{Spec: spec, NumFlows: 32, FrameSize: 64},
		Spacing:        gen.CBRForLoad(64, wire.Rate10G, 1.0),
		EmbedTimestamp: true,
		Pool:           pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)

	e.RunFor(200 * sim.Microsecond) // warm-up

	const span = sim.Millisecond
	interval := gen.CBRForLoad(64, wire.Rate10G, 1.0).Interval
	pktPerSpan := float64(span) / float64(interval)
	avg := testing.AllocsPerRun(5, func() {
		e.RunFor(span)
	})
	perPacket := avg / pktPerSpan
	t.Logf("allocs: %.1f per %0.f-packet span = %.4f/packet", avg, pktPerSpan, perPacket)
	if perPacket > 0.01 {
		t.Errorf("merged flow path allocates %.4f/packet, want ~0", perPacket)
	}
	if merge.Emitted() == 0 {
		t.Fatal("merge emitted nothing — rig is miswired")
	}
	if merge.OrderViolations() != 0 {
		t.Fatalf("merge recorded %d order violations", merge.OrderViolations())
	}
	if ft.Len() != 32 {
		t.Fatalf("flow table tracks %d flows, want 32", ft.Len())
	}
	for q := 0; q < m.NumQueues(); q++ {
		if m.QueueStats(q).Seen.Packets == 0 {
			t.Errorf("queue %d was never steered to — hash spread is degenerate", q)
		}
	}
}
