package sim

import "testing"

// drain pops every event, returning the observed times.
func drain(q *CalendarQueue) []Time {
	var out []Time
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		out = append(out, ev.At())
	}
	return out
}

func assertAscending(t *testing.T, got []Time, want []Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %v, want %v (full order %v)", i, got[i], want[i], got)
		}
	}
}

// Wrap-around across bucket laps: events from different laps share a
// bucket, and the head-of-bucket lap check must hold back next-lap
// events even though they sort to the front of the cursor's own bucket.
func TestCalendarQueueWrapAcrossLaps(t *testing.T) {
	q := NewCalendarQueue(8, 10) // lap = 80
	// Bucket 0 holds 5, 85 and 165 (laps 0, 1 and 2); bucket 4 holds 45
	// and 125 (laps 0 and 1). Pushed shuffled.
	for _, at := range []Time{165, 45, 85, 125, 5, 79, 80} {
		q.Push(at, nil)
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d", q.Len())
	}
	assertAscending(t, drain(q), []Time{5, 45, 79, 80, 85, 125, 165})
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

// Events far beyond one lap (the degradation case the DESIGN ablation
// cites): Pop must sweep many empty laps to reach them, but ordering and
// completeness survive.
func TestCalendarQueueFarBeyondOneLap(t *testing.T) {
	q := NewCalendarQueue(4, 10) // lap = 40
	far := Time(100_000)         // 2500 laps past the near events
	q.Push(far, nil)
	q.Push(3, nil)
	q.Push(far+7, nil)
	q.Push(22, nil)
	assertAscending(t, drain(q), []Time{3, 22, far, far + 7})
}

// Events at the same instant pop in push order (the engine's FIFO
// tie-break, carried by the sequence number).
func TestCalendarQueueSameInstantFIFO(t *testing.T) {
	q := NewCalendarQueue(8, 10)
	order := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		i := i
		q.Push(50, func() { order = append(order, i) })
	}
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		ev.fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant pop order %v, not FIFO", order)
		}
	}
}

// Interleaved operation, the hold pattern the engine would drive: pops
// alternate with pushes of later instants, across lap boundaries.
func TestCalendarQueueInterleavedHold(t *testing.T) {
	q := NewCalendarQueue(16, 25) // lap = 400
	rnd := NewRand(7)
	next := Time(0)
	for i := 0; i < 64; i++ {
		next = next.Add(Duration(rnd.Intn(90)))
		q.Push(next, nil)
	}
	last := Time(-1)
	for i := 0; i < 2000; i++ {
		ev := q.Pop()
		if ev == nil {
			t.Fatal("queue drained early")
		}
		if ev.At() < last {
			t.Fatalf("pop %d went backwards: %v after %v", i, ev.At(), last)
		}
		last = ev.At()
		q.Push(last.Add(Duration(1+rnd.Intn(int(900*Nanosecond)))), nil)
	}
	if q.Len() != 64 {
		t.Fatalf("Len = %d after balanced hold, want 64", q.Len())
	}
}

// BenchmarkPendingEvents1M is the ROADMAP's ">1M pending events" ablation:
// the classic hold benchmark (pop the earliest, push a successor) on a
// million-event set, comparing the engine's binary heap against the
// calendar queue with a well-matched bucket width and with a width far
// narrower than the event horizon — the regime where the calendar's
// cursor must sweep many stale laps per pop and its O(1) claim degrades.
func BenchmarkPendingEvents1M(b *testing.B) {
	const (
		pending = 1 << 20
		spacing = Microsecond       // mean inter-event gap in the set
		horizon = pending * spacing // ≈ 1 s of pending virtual time
		maxInc  = 2 * int(horizon)  // hold increment: uniform [1, 2·horizon]
	)
	// The hold model: pop the earliest event, push its successor a draw
	// of mean ≈ horizon later, so the popped event leapfrogs the whole
	// set and the pending-set occupancy stays uniform — the steady state
	// an engine with 1M concurrently armed timers lives in.
	inc := func(r *Rand) Duration { return Duration(1 + r.Intn(maxInc)) }

	b.Run("heap", func(b *testing.B) {
		e := NewEngine()
		rnd := NewRand(1)
		at := Time(0)
		for i := 0; i < pending; i++ {
			at = at.Add(Duration(1 + rnd.Intn(int(2*spacing))))
			// Each event re-arms itself on firing, so the engine's heap
			// stays at `pending` entries with zero per-op allocations.
			var ev *Event
			ev = e.Schedule(at, func() {
				e.Reschedule(ev, e.Now().Add(inc(rnd)))
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})

	calendar := func(width Duration) func(*testing.B) {
		return func(b *testing.B) {
			q := NewCalendarQueue(1<<16, width)
			rnd := NewRand(1)
			at := Time(0)
			for i := 0; i < pending; i++ {
				at = at.Add(Duration(1 + rnd.Intn(int(2*spacing))))
				q.Push(at, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := q.Pop()
				q.Push(ev.At().Add(inc(rnd)), nil)
			}
		}
	}
	// Width ≈ horizon/buckets: a handful of events per bucket.
	b.Run("calendar-matched", calendar(Duration(int64(horizon)/(1<<16))))
	// Width 1 ns against ~1 µs event spacing: successive events sit
	// ~1000 buckets apart, so every pop sweeps ~1000 stale buckets —
	// the width-far-from-spacing degradation the DESIGN ablation cites.
	b.Run("calendar-mismatched", calendar(Nanosecond))
}
