package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E15Loads sweeps the per-leaf offered load as a fraction of 40G line
// rate. Four leaves feed two 40G uplinks, so the fabric's 2:1
// oversubscription knee sits at 0.5; the sweep brackets it. Heaviest
// first for the worker pool.
var E15Loads = []float64{1.0, 0.8, 0.6, 0.52, 0.5, 0.45, 0.3}

// e15FrameSize is the probe size; 512 B keeps the embedded timestamp
// inside a 64 B snap and the uplink service slots easy to reason about
// (106.4 ns at 40G).
const e15FrameSize = 512

// e15FlowsPerLeaf gives the ECMP hash 64 distinct flows in total —
// enough that the spray across two uplinks is close to even without
// pretending hash steering is perfect.
const e15FlowsPerLeaf = 16

// e15EdgeMAC is the station behind 40G edge port p.
func e15EdgeMAC(p int) packet.MAC {
	return packet.MAC{0x02, 0x05, 0x17, 0x15, 0, byte(p + 1)}
}

// e15ServerMAC is the station behind the spine (the traffic sink).
var e15ServerMAC = packet.MAC{0x02, 0x05, 0x17, 0x15, 0xff, 0x01}

// e15OverspeedLookup parameterises both fabric switches with a lookup
// pipeline faster than any port's arrival rate (86.8 ns for a 512 B
// frame against its 106.4 ns slot at 40G), so the only loss mechanism
// in the rig is the oversubscribed uplink group itself.
func e15OverspeedLookup(cfg switchsim.Config) switchsim.Config {
	cfg.LookupPerPacket = 10 * sim.Nanosecond
	cfg.LookupPerByte = sim.Picoseconds(150)
	return cfg
}

// e15Rig builds the oversubscribed leaf–spine fabric: a 4×40G edge
// card feeding a leaf switch whose two 40G uplinks form a topo group
// link into the spine, which converts up to a 100G server port. The
// leaf sprays flows across the uplink bundle ECMP-style (whitened
// header digest, switchsim.AddGroup over the same ports the Group edge
// wired), so offered load beyond 2×40G must overflow the uplink egress
// FIFOs — and nowhere else.
func e15Rig(e *sim.Engine) (*topo.Topology, *switchsim.Switch) {
	t := topo.New().
		Tester("osnt", netfpga.Config{Rate: wire.Rate40G}). // 4×40G edge card
		Tester("srv", netfpga.Config{Ports: 1, Rate: wire.Rate100G}).
		DUT("leaf", e15OverspeedLookup(switchsim.Config{
			Ports: 6,
			Rate:  wire.Rate40G, // 4 edge ports + 2 uplinks
		})).
		DUT("spine", e15OverspeedLookup(switchsim.Config{
			Ports:     3,
			Rate:      wire.Rate40G,
			PortRates: []wire.Rate{0, 0, wire.Rate100G}, // 2×40G down, 100G up
		})).
		Link(osntPorts[0], "leaf:0").
		Link(osntPorts[1], "leaf:1").
		Link(osntPorts[2], "leaf:2").
		Link(osntPorts[3], "leaf:3").
		Group("leaf:4", "spine:0", 2). // the 2×40G uplink bundle
		Link("spine:2", "srv:0").
		MustBuild(e)
	leaf, spine := t.DUT("leaf"), t.DUT("spine")
	gid := leaf.AddGroup(4, 5)
	leaf.LearnGroup(e15ServerMAC, gid)
	spine.Learn(e15ServerMAC, 2)
	for p := 0; p < 4; p++ {
		leaf.Learn(e15EdgeMAC(p), p)
	}
	return t, leaf
}

// e15Point runs one sweep point and returns everything the table (and
// the -losses CLI path) reads: the loss map over the scenario ledger,
// the leaf handle, the latency histogram and the offered count.
func e15Point(duration sim.Duration, load float64, pointSeed int) (*stats.LossMap, *switchsim.Switch, *stats.Histogram, uint64) {
	e := sim.NewEngine()
	t, leaf := e15Rig(e)

	lat := stats.NewHistogram()
	m := t.AttachMonitor("srv:0", idealCapture(func(rec mon.Record) {
		if ts, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset); ok {
			lat.Record(int64(rec.TS.Sub(ts)))
		}
	}))

	slot := wire.SerializationTime(e15FrameSize, wire.Rate40G)
	gens := make([]*gen.Generator, 4)
	for p := 0; p < 4; p++ {
		spec := probeSpec
		spec.SrcMAC = e15EdgeMAC(p)
		spec.DstMAC = e15ServerMAC
		spec.SrcPort = uint16(5000 + e15FlowsPerLeaf*p)
		g, err := gen.New(t.Port(osntPorts[p]), gen.Config{
			Source:         &gen.UDPFlowSource{Spec: spec, NumFlows: e15FlowsPerLeaf, FrameSize: e15FrameSize},
			Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           runner.PointSeed(0xe15, pointSeed*4+p),
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		gens[p] = g
	}
	e.RunUntil(sim.Time(duration))
	var offered uint64
	for _, g := range gens {
		g.Stop()
		offered += g.Sent().Packets + g.Dropped()
	}
	e.Run() // drain the fabric and the capture ring

	lm := stats.NewLossMap(offered, m.Seen().Packets, t.Drops())
	return lm, leaf, lat, offered
}

// E15Oversubscribed is the oversubscribed-fabric sweep the group links
// and the loss ledger unlock: 4×40G leaves spray Poisson traffic over a
// 2×40G uplink bundle, crossing the 2:1 fan-in knee at 50% offered
// load. Below the knee the fabric is lossless and the uplink FIFOs
// bound p99; above it the excess overflows exactly there, and the
// ledger proves it: every lost frame is attributed to the leaf's uplink
// egress (same-rate fan-in, reason egress-overflow), the conservation
// column checks sent = delivered + Σ attributed drops exactly, and the
// spray column shows what ECMP hash luck costs against a perfect
// split.
func E15Oversubscribed(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 5 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E15: oversubscribed fabric — 4×40G leaves ECMP-sprayed over 2×40G uplinks (512B Poisson, knee at 50%)",
		Columns: []string{"load(%)", "offered(Mpps)", "delivered(Mpps)", "spray(up0/up1 %)", "p99(µs)", "uplink-drops", "other-drops", "loss(%)", "conserved"},
	}
	tbl.Rows = sweeper().Rows(len(E15Loads), func(i int) [][]string {
		load := E15Loads[i]
		lm, leaf, lat, offered := e15Point(duration, load, i)

		up0 := leaf.Port(4).Egress().Packets
		up1 := leaf.Port(5).Egress().Packets
		split := [2]float64{50, 50}
		if up0+up1 > 0 {
			split[0] = float64(up0) / float64(up0+up1) * 100
			split[1] = 100 - split[0]
		}
		uplinkDrops := leaf.Port(4).Drops() + leaf.Port(5).Drops()
		secs := duration.Seconds()
		return [][]string{{
			fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%.3f", float64(offered)/secs/1e6),
			fmt.Sprintf("%.3f", float64(lm.Delivered)/secs/1e6),
			fmt.Sprintf("%.1f/%.1f", split[0], split[1]),
			fmt.Sprintf("%.2f", float64(lat.Percentile(99))/1e6),
			fmt.Sprintf("%d", uplinkDrops),
			fmt.Sprintf("%d", lm.Attributed()-uplinkDrops),
			fmt.Sprintf("%.2f", lm.LossFraction()*100),
			fmt.Sprintf("%v", lm.Conserved()),
		}}
	})
	return tbl
}

// E15LossMap runs the canonical overloaded point (100% offered load)
// and returns its loss map — what `osnt-bench -losses` prints: the
// per-hop/per-reason attribution table for a fabric past its knee.
func E15LossMap(duration sim.Duration) *stats.LossMap {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	lm, _, _, _ := e15Point(duration, 1.0, 0)
	return lm
}

// SprayMicroBench drives the ECMP spray hot path in isolation: 64 B
// line-rate traffic across a two-member uplink group into a 2-port
// capture card, with an overspeed lookup so the spray decision (header
// digest + whitening + member select) dominates. cmd/benchgate samples
// it as the spray micro-benchmark; the returned counts are the packets
// received per member port, which callers assert to keep the rig (and
// the hash spread) honest.
func SprayMicroBench(duration sim.Duration) (member0, member1 uint64) {
	if duration == 0 {
		duration = sim.Millisecond
	}
	e := sim.NewEngine()
	t := topo.New().
		Tester("tx", netfpga.Config{Ports: 1}).
		Tester("rx", netfpga.Config{Ports: 2}).
		DUT("leaf", e15OverspeedLookup(switchsim.Config{Ports: 3})).
		Link("tx:0", "leaf:0").
		Group("leaf:1", "rx:0", 2).
		MustBuild(e)
	leaf := t.DUT("leaf")
	leaf.LearnGroup(probeSpec.DstMAC, leaf.AddGroup(1, 2))
	g, err := gen.New(t.Port("tx:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: probeSpec, NumFlows: e14Flows, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:    wire.DefaultPool,
		Seed:    runner.PointSeed(0xe15, 0x5eed),
	})
	if err != nil {
		panic(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(duration))
	g.Stop()
	e.Run()
	rx := t.Tester("rx").Card
	return rx.Port(0).RxStats().Packets, rx.Port(1).RxStats().Packets
}
