package wire

import (
	"sync"
	"sync/atomic"
)

// Pool recycles Frame structs and their backing buffers across the
// per-packet hot path. A generator at 10 Gb/s line rate creates 14.88 M
// frames per simulated second; without recycling every one of them is a
// fresh Frame plus a fresh Data slice for the garbage collector to chase.
// With a Pool the frame travels generator → TX queue → link → RX MAC and
// is released back for the next packet, so the steady-state path
// allocates nothing.
//
// Ownership rule: a frame is owned by exactly one component at a time —
// whoever holds it last calls Release. Terminal endpoints (netfpga.Port
// RX, experiment sinks) release after their callbacks return; callbacks
// that need the bytes longer must copy them (mon already does). Frames
// that fall off the fast path (queue-overflow drops, runt frames) may
// simply be dropped: an unreleased pooled frame is collected by the GC
// like any other allocation, so forgetting Release costs speed, never
// correctness.
//
// A Pool is safe for concurrent use; the parallel experiment runner's
// workers share one.
type Pool struct {
	p  sync.Pool
	tp sync.Pool // Train containers (the Frames inside recycle via p)

	gets  atomic.Uint64
	puts  atomic.Uint64
	fresh atomic.Uint64
}

// NewPool returns an empty frame pool.
func NewPool() *Pool {
	return &Pool{}
}

// DefaultPool is the process-wide frame pool: the measurement drivers
// (core) and the experiment sweeps share it, so frames cooled by one
// driver family warm the next regardless of which worker goroutine runs
// the sweep point. Components that want isolation build their own with
// NewPool.
var DefaultPool = NewPool()

// Get returns a frame with Data sized to n bytes (contents undefined) and
// the FCS-inclusive Size set accordingly. The frame remembers its pool,
// so Release on it (from any package) returns it here.
func (p *Pool) Get(n int) *Frame {
	p.gets.Add(1)
	f, _ := p.p.Get().(*Frame)
	if f == nil {
		p.fresh.Add(1)
		f = &Frame{}
	}
	if cap(f.Data) < n {
		f.Data = make([]byte, n)
	} else {
		f.Data = f.Data[:n]
	}
	f.Size = n + FCSLen
	f.SrcPort = 0
	f.Trace.Reset()
	f.pool = p
	return f
}

// put returns a frame to the pool. Callers go through Frame.Release,
// which clears the pool pointer first so a double release degrades to a
// no-op instead of corrupting the free list.
func (p *Pool) put(f *Frame) {
	p.puts.Add(1)
	p.p.Put(f)
}

// GetTrain returns an empty Train container whose Frames slice (backing
// array included) recycles across batches, so steady-state coalescing
// allocates nothing per train.
func (p *Pool) GetTrain() *Train {
	t, _ := p.tp.Get().(*Train)
	if t == nil {
		t = &Train{}
	}
	t.Frames = t.Frames[:0]
	t.Rate = 0
	t.Uniform = false
	t.pool = p
	return t
}

// putTrain returns a train container to the pool. Callers go through
// Train.Recycle, which clears the pool pointer first so a double recycle
// degrades to a no-op.
func (p *Pool) putTrain(t *Train) {
	p.tp.Put(t)
}

// Stats reports cumulative gets, releases, and fresh allocations. In a
// warmed-up steady state fresh stops growing — the property the
// allocation-regression tests pin down.
func (p *Pool) Stats() (gets, puts, fresh uint64) {
	return p.gets.Load(), p.puts.Load(), p.fresh.Load()
}
