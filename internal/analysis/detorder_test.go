package analysis_test

import (
	"testing"

	"osnt/internal/analysis"
	"osnt/internal/analysis/analysistest"
)

func TestDetOrderCorpus(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetOrder, "detorder")
}
