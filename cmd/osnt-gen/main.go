// Command osnt-gen is the OSNT traffic generator CLI: it replays a PCAP
// file (or synthesises a UDP flow workload) through the simulated
// NetFPGA-10G data path at a finely controlled rate and writes what went
// on the wire — with hardware transmit timestamps — to an output PCAP.
//
// Examples:
//
//	osnt-gen -out wire.pcap -size 64 -load 1.0 -count 100000
//	osnt-gen -in capture.pcap -scale 0.5 -out replayed.pcap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/pcap"
	"osnt/internal/sim"
	"osnt/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("osnt-gen: ")

	in := flag.String("in", "", "PCAP file to replay (empty: synthesise UDP)")
	out := flag.String("out", "", "PCAP file for transmitted packets (with TX timestamps)")
	size := flag.Int("size", 512, "synthetic frame size, FCS inclusive (64-1518)")
	load := flag.Float64("load", 0.1, "offered load as a fraction of 10G line rate")
	count := flag.Uint64("count", 10000, "packets to send (0 with -dur for time-bounded)")
	durMS := flag.Int("dur", 0, "generation duration in virtual milliseconds (overrides -count)")
	scale := flag.Float64("scale", 1.0, "inter-departure scale for PCAP replay (0.5 = 2x faster)")
	flows := flag.Int("flows", 16, "synthetic flow count")
	embed := flag.Bool("ts", true, "embed hardware transmit timestamps")
	flag.Parse()

	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{})

	var sink *pcap.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink, err = pcap.NewWriter(f, 0, true)
		if err != nil {
			log.Fatal(err)
		}
	}
	var written uint64
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, wire.EndpointFunc(
		func(f *wire.Frame, _, at sim.Time) {
			written++
			if sink != nil {
				if err := sink.Write(pcap.Record{TS: at, Data: f.Data, OrigLen: f.Size - wire.FCSLen}); err != nil {
					log.Fatal(err)
				}
			}
		})))

	cfg := gen.Config{Count: *count, EmbedTimestamp: *embed}
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := pcap.ReadAll(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replaying %d packets from %s (scale %.2f)", len(recs), *in, *scale)
		cfg.Source = &gen.PCAPSource{Records: recs}
		cfg.Spacing = &gen.RecordedSpacing{Records: recs, Scale: *scale}
	} else {
		spec := packet.UDPSpec{
			SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
			DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
			SrcIP:   packet.IP4{10, 0, 0, 1},
			DstIP:   packet.IP4{10, 0, 0, 2},
			SrcPort: 5000, DstPort: 7000,
		}
		cfg.Source = &gen.UDPFlowSource{Spec: spec, NumFlows: *flows, FrameSize: *size}
		cfg.Spacing = gen.CBRForLoad(*size, wire.Rate10G, *load)
	}

	g, err := gen.New(card.Port(0), cfg)
	if err != nil {
		log.Fatal(err)
	}
	g.Start(0)
	if *durMS > 0 {
		e.RunUntil(sim.After(sim.Milliseconds(int64(*durMS))))
		g.Stop()
	}
	e.Run()

	elapsed := e.Now().Seconds()
	sent := g.Sent()
	fmt.Printf("sent %d packets (%d wire bytes) in %.6fs virtual time\n",
		sent.Packets, sent.Bytes, elapsed)
	if elapsed > 0 {
		fmt.Printf("rate: %.3f Mpps, %.3f Gb/s on the wire\n",
			sent.PacketsPerSecond(elapsed)/1e6, sent.BitsPerSecond(elapsed)/1e9)
	}
	if g.Dropped() > 0 {
		fmt.Printf("dropped at TX queue (offered > line rate): %d\n", g.Dropped())
	}
	if written > 0 && *out != "" {
		fmt.Printf("wrote %d packets to %s\n", written, *out)
	}
}
