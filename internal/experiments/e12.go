package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E12DownLoads sweeps the downstream offered load as a fraction of the
// 40G server port's line rate. The single 10G edge port it targets
// saturates at 0.25, so the sweep crosses the conversion knee from
// underload through saturation into sustained overload. Heaviest first
// for the worker pool.
var E12DownLoads = []float64{1.0, 0.5, 0.3, 0.27, 0.25, 0.22, 0.15}

// e12FrameSize is the probe size; 512 B keeps the embedded timestamp
// inside a 64 B snap and makes the service slots easy to reason about.
const e12FrameSize = 512

// e12EdgeQueueCap bounds the converting DUT's egress FIFOs (frames).
// Shallow enough that overload shows tail drop within the measurement
// window, deep enough that the pre-knee points are lossless.
const e12EdgeQueueCap = 256

// e12EdgeMAC is the station address behind 10G edge port p.
func e12EdgeMAC(p int) packet.MAC {
	return packet.MAC{0x02, 0x05, 0x17, 0x12, 0, byte(p + 1)}
}

// e12UplinkMAC is the station behind the 40G uplink (the server side).
var e12UplinkMAC = packet.MAC{0x02, 0x05, 0x17, 0x12, 0xff, 0x01}

// E12MixedRateFanIn exercises both directions of a mixed-rate edge/uplink
// rig: four 10G tester ports and one 40G uplink meet in a converting DUT
// (switchsim PortRates — 10G edge ports next to a 40G port, egress FIFOs
// drained at each port's own rate).
//
// Upstream, the four edge ports offer Poisson traffic at 100% of line
// rate, 40 Gb/s aggregate, into the 40G uplink. Ingress serialisation
// means the fan-in can never exceed the uplink's drain rate, so this
// direction must stay lossless with bounded queueing at any load — the
// scaling claim, reported as up(Mpps)/up-p99/up-drops.
//
// Downstream is where conversion bites: the 40G server port sweeps
// offered load toward a single 10G edge station. Above 25% of 40G the
// edge port's egress FIFO — draining at 10G, the store-and-forward
// conversion point — first develops queueing delay bounded by the FIFO
// depth, then tail-drops the excess: the knee and drop onset move across
// the table exactly as fan-in overload does on real hardware. Latency is
// measured the paper's way (embedded TX timestamps vs MAC RX timestamps)
// with an idealised host path, so the figures isolate the DUT.
func E12MixedRateFanIn(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 20 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E12: mixed-rate fan-in/fan-out — 4×10G edge + 40G uplink through a converting DUT (512B Poisson)",
		Columns: []string{"down-load(%)", "up(Mpps)", "up-p99(µs)", "up-drops", "down-offered(Mpps)", "down-rx(Mpps)", "down-p99(µs)", "down-qdrops", "down-loss(%)"},
	}
	tbl.Rows = sweeper().Rows(len(E12DownLoads), func(i int) [][]string {
		downLoad := E12DownLoads[i]
		e := sim.NewEngine()
		b := topo.New().
			Tester("osnt", netfpga.Config{}). // 4×10G edge card
			Tester("srv", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			DUT("dut", switchsim.Config{
				Ports:     5,
				PortRates: []wire.Rate{0, 0, 0, 0, wire.Rate40G},
				// Overspeed lookup (86.8 ns for a 512 B frame against its
				// 106.4 ns arrival slot at 40G), so the only bottleneck in
				// the rig is the speed-converting egress FIFO itself.
				LookupPerPacket: 10 * sim.Nanosecond,
				LookupPerByte:   sim.Picoseconds(150),
				EgressQueueCap:  e12EdgeQueueCap,
			})
		for p := 0; p < 4; p++ {
			b.Duplex(osntPorts[p], fmt.Sprintf("dut:%d", p))
		}
		b.Duplex("dut:4", "srv:0")
		t := b.MustBuild(e)
		dut := t.DUT("dut")
		dut.Learn(e12UplinkMAC, 4)
		for p := 0; p < 4; p++ {
			dut.Learn(e12EdgeMAC(p), p)
		}

		// The measurement isolates the DUT, so both capture paths use the
		// shared idealised host: every MAC-captured probe reaches its
		// latency sink.
		latencySink := func(h *stats.Histogram) func(mon.Record) {
			return func(rec mon.Record) {
				if ts, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset); ok {
					h.Record(int64(rec.TS.Sub(ts)))
				}
			}
		}
		upLat := stats.NewHistogram()
		downLat := stats.NewHistogram()
		upMon := t.AttachMonitor("srv:0", idealCapture(latencySink(upLat)))
		downMon := t.AttachMonitor(osntPorts[0], idealCapture(latencySink(downLat)))

		newGen := func(port string, spec packet.UDPSpec, rate wire.Rate, load float64, seed int) *gen.Generator {
			slot := wire.SerializationTime(e12FrameSize, rate)
			g, err := gen.New(t.Port(port), gen.Config{
				Source:         &gen.UDPFlowSource{Spec: spec, FrameSize: e12FrameSize},
				Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
				EmbedTimestamp: true,
				Pool:           wire.DefaultPool,
				Seed:           runner.PointSeed(0xe12, seed),
			})
			if err != nil {
				panic(err)
			}
			g.Start(0)
			return g
		}

		// Upstream fan-in: every edge port at 100% of 10G line rate.
		upGens := make([]*gen.Generator, 4)
		for p := 0; p < 4; p++ {
			spec := probeSpec
			spec.SrcMAC = e12EdgeMAC(p)
			spec.DstMAC = e12UplinkMAC
			spec.SrcPort = uint16(5000 + p)
			upGens[p] = newGen(osntPorts[p], spec, wire.Rate10G, 1.0, i*8+p)
		}
		// Downstream fan-out: the 40G server sweeps load toward edge
		// station 0 — a 4:1 down-conversion past 25%.
		downSpec := probeSpec
		downSpec.SrcMAC = e12UplinkMAC
		downSpec.DstMAC = e12EdgeMAC(0)
		downSpec.SrcPort = 6000
		downGen := newGen("srv:0", downSpec, wire.Rate40G, downLoad, i*8+4)

		e.RunUntil(sim.Time(duration))
		for _, g := range upGens {
			g.Stop()
		}
		downGen.Stop()
		e.Run() // drain the conversion queues and in-flight frames

		downOffered := downGen.Sent().Packets
		downRx := downMon.Seen().Packets
		qdrops := dut.Port(0).Drops()
		secs := duration.Seconds()
		lossPct := 0.0
		if downOffered > 0 {
			lossPct = float64(downOffered-downRx) / float64(downOffered) * 100
		}
		return [][]string{{
			fmt.Sprintf("%.0f", downLoad*100),
			fmt.Sprintf("%.3f", float64(upMon.Seen().Packets)/secs/1e6),
			fmt.Sprintf("%.2f", float64(upLat.Percentile(99))/1e6),
			fmt.Sprintf("%d", dut.Port(4).Drops()),
			fmt.Sprintf("%.3f", float64(downOffered)/secs/1e6),
			fmt.Sprintf("%.3f", float64(downRx)/secs/1e6),
			fmt.Sprintf("%.2f", float64(downLat.Percentile(99))/1e6),
			fmt.Sprintf("%d", qdrops),
			fmt.Sprintf("%.2f", lossPct),
		}}
	})
	return tbl
}
