package main

import "testing"

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000, AllocsPerOp: 2000}}
	got := report{"E1": {NsPerOp: 1200, AllocsPerOp: 2100}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000, AllocsPerOp: 0}}
	got := report{"E1": {NsPerOp: 1300, AllocsPerOp: 0}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].metric != "ns/op" {
		t.Fatalf("violations = %v, want one ns/op regression", v)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := report{"E1": {NsPerOp: 0, AllocsPerOp: 10000}}
	got := report{"E1": {NsPerOp: 0, AllocsPerOp: 12000}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].metric != "allocs/op" {
		t.Fatalf("violations = %v, want one allocs/op regression", v)
	}
}

func TestCompareAllocSlackCoversTinyBaselines(t *testing.T) {
	// +50 allocations on a 10-alloc baseline is inside the absolute
	// slack, not a 6× regression.
	base := report{"E1": {AllocsPerOp: 10}}
	got := report{"E1": {AllocsPerOp: 60}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000}, "E2": {NsPerOp: 1000}}
	got := report{"E1": {NsPerOp: 1000}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].name != "E2" || v[0].metric != "presence" {
		t.Fatalf("violations = %v, want E2 missing", v)
	}
}

func TestCompareNewBenchmarkNotGated(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000}}
	got := report{"E1": {NsPerOp: 900}, "E99": {NsPerOp: 1e12}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}
