package wire

import (
	"testing"

	"osnt/internal/sim"
)

// trainFrames builds unpooled frames of the given payload lengths.
func trainFrames(lens ...int) []*Frame {
	fs := make([]*Frame, len(lens))
	for i, n := range lens {
		fs[i] = NewFrame(make([]byte, n))
	}
	return fs
}

// delivery is one observed per-frame arrival.
type delivery struct {
	size      int
	start, at sim.Time
}

// TestTransmitTrainMatchesPerFrame is the wire-level exactness contract:
// a mixed-size train delivered through the per-frame fallback must
// produce byte-for-byte the same (size, first-bit, last-bit) tuples, the
// same return value and the same link counters as the equivalent
// sequence of TransmitAt calls — while occupying one in-flight entry
// instead of N.
func TestTransmitTrainMatchesPerFrame(t *testing.T) {
	lens := []int{60, 1514, 124, 508}
	run := func(asTrain bool) (got []delivery, end sim.Time, inflight int, tx, bytes uint64) {
		e := sim.NewEngine()
		sink := EndpointFunc(func(f *Frame, start, at sim.Time) {
			got = append(got, delivery{f.Size, start, at})
		})
		l := NewLink(e, Rate10G, 30*sim.Nanosecond, sink)
		if asTrain {
			tr := &Train{Frames: trainFrames(lens...)}
			end = l.TransmitTrain(tr, 0)
		} else {
			for _, f := range trainFrames(lens...) {
				end = l.TransmitAt(f, 0)
			}
		}
		inflight = l.InFlight()
		e.Run()
		return got, end, inflight, l.TxFrames(), l.TxWireBytes()
	}

	ref, refEnd, refInflight, refTx, refBytes := run(false)
	got, end, inflight, tx, bytes := run(true)
	if len(ref) != len(lens) || len(got) != len(lens) {
		t.Fatalf("deliveries: per-frame %d, train %d, want %d", len(ref), len(got), len(lens))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Errorf("frame %d: train delivery %+v, per-frame %+v", i, got[i], ref[i])
		}
	}
	if end != refEnd {
		t.Errorf("end: train %v, per-frame %v", end, refEnd)
	}
	if tx != refTx || bytes != refBytes {
		t.Errorf("counters: train %d frames/%d bytes, per-frame %d/%d", tx, bytes, refTx, refBytes)
	}
	if refInflight != len(lens) || inflight != 1 {
		t.Errorf("in-flight entries: per-frame %d (want %d), train %d (want 1)", refInflight, len(lens), inflight)
	}
}

// trainSink records whole-train deliveries.
type trainSink struct {
	trains []*Train
	starts []sim.Time
	ats    []sim.Time
	frames int
}

func (s *trainSink) Receive(f *Frame, start, at sim.Time) { s.frames++ }

func (s *trainSink) ReceiveTrain(t *Train, start, at sim.Time) {
	s.trains = append(s.trains, t)
	s.starts = append(s.starts, start)
	s.ats = append(s.ats, at)
}

// TestTransmitTrainToTrainEndpoint checks the batch-aware delivery: a
// peer implementing TrainEndpoint gets the whole run in one call whose
// start/at are the FIRST frame's first-bit and last-bit instants
// (propagation delay included), with the train stamped with the link
// rate the boundaries derive from.
func TestTransmitTrainToTrainEndpoint(t *testing.T) {
	e := sim.NewEngine()
	sink := &trainSink{}
	const delay = 50 * sim.Nanosecond
	l := NewLink(e, Rate40G, delay, sink)

	tr := &Train{Frames: trainFrames(60, 60, 1514), Rate: Rate40G}
	span := tr.Span()
	const earliest = sim.Time(1000)
	end := l.TransmitTrain(tr, earliest)
	e.Run()

	if len(sink.trains) != 1 || sink.frames != 0 {
		t.Fatalf("got %d train deliveries and %d per-frame deliveries, want 1 and 0", len(sink.trains), sink.frames)
	}
	if got := sink.trains[0]; got.Len() != 3 || got.Rate != Rate40G {
		t.Errorf("delivered train: %d frames at rate %v", got.Len(), got.Rate)
	}
	if want := earliest.Add(span); end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	firstSer := SerializationTime(64, Rate40G)
	if want := earliest.Add(delay); sink.starts[0] != want {
		t.Errorf("start = %v, want %v", sink.starts[0], want)
	}
	if want := earliest.Add(firstSer).Add(delay); sink.ats[0] != want {
		t.Errorf("at = %v, want %v", sink.ats[0], want)
	}
}

// TestTransmitTrainOfOneDegrades checks that a train of one takes the
// plain per-frame path: an ordinary Receive with TransmitAt's exact
// arithmetic, no ReceiveTrain call.
func TestTransmitTrainOfOneDegrades(t *testing.T) {
	e := sim.NewEngine()
	var got []delivery
	sink := EndpointFunc(func(f *Frame, start, at sim.Time) {
		got = append(got, delivery{f.Size, start, at})
	})
	l := NewLink(e, Rate10G, 0, sink)
	tr := &Train{Frames: trainFrames(60)}
	end := l.TransmitTrain(tr, 0)
	e.Run()
	ser := SerializationTime(64, Rate10G)
	if end != sim.Time(0).Add(ser) {
		t.Errorf("end = %v, want %v", end, ser)
	}
	if len(got) != 1 || got[0] != (delivery{64, 0, sim.Time(0).Add(ser)}) {
		t.Errorf("deliveries = %+v", got)
	}
	if len(tr.Frames) != 0 {
		t.Errorf("degraded train still holds %d frames", len(tr.Frames))
	}
}

// TestTransmitTrainUnterminated checks the nil-peer path: every frame of
// the run is counted, attributed to the link's drop site and returned to
// its pool, and the wire still reports the full occupancy.
func TestTransmitTrainUnterminated(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, Rate10G, 0, nil)
	var ledger DropLedger
	hop := ledger.Add("fibre")
	l.SetDropSite(&ledger, hop)

	pool := NewPool()
	tr := pool.GetTrain()
	for i := 0; i < 3; i++ {
		tr.Frames = append(tr.Frames, pool.Get(60))
	}
	tr.Rate = Rate10G
	span := tr.Span()
	end := l.TransmitTrain(tr, 0)
	e.Run()

	if end != sim.Time(0).Add(span) {
		t.Errorf("end = %v, want %v", end, span)
	}
	if l.Drops() != 3 {
		t.Errorf("link drops = %d, want 3", l.Drops())
	}
	if n := ledger.Count(hop, DropUnterminated); n != 3 {
		t.Errorf("ledger unterminated = %d, want 3", n)
	}
	if _, puts, _ := pool.Stats(); puts != 3 {
		t.Errorf("pool releases = %d, want 3", puts)
	}
	if l.TxFrames() != 3 {
		t.Errorf("txFrames = %d, want 3", l.TxFrames())
	}
}

// TestTransmitTrainBusyChaining checks the busy-horizon clamp: a train
// submitted while the link is still serialising starts exactly at
// busyUntil, so back-to-back singles and trains interleave with the same
// arithmetic as a MAC queue.
func TestTransmitTrainBusyChaining(t *testing.T) {
	e := sim.NewEngine()
	var got []delivery
	sink := EndpointFunc(func(f *Frame, start, at sim.Time) {
		got = append(got, delivery{f.Size, start, at})
	})
	l := NewLink(e, Rate10G, 0, sink)
	ser := SerializationTime(64, Rate10G)

	single := l.TransmitAt(NewFrame(make([]byte, 60)), 0)
	tr := &Train{Frames: trainFrames(60, 60)}
	end := l.TransmitTrain(tr, 0) // wants 0, must clamp to the single's end
	e.Run()

	if want := single.Add(2 * ser); end != want {
		t.Errorf("train end = %v, want %v", end, want)
	}
	if len(got) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(got))
	}
	for i, d := range got {
		fb := sim.Time(0).Add(sim.Duration(i) * ser)
		if want := (delivery{64, fb, fb.Add(ser)}); d != want {
			t.Errorf("frame %d: %+v, want %+v", i, d, want)
		}
	}
}
