package main

import (
	"fmt"
	"testing"
)

// noLoad is the checkImprovements loader for expectations with no @file
// pins — reaching it is a test bug.
func noLoad(path string) (report, error) {
	return nil, fmt.Errorf("unexpected load of %s", path)
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000, AllocsPerOp: 2000}}
	got := report{"E1": {NsPerOp: 1200, AllocsPerOp: 2100}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000, AllocsPerOp: 0}}
	got := report{"E1": {NsPerOp: 1300, AllocsPerOp: 0}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].metric != "ns/op" {
		t.Fatalf("violations = %v, want one ns/op regression", v)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := report{"E1": {NsPerOp: 0, AllocsPerOp: 10000}}
	got := report{"E1": {NsPerOp: 0, AllocsPerOp: 12000}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].metric != "allocs/op" {
		t.Fatalf("violations = %v, want one allocs/op regression", v)
	}
}

func TestCompareAllocSlackCoversTinyBaselines(t *testing.T) {
	// +50 allocations on a 10-alloc baseline is inside the absolute
	// slack, not a 6× regression.
	base := report{"E1": {AllocsPerOp: 10}}
	got := report{"E1": {AllocsPerOp: 60}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000}, "E2": {NsPerOp: 1000}}
	got := report{"E1": {NsPerOp: 1000}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].name != "E2" || v[0].metric != "presence" {
		t.Fatalf("violations = %v, want E2 missing", v)
	}
}

func TestCompareNewBenchmarkNotGated(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000}}
	got := report{"E1": {NsPerOp: 900}, "E99": {NsPerOp: 1e12}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestParseExpectations(t *testing.T) {
	exp, err := parseExpectations("E14Capture100G:1.2, MonMerge8Q:2, E19FatTreeK4:1.5@BENCH_PRESHARD.json")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]expectation{
		"E14Capture100G": {factor: 1.2},
		"MonMerge8Q":     {factor: 2},
		"E19FatTreeK4":   {factor: 1.5, file: "BENCH_PRESHARD.json"},
	}
	if len(exp) != len(want) {
		t.Fatalf("exp = %v", exp)
	}
	for name, w := range want {
		if exp[name] != w {
			t.Fatalf("exp[%s] = %v, want %v", name, exp[name], w)
		}
	}
	if exp, err := parseExpectations(""); err != nil || len(exp) != 0 {
		t.Fatalf("empty spec: exp = %v, err = %v", exp, err)
	}
	for _, bad := range []string{"E14", "E14:", "E14:0.5", ":1.2", "E14:abc"} {
		if _, err := parseExpectations(bad); err == nil {
			t.Errorf("parseExpectations(%q) accepted", bad)
		}
	}
}

func TestCheckImprovementsHolds(t *testing.T) {
	base := report{"E14": {NsPerOp: 1200}}
	got := report{"E14": {NsPerOp: 900}} // 1.33× faster
	if v := checkImprovements(got, base, map[string]expectation{"E14": {factor: 1.2}}, noLoad); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckImprovementsFlagsShortfall(t *testing.T) {
	base := report{"E14": {NsPerOp: 1200}}
	got := report{"E14": {NsPerOp: 1100}} // only 1.09× faster
	v := checkImprovements(got, base, map[string]expectation{"E14": {factor: 1.2}}, noLoad)
	if len(v) != 1 || v[0].metric != "improve" {
		t.Fatalf("violations = %v, want one improve shortfall", v)
	}
}

func TestCheckImprovementsFlagsMissingName(t *testing.T) {
	base := report{"E14": {NsPerOp: 1200}}
	got := report{"E14": {NsPerOp: 100}}
	v := checkImprovements(got, base, map[string]expectation{"E99": {factor: 1.2}}, noLoad)
	if len(v) != 1 || v[0].metric != "improve-presence" {
		t.Fatalf("violations = %v, want one improve-presence failure", v)
	}
}

func TestCheckImprovementsPinnedFile(t *testing.T) {
	frozen := report{"E19": {NsPerOp: 3000}}
	fallback := report{"E19": {NsPerOp: 1000}} // would fail against this
	got := report{"E19": {NsPerOp: 1500}}      // 2× faster than frozen
	load := func(path string) (report, error) {
		if path != "frozen.json" {
			return nil, fmt.Errorf("unexpected path %s", path)
		}
		return frozen, nil
	}
	exp := map[string]expectation{"E19": {factor: 1.5, file: "frozen.json"}}
	if v := checkImprovements(got, fallback, exp, load); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// The same measurement misses a 2.5× demand against the snapshot.
	exp["E19"] = expectation{factor: 2.5, file: "frozen.json"}
	v := checkImprovements(got, fallback, exp, load)
	if len(v) != 1 || v[0].metric != "improve" {
		t.Fatalf("violations = %v, want one improve shortfall", v)
	}
}

func TestCheckImprovementsUnreadableFileFails(t *testing.T) {
	got := report{"E19": {NsPerOp: 1}}
	load := func(path string) (report, error) { return nil, fmt.Errorf("no such file %s", path) }
	v := checkImprovements(got, report{}, map[string]expectation{"E19": {factor: 1.5, file: "gone.json"}}, load)
	if len(v) != 1 || v[0].metric != "improve-presence" {
		t.Fatalf("violations = %v, want one improve-presence failure", v)
	}
}

func TestPctDelta(t *testing.T) {
	if d := pctDelta(900, 1200); d != -25 {
		t.Fatalf("pctDelta(900, 1200) = %v, want -25", d)
	}
	if d := pctDelta(5, 0); d != 0 {
		t.Fatalf("pctDelta(5, 0) = %v, want 0", d)
	}
}
