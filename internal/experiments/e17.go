package experiments

import (
	"fmt"

	"osnt/internal/flowstats"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/timing"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E17QueueCounts sweeps how many RSS capture queues carry the same
// workload, heaviest first for the worker pool. The flow analytics must
// come out byte-identical at every count: the merge erases the queue
// topology from the record stream.
var E17QueueCounts = []int{8, 4, 2, 1}

const (
	// e17FrameSize is the probe size (FCS-inclusive).
	e17FrameSize = 512
	// e17CycleSlots is the workload's repeating schedule length: 512
	// send slots interleaving 8 elephants (32 slots each, every even
	// slot) with 256 mice (one odd slot each), so per-flow offered
	// counts are exact arithmetic on the consumed slot count.
	e17CycleSlots = 512
	e17ElephantN  = 8
	e17MouseN     = e17CycleSlots / 2
	// e17TopK is how many flows each sweep point reports.
	e17TopK = 3
)

// e17Workload is the precomputed elephants-and-mice schedule: frame
// templates per cycle slot, the header digest each slot's flow hashes
// to, and display names. Read-only after construction, so sweep points
// share one instance across workers.
type e17Workload struct {
	frames []*wire.Frame // one template per cycle slot (flows share pointers)
	slots  []uint64      // slot → flow digest
	weight map[uint64]uint64
	names  map[uint64]string
}

var e17Flows = newE17Workload()

func newE17Workload() *e17Workload {
	w := &e17Workload{
		frames: make([]*wire.Frame, e17CycleSlots),
		slots:  make([]uint64, e17CycleSlots),
		weight: make(map[uint64]uint64, e17ElephantN+e17MouseN),
		names:  make(map[uint64]string, e17ElephantN+e17MouseN),
	}
	build := func(port uint16, name string) (*wire.Frame, uint64) {
		spec := probeSpec
		spec.SrcPort = port
		spec.FrameSize = e17FrameSize
		data := spec.Build()
		d := packet.PacketDigest(data, packet.HeaderDigestBytes)
		w.names[d] = name
		return wire.NewFrame(data), d
	}
	elephants := make([]*wire.Frame, e17ElephantN)
	elephantD := make([]uint64, e17ElephantN)
	for i := range elephants {
		elephants[i], elephantD[i] = build(uint16(5000+i), fmt.Sprintf("eleph-%d", i))
	}
	for p := 0; p < e17CycleSlots; p++ {
		if p%2 == 0 {
			i := (p / 2) % e17ElephantN
			w.frames[p], w.slots[p] = elephants[i], elephantD[i]
		} else {
			j := (p - 1) / 2
			w.frames[p], w.slots[p] = build(uint16(6000+j), fmt.Sprintf("mouse-%d", j))
		}
		w.weight[w.slots[p]]++
	}
	return w
}

// offered returns exactly how many packets of the flow the generator
// put on the wire after consuming n schedule slots.
func (w *e17Workload) offered(n, digest uint64) uint64 {
	c := (n / e17CycleSlots) * w.weight[digest]
	for p := uint64(0); p < n%e17CycleSlots; p++ {
		if w.slots[p] == digest {
			c++
		}
	}
	return c
}

// fnvFold folds one 64-bit value into a running FNV-1a stream digest,
// big-endian byte order.
func fnvFold(h, v uint64) uint64 {
	const prime = 1099511628211
	for s := 56; s >= 0; s -= 8 {
		h = (h ^ (v >> uint(s) & 0xff)) * prime
	}
	return h
}

// e17StreamSeed is the FNV-1a offset basis the stream digest starts from.
const e17StreamSeed = 14695981039346656037

// E17FlowAnalytics is the per-flow analytics experiment the cross-queue
// merge exists for: a 40G elephants-and-mice workload (8 heavy + 256
// light UDP flows on a fixed 512-slot schedule) crosses a switch whose
// lookup pipeline is starved to ~95% of line rate — so it sheds a few
// percent of a saturated stream — into an RSS-steered multi-queue
// capture. The merged record stream feeds a flowstats.FlowTable plus
// count-min and space-saving sketches, and each row reports one of the
// top flows: measured packets against the schedule's exact offered
// count (loss-ex), the loss the flow table *infers* from transmit-
// timestamp gaps alone (loss-inf), per-flow latency and reorders.
//
// The digest column is an order-sensitive FNV-1a over every merged
// record's (timestamp, flow hash) and must be identical across the
// 8/4/2/1-queue rows: the k-way merge reconstructs one canonical global
// order no matter how many rings the capture was spread over — the
// cross-queue ordering bugfix this experiment locks in. ok further
// requires zero merge order violations, zero ring drops, every elephant
// monitored by space-saving, count-min never undercounting the top
// flows, and the drop ledger conserving offered = delivered + attributed.
func E17FlowAnalytics(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 5 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E17: per-flow analytics over merged multi-queue capture — elephants and mice through a lossy DUT (512B CBR at 40G)",
		Columns: []string{"queues", "rank", "flow", "pkts", "loss-ex(%)", "loss-inf(%)", "lat(µs)", "reorders", "merged", "digest", "ok"},
	}
	w := e17Flows
	tbl.Rows = sweeper().Rows(len(E17QueueCounts), func(i int) [][]string {
		nq := E17QueueCounts[i]
		e := sim.NewEngine()
		t := topo.New().
			Tester("tx", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			Tester("rx", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{
				Ports:     2,
				PortRates: []wire.Rate{wire.Rate40G, wire.Rate40G},
				// Starved lookup: ~112.2 ns service against the 106.4 ns
				// back-to-back slot of a 512 B frame at 40G, so the
				// saturated stream overflows the lookup queue once it has
				// filled — a few percent steady-state loss.
				LookupPerPacket: 20 * sim.Nanosecond,
				LookupPerByte:   sim.Picoseconds(180),
			}).
			Link("tx:0", "sw:0").
			Link("sw:1", "rx:0").
			MustBuild(e)
		t.DUT("sw").Learn(probeSpec.DstMAC, 1)

		queues := make([]mon.QueueConfig, nq)
		for q := range queues {
			queues[q] = mon.QueueConfig{
				RingSize:      1 << 18,
				HostPerPacket: sim.Nanosecond,
				HostPerByte:   -1,
			}
		}
		m := t.AttachMonitor("rx:0", mon.Config{
			SnapLen:   64, // the embedded timestamp at offset 42..50 survives
			HashBytes: packet.HeaderDigestBytes,
			Steer:     mon.SteerHash,
			Queues:    queues,
		})

		ft := flowstats.NewFlowTable(1 << 10)
		ss := flowstats.NewSpaceSaving(2 * e17ElephantN)
		cm := flowstats.NewCountMin(4, 1<<12)
		streamDigest := uint64(e17StreamSeed)
		merge := mon.NewMerge(m, func(rec mon.Record) {
			streamDigest = fnvFold(fnvFold(streamDigest, uint64(rec.TS)), rec.Hash)
			s := flowstats.Sample{Digest: rec.Hash, RxTS: rec.TS, Wire: rec.WireSize, Trace: rec.Trace}
			if tx, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset); ok {
				s.TxTS, s.HasTx = tx, true
			}
			ft.Observe(s)
			ss.Add(rec.Hash, 1)
			cm.Add(rec.Hash, 1)
		})

		g, err := gen.New(t.Port("tx:0"), gen.Config{
			Source:         &gen.SliceSource{Frames: w.frames, Loop: true},
			Spacing:        gen.CBRForLoad(e17FrameSize, wire.Rate40G, 1.0),
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           runner.PointSeed(0xe17, i),
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		e.RunUntil(sim.Time(duration))
		g.Stop()
		e.Run() // drain the DUT and every capture ring
		merge.Flush()

		consumed := g.Sent().Packets + g.Dropped()
		lm := stats.NewLossMap(consumed, m.Seen().Packets, t.Drops())
		top := ft.Top(e17TopK)
		ok := merge.OrderViolations() == 0 && m.RingDrops() == 0 &&
			merge.Pending() == 0 && lm.Conserved()
		for k := 0; k < e17ElephantN; k++ {
			ok = ok && ss.Monitored(w.slots[2*k])
		}
		for _, f := range top {
			ok = ok && cm.Estimate(f.Digest) >= f.Packets
		}

		rows := make([][]string, 0, len(top))
		for rank, f := range top {
			off := w.offered(consumed, f.Digest)
			rows = append(rows, []string{
				fmt.Sprintf("%d", nq),
				fmt.Sprintf("%d", rank+1),
				w.names[f.Digest],
				fmt.Sprintf("%d", f.Packets),
				fmt.Sprintf("%.2f", float64(off-f.Packets)/float64(off)*100),
				fmt.Sprintf("%.2f", float64(f.Holes)/float64(off)*100),
				fmt.Sprintf("%.2f", f.LatencyMean().Seconds()*1e6),
				fmt.Sprintf("%d", f.Reorders),
				fmt.Sprintf("%d", merge.Emitted()),
				fmt.Sprintf("%016x", streamDigest),
				fmt.Sprintf("%v", ok),
			})
		}
		return rows
	})
	return tbl
}

// MergeMicroBench drives the k-way merge hot path in isolation: 64 B
// line-rate capture at 10G dealt round-robin across 8 idealised queues
// (the worst cross-queue interleave) with a Merge re-sequencing every
// record into global order. cmd/benchgate samples it as the merge
// micro-benchmark; the returned count is the merged emissions, which
// callers assert to keep the rig honest.
func MergeMicroBench(duration sim.Duration) uint64 {
	if duration == 0 {
		duration = sim.Millisecond
	}
	e := sim.NewEngine()
	t := topo.New().
		Tester("osnt", netfpga.Config{Ports: 2}).
		Link("osnt:0", "osnt:1").
		MustBuild(e)
	queues := make([]mon.QueueConfig, 8)
	for i := range queues {
		queues[i] = mon.QueueConfig{HostPerPacket: sim.Picosecond, HostPerByte: -1}
	}
	m := t.AttachMonitor("osnt:1", mon.Config{
		SnapLen: 64,
		Steer:   mon.SteerRoundRobin,
		Queues:  queues,
	})
	merge := mon.NewMerge(m, func(mon.Record) {})
	g, err := gen.New(t.Port("osnt:0"), gen.Config{
		Source:   &gen.UDPFlowSource{Spec: probeSpec, NumFlows: e14Flows, FrameSize: 64},
		Spacing:  gen.CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:     wire.DefaultPool,
		Seed:     runner.PointSeed(0xe17, 0x5eed),
		MaxTrain: trainCap(64),
		Until:    sim.Time(duration),
	})
	if err != nil {
		panic(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(duration))
	g.Stop()
	e.Run()
	merge.Flush()
	return merge.Emitted()
}

// FlowTableMicroBench drives the flow-analytics upsert hot path without
// an engine: 2^20 synthetic samples over 512 flows folded into a flow
// table, a count-min sketch and a space-saving summary — the per-record
// work the merged sink does in E17. Returns how many samples the table
// tracked (all of them, which callers assert).
func FlowTableMicroBench() uint64 {
	ft := flowstats.NewFlowTable(1 << 10)
	cm := flowstats.NewCountMin(4, 1<<12)
	ss := flowstats.NewSpaceSaving(16)
	const samples = 1 << 20
	tracked := uint64(0)
	for i := 0; i < samples; i++ {
		d := packet.Mix64(uint64(i%512) + 1)
		tx := timing.FromSim(sim.After(sim.Duration(i) * 100 * sim.Nanosecond))
		if ft.Observe(flowstats.Sample{Digest: d, TxTS: tx, HasTx: true, RxTS: tx.Add(sim.Microsecond), Wire: 64}) {
			tracked++
		}
		cm.Add(d, 1)
		ss.Add(d, 1)
	}
	return tracked
}
