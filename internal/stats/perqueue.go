package stats

// PerQueue reduces per-queue capture accounting (one steered/delivered/
// dropped triple per DMA queue, the shape of mon.QueueStats) into the
// figures multi-queue tables report: per-queue load shares, drop
// fractions, and the steering imbalance factor that tells a skewed RSS
// hash from a balanced one.
type PerQueue struct {
	steered   []uint64
	delivered []uint64
	dropped   []uint64
}

// NewPerQueue returns an empty reduction over n queues.
func NewPerQueue(n int) *PerQueue {
	return &PerQueue{
		steered:   make([]uint64, n),
		delivered: make([]uint64, n),
		dropped:   make([]uint64, n),
	}
}

// Set records queue i's counters.
func (p *PerQueue) Set(i int, steered, delivered, dropped uint64) {
	p.steered[i] = steered
	p.delivered[i] = delivered
	p.dropped[i] = dropped
}

// Queues returns the number of queues.
func (p *PerQueue) Queues() int { return len(p.steered) }

// TotalSteered returns the packets steered across all queues.
func (p *PerQueue) TotalSteered() uint64 {
	var n uint64
	for _, v := range p.steered {
		n += v
	}
	return n
}

// TotalDelivered returns the packets delivered across all queues.
func (p *PerQueue) TotalDelivered() uint64 {
	var n uint64
	for _, v := range p.delivered {
		n += v
	}
	return n
}

// TotalDropped returns the packets dropped across all queues.
func (p *PerQueue) TotalDropped() uint64 {
	var n uint64
	for _, v := range p.dropped {
		n += v
	}
	return n
}

// Share returns queue i's fraction of all steered packets (0 when
// nothing was steered).
func (p *PerQueue) Share(i int) float64 {
	total := p.TotalSteered()
	if total == 0 {
		return 0
	}
	return float64(p.steered[i]) / float64(total)
}

// DropFraction returns queue i's drops as a fraction of what was
// steered to it.
func (p *PerQueue) DropFraction(i int) float64 {
	if p.steered[i] == 0 {
		return 0
	}
	return float64(p.dropped[i]) / float64(p.steered[i])
}

// TotalDropFraction returns aggregate drops over aggregate steered.
func (p *PerQueue) TotalDropFraction() float64 {
	total := p.TotalSteered()
	if total == 0 {
		return 0
	}
	return float64(p.TotalDropped()) / float64(total)
}

// Imbalance returns the hottest queue's steered count over the per-queue
// mean: 1.0 is a perfectly balanced spread, N means one queue took
// everything on an N-queue monitor. 0 when nothing was steered.
func (p *PerQueue) Imbalance() float64 {
	total := p.TotalSteered()
	if total == 0 || len(p.steered) == 0 {
		return 0
	}
	var max uint64
	for _, v := range p.steered {
		if v > max {
			max = v
		}
	}
	mean := float64(total) / float64(len(p.steered))
	return float64(max) / mean
}
