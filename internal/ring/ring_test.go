package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r FIFO[int]
	if r.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 0; i < 1000; i++ {
		r.Push(i)
	}
	if r.Len() != 1000 {
		t.Fatalf("Len = %d", r.Len())
	}
	if *r.Peek() != 0 {
		t.Fatalf("Peek = %d", *r.Peek())
	}
	for i := 0; i < 1000; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop %d = %d", i, got)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var r FIFO[int]
	next, want := 0, 0
	// Interleave pushes and pops with a persistent backlog so the
	// compaction path (head ≥ 64, dead prefix ≥ half) is exercised.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := r.Pop(); got != want {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain: Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d values, pushed %d", want, next)
	}
}

// Steady-state queueing must not allocate: the backing array is recycled
// once warm, whatever the head position.
func TestFIFOSteadyStateZeroAlloc(t *testing.T) {
	var r FIFO[int]
	for i := 0; i < 256; i++ {
		r.Push(i)
	}
	for r.Len() > 0 {
		r.Pop()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r.Push(i)
		}
		for r.Len() > 0 {
			r.Pop()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f per cycle, want 0", avg)
	}
}

// Bulk and single operations must interleave freely and preserve FIFO
// order: PushN/PopN are batched bookkeeping, not a separate queue.
func TestFIFOBulkOrder(t *testing.T) {
	var r FIFO[int]
	next, want := 0, 0
	batch := make([]int, 64)
	pop := func(n int) {
		got := make([]int, n)
		r.PopN(got, n)
		for _, v := range got {
			if v != want {
				t.Fatalf("PopN = %d, want %d", v, want)
			}
			want++
		}
	}
	for round := 0; round < 100; round++ {
		n := 1 + round%len(batch)
		for i := 0; i < n; i++ {
			batch[i] = next
			next++
		}
		r.PushN(batch[:n])
		r.Push(next)
		next++
		if got := r.Pop(); got != want {
			t.Fatalf("round %d: Pop = %d, want %d", round, got, want)
		}
		want++
		pop(n / 2)
	}
	pop(r.Len())
	if want != next {
		t.Fatalf("popped %d values, pushed %d", want, next)
	}
}

// PopN must zero vacated slots and compact exactly like N single Pops.
func TestFIFOBulkClearsAndCompacts(t *testing.T) {
	var r FIFO[*int]
	v := 7
	vs := []*int{&v, &v, &v, &v}
	r.PushN(vs)
	dst := make([]*int, 3)
	r.PopN(dst, 3)
	for i := 0; i < 3; i++ {
		if r.buf[i] != nil {
			t.Fatalf("bulk-popped slot %d still holds the pointer", i)
		}
	}
	if r.Len() != 1 || r.Pop() != &v {
		t.Fatal("tail element lost after PopN")
	}

	// A PopN that drains a ≥64-slot dead prefix must compact, same as Pop.
	var q FIFO[int]
	big := make([]int, 200)
	for i := range big {
		big[i] = i
	}
	q.PushN(big)
	q.PopN(make([]int, 100), 100)
	if q.head != 0 {
		t.Fatalf("PopN left head at %d, want compacted to 0", q.head)
	}
	if got := q.Pop(); got != 100 {
		t.Fatalf("post-compaction Pop = %d, want 100", got)
	}
}

// PopN with n = 0 must be a no-op even on an empty FIFO.
func TestFIFOBulkPopZero(t *testing.T) {
	var r FIFO[int]
	r.PopN(nil, 0)
	if r.Len() != 0 {
		t.Fatalf("Len = %d after PopN(nil, 0)", r.Len())
	}
}

// BenchmarkFIFOBulk pits PushN/PopN of 64-element trains against the
// same traffic moved one element at a time: the bulk path amortises the
// grow-check and the dead-prefix accounting across the batch.
func BenchmarkFIFOBulk(b *testing.B) {
	batch := make([]int, 64)
	for i := range batch {
		batch[i] = i
	}
	dst := make([]int, 64)
	b.Run("singles", func(b *testing.B) {
		var r FIFO[int]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, v := range batch {
				r.Push(v)
			}
			for j := 0; j < len(batch); j++ {
				dst[j] = r.Pop()
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		var r FIFO[int]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.PushN(batch)
			r.PopN(dst, len(batch))
		}
	})
}

// Pop must zero vacated slots so popped pointers are not retained by the
// backing array.
func TestFIFOClearsSlots(t *testing.T) {
	var r FIFO[*int]
	v := 7
	r.Push(&v)
	r.Push(&v)
	r.Pop()
	if got := r.buf[0]; got != nil {
		t.Fatal("popped slot still holds the pointer")
	}
}
