package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package — the unit the analyzers
// consume.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// newInfo allocates the types.Info maps every pass needs.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadModule parses and type-checks every package in the module rooted at
// root (skipping testdata, hidden and underscore directories, and _test.go
// files) in dependency order, so each local package is checked exactly
// once and imports resolve from the in-memory results. Standard-library
// imports resolve through the compiler's source importer, which needs no
// network or module cache — the build environment is hermetic.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()

	// Pass 1: parse every candidate package directory.
	type parsed struct {
		dir     string
		pkgPath string
		files   []*ast.File
		imports map[string]bool
	}
	byPath := make(map[string]*parsed)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := byPath[pkgPath]
		if p == nil {
			p = &parsed{dir: dir, pkgPath: pkgPath, imports: make(map[string]bool)}
			byPath[pkgPath] = p
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if !buildIncluded(file) {
			return nil
		}
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			if ipath, err := strconv.Unquote(imp.Path.Value); err == nil {
				p.imports[ipath] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: topological order over module-local imports.
	order := make([]string, 0, len(byPath))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		deps := make([]string, 0, len(p.imports))
		for dep := range p.imports {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if byPath[dep] == nil {
				continue
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	roots := make([]string, 0, len(byPath))
	for path := range byPath {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	// Pass 3: type-check in order. Local packages resolve from the memo;
	// everything else (stdlib) goes through the source importer.
	std := importer.ForCompiler(fset, "source", nil)
	local := make(map[string]*types.Package)
	imp := &memoImporter{std: std, local: local}
	var out []*Package
	for _, path := range order {
		p := byPath[path]
		// Deterministic file order: parser map order is already stable here
		// because WalkDir visits lexically, but sort defensively by name.
		sort.Slice(p.files, func(i, j int) bool {
			return fset.Position(p.files[i].Pos()).Filename < fset.Position(p.files[j].Pos()).Filename
		})
		info := newInfo()
		conf := types.Config{Importer: imp, FakeImportC: true}
		tpkg, err := conf.Check(path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		local[path] = tpkg
		out = append(out, &Package{
			PkgPath: path,
			Dir:     p.dir,
			Fset:    fset,
			Files:   p.files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

// buildIncluded evaluates a file's //go:build constraint (if any) against
// the host platform with no extra tags — the same view `go build ./...`
// takes on a plain invocation, so tag-gated variants (race_on.go/
// race_off.go) don't collide in the type checker.
func buildIncluded(file *ast.File) bool {
	for _, cg := range file.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the go tool complain, not us
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc", "unix":
					return tag != "unix" || isUnixGOOS()
				}
				// Release tags: go1.1 … through the toolchain's version are
				// all satisfied; approximated as "any go1.x" since this
				// module's floor is far below the running toolchain.
				return strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

func isUnixGOOS() bool {
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly", "illumos", "ios":
		return true
	}
	return false
}

// memoImporter serves module-local packages from the in-memory memo and
// defers the rest to the source importer.
type memoImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *memoImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

// SelfCheck loads the module containing dir (defaulting to the current
// directory) and runs the full suite, returning all diagnostics. It is the
// shared engine behind cmd/lintcheck, the clean-tree regression test, and
// the benchgate LintCheckSelf timing entry.
func SelfCheck(dir string) ([]Diagnostic, *token.FileSet, error) {
	if dir == "" {
		dir = "."
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
	}
	return all, fset, nil
}
