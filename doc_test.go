package osnt_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment is the doc-presence gate: every package
// under internal/ and cmd/ must carry a package comment (one paragraph
// of role + invariants) on at least one of its non-test files. The
// architecture document can only point into packages that explain
// themselves.
func TestEveryPackageHasDocComment(t *testing.T) {
	var dirs []string
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var sources []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			sources = append(sources, filepath.Join(dir, name))
		}
		if len(sources) == 0 {
			continue // no buildable package here
		}
		documented := false
		for _, src := range sources {
			f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package doc comment on any of its %d files", dir, len(sources))
		}
	}
}
