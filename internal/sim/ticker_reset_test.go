package sim

import "testing"

// TestTickerStopThenReset is the stop-then-reuse contract: a stopped
// ticker's event stays cancel-flagged in the queue, and Reset must
// revive it — clearing the flag and re-keying in place — so the ticker
// fires again on the new grid.
func TestTickerStopThenReset(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tk := e.ScheduleEvery(10, 10, func() { fired = append(fired, e.Now()) })
	e.RunUntil(25) // ticks at 10, 20
	tk.Stop()
	e.RunUntil(100) // stopped: nothing fires
	if len(fired) != 2 {
		t.Fatalf("pre-reset ticks = %v, want [10 20]", fired)
	}
	tk.Reset(150)
	e.RunUntil(175) // ticks at 150, 160, 170
	want := []Time{10, 20, 150, 160, 170}
	if len(fired) != len(want) {
		t.Fatalf("ticks = %v, want %v", fired, want)
	}
	for i, at := range want {
		if fired[i] != at {
			t.Fatalf("tick %d at %v, want %v", i, fired[i], at)
		}
	}
}

// TestTickerStopWhilePendingThenReset stops the ticker while its event
// is still queued (between firings, from a foreign event) and resets it:
// Reset must re-key the still-pending cancel-flagged event in place
// rather than panic or leave it dead.
func TestTickerStopWhilePendingThenReset(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.ScheduleEvery(10, 10, func() { ticks++ })
	e.Schedule(15, func() { // between ticks: tk.ev pending at 20
		tk.Stop()
		tk.Reset(30)
	})
	e.RunUntil(45) // tick at 10; reset moves 20 → 30; ticks at 30, 40
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (10, 30, 40)", ticks)
	}
}

// TestTickerStopFromWithinFnThenReset covers stop-from-within-fn: the
// callback stops its own ticker (event already popped, cancel flag set
// on a fired event), and a later Reset must re-arm it cleanly.
func TestTickerStopFromWithinFnThenReset(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var tk *Ticker
	tk = e.ScheduleEvery(10, 10, func() {
		fired = append(fired, e.Now())
		if e.Now() == 20 {
			tk.Stop() // self-stop: no re-arm after this firing
		}
	})
	e.Schedule(50, func() { tk.Reset(60) })
	e.RunUntil(85) // ticks 10, 20 (self-stop), then 60, 70, 80
	want := []Time{10, 20, 60, 70, 80}
	if len(fired) != len(want) {
		t.Fatalf("ticks = %v, want %v", fired, want)
	}
	for i, at := range want {
		if fired[i] != at {
			t.Fatalf("tick %d at %v, want %v", i, fired[i], at)
		}
	}
}

// TestTickerResetZeroAlloc pins the reuse contract: stop/reset cycles
// ride the ticker's single event, never allocating a new one.
func TestTickerResetZeroAlloc(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.ScheduleEvery(10, 10, func() { ticks++ })
	e.RunUntil(25)
	allocs := testing.AllocsPerRun(100, func() {
		tk.Stop()
		tk.Reset(e.Now().Add(5))
		e.RunFor(20)
	})
	if allocs != 0 {
		t.Fatalf("stop/reset cycle allocates %v per run, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestPropertyHeapChurn drives the inlined heap through a deterministic
// pseudo-random mix of Schedule, Cancel, Reprogram and Step, asserting
// the popped sequence never goes backwards in (at, seq) order and that
// every index stays consistent. It is the regression harness for the
// hand-written sift loops replacing container/heap.
func TestPropertyHeapChurn(t *testing.T) {
	e := NewEngine()
	r := NewRand(0xc0ffee)
	var live []*Event
	fired := 0
	check := func() {
		// Heap invariant: parent ≤ child at every node of the 4-ary
		// heap, inline keys in sync with the events they denormalise,
		// indices consistent.
		for i := 1; i < len(e.queue); i++ {
			p := (i - 1) / 4
			if entryLess(&e.queue[i], &e.queue[p]) {
				t.Fatalf("heap violation at %d", i)
			}
		}
		for i := range e.queue {
			ev := e.queue[i].ev
			if ev.index != i {
				t.Fatalf("index mismatch at %d: %d", i, ev.index)
			}
			if e.queue[i].at != ev.at {
				t.Fatalf("stale inline key at %d", i)
			}
		}
	}
	for op := 0; op < 20000; op++ {
		switch r.Intn(5) {
		case 0, 1: // schedule
			at := e.Now().Add(Duration(r.Intn(1000)))
			live = append(live, e.Schedule(at, func() { fired++ }))
		case 2: // cancel a random live event
			if len(live) > 0 {
				live[r.Intn(len(live))].Cancel()
			}
		case 3: // reprogram a random live event
			if len(live) > 0 {
				ev := live[r.Intn(len(live))]
				e.Reprogram(ev, e.Now().Add(Duration(r.Intn(1000))))
			}
		case 4: // step
			before := e.Now()
			if e.Step() {
				if e.Now() < before {
					t.Fatalf("clock went backwards: %v → %v", before, e.Now())
				}
			}
		}
		if op%128 == 0 {
			check()
		}
	}
	// Drain; instants must be non-decreasing.
	prev := e.Now()
	for e.Step() {
		if e.Now() < prev {
			t.Fatalf("drain went backwards: %v → %v", prev, e.Now())
		}
		prev = e.Now()
	}
	if fired == 0 {
		t.Fatal("churn fired nothing")
	}
}
