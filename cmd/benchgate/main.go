// Command benchgate is the benchmark-regression CI gate: it re-runs the
// scaling benchmarks in-process (the same drivers BenchmarkE1LineRate,
// BenchmarkE10TesterMesh, BenchmarkE11Rate40G, BenchmarkE12MixedRateFanIn,
// BenchmarkE13MultiDUTChain, BenchmarkE14Capture100G,
// BenchmarkE15Oversubscribed, BenchmarkE16LossAttribution,
// BenchmarkE17FlowAnalytics, BenchmarkE18TrainSweep,
// BenchmarkE19FatTreeK4Sharded, BenchmarkE20ShardScaling and the
// BenchmarkMonSteer8Q / BenchmarkDUTSpray2W / BenchmarkMonMerge8Q /
// BenchmarkFlowTableUpsert / BenchmarkFabricSynthK8 /
// BenchmarkPacketChecksum / BenchmarkEngineChurn micro-benchmarks
// iterate),
// writes the measured ns/op and
// allocs/op to a JSON report, and compares the report against a
// checked-in baseline with per-metric tolerances. CI fails the build when
// a benchmark regresses past tolerance and uploads the report as an
// artifact, so the perf trajectory is tracked per commit.
//
// Usage:
//
//	benchgate                      # measure, write BENCH.json, compare to BENCH_BASELINE.json
//	benchgate -write               # measure and (re)write the baseline instead of comparing
//	benchgate -count 5 -tol-ns 1.5 # more samples, looser wall-time tolerance
//	benchgate -expect-improve E14Capture100G:1.2
//	                               # additionally fail unless E14 runs ≥1.2× faster than baseline
//
// Each measurement prints its percentage delta against the baseline as
// it lands, so a CI log shows where the time went without a separate
// diff step.
//
// Measurements run with Workers=1: serial sweeps keep allocation counts
// reproducible (parallel workers shuffle sync.Pool hit rates), and the
// gate's wall-time figures stay comparable across differently loaded CI
// machines. ns/op takes the minimum across -count runs — the classic
// noise-resistant estimator — and allocs/op likewise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"osnt/internal/analysis"
	"osnt/internal/experiments"
	"osnt/internal/packet"
	"osnt/internal/sim"
)

// result is one benchmark's measurement.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// report maps benchmark name → measurement. JSON marshalling sorts map
// keys, so reports diff cleanly.
type report map[string]result

// benchmarks are the gated drivers. Durations mirror the repository
// benchmark harness (bench_test.go) so one iteration costs tens to a few
// hundred milliseconds while preserving every experiment's shape.
var benchmarks = []struct {
	name string
	run  func()
}{
	{"E1LineRate", func() { experiments.E1LineRate(sim.Millisecond) }},
	{"E10TesterMesh", func() { experiments.E10TesterMesh(sim.Millisecond) }},
	{"E11Rate40G", func() { experiments.E11Rate40G(sim.Millisecond) }},
	{"E12MixedRateFanIn", func() { experiments.E12MixedRateFanIn(2 * sim.Millisecond) }},
	{"E13MultiDUTChain", func() { experiments.E13MultiDUTChain(2 * sim.Millisecond) }},
	{"E14Capture100G", func() { experiments.E14Capture100G(sim.Millisecond) }},
	{"E15Oversub", func() { experiments.E15Oversubscribed(sim.Millisecond) }},
	{"E16LossAttr", func() { experiments.E16LossAttribution(2 * sim.Millisecond) }},
	{"E17FlowAnalytics", func() { experiments.E17FlowAnalytics(2 * sim.Millisecond) }},
	{"E18TrainSweep", func() { experiments.E18TrainSpeedup(sim.Millisecond) }},
	// E19FatTreeK4 is the sharded engine's headline gate: the same nine
	// (matrix, load) points the pre-sharding driver ran, now on 4
	// conservative-lookahead shards. CI holds it to ≥1.5× the frozen
	// serial figure in BENCH_PRESHARD.json via -expect-improve — the
	// partitioned event heaps alone reclaim most of that on one core,
	// and every additional core widens the margin.
	{"E19FatTreeK4", func() { experiments.E19FatTreeK4Sharded(250*sim.Microsecond, 4) }},
	{"FabricSynthK8", func() { experiments.FabricSynthMicroBench() }},
	{"MonSteer8Q", func() { experiments.SteerMicroBench(sim.Millisecond) }},
	{"DUTSpray2W", func() { experiments.SprayMicroBench(sim.Millisecond) }},
	{"MonMerge8Q", func() { experiments.MergeMicroBench(sim.Millisecond) }},
	{"FlowTableUpsert", func() { experiments.FlowTableMicroBench() }},
	{"PacketChecksum", checksumDriver},
	{"EngineChurn", engineChurnDriver},
	{"E20ShardScaling", func() { experiments.E20ShardMicroBench() }},
	{"LintCheckSelf", lintSelfDriver},
}

// checksumSink keeps the checksum loop observable so the compiler cannot
// elide it.
var checksumSink uint16

// checksumDriver is the in-process twin of BenchmarkPacketChecksum: the
// word-at-a-time Internet checksum over a 1518 B frame, enough rounds
// that one driver run costs a stable few milliseconds.
func checksumDriver() {
	data := make([]byte, 1518)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	for i := 0; i < 20000; i++ {
		checksumSink = packet.Checksum(data, uint32(i))
	}
}

// engineChurnDriver is the in-process twin of BenchmarkEngineChurn:
// schedule/fire churn against a one-million-pending event heap, every
// fired event re-arming itself so the heap depth — and therefore the
// sift cost the inlined pointer heap is optimising — stays constant.
func engineChurnDriver() {
	const (
		pending = 1 << 20
		churn   = 1 << 20
	)
	e := sim.NewEngine()
	evs := make([]*sim.Event, pending)
	for i := range evs {
		i := i
		evs[i] = e.Schedule(sim.Time(1+i), func() {
			e.RescheduleAfter(evs[i], sim.Duration(1+uint64(i)*2654435761%100000))
		})
	}
	for n := 0; n < churn; n++ {
		e.Step()
	}
}

// lintSelfDriver runs the internal/analysis suite over the whole module —
// parse, type-check, four analyzers — so the invariant gate's own cost is
// tracked: a pathological slowdown in the ownership interpreter would
// otherwise only surface as mysteriously slower CI.
func lintSelfDriver() {
	diags, _, err := analysis.SelfCheck(".")
	if err != nil {
		panic(fmt.Sprintf("benchgate: lint self-check: %v", err))
	}
	if len(diags) != 0 {
		panic(fmt.Sprintf("benchgate: lint self-check found %d diagnostics; run cmd/lintcheck", len(diags)))
	}
}

// measure runs fn count times and returns the minimum wall time and
// allocation count per run. A warm-up run first fills the frame pool and
// code caches; a GC before each sample keeps the allocator in a
// comparable state.
func measure(fn func(), count int) result {
	fn() // warm-up
	var best result
	for i := 0; i < count; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		fn()
		ns := float64(time.Since(t0).Nanoseconds())
		runtime.ReadMemStats(&after)
		allocs := float64(after.Mallocs - before.Mallocs)
		if i == 0 || ns < best.NsPerOp {
			best.NsPerOp = ns
		}
		if i == 0 || allocs < best.AllocsPerOp {
			best.AllocsPerOp = allocs
		}
	}
	return best
}

// violation is one benchmark outside tolerance.
type violation struct {
	name, metric string
	got, limit   float64
}

func (v violation) String() string {
	switch v.metric {
	case "presence":
		return fmt.Sprintf("%s: missing from this run but present in the baseline (delete it from the baseline if removal was deliberate)", v.name)
	case "improve":
		return fmt.Sprintf("%s: ns/op %.0f misses the expected improvement (needs ≤ %.0f)", v.name, v.got, v.limit)
	case "improve-presence":
		return fmt.Sprintf("%s: named in -expect-improve but missing from the run or the baseline", v.name)
	}
	return fmt.Sprintf("%s: %s %.0f exceeds limit %.0f", v.name, v.metric, v.got, v.limit)
}

// pctDelta is the signed percentage change of cur over base: −34.2 means
// cur is 34.2% below the baseline.
func pctDelta(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// expectation is one -expect-improve demand: the named benchmark's
// ns/op must be at least factor× below its improve baseline. file, when
// non-empty, names a frozen snapshot to measure against instead of the
// run's default improve baseline — so one invocation can hold E14 to its
// pre-batching snapshot and E19 to its pre-sharding one.
type expectation struct {
	factor float64
	file   string
}

// parseExpectations parses the -expect-improve value: comma-separated
// name:factor[@file] entries (factor 1.2 = 20% faster; @file pins the
// entry to a specific frozen baseline).
func parseExpectations(s string) (map[string]expectation, error) {
	exp := make(map[string]expectation)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("expect-improve %q: want name:factor[@file]", part)
		}
		val, file, _ := strings.Cut(val, "@")
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 1 {
			return nil, fmt.Errorf("expect-improve %q: factor must be a number ≥ 1", part)
		}
		exp[name] = expectation{factor: f, file: file}
	}
	return exp, nil
}

// checkImprovements enforces -expect-improve: each expectation measures
// against its own @file baseline when given, else fallback. An
// expectation fails when the measured ns/op exceeds baseline/factor, or
// when the named benchmark is absent from either side — a silently
// unmeasurable expectation must fail, not pass. Baseline files load once
// each, and an unreadable file is itself a violation.
func checkImprovements(got, fallback report, exp map[string]expectation, load func(path string) (report, error)) []violation {
	names := make([]string, 0, len(exp))
	for name := range exp {
		names = append(names, name)
	}
	sort.Strings(names)
	cache := make(map[string]report)
	var out []violation
	for _, name := range names {
		baseline := fallback
		if file := exp[name].file; file != "" {
			frozen, ok := cache[file]
			if !ok {
				var err error
				frozen, err = load(file)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
					out = append(out, violation{name, "improve-presence", 0, 0})
					continue
				}
				cache[file] = frozen
			}
			baseline = frozen
		}
		base, okBase := baseline[name]
		cur, okGot := got[name]
		if !okBase || !okGot {
			out = append(out, violation{name, "improve-presence", 0, 0})
			continue
		}
		if limit := base.NsPerOp / exp[name].factor; cur.NsPerOp > limit {
			out = append(out, violation{name, "improve", cur.NsPerOp, limit})
		}
	}
	return out
}

// compare checks every measured benchmark against the baseline. ns/op may
// grow by the factor tolNS, allocs/op by tolAllocs (with a small absolute
// slack so tiny baselines aren't gated at ±1 allocation). Benchmarks
// missing from the baseline pass (they gate once the baseline is
// rewritten); benchmarks missing from the measurement fail — a deleted
// benchmark must be deleted from the baseline deliberately.
func compare(got, baseline report, tolNS, tolAllocs float64) []violation {
	const allocSlack = 64
	var out []violation
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := got[name]
		if !ok {
			out = append(out, violation{name, "presence", 0, 0})
			continue
		}
		if limit := base.NsPerOp * tolNS; cur.NsPerOp > limit {
			out = append(out, violation{name, "ns/op", cur.NsPerOp, limit})
		}
		if limit := base.AllocsPerOp*tolAllocs + allocSlack; cur.AllocsPerOp > limit {
			out = append(out, violation{name, "allocs/op", cur.AllocsPerOp, limit})
		}
	}
	return out
}

// loadReport reads and parses one benchmark report file.
func loadReport(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return r, nil
}

func writeJSON(path string, r report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH.json", "where to write the measured report")
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "checked-in baseline to compare against")
	write := flag.Bool("write", false, "rewrite the baseline from this run instead of comparing")
	count := flag.Int("count", 3, "samples per benchmark (minimum is reported)")
	tolNS := flag.Float64("tol-ns", 1.25, "allowed ns/op growth factor over baseline")
	tolAllocs := flag.Float64("tol-allocs", 1.10, "allowed allocs/op growth factor over baseline")
	expectImprove := flag.String("expect-improve", "", "comma-separated name:factor[@file] entries whose ns/op must beat the improve baseline (or the @file snapshot) by ≥ factor (e.g. E14Capture100G:1.2,E19FatTreeK4:1.5@BENCH_PRESHARD.json)")
	improveBase := flag.String("improve-baseline", "", "baseline -expect-improve measures against (default: the -baseline file); point it at a frozen pre-optimisation snapshot to assert a speedup that outlives baseline rewrites")
	flag.Parse()

	expectations, err := parseExpectations(*expectImprove)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	experiments.Workers = 1

	// Load the baseline up front (unless this run rewrites it) so each
	// measurement prints its percentage delta as it lands.
	var baseline report
	if !*write {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v (run with -write to create the baseline)\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
	}

	got := make(report, len(benchmarks))
	for _, b := range benchmarks {
		r := measure(b.run, *count)
		got[b.name] = r
		fmt.Printf("%-20s %12.0f ns/op %10.0f allocs/op", b.name, r.NsPerOp, r.AllocsPerOp)
		if base, ok := baseline[b.name]; ok && base.NsPerOp > 0 {
			fmt.Printf("  %+7.1f%% ns/op %+7.1f%% allocs/op vs baseline",
				pctDelta(r.NsPerOp, base.NsPerOp), pctDelta(r.AllocsPerOp, base.AllocsPerOp))
		}
		fmt.Println()
	}
	if err := writeJSON(*out, got); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if *write {
		if err := writeJSON(*baselinePath, got); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: baseline written to %s\n", *baselinePath)
		return
	}

	improveAgainst := baseline
	if *improveBase != "" {
		frozen, err := loadReport(*improveBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		improveAgainst = frozen
	}
	violations := compare(got, baseline, *tolNS, *tolAllocs)
	violations = append(violations, checkImprovements(got, improveAgainst, expectations, loadReport)...)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance of %s (ns/op ×%.2f, allocs/op ×%.2f)\n",
		len(baseline), *baselinePath, *tolNS, *tolAllocs)
	if len(expectations) > 0 {
		fmt.Printf("benchgate: %d expected improvements held\n", len(expectations))
	}
}
