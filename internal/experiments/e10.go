package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E10CardCounts sweeps the tester-mesh size. Heaviest first so the
// parallel runner starts the long pole immediately.
var E10CardCounts = []int{4, 2}

// E10FrameSizes spans the line-rate extremes plus a mid size.
var E10FrameSizes = []int{64, 512, 1518}

// e10PortsPerCard is the NetFPGA-10G port count every mesh card uses.
const e10PortsPerCard = 4

// e10MAC is the station address of mesh endpoint (card, port).
func e10MAC(card, port int) packet.MAC {
	return packet.MAC{0x02, 0x05, 0x17, 0x10, byte(card), byte(port)}
}

// e10DstCard maps mesh flow (card, port) to its destination card: always
// another card (a switch never forwards a frame back out its ingress
// port), cycling port-by-port through every peer so the N·4 flows cover
// the full card mesh while each receive port terminates exactly one flow
// (for a fixed destination (c, j) the source (c-1-(j mod (N-1))) mod N is
// unique).
func e10DstCard(card, port, cards int) int {
	return (card + 1 + port%(cards-1)) % cards
}

// E10TesterMesh is the multi-card scaling sweep the ROADMAP calls the
// next axis beyond E9: N OSNT tester cards (4 ports each) fully meshed
// through one DUT switch, every port generating at 100% of line rate.
// Flow (card i, port j) targets (card e10DstCard(i,j,N), port j), so each
// card exchanges traffic with every other card and each receive port
// terminates exactly one flow. With four cards the DUT carries 16
// line-rate flows: 160 Gb/s aggregate, twice what a single card's
// 80 Gb/s can offer. The DUT's lookup pipeline is provisioned above line
// rate and its FDB pre-learned, so any deviation from perfect scaling
// (mac-rx below N×4×line-rate, or DUT drops) is a real bottleneck, not
// warm-up noise.
func E10TesterMesh(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E10: tester mesh — N cards × 4 ports full-mesh through one DUT at line rate",
		Columns: []string{"cards", "frame(B)", "flows", "offered(Mpps)", "mac-rx(Mpps)", "agg(Gb/s)", "dut-drops", "ok"},
	}
	points := len(E10CardCounts) * len(E10FrameSizes)
	tbl.Rows = sweeper().Rows(points, func(i int) [][]string {
		cards := E10CardCounts[i/len(E10FrameSizes)]
		fs := E10FrameSizes[i%len(E10FrameSizes)]
		flows := cards * e10PortsPerCard

		e := sim.NewEngine()
		b := topo.New().DUT("dut", switchsim.Config{
			Ports: flows,
			// Overspeed lookup: 26 ns for a 64 B frame against its 67.2 ns
			// arrival slot, so the fabric never limits the mesh.
			LookupPerPacket: 10 * sim.Nanosecond,
			LookupPerByte:   sim.Picoseconds(250),
		})
		// Tester port references are formatted once and reused for wiring,
		// monitor attachment and generator setup below.
		refs := make([]string, flows)
		for c := 0; c < cards; c++ {
			name := fmt.Sprintf("card%d", c)
			b.Tester(name, netfpga.Config{Ports: e10PortsPerCard})
			for p := 0; p < e10PortsPerCard; p++ {
				idx := c*e10PortsPerCard + p
				refs[idx] = fmt.Sprintf("%s:%d", name, p)
				b.Duplex(refs[idx], fmt.Sprintf("dut:%d", idx))
			}
		}
		t := b.MustBuild(e)

		// Pre-learn every station so the measurement window starts with a
		// converged FDB instead of a flood transient.
		dut := t.DUT("dut")
		for c := 0; c < cards; c++ {
			for p := 0; p < e10PortsPerCard; p++ {
				dut.Learn(e10MAC(c, p), c*e10PortsPerCard+p)
			}
		}

		var gens []*gen.Generator
		var mons []*mon.Monitor
		for c := 0; c < cards; c++ {
			for p := 0; p < e10PortsPerCard; p++ {
				port := t.Port(refs[c*e10PortsPerCard+p])
				mons = append(mons, t.AttachMonitor(refs[c*e10PortsPerCard+p], mon.Config{SnapLen: 64}))
				spec := probeSpec
				spec.SrcMAC = e10MAC(c, p)
				spec.DstMAC = e10MAC(e10DstCard(c, p, cards), p)
				spec.SrcPort = uint16(5000 + c*e10PortsPerCard + p)
				g, err := gen.New(port, gen.Config{
					Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: fs},
					Spacing: gen.CBRForLoad(fs, wire.Rate10G, 1.0),
					Pool:    wire.DefaultPool,
					Seed:    runner.PointSeed(0xe10, i*64+c*e10PortsPerCard+p),
				})
				if err != nil {
					panic(err)
				}
				g.Start(0)
				gens = append(gens, g)
			}
		}
		e.RunUntil(sim.Time(duration))
		for _, g := range gens {
			g.Stop()
		}
		e.Run() // drain in-flight frames and capture rings

		var offered, macRx uint64
		for _, g := range gens {
			offered += g.Sent().Packets
		}
		for _, m := range mons {
			macRx += m.Seen().Packets
		}
		drops := dut.LookupDrops()
		for p := 0; p < dut.NumPorts(); p++ {
			drops += dut.Port(p).Drops()
		}
		secs := duration.Seconds()
		offMpps := float64(offered) / secs / 1e6
		rxMpps := float64(macRx) / secs / 1e6
		gbps := rxMpps * 1e6 * float64(wire.WireBytes(fs)) * 8 / 1e9
		// Linear scaling check: aggregate capture within 0.1% of
		// flows × theoretical line rate, and a lossless DUT.
		ok := drops == 0 && rxMpps*1e6 > wire.MaxPPS(fs, wire.Rate10G)*float64(flows)*0.999
		return [][]string{{
			fmt.Sprintf("%d", cards),
			fmt.Sprintf("%d", fs),
			fmt.Sprintf("%d", flows),
			fmt.Sprintf("%.3f", offMpps),
			fmt.Sprintf("%.3f", rxMpps),
			fmt.Sprintf("%.3f", gbps),
			fmt.Sprintf("%d", drops),
			fmt.Sprintf("%v", ok),
		}}
	})
	return tbl
}
