package analysis_test

import (
	"testing"

	"osnt/internal/analysis"
	"osnt/internal/analysis/analysistest"
)

func TestHotPathAllocCorpus(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPathAlloc, "hotpath")
}
