package fabric

import (
	"strings"
	"testing"

	"osnt/internal/gen"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// The canonical counts: k=4 → 20 switches / 16 hosts, k=8 → 80 / 128,
// and oversubscription thins the agg and core layers, not the hosts.
func TestSpecCounts(t *testing.T) {
	cases := []struct {
		spec             Spec
		switches, hosts  int
		edges, aggs, cor int
	}{
		{Spec{K: 4}, 20, 16, 8, 8, 4},
		{Spec{K: 8}, 80, 128, 32, 32, 16},
		{Spec{K: 8, Oversub: 2}, 56, 128, 32, 16, 8},
		{Spec{K: 4, Oversub: 2}, 14, 16, 8, 4, 2},
	}
	for _, c := range cases {
		if got := c.spec.NumSwitches(); got != c.switches {
			t.Errorf("K=%d o=%d: %d switches, want %d", c.spec.K, c.spec.Oversub, got, c.switches)
		}
		if got := c.spec.NumHosts(); got != c.hosts {
			t.Errorf("K=%d o=%d: %d hosts, want %d", c.spec.K, c.spec.Oversub, got, c.hosts)
		}
		f := MustBuild(sim.NewEngine(), c.spec)
		if len(f.Edges) != c.edges || len(f.Aggs) != c.aggs || len(f.Cores) != c.cor {
			t.Errorf("K=%d o=%d: tiers %d/%d/%d, want %d/%d/%d", c.spec.K, c.spec.Oversub,
				len(f.Edges), len(f.Aggs), len(f.Cores), c.edges, c.aggs, c.cor)
		}
		if len(f.Hosts) != c.hosts {
			t.Errorf("K=%d o=%d: %d placed hosts, want %d", c.spec.K, c.spec.Oversub, len(f.Hosts), c.hosts)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	for _, c := range []struct {
		spec Spec
		frag string
	}{
		{Spec{K: 3}, "even and ≥ 4"},
		{Spec{K: 2}, "even and ≥ 4"},
		{Spec{K: 8, Oversub: 3}, "must divide"},
		{Spec{K: 4, Trunk: -1}, "trunk width"},
	} {
		_, err := Build(sim.NewEngine(), c.spec)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("spec %+v: error %v, want %q", c.spec, err, c.frag)
		}
	}
}

// Placement is a pure function of the spec: coordinates, names, MACs
// and IPs derive from (pod, edge, slot) alone, and the tier map covers
// every switch hop.
func TestDeterministicPlacement(t *testing.T) {
	f := MustBuild(sim.NewEngine(), Spec{K: 4})
	g := MustBuild(sim.NewEngine(), Spec{K: 4})
	for i := range f.Hosts {
		if f.Hosts[i] != g.Hosts[i] {
			t.Fatalf("host %d placement differs across builds: %+v vs %+v", i, f.Hosts[i], g.Hosts[i])
		}
	}
	h := f.Hosts[7] // pod 1, edge 1, slot 1 in a k=4 tree
	if h.Pod != 1 || h.Edge != 1 || h.Slot != 1 {
		t.Fatalf("host 7 placed at (%d,%d,%d), want (1,1,1)", h.Pod, h.Edge, h.Slot)
	}
	for _, name := range f.Edges {
		if f.TierOf(f.Hop(name)) != TierEdge {
			t.Errorf("%s not mapped to edge tier", name)
		}
	}
	for _, name := range f.Aggs {
		if f.TierOf(f.Hop(name)) != TierAgg {
			t.Errorf("%s not mapped to agg tier", name)
		}
	}
	for _, name := range f.Cores {
		if f.TierOf(f.Hop(name)) != TierCore {
			t.Errorf("%s not mapped to core tier", name)
		}
	}
}

// drive runs a matrix over the fabric at the given per-host load for
// the duration and returns the loss map over the scenario ledger.
func drive(t *testing.T, f *Fabric, m TrafficMatrix, load float64, d sim.Duration) *stats.LossMap {
	t.Helper()
	const frameSize = 512
	e := f.Topology.DUT(f.Edges[0]).Engine
	slot := wire.SerializationTime(frameSize, f.Spec.Rate)
	srcs := f.Sources(m, frameSize)
	var gens []*gen.Generator
	for i, src := range srcs {
		if src == nil {
			continue
		}
		g, err := gen.New(f.HostPort(i), gen.Config{
			Source:         src,
			Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           runner.PointSeed(0xfab, i),
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(0)
		gens = append(gens, g)
	}
	e.RunUntil(sim.Time(d))
	var offered uint64
	for _, g := range gens {
		g.Stop()
		offered += g.Sent().Packets + g.Dropped()
	}
	e.Run()
	return stats.NewLossMap(offered, f.Delivered(), f.Drops())
}

// Pre-learned FDBs mean the very first frame forwards by lookup: after
// a full permutation run at moderate load, no switch has flooded, every
// offered frame is accounted for, and a lossless fabric delivered all
// of them.
func TestPermutationNoFloodsConserved(t *testing.T) {
	e := sim.NewEngine()
	f := MustBuild(e, Spec{K: 4})
	lm := drive(t, f, f.Permutation(), 0.5, sim.Millisecond)
	if lm.Sent == 0 {
		t.Fatal("nothing offered")
	}
	if !lm.Conserved() {
		t.Fatalf("loss not conserved: sent %d delivered %d attributed %d", lm.Sent, lm.Delivered, lm.Attributed())
	}
	for _, name := range append(append(append([]string{}, f.Edges...), f.Aggs...), f.Cores...) {
		if n := f.Topology.DUT(name).Floods(); n != 0 {
			t.Fatalf("%s flooded %d frames despite pre-learned FDB", name, n)
		}
	}
	if lm.Delivered != lm.Sent {
		t.Fatalf("permutation at 0.5 load lost frames: sent %d delivered %d", lm.Sent, lm.Delivered)
	}
}

// Incast past the fan-in knee must lose frames, and every loss must
// land on the receivers' edge switches: the tier reduction attributes
// all of it to the edge tier and Σ tiers equals the ledger total.
func TestIncastDropsAtEdgeTier(t *testing.T) {
	e := sim.NewEngine()
	f := MustBuild(e, Spec{K: 4})
	lm := drive(t, f, f.Incast(4), 0.9, sim.Millisecond)
	if !lm.Conserved() {
		t.Fatalf("loss not conserved: sent %d delivered %d attributed %d", lm.Sent, lm.Delivered, lm.Attributed())
	}
	if lm.Attributed() == 0 {
		t.Fatal("4:1 incast at 0.9 load dropped nothing")
	}
	tiers := f.TierDrops()
	var sum uint64
	for _, n := range tiers {
		sum += n
	}
	if sum != f.Drops().Total() {
		t.Fatalf("tier reduction lost drops: Σ %d, ledger %d", sum, f.Drops().Total())
	}
	// Convergence pressure lands mostly on the receivers' edge downlinks
	// (the aggs' own downlinks to those edges absorb the rest; nothing
	// reaches the cores of a 4:1 in-tree incast).
	if tiers[TierEdge] <= tiers[TierAgg] || tiers[TierCore] != 0 {
		t.Fatalf("incast drop profile: edge %d, agg %d, core %d, host %d (attributed %d)",
			tiers[TierEdge], tiers[TierAgg], tiers[TierCore], tiers[TierHost], lm.Attributed())
	}
}

// A trunked fabric (every inter-switch link a 2-cable LAG) builds
// through topo group links and still conserves under permutation load.
func TestTrunkedFabric(t *testing.T) {
	e := sim.NewEngine()
	f := MustBuild(e, Spec{K: 4, Trunk: 2})
	lm := drive(t, f, f.Permutation(), 0.5, sim.Millisecond)
	if !lm.Conserved() || lm.Delivered == 0 {
		t.Fatalf("trunked fabric: sent %d delivered %d attributed %d", lm.Sent, lm.Delivered, lm.Attributed())
	}
}

// Matrix shapes: permutation is a full derangement, incast groups are
// silent-receiver fan-ins, hot-spot aims a quarter of every sender's
// load at host 0.
func TestMatrixShapes(t *testing.T) {
	f := MustBuild(sim.NewEngine(), Spec{K: 4})
	perm := f.Permutation()
	if perm.Senders() != len(f.Hosts) {
		t.Fatalf("permutation senders %d, want %d", perm.Senders(), len(f.Hosts))
	}
	for i, d := range perm.Dests {
		if len(d) != 1 || d[0] == i {
			t.Fatalf("permutation host %d → %v", i, d)
		}
		if f.Hosts[i].Pod == f.Hosts[d[0]].Pod {
			t.Fatalf("permutation pair %d→%d stays in pod %d", i, d[0], f.Hosts[i].Pod)
		}
	}
	in := f.Incast(4)
	if got := in.Senders(); got != 12 {
		t.Fatalf("incast(4) on 16 hosts: %d senders, want 12", got)
	}
	if len(in.Dests[0]) != 0 || len(in.Dests[5]) != 0 {
		t.Fatal("incast receivers must be silent")
	}
	hs := f.HotSpot()
	for i, d := range hs.Dests {
		if i == 0 {
			continue
		}
		hot := 0
		for _, dst := range d {
			if dst == 0 {
				hot++
			}
		}
		want := 1
		if perm.Dests[i][0] == 0 {
			want = hotSpotSlots // host 0 already is its permutation partner
		}
		if len(d) != hotSpotSlots || hot != want {
			t.Fatalf("hot-spot host %d schedule %v", i, d)
		}
	}
}

// Sources compiles a schedule into looping, pool-friendly templates:
// per sender, slots × flowsPerSlot frames, silent hosts nil.
func TestSourcesCompile(t *testing.T) {
	f := MustBuild(sim.NewEngine(), Spec{K: 4})
	srcs := f.Sources(f.Incast(4), 256)
	silent, sending := 0, 0
	for _, s := range srcs {
		if s == nil {
			silent++
			continue
		}
		sending++
		if len(s.Frames) != flowsPerSlot || !s.Loop {
			t.Fatalf("source shape: %d frames, loop %v", len(s.Frames), s.Loop)
		}
		for _, fr := range s.Frames {
			if fr.Size != 256 {
				t.Fatalf("frame size %d, want 256", fr.Size)
			}
		}
	}
	if sending != 12 || silent != 4 {
		t.Fatalf("sources: %d sending / %d silent, want 12/4", sending, silent)
	}
}
