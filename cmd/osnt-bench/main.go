// Command osnt-bench regenerates the paper's evaluation: every experiment
// table from DESIGN.md (E1–E8, plus the scaling sweeps E9 multi-port,
// E10 tester mesh, E11 40G ports, E12 mixed-rate fan-in, E13 multi-DUT
// chain, E14 100G multi-queue capture, E15 oversubscribed ECMP fabric,
// E16 per-hop loss attribution, E17 per-flow analytics over merged
// multi-queue capture, E18 frame-train coalescing, E19 synthesized
// fat-tree fabrics and E20 sharded conservative-lookahead execution)
// printed to stdout.
// Use -e to select a single experiment,
// -workers to bound sweep parallelism (tables are byte-identical at any
// worker count), -train to override the frame-train cap of the
// batching experiments (0 keeps each experiment's own setting) and
// -shards to cap the shard axis of the sharded experiment (rows that
// remain are byte-identical at any cap).
//
// Usage:
//
//	osnt-bench                    # run everything, sweeps parallel
//	osnt-bench -e e3              # Demo Part I only
//	osnt-bench -workers 1         # serial reference run
//	osnt-bench -losses            # per-hop/per-reason loss attribution table
//	osnt-bench -list              # list experiment ids
//	osnt-bench -write-experiments # regenerate EXPERIMENTS.md tables in place
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"osnt/internal/experiments"
	"osnt/internal/stats"
)

var runners = []struct {
	id   string
	desc string
	run  func() *stats.Table
}{
	{"e1", "line-rate generation vs frame size", func() *stats.Table { return experiments.E1LineRate(0) }},
	{"e2", "GPS clock discipline", func() *stats.Table { return experiments.E2ClockDiscipline(0) }},
	{"e3", "legacy switch latency vs load (Demo Part I)", func() *stats.Table { return experiments.E3SwitchLatency(0) }},
	{"e4", "flow_mod control vs data plane latency (Demo Part II)", experiments.E4FlowModLatency},
	{"e5", "forwarding consistency during updates (Demo Part II)", experiments.E5Consistency},
	{"e6", "timestamp noise: hardware vs software", func() *stats.Table { return experiments.E6TimestampNoise(0) }},
	{"e7", "loss-limited capture path", func() *stats.Table { return experiments.E7CapturePath(0) }},
	{"e8", "control channel under dataplane load", experiments.E8ControlUnderLoad},
	{"e9", "multi-port scaling: 1/2/4/8 gen→mon pairs at line rate", func() *stats.Table { return experiments.E9PortScaling(0) }},
	{"e10", "tester mesh: 2/4 cards full-mesh through a DUT", func() *stats.Table { return experiments.E10TesterMesh(0) }},
	{"e11", "40G ports: gen→mon pairs at 40 Gb/s line rate", func() *stats.Table { return experiments.E11Rate40G(0) }},
	{"e12", "mixed-rate fan-in: 4×10G into a 40G uplink through a converting DUT", func() *stats.Table { return experiments.E12MixedRateFanIn(0) }},
	{"e13", "multi-DUT chain: per-hop latency decomposition over 1-4 switches", func() *stats.Table { return experiments.E13MultiDUTChain(0) }},
	{"e14", "100G capture: 1/2/4/8 DMA queues vs the loss-limited host path", func() *stats.Table { return experiments.E14Capture100G(0) }},
	{"e15", "oversubscribed fabric: 4×40G leaves ECMP-sprayed over 2×40G uplinks", func() *stats.Table { return experiments.E15Oversubscribed(0) }},
	{"e16", "per-hop loss attribution through a 4-deep converting chain", func() *stats.Table { return experiments.E16LossAttribution(0) }},
	{"e17", "per-flow analytics over merged multi-queue capture: elephants and mice through a lossy DUT", func() *stats.Table { return experiments.E17FlowAnalytics(0) }},
	{"e18", "frame-train coalescing at 100G: events per frame vs train cap, bit-exact across caps", func() *stats.Table { return experiments.E18TrainSpeedup(0) }},
	{"e19", "synthesized fat-trees: k=8/k=4 under permutation/incast/hot-spot with per-tier loss attribution", func() *stats.Table { return experiments.E19FatTree(0) }},
	{"e20", "sharded conservative-lookahead execution: k=8 matrices at 1/2/4/8 shards, digests proven identical", func() *stats.Table { return experiments.E20ShardedFabric(0) }},
}

func validIDs() string {
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.id
	}
	return strings.Join(ids, ", ")
}

func main() {
	sel := flag.String("e", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	train := flag.Int("train", 0, "frame-train cap override for the batching experiments (0 = per-experiment default, 1 = per-frame path)")
	shards := flag.Int("shards", 0, "cap on the shard axis of the sharded experiment (0 = full 1/2/4/8 sweep; N keeps shard counts ≤ N plus the 1-shard reference)")
	losses := flag.Bool("losses", false, "print the per-hop/per-reason loss table of the canonical oversubscribed fabric (E15 at 100% load) and exit")
	writeExp := flag.String("write-experiments", "", "regenerate the generated tables section of the given markdown file (\"\" = off; CI uses EXPERIMENTS.md)")
	flag.Parse()
	experiments.Workers = *workers
	experiments.TrainCap = *train
	experiments.Shards = *shards

	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.id, r.desc)
		}
		return
	}
	if *losses {
		fmt.Println(experiments.E15LossMap(0).Table().String())
		return
	}
	if *writeExp != "" {
		if err := writeExperiments(*writeExp); err != nil {
			fmt.Fprintf(os.Stderr, "osnt-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ran := 0
	for _, r := range runners {
		if *sel != "" && !strings.EqualFold(*sel, r.id) {
			continue
		}
		fmt.Println(r.run().String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "osnt-bench: unknown experiment %q (valid: %s)\n", *sel, validIDs())
		os.Exit(2)
	}
}

// Markers bracketing the generated section of EXPERIMENTS.md. Everything
// between them is owned by -write-experiments; CI regenerates and diffs,
// so the committed tables can never drift from the code.
const (
	tablesBegin = "<!-- tables:begin — generated by `osnt-bench -write-experiments EXPERIMENTS.md`; do not edit -->"
	tablesEnd   = "<!-- tables:end -->"
)

// writeExperiments regenerates every table and splices the result between
// the marker comments of path, leaving the surrounding prose untouched.
func writeExperiments(path string) error {
	old, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(old)
	begin := strings.Index(text, tablesBegin)
	end := strings.Index(text, tablesEnd)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: missing %q / %q markers", path, tablesBegin, tablesEnd)
	}

	var b strings.Builder
	b.WriteString(text[:begin])
	b.WriteString(tablesBegin)
	b.WriteString("\n\n```\n")
	for i, r := range runners {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.run().String())
	}
	b.WriteString("```\n\n")
	b.WriteString(text[end:])
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
