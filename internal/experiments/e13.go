package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E13ChainLengths sweeps the number of DUT switches in series, heaviest
// first for the worker pool.
var E13ChainLengths = []int{4, 3, 2, 1}

// e13Load is the offered Poisson load: high enough that the first hop
// queues visibly, low enough that the chain is lossless.
const e13Load = 0.9

// e13FrameSize is the probe size (FCS-inclusive).
const e13FrameSize = 512

// e13DUT is the per-switch configuration: the E3 switch model (lookup
// capacity just below line rate, jittered service) so queueing is real,
// with per-switch seeds so no two hops share a jitter stream.
func e13DUT(k int) switchsim.Config {
	return switchsim.Config{
		LookupPerByte: sim.Picoseconds(820),
		LookupJitter:  0.5,
		Seed:          uint64(31 + k),
	}
}

// E13MultiDUTChain is the multi-hop sweep: one tester port generates
// Poisson probes through 1–4 store-and-forward switches in series, and
// the capture side decomposes every probe's latency hop by hop from the
// per-hop egress timestamps the chain stamps into each frame
// (wire.HopTrace; hop IDs assigned by topo in declaration order).
//
// hop k is the interval from the previous device's last egress bit to
// switch k's last egress bit (hop 1 starts at the embedded TX timestamp,
// so it also includes the tester's own serialisation); the MAC RX
// timestamp closes the final hop exactly, since the chain's cables have
// zero propagation delay. The decomposition shows where the budget goes:
// hop 1 absorbs the M/D/1-style queueing of the raw Poisson stream,
// while later hops receive traffic already smoothed by the upstream
// egress serialiser and sit much closer to the unloaded forwarding
// latency — end-to-end totals alone cannot show that asymmetry.
func E13MultiDUTChain(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 20 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E13: multi-DUT chain — per-hop latency decomposition (512B Poisson at 90% load)",
		Columns: []string{"switches", "hop1(µs)", "hop2(µs)", "hop3(µs)", "hop4(µs)", "total(µs)", "p99(µs)", "loss(%)"},
	}
	tbl.Rows = sweeper().Rows(len(E13ChainLengths), func(i int) [][]string {
		n := E13ChainLengths[i]
		e := sim.NewEngine()
		b := topo.New().Tester("osnt", netfpga.Config{Ports: 2})
		for k := 1; k <= n; k++ {
			b.DUT(fmt.Sprintf("sw%d", k), e13DUT(k))
		}
		b.Link("osnt:0", "sw1:0")
		for k := 1; k < n; k++ {
			b.Link(fmt.Sprintf("sw%d:1", k), fmt.Sprintf("sw%d:0", k+1))
		}
		b.Link(fmt.Sprintf("sw%d:1", n), "osnt:1")
		t := b.MustBuild(e)

		spec := probeSpec
		for k := 1; k <= n; k++ {
			t.DUT(fmt.Sprintf("sw%d", k)).Learn(spec.DstMAC, 1)
		}

		perHop := stats.NewPerHop(n)
		total := stats.NewHistogram()
		// The decomposition measures the chain, not the capture ring, so
		// no probe may be lost to DMA: the shared idealised host applies.
		m := t.AttachMonitor("osnt:1", idealCapture(func(rec mon.Record) {
			ts, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset)
			if !ok || rec.Trace.Len() != n {
				return
			}
			prev := ts.Sim()
			for h := 0; h < rec.Trace.Len(); h++ {
				at := rec.Trace.At(h).At
				perHop.Record(h, int64(at.Sub(prev)))
				prev = at
			}
			total.Record(int64(rec.TS.Sub(ts)))
		}))

		slot := wire.SerializationTime(e13FrameSize, wire.Rate10G)
		g, err := gen.New(t.Port(osntPorts[0]), gen.Config{
			Source:         &gen.UDPFlowSource{Spec: spec, FrameSize: e13FrameSize},
			Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / e13Load)},
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           runner.PointSeed(0xe13, i),
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		e.RunUntil(sim.Time(duration))
		g.Stop()
		e.Run() // drain the chain

		offered := g.Sent().Packets
		lossPct := 0.0
		if offered > 0 {
			lossPct = float64(offered-m.Seen().Packets) / float64(offered) * 100
		}
		hopCell := func(h int) string {
			if h >= n {
				return "-"
			}
			return fmt.Sprintf("%.2f", perHop.Hist(h).Mean()/1e6)
		}
		return [][]string{{
			fmt.Sprintf("%d", n),
			hopCell(0), hopCell(1), hopCell(2), hopCell(3),
			fmt.Sprintf("%.2f", total.Mean()/1e6),
			fmt.Sprintf("%.2f", float64(total.Percentile(99))/1e6),
			fmt.Sprintf("%.2f", lossPct),
		}}
	})
	return tbl
}
