package oflops

import (
	"testing"

	"osnt/internal/ofswitch"
	"osnt/internal/sim"
	"osnt/internal/snmp"
)

func TestFlowInsertLatencyModule(t *testing.T) {
	r := NewRunner(Config{})
	m := &FlowInsertLatency{Rules: 16}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	ctl := m.ControlLatency()
	if ctl <= 0 {
		t.Fatal("no control-plane ack")
	}
	// 16 flow_mods × 150µs + barrier + 2×100µs channel ≈ 2.7ms.
	if ctl < 2*sim.Millisecond || ctl > 5*sim.Millisecond {
		t.Fatalf("control latency %v", ctl)
	}
	h, seen := m.DataLatencies()
	if seen != 16 {
		t.Fatalf("rules confirmed %d/16", seen)
	}
	// Data plane lags control by ≈HWInstallDelay (1.5ms): the first rule
	// becomes active ≈150µs+100µs+1.5ms ≈ 1.75ms after start; the LAST one
	// after all 16 flow_mods processed. Median must exceed the control
	// path start and the max must exceed the barrier ack (hardware lag).
	if h.Max() <= int64(ctl) {
		t.Fatalf("slowest dataplane install (%d ps) should exceed barrier ack (%d ps)",
			h.Max(), int64(ctl))
	}
	if h.Min() < int64(sim.Millisecond) {
		t.Fatalf("fastest dataplane install %d ps implausibly fast", h.Min())
	}
}

func TestFlowInsertLatencyScalesWithBatch(t *testing.T) {
	run := func(n int) sim.Duration {
		r := NewRunner(Config{})
		m := &FlowInsertLatency{Rules: n}
		if err := r.Run(m); err != nil {
			t.Fatal(err)
		}
		return m.ControlLatency()
	}
	small := run(4)
	large := run(64)
	if large < small*8 {
		t.Fatalf("batch 64 (%v) should cost ≈16x batch 4 (%v)", large, small)
	}
}

func TestFlowModifyLatencyModule(t *testing.T) {
	r := NewRunner(Config{})
	m := &FlowModifyLatency{Rules: 8}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	if m.ControlLatency() <= 0 {
		t.Fatal("no control ack")
	}
	h, seen := m.DataLatencies()
	if seen != 8 {
		t.Fatalf("rules confirmed %d/8", seen)
	}
	if h.Count() != 8 {
		t.Fatal("histogram count")
	}
}

func TestForwardingConsistencyModule(t *testing.T) {
	r := NewRunner(Config{})
	m := &ForwardingConsistency{Rules: 64}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.OldTotal == 0 || res.NewTotal == 0 {
		t.Fatalf("markers missing: %+v", res)
	}
	// The demo's point: old-rule packets appear AFTER the barrier ack
	// because the hardware lags the control plane.
	if res.OldAfterBarrier == 0 {
		t.Fatal("no forwarding inconsistency observed despite HW install lag")
	}
	if res.TransitionWindow <= 0 {
		t.Fatal("no mixed-state transition window")
	}
}

func TestForwardingConsistencyVanishesWithoutHWLag(t *testing.T) {
	// Ablation: with (near) zero hardware install delay the inconsistency
	// disappears.
	r := NewRunner(Config{Switch: ofswitch.Config{HWInstallDelay: sim.Nanosecond}})
	m := &ForwardingConsistency{Rules: 64}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.OldAfterBarrier != 0 {
		t.Fatalf("%d old-rule packets after barrier with no HW lag", res.OldAfterBarrier)
	}
}

func TestPacketInLatencyModule(t *testing.T) {
	r := NewRunner(Config{})
	m := &PacketInLatency{Count: 20}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	h := m.Latencies()
	if h.Count() != 20 {
		t.Fatalf("samples %d", h.Count())
	}
	// ≈ wire + pipeline + PacketInCost(80µs) + channel 100µs ≈ 180µs.
	mean := sim.Duration(h.Mean())
	if mean < 150*sim.Microsecond || mean > 250*sim.Microsecond {
		t.Fatalf("packet-in latency %v", mean)
	}
}

func TestEchoUnderLoadInflates(t *testing.T) {
	run := func(load float64) float64 {
		r := NewRunner(Config{Switch: ofswitch.Config{
			DataplaneCPUTax: 150 * sim.Nanosecond, // CPU saturates near line rate
		}})
		m := &EchoUnderLoad{Load: load, Echoes: 10}
		if err := r.Run(m); err != nil {
			t.Fatal(err)
		}
		return m.RTTs().Mean()
	}
	idle := run(0)
	loaded := run(0.9)
	if loaded < idle*2 {
		t.Fatalf("echo RTT idle %.0f ps vs loaded %.0f ps — no control starvation", idle, loaded)
	}
}

func TestSNMPChannel(t *testing.T) {
	r := NewRunner(Config{})
	m := &FlowInsertLatency{Rules: 4}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	ctx := r.Context()
	// The switch's OF port 1 received every probe the generator emitted.
	rx, ok := ctx.SNMPGet(snmp.OIDIfInPackets.Append(1))
	if !ok || rx == 0 {
		t.Fatalf("SNMP ifInPackets: %d %v", rx, ok)
	}
	tx, ok := ctx.SNMPGet(snmp.OIDIfOutPackets.Append(2))
	if !ok || tx == 0 {
		t.Fatalf("SNMP ifOutPackets: %d %v", tx, ok)
	}
	if tx > rx {
		t.Fatalf("forwarded %d > received %d", tx, rx)
	}
	if _, ok := ctx.SNMPGet(snmp.MustOID("1.3.9.9")); ok {
		t.Fatal("bogus OID resolved")
	}
}

func TestRunnerTimeout(t *testing.T) {
	// A module that never finishes must stop at the virtual deadline.
	r := NewRunner(Config{Timeout: 50 * sim.Millisecond})
	m := &PacketInLatency{Count: 1 << 30, ProbeGap: sim.Second}
	if err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	if r.Context().Engine.Now() > 60*sim.Time(sim.Millisecond) {
		t.Fatalf("ran to %v, deadline 50ms", r.Context().Engine.Now())
	}
}

func TestRuleHelpers(t *testing.T) {
	if RuleIP(0x0102) != (RuleIP(0x0102)) {
		t.Fatal("RuleIP determinism")
	}
	ip := RuleIP(258)
	if ip[2] != 1 || ip[3] != 2 {
		t.Fatalf("RuleIP encoding %v", ip)
	}
	m := RuleMatch(7)
	if m.NwDstWildBits() != 0 {
		t.Fatal("RuleMatch should be an exact dst")
	}
	spec := ProbeSpec
	spec.DstIP = RuleIP(7)
	spec.FrameSize = 128
	rule, ok := probeRule(spec.Build())
	if !ok || rule != 7 {
		t.Fatalf("probeRule %d %v", rule, ok)
	}
}

func BenchmarkFlowInsertModule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(Config{})
		if err := r.Run(&FlowInsertLatency{Rules: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
