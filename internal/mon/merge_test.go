package mon

import (
	"bytes"
	"testing"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// mergeRig wires gen → link → multi-queue monitor with a Merge on top,
// collecting every emitted record (with a private copy of its data,
// honouring the recycle contract).
func mergeRig(t *testing.T, queues []QueueConfig, steer Steer, numFlows int, spacing gen.Spacing, seed uint64) (*sim.Engine, *gen.Generator, *Monitor, *Merge, *[]Record) {
	t.Helper()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 2})
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, card.Port(1)))
	m := Attach(card.Port(1), Config{
		SnapLen:   64,
		HashBytes: packet.HeaderDigestBytes, // headers only: one digest per flow
		Queues:    queues,
		Steer:     steer,
	})
	var out []Record
	g := NewMerge(m, func(rec Record) {
		rec.Data = append([]byte(nil), rec.Data...)
		out = append(out, rec)
	})
	gn, err := gen.New(card.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: numFlows, FrameSize: 64},
		Spacing: spacing,
		Seed:    seed,
		Pool:    wire.DefaultPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	gn.Start(0)
	return e, gn, m, g, &out
}

func assertKeySorted(t *testing.T, recs []Record) {
	t.Helper()
	for i := 1; i < len(recs); i++ {
		a, b := &recs[i-1], &recs[i]
		if !keyLess(a, b) {
			t.Fatalf("record %d key (ts=%v q=%d seq=%d) not above record %d (ts=%v q=%d seq=%d)",
				i, b.TS, b.Queue, b.Seq, i-1, a.TS, a.Queue, a.Seq)
		}
	}
}

// TestMergeSingleQueuePassThrough: with one queue the merge must be an
// ordered pass-through — every delivered record emitted, data intact.
func TestMergeSingleQueuePassThrough(t *testing.T) {
	e, gn, m, g, out := mergeRig(t, nil, SteerHash, 1,
		gen.CBRForLoad(64, wire.Rate10G, 0.5), 1)
	e.RunUntil(sim.Time(200 * sim.Microsecond))
	gn.Stop()
	e.Run()
	g.Flush()
	if got, want := g.Emitted(), m.Delivered().Packets; got != want {
		t.Fatalf("emitted %d of %d delivered", got, want)
	}
	if g.Pending() != 0 {
		t.Fatalf("%d records stuck after Flush", g.Pending())
	}
	assertKeySorted(t, *out)
	sp := spec
	sp.FrameSize = 64
	want := sp.Build()
	for i := range *out {
		if !bytes.Equal((*out)[i].Data, want) {
			t.Fatalf("record %d data corrupted by buffer recycling", i)
		}
	}
}

// TestMergeRoundRobinRestoresOrder: round-robin steering interleaves one
// flow across every queue — the worst case for cross-queue ordering —
// and the merged stream must come back globally timestamp-sorted with
// per-queue drains at different speeds.
func TestMergeRoundRobinRestoresOrder(t *testing.T) {
	queues := []QueueConfig{
		{HostPerPacket: 100 * sim.Nanosecond, RingSize: 1 << 14},
		{HostPerPacket: 1 * sim.Microsecond, RingSize: 1 << 14},
		{HostPerPacket: 3 * sim.Microsecond, RingSize: 1 << 14},
		{HostPerPacket: 300 * sim.Nanosecond, RingSize: 1 << 14},
	}
	e, gn, m, g, out := mergeRig(t, queues, SteerRoundRobin, 1,
		gen.CBRForLoad(64, wire.Rate10G, 1.0), 2)
	e.RunUntil(sim.Time(500 * sim.Microsecond))
	gn.Stop()
	e.Run()
	g.Flush()
	if got, want := g.Emitted(), m.Delivered().Packets; got != want {
		t.Fatalf("emitted %d of %d delivered", got, want)
	}
	if len(*out) < 1000 {
		t.Fatalf("only %d records — rig is miswired", len(*out))
	}
	assertKeySorted(t, *out)
	if g.OrderViolations() != 0 {
		t.Fatalf("merge recorded %d order violations", g.OrderViolations())
	}
	// Round-robin across 4 queues: the merged sequence must rotate
	// through queues in steering order wherever nothing was dropped.
	if m.RingDrops() == 0 {
		for i := 1; i < len(*out); i++ {
			if got, want := (*out)[i].Queue, ((*out)[i-1].Queue+1)%4; got != want {
				t.Fatalf("record %d on queue %d, want %d (steering order lost)", i, got, want)
			}
		}
	}
}

// TestMergeEqualTimestampTieBreak locks the deterministic tie-break
// satellite: equal hardware timestamps across queues must emerge in
// (queue index, per-queue sequence) order. Real MACs cannot latch two
// arrivals into one 6.25 ns quantum on a single port, so the collision
// is injected directly through the port's receive hook.
func TestMergeEqualTimestampTieBreak(t *testing.T) {
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{Ports: 1})
	m := Attach(card.Port(0), Config{
		SnapLen: 64,
		Queues:  make([]QueueConfig, 4),
		Steer:   SteerRoundRobin,
	})
	var out []Record
	g := NewMerge(m, func(rec Record) { out = append(out, rec) })

	data := spec.Build()
	frame := wire.NewFrame(data)
	ts1 := timing.FromSim(sim.Time(10 * sim.Microsecond))
	// Eight same-timestamp arrivals deal round-robin onto queues
	// 0,1,2,3,0,1,2,3 — two per queue, all carrying ts1.
	for i := 0; i < 8; i++ {
		card.Port(0).OnReceive(frame, ts1.Sim(), ts1)
	}
	e.Run() // drain every queue
	g.Flush()

	if len(out) != 8 {
		t.Fatalf("emitted %d records, want 8", len(out))
	}
	// (TS, Queue, Seq) with all-equal TS: queue-major, then sequence.
	wantQ := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, rec := range out {
		if rec.TS != ts1 {
			t.Fatalf("record %d ts %v, want %v", i, rec.TS, ts1)
		}
		if rec.Queue != wantQ[i] {
			t.Fatalf("record %d on queue %d, want %d (tie-break broken)", i, rec.Queue, wantQ[i])
		}
		if rec.Seq != uint64(i%2) {
			t.Fatalf("record %d seq %d, want %d", i, rec.Seq, i%2)
		}
	}
	if g.OrderViolations() != 0 {
		t.Fatalf("merge recorded %d order violations", g.OrderViolations())
	}

	// A later timestamp releases the tied batch even mid-run: emit four
	// more at ts2 and confirm nothing reordered across the boundary.
	ts2 := ts1.Add(100 * sim.Nanosecond)
	for i := 0; i < 4; i++ {
		card.Port(0).OnReceive(frame, ts2.Sim(), ts2)
	}
	e.Run()
	g.Flush()
	if len(out) != 12 {
		t.Fatalf("emitted %d records, want 12", len(out))
	}
	assertKeySorted(t, out)
}

// TestMergePropertyRandomTraffic is the merge's property test: random
// RSS-steered traffic across 1–8 queues with randomised per-queue drain
// rates and Poisson arrivals. The merged stream must be globally
// (TS, Queue, Seq)-sorted, complete, and per-flow order-preserving
// (each flow pinned to one queue with strictly increasing sequence).
func TestMergePropertyRandomTraffic(t *testing.T) {
	rnd := sim.NewRand(0x0517e17)
	for trial := 0; trial < 8; trial++ {
		nq := 1 + rnd.Intn(8)
		queues := make([]QueueConfig, nq)
		for i := range queues {
			// 50 ns – 3.2 µs per record: some queues race ahead, some lag
			// far behind line rate, so deliveries interleave chaotically.
			queues[i] = QueueConfig{
				HostPerPacket: sim.Duration(50+rnd.Intn(3150)) * sim.Nanosecond,
				RingSize:      1 << 14,
			}
		}
		numFlows := 1 + rnd.Intn(32)
		load := 0.3 + 0.6*rnd.Float64()
		slot := wire.SerializationTime(64, wire.Rate10G)
		e, gn, m, g, out := mergeRig(t, queues, SteerHash, numFlows,
			gen.Poisson{Mean: sim.Duration(float64(slot) / load)}, uint64(trial)+100)
		e.RunUntil(sim.Time(300 * sim.Microsecond))
		gn.Stop()
		e.Run()
		g.Flush()

		recs := *out
		if got, want := g.Emitted(), m.Delivered().Packets; got != want {
			t.Fatalf("trial %d: emitted %d of %d delivered", trial, got, want)
		}
		if g.Pending() != 0 {
			t.Fatalf("trial %d: %d records stuck after Flush", trial, g.Pending())
		}
		if len(recs) == 0 {
			t.Fatalf("trial %d: no records", trial)
		}
		assertKeySorted(t, recs)
		if g.OrderViolations() != 0 {
			t.Fatalf("trial %d: %d order violations", trial, g.OrderViolations())
		}
		// Per-flow order: RSS pins each digest to one queue, so each
		// flow's records must stay in strictly increasing Seq (= its
		// arrival order) on a single queue.
		flowQueue := make(map[uint64]int)
		flowSeq := make(map[uint64]uint64)
		flowTS := make(map[uint64]timing.Timestamp)
		for i, rec := range recs {
			if q, ok := flowQueue[rec.Hash]; ok && q != rec.Queue {
				t.Fatalf("trial %d: flow %x hops queues %d → %d", trial, rec.Hash, q, rec.Queue)
			}
			flowQueue[rec.Hash] = rec.Queue
			if s, ok := flowSeq[rec.Hash]; ok && rec.Seq <= s {
				t.Fatalf("trial %d: flow %x seq %d after %d at record %d (per-flow order lost)",
					trial, rec.Hash, rec.Seq, s, i)
			}
			flowSeq[rec.Hash] = rec.Seq
			if ts, ok := flowTS[rec.Hash]; ok && rec.TS < ts {
				t.Fatalf("trial %d: flow %x timestamp went backwards", trial, rec.Hash)
			}
			flowTS[rec.Hash] = rec.TS
		}
	}
}
