package wire

import (
	"bytes"
	"testing"

	"osnt/internal/race"
	"osnt/internal/sim"
)

func TestPoolGetSizesFrame(t *testing.T) {
	p := NewPool()
	f := p.Get(60)
	if len(f.Data) != 60 || f.Size != 60+FCSLen {
		t.Fatalf("Get(60): len=%d size=%d", len(f.Data), f.Size)
	}
	f.SrcPort = 3
	f.Release()
	g := p.Get(10)
	if len(g.Data) != 10 || g.Size != 10+FCSLen || g.SrcPort != 0 {
		t.Fatalf("recycled frame not reset: len=%d size=%d src=%d", len(g.Data), g.Size, g.SrcPort)
	}
}

func TestReleaseIsIdempotentAndSafeOnUnpooled(t *testing.T) {
	NewFrame([]byte{1, 2, 3}).Release() // unpooled: no-op
	p := NewPool()
	f := p.Get(8)
	f.Release()
	f.Release() // second release: no-op, must not double-insert
}

func TestCopyFromReusesBuffer(t *testing.T) {
	tmpl := NewFrame(bytes.Repeat([]byte{0xAB}, 100))
	tmpl.SrcPort = 7
	p := NewPool()
	f := p.Get(200)
	buf := &f.Data[0]
	f.CopyFrom(tmpl)
	if &f.Data[0] != buf {
		t.Fatal("CopyFrom reallocated a sufficient buffer")
	}
	if !bytes.Equal(f.Data, tmpl.Data) || f.Size != tmpl.Size || f.SrcPort != 7 {
		t.Fatalf("copy mismatch: len=%d size=%d src=%d", len(f.Data), f.Size, f.SrcPort)
	}
	// Growing copy must still work.
	small := p.Get(4)
	small.CopyFrom(tmpl)
	if !bytes.Equal(small.Data, tmpl.Data) {
		t.Fatal("growing CopyFrom lost bytes")
	}
}

func TestCloneOfPooledFrameIsUnpooled(t *testing.T) {
	p := NewPool()
	f := p.Get(16)
	c := f.Clone()
	if c.pool != nil {
		t.Fatal("clone inherited the pool")
	}
	c.Release() // must be a no-op
}

func TestPoolStatsTrackRecycling(t *testing.T) {
	p := NewPool()
	f := p.Get(64)
	f.Release()
	p.Get(64)
	gets, puts, fresh := p.Stats()
	if gets != 2 || puts != 1 {
		t.Fatalf("gets=%d puts=%d", gets, puts)
	}
	if fresh > gets {
		t.Fatalf("fresh=%d > gets=%d", fresh, gets)
	}
}

// Steady-state link delivery must not allocate: the delivery record, its
// event, and its closure are all recycled per link.
func TestLinkDeliveryZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; strict alloc bound only holds in normal builds")
	}
	e := sim.NewEngine()
	p := NewPool()
	var got int
	sink := EndpointFunc(func(f *Frame, _, _ sim.Time) {
		got++
		f.Release()
	})
	l := NewLink(e, Rate10G, 0, sink)
	send := func(n int) {
		for i := 0; i < n; i++ {
			l.Transmit(p.Get(60))
		}
		e.Run()
	}
	send(100) // warm pool and free lists
	avg := testing.AllocsPerRun(10, func() { send(100) })
	if avg > 2 {
		t.Errorf("steady-state transmit+delivery allocates %.1f per 100 frames", avg)
	}
	if got < 1100 {
		t.Fatalf("delivered %d", got)
	}
}
