package mon

import (
	"osnt/internal/ring"
	"osnt/internal/timing"
)

// Merge reconstructs the global capture order of a multi-queue monitor.
//
// The multi-queue DMA engine trades order for throughput: each queue's
// host core delivers records in queue-local FIFO order, and records of
// different queues interleave however their drain events happen to fire
// — which is exactly the cross-queue ordering gap real RSS capture
// stacks have. Any stateful consumer (flow tables, sequence trackers,
// ordered PCAP output) needs the streams put back together by hardware
// timestamp, and it needs the merge to be deterministic when two queues
// hold the same timestamp.
//
// Merge is that k-way merge, streaming and allocation-free at steady
// state. It takes over every queue's sink, buffers each queue's
// deliveries in a head-indexed FIFO, and emits records in ascending
// (TS, Queue, Seq) key order — timestamp first, then queue index, then
// per-queue admission sequence, so equal hardware timestamps across
// queues break ties identically at any queue count and on any engine
// schedule. Emission is eager: a buffered record is released as soon as
// no other queue can still produce a smaller key, which the monitor's
// timestamp watermark (timestamps are latched in arrival order) and the
// per-queue ring occupancy decide exactly:
//
//   - every queue with a non-empty buffer will only ever append larger
//     keys (per-queue keys are strictly increasing), and
//   - a queue with an empty buffer can only produce a smaller key if
//     its descriptor ring still holds undelivered records, or if the
//     candidate's timestamp has not fallen below the watermark (a
//     future arrival could still tie it and steer to a lower queue).
//
// Records held back by the watermark at the end of a run are released
// by Flush, which callers invoke once the engine has drained.
//
// Record data lifetime: the per-queue rings recycle their buffers as
// soon as the queue sink returns, so Merge copies each record's bytes
// into its own free-list-recycled buffers and recycles them again after
// the merged sink returns. The sink must therefore copy anything it
// keeps past the callback — the same contract as Config.RecycleRecords.
type Merge struct {
	m    *Monitor
	sink func(Record)

	bufs []ring.FIFO[Record]
	free [][]byte

	emitted uint64

	// Order self-check: the last emitted key, and how many emissions
	// compared below it. Always zero unless the merge is misused (e.g.
	// Flush while traffic is still flowing).
	lastTS    timing.Timestamp
	lastQ     int
	lastSeq   uint64
	any       bool
	violation uint64
}

// NewMerge attaches a merging stage to the monitor: every capture
// queue's records are re-interleaved into ascending (TS, Queue, Seq)
// order and delivered to sink. It takes over all queue sinks (replacing
// Config.Sink and any QueueConfig.Sink) and forces per-queue buffer
// recycling, since the merge owns its own copies. Attach it before
// traffic runs; call Flush after the engine drains to release the
// records the watermark held back.
func NewMerge(m *Monitor, sink func(Record)) *Merge {
	if sink == nil {
		panic("mon: NewMerge needs a sink")
	}
	g := &Merge{m: m, sink: sink, bufs: make([]ring.FIFO[Record], len(m.queues))}
	for i := range m.queues {
		q := &m.queues[i]
		q.sink = g.push
		q.recycle = true
	}
	return g
}

// Emitted returns how many records have been delivered to the merged
// sink.
func (g *Merge) Emitted() uint64 { return g.emitted }

// Pending returns how many delivered records are buffered inside the
// merge, waiting for the watermark (Flush releases them).
func (g *Merge) Pending() int {
	n := 0
	for i := range g.bufs {
		n += g.bufs[i].Len()
	}
	return n
}

// OrderViolations counts emissions whose key compared below their
// predecessor's. It is zero by construction unless the merge is misused
// (Flush mid-traffic); experiments assert it to keep the watermark
// logic honest.
func (g *Merge) OrderViolations() uint64 { return g.violation }

// keyLess orders records by (TS, Queue, Seq).
func keyLess(a, b *Record) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	if a.Queue != b.Queue {
		return a.Queue < b.Queue
	}
	return a.Seq < b.Seq
}

// push is the per-queue sink: copy the record's bytes (the queue ring
// recycles the original as soon as we return) and advance the merge.
func (g *Merge) push(rec Record) {
	b := g.getBuf(len(rec.Data))
	copy(b, rec.Data)
	rec.Data = b
	g.bufs[rec.Queue].Push(rec)
	g.advance(false)
}

// Flush emits everything still buffered, in key order. Call it once the
// engine has drained: the final records of a run sit at the watermark
// (no later arrival exists to push it past them), so only the caller
// knows they are safe to release.
func (g *Merge) Flush() { g.advance(true) }

// advance emits buffered records for as long as the head of some queue
// buffer is provably the global minimum (always, when final).
func (g *Merge) advance(final bool) {
	for {
		min := -1
		for i := range g.bufs {
			if g.bufs[i].Len() == 0 {
				continue
			}
			if min < 0 || keyLess(g.bufs[i].Peek(), g.bufs[min].Peek()) {
				min = i
			}
		}
		if min < 0 {
			return
		}
		if !final {
			head := g.bufs[min].Peek()
			hold := false
			for i := range g.bufs {
				if i == min || g.bufs[i].Len() > 0 {
					continue
				}
				// Queue i has delivered everything it buffered. It can
				// still produce a key below head's if undelivered
				// records sit in its descriptor ring, or if head's
				// timestamp is not yet strictly below the watermark (a
				// future arrival with an equal timestamp could steer
				// to it and, on a lower queue index, sort first).
				if g.m.queues[i].pending() > 0 || head.TS >= g.m.maxTS {
					hold = true
					break
				}
			}
			if hold {
				return
			}
		}
		g.emit(g.bufs[min].Pop())
	}
}

// emit delivers one record and recycles its buffer.
func (g *Merge) emit(rec Record) {
	if g.any {
		last := Record{TS: g.lastTS, Queue: g.lastQ, Seq: g.lastSeq}
		if keyLess(&rec, &last) {
			g.violation++
		}
	}
	g.any, g.lastTS, g.lastQ, g.lastSeq = true, rec.TS, rec.Queue, rec.Seq
	g.emitted++
	g.sink(rec)
	g.free = append(g.free, rec.Data[:0])
}

// getBuf returns a buffer of length n from the merge's free list.
func (g *Merge) getBuf(n int) []byte {
	if k := len(g.free); k > 0 {
		b := g.free[k-1]
		g.free[k-1] = nil
		g.free = g.free[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// pending returns the queue's undelivered ring occupancy.
func (q *queue) pending() int { return len(q.ring) - q.head }
