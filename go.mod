module osnt

go 1.22
