// Package wire defines the physical-layer vocabulary shared by every
// simulated device: Ethernet frames, port endpoints, and point-to-point
// links with serialization and propagation delay. The arithmetic here is
// what makes "full line-rate regardless of packet size" a checkable
// property rather than a claim: a 10GBASE-R MAC can emit one 64-byte frame
// every 67.2 ns and no simulated component is allowed to beat that.
package wire

import (
	"fmt"

	"osnt/internal/ring"
	"osnt/internal/sim"
)

// Ethernet framing constants. Frame data in this codebase excludes the
// 4-byte FCS; the conventional "frame size" used in benchmarks (64–1518 B)
// includes it, so WireLen adds FCS plus preamble, SFD and the minimum
// inter-frame gap.
const (
	PreambleSFD = 8  // preamble (7 B) + start frame delimiter (1 B)
	FCSLen      = 4  // frame check sequence
	IFG         = 12 // minimum inter-frame gap in byte times

	// PerFrameOverhead is the extra byte times consumed on the wire by
	// each frame beyond its FCS-inclusive size.
	PerFrameOverhead = PreambleSFD + IFG

	// MinFrame and MaxFrame bound the FCS-inclusive Ethernet frame size
	// (untagged).
	MinFrame = 64
	MaxFrame = 1518
)

// Rate is a link speed in bits per second.
type Rate int64

// Standard rates.
const (
	Rate1G   Rate = 1_000_000_000
	Rate10G  Rate = 10_000_000_000
	Rate40G  Rate = 40_000_000_000
	Rate100G Rate = 100_000_000_000
)

// ByteTime returns the time to serialise one byte at rate r.
func (r Rate) ByteTime() sim.Duration {
	return sim.Duration(8 * picosPerSecond / int64(r))
}

const picosPerSecond = 1_000_000_000_000

// String formats the rate in Gb/s or Mb/s.
func (r Rate) String() string {
	if r >= 1_000_000_000 {
		return fmt.Sprintf("%gGb/s", float64(r)/1e9)
	}
	return fmt.Sprintf("%gMb/s", float64(r)/1e6)
}

// FrameSize returns the FCS-inclusive size of a frame whose payload bytes
// (header through payload, no FCS) are data.
func FrameSize(data []byte) int { return len(data) + FCSLen }

// WireBytes returns the total byte times one frame of FCS-inclusive size
// occupies on the wire, including preamble/SFD and IFG.
func WireBytes(frameSize int) int { return frameSize + PerFrameOverhead }

// SerializationTime returns how long a frame of FCS-inclusive size
// frameSize occupies a link at rate r, including preamble and IFG. For
// 64-byte frames at 10 Gb/s this is exactly 67.2 ns, the 14.88 Mpps
// line-rate figure.
func SerializationTime(frameSize int, r Rate) sim.Duration {
	return sim.Duration(WireBytes(frameSize)) * r.ByteTime()
}

// MaxPPS returns the theoretical maximum packets per second at rate r for
// the given FCS-inclusive frame size.
func MaxPPS(frameSize int, r Rate) float64 {
	return float64(r) / (8 * float64(WireBytes(frameSize)))
}

// MaxHops bounds the per-frame hop trace. Deep enough for any chain the
// experiments measure (E13 tops out at four DUTs); traversals beyond it
// are silently untraced rather than allocating.
const MaxHops = 8

// Hop is one stamped traversal of a forwarding device: the device's hop
// ID and the instant the frame's last bit left its egress port.
type Hop struct {
	Node int
	At   sim.Time
}

// HopTrace is a fixed-capacity record of the forwarding devices a frame
// traversed, stamped by each device's egress path. It is the simulation's
// per-hop instrumentation (the analogue of hardware taps at every hop):
// monitors copy it into capture records so latency can be decomposed hop
// by hop instead of only end to end. Held by value inside Frame, so
// stamping and copying never allocate.
type HopTrace struct {
	stamps [MaxHops]Hop
	n      int
}

// Stamp appends one hop; beyond MaxHops it is dropped.
func (t *HopTrace) Stamp(node int, at sim.Time) {
	if t.n < MaxHops {
		t.stamps[t.n] = Hop{Node: node, At: at}
		t.n++
	}
}

// Len returns the number of recorded hops.
func (t *HopTrace) Len() int { return t.n }

// At returns hop i in traversal order.
func (t *HopTrace) At(i int) Hop { return t.stamps[i] }

// Reset clears the trace.
func (t *HopTrace) Reset() { t.n = 0 }

// Frame is one Ethernet frame in flight. Data excludes the FCS. The Size
// field is the FCS-inclusive frame size, which can exceed len(Data)+4 when
// a monitor has thinned (truncated) the captured bytes but must still
// account for the original wire occupancy.
type Frame struct {
	Data []byte
	Size int // FCS-inclusive original frame size
	// SrcPort is an opaque tag devices may use to remember ingress.
	SrcPort int
	// Trace accumulates per-hop egress timestamps as the frame crosses
	// forwarding devices (see HopTrace).
	Trace HopTrace

	// pool, when non-nil, is where Release returns this frame.
	pool *Pool
}

// NewFrame wraps data (header..payload, no FCS) as a full-length frame.
func NewFrame(data []byte) *Frame {
	return &Frame{Data: data, Size: FrameSize(data)}
}

// Clone returns a deep copy of the frame. Devices that queue frames and
// devices that modify them must not alias each other's buffers. The clone
// is unpooled regardless of the original's origin.
func (f *Frame) Clone() *Frame {
	d := make([]byte, len(f.Data))
	copy(d, f.Data)
	return &Frame{Data: d, Size: f.Size, SrcPort: f.SrcPort, Trace: f.Trace}
}

// CopyFrom overwrites f with t's bytes and metadata, reusing f's buffer
// when it is large enough — the pooled equivalent of t.Clone().
func (f *Frame) CopyFrom(t *Frame) {
	if cap(f.Data) < len(t.Data) {
		f.Data = make([]byte, len(t.Data))
	} else {
		f.Data = f.Data[:len(t.Data)]
	}
	copy(f.Data, t.Data)
	f.Size = t.Size
	f.SrcPort = t.SrcPort
	f.Trace = t.Trace
}

// Release returns a pooled frame to its pool. It is a no-op on unpooled
// frames (and on a second release), so terminal endpoints can call it
// unconditionally. The caller must not touch the frame afterwards.
func (f *Frame) Release() {
	if p := f.pool; p != nil {
		f.pool = nil
		p.put(f)
	}
}

// Endpoint is anything that can accept a frame from a link: a card's RX
// MAC, a switch port, a host NIC.
type Endpoint interface {
	// Receive delivers a frame whose last bit arrived at instant at.
	// start is the instant the first bit arrived, which cut-through
	// devices use to begin forwarding before at.
	Receive(f *Frame, start, at sim.Time)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(f *Frame, start, at sim.Time)

// Receive implements Endpoint.
func (fn EndpointFunc) Receive(f *Frame, start, at sim.Time) { fn(f, start, at) }

// Link is a unidirectional point-to-point fibre at a fixed rate with a
// propagation delay. Transmit models the sending MAC: it serialises the
// frame (busying the link) and schedules delivery at the far end. Frames
// submitted while the link is busy depart back-to-back, exactly like a MAC
// with a queue, so offered load beyond line rate is clipped to line rate.
type Link struct {
	Engine *sim.Engine
	Rate   Rate
	Delay  sim.Duration // propagation delay
	Peer   Endpoint

	busyUntil sim.Time
	txFrames  uint64
	txBytes   uint64 // wire bytes including overhead

	// Loss attribution: a link with no peer is an unterminated fibre —
	// frames serialised into it vanish. That used to be silent; now it
	// is counted and (when a drop site is attached) attributed.
	drops  uint64
	ledger *DropLedger
	hop    int

	// exporter, when non-nil, marks a shard-boundary link: serialisation
	// happens here, delivery happens in another shard (see NewExportLink).
	exporter Exporter

	// deliverPrio is the same-instant scheduling priority of this link's
	// delivery events. It defaults to sim.PrioDefault (plain FIFO among
	// same-instant events, the historical behaviour); topo assigns every
	// positive-delay link a unique structural key (SetDeliveryKey), which
	// makes simultaneous arrivals on different cables at one device fire
	// in cable order — a property of the topology, not of scheduling
	// history, and therefore identical at every shard count.
	deliverPrio uint64

	// pending is the in-flight FIFO: frames serialised but not yet
	// delivered, in departure (= arrival) order. One reusable event —
	// armed at the head's arrival instant — drains it, so a burst of N
	// back-to-back frames occupies a single event-heap slot instead of N.
	pending   ring.FIFO[inflight]
	deliverEv *sim.Event
}

// inflight is one frame — or one whole frame train — in flight on the
// link, held by value in the pending FIFO. For a train, firstBit/lastBit
// are the first frame's window; the rest follow arithmetically.
type inflight struct {
	f                 *Frame
	train             *Train // non-nil: a coalesced run, f unused
	firstBit, lastBit sim.Time
}

// deliver is the single delivery-event callback: it hands the head entry
// (one frame, or one whole train) to the peer and re-arms for the next
// pending entry, if any.
//
//lint:hotpath
func (l *Link) deliver() {
	d := l.pending.Pop()
	// Re-arm before the callback: if the peer transmits on this same link
	// re-entrantly the armed-iff-pending invariant must already hold.
	// Arrival times are non-decreasing along the FIFO, so the next head's
	// instant is never in the past beyond the clamp below.
	if l.pending.Len() > 0 {
		eventAt := l.pending.Peek().lastBit
		if now := l.Engine.Now(); eventAt < now {
			eventAt = now
		}
		l.Engine.ReschedulePrio(l.deliverEv, eventAt, l.deliverPrio)
	}
	if d.train == nil {
		l.Peer.Receive(d.f, d.firstBit, d.lastBit)
		return
	}
	DeliverTrain(l.Peer, d.train, d.firstBit, d.lastBit)
}

// NewLink builds a link on engine e at rate r with propagation delay d,
// delivering into peer.
func NewLink(e *sim.Engine, r Rate, d sim.Duration, peer Endpoint) *Link {
	return &Link{Engine: e, Rate: r, Delay: d, Peer: peer, deliverPrio: sim.PrioDefault}
}

// Transmit queues the frame for serialisation at the earliest instant the
// link is free and returns the time the last bit leaves the sender. The
// frame is delivered to the peer (if any) after the propagation delay.
//
//lint:hotpath
func (l *Link) Transmit(f *Frame) sim.Time {
	return l.TransmitAt(f, l.Engine.Now())
}

// TransmitAt is Transmit with an explicit earliest start instant, which
// may lie in the past relative to the engine clock. Cut-through devices
// use this to model serialisation that conceptually began while the frame
// was still arriving: the returned last-bit time is exact, and the
// delivery event is clamped to the present so causality in the event
// queue is preserved.
//
//lint:hotpath
func (l *Link) TransmitAt(f *Frame, earliest sim.Time) sim.Time {
	start := earliest
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := start.Add(SerializationTime(f.Size, l.Rate))
	l.busyUntil = end
	l.txFrames++
	l.txBytes += uint64(WireBytes(f.Size))
	if l.exporter != nil {
		// Boundary link: ownership of the frame transfers with the call;
		// the destination shard replays it at the computed instants under
		// this link's delivery key, so it lands in exactly the heap
		// position a local delivery event would occupy.
		l.exporter.ExportFrame(f, start.Add(l.Delay), end.Add(l.Delay), l.deliverPrio)
		return end
	}
	if l.Peer == nil {
		// Unterminated link: the frame occupies the wire but nobody
		// receives it. Account the loss and recycle the frame.
		l.drops++
		l.ledger.Report(l.hop, DropUnterminated, 1)
		f.Release()
		return end
	}
	firstBit := start.Add(l.Delay)
	lastBit := end.Add(l.Delay)
	l.pending.Push(inflight{f: f, firstBit: firstBit, lastBit: lastBit})
	// Frames joining a burst ride the already-armed event; only the
	// first frame of a burst arms it.
	if l.pending.Len() == 1 {
		eventAt := lastBit
		if now := l.Engine.Now(); eventAt < now {
			eventAt = now
		}
		if l.deliverEv == nil {
			//lint:ignore hotpathalloc one-time event creation per link; steady state reschedules
			l.deliverEv = l.Engine.SchedulePrio(eventAt, l.deliverPrio, l.deliver)
		} else {
			l.Engine.ReschedulePrio(l.deliverEv, eventAt, l.deliverPrio)
		}
	}
	return end
}

// SetDeliveryKey assigns the link's structural delivery key: the
// same-instant priority of its delivery events. Topology builders assign
// a unique key per positive-delay link in build order, which totally
// orders simultaneous arrivals at a device by cable rather than by
// scheduling history (see sim.SchedulePrio). Links without a key keep
// sim.PrioDefault — plain FIFO, the historical behaviour.
func (l *Link) SetDeliveryKey(key uint64) { l.deliverPrio = key }

// DeliveryKey returns the link's structural delivery key.
func (l *Link) DeliveryKey() uint64 { return l.deliverPrio }

// SetDropSite attaches the scenario's loss-attribution ledger: drops on
// this link (unterminated-fibre frames) report as (hop, reason) into it.
func (l *Link) SetDropSite(ledger *DropLedger, hop int) {
	l.ledger, l.hop = ledger, hop
}

// Drops returns frames lost to an unterminated link (no peer).
func (l *Link) Drops() uint64 { return l.drops }

// InFlight returns the number of frames serialised but not yet delivered
// to the peer. However deep the burst, it is drained by a single pending
// engine event.
func (l *Link) InFlight() int { return l.pending.Len() }

// Busy reports whether the link is still serialising at instant t.
func (l *Link) Busy(t sim.Time) bool { return l.busyUntil > t }

// BusyUntil returns the instant the current transmission completes.
func (l *Link) BusyUntil() sim.Time { return l.busyUntil }

// TxFrames returns the number of frames transmitted.
func (l *Link) TxFrames() uint64 { return l.txFrames }

// TxWireBytes returns the cumulative wire occupancy in byte times.
func (l *Link) TxWireBytes() uint64 { return l.txBytes }

// Utilisation returns the fraction of the interval [0, t] the link spent
// serialising.
func (l *Link) Utilisation(t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	used := sim.Duration(l.txBytes) * l.Rate.ByteTime()
	return float64(used) / float64(t.Sub(0))
}

// Connect builds the two unidirectional links of a full-duplex cable
// between endpoints a and b, returning the a→b and b→a links.
func Connect(e *sim.Engine, r Rate, delay sim.Duration, a, b Endpoint) (ab, ba *Link) {
	return NewLink(e, r, delay, b), NewLink(e, r, delay, a)
}
