package main

import "testing"

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000, AllocsPerOp: 2000}}
	got := report{"E1": {NsPerOp: 1200, AllocsPerOp: 2100}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000, AllocsPerOp: 0}}
	got := report{"E1": {NsPerOp: 1300, AllocsPerOp: 0}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].metric != "ns/op" {
		t.Fatalf("violations = %v, want one ns/op regression", v)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := report{"E1": {NsPerOp: 0, AllocsPerOp: 10000}}
	got := report{"E1": {NsPerOp: 0, AllocsPerOp: 12000}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].metric != "allocs/op" {
		t.Fatalf("violations = %v, want one allocs/op regression", v)
	}
}

func TestCompareAllocSlackCoversTinyBaselines(t *testing.T) {
	// +50 allocations on a 10-alloc baseline is inside the absolute
	// slack, not a 6× regression.
	base := report{"E1": {AllocsPerOp: 10}}
	got := report{"E1": {AllocsPerOp: 60}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000}, "E2": {NsPerOp: 1000}}
	got := report{"E1": {NsPerOp: 1000}}
	v := compare(got, base, 1.25, 1.10)
	if len(v) != 1 || v[0].name != "E2" || v[0].metric != "presence" {
		t.Fatalf("violations = %v, want E2 missing", v)
	}
}

func TestCompareNewBenchmarkNotGated(t *testing.T) {
	base := report{"E1": {NsPerOp: 1000}}
	got := report{"E1": {NsPerOp: 900}, "E99": {NsPerOp: 1e12}}
	if v := compare(got, base, 1.25, 1.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestParseExpectations(t *testing.T) {
	exp, err := parseExpectations("E14Capture100G:1.2, MonMerge8Q:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != 2 || exp["E14Capture100G"] != 1.2 || exp["MonMerge8Q"] != 2 {
		t.Fatalf("exp = %v", exp)
	}
	if exp, err := parseExpectations(""); err != nil || len(exp) != 0 {
		t.Fatalf("empty spec: exp = %v, err = %v", exp, err)
	}
	for _, bad := range []string{"E14", "E14:", "E14:0.5", ":1.2", "E14:abc"} {
		if _, err := parseExpectations(bad); err == nil {
			t.Errorf("parseExpectations(%q) accepted", bad)
		}
	}
}

func TestCheckImprovementsHolds(t *testing.T) {
	base := report{"E14": {NsPerOp: 1200}}
	got := report{"E14": {NsPerOp: 900}} // 1.33× faster
	if v := checkImprovements(got, base, map[string]float64{"E14": 1.2}); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckImprovementsFlagsShortfall(t *testing.T) {
	base := report{"E14": {NsPerOp: 1200}}
	got := report{"E14": {NsPerOp: 1100}} // only 1.09× faster
	v := checkImprovements(got, base, map[string]float64{"E14": 1.2})
	if len(v) != 1 || v[0].metric != "improve" {
		t.Fatalf("violations = %v, want one improve shortfall", v)
	}
}

func TestCheckImprovementsFlagsMissingName(t *testing.T) {
	base := report{"E14": {NsPerOp: 1200}}
	got := report{"E14": {NsPerOp: 100}}
	v := checkImprovements(got, base, map[string]float64{"E99": 1.2})
	if len(v) != 1 || v[0].metric != "improve-presence" {
		t.Fatalf("violations = %v, want one improve-presence failure", v)
	}
}

func TestPctDelta(t *testing.T) {
	if d := pctDelta(900, 1200); d != -25 {
		t.Fatalf("pctDelta(900, 1200) = %v, want -25", d)
	}
	if d := pctDelta(5, 0); d != 0 {
		t.Fatalf("pctDelta(5, 0) = %v, want 0", d)
	}
}
