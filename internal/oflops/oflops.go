// Package oflops implements OFLOPS-turbo: the holistic OpenFlow switch
// evaluation framework of the demo's Part II, rebuilt on OSNT. A
// measurement module observes three channels at once — the data plane
// (through OSNT's timestamped generator/monitor), the OpenFlow control
// plane, and SNMP counters — and reports high-precision measurements of
// the switch's control/data-plane interactions.
package oflops

import (
	"fmt"

	"osnt/internal/core"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/ofswitch"
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/snmp"
	"osnt/internal/topo"
)

// Context is the measurement environment handed to a module: the Figure 2
// topology with OSNT port 0 feeding switch port 1, switch port 2 feeding
// OSNT port 1, plus control and SNMP channels.
type Context struct {
	Engine *sim.Engine
	OSNT   *core.Device
	Switch *ofswitch.Switch
	Ctl    *ofswitch.Controller
	Agent  *snmp.Agent

	// GenPort/CapPort are the OSNT ports wired to the switch.
	GenPort, CapPort int

	module   Module
	done     bool
	deadline sim.Duration
	xid      uint32
}

// Module is one OFLOPS measurement. Start installs state and begins
// traffic; the Handle callbacks observe the channels; Finished reports
// completion.
type Module interface {
	// Name identifies the module in reports.
	Name() string
	// Start arms the measurement.
	Start(ctx *Context) error
	// HandleDataPlane sees every capture record from the OSNT monitor.
	HandleDataPlane(ctx *Context, rec mon.Record)
	// HandleOF sees every switch-to-controller message.
	HandleOF(ctx *Context, m openflow.Message, xid uint32)
	// Finished reports whether the measurement has everything it needs.
	Finished(ctx *Context) bool
}

// Finish marks the run complete before the deadline.
func (c *Context) Finish() { c.done = true }

// NextXid returns a fresh transaction id.
func (c *Context) NextXid() uint32 {
	c.xid++
	return c.xid
}

// SNMPGet performs a local SNMP GET against the switch agent, returning
// the integer value (the management network is the control channel; its
// latency is already modelled there, so polling is immediate here).
func (c *Context) SNMPGet(oid snmp.OID) (int64, bool) {
	req := snmp.Encode(snmp.Message{
		Version: snmp.Version2c, Community: "public",
		PDU: snmp.PDU{Type: snmp.GetRequest, RequestID: int32(c.NextXid()),
			VarBinds: []snmp.VarBind{{OID: oid, Value: snmp.Null}}},
	})
	raw := c.Agent.Handle(req)
	if raw == nil {
		return 0, false
	}
	resp, err := snmp.Decode(raw)
	if err != nil || len(resp.PDU.VarBinds) == 0 {
		return 0, false
	}
	vb := resp.PDU.VarBinds[0]
	if vb.Value.Kind == snmp.NoSuchObject.Kind {
		return 0, false
	}
	return vb.Value.Int, true
}

// Config shapes the test harness.
type Config struct {
	// Switch configures the device under test.
	Switch ofswitch.Config
	// Timeout bounds a module run in virtual time (default 30 s).
	Timeout sim.Duration
	// Monitor tunes the OSNT capture pipeline (its Sink is owned by the
	// harness).
	Monitor mon.Config
}

// Runner owns one topology and executes modules on it.
type Runner struct {
	ctx *Context
	cfg Config
}

// NewRunner builds the Figure 2 topology on a fresh engine.
func NewRunner(cfg Config) *Runner {
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * sim.Second
	}
	e := sim.NewEngine()
	// OSNT port 0 ↔ switch port index 0 (OF port 1), OSNT port 1 ↔
	// switch port index 1 (OF port 2), both full duplex.
	t := topo.New().
		Tester("osnt", netfpga.Config{}).
		OFSwitch("sw", cfg.Switch).
		Duplex("osnt:0", "sw:0").
		Duplex("osnt:1", "sw:1").
		MustBuild(e)
	dev, sw := t.Tester("osnt"), t.OFSwitch("sw")

	ctl := ofswitch.Connect(sw)

	agent := snmp.NewAgent("public")
	agent.Register(snmp.OIDSysUpTime, func() snmp.Value {
		return snmp.TimeTicks(uint32(e.Now().Sub(0) / (10 * sim.Millisecond)))
	})
	for i := 0; i < sw.NumPorts(); i++ {
		p := sw.Port(i)
		idx := uint32(p.OFPort())
		agent.Register(snmp.OIDIfInOctets.Append(idx), func() snmp.Value {
			return snmp.Counter64(p.RxStats().Bytes)
		})
		agent.Register(snmp.OIDIfOutOctets.Append(idx), func() snmp.Value {
			return snmp.Counter64(p.TxStats().Bytes)
		})
		agent.Register(snmp.OIDIfInPackets.Append(idx), func() snmp.Value {
			return snmp.Counter64(p.RxStats().Packets)
		})
		agent.Register(snmp.OIDIfOutPackets.Append(idx), func() snmp.Value {
			return snmp.Counter64(p.TxStats().Packets)
		})
	}

	ctx := &Context{
		Engine: e, OSNT: dev, Switch: sw, Ctl: ctl, Agent: agent,
		GenPort: 0, CapPort: 1, deadline: cfg.Timeout,
	}
	return &Runner{ctx: ctx, cfg: cfg}
}

// Context exposes the runner's environment (tests and custom drivers).
func (r *Runner) Context() *Context { return r.ctx }

// Run executes one module to completion or timeout.
func (r *Runner) Run(m Module) error {
	ctx := r.ctx
	ctx.module = m
	ctx.done = false

	mcfg := r.cfg.Monitor
	mcfg.Sink = func(rec mon.Record) {
		if !ctx.done {
			m.HandleDataPlane(ctx, rec)
		}
	}
	if _, err := ctx.OSNT.ConfigureMonitor(ctx.CapPort, mcfg); err != nil {
		return fmt.Errorf("oflops: monitor: %w", err)
	}
	ctx.Ctl.OnMessage = func(msg openflow.Message, xid uint32) {
		if !ctx.done {
			m.HandleOF(ctx, msg, xid)
		}
	}
	if err := m.Start(ctx); err != nil {
		return fmt.Errorf("oflops: %s: %w", m.Name(), err)
	}

	deadline := ctx.Engine.Now().Add(ctx.deadline)
	for !ctx.done && !m.Finished(ctx) {
		next, ok := ctx.Engine.Peek()
		if !ok || next > deadline {
			break // event queue drained or virtual deadline reached
		}
		ctx.Engine.Step()
	}
	ctx.done = true
	if g := ctx.OSNT.Generator(ctx.GenPort); g != nil && g.Running() {
		g.Stop()
	}
	return nil
}

// ProbeSpec is the canonical probe template for modules: UDP flows whose
// destination address selects the rule under test.
var ProbeSpec = packet.UDPSpec{
	SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0x00, 0x00, 0x01},
	DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0x00, 0x00, 0x02},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 1, 0, 0},
	SrcPort: 6000, DstPort: 7000,
}

// RuleIP returns the probe destination address selecting rule i.
func RuleIP(i int) packet.IP4 {
	return packet.IP4{10, 1, byte(i >> 8), byte(i)}
}

// RuleMatch builds the FLOW_MOD match for rule i (exact nw_dst, UDP).
func RuleMatch(i int) openflow.Match {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildDlType | openflow.WildNwProto
	m.DlType = packet.EtherTypeIPv4
	m.NwProto = packet.ProtoUDP
	m.SetNwDstPrefix(RuleIP(i), 32)
	return m
}
