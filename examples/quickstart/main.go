// Quickstart: measure the latency of a switch with OSNT in ~40 lines.
//
// The rig is declared as a topology graph: an OSNT tester (simulated
// NetFPGA-10G) wired through a store-and-forward switch, generator on
// port 0, capture on port 1. The latency distribution comes straight
// from the hardware timestamps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"osnt/internal/core"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
)

func main() {
	engine := sim.NewEngine()

	// Demo Part I topology, declaratively: tester port 0 → switch port 0,
	// switch port 1 ↔ tester port 1.
	t := topo.New().
		Tester("osnt", netfpga.Config{}).
		DUT("sw", switchsim.Config{}).
		Link("osnt:0", "sw:0").
		Duplex("sw:1", "osnt:1").
		MustBuild(engine)

	probe := packet.UDPSpec{
		SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
		DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
		SrcIP:   packet.IP4{10, 0, 0, 1},
		DstIP:   packet.IP4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 7000,
	}
	// Pre-learn the capture-side station so nothing floods.
	t.DUT("sw").Learn(probe.DstMAC, 1)

	result, err := (&core.LatencyTest{
		Device: t.Tester("osnt"),
		TxPort: 0, RxPort: 1,
		Spec:      probe,
		FrameSize: 512,
		Load:      0.2, // 20% of 10G line rate
		Duration:  10 * sim.Millisecond,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sent %d packets, captured %d, DUT loss %.2f%%\n",
		result.TxPackets, result.RxPackets, result.LossFraction()*100)
	fmt.Printf("switch latency: %s\n", result.Latency.Summary(1e6, "µs"))
}
