package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E9PairCounts is the port-scaling sweep: N independent generator →
// monitor port pairs, each driven at 100% of line rate. Heaviest first,
// so the parallel runner starts the long pole immediately and the sweep's
// wall time approaches the cost of the 8-pair point alone.
var E9PairCounts = []int{8, 4, 2, 1}

// E9FrameSizes spans the line-rate extremes plus a mid-size: 64 B is the
// 14.88 Mpps worst case, 1518 B the bandwidth-bound best case.
var E9FrameSizes = []int{64, 256, 1518}

// E9PortScaling is the multi-port scaling sweep: 1/2/4/8 generator–
// monitor port pairs at line rate on one card, checking that aggregate
// generation and MAC-level capture scale linearly with the port count
// (the paper's "full line-rate ... across the four card ports", pushed
// past four). Capture is counted at the RX MAC; the host(%) column shows
// how much of it the loss-limited DMA path (64 B thinning) also
// delivered, tying the scaling story back to E7.
func E9PortScaling(duration sim.Duration) *stats.Table {
	return pairScalingSweep(
		"E9: multi-port scaling — N gen→mon port pairs at line rate",
		wire.Rate10G, E9PairCounts, E9FrameSizes, 0xe9, duration)
}

// pairScalingSweep is the gen→mon pair rig shared by E9 (10G) and E11
// (40G): one card with 2N ports, N loopback pairs, every generator at
// 100% of line rate, capture thinned to 64 B. The `ok` column checks
// that aggregate MAC capture stays within 0.1% of pairs × line rate.
func pairScalingSweep(title string, rate wire.Rate, pairCounts, frameSizes []int, seedBase uint64, duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   title,
		Columns: []string{"pairs", "frame(B)", "offered(Mpps)", "mac-rx(Mpps)", "agg(Gb/s)", "host(%)", "ok"},
	}
	points := len(pairCounts) * len(frameSizes)
	tbl.Rows = sweeper().Rows(points, func(i int) [][]string {
		pairs := pairCounts[i/len(frameSizes)]
		fs := frameSizes[i%len(frameSizes)]
		e := sim.NewEngine()
		b := topo.New().Tester("osnt", netfpga.Config{Ports: 2 * pairs, Rate: rate})
		for p := 0; p < pairs; p++ {
			b.Link(osntPorts[2*p], osntPorts[2*p+1])
		}
		t := b.MustBuild(e)
		gens := make([]*gen.Generator, pairs)
		mons := make([]*mon.Monitor, pairs)
		for p := 0; p < pairs; p++ {
			txp := t.Port(osntPorts[2*p])
			mons[p] = t.AttachMonitor(osntPorts[2*p+1], mon.Config{SnapLen: 64})
			spec := probeSpec
			spec.SrcPort = uint16(5000 + p)
			g, err := gen.New(txp, gen.Config{
				Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: fs},
				Spacing: gen.CBRForLoad(fs, rate, 1.0),
				Pool:    wire.DefaultPool,
				Seed:    runner.PointSeed(seedBase, i*16+p),
			})
			if err != nil {
				panic(err)
			}
			g.Start(0)
			gens[p] = g
		}
		e.RunUntil(sim.Time(duration))
		for _, g := range gens {
			g.Stop()
		}
		e.Run() // drain in-flight frames and capture rings

		var offered, macRx, hostRx uint64
		for p := 0; p < pairs; p++ {
			offered += gens[p].Sent().Packets
			macRx += mons[p].Seen().Packets
			hostRx += mons[p].Delivered().Packets
		}
		secs := duration.Seconds()
		offMpps := float64(offered) / secs / 1e6
		rxMpps := float64(macRx) / secs / 1e6
		gbps := rxMpps * 1e6 * float64(wire.WireBytes(fs)) * 8 / 1e9
		hostPct := 0.0
		if macRx > 0 {
			hostPct = float64(hostRx) / float64(macRx) * 100
		}
		// Linear scaling check: aggregate MAC capture within 0.1% of
		// pairs × theoretical line rate.
		ok := rxMpps*1e6 > wire.MaxPPS(fs, rate)*float64(pairs)*0.999
		return [][]string{{
			fmt.Sprintf("%d", pairs),
			fmt.Sprintf("%d", fs),
			fmt.Sprintf("%.3f", offMpps),
			fmt.Sprintf("%.3f", rxMpps),
			fmt.Sprintf("%.3f", gbps),
			fmt.Sprintf("%.1f", hostPct),
			fmt.Sprintf("%v", ok),
		}}
	})
	return tbl
}
