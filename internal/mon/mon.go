// Package mon implements the OSNT traffic monitoring subsystem as a
// capture engine: packets are timestamped on receipt by the MAC (done in
// netfpga.Port, minimising queueing noise), pass through the hardware
// wildcard filter table, are optionally thinned (cut to a snap length)
// and hashed, and finally cross a loss-limited DMA path into the host,
// where software sinks consume capture records.
//
// The DMA path is the part the paper calls "a loss-limited path that gets
// (a subset of) captured packets into the host". Beyond 10 Gb/s a single
// descriptor ring drained by one host core cannot keep up even with
// thinned packets, so the engine spreads one port's capture across up to
// netfpga.Config.CaptureQueues independent queues — each with its own
// bounded descriptor ring, host drain rate and drop accounting, exactly
// the per-queue DMA + RSS steering structure of >10G NIC capture stacks.
// A deterministic steering stage assigns every accepted packet to a
// queue: hash-based RSS over the hardware digest (one flow, one queue),
// strict round-robin, or a filter rule pinning its matches to a queue.
// When capture demand exceeds what a queue's host core can drain, that
// ring overflows and its drops are counted — exactly the behaviour
// hardware filtering, thinning and now multi-queue DMA exist to avoid.
//
// The single-ring configuration of earlier revisions remains the
// shorthand: a Config without Queues behaves as one queue built from the
// top-level RingSize/HostPerPacket/HostPerByte/Sink fields, bit-identical
// to the old API.
package mon

import (
	"fmt"

	"osnt/internal/filter"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// Record is one captured packet as the host sees it.
type Record struct {
	// Data holds the captured bytes (possibly thinned).
	Data []byte
	// WireSize is the original FCS-inclusive frame size.
	WireSize int
	// TS is the hardware receive timestamp latched at the MAC.
	TS timing.Timestamp
	// Arrival is the true arrival instant (ground truth available only in
	// simulation; used to quantify timestamp error).
	Arrival sim.Time
	// Delivered is the instant the record reached the host sink.
	Delivered sim.Time
	// Port is the card port that captured the packet.
	Port int
	// Queue is the capture queue whose ring carried the record (0 on a
	// single-queue monitor).
	Queue int
	// Seq is the record's per-queue admission sequence number (0-based,
	// counting ring admissions, not drops). Within one queue, (TS, Seq)
	// is strictly increasing; across queues, (TS, Queue, Seq) is the
	// total order Merge reconstructs.
	Seq uint64
	// Rule is the index of the filter rule that accepted the packet, or
	// -1 for the default action.
	Rule int
	// Hash is the hardware packet digest (FNV over the first HashBytes),
	// 0 when hashing is disabled.
	Hash uint64
	// Trace carries the frame's per-hop egress timestamps (stamped by
	// forwarding devices with a hop ID), so sinks can decompose latency
	// hop by hop instead of only end to end.
	Trace wire.HopTrace
}

// Steer selects the policy distributing accepted packets across capture
// queues. All policies are deterministic, so multi-queue captures stay
// reproducible packet for packet.
type Steer uint8

const (
	// SteerHash spreads packets by the hardware digest (RSS-style): one
	// flow always lands on one queue, preserving per-flow record order.
	// When Config.HashBytes is 0 the steering stage hashes the first
	// SteerHashBytes of the (possibly thinned) packet internally without
	// publishing a digest in Record.Hash.
	SteerHash Steer = iota
	// SteerRoundRobin deals accepted packets across queues in strict
	// rotation — perfectly balanced, but one flow's records interleave
	// across queues (hardware timestamps restore global order).
	SteerRoundRobin
)

// SteerHashBytes is how many leading packet bytes the SteerHash policy
// digests when Config.HashBytes is 0: enough to cover the L2–L4 headers
// that distinguish flows.
const SteerHashBytes = 64

// QueueConfig parameterises one capture queue: a DMA descriptor ring
// drained by its own host core. Zero-valued fields inherit the Config's
// top-level single-queue values (which in turn default as documented
// there), so []QueueConfig{{}, {}} declares two default queues.
type QueueConfig struct {
	// RingSize is the queue's descriptor ring capacity in packets.
	RingSize int
	// HostPerPacket is this queue's fixed host cost per record.
	HostPerPacket sim.Duration
	// HostPerByte is this queue's per-byte DMA/copy cost. A negative
	// value selects zero cost (an idealised infinitely fast host).
	HostPerByte sim.Duration
	// Sink receives this queue's records in delivery order; nil falls
	// back to the Config-level Sink.
	Sink func(Record)
}

// Config parameterises a Monitor.
type Config struct {
	// Filters is the hardware wildcard table; nil captures everything.
	// A rule whose PinQueue is set steers its matches to that queue,
	// overriding the Steer policy.
	Filters *filter.Table
	// SnapLen thins captured packets to this many bytes (0 = full
	// packet). Per-rule SnapLen overrides take precedence.
	SnapLen int
	// HashBytes computes a digest over the first n bytes of each
	// accepted packet (0 disables hashing).
	HashBytes int
	// ThinBeforeFilter applies thinning before the filter stage. The
	// hardware pipeline filters first (ablation: thinning first breaks
	// rules that need bytes beyond the snap length).
	ThinBeforeFilter bool

	// RingSize is the DMA descriptor ring capacity in packets (default
	// 1024). With Queues set it is the per-queue default instead.
	RingSize int
	// HostPerPacket is the host-side fixed cost to consume one record:
	// DMA completion, ring bookkeeping, syscall amortisation (default
	// 120 ns). With Queues set it is the per-queue default instead.
	HostPerPacket sim.Duration
	// HostPerByte is the per-byte DMA/copy cost (default 0.8 ns/B,
	// ≈1.25 GB/s effective host path — the reason 10 Gb/s line-rate
	// capture needs thinning, and one host core tops out near 6 Mpps
	// even on thinned packets). A negative value selects zero cost (an
	// idealised infinitely fast host, used when a test wants to count at
	// the MAC rather than model the host). With Queues set it is the
	// per-queue default instead.
	HostPerByte sim.Duration

	// Queues, when non-empty, declares one capture queue per entry and
	// turns the three fields above into per-queue defaults. Leaving it
	// nil is the single-queue shorthand: one queue built from the
	// top-level fields, the exact behaviour of the old single-ring API.
	Queues []QueueConfig
	// Steer picks the steering policy across queues (default SteerHash).
	// Irrelevant with a single queue.
	Steer Steer

	// Sink receives records in delivery order; queues without their own
	// QueueConfig.Sink share it. A nil sink still models the ring
	// (records are counted and discarded at the host).
	Sink func(Record)

	// RecycleRecords returns each record's Data buffer to an internal
	// per-queue free list once the Sink has returned, making the
	// steady-state capture path allocation-free. The Sink must then copy
	// any bytes it keeps past the callback. Always on for queues whose
	// effective sink is nil (nobody can retain the buffer).
	RecycleRecords bool
}

// Validate reports configuration errors: negative ring or host-cost
// parameters (top-level or per-queue) and an explicitly empty Queues
// slice. A negative HostPerByte is legal (it means zero cost).
func (c *Config) Validate() error {
	if c.RingSize < 0 {
		return fmt.Errorf("mon: negative RingSize %d", c.RingSize)
	}
	if c.HostPerPacket < 0 {
		return fmt.Errorf("mon: negative HostPerPacket %v", c.HostPerPacket)
	}
	if c.Steer > SteerRoundRobin {
		return fmt.Errorf("mon: unknown Steer policy %d", c.Steer)
	}
	if c.Queues != nil && len(c.Queues) == 0 {
		return fmt.Errorf("mon: Queues set but empty (omit it for the single-queue shorthand)")
	}
	for i, q := range c.Queues {
		if q.RingSize < 0 {
			return fmt.Errorf("mon: queue %d: negative RingSize %d", i, q.RingSize)
		}
		if q.HostPerPacket < 0 {
			return fmt.Errorf("mon: queue %d: negative HostPerPacket %v", i, q.HostPerPacket)
		}
	}
	return nil
}

// queue is one capture queue: an independent head-indexed descriptor
// ring drained by its own reusable DMA event, with its own drop
// accounting and buffer free list.
type queue struct {
	m   *Monitor
	idx int

	ringSize  int
	perPacket sim.Duration
	perByte   sim.Duration
	sink      func(Record)
	recycle   bool

	// ring is a head-indexed FIFO: head advances on delivery and the
	// tail grows by append; pending occupancy is len(ring)-head. The
	// slice is compacted only when the dead prefix dominates, so the
	// per-packet cost is O(1) with no copy-down.
	ring     []Record
	head     int
	draining bool
	drainEv  *sim.Event // reusable: at most one DMA completion in flight
	// nextFinish is the instant the in-flight DMA completes (valid while
	// draining). The train admission path runs ahead of the engine clock
	// and uses it to apply completions virtually, between two frame
	// arrivals, without firing the event.
	nextFinish sim.Time
	// touched marks the queue as dirty inside one train admission, so the
	// fixup pass re-arms each queue's real drain event exactly once.
	touched bool

	// bufFree recycles record buffers when the queue's recycle flag
	// allows it; bounded by the ring capacity.
	bufFree [][]byte

	// seq numbers ring admissions; stamped into Record.Seq so a merge
	// can break equal-timestamp ties deterministically.
	seq uint64

	seen      stats.Counter // accepted packets steered to this queue
	accepted  stats.Counter // admitted to the descriptor ring
	ringDrops uint64        // lost to ring overflow
	delivered stats.Counter // reached the host sink
}

// QueueStats is one capture queue's accounting, the per-queue view of
// the loss-limited path.
type QueueStats struct {
	// Seen counts accepted packets the steering stage sent this queue.
	Seen stats.Counter
	// Accepted counts packets admitted to the descriptor ring.
	Accepted stats.Counter
	// RingDrops counts packets lost to this queue's ring overflow.
	RingDrops uint64
	// Delivered counts records this queue's host core consumed.
	Delivered stats.Counter
	// Depth is the instantaneous ring occupancy.
	Depth int
}

// Monitor is the capture engine attached to one card port.
type Monitor struct {
	port *netfpga.Port
	cfg  Config
	eng  *sim.Engine

	queues []queue
	rr     int // round-robin cursor
	// scratch collects the queues one train touched (reused across
	// trains, so the batched path allocates nothing).
	scratch []*queue

	seen     stats.Counter // all frames presented to the pipeline
	accepted stats.Counter // past the filter stage
	filtered uint64        // dropped by filter verdict

	// maxTS is the high-water mark of hardware timestamps presented to
	// the pipeline. MAC timestamps are latched in arrival order on one
	// engine, so every future record carries TS ≥ maxTS — the watermark
	// a streaming merge needs to know when a buffered record can no
	// longer be preceded by anything still in flight.
	maxTS timing.Timestamp

	// Loss attribution: when a drop site is attached
	// (topo.AttachMonitor threads the scenario ledger), filter rejects
	// and per-queue ring overflows report as (hop, reason) so capture
	// loss composes with the forwarding hops' drops in one LossMap.
	ledger *wire.DropLedger
	hop    int
}

// SetDropSite attaches the scenario's loss-attribution ledger; the
// monitor reports filter rejects and DMA ring overflows at the given
// hop ID.
func (m *Monitor) SetDropSite(ledger *wire.DropLedger, hop int) {
	m.ledger, m.hop = ledger, hop
}

// New builds a capture engine on the port, taking over its OnReceive
// hook. It rejects invalid configurations: Validate errors, more queues
// than the card's per-port DMA budget (netfpga.Config.CaptureQueues),
// and filter rules pinning a queue the monitor does not have.
func New(port *netfpga.Port, cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nq := len(cfg.Queues)
	if nq == 0 {
		nq = 1
	}
	if budget := port.Card().CaptureQueues(); nq > budget {
		return nil, fmt.Errorf("mon: %d capture queues exceed the card's per-port DMA budget of %d", nq, budget)
	}
	if cfg.Filters != nil {
		for i := 0; i < cfg.Filters.Len(); i++ {
			if pin := cfg.Filters.Rule(i).PinQueue; pin > nq {
				return nil, fmt.Errorf("mon: filter rule %d pins queue %d, but the monitor has %d queue(s)", i, pin, nq)
			}
		}
	}

	m := &Monitor{port: port, cfg: cfg, eng: port.Card().Engine}

	// Resolve the per-queue defaults once: top-level fields fill from
	// the documented single-queue defaults, then each queue inherits
	// whatever it leaves zero.
	ringDef := cfg.RingSize
	if ringDef == 0 {
		ringDef = 1024
	}
	ppDef := cfg.HostPerPacket
	if ppDef == 0 {
		ppDef = 120 * sim.Nanosecond
	}
	pbDef := cfg.HostPerByte
	if pbDef == 0 {
		pbDef = sim.Picoseconds(800)
	}
	qcfgs := cfg.Queues
	if len(qcfgs) == 0 {
		qcfgs = []QueueConfig{{}}
	}
	m.queues = make([]queue, len(qcfgs))
	for i, qc := range qcfgs {
		q := &m.queues[i]
		q.m, q.idx = m, i
		q.ringSize = qc.RingSize
		if q.ringSize == 0 {
			q.ringSize = ringDef
		}
		q.perPacket = qc.HostPerPacket
		if q.perPacket == 0 {
			q.perPacket = ppDef
		}
		q.perByte = qc.HostPerByte
		if q.perByte == 0 {
			q.perByte = pbDef
		}
		if q.perByte < 0 {
			q.perByte = 0 // negative selects the idealised zero-cost host
		}
		q.sink = qc.Sink
		if q.sink == nil {
			q.sink = cfg.Sink
		}
		q.recycle = cfg.RecycleRecords || q.sink == nil
	}

	port.OnReceive = m.onReceive
	port.OnReceiveTrain = m.onReceiveTrain
	return m, nil
}

// Attach is New panicking on configuration errors — the spelling for
// rigs whose capture configuration is static, and the package's original
// constructor: Attach(port, Config{}) still builds the default
// single-ring monitor.
func Attach(port *netfpga.Port, cfg Config) *Monitor {
	m, err := New(port, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Monitor) onReceive(f *wire.Frame, at sim.Time, ts timing.Timestamp) {
	m.seen.Add(wire.WireBytes(f.Size))
	if ts > m.maxTS {
		m.maxTS = ts
	}

	data := f.Data
	snap := m.cfg.SnapLen

	if m.cfg.ThinBeforeFilter && snap > 0 && len(data) > snap {
		data = data[:snap]
	}

	ruleIdx := -1
	if m.cfg.Filters != nil {
		act, idx, ruleSnap := m.cfg.Filters.Match(data)
		ruleIdx = idx
		if act == filter.Drop {
			m.filtered++
			m.ledger.Report(m.hop, wire.DropFilterReject, 1)
			return
		}
		if ruleSnap > 0 {
			snap = ruleSnap
		}
	}
	if !m.cfg.ThinBeforeFilter && snap > 0 && len(data) > snap {
		data = data[:snap]
	}

	var hash uint64
	if m.cfg.HashBytes > 0 {
		hash = packet.PacketDigest(data, m.cfg.HashBytes)
	}

	wb := wire.WireBytes(f.Size)
	m.accepted.Add(wb)

	q := m.steer(data, ruleIdx, hash)
	q.seen.Add(wb)

	if len(q.ring)-q.head >= q.ringSize {
		q.ringDrops++
		m.ledger.Report(m.hop, wire.DropRingFull, 1)
		return
	}
	q.accepted.Add(wb)
	// The descriptor ring owns a copy: the frame buffer belongs to the
	// datapath and may be reused.
	cp := q.getBuf(len(data))
	copy(cp, data)
	q.ring = append(q.ring, Record{
		Data: cp, WireSize: f.Size, TS: ts, Arrival: at,
		Port: m.port.Index(), Queue: q.idx, Rule: ruleIdx, Hash: hash,
		Seq: q.seq, Trace: f.Trace,
	})
	q.seq++
	q.drain()
}

// onReceiveTrain is the batched admission path: the port hands a whole
// back-to-back run to the monitor in one delivery event. The engine
// clock sits at the first frame's last-bit arrival; every later frame's
// arrival instant is recovered arithmetically at the train's wire rate,
// its MAC timestamp is latched at that instant (in arrival order, so
// stateful clocks step exactly as under per-frame delivery), and any DMA
// completions that would have fired between two arrivals are applied
// virtually with their exact completion instants. Counters, drop
// decisions and record contents are bitwise identical to N per-frame
// events; only the event count changes.
//
// Uniform trains (byte-identical frames) additionally hoist the per-flow
// work — filter verdict, effective snap length, digest, and (for
// non-round-robin policies) the steering decision — out of the per-frame
// loop: one classification covers the run.
func (m *Monitor) onReceiveTrain(t *wire.Train, at sim.Time) {
	clock := m.port.Card().Clock
	touched := m.scratch[:0]

	hoist := t.Uniform
	hoisted := false
	var (
		hDrop bool
		hRule int
		hLen  int // effective post-thinning capture length
		hHash uint64
		hQ    *queue // hoisted steer result; nil when per-frame steering is needed
	)

	lb := at
	for i, f := range t.Frames {
		if i > 0 {
			lb = lb.Add(wire.SerializationTime(f.Size, t.Rate))
		}
		ts := clock.Now(lb)
		wb := wire.WireBytes(f.Size)
		m.seen.Add(wb)
		if ts > m.maxTS {
			m.maxTS = ts
		}

		var (
			data    []byte
			ruleIdx int
			hash    uint64
		)
		if hoisted {
			if hDrop {
				m.filtered++
				m.ledger.Report(m.hop, wire.DropFilterReject, 1)
				continue
			}
			data, ruleIdx, hash = f.Data[:hLen], hRule, hHash
		} else {
			// Full classification, mirroring onReceive stage for stage.
			data = f.Data
			snap := m.cfg.SnapLen
			ruleIdx = -1
			if m.cfg.ThinBeforeFilter && snap > 0 && len(data) > snap {
				data = data[:snap]
			}
			drop := false
			if m.cfg.Filters != nil {
				act, idx, ruleSnap := m.cfg.Filters.Match(data)
				ruleIdx = idx
				if act == filter.Drop {
					drop = true
				} else if ruleSnap > 0 {
					snap = ruleSnap
				}
			}
			if !drop {
				if !m.cfg.ThinBeforeFilter && snap > 0 && len(data) > snap {
					data = data[:snap]
				}
				if m.cfg.HashBytes > 0 {
					hash = packet.PacketDigest(data, m.cfg.HashBytes)
				}
			}
			if hoist {
				hoisted = true
				hDrop, hRule, hLen, hHash = drop, ruleIdx, len(data), hash
			}
			if drop {
				m.filtered++
				m.ledger.Report(m.hop, wire.DropFilterReject, 1)
				continue
			}
		}

		m.accepted.Add(wb)
		var q *queue
		if hQ != nil {
			q = hQ
		} else {
			q = m.steer(data, ruleIdx, hash)
			if hoisted && m.cfg.Steer != SteerRoundRobin {
				// Pins and hash steering are pure functions of the (hoisted)
				// classification, so the whole run lands on one queue; only
				// round-robin advances per frame.
				hQ = q
			}
		}
		q.seen.Add(wb)

		q.advanceTo(lb)

		if len(q.ring)-q.head >= q.ringSize {
			q.ringDrops++
			m.ledger.Report(m.hop, wire.DropRingFull, 1)
			continue
		}
		q.accepted.Add(wb)
		cp := q.getBuf(len(data))
		copy(cp, data)
		q.ring = append(q.ring, Record{
			Data: cp, WireSize: f.Size, TS: ts, Arrival: lb,
			Port: m.port.Index(), Queue: q.idx, Rule: ruleIdx, Hash: hash,
			Seq: q.seq, Trace: f.Trace,
		})
		q.seq++
		if !q.draining {
			// The host core was idle when this record landed: the DMA
			// starts at the (virtual) arrival instant, exactly as drain()
			// would have at a real per-frame event.
			q.draining = true
			q.nextFinish = lb.Add(q.perPacket + sim.Duration(len(cp))*q.perByte)
		}
		if !q.touched {
			q.touched = true
			touched = append(touched, q)
		}
	}

	// Fix up the real DMA completion event for every queue the train
	// touched: still draining → one event at the virtual horizon; gone
	// idle → any pending event is stale and cancels.
	for _, q := range touched {
		q.touched = false
		if q.draining {
			if q.drainEv == nil {
				q.drainEv = m.eng.Schedule(q.nextFinish, q.drainDone)
			} else {
				m.eng.Reprogram(q.drainEv, q.nextFinish)
			}
		} else if q.drainEv != nil && q.drainEv.Pending() {
			q.drainEv.Cancel()
		}
	}
	m.scratch = touched[:0]
}

// advanceTo applies, virtually, every DMA completion that would have
// fired up to instant t. The train admission loop runs ahead of the
// engine clock, so completions falling between two frame arrivals are
// delivered here carrying their exact completion instants. A completion
// landing exactly on an arrival delivers first, matching the per-frame
// event order (the completion event was scheduled earlier, so it holds
// the smaller sequence number).
func (q *queue) advanceTo(t sim.Time) {
	for q.draining && q.nextFinish <= t {
		q.deliverHead(q.nextFinish)
		if len(q.ring) == q.head {
			q.draining = false
			break
		}
		q.nextFinish = q.nextFinish.Add(q.perPacket + sim.Duration(len(q.ring[q.head].Data))*q.perByte)
	}
}

// steer picks the capture queue for one accepted packet: rule pins win,
// then the configured policy. Single-queue monitors skip the stage
// entirely, so the shorthand path computes nothing the old API did not.
func (m *Monitor) steer(data []byte, ruleIdx int, hash uint64) *queue {
	nq := len(m.queues)
	if nq == 1 {
		return &m.queues[0]
	}
	if ruleIdx >= 0 {
		if pin := m.cfg.Filters.Rule(ruleIdx).PinQueue; pin > 0 {
			// New validates the pins present at attach time, but the
			// table stays live (rules may be appended mid-capture, as on
			// real hardware), so an out-of-range pin wraps
			// deterministically instead of panicking the hot path.
			return &m.queues[(pin-1)%nq]
		}
	}
	if m.cfg.Steer == SteerRoundRobin {
		q := &m.queues[m.rr]
		m.rr++
		if m.rr == nq {
			m.rr = 0
		}
		return q
	}
	if m.cfg.HashBytes <= 0 {
		hash = packet.PacketDigest(data, SteerHashBytes)
	}
	// packet.Mix64 whitens the digest before the queue modulo (the RSS
	// indirection step); switchsim's ECMP member select shares it, so
	// spray and steer disagree only by modulus, never by hash quality.
	return &m.queues[int(packet.Mix64(hash)%uint64(nq))]
}

// getBuf returns a buffer of length n, recycled from delivered records
// when the configuration allows it.
func (q *queue) getBuf(n int) []byte {
	if k := len(q.bufFree); k > 0 {
		b := q.bufFree[k-1]
		q.bufFree[k-1] = nil
		q.bufFree = q.bufFree[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// drain models this queue's host core consuming the ring one record at
// a time.
//
//lint:hotpath
func (q *queue) drain() {
	if q.draining || len(q.ring) == q.head {
		return
	}
	q.draining = true
	cost := q.perPacket + sim.Duration(len(q.ring[q.head].Data))*q.perByte
	q.nextFinish = q.m.eng.Now().Add(cost)
	if q.drainEv == nil {
		//lint:ignore hotpathalloc one-time event creation per queue; steady state reprograms
		q.drainEv = q.m.eng.Schedule(q.nextFinish, q.drainDone)
	} else {
		// Reprogram rather than Reschedule: a train admission may have
		// left the event cancelled-but-queued, and Reprogram re-keys that
		// in place.
		q.m.eng.Reprogram(q.drainEv, q.nextFinish)
	}
}

// deliverHead completes the in-flight DMA for the record at the ring
// head, stamping the given completion instant. Shared by the real
// completion event and the train path's virtual advance.
func (q *queue) deliverHead(doneAt sim.Time) {
	rec := q.ring[q.head]
	q.ring[q.head] = Record{}
	q.head++
	// Compact once the dead prefix dominates a non-trivial ring, so the
	// backing array stays proportional to occupancy.
	if q.head >= 256 && q.head*2 >= len(q.ring) {
		n := copy(q.ring, q.ring[q.head:])
		for i := n; i < len(q.ring); i++ {
			q.ring[i] = Record{}
		}
		q.ring = q.ring[:n]
		q.head = 0
	}
	rec.Delivered = doneAt
	q.delivered.Add(rec.WireSize)
	if q.sink != nil {
		q.sink(rec)
	}
	if q.recycle {
		q.bufFree = append(q.bufFree, rec.Data[:0])
	}
}

// drainDone is the DMA-completion handler for the record at the ring
// head.
//
//lint:hotpath
func (q *queue) drainDone() {
	q.deliverHead(q.m.eng.Now())
	q.draining = false
	q.drain()
}

// Seen returns counters over every frame presented to the pipeline.
func (m *Monitor) Seen() stats.Counter { return m.seen }

// Accepted returns counters over frames that passed the filter stage.
func (m *Monitor) Accepted() stats.Counter { return m.accepted }

// Filtered returns the number of frames dropped by filter verdicts.
func (m *Monitor) Filtered() uint64 { return m.filtered }

// NumQueues returns the number of capture queues.
func (m *Monitor) NumQueues() int { return len(m.queues) }

// QueueStats returns queue i's accounting.
func (m *Monitor) QueueStats(i int) QueueStats {
	q := &m.queues[i]
	return QueueStats{
		Seen:      q.seen,
		Accepted:  q.accepted,
		RingDrops: q.ringDrops,
		Delivered: q.delivered,
		Depth:     len(q.ring) - q.head,
	}
}

// RingDrops returns frames lost to DMA ring overflow across all queues —
// the loss-limited path's loss counter.
func (m *Monitor) RingDrops() uint64 {
	var n uint64
	for i := range m.queues {
		n += m.queues[i].ringDrops
	}
	return n
}

// Delivered returns counters over records that reached the host sinks,
// summed across queues.
func (m *Monitor) Delivered() stats.Counter {
	var c stats.Counter
	for i := range m.queues {
		c.Packets += m.queues[i].delivered.Packets
		c.Bytes += m.queues[i].delivered.Bytes
	}
	return c
}

// RingDepth returns the instantaneous ring occupancy summed across
// queues.
func (m *Monitor) RingDepth() int {
	d := 0
	for i := range m.queues {
		d += len(m.queues[i].ring) - m.queues[i].head
	}
	return d
}

// LossFraction returns ring drops as a fraction of accepted frames.
func (m *Monitor) LossFraction() float64 {
	if m.accepted.Packets == 0 {
		return 0
	}
	return float64(m.RingDrops()) / float64(m.accepted.Packets)
}
