package openflow

import (
	"encoding/binary"
	"fmt"

	"osnt/internal/packet"
)

// Action type codes (ofp_action_type).
const (
	ActTypeOutput     uint16 = 0
	ActTypeSetVlanVid uint16 = 1
	ActTypeSetVlanPcp uint16 = 2
	ActTypeStripVlan  uint16 = 3
	ActTypeSetDlSrc   uint16 = 4
	ActTypeSetDlDst   uint16 = 5
	ActTypeSetNwSrc   uint16 = 6
	ActTypeSetNwDst   uint16 = 7
	ActTypeSetNwTos   uint16 = 8
	ActTypeSetTpSrc   uint16 = 9
	ActTypeSetTpDst   uint16 = 10
)

// Action is one ofp_action.
type Action interface {
	// ActionType returns the wire action type.
	ActionType() uint16
	encode(b []byte) []byte
}

// ActionOutput forwards to a port (possibly a reserved one).
type ActionOutput struct {
	Port   uint16
	MaxLen uint16 // bytes to send to the controller for PortController
}

// ActionType implements Action.
func (*ActionOutput) ActionType() uint16 { return ActTypeOutput }
func (a *ActionOutput) encode(b []byte) []byte {
	b = be16(b, ActTypeOutput)
	b = be16(b, 8)
	b = be16(b, a.Port)
	return be16(b, a.MaxLen)
}

// ActionSetVlanVid rewrites the VLAN id.
type ActionSetVlanVid struct{ Vid uint16 }

// ActionType implements Action.
func (*ActionSetVlanVid) ActionType() uint16 { return ActTypeSetVlanVid }
func (a *ActionSetVlanVid) encode(b []byte) []byte {
	b = be16(b, ActTypeSetVlanVid)
	b = be16(b, 8)
	b = be16(b, a.Vid)
	return append(b, 0, 0)
}

// ActionStripVlan removes the VLAN tag.
type ActionStripVlan struct{}

// ActionType implements Action.
func (*ActionStripVlan) ActionType() uint16 { return ActTypeStripVlan }
func (a *ActionStripVlan) encode(b []byte) []byte {
	b = be16(b, ActTypeStripVlan)
	b = be16(b, 8)
	return append(b, 0, 0, 0, 0)
}

// ActionSetDlAddr rewrites a MAC address (src or dst per the type code).
type ActionSetDlAddr struct {
	TypeCode uint16 // ActTypeSetDlSrc or ActTypeSetDlDst
	Addr     packet.MAC
}

// ActionType implements Action.
func (a *ActionSetDlAddr) ActionType() uint16 { return a.TypeCode }
func (a *ActionSetDlAddr) encode(b []byte) []byte {
	b = be16(b, a.TypeCode)
	b = be16(b, 16)
	b = append(b, a.Addr[:]...)
	return append(b, make([]byte, 6)...)
}

// ActionSetNwAddr rewrites an IPv4 address (src or dst per the type
// code).
type ActionSetNwAddr struct {
	TypeCode uint16 // ActTypeSetNwSrc or ActTypeSetNwDst
	Addr     packet.IP4
}

// ActionType implements Action.
func (a *ActionSetNwAddr) ActionType() uint16 { return a.TypeCode }
func (a *ActionSetNwAddr) encode(b []byte) []byte {
	b = be16(b, a.TypeCode)
	b = be16(b, 8)
	return be32(b, a.Addr.Uint32())
}

// ActionSetTpPort rewrites a transport port (src or dst per the type
// code).
type ActionSetTpPort struct {
	TypeCode uint16 // ActTypeSetTpSrc or ActTypeSetTpDst
	Port     uint16
}

// ActionType implements Action.
func (a *ActionSetTpPort) ActionType() uint16 { return a.TypeCode }
func (a *ActionSetTpPort) encode(b []byte) []byte {
	b = be16(b, a.TypeCode)
	b = be16(b, 8)
	b = be16(b, a.Port)
	return append(b, 0, 0)
}

func encodeActions(acts []Action) []byte {
	var b []byte
	for _, a := range acts {
		b = a.encode(b)
	}
	return b
}

func decodeActions(d []byte) ([]Action, error) {
	var acts []Action
	for len(d) > 0 {
		if len(d) < 4 {
			return nil, ErrTruncated
		}
		typ := binary.BigEndian.Uint16(d[0:2])
		length := int(binary.BigEndian.Uint16(d[2:4]))
		if length < 8 || length%8 != 0 || length > len(d) {
			return nil, ErrBadLength
		}
		body := d[4:length]
		var a Action
		switch typ {
		case ActTypeOutput:
			a = &ActionOutput{
				Port:   binary.BigEndian.Uint16(body[0:2]),
				MaxLen: binary.BigEndian.Uint16(body[2:4]),
			}
		case ActTypeSetVlanVid:
			a = &ActionSetVlanVid{Vid: binary.BigEndian.Uint16(body[0:2])}
		case ActTypeStripVlan:
			a = &ActionStripVlan{}
		case ActTypeSetDlSrc, ActTypeSetDlDst:
			act := &ActionSetDlAddr{TypeCode: typ}
			copy(act.Addr[:], body[0:6])
			a = act
		case ActTypeSetNwSrc, ActTypeSetNwDst:
			a = &ActionSetNwAddr{
				TypeCode: typ,
				Addr:     packet.IP4FromUint32(binary.BigEndian.Uint32(body[0:4])),
			}
		case ActTypeSetTpSrc, ActTypeSetTpDst:
			a = &ActionSetTpPort{TypeCode: typ, Port: binary.BigEndian.Uint16(body[0:2])}
		default:
			return nil, fmt.Errorf("openflow: unsupported action type %d", typ)
		}
		acts = append(acts, a)
		d = d[length:]
	}
	return acts, nil
}
