package stats

import "testing"

func TestPerHopRecordsPerIndex(t *testing.T) {
	p := NewPerHop(2)
	p.Record(0, 100)
	p.Record(0, 300)
	p.Record(1, 50)
	// Recording past the initial size grows the set.
	p.Record(3, 7)
	if p.Hops() != 4 {
		t.Fatalf("hops = %d, want 4", p.Hops())
	}
	if got := p.Hist(0).Mean(); got != 200 {
		t.Fatalf("hop 0 mean %v, want 200", got)
	}
	if got := p.Hist(1).Count(); got != 1 {
		t.Fatalf("hop 1 count %d, want 1", got)
	}
	// Hop 2 exists (grown) but is empty; out-of-range is nil.
	if p.Hist(2).Count() != 0 || p.Hist(4) != nil || p.Hist(-1) != nil {
		t.Fatal("gap/out-of-range hop handling")
	}
}
