package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetOrder enforces byte-identical determinism in the internal simulation
// packages: results must not depend on map iteration order, wall-clock
// time, the global math/rand stream, or the runtime's random select pick.
// It reports:
//
//   - range over a map, unless the loop body is provably order-insensitive:
//     it only accumulates into integer counters, copies into another map,
//     deletes keys, clears or self-truncates per-value buffers
//     (x = x[:0]), or collects keys/values into a slice that the same
//     function later sorts — the sorted-key-iteration idiom, and its
//     drain form used by shard-style inbox merges: append each source's
//     buffered records into one slice, reset the source buffer, and sort
//     the merged slice before replaying it;
//   - calls to time.Now / time.Since and timer construction — simulated
//     components read the sim.Engine clock;
//   - any use of math/rand or math/rand/v2 — per-component sim.Rand
//     streams are seeded and deterministic;
//   - select statements with two or more communication cases (the runtime
//     picks a ready case pseudo-randomly).
//
// Deliberately order-free output (e.g. an order-insensitive checksum) is
// annotated //lint:ignore detorder <reason>.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "report nondeterminism sources (map-order iteration, wall clock, " +
		"global rand, multi-way select) in internal simulation packages",
	Run: runDetOrder,
}

// detOrderScope reports whether the package is held to the determinism
// contract: everything under internal/ (plus the analysistest corpora,
// whose synthetic packages have bare paths).
func detOrderScope(path string) bool {
	return strings.Contains(path, "/internal/") || !strings.Contains(path, "/")
}

func runDetOrder(pass *Pass) error {
	if !detOrderScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// Walk function by function so the sorted-later heuristic can scan
		// the enclosing body.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkDetBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkDetBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // analysed as its own body by the caller

		case *ast.RangeStmt:
			t, ok := info.Types[x.X]
			if !ok {
				return true
			}
			if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !orderInsensitiveBody(info, body, x) {
				pass.Reportf(x.Pos(), "map iteration order is nondeterministic; collect and sort the keys (or prove order-insensitivity and lint:ignore with the reason)")
			}
			return true

		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() + "." + fn.Name() {
				case "time.Now", "time.Since", "time.NewTimer", "time.NewTicker", "time.After", "time.Tick":
					pass.Reportf(x.Pos(), "wall-clock %s.%s in a simulation package; use the sim.Engine virtual clock", fn.Pkg().Name(), fn.Name())
				}
			}
			return true

		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "math/rand", "math/rand/v2":
						pass.Reportf(x.Pos(), "global %s stream is nondeterministic across runs and workers; use a seeded sim.Rand", pn.Imported().Path())
					}
				}
			}
			return true

		case *ast.SelectStmt:
			comm := 0
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				pass.Reportf(x.Pos(), "select with %d communication cases resolves nondeterministically when several are ready", comm)
			}
			return true
		}
		return true
	})
}

// orderInsensitiveBody reports whether a map-range body cannot leak the
// iteration order: every statement either accumulates into an integer
// (order-commutative), writes into another map, deletes map keys,
// resets a per-value buffer (clear(x) or x = x[:0] — the inbox-drain
// idiom), or appends keys/values into slices that the enclosing
// function later sorts.
func orderInsensitiveBody(info *types.Info, enclosing *ast.BlockStmt, rng *ast.RangeStmt) bool {
	var collected []types.Object // slices built up inside the loop
	for _, s := range rng.Body.List {
		switch st := s.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(info, st.X) {
				return false
			}

		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			lhs, rhs := st.Lhs[0], st.Rhs[0]
			switch st.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				// Commutative-fold accumulation is order-free for integers
				// (float addition is not associative: order leaks into the
				// low bits).
				if !isIntegerExpr(info, lhs) {
					return false
				}
			case token.ASSIGN, token.DEFINE:
				// x = x[:0] — truncating a per-value buffer back to empty
				// (the drain idiom: each source's records were consumed and
				// the buffer reset) is order-free.
				if isSelfTruncation(lhs, rhs) {
					continue
				}
				// m2[k] = v — building another map is order-free.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t, ok := info.Types[ix.X]; ok {
						if _, isMap := t.Type.Underlying().(*types.Map); isMap {
							continue
						}
					}
					return false
				}
				// s = append(s, …) — order-free only if s is sorted later.
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					return false
				}
				funID, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || funID.Name != "append" {
					return false
				}
				o := info.Uses[id]
				if o == nil {
					o = info.Defs[id]
				}
				if o == nil {
					return false
				}
				collected = append(collected, o)
			default:
				return false
			}

		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				// delete(m, k) prunes the ranged map; clear(x) zeroes a
				// per-value buffer in place (inbox drains clear consumed
				// record slices so pooled pointers don't pin). Both touch
				// only the current entry's state, so order cannot leak.
				if id.Name == "delete" || id.Name == "clear" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						continue
					}
				}
			}
			return false

		default:
			return false
		}
	}
	for _, o := range collected {
		if !sortedLater(info, enclosing, rng, o) {
			return false
		}
	}
	return true
}

// sortedLater reports whether obj is passed to a sort.* / slices.Sort*
// call (or a .Sort method) somewhere in the enclosing body after the range
// loop.
func sortedLater(info *types.Info, enclosing *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Any call into sort/slices (sort.Strings, sort.Slice, slices.Sort,
		// slices.SortFunc, …) or a method named Sort* counts.
		isSort := strings.HasPrefix(fun.Sel.Name, "Sort")
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				isSort = p == "sort" || p == "slices"
			}
		}
		if !isSort {
			return true
		}
		// The collected slice may appear as an argument (sort.Strings(keys),
		// slices.Sort(keys)) or inside a closure argument (sort.Slice(keys,
		// func(i, j int) bool {…})).
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// isSelfTruncation reports whether the assignment is x = x[:0] for the
// same expression x on both sides — the buffer-reset half of the
// inbox-drain idiom. Only a truncation to exactly zero counts: any
// other bound keeps order-dependent content alive.
func isSelfTruncation(lhs, rhs ast.Expr) bool {
	sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
	if !ok || sl.Slice3 || sl.Low != nil {
		return false
	}
	high, ok := ast.Unparen(sl.High).(*ast.BasicLit)
	if !ok || high.Kind != token.INT || high.Value != "0" {
		return false
	}
	return types.ExprString(ast.Unparen(lhs)) == types.ExprString(ast.Unparen(sl.X))
}

// isIntegerExpr reports whether e's type is an integer kind.
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := t.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
