// Demo Part II: OFLOPS-turbo measuring an OpenFlow switch through the
// Figure 2 topology — OSNT provides the timestamped data-plane channel,
// the OpenFlow 1.0 control channel carries FLOW_MODs and barriers, and
// SNMP exposes the switch's port counters.
//
// The run measures the latency to modify the switch's flow table through
// both control- and data-plane observations, then demonstrates the
// forwarding-consistency gap during a large table update: the switch
// acknowledges the barrier while its dataplane still forwards on the old
// rules.
//
//	go run ./examples/oflops-turbo
package main

import (
	"fmt"
	"log"

	"osnt/internal/oflops"
	"osnt/internal/snmp"
)

func main() {
	fmt.Println("== OFLOPS-turbo against a simulated OpenFlow 1.0 switch ==")

	// Flow-table update latency, control vs data plane.
	for _, batch := range []int{16, 128} {
		runner := oflops.NewRunner(oflops.Config{})
		module := &oflops.FlowInsertLatency{Rules: batch}
		if err := runner.Run(module); err != nil {
			log.Fatal(err)
		}
		h, confirmed := module.DataLatencies()
		fmt.Printf("\nflow table update, batch of %d rules:\n", batch)
		fmt.Printf("  control plane says done after: %v (barrier reply)\n", module.ControlLatency())
		fmt.Printf("  data plane actually done:      p50 %v, worst %v (%d/%d rules)\n",
			fmtMS(h.Percentile(50)), fmtMS(h.Max()), confirmed, batch)
	}

	// Forwarding consistency during a large update.
	runner := oflops.NewRunner(oflops.Config{})
	module := &oflops.ForwardingConsistency{Rules: 256}
	if err := runner.Run(module); err != nil {
		log.Fatal(err)
	}
	res := module.Result()
	fmt.Printf("\nforwarding consistency, 256-rule update:\n")
	fmt.Printf("  packets still handled by OLD rules after the barrier ack: %d\n", res.OldAfterBarrier)
	fmt.Printf("  mixed old/new forwarding window: %v\n", res.TransitionWindow)

	// The SNMP channel agrees with the data-plane observations.
	ctx := runner.Context()
	rx, _ := ctx.SNMPGet(snmp.OIDIfInPackets.Append(1))
	tx, _ := ctx.SNMPGet(snmp.OIDIfOutPackets.Append(2))
	fmt.Printf("\nSNMP cross-check: switch port 1 rx=%d packets, port 2 tx=%d packets\n", rx, tx)
}

func fmtMS(ps int64) string { return fmt.Sprintf("%.3fms", float64(ps)/1e9) }
