package analysis_test

import (
	"testing"

	"osnt/internal/analysis"
	"osnt/internal/analysis/analysistest"
)

func TestSimTimeCorpus(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SimTime, "simtime")
}
