package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotPathAlloc enforces the zero-alloc contract on declared hot paths. A
// function becomes a hot-path root with a
//
//	//lint:hotpath
//
// line in its doc comment; the pass then treats every function in the same
// package statically reachable from a root as hot as well (cross-package
// edges are each package's responsibility: annotate the callee's entry
// point too). Inside hot functions it flags the constructs that defeat the
// pooled, allocation-free steady state:
//
//   - closure literals (each escaping literal is a heap allocation),
//   - method-value expressions (x.M used as a value allocates a bound
//     closure),
//   - map/chan construction and map or pointer composite literals, new(),
//     and make of slices (growth belongs in cold setup paths),
//   - append to a function-local slice (per-call growth; append into a
//     reused field or buffer passed in from outside amortises instead),
//   - fmt.* calls and interface boxing of non-pointer values (the classic
//     hidden allocations),
//   - non-constant string concatenation.
//
// Cold exceptions inside a hot function (first-use buffer growth, fatal
// paths) are annotated //lint:ignore hotpathalloc <reason>.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "report allocation-inducing constructs in functions reachable from " +
		"//lint:hotpath roots",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	info := pass.TypesInfo

	// Map package-level functions/methods to their declarations.
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if funcDocHas(fd, "hotpath") {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Same-package static call graph. Method values and function
	// references count as edges too: a hot path that binds x.M will run M.
	callees := func(fd *ast.FuncDecl) []*types.Func {
		var out []*types.Func
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, x); fn != nil && fn.Pkg() == pass.Pkg {
					if _, local := decls[fn]; local {
						out = append(out, fn)
					}
				}
			case *ast.Ident:
				if fn, ok := info.Uses[x].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					if _, local := decls[fn]; local {
						out = append(out, fn)
					}
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
					if fn, ok := sel.Obj().(*types.Func); ok && fn.Pkg() == pass.Pkg {
						if _, local := decls[fn]; local {
							out = append(out, fn)
						}
					}
				}
			}
			return true
		})
		return out
	}

	reachable := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if reachable[fn] {
			continue
		}
		reachable[fn] = true
		for _, callee := range callees(decls[fn]) {
			if !reachable[callee] {
				work = append(work, callee)
			}
		}
	}

	hot := make([]*types.Func, 0, len(reachable))
	for fn := range reachable {
		hot = append(hot, fn)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Pos() < hot[j].Pos() })

	for _, fn := range hot {
		checkHotBody(pass, fn.Name(), decls[fn])
	}
	return nil
}

// checkHotBody flags allocation-inducing constructs inside one hot
// function.
func checkHotBody(pass *Pass, name string, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Call-position selectors (x.M() rather than the allocating value x.M)
	// and panic arguments (fatal, not hot) are exempt.
	calleePos := map[ast.Expr]bool{}
	inPanic := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calleePos[ast.Unparen(call.Fun)] = true
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				for _, a := range call.Args {
					inPanic[a] = true
				}
			}
		}
		return true
	})

	// localSlices are slices declared inside this function; appending to
	// one grows per call instead of amortising into a reused buffer.
	localObjs := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Defs[id]; o != nil {
				localObjs[o] = true
			}
		}
		return true
	})

	var skip func(n ast.Node) bool
	skipRoots := map[ast.Node]bool{}
	skip = func(n ast.Node) bool { return skipRoots[n] }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if skip(n) {
			return false
		}
		if inPanic[n] {
			// The whole argument subtree of a panic is a fatal path.
			skipRoots[n] = true
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure literal in hot path %s allocates", name)
			return false

		case *ast.SelectorExpr:
			if calleePos[x] {
				return true
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(x.Pos(), "method value .%s in hot path %s allocates a bound closure", x.Sel.Name, name)
			}
			return true

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "pointer composite literal in hot path %s heap-allocates", name)
					return false
				}
			}
			return true

		case *ast.CompositeLit:
			if t, ok := info.Types[x]; ok {
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "map literal in hot path %s allocates", name)
					return false
				}
			}
			return true

		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t, ok := info.Types[x]; ok && !isConstant(info, x) {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(x.Pos(), "string concatenation in hot path %s allocates", name)
					}
				}
			}
			return true

		case *ast.CallExpr:
			checkHotCall(pass, info, name, x, localObjs)
			return true
		}
		return true
	})
}

// checkHotCall flags allocating calls: builtins (make map/chan/slice, new,
// append-to-local), fmt.*, and interface boxing of non-pointer arguments.
func checkHotCall(pass *Pass, info *types.Info, name string, call *ast.CallExpr, localObjs map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if len(call.Args) > 0 {
					if t, ok := info.Types[call.Args[0]]; ok {
						switch t.Type.Underlying().(type) {
						case *types.Map:
							pass.Reportf(call.Pos(), "make(map) in hot path %s allocates", name)
						case *types.Chan:
							pass.Reportf(call.Pos(), "make(chan) in hot path %s allocates", name)
						case *types.Slice:
							pass.Reportf(call.Pos(), "make of a slice in hot path %s allocates; hoist the buffer", name)
						}
					}
				}
			case "new":
				pass.Reportf(call.Pos(), "new() in hot path %s heap-allocates", name)
			case "append":
				if len(call.Args) > 0 {
					if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if o := info.Uses[target]; o != nil && localObjs[o] {
							pass.Reportf(call.Pos(), "append to function-local slice %s in hot path %s grows per call; reuse a buffer owned by the caller or a field", target.Name, name)
						}
					}
				}
			}
			return
		}
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (formatting boxes its operands)", fn.Name(), name)
		return
	}

	// Interface boxing: concrete non-pointer arguments passed to interface
	// parameters allocate when they escape into the interface value.
	sigT, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigT.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Value != nil { // constants are interned or folded
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // word-sized referents: no boxing allocation
		}
		if at.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes a non-pointer value into an interface in hot path %s", name)
	}
}

// isConstant reports whether the expression folded to a constant.
func isConstant(info *types.Info, e ast.Expr) bool {
	t, ok := info.Types[e]
	return ok && t.Value != nil
}
