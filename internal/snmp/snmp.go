// Package snmp implements the minimal SNMPv2c subset OFLOPS uses as its
// third measurement channel: BER encoding/decoding of GET/GETNEXT/
// RESPONSE PDUs and an agent that serves interface counters (the
// ifInOctets/ifOutOctets style OIDs OFLOPS polls on the switch under
// test). The wire format is real BER, usable over UDP sockets as well as
// the simulated management network.
package snmp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// BER/SNMP tags.
const (
	tagInteger     = 0x02
	tagOctetString = 0x04
	tagNull        = 0x05
	tagOID         = 0x06
	tagSequence    = 0x30
	tagCounter32   = 0x41
	tagTimeTicks   = 0x43
	tagCounter64   = 0x46
	tagNoSuchObj   = 0x80

	tagGetRequest  = 0xa0
	tagGetNext     = 0xa1
	tagGetResponse = 0xa2
)

// Version2c is the SNMP version field value for v2c.
const Version2c = 1

// Errors.
var (
	ErrTruncated = errors.New("snmp: truncated BER")
	ErrBadPacket = errors.New("snmp: malformed packet")
)

// OID is an object identifier.
type OID []uint32

// ParseOID parses a dotted OID like "1.3.6.1.2.1.2.2.1.10.1".
func ParseOID(s string) (OID, error) {
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	oid := make(OID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID %q: %w", s, err)
		}
		oid = append(oid, uint32(v))
	}
	if len(oid) < 2 {
		return nil, fmt.Errorf("snmp: OID %q too short", s)
	}
	return oid, nil
}

// MustOID is ParseOID that panics on malformed input (for constants).
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// String renders the OID dotted.
func (o OID) String() string {
	parts := make([]string, len(o))
	for i, v := range o {
		parts[i] = strconv.FormatUint(uint64(v), 10)
	}
	return strings.Join(parts, ".")
}

// Cmp orders OIDs lexicographically (the MIB walk order).
func (o OID) Cmp(other OID) int {
	for i := 0; i < len(o) && i < len(other); i++ {
		if o[i] != other[i] {
			if o[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// Append returns o with extra arcs appended (fresh backing array).
func (o OID) Append(arcs ...uint32) OID {
	out := make(OID, 0, len(o)+len(arcs))
	out = append(out, o...)
	return append(out, arcs...)
}

// Value is one SNMP value.
type Value struct {
	Kind  byte // tagInteger, tagOctetString, tagCounter32/64, tagTimeTicks, tagNull
	Int   int64
	Bytes []byte
}

// Int64 builds an INTEGER value.
func Int64(v int64) Value { return Value{Kind: tagInteger, Int: v} }

// Counter32 builds a Counter32 value.
func Counter32(v uint32) Value { return Value{Kind: tagCounter32, Int: int64(v)} }

// Counter64 builds a Counter64 value.
func Counter64(v uint64) Value { return Value{Kind: tagCounter64, Int: int64(v)} }

// TimeTicks builds a TimeTicks value (hundredths of seconds).
func TimeTicks(v uint32) Value { return Value{Kind: tagTimeTicks, Int: int64(v)} }

// Str builds an OCTET STRING value.
func Str(s string) Value { return Value{Kind: tagOctetString, Bytes: []byte(s)} }

// Null is the NULL value (used in request varbinds).
var Null = Value{Kind: tagNull}

// NoSuchObject marks an unresolvable OID in a v2c response.
var NoSuchObject = Value{Kind: tagNoSuchObj}

// VarBind couples an OID with a value.
type VarBind struct {
	OID   OID
	Value Value
}

// PDU is one SNMP protocol data unit.
type PDU struct {
	Type      byte // tagGetRequest, tagGetNext, tagGetResponse
	RequestID int32
	ErrStatus int
	ErrIndex  int
	VarBinds  []VarBind
}

// Message is a community-string SNMP message.
type Message struct {
	Version   int
	Community string
	PDU       PDU
}

// PDU type helpers.
const (
	GetRequest  = tagGetRequest
	GetNext     = tagGetNext
	GetResponse = tagGetResponse
)

// ---- BER encoding ----

func berLen(b []byte, n int) []byte {
	if n < 128 {
		return append(b, byte(n))
	}
	if n < 256 {
		return append(b, 0x81, byte(n))
	}
	return append(b, 0x82, byte(n>>8), byte(n))
}

func berTLV(b []byte, tag byte, content []byte) []byte {
	b = append(b, tag)
	b = berLen(b, len(content))
	return append(b, content...)
}

func berInt(b []byte, tag byte, v int64) []byte {
	// Two's-complement minimal encoding.
	var content []byte
	switch {
	case v >= -128 && v < 128:
		content = []byte{byte(v)}
	case v >= -32768 && v < 32768:
		content = []byte{byte(v >> 8), byte(v)}
	case v >= -(1<<23) && v < 1<<23:
		content = []byte{byte(v >> 16), byte(v >> 8), byte(v)}
	case v >= -(1<<31) && v < 1<<31:
		content = []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	default:
		content = []byte{byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
			byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
	return berTLV(b, tag, content)
}

func berOID(b []byte, oid OID) []byte {
	var content []byte
	if len(oid) >= 2 {
		content = append(content, byte(oid[0]*40+oid[1]))
		for _, arc := range oid[2:] {
			content = appendBase128(content, arc)
		}
	}
	return berTLV(b, tagOID, content)
}

func appendBase128(b []byte, v uint32) []byte {
	if v == 0 {
		return append(b, 0)
	}
	var tmp [5]byte
	n := 0
	for v > 0 {
		tmp[n] = byte(v & 0x7f)
		v >>= 7
		n++
	}
	for i := n - 1; i > 0; i-- {
		b = append(b, tmp[i]|0x80)
	}
	return append(b, tmp[0])
}

func encodeValue(b []byte, v Value) []byte {
	switch v.Kind {
	case tagInteger, tagCounter32, tagCounter64, tagTimeTicks:
		return berInt(b, v.Kind, v.Int)
	case tagOctetString:
		return berTLV(b, tagOctetString, v.Bytes)
	case tagNoSuchObj:
		return berTLV(b, tagNoSuchObj, nil)
	default:
		return berTLV(b, tagNull, nil)
	}
}

// Encode serialises the message to BER bytes.
func Encode(m Message) []byte {
	var binds []byte
	for _, vb := range m.PDU.VarBinds {
		var one []byte
		one = berOID(one, vb.OID)
		one = encodeValue(one, vb.Value)
		binds = berTLV(binds, tagSequence, one)
	}
	var pdu []byte
	pdu = berInt(pdu, tagInteger, int64(m.PDU.RequestID))
	pdu = berInt(pdu, tagInteger, int64(m.PDU.ErrStatus))
	pdu = berInt(pdu, tagInteger, int64(m.PDU.ErrIndex))
	pdu = berTLV(pdu, tagSequence, binds)

	var body []byte
	body = berInt(body, tagInteger, int64(m.Version))
	body = berTLV(body, tagOctetString, []byte(m.Community))
	body = berTLV(body, m.PDU.Type, pdu)
	return berTLV(nil, tagSequence, body)
}

// ---- BER decoding ----

type berReader struct{ d []byte }

func (r *berReader) tlv() (tag byte, content []byte, err error) {
	if len(r.d) < 2 {
		return 0, nil, ErrTruncated
	}
	tag = r.d[0]
	lenByte := r.d[1]
	idx := 2
	length := int(lenByte)
	if lenByte&0x80 != 0 {
		n := int(lenByte & 0x7f)
		if n > 3 || len(r.d) < 2+n {
			return 0, nil, ErrTruncated
		}
		length = 0
		for i := 0; i < n; i++ {
			length = length<<8 | int(r.d[2+i])
		}
		idx += n
	}
	if len(r.d) < idx+length {
		return 0, nil, ErrTruncated
	}
	content = r.d[idx : idx+length]
	r.d = r.d[idx+length:]
	return tag, content, nil
}

func (r *berReader) intTLV() (int64, byte, error) {
	tag, content, err := r.tlv()
	if err != nil {
		return 0, 0, err
	}
	return berDecodeInt(content), tag, nil
}

func berDecodeInt(content []byte) int64 {
	var v int64
	if len(content) > 0 && content[0]&0x80 != 0 {
		v = -1 // sign-extend
	}
	for _, c := range content {
		v = v<<8 | int64(c)
	}
	return v
}

func decodeOID(content []byte) (OID, error) {
	if len(content) == 0 {
		return nil, ErrBadPacket
	}
	oid := OID{uint32(content[0]) / 40, uint32(content[0]) % 40}
	var cur uint32
	for _, c := range content[1:] {
		cur = cur<<7 | uint32(c&0x7f)
		if c&0x80 == 0 {
			oid = append(oid, cur)
			cur = 0
		}
	}
	return oid, nil
}

// Decode parses a BER-encoded SNMP message.
func Decode(data []byte) (Message, error) {
	var m Message
	outer := berReader{data}
	tag, body, err := outer.tlv()
	if err != nil {
		return m, err
	}
	if tag != tagSequence {
		return m, ErrBadPacket
	}
	r := berReader{body}
	ver, tag, err := r.intTLV()
	if err != nil || tag != tagInteger {
		return m, ErrBadPacket
	}
	m.Version = int(ver)
	tag, comm, err := r.tlv()
	if err != nil || tag != tagOctetString {
		return m, ErrBadPacket
	}
	m.Community = string(comm)
	pduTag, pduBody, err := r.tlv()
	if err != nil {
		return m, err
	}
	if pduTag != tagGetRequest && pduTag != tagGetNext && pduTag != tagGetResponse {
		return m, fmt.Errorf("snmp: unsupported PDU type %#x", pduTag)
	}
	m.PDU.Type = pduTag
	pr := berReader{pduBody}
	reqID, tag, err := pr.intTLV()
	if err != nil || tag != tagInteger {
		return m, ErrBadPacket
	}
	m.PDU.RequestID = int32(reqID)
	errStatus, _, err := pr.intTLV()
	if err != nil {
		return m, err
	}
	m.PDU.ErrStatus = int(errStatus)
	errIndex, _, err := pr.intTLV()
	if err != nil {
		return m, err
	}
	m.PDU.ErrIndex = int(errIndex)
	tag, binds, err := pr.tlv()
	if err != nil || tag != tagSequence {
		return m, ErrBadPacket
	}
	br := berReader{binds}
	for len(br.d) > 0 {
		tag, one, err := br.tlv()
		if err != nil || tag != tagSequence {
			return m, ErrBadPacket
		}
		vr := berReader{one}
		tag, oidBytes, err := vr.tlv()
		if err != nil || tag != tagOID {
			return m, ErrBadPacket
		}
		oid, err := decodeOID(oidBytes)
		if err != nil {
			return m, err
		}
		vtag, vcontent, err := vr.tlv()
		if err != nil {
			return m, err
		}
		val := Value{Kind: vtag}
		switch vtag {
		case tagInteger, tagCounter32, tagCounter64, tagTimeTicks:
			val.Int = berDecodeInt(vcontent)
		case tagOctetString:
			val.Bytes = append([]byte(nil), vcontent...)
		}
		m.PDU.VarBinds = append(m.PDU.VarBinds, VarBind{OID: oid, Value: val})
	}
	return m, nil
}

// Agent serves a static-shape MIB whose leaf values are computed on each
// request — the pattern used to bridge simulated switch port counters.
type Agent struct {
	Community string
	vars      map[string]func() Value
	order     []OID
	sorted    bool
}

// NewAgent builds an agent answering the given community (empty = any).
func NewAgent(community string) *Agent {
	return &Agent{Community: community, vars: make(map[string]func() Value)}
}

// Register binds an OID to a value function.
func (a *Agent) Register(oid OID, fn func() Value) {
	key := oid.String()
	if _, exists := a.vars[key]; !exists {
		a.order = append(a.order, oid)
		a.sorted = false
	}
	a.vars[key] = fn
}

func (a *Agent) sortOIDs() {
	if !a.sorted {
		sort.Slice(a.order, func(i, j int) bool { return a.order[i].Cmp(a.order[j]) < 0 })
		a.sorted = true
	}
}

// Handle processes one encoded request and returns the encoded response
// (nil for unparseable input or a community mismatch, like an agent
// silently dropping).
func (a *Agent) Handle(request []byte) []byte {
	m, err := Decode(request)
	if err != nil {
		return nil
	}
	if a.Community != "" && m.Community != a.Community {
		return nil
	}
	resp := Message{Version: m.Version, Community: m.Community}
	resp.PDU.Type = GetResponse
	resp.PDU.RequestID = m.PDU.RequestID
	for _, vb := range m.PDU.VarBinds {
		switch m.PDU.Type {
		case GetRequest:
			if fn, ok := a.vars[vb.OID.String()]; ok {
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: vb.OID, Value: fn()})
			} else {
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: vb.OID, Value: NoSuchObject})
			}
		case GetNext:
			next, ok := a.next(vb.OID)
			if !ok {
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: vb.OID, Value: NoSuchObject})
				continue
			}
			resp.PDU.VarBinds = append(resp.PDU.VarBinds,
				VarBind{OID: next, Value: a.vars[next.String()]()})
		default:
			return nil
		}
	}
	return Encode(resp)
}

func (a *Agent) next(after OID) (OID, bool) {
	a.sortOIDs()
	for _, oid := range a.order {
		if oid.Cmp(after) > 0 {
			return oid, true
		}
	}
	return nil, false
}

// Walk returns every (OID, value) pair in MIB order, the result of a full
// GETNEXT walk.
func (a *Agent) Walk() []VarBind {
	a.sortOIDs()
	out := make([]VarBind, 0, len(a.order))
	for _, oid := range a.order {
		out = append(out, VarBind{OID: oid, Value: a.vars[oid.String()]()})
	}
	return out
}

// Standard interface-MIB OID prefixes (1.3.6.1.2.1.2.2.1.<col>.<ifIndex>).
var (
	OIDIfInOctets   = MustOID("1.3.6.1.2.1.2.2.1.10")
	OIDIfOutOctets  = MustOID("1.3.6.1.2.1.2.2.1.16")
	OIDIfInPackets  = MustOID("1.3.6.1.2.1.2.2.1.11")
	OIDIfOutPackets = MustOID("1.3.6.1.2.1.2.2.1.17")
	OIDSysUpTime    = MustOID("1.3.6.1.2.1.1.3.0")
)
