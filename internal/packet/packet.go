// Package packet implements the frame parsing and crafting substrate used
// by the OSNT generator, monitor and the switches under test: Ethernet,
// 802.1Q, ARP, IPv4, IPv6, UDP, TCP and ICMPv4 codecs plus 5-tuple flow
// extraction.
//
// The API follows the two idioms that made gopacket suitable for
// line-rate work: decoding is in-place (DecodeFromBytes resets a
// caller-owned layer struct, no allocation), and serialization prepends
// layers into a reusable buffer from the innermost payload outward.
package packet

import (
	"errors"
	"fmt"
)

// Errors shared by all decoders.
var (
	ErrTooShort = errors.New("packet: data too short for layer")
	ErrVersion  = errors.New("packet: wrong IP version")
)

// EtherType values understood by the library.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeIPv6 uint16 = 0x86dd
)

// IP protocol numbers understood by the library.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the address in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IP4 is an IPv4 address.
type IP4 [4]byte

// String renders the address in dotted decimal.
func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian integer, the form OpenFlow
// matches use.
func (ip IP4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// IP4FromUint32 converts a big-endian integer to an address.
func IP4FromUint32(v uint32) IP4 {
	return IP4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IP6 is an IPv6 address.
type IP6 [16]byte

// String renders the address as eight colon-separated hex groups (no ::
// compression; it is unambiguous and cheap).
func (ip IP6) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		uint16(ip[0])<<8|uint16(ip[1]), uint16(ip[2])<<8|uint16(ip[3]),
		uint16(ip[4])<<8|uint16(ip[5]), uint16(ip[6])<<8|uint16(ip[7]),
		uint16(ip[8])<<8|uint16(ip[9]), uint16(ip[10])<<8|uint16(ip[11]),
		uint16(ip[12])<<8|uint16(ip[13]), uint16(ip[14])<<8|uint16(ip[15]))
}

// SerializeOptions control how SerializeTo fills derived fields.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv4 total length, UDP length,
	// IPv4 IHL) from the payload being wrapped.
	FixLengths bool
	// ComputeChecksums recomputes checksums (IPv4 header, UDP, TCP,
	// ICMP) including pseudo-headers.
	ComputeChecksums bool
}

// SerializableLayer is a layer that can prepend its wire form onto a
// serialize buffer that already holds its payload.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
}

// SerializeBuffer accumulates a packet from the innermost layer outward.
// PrependBytes grows the front (the common case); AppendBytes grows the
// back (trailers, padding). The buffer keeps headroom across Clear calls
// so steady-state serialization does not allocate.
type SerializeBuffer struct {
	buf      []byte
	start    int
	headroom int // front space restored by Clear
}

// NewSerializeBuffer returns a buffer expecting the given amounts of front
// and back growth.
func NewSerializeBuffer(expectedPrepend, expectedAppend int) *SerializeBuffer {
	return &SerializeBuffer{
		buf:      make([]byte, expectedPrepend, expectedPrepend+expectedAppend),
		start:    expectedPrepend,
		headroom: expectedPrepend,
	}
}

// Bytes returns the assembled packet. The slice is invalidated by Clear.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len returns the current packet length.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// PrependBytes returns n bytes of space at the front of the packet. The
// contents are unspecified; the caller must overwrite all of them.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative prepend")
	}
	if b.start < n {
		// Grow the front: reallocate with extra headroom so repeated
		// workloads of this shape stop allocating.
		grow := n - b.start + 32
		grown := make([]byte, len(b.buf)+grow, cap(b.buf)+grow)
		copy(grown[grow:], b.buf)
		b.buf = grown
		b.start += grow
		b.headroom += grow
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes returns n bytes of zeroed space at the back of the packet.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative append")
	}
	old := len(b.buf)
	if cap(b.buf) >= old+n {
		b.buf = b.buf[:old+n]
		tail := b.buf[old:]
		for i := range tail {
			tail[i] = 0
		}
		return tail
	}
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[old:]
}

// Clear resets the buffer to empty, preserving capacity and headroom.
func (b *SerializeBuffer) Clear() {
	b.buf = b.buf[:b.headroom]
	b.start = b.headroom
}

// Serialize assembles layers (outermost first) around an optional payload
// already in the buffer, and returns the packet bytes. It clears the
// buffer first.
func Serialize(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) ([]byte, error) {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// Payload is a raw byte payload usable as the innermost layer.
type Payload []byte

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}

// beU16/beU32 are tiny big-endian helpers; encoding/binary is avoided in
// the per-packet hot path only for clarity of the offset arithmetic.
func beU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func putU16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
