// Package core is the OSNT host API: the paper's "simple and
// programmer-friendly API to control the traffic generation and
// monitoring functionality of the OSNT design, enabling the realisation
// of high precision and throughput measurement tests in software".
//
// A Device wraps one simulated NetFPGA-10G card and hands out per-port
// generators and monitors. On top of that the package provides the two
// measurements the demo performs on switches: latency (from embedded
// transmit timestamps, Demo Part I) and achievable throughput.
package core

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// Device is one OSNT tester: a NetFPGA-10G card plus the host-side
// generator/monitor drivers.
type Device struct {
	Engine *sim.Engine
	Card   *netfpga.Card

	gens map[int]*gen.Generator
	mons map[int]*mon.Monitor
}

// NewDevice builds a tester on the engine. The driver maps are created
// lazily: topology sweeps build thousands of Devices whose ports are
// driven directly through gen.New/mon.Attach.
func NewDevice(e *sim.Engine, cfg netfpga.Config) *Device {
	return &Device{Engine: e, Card: netfpga.New(e, cfg)}
}

// ConfigureGenerator installs a traffic generator on a port, replacing
// any previous one.
func (d *Device) ConfigureGenerator(port int, cfg gen.Config) (*gen.Generator, error) {
	if port < 0 || port >= d.Card.NumPorts() {
		return nil, fmt.Errorf("core: port %d out of range", port)
	}
	g, err := gen.New(d.Card.Port(port), cfg)
	if err != nil {
		return nil, err
	}
	if d.gens == nil {
		d.gens = make(map[int]*gen.Generator)
	}
	d.gens[port] = g
	return g, nil
}

// ConfigureMonitor installs a capture engine on a port, replacing any
// previous one. Invalid capture configurations (mon.New's validation,
// including queue counts beyond the card's DMA budget) surface as
// errors.
func (d *Device) ConfigureMonitor(port int, cfg mon.Config) (*mon.Monitor, error) {
	if port < 0 || port >= d.Card.NumPorts() {
		return nil, fmt.Errorf("core: port %d out of range", port)
	}
	m, err := mon.New(d.Card.Port(port), cfg)
	if err != nil {
		return nil, err
	}
	if d.mons == nil {
		d.mons = make(map[int]*mon.Monitor)
	}
	d.mons[port] = m
	return m, nil
}

// Generator returns the generator installed on the port, or nil.
func (d *Device) Generator(port int) *gen.Generator { return d.gens[port] }

// Monitor returns the monitor installed on the port, or nil.
func (d *Device) Monitor(port int) *mon.Monitor { return d.mons[port] }

// LatencyResult summarises one latency measurement.
type LatencyResult struct {
	// Latency collects per-packet latency samples in picoseconds,
	// computed as (hardware RX timestamp - embedded TX timestamp).
	Latency *stats.Histogram
	// TxPackets is what the generator offered to the MAC.
	TxPackets uint64
	// RxPackets is what the monitor delivered to the host.
	RxPackets uint64
	// TxDropped counts generator-side TX queue overflow (offered load
	// beyond line rate).
	TxDropped uint64
	// CaptureDrops counts monitor-side ring overflow.
	CaptureDrops uint64
}

// Lost returns packets that left the generator but never reached the
// host, excluding capture-path drops (i.e. DUT loss).
func (r *LatencyResult) Lost() uint64 {
	got := r.RxPackets + r.CaptureDrops
	if r.TxPackets <= got {
		return 0
	}
	return r.TxPackets - got
}

// LossFraction returns DUT loss as a fraction of transmitted packets.
func (r *LatencyResult) LossFraction() float64 {
	if r.TxPackets == 0 {
		return 0
	}
	return float64(r.Lost()) / float64(r.TxPackets)
}

// LatencyTest measures packet-processing latency of whatever sits
// between two tester ports — the Demo Part I scenario: "one of the ports
// will be used to generate traffic at variable rates with the
// transmission timestamp embedded in each packet, while the other port
// will be used to capture packets after they traverse the switch".
type LatencyTest struct {
	Device *Device
	// TxPort generates, RxPort captures.
	TxPort, RxPort int
	// Spec is the packet template (MACs must match the DUT's learned
	// stations; IPs/ports identify the probe flow).
	Spec packet.UDPSpec
	// FrameSize is the FCS-inclusive probe size (default 512).
	FrameSize int
	// Load is the offered fraction of line rate (default 0.1). Ignored
	// when Spacing is set.
	Load float64
	// Spacing overrides the CBR spacing derived from Load.
	Spacing gen.Spacing
	// Duration bounds the generation phase (default 10 ms of virtual
	// time).
	Duration sim.Duration
	// Count, when nonzero, bounds the number of probes instead.
	Count uint64
	// Seed feeds stochastic spacings.
	Seed uint64
	// Monitor optionally tunes the capture pipeline (Sink is owned by
	// the test).
	Monitor mon.Config
}

// Run executes the measurement to completion and returns the result.
func (t *LatencyTest) Run() (*LatencyResult, error) {
	if t.FrameSize == 0 {
		t.FrameSize = 512
	}
	if t.Load == 0 {
		t.Load = 0.1
	}
	if t.Duration == 0 {
		t.Duration = 10 * sim.Millisecond
	}
	res := &LatencyResult{Latency: stats.NewHistogram()}

	mcfg := t.Monitor
	// The sink only extracts the embedded timestamp, so record buffers
	// can be recycled as soon as it returns.
	mcfg.RecycleRecords = true
	mcfg.Sink = func(rec mon.Record) {
		ts, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset)
		if !ok {
			return
		}
		res.Latency.Record(int64(rec.TS.Sub(ts)))
	}
	m, err := t.Device.ConfigureMonitor(t.RxPort, mcfg)
	if err != nil {
		return nil, err
	}

	spacing := t.Spacing
	if spacing == nil {
		spacing = gen.CBRForLoad(t.FrameSize, t.Device.Card.Rate(), t.Load)
	}
	spec := t.Spec
	spec.FrameSize = t.FrameSize
	g, err := t.Device.ConfigureGenerator(t.TxPort, gen.Config{
		Source:         &gen.UDPFlowSource{Spec: spec, FrameSize: t.FrameSize},
		Spacing:        spacing,
		Count:          t.Count,
		EmbedTimestamp: true,
		Seed:           t.Seed,
		Pool:           wire.DefaultPool,
	})
	if err != nil {
		return nil, err
	}

	e := t.Device.Engine
	start := e.Now()
	g.Start(start)
	if t.Count > 0 {
		e.Run()
	} else {
		e.RunUntil(start.Add(t.Duration))
		g.Stop()
		// Let in-flight packets and the capture ring drain.
		e.Run()
	}

	res.TxPackets = g.Sent().Packets
	res.TxDropped = g.Dropped()
	res.RxPackets = m.Delivered().Packets
	res.CaptureDrops = m.RingDrops()
	return res, nil
}

// ThroughputResult summarises one achievable-rate measurement.
type ThroughputResult struct {
	// OfferedPPS and OfferedBPS describe the generator's output on the
	// wire (including preamble/IFG overhead for BPS).
	OfferedPPS, OfferedBPS float64
	// DeliveredPPS and DeliveredBPS describe what arrived at the capture
	// port.
	DeliveredPPS, DeliveredBPS float64
	// LossFraction is 1 - delivered/offered packets.
	LossFraction float64
}

// ThroughputTest measures the rate a DUT sustains between two tester
// ports at a fixed offered load.
type ThroughputTest struct {
	Device         *Device
	TxPort, RxPort int
	Spec           packet.UDPSpec
	FrameSize      int
	Load           float64
	Duration       sim.Duration
	Seed           uint64
}

// Run executes the measurement.
func (t *ThroughputTest) Run() (*ThroughputResult, error) {
	if t.FrameSize == 0 {
		t.FrameSize = 512
	}
	if t.Load == 0 {
		t.Load = 1.0
	}
	if t.Duration == 0 {
		t.Duration = 10 * sim.Millisecond
	}
	// Counting at the RX MAC (not the host ring) measures the DUT, not
	// the capture path: one capture queue with an effectively infinite
	// host.
	m, err := t.Device.ConfigureMonitor(t.RxPort, mon.Config{
		Queues: []mon.QueueConfig{{
			RingSize:      1 << 30,
			HostPerPacket: sim.Picosecond,
			HostPerByte:   -1, // negative = zero cost (see mon.QueueConfig)
		}},
	})
	if err != nil {
		return nil, err
	}
	spec := t.Spec
	spec.FrameSize = t.FrameSize
	g, err := t.Device.ConfigureGenerator(t.TxPort, gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: t.FrameSize},
		Spacing: gen.CBRForLoad(t.FrameSize, t.Device.Card.Rate(), t.Load),
		Seed:    t.Seed,
		Pool:    wire.DefaultPool,
	})
	if err != nil {
		return nil, err
	}

	e := t.Device.Engine
	start := e.Now()
	txBefore := g.Sent()
	rxBefore := m.Seen()
	g.Start(start)
	e.RunUntil(start.Add(t.Duration))
	g.Stop()
	e.Run()

	elapsed := t.Duration.Seconds()
	tx := g.Sent().Sub(txBefore)
	rx := m.Seen().Sub(rxBefore)
	res := &ThroughputResult{
		OfferedPPS:   tx.PacketsPerSecond(elapsed),
		OfferedBPS:   tx.BitsPerSecond(elapsed),
		DeliveredPPS: rx.PacketsPerSecond(elapsed),
		DeliveredBPS: rx.BitsPerSecond(elapsed),
	}
	if tx.Packets > 0 {
		lost := float64(tx.Packets) - float64(rx.Packets)
		if lost < 0 {
			lost = 0
		}
		res.LossFraction = lost / float64(tx.Packets)
	}
	return res, nil
}

// WireUp connects tester port tx straight to tester port rx with the
// given propagation delay (a loopback cable), a convenience for
// self-test topologies.
func (d *Device) WireUp(tx, rx int, delay sim.Duration) {
	l := wire.NewLink(d.Engine, d.Card.Rate(), delay, d.Card.Port(rx))
	d.Card.Port(tx).SetLink(l)
}
