// Package flowstats is the stateful per-flow analytics layer of the
// capture path: a cache-efficient, allocation-free flow table keyed on
// the monitor's hardware packet digest, accumulating per-flow counters
// and Dapper-style passive diagnosis — latency from embedded transmit
// timestamps (or the frame's first HopTrace stamp when none is
// embedded), reordering from transmit-timestamp inversions, and loss
// inferred from transmit-timestamp gaps — plus count-min and
// space-saving sketches (sketch.go) for when an exact table cannot fit
// the flow population.
//
// The consumer is a merged capture stream (mon.Merge): per-flow state
// like "last transmit timestamp" is only meaningful if records arrive
// in global hardware-timestamp order, which is exactly what the merge
// reconstructs from the per-queue DMA rings.
package flowstats

import (
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// Sample is one observed packet, as the capture path describes it.
type Sample struct {
	// Digest identifies the flow: the monitor's hardware packet digest
	// over the frame's headers (Config.HashBytes must stop short of any
	// embedded timestamp, or every packet becomes its own flow).
	Digest uint64
	// RxTS is the hardware receive timestamp.
	RxTS timing.Timestamp
	// TxTS is the transmit timestamp embedded by the generator; valid
	// only when HasTx is set.
	TxTS timing.Timestamp
	// HasTx reports whether TxTS carries an embedded timestamp.
	HasTx bool
	// Wire is the FCS-inclusive wire size in bytes.
	Wire int
	// Trace is the frame's per-hop egress trace; when no timestamp is
	// embedded, the first hop's stamp serves as the transmit-side
	// latency reference.
	Trace wire.HopTrace
}

// Flow is one flow's accumulated state. The layout keeps each entry in
// a single contiguous slab (see FlowTable) with the hot-path fields —
// digest, packet counter, ordering state — at the front.
type Flow struct {
	// Digest is the flow key (0 is a legal key; occupancy is tracked
	// separately).
	Digest uint64
	// Packets and Bytes count observed records (wire bytes).
	Packets uint64
	Bytes   uint64
	// FirstRx/LastRx bound the flow's observation window.
	FirstRx timing.Timestamp
	LastRx  timing.Timestamp
	// Reorders counts transmit-timestamp inversions: a packet sent
	// before its predecessor but captured after it.
	Reorders uint64
	// Holes is the inferred loss count: transmit gaps that are integer
	// multiples of the flow's smallest observed gap indicate packets
	// that were sent in between but never captured (exact for CBR
	// flows, an estimate otherwise).
	Holes uint64

	lastTx timing.Timestamp
	hasTx  bool
	minGap sim.Duration
	latSum int64 // picoseconds
	latCnt uint64
	latMin sim.Duration
	latMax sim.Duration
	used   bool
}

// LatencyCount returns how many samples carried a usable latency
// reference.
func (f *Flow) LatencyCount() uint64 { return f.latCnt }

// LatencyMean returns the mean one-way latency, or 0 with no samples.
func (f *Flow) LatencyMean() sim.Duration {
	if f.latCnt == 0 {
		return 0
	}
	return sim.Duration(f.latSum / int64(f.latCnt))
}

// LatencyMin and LatencyMax bound the observed one-way latency.
func (f *Flow) LatencyMin() sim.Duration { return f.latMin }
func (f *Flow) LatencyMax() sim.Duration { return f.latMax }

// FlowTable is an exact per-flow state table built for the per-packet
// hot path: one contiguous []Flow slab, power-of-two sized, open
// addressing with linear probing on the Mix64-whitened digest (the same
// whitening step RSS steering and ECMP spray use). Everything is
// preallocated at construction and Observe never grows the table —
// past the occupancy limit new flows are counted in Overflow instead of
// triggering a rehash mid-capture, which keeps Observe allocation-free
// and O(1) at any load (the Ros-Giralt-style design point: bounded
// probes, no pointers, no per-flow boxes for the cache to chase).
type FlowTable struct {
	entries  []Flow
	mask     uint64
	count    int
	limit    int
	overflow uint64
}

// NewFlowTable returns a table with capacity rounded up to a power of
// two (minimum 16). Flows are admitted until 7/8 occupancy; beyond
// that, new flows go to the overflow counter (existing flows keep
// updating), so probe chains stay short.
func NewFlowTable(capacity int) *FlowTable {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &FlowTable{
		entries: make([]Flow, n),
		mask:    uint64(n - 1),
		limit:   n - n/8,
	}
}

// Len returns the number of tracked flows.
func (t *FlowTable) Len() int { return t.count }

// Overflow returns how many samples arrived for flows the table could
// not admit.
func (t *FlowTable) Overflow() uint64 { return t.overflow }

// lookup returns the slot for digest: its current entry, or the empty
// slot where it would be inserted.
func (t *FlowTable) lookup(digest uint64) *Flow {
	i := packet.Mix64(digest) & t.mask
	for {
		f := &t.entries[i]
		if !f.used || f.Digest == digest {
			return f
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the flow tracked under digest, or nil.
func (t *FlowTable) Lookup(digest uint64) *Flow {
	f := t.lookup(digest)
	if !f.used {
		return nil
	}
	return f
}

// Observe folds one sample into its flow's state, admitting the flow if
// the table has room. It reports whether the sample was tracked.
func (t *FlowTable) Observe(s Sample) bool {
	f := t.lookup(s.Digest)
	if !f.used {
		if t.count >= t.limit {
			t.overflow++
			return false
		}
		t.count++
		f.used = true
		f.Digest = s.Digest
		f.FirstRx = s.RxTS
	}
	f.Packets++
	f.Bytes += uint64(s.Wire)
	f.LastRx = s.RxTS

	// Latency: embedded TX timestamp first, else the first HopTrace
	// stamp (the earliest hardware tap the frame crossed).
	txRef := s.TxTS
	haveRef := s.HasTx
	if !haveRef && s.Trace.Len() > 0 {
		txRef = timing.FromSim(s.Trace.At(0).At)
		haveRef = true
	}
	if haveRef {
		lat := s.RxTS.Sub(txRef)
		if lat < 0 {
			lat = 0
		}
		if f.latCnt == 0 || lat < f.latMin {
			f.latMin = lat
		}
		if lat > f.latMax {
			f.latMax = lat
		}
		f.latSum += int64(lat)
		f.latCnt++
	}

	// Ordering and loss inference need the true transmit order, which
	// only the embedded timestamp carries.
	if s.HasTx {
		if f.hasTx {
			if s.TxTS < f.lastTx {
				f.Reorders++
				return true // keep lastTx: the late packet is old news
			}
			gap := s.TxTS.Sub(f.lastTx)
			if gap > 0 {
				if f.minGap == 0 || gap < f.minGap {
					f.minGap = gap
				}
				// A gap of (k+1)·minGap means k sends fell in between
				// and were never captured. Round to the nearest
				// multiple: timestamps are quantised, not exact.
				if missed := (int64(gap)+int64(f.minGap)/2)/int64(f.minGap) - 1; missed > 0 {
					f.Holes += uint64(missed)
				}
			}
		}
		f.hasTx, f.lastTx = true, s.TxTS
	}
	return true
}

// Top returns up to k tracked flows ordered by packet count (ties by
// ascending digest), for report rendering. It allocates the result
// slice — call it off the hot path.
func (t *FlowTable) Top(k int) []*Flow {
	var top []*Flow
	for i := range t.entries {
		f := &t.entries[i]
		if !f.used {
			continue
		}
		pos := len(top)
		for pos > 0 && flowMore(f, top[pos-1]) {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(top) < k {
			top = append(top, nil)
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = f
	}
	return top
}

// flowMore orders flows by descending packets, then ascending digest —
// a deterministic total order for reports.
func flowMore(a, b *Flow) bool {
	if a.Packets != b.Packets {
		return a.Packets > b.Packets
	}
	return a.Digest < b.Digest
}

// Flows calls fn for every tracked flow, in table order.
func (t *FlowTable) Flows(fn func(*Flow)) {
	for i := range t.entries {
		if t.entries[i].used {
			fn(&t.entries[i])
		}
	}
}
