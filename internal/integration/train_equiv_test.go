package integration_test

import (
	"fmt"
	"math/rand"
	"testing"

	"osnt/internal/filter"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// Frame-train coalescing must be pure bookkeeping: a scenario run with
// any train cap has to produce bit-for-bit the same observable state as
// the per-frame (cap 1) reference — every record's timestamp, digest
// and bytes, every counter, every drop attribution. These tests run
// randomized single-source scenarios across the three hot spots the
// batching fast paths split at (rate conversion, ECMP spray, capture
// filters) and compare complete run summaries across caps 1/4/64.

const equivDur = 300 * sim.Microsecond

// equivFold folds v into an order-sensitive FNV-1a stream digest.
func equivFold(h, v uint64) uint64 {
	const prime = 1099511628211
	for s := 56; s >= 0; s -= 8 {
		h = (h ^ (v >> uint(s) & 0xff)) * prime
	}
	return h
}

// equivSink returns a per-queue record sink folding every delivered
// record — timestamp, hardware digest, wire size and the full (possibly
// thinned) bytes — into *h. Any retimed, reordered, re-thinned or
// corrupted record changes the digest.
func equivSink(h *uint64) func(mon.Record) {
	const prime = 1099511628211
	return func(rec mon.Record) {
		d := equivFold(*h, uint64(rec.TS))
		d = equivFold(d, rec.Hash)
		d = equivFold(d, uint64(rec.WireSize))
		for _, b := range rec.Data {
			d = (d ^ uint64(b)) * prime
		}
		*h = d
	}
}

// equivQueues builds nq sink-equipped capture queues plus the slice of
// their digest accumulators.
func equivQueues(nq int) ([]mon.QueueConfig, []uint64) {
	digests := make([]uint64, nq)
	queues := make([]mon.QueueConfig, nq)
	for i := range queues {
		queues[i] = mon.QueueConfig{
			RingSize:      1 << 14,
			HostPerPacket: sim.Nanosecond,
			HostPerByte:   -1,
			Sink:          equivSink(&digests[i]),
		}
	}
	return queues, digests
}

// equivSummary renders everything a run produced into one comparable
// string: traffic counters, per-queue stream digests, monitor filter and
// ring-drop counts, and the full rendered LossMap table (per-hop,
// per-reason drop attribution against conservation).
func equivSummary(g *gen.Generator, ms []*mon.Monitor, digests [][]uint64, top *topo.Topology) string {
	consumed := g.Sent().Packets + g.Dropped()
	var seen, delivered uint64
	s := fmt.Sprintf("sent=%d", consumed)
	for i, m := range ms {
		seen += m.Seen().Packets
		delivered += m.Delivered().Packets
		s += fmt.Sprintf("\nmon%d: seen=%d/%dB delivered=%d/%dB filtered=%d ringDrops=%d digests=%x",
			i, m.Seen().Packets, m.Seen().Bytes, m.Delivered().Packets, m.Delivered().Bytes,
			m.Filtered(), m.RingDrops(), digests[i])
	}
	lm := stats.NewLossMap(consumed, seen, top.Drops())
	s += fmt.Sprintf("\nconserved=%v\n%s", lm.Conserved(), lm.Table().String())
	return s
}

// equivScenario is one randomized rig: mk draws its parameters from rng
// once, then the returned run function replays the identical scenario at
// a given train cap.
type equivScenario struct {
	name string
	mk   func(rng *rand.Rand) func(cap int) string
}

// mixedRateScenario saturates a 40G→10G down-converting DUT whose
// shallow egress FIFO overflows continuously: trains must split at the
// rate-conversion boundary and attribute exactly the same drops.
func mixedRateScenario(rng *rand.Rand) func(cap int) string {
	fs := []int{64, 128, 512, 1518}[rng.Intn(4)]
	nflows := []int{1, 4, 64}[rng.Intn(3)]
	qcap := []int{16, 64}[rng.Intn(2)]
	return func(cap int) string {
		e := sim.NewEngine()
		top := topo.New().
			Tester("tx", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			Tester("rx", netfpga.Config{Ports: 1}).
			DUT("sw", switchsim.Config{
				Ports:           2,
				PortRates:       []wire.Rate{wire.Rate40G, wire.Rate10G},
				EgressQueueCap:  qcap,
				LookupPerPacket: sim.Nanosecond,
				LookupPerByte:   sim.Picoseconds(10),
			}).
			Link("tx:0", "sw:0").
			Link("sw:1", "rx:0").
			MustBuild(e)
		top.DUT("sw").Learn(spec.DstMAC, 1)
		queues, digests := equivQueues(1)
		m := top.AttachMonitor("rx:0", mon.Config{
			SnapLen:   64,
			HashBytes: packet.HeaderDigestBytes,
			Queues:    queues,
		})
		g := equivGen(top, "tx:0", fs, nflows, wire.Rate40G, cap)
		g.Start(0)
		e.RunUntil(sim.Time(equivDur))
		g.Stop()
		e.Run()
		return equivSummary(g, []*mon.Monitor{m}, [][]uint64{digests}, top)
	}
}

// sprayScenario drives an ECMP group of two same-rate uplinks, each with
// its own capture: spray decisions must land every frame on the same
// member with and without trains (uniform trains spray whole, mixed
// flows fall back per frame).
func sprayScenario(rng *rand.Rand) func(cap int) string {
	fs := []int{64, 256, 1518}[rng.Intn(3)]
	nflows := []int{1, 8, 64}[rng.Intn(3)]
	return func(cap int) string {
		e := sim.NewEngine()
		top := topo.New().
			Tester("tx", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			Tester("rx0", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			Tester("rx1", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{
				Ports:           3,
				Rate:            wire.Rate40G,
				LookupPerPacket: sim.Nanosecond,
				LookupPerByte:   sim.Picoseconds(10),
			}).
			Link("tx:0", "sw:0").
			Link("sw:1", "rx0:0").
			Link("sw:2", "rx1:0").
			MustBuild(e)
		sw := top.DUT("sw")
		sw.LearnGroup(spec.DstMAC, sw.AddGroup(1, 2))
		var ms []*mon.Monitor
		var digests [][]uint64
		for _, ref := range []string{"rx0:0", "rx1:0"} {
			queues, d := equivQueues(1)
			ms = append(ms, top.AttachMonitor(ref, mon.Config{
				SnapLen:   64,
				HashBytes: packet.HeaderDigestBytes,
				Queues:    queues,
			}))
			digests = append(digests, d)
		}
		g := equivGen(top, "tx:0", fs, nflows, wire.Rate40G, cap)
		g.Start(0)
		e.RunUntil(sim.Time(equivDur))
		g.Stop()
		e.Run()
		return equivSummary(g, ms, digests, top)
	}
}

// filterScenario exercises the capture-side split points: a hardware
// filter table that drops one flow, pins a port range to a fixed queue
// with its own snap length, and hash-steers the rest across four rings —
// train admission must classify every frame exactly as the per-frame
// path does, thinning included.
func filterScenario(rng *rand.Rand) func(cap int) string {
	fs := []int{64, 128, 512}[rng.Intn(3)]
	nflows := []int{8, 64}[rng.Intn(2)]
	thinFirst := rng.Intn(2) == 1
	return func(cap int) string {
		e := sim.NewEngine()
		top := topo.New().
			Tester("osnt", netfpga.Config{Ports: 2}).
			Link("osnt:0", "osnt:1").
			MustBuild(e)
		filters := filter.NewTable(filter.Capture)
		// Flow 0 is rejected in hardware.
		if err := filters.Append(&filter.Rule{
			Name: "drop-first-flow", Action: filter.Drop,
			SrcPortMin: spec.SrcPort, SrcPortMax: spec.SrcPort,
		}); err != nil {
			panic(err)
		}
		// Flows 1–2 bypass steering into queue 3, cut to 48 B.
		if err := filters.Append(&filter.Rule{
			Name: "pin-early-flows", Action: filter.Capture,
			SrcPortMin: spec.SrcPort + 1, SrcPortMax: spec.SrcPort + 2,
			PinQueue: 3, SnapLen: 48,
		}); err != nil {
			panic(err)
		}
		queues, digests := equivQueues(4)
		m := top.AttachMonitor("osnt:1", mon.Config{
			SnapLen:          64,
			HashBytes:        packet.HeaderDigestBytes,
			Filters:          filters,
			ThinBeforeFilter: thinFirst,
			Steer:            mon.SteerHash,
			Queues:           queues,
		})
		g := equivGen(top, "osnt:0", fs, nflows, wire.Rate10G, cap)
		g.Start(0)
		e.RunUntil(sim.Time(equivDur))
		g.Stop()
		e.Run()
		return equivSummary(g, []*mon.Monitor{m}, [][]uint64{digests}, top)
	}
}

// equivGen builds the scenario's single saturating source: load 1.0 so
// consecutive frames abut and trains actually form at every cap > 1.
func equivGen(top *topo.Topology, port string, fs, nflows int, rate wire.Rate, cap int) *gen.Generator {
	g, err := gen.New(top.Port(port), gen.Config{
		Source:   &gen.UDPFlowSource{Spec: spec, NumFlows: nflows, FrameSize: fs},
		Spacing:  gen.CBRForLoad(fs, rate, 1.0),
		Pool:     wire.DefaultPool,
		MaxTrain: cap,
		Until:    sim.Time(equivDur),
	})
	if err != nil {
		panic(err)
	}
	return g
}

// TestTrainEquivalence is the batching correctness property test: for
// every randomized scenario, runs with train caps 4 and 64 must produce
// summaries identical to the per-frame cap-1 reference.
func TestTrainEquivalence(t *testing.T) {
	scenarios := []equivScenario{
		{"mixed-rate", mixedRateScenario},
		{"ecmp-spray", sprayScenario},
		{"filters", filterScenario},
	}
	for _, sc := range scenarios {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				run := sc.mk(rand.New(rand.NewSource(seed)))
				ref := run(1)
				for _, cap := range []int{4, 64} {
					if got := run(cap); got != ref {
						t.Errorf("cap %d diverges from per-frame reference:\n--- cap 1 ---\n%s\n--- cap %d ---\n%s",
							cap, ref, cap, got)
					}
				}
			})
		}
	}
}
