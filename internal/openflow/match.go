package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"osnt/internal/packet"
)

// Wildcard flag bits of ofp_match (OpenFlow 1.0 §5.2.3).
const (
	WildInPort     uint32 = 1 << 0
	WildDlVlan     uint32 = 1 << 1
	WildDlSrc      uint32 = 1 << 2
	WildDlDst      uint32 = 1 << 3
	WildDlType     uint32 = 1 << 4
	WildNwProto    uint32 = 1 << 5
	WildTpSrc      uint32 = 1 << 6
	WildTpDst      uint32 = 1 << 7
	wildNwSrcShift        = 8
	wildNwDstShift        = 14
	WildNwSrcAll   uint32 = 32 << wildNwSrcShift
	WildNwDstAll   uint32 = 32 << wildNwDstShift
	WildDlVlanPcp  uint32 = 1 << 20
	WildNwTos      uint32 = 1 << 21
	// WildAll wildcards every field.
	WildAll uint32 = (1 << 22) - 1
)

// matchLen is the ofp_match wire size.
const matchLen = 40

// Match is ofp_match: a 12-tuple with per-field wildcarding and CIDR-style
// wildcard bit counts on the IP addresses.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DlSrc     packet.MAC
	DlDst     packet.MAC
	DlVlan    uint16
	DlVlanPcp uint8
	DlType    uint16
	NwTos     uint8
	NwProto   uint8
	NwSrc     uint32
	NwDst     uint32
	TpSrc     uint16
	TpDst     uint16
}

// MatchAll returns the fully wildcarded match.
func MatchAll() Match { return Match{Wildcards: WildAll} }

// NwSrcWildBits returns how many low-order bits of NwSrc are wildcarded
// (0 = exact, ≥32 = fully wildcarded).
func (m *Match) NwSrcWildBits() int { return int(m.Wildcards >> wildNwSrcShift & 0x3f) }

// NwDstWildBits returns how many low-order bits of NwDst are wildcarded.
func (m *Match) NwDstWildBits() int { return int(m.Wildcards >> wildNwDstShift & 0x3f) }

// SetNwSrcPrefix sets an exact-prefix match on the source address
// (prefixLen 32 = exact host, 0 = any).
func (m *Match) SetNwSrcPrefix(addr packet.IP4, prefixLen int) {
	m.NwSrc = addr.Uint32()
	m.Wildcards = m.Wildcards&^(uint32(0x3f)<<wildNwSrcShift) |
		uint32(32-prefixLen)<<wildNwSrcShift
}

// SetNwDstPrefix sets an exact-prefix match on the destination address.
func (m *Match) SetNwDstPrefix(addr packet.IP4, prefixLen int) {
	m.NwDst = addr.Uint32()
	m.Wildcards = m.Wildcards&^(uint32(0x3f)<<wildNwDstShift) |
		uint32(32-prefixLen)<<wildNwDstShift
}

func (m *Match) encode(b []byte) []byte {
	b = be32(b, m.Wildcards)
	b = be16(b, m.InPort)
	b = append(b, m.DlSrc[:]...)
	b = append(b, m.DlDst[:]...)
	b = be16(b, m.DlVlan)
	b = append(b, m.DlVlanPcp, 0)
	b = be16(b, m.DlType)
	b = append(b, m.NwTos, m.NwProto, 0, 0)
	b = be32(b, m.NwSrc)
	b = be32(b, m.NwDst)
	b = be16(b, m.TpSrc)
	return be16(b, m.TpDst)
}

func (m *Match) decode(d []byte) error {
	if len(d) < matchLen {
		return ErrTruncated
	}
	m.Wildcards = binary.BigEndian.Uint32(d[0:4])
	m.InPort = binary.BigEndian.Uint16(d[4:6])
	copy(m.DlSrc[:], d[6:12])
	copy(m.DlDst[:], d[12:18])
	m.DlVlan = binary.BigEndian.Uint16(d[18:20])
	m.DlVlanPcp = d[20]
	m.DlType = binary.BigEndian.Uint16(d[22:24])
	m.NwTos = d[24]
	m.NwProto = d[25]
	m.NwSrc = binary.BigEndian.Uint32(d[28:32])
	m.NwDst = binary.BigEndian.Uint32(d[32:36])
	m.TpSrc = binary.BigEndian.Uint16(d[36:38])
	m.TpDst = binary.BigEndian.Uint16(d[38:40])
	return nil
}

// Key is the header 12-tuple of one packet, the value a Match is tested
// against.
type Key struct {
	InPort    uint16
	DlSrc     packet.MAC
	DlDst     packet.MAC
	DlVlan    uint16 // 0xffff = untagged, per OF 1.0
	DlVlanPcp uint8
	DlType    uint16
	NwTos     uint8
	NwProto   uint8
	NwSrc     uint32
	NwDst     uint32
	TpSrc     uint16
	TpDst     uint16
}

// VlanNone is the OF 1.0 encoding of "no VLAN tag".
const VlanNone uint16 = 0xffff

// KeyFromPacket extracts the match key of an Ethernet frame arriving on
// inPort, following the OpenFlow 1.0 header parsing rules.
func KeyFromPacket(data []byte, inPort uint16) (Key, error) {
	k := Key{InPort: inPort, DlVlan: VlanNone}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(data); err != nil {
		return k, err
	}
	k.DlSrc = eth.Src
	k.DlDst = eth.Dst
	k.DlType = eth.EtherType
	payload := eth.Payload()
	if eth.EtherType == packet.EtherTypeVLAN {
		var vlan packet.VLAN
		if err := vlan.DecodeFromBytes(payload); err != nil {
			return k, err
		}
		k.DlVlan = vlan.ID
		k.DlVlanPcp = vlan.Priority
		k.DlType = vlan.EtherType
		payload = vlan.Payload()
	}
	switch k.DlType {
	case packet.EtherTypeIPv4:
		var ip packet.IPv4
		if err := ip.DecodeFromBytes(payload); err != nil {
			return k, err
		}
		k.NwTos = ip.TOS & 0xfc
		k.NwProto = ip.Proto
		k.NwSrc = ip.Src.Uint32()
		k.NwDst = ip.Dst.Uint32()
		if ip.FragOff == 0 {
			switch ip.Proto {
			case packet.ProtoTCP, packet.ProtoUDP:
				l4 := ip.Payload()
				if len(l4) >= 4 {
					k.TpSrc = binary.BigEndian.Uint16(l4[0:2])
					k.TpDst = binary.BigEndian.Uint16(l4[2:4])
				}
			case packet.ProtoICMP:
				l4 := ip.Payload()
				if len(l4) >= 2 {
					k.TpSrc = uint16(l4[0]) // ICMP type
					k.TpDst = uint16(l4[1]) // ICMP code
				}
			}
		}
	case packet.EtherTypeARP:
		var arp packet.ARP
		if err := arp.DecodeFromBytes(payload); err == nil {
			k.NwProto = uint8(arp.Op)
			k.NwSrc = arp.SenderIP.Uint32()
			k.NwDst = arp.TargetIP.Uint32()
		}
	}
	return k, nil
}

// Covers reports whether the match accepts the key under OpenFlow 1.0
// wildcard semantics.
func (m *Match) Covers(k *Key) bool {
	w := m.Wildcards
	if w&WildInPort == 0 && m.InPort != k.InPort {
		return false
	}
	if w&WildDlSrc == 0 && m.DlSrc != k.DlSrc {
		return false
	}
	if w&WildDlDst == 0 && m.DlDst != k.DlDst {
		return false
	}
	if w&WildDlVlan == 0 && m.DlVlan != k.DlVlan {
		return false
	}
	if w&WildDlVlanPcp == 0 && m.DlVlanPcp != k.DlVlanPcp {
		return false
	}
	if w&WildDlType == 0 && m.DlType != k.DlType {
		return false
	}
	if w&WildNwTos == 0 && m.NwTos != k.NwTos {
		return false
	}
	if w&WildNwProto == 0 && m.NwProto != k.NwProto {
		return false
	}
	if bits := m.NwSrcWildBits(); bits < 32 {
		mask := ^uint32(0) << uint(bits)
		if m.NwSrc&mask != k.NwSrc&mask {
			return false
		}
	}
	if bits := m.NwDstWildBits(); bits < 32 {
		mask := ^uint32(0) << uint(bits)
		if m.NwDst&mask != k.NwDst&mask {
			return false
		}
	}
	if w&WildTpSrc == 0 && m.TpSrc != k.TpSrc {
		return false
	}
	if w&WildTpDst == 0 && m.TpDst != k.TpDst {
		return false
	}
	return true
}

// Exact reports whether the match wildcards nothing (an exact-match
// entry, eligible for a hash-table fast path).
func (m *Match) Exact() bool {
	return m.Wildcards&^(uint32(0x3f)<<wildNwSrcShift|uint32(0x3f)<<wildNwDstShift) == 0 &&
		m.NwSrcWildBits() == 0 && m.NwDstWildBits() == 0
}

// ExactKey converts an exact match into its Key (only meaningful when
// Exact() is true).
func (m *Match) ExactKey() Key {
	return Key{
		InPort: m.InPort, DlSrc: m.DlSrc, DlDst: m.DlDst,
		DlVlan: m.DlVlan, DlVlanPcp: m.DlVlanPcp, DlType: m.DlType,
		NwTos: m.NwTos, NwProto: m.NwProto, NwSrc: m.NwSrc, NwDst: m.NwDst,
		TpSrc: m.TpSrc, TpDst: m.TpDst,
	}
}

// Subsumes reports whether every packet o could accept is also accepted
// by m — the relation OpenFlow 1.0 non-strict DELETE/MODIFY use to pick
// table entries ("match" in the loose sense of §4.6).
func (m *Match) Subsumes(o *Match) bool {
	type field struct {
		bit uint32
		eq  bool
	}
	fields := []field{
		{WildInPort, m.InPort == o.InPort},
		{WildDlSrc, m.DlSrc == o.DlSrc},
		{WildDlDst, m.DlDst == o.DlDst},
		{WildDlVlan, m.DlVlan == o.DlVlan},
		{WildDlVlanPcp, m.DlVlanPcp == o.DlVlanPcp},
		{WildDlType, m.DlType == o.DlType},
		{WildNwTos, m.NwTos == o.NwTos},
		{WildNwProto, m.NwProto == o.NwProto},
		{WildTpSrc, m.TpSrc == o.TpSrc},
		{WildTpDst, m.TpDst == o.TpDst},
	}
	for _, f := range fields {
		if m.Wildcards&f.bit != 0 {
			continue // m wildcards the field: anything goes
		}
		if o.Wildcards&f.bit != 0 || !f.eq {
			return false // m is specific but o is looser or different
		}
	}
	// Prefixes: m's prefix must be no longer than o's and agree on the
	// shared bits.
	mb, ob := m.NwSrcWildBits(), o.NwSrcWildBits()
	if mb < 32 {
		if ob > mb {
			return false
		}
		mask := ^uint32(0) << uint(mb)
		if m.NwSrc&mask != o.NwSrc&mask {
			return false
		}
	}
	mb, ob = m.NwDstWildBits(), o.NwDstWildBits()
	if mb < 32 {
		if ob > mb {
			return false
		}
		mask := ^uint32(0) << uint(mb)
		if m.NwDst&mask != o.NwDst&mask {
			return false
		}
	}
	return true
}

// MatchFromKey builds the exact match for a key.
func MatchFromKey(k Key) Match {
	return Match{
		InPort: k.InPort, DlSrc: k.DlSrc, DlDst: k.DlDst,
		DlVlan: k.DlVlan, DlVlanPcp: k.DlVlanPcp, DlType: k.DlType,
		NwTos: k.NwTos, NwProto: k.NwProto, NwSrc: k.NwSrc, NwDst: k.NwDst,
		TpSrc: k.TpSrc, TpDst: k.TpDst,
	}
}

// String renders the non-wildcarded fields.
func (m Match) String() string {
	var parts []string
	w := m.Wildcards
	if w&WildInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if w&WildDlType == 0 {
		parts = append(parts, fmt.Sprintf("dl_type=%#04x", m.DlType))
	}
	if w&WildNwProto == 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.NwProto))
	}
	if b := m.NwSrcWildBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", packet.IP4FromUint32(m.NwSrc), 32-b))
	}
	if b := m.NwDstWildBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", packet.IP4FromUint32(m.NwDst), 32-b))
	}
	if w&WildTpSrc == 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TpSrc))
	}
	if w&WildTpDst == 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TpDst))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
