package gen

import (
	"testing"
	"testing/quick"

	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/pcap"
	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

var spec = packet.UDPSpec{
	SrcMAC:  packet.MAC{2, 0, 0, 0, 0, 1},
	DstMAC:  packet.MAC{2, 0, 0, 0, 0, 2},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

type rxCollector struct {
	frames []*wire.Frame
	times  []sim.Time
}

func (r *rxCollector) Receive(f *wire.Frame, _, at sim.Time) {
	r.frames = append(r.frames, f)
	r.times = append(r.times, at)
}

func testRig(t *testing.T) (*sim.Engine, *netfpga.Card, *rxCollector) {
	t.Helper()
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{})
	rx := &rxCollector{}
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rx))
	return e, card, rx
}

func TestCBRLineRate(t *testing.T) {
	// E1 in miniature: 64B CBR at exactly line rate for 1 ms must deliver
	// the theoretical packet count (14.88 pkts/µs → 14880 in 1ms ±1).
	e, card, rx := testRig(t)
	src := &UDPFlowSource{Spec: spec, FrameSize: 64}
	g, err := New(card.Port(0), Config{
		Source:  src,
		Spacing: CBRForLoad(64, wire.Rate10G, 1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	got := len(rx.frames)
	if got < 14880 || got > 14882 {
		t.Fatalf("delivered %d frames in 1ms, want ≈14881", got)
	}
	if g.Dropped() != 0 {
		t.Fatalf("dropped %d at exactly line rate", g.Dropped())
	}
	// Spacing must be exactly one 64B slot.
	for i := 1; i < 100; i++ {
		if gap := rx.times[i].Sub(rx.times[i-1]); gap != 67200 {
			t.Fatalf("gap %d = %v, want 67.2ns", i, gap)
		}
	}
}

func TestCBRHalfLoad(t *testing.T) {
	e, card, rx := testRig(t)
	src := &UDPFlowSource{Spec: spec, FrameSize: 512}
	g, _ := New(card.Port(0), Config{
		Source:  src,
		Spacing: CBRForLoad(512, wire.Rate10G, 0.5),
	})
	g.Start(0)
	e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	want := wire.MaxPPS(512, wire.Rate10G) * 0.5 / 1000 // per ms
	got := float64(len(rx.frames))
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("half load delivered %v, want ≈%v", got, want)
	}
}

func TestCountLimit(t *testing.T) {
	e, card, rx := testRig(t)
	done := false
	g, _ := New(card.Port(0), Config{
		Source:  &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: CBR{Interval: 100 * sim.Nanosecond},
		Count:   50,
	})
	g.OnDone(func() { done = true })
	g.Start(0)
	e.Run()
	if len(rx.frames) != 50 {
		t.Fatalf("delivered %d, want 50", len(rx.frames))
	}
	if !done || g.Running() {
		t.Fatal("done callback / running state wrong")
	}
	if g.Sent().Packets != 50 {
		t.Fatalf("sent counter %d", g.Sent().Packets)
	}
}

func TestTimestampEmbedExtract(t *testing.T) {
	e, card, rx := testRig(t)
	g, _ := New(card.Port(0), Config{
		Source:         &UDPFlowSource{Spec: spec, FrameSize: 128},
		Spacing:        CBR{Interval: sim.Microsecond},
		Count:          10,
		EmbedTimestamp: true,
	})
	g.Start(0)
	e.Run()
	if len(rx.frames) != 10 {
		t.Fatalf("delivered %d", len(rx.frames))
	}
	for i, f := range rx.frames {
		ts, ok := ExtractTimestamp(f.Data, DefaultTimestampOffset)
		if !ok {
			t.Fatalf("frame %d: no timestamp", i)
		}
		// TX timestamps latch at serialisation start: arrival time minus
		// serialisation time (zero propagation delay).
		start := rx.times[i].Sub(0) - wire.SerializationTime(128, wire.Rate10G)
		want := timing.Quantize(sim.Time(start))
		if ts != want {
			t.Fatalf("frame %d ts = %v, want %v", i, ts, want)
		}
	}
}

func TestEmbedBounds(t *testing.T) {
	buf := make([]byte, 49)
	if EmbedTimestamp(buf, 42, 1) {
		t.Fatal("embed must fail with 7 bytes of room")
	}
	if _, ok := ExtractTimestamp(buf, 42); ok {
		t.Fatal("extract must fail with 7 bytes of room")
	}
	buf = make([]byte, 50)
	if !EmbedTimestamp(buf, 42, 0x0123456789abcdef) {
		t.Fatal("embed failed with exact room")
	}
	ts, ok := ExtractTimestamp(buf, 42)
	if !ok || ts != 0x0123456789abcdef {
		t.Fatalf("extract %v %v", ts, ok)
	}
	if EmbedTimestamp(buf, -1, 1) {
		t.Fatal("negative offset accepted")
	}
}

// Property: embed/extract round trips any timestamp at any valid offset.
func TestPropertyTimestampRoundTrip(t *testing.T) {
	f := func(ts uint64, off uint8, pad uint8) bool {
		offset := int(off % 64)
		buf := make([]byte, offset+TimestampLen+int(pad%32))
		if !EmbedTimestamp(buf, offset, timing.Timestamp(ts)) {
			return false
		}
		got, ok := ExtractTimestamp(buf, offset)
		return ok && got == timing.Timestamp(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	e, card, rx := testRig(t)
	mean := 500 * sim.Nanosecond // 2 Mpps
	g, _ := New(card.Port(0), Config{
		Source:  &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: Poisson{Mean: mean},
		Seed:    42,
	})
	g.Start(0)
	e.RunUntil(20 * sim.Time(sim.Millisecond))
	g.Stop()
	got := float64(len(rx.frames))
	want := 20e-3 / 500e-9
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("poisson delivered %v in 20ms, want ≈%v", got, want)
	}
	// Gaps must vary (not CBR).
	var distinct int
	seen := map[sim.Duration]bool{}
	for i := 1; i < 50; i++ {
		d := rx.times[i].Sub(rx.times[i-1])
		if !seen[d] {
			seen[d] = true
			distinct++
		}
	}
	if distinct < 10 {
		t.Fatalf("poisson gaps look constant: %d distinct", distinct)
	}
}

func TestBurstSpacing(t *testing.T) {
	b := &Burst{Interval: 10, On: 30, Off: 100}
	r := sim.NewRand(1)
	var gaps []sim.Duration
	for i := 0; i < 6; i++ {
		gaps = append(gaps, b.Next(r))
	}
	// elapsed: 10,20,30→gap 110 reset; 10,20,30→110
	want := []sim.Duration{10, 10, 110, 10, 10, 110}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("burst gaps %v, want %v", gaps, want)
		}
	}
}

func TestIMIXSource(t *testing.T) {
	e, card, rx := testRig(t)
	g, _ := New(card.Port(0), Config{
		Source:  &UDPFlowSource{Spec: spec, Sizes: IMIXSizes},
		Spacing: CBR{Interval: 2 * sim.Microsecond},
		Count:   120,
	})
	g.Start(0)
	e.Run()
	counts := map[int]int{}
	for _, f := range rx.frames {
		counts[f.Size]++
	}
	if counts[64] != 70 || counts[570] != 40 || counts[1518] != 10 {
		t.Fatalf("IMIX mix %v, want 70/40/10", counts)
	}
}

func TestUDPFlowSourceFlows(t *testing.T) {
	src := &UDPFlowSource{Spec: spec, NumFlows: 4, FrameSize: 96}
	seen := map[uint16]bool{}
	for i := 0; i < 8; i++ {
		f := src.Next()
		fl, ok := packet.ExtractFlow(f.Data)
		if !ok {
			t.Fatal("no flow")
		}
		seen[fl.SrcPort] = true
	}
	if len(seen) != 4 {
		t.Fatalf("distinct flows = %d, want 4", len(seen))
	}
}

func TestSliceSource(t *testing.T) {
	f1 := wire.NewFrame(make([]byte, 60))
	f2 := wire.NewFrame(make([]byte, 100))
	s := &SliceSource{Frames: []*wire.Frame{f1, f2}}
	a, b, c := s.Next(), s.Next(), s.Next()
	if a == nil || b == nil || c != nil {
		t.Fatal("non-loop slice source")
	}
	if a.Size != 64 || b.Size != 104 {
		t.Fatal("sizes")
	}
	a.Data[0] = 0xff
	if f1.Data[0] == 0xff {
		t.Fatal("source must clone frames")
	}
	loop := &SliceSource{Frames: []*wire.Frame{f1}, Loop: true}
	for i := 0; i < 10; i++ {
		if loop.Next() == nil {
			t.Fatal("loop source ended")
		}
	}
}

func TestPCAPReplayAsRecorded(t *testing.T) {
	// Build a capture with known gaps and replay it preserving timing.
	recs := []pcap.Record{
		{TS: 0, Data: withSize(spec, 64), OrigLen: 60},
		{TS: sim.Time(10 * sim.Microsecond), Data: withSize(spec, 64), OrigLen: 60},
		{TS: sim.Time(15 * sim.Microsecond), Data: withSize(spec, 64), OrigLen: 60},
	}
	e, card, rx := testRig(t)
	g, _ := New(card.Port(0), Config{
		Source:  &PCAPSource{Records: recs},
		Spacing: &RecordedSpacing{Records: recs},
	})
	g.Start(0)
	e.Run()
	if len(rx.frames) != 3 {
		t.Fatalf("replayed %d", len(rx.frames))
	}
	gap1 := rx.times[1].Sub(rx.times[0])
	gap2 := rx.times[2].Sub(rx.times[1])
	if gap1 != 10*sim.Microsecond || gap2 != 5*sim.Microsecond {
		t.Fatalf("gaps %v %v, want 10µs 5µs", gap1, gap2)
	}
}

func TestPCAPReplayScaled(t *testing.T) {
	recs := []pcap.Record{
		{TS: 0, Data: withSize(spec, 64), OrigLen: 60},
		{TS: sim.Time(10 * sim.Microsecond), Data: withSize(spec, 64), OrigLen: 60},
	}
	e, card, rx := testRig(t)
	g, _ := New(card.Port(0), Config{
		Source:  &PCAPSource{Records: recs},
		Spacing: &RecordedSpacing{Records: recs, Scale: 0.5},
	})
	g.Start(0)
	e.Run()
	if gap := rx.times[1].Sub(rx.times[0]); gap != 5*sim.Microsecond {
		t.Fatalf("scaled gap = %v, want 5µs", gap)
	}
}

func TestOverloadClipsAtLineRate(t *testing.T) {
	// Offer 150% of line rate: delivery must stay at line rate and the
	// excess must be counted as drops once the queue fills.
	e, card, rx := testRig(t)
	g, _ := New(card.Port(0), Config{
		Source:  &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: CBRForLoad(64, wire.Rate10G, 1.5),
	})
	g.Start(0)
	e.RunUntil(10 * sim.Time(sim.Millisecond))
	g.Stop()
	maxFrames := int(wire.MaxPPS(64, wire.Rate10G)*10e-3) + 2
	if len(rx.frames) > maxFrames {
		t.Fatalf("delivered %d > line-rate max %d", len(rx.frames), maxFrames)
	}
	// 8192-slot queue absorbs the first ~16ms of 50% excess at 22Mpps
	// offered... at 10ms we expect drops to have started: excess ≈
	// 22.3Mpps*10ms - 14.88Mpps*10ms - 8192 ≈ 66k.
	if g.Dropped() == 0 {
		t.Fatal("overload produced no drops")
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{})
	if _, err := New(card.Port(0), Config{Spacing: CBR{1}}); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := New(card.Port(0), Config{Source: &SliceSource{}}); err == nil {
		t.Fatal("missing spacing accepted")
	}
}

// withSize builds a frame of the given FCS-inclusive size from the shared
// spec.
func withSize(s packet.UDPSpec, n int) []byte {
	s.FrameSize = n
	return s.Build()
}

func BenchmarkGeneratorLineRate(b *testing.B) {
	e := sim.NewEngine()
	card := netfpga.New(e, netfpga.Config{})
	sinkCount := 0
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0,
		wire.EndpointFunc(func(*wire.Frame, sim.Time, sim.Time) { sinkCount++ })))
	g, _ := New(card.Port(0), Config{
		Source:         &UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing:        CBRForLoad(64, wire.Rate10G, 1.0),
		EmbedTimestamp: true,
	})
	g.Start(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.RunFor(67200) // one 64B slot of virtual time per iteration
	}
	g.Stop()
}
