package topo

import (
	"strings"
	"testing"

	"osnt/internal/filter"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/ofswitch"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

var testSpec = packet.UDPSpec{
	SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
	DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

// wantBuildError asserts Build fails and the message mentions every
// fragment (validation must name the offending nodes/ports).
func wantBuildError(t *testing.T, b *Builder, fragments ...string) {
	t.Helper()
	_, err := b.Build(sim.NewEngine())
	if err == nil {
		t.Fatal("Build succeeded, want validation error")
	}
	for _, frag := range fragments {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestValidationDanglingEdge(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Link("osnt:0", "ghost:1"),
		"unknown node", "ghost")
}

func TestValidationPortOutOfRange(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("s").Link("osnt:4", "s"),
		"out of range", "osnt:4")
	wantBuildError(t,
		New().Tester("a", netfpga.Config{Ports: 2}).DUT("sw", switchsim.Config{}).Link("a:0", "sw:7"),
		"out of range", "sw:7")
}

func TestValidationTransmitPortReuse(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("a").Sink("b").
			Link("osnt:0", "a").Link("osnt:0", "b"),
		"transmit port osnt:0")
}

func TestValidationReceivePortReuse(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("a").
			Link("osnt:0", "a").Link("osnt:1", "a"),
		"receive port a:0")
}

func TestValidationRateMismatch(t *testing.T) {
	// Explicit 40G edge into a 10G DUT port.
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{}).
			LinkAt("osnt:0", "sw:0", wire.Rate40G, 0),
		"40Gb/s", `dut "sw"`)
	// Inherited rates that disagree between the endpoints.
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{}).
			Link("osnt:0", "sw:0"),
		"40Gb/s", "10Gb/s")
}

func TestValidationSinkCannotTransmit(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("s").Link("s", "osnt:0"),
		"sink", "cannot transmit")
}

func TestValidationDuplicateAndBadNames(t *testing.T) {
	wantBuildError(t,
		New().Tester("x", netfpga.Config{}).DUT("x", switchsim.Config{}),
		"duplicate node name")
	wantBuildError(t, New().Sink("a:b"), "contains ':'")
	wantBuildError(t, New().Sink(""), "empty name")
}

func TestValidationReportsAllErrorsAtOnce(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).
			Link("osnt:0", "ghost").
			Link("osnt:9", "osnt:1"),
		"ghost", "osnt:9")
}

// The builder must wire a working rig: generator traffic through a DUT
// arrives at the far tester port, and sinks count what reaches them.
func TestBuildWiresWorkingTopology(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{}).
		DUT("sw", switchsim.Config{}).
		Sink("drop").
		Link("osnt:0", "sw:0").
		Duplex("sw:1", "osnt:1").
		Link("osnt:2", "drop").
		MustBuild(e)

	sw := tp.DUT("sw")
	sw.Learn(testSpec.DstMAC, 1)

	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(100 * sim.Microsecond))
	g.Stop()
	e.Run()

	sent := g.Sent().Packets
	if sent == 0 {
		t.Fatal("generator sent nothing")
	}
	if got := tp.Port("osnt:1").RxStats().Packets; got != sent {
		t.Fatalf("tester port 1 received %d of %d packets through the DUT", got, sent)
	}

	// Sinks count and release.
	g2, err := gen.New(tp.Port("osnt:2"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	g2.Start(e.Now())
	e.RunFor(10 * sim.Microsecond)
	g2.Stop()
	e.Run()
	if got := tp.Sink("drop").Received().Packets; got != g2.Sent().Packets {
		t.Fatalf("sink received %d of %d", got, g2.Sent().Packets)
	}
}

// An OFSwitch node wires the oflops-style rig: the edge inherits the
// switch's native rate and the ports implement wire.Endpoint.
func TestBuildOFSwitchNode(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{}).
		OFSwitch("sw", ofswitch.Config{}).
		Duplex("osnt:0", "sw:0").
		Duplex("osnt:1", "sw:1").
		MustBuild(e)
	if tp.OFSwitch("sw").NumPorts() != 4 {
		t.Fatal("OF switch not instantiated with default ports")
	}
	if tp.Tester("osnt").Card.Port(0).Link() == nil {
		t.Fatal("tester port 0 has no egress link")
	}
}

// Handle lookups with the wrong name or kind are programming errors and
// must panic loudly rather than return nil handles.
func TestHandlePanics(t *testing.T) {
	e := sim.NewEngine()
	tp := New().Tester("osnt", netfpga.Config{}).MustBuild(e)
	for name, fn := range map[string]func(){
		"unknown node": func() { tp.Tester("nope") },
		"wrong kind":   func() { tp.DUT("osnt") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// AttachMonitor validates the capture configuration per monitor node:
// queue counts are checked against the card's DMA budget, reference and
// config errors panic with topo-level messages, and a valid attach wires
// a working capture engine.
func TestAttachMonitorValidatesQueues(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Ports: 2, CaptureQueues: 4}).
		Tester("tx", netfpga.Config{Ports: 1}).
		DUT("sw", switchsim.Config{}).
		Link("tx:0", "osnt:1").
		Duplex("osnt:0", "sw:0").
		MustBuild(e)

	for name, fn := range map[string]func(){
		"beyond card budget": func() {
			tp.AttachMonitor("osnt:1", mon.Config{Queues: make([]mon.QueueConfig, 5)})
		},
		"negative ring": func() {
			tp.AttachMonitor("osnt:1", mon.Config{RingSize: -1})
		},
		"unknown node": func() {
			tp.AttachMonitor("nope:0", mon.Config{})
		},
		"not a tester": func() {
			tp.AttachMonitor("sw:0", mon.Config{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}

	// Within budget: the monitor attaches and captures.
	m := tp.AttachMonitor("osnt:1", mon.Config{Queues: make([]mon.QueueConfig, 4), Steer: mon.SteerRoundRobin})
	g, err := gen.New(tp.Port("tx:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 64},
		Spacing: gen.CBR{Interval: 10 * sim.Microsecond},
		Count:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.Run()
	if m.Seen().Packets != 8 {
		t.Fatalf("monitor saw %d of 8", m.Seen().Packets)
	}
	for q := 0; q < m.NumQueues(); q++ {
		if got := m.QueueStats(q).Delivered.Packets; got != 2 {
			t.Fatalf("queue %d delivered %d, want 2 (round-robin over 4 queues)", q, got)
		}
	}
}

// Build is terminal: a second Build on the same Builder must fail rather
// than silently re-pointing the first Topology's handles at a second
// engine's devices.
func TestBuildIsTerminal(t *testing.T) {
	b := New().Tester("osnt", netfpga.Config{})
	t1, err := b.Build(sim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	dev := t1.Tester("osnt")
	if _, err := b.Build(sim.NewEngine()); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("second Build: err = %v, want reuse error", err)
	}
	if t1.Tester("osnt") != dev {
		t.Fatal("first topology's handle changed")
	}
}

// Topology.Port holds references to the same grammar Build validates.
func TestPortReferenceStrictness(t *testing.T) {
	tp := New().Tester("osnt", netfpga.Config{}).MustBuild(sim.NewEngine())
	for _, ref := range []string{"osnt:-1", "osnt:", "osnt:x", "osnt:4"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Port(%q): no panic", ref)
				}
			}()
			tp.Port(ref)
		}()
	}
	if tp.Port("osnt") != tp.Port("osnt:0") {
		t.Fatal("bare node reference is not port 0")
	}
}

// A 40G scenario builds end to end: the first consumer of wire.Rate40G
// outside the experiments.
func TestBuild40GLoopback(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Ports: 2, Rate: wire.Rate40G}).
		Link("osnt:0", "osnt:1").
		MustBuild(e)
	l := tp.Port("osnt:0").Link()
	if l == nil || l.Rate != wire.Rate40G {
		t.Fatalf("loopback link rate = %v, want 40G", l.Rate)
	}
}

// A rate boundary on a plain edge is a miswiring; the same boundary on a
// Convert edge anchored at a DUT builds, with the wire serialising at the
// transmitting port's rate.
func TestConvertEdgeLegalisesRateBoundary(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{}).
			Link("osnt:0", "sw:0"),
		"Convert edge")
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
		DUT("sw", switchsim.Config{}).
		Convert("osnt:0", "sw:0").
		Convert("sw:1", "osnt:1").
		MustBuild(e)
	// The conversion wire runs at the transmitter's 40G rate.
	if l := tp.Tester("osnt").Card.Port(0).Link(); l.Rate != wire.Rate40G {
		t.Fatalf("conversion edge rate %v, want %v", l.Rate, wire.Rate40G)
	}
}

func TestConvertEdgeNeedsDUT(t *testing.T) {
	wantBuildError(t,
		New().Tester("a", netfpga.Config{}).Tester("c", netfpga.Config{Rate: wire.Rate40G}).
			Convert("a:0", "c:0"),
		"joins no DUT")
}

func TestConvertEdgeRateMustMatchTransmitter(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).
			DUT("sw", switchsim.Config{Rate: wire.Rate40G}).
			Add(Edge{From: "osnt:0", To: "sw:0", Rate: wire.Rate40G, Convert: true}),
		"transmitting", `"osnt"`)
}

// A DUT with mixed per-port rates validates each edge against the rate
// of the specific port it joins — the E12 fan-in rig in miniature.
func TestMixedRateDUTValidatesPerPort(t *testing.T) {
	build := func() *Builder {
		return New().
			Tester("osnt", netfpga.Config{}).
			Tester("cap", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			DUT("dut", switchsim.Config{
				Ports:     5,
				PortRates: []wire.Rate{0, 0, 0, 0, wire.Rate40G},
			})
	}
	// Edge ports at matching rates: builds.
	build().
		Link("osnt:0", "dut:0").
		Link("dut:4", "cap:0").
		MustBuild(sim.NewEngine())
	// The 40G uplink port cannot take a plain edge from a 10G tester.
	wantBuildError(t,
		build().Link("osnt:0", "dut:4"),
		"10Gb/s", "40Gb/s", "Convert edge")
}

// DUTs get sequential hop IDs in declaration order unless pinned.
func TestDUTHopIDAssignment(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Ports: 2}).
		DUT("sw1", switchsim.Config{}).
		DUT("sw2", switchsim.Config{HopID: 9}).
		DUT("sw3", switchsim.Config{}).
		Link("osnt:0", "sw1:0").
		Link("sw1:1", "sw2:0").
		Link("sw2:1", "sw3:0").
		Link("sw3:1", "osnt:1").
		MustBuild(e)
	for name, want := range map[string]int{"sw1": 1, "sw2": 9, "sw3": 2} {
		if got := tp.DUT(name).HopID(); got != want {
			t.Errorf("%s hop ID %d, want %d", name, got, want)
		}
	}
}

// Pinned hop IDs are claimed before auto-assignment (so an auto DUT can
// never collide with a pinned one), and two DUTs pinning the same ID is
// a validation error — a shared Hop.Node would silently merge two
// devices' latency in every decomposition.
func TestDUTHopIDClash(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		DUT("auto", switchsim.Config{}).
		DUT("pin", switchsim.Config{HopID: 1}).
		MustBuild(e)
	if a, p := tp.DUT("auto").HopID(), tp.DUT("pin").HopID(); a == p || a != 2 {
		t.Fatalf("auto=%d pin=%d, want auto to skip the pinned 1", a, p)
	}
	wantBuildError(t,
		New().DUT("a", switchsim.Config{HopID: 3}).DUT("b", switchsim.Config{HopID: 3}),
		"both pin hop ID 3")
}

// End to end through a 2-DUT chain: the capture side sees a two-entry
// hop trace in traversal order, with non-decreasing stamps.
func TestChainHopTraceEndToEnd(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Ports: 2}).
		DUT("sw1", switchsim.Config{}).
		DUT("sw2", switchsim.Config{}).
		Link("osnt:0", "sw1:0").
		Link("sw1:1", "sw2:0").
		Link("sw2:1", "osnt:1").
		MustBuild(e)
	tp.DUT("sw1").Learn(testSpec.DstMAC, 1)
	tp.DUT("sw2").Learn(testSpec.DstMAC, 1)
	var traces []wire.HopTrace
	tp.Port("osnt:1").OnReceive = func(f *wire.Frame, _ sim.Time, _ timing.Timestamp) {
		traces = append(traces, f.Trace)
	}
	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 512},
		Spacing: gen.CBRForLoad(512, wire.Rate10G, 0.5),
		Count:   3,
		Pool:    wire.DefaultPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.Run()
	if len(traces) != 3 {
		t.Fatalf("captured %d traces, want 3", len(traces))
	}
	for _, tr := range traces {
		if tr.Len() != 2 {
			t.Fatalf("trace has %d hops, want 2", tr.Len())
		}
		h1, h2 := tr.At(0), tr.At(1)
		if h1.Node != 1 || h2.Node != 2 {
			t.Fatalf("hop order %d,%d, want 1,2", h1.Node, h2.Node)
		}
		if h2.At < h1.At {
			t.Fatalf("hop stamps go backwards: %v then %v", h1.At, h2.At)
		}
	}
}

// A Convert edge can deliver a slower wire into a faster DUT port; even
// in cut-through mode the switch must then store the whole frame before
// egress — otherwise the recorded delivery would precede the frame's own
// arrival (causality violation in every downstream timestamp).
func TestConvertEdgeCutThroughStoresFully(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("src", netfpga.Config{}). // 10G
		Tester("dst", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
		DUT("sw", switchsim.Config{
			Rate: wire.Rate40G,
			Mode: switchsim.CutThrough,
			// Near-zero lookup/pipeline: only the store clamp can delay
			// egress.
			LookupPerPacket: sim.Nanosecond,
			LookupPerByte:   sim.Picosecond,
			PipelineLatency: sim.Nanosecond,
		}).
		Convert("src:0", "sw:0"). // 10G wire into the 40G DUT port
		Link("sw:1", "dst:0").
		MustBuild(e)
	tp.DUT("sw").Learn(testSpec.DstMAC, 1)
	var arrivals []sim.Time
	tp.Port("dst:0").OnReceive = func(_ *wire.Frame, at sim.Time, _ timing.Timestamp) {
		arrivals = append(arrivals, at)
	}
	spec := testSpec
	spec.FrameSize = 1518
	tp.Port("src:0").Enqueue(wire.NewFrame(spec.Build()))
	e.Run()
	if len(arrivals) != 1 {
		t.Fatal("frame not delivered")
	}
	// Last bit enters the switch only after full 10G serialisation; the
	// 40G egress must start no earlier, so delivery lands at exactly
	// ingress-store + 40G egress serialisation.
	want := sim.Time(0).
		Add(wire.SerializationTime(1518, wire.Rate10G)).
		Add(wire.SerializationTime(1518, wire.Rate40G))
	if arrivals[0] != want {
		t.Fatalf("delivery at %v, want stored-then-forwarded %v", arrivals[0], want)
	}
}

// Group links expand to N parallel member edges on consecutive ports:
// Group("leaf:2", "spine:0", 2) claims leaf:2→spine:0 and
// leaf:3→spine:1, so re-using any member port afterwards is the usual
// port-reuse validation error.
func TestGroupLinkExpands(t *testing.T) {
	New().
		DUT("leaf", switchsim.Config{Ports: 4}).
		DUT("spine", switchsim.Config{Ports: 2}).
		Group("leaf:2", "spine:0", 2).
		MustBuild(sim.NewEngine())
	wantBuildError(t,
		New().
			DUT("leaf", switchsim.Config{Ports: 4}).
			DUT("spine", switchsim.Config{Ports: 4}).
			Group("leaf:2", "spine:0", 2).
			Link("leaf:3", "spine:3"), // second member's TX port is taken
		"transmit port leaf:3 used by two edges")
}

// GroupDuplex wires both directions of the bundle.
func TestGroupDuplexWiresBothDirections(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		DUT("leaf", switchsim.Config{Ports: 4}).
		DUT("spine", switchsim.Config{Ports: 4}).
		GroupDuplex("leaf:0", "spine:0", 2).
		MustBuild(e)
	// Both switches can transmit across the bundle: their member ports
	// have egress links (enqueue panics on a link-less port).
	tp.DUT("leaf").Learn(testSpec.DstMAC, 0)
	tp.DUT("spine").Learn(testSpec.SrcMAC, 0)
}

// Group validation: too few members, out-of-range member ports, port
// reuse against an existing edge, and mixed member rates all fail.
func TestGroupLinkValidation(t *testing.T) {
	wantBuildError(t,
		New().DUT("a", switchsim.Config{Ports: 4}).DUT("b", switchsim.Config{Ports: 4}).
			Group("a:0", "b:0", 1),
		"≥2 members")
	wantBuildError(t,
		New().DUT("a", switchsim.Config{Ports: 2}).DUT("b", switchsim.Config{Ports: 4}).
			Group("a:1", "b:0", 2),
		"out of range")
	wantBuildError(t,
		New().DUT("a", switchsim.Config{Ports: 4}).DUT("b", switchsim.Config{Ports: 4}).
			Link("a:1", "b:3").
			Group("a:0", "b:0", 2),
		"used by two edges")
	wantBuildError(t,
		New().
			DUT("a", switchsim.Config{Ports: 4, PortRates: []wire.Rate{0, 0, 0, wire.Rate40G}}).
			DUT("b", switchsim.Config{Ports: 4, PortRates: []wire.Rate{0, wire.Rate40G}}).
			Group("a:2", "b:0", 2),
		"mixes member rates")
}

// A failing group member must name itself: on a synthesized fabric a
// bundle is k ports wide, and "group link a:1 → b:0 member 1 (a:2)" is
// what makes the error actionable. The member index and the concrete
// offending port both appear.
func TestGroupMemberErrorsNameTheMember(t *testing.T) {
	// Member 1 of a 2-wide group resolves to out-of-range port a:2.
	wantBuildError(t,
		New().DUT("a", switchsim.Config{Ports: 2}).DUT("b", switchsim.Config{Ports: 4}).
			Group("a:1", "b:0", 2),
		"group link a:1 → b:0 member 1", "a:2")
	// Member 1 collides with a pre-existing edge on b:1.
	wantBuildError(t,
		New().DUT("a", switchsim.Config{Ports: 4}).DUT("b", switchsim.Config{Ports: 4}).
			Link("a:3", "b:1").
			Group("a:0", "b:0", 2),
		"group link a:0 → b:0 member 1", "b:1")
	// Mixed member rates name member 0 and the diverging member with
	// their resolved ports.
	wantBuildError(t,
		New().
			DUT("a", switchsim.Config{Ports: 4, PortRates: []wire.Rate{0, 0, 0, wire.Rate40G}}).
			DUT("b", switchsim.Config{Ports: 4}).
			Group("a:2", "b:0", 2),
		"mixes member rates", "member 0 (a:2)", "member 1 (a:3)")
}

// GroupAt/GroupDuplexAt carry an explicit member rate and propagation
// delay: a 40G trunk between two 40G ports builds, and traffic sprayed
// across it arrives after the configured delay.
func TestGroupAtRateAndDelay(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		DUT("a", switchsim.Config{Ports: 4, PortRates: []wire.Rate{0, 0, wire.Rate40G, wire.Rate40G}}).
		DUT("b", switchsim.Config{Ports: 4, PortRates: []wire.Rate{wire.Rate40G, wire.Rate40G}}).
		GroupDuplexAt("a:2", "b:0", 2, wire.Rate40G, sim.Microsecond).
		MustBuild(e)
	// Mismatched explicit rate against the native port rate still fails.
	wantBuildError(t,
		New().
			DUT("a", switchsim.Config{Ports: 4}).
			DUT("b", switchsim.Config{Ports: 4}).
			GroupAt("a:0", "b:0", 2, wire.Rate40G, 0),
		"group link a:0 → b:0 member 0", "ports run at")
	if tp.DUT("a") == nil || tp.DUT("b") == nil {
		t.Fatal("trunk endpoints missing")
	}
}

// The scenario ledger is threaded through every device Build
// instantiates: a DUT's drops land under its HopTrace hop ID, and
// conservation closes over the topology's own counters.
func TestBuildThreadsDropLedger(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Ports: 2}).
		DUT("sw", switchsim.Config{EgressQueueCap: 2, LookupPerPacket: sim.Nanosecond, LookupPerByte: sim.Picoseconds(10)}).
		Sink("drain").
		Link("osnt:0", "sw:0").
		Link("sw:1", "drain").
		MustBuild(e)
	if tp.Drops() == nil {
		t.Fatal("topology owns no drop ledger")
	}
	if hop := tp.Hop("sw"); hop != tp.DUT("sw").HopID() {
		t.Fatalf("ledger hop %d != HopTrace hop %d", hop, tp.DUT("sw").HopID())
	}
	if label := tp.Drops().Label(tp.Hop("sw")); label != "sw" {
		t.Fatalf("hop label %q", label)
	}
	tp.DUT("sw").Learn(testSpec.DstMAC, 1)
	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 1518},
		Spacing: gen.CBRForLoad(1518, wire.Rate10G, 1.0),
		Count:   200,
		Pool:    wire.DefaultPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.Run()
	ledger := tp.Drops()
	// The 2-deep egress FIFO cannot absorb bursts created by lookup
	// jitter... it can: CBR at exactly line rate through an overspeed
	// lookup is lossless. So conservation is the assertion here:
	sent := g.Sent().Packets
	delivered := tp.Sink("drain").Received().Packets
	if sent != delivered+ledger.Total() {
		t.Fatalf("sent %d != delivered %d + attributed %d", sent, delivered, ledger.Total())
	}
}

// AttachMonitor registers the monitor as a loss point: filter rejects
// and ring overflows land in the scenario ledger.
func TestAttachMonitorJoinsLedger(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("tx", netfpga.Config{}).
		Tester("rx", netfpga.Config{}).
		Link("tx:0", "rx:0").
		MustBuild(e)
	filters := filter.NewTable(filter.Drop) // default-drop: everything rejected
	m := tp.AttachMonitor("rx:0", mon.Config{Filters: filters})
	g, err := gen.New(tp.Port("tx:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 0.5),
		Count:   50,
		Pool:    wire.DefaultPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.Run()
	if m.Filtered() != 50 {
		t.Fatalf("filtered %d, want 50", m.Filtered())
	}
	if got := tp.Drops().ReasonTotal(wire.DropFilterReject); got != 50 {
		t.Fatalf("ledger filter rejects = %d, want 50", got)
	}
	if got := filters.DropHits(); got != 50 {
		t.Fatalf("filter.DropHits = %d, want 50 (cross-check broken)", got)
	}
}

// TestReadmeLossSnippet mirrors the README's group-link +
// loss-attribution example so the documentation stays compile-verified
// and behaviour-verified.
func TestReadmeLossSnippet(t *testing.T) {
	engine := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
		DUT("leaf", switchsim.Config{Ports: 6, Rate: wire.Rate40G}).
		DUT("spine", switchsim.Config{Ports: 3, Rate: wire.Rate40G}).
		Sink("server").
		Link("osnt:0", "leaf:0").
		Group("leaf:4", "spine:0", 2). // 2×40G uplink bundle
		Link("spine:2", "server").
		MustBuild(engine)

	leaf := tp.DUT("leaf")
	gid := leaf.AddGroup(4, 5)                // ECMP over the bundle's ports
	leaf.LearnGroup(testSpec.DstMAC, gid)     // flows spray across members
	tp.DUT("spine").Learn(testSpec.DstMAC, 2) // spine forwards to the server

	// ... run traffic ...
	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, NumFlows: 16, FrameSize: 512},
		Spacing: gen.CBRForLoad(512, wire.Rate40G, 1.0),
		Count:   500,
		Pool:    wire.DefaultPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	engine.Run()

	sent := g.Sent().Packets
	delivered := tp.Sink("server").Received().Packets
	lm := stats.NewLossMap(sent, delivered, tp.Drops())
	if !lm.Conserved() { // sent = delivered + Σ attributed drops, exactly
		t.Fatalf("loss map does not conserve:\n%s", lm.Table().String())
	}
}
