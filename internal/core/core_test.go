package core

import (
	"testing"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
	"osnt/internal/wire"
)

var (
	macGen = packet.MAC{2, 0, 0, 0, 0, 1}
	macCap = packet.MAC{2, 0, 0, 0, 0, 2}
	spec   = packet.UDPSpec{
		SrcMAC: macGen, DstMAC: macCap,
		SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 7000,
	}
)

// demoTopology builds Figure 2's Part I setup: tester port 0 → switch →
// tester port 1, with the station MACs pre-learned.
func demoTopology(e *sim.Engine, swCfg switchsim.Config) (*Device, *switchsim.Switch) {
	dev := NewDevice(e, netfpga.Config{})
	sw := switchsim.New(e, swCfg)

	genOut := wire.NewLink(e, wire.Rate10G, 0, sw.Port(0))
	dev.Card.Port(0).SetLink(genOut)
	toCap := wire.NewLink(e, wire.Rate10G, 0, dev.Card.Port(1))
	sw.Port(1).SetLink(toCap)
	// The capture port needs a TX link only to teach the switch its MAC.
	capOut := wire.NewLink(e, wire.Rate10G, 0, sw.Port(1))
	dev.Card.Port(1).SetLink(capOut)

	// Teach the switch both stations.
	dev.Card.Port(1).Enqueue(wire.NewFrame(packet.UDPSpec{
		SrcMAC: macCap, DstMAC: macGen,
		SrcIP: packet.IP4{10, 0, 0, 2}, DstIP: packet.IP4{10, 0, 0, 1},
		SrcPort: 1, DstPort: 1, FrameSize: 64,
	}.Build()))
	e.Run()
	return dev, sw
}

func TestDevicePortRange(t *testing.T) {
	e := sim.NewEngine()
	dev := NewDevice(e, netfpga.Config{})
	if _, err := dev.ConfigureGenerator(7, gen.Config{}); err == nil {
		t.Fatal("port 7 accepted")
	}
	if _, err := dev.ConfigureMonitor(-1, mon.Config{}); err == nil {
		t.Fatal("port -1 accepted")
	}
}

func TestLatencyTestThroughSwitch(t *testing.T) {
	e := sim.NewEngine()
	dev, _ := demoTopology(e, switchsim.Config{})
	res, err := (&LatencyTest{
		Device: dev, TxPort: 0, RxPort: 1,
		Spec: spec, FrameSize: 512, Load: 0.05,
		Duration: 5 * sim.Millisecond,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TxPackets == 0 || res.RxPackets == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Lost() != 0 {
		t.Fatalf("idle switch lost %d packets", res.Lost())
	}
	// Expected latency at idle: ingress store (store-and-forward) +
	// lookup + pipeline + egress serialisation.
	ser := wire.SerializationTime(512, wire.Rate10G)
	lookup := 20*sim.Nanosecond + 512*sim.Picoseconds(760) + 450*sim.Nanosecond
	want := int64(ser + lookup + ser)
	mean := int64(res.Latency.Mean())
	// Allow the 6.25ns quantisation of both timestamps.
	if diff := mean - want; diff < -13000 || diff > 13000 {
		t.Fatalf("mean latency %d ps, want ≈%d ps", mean, want)
	}
	// Jitter should be bounded by quantisation at constant load.
	if spread := res.Latency.Max() - res.Latency.Min(); spread > 13000 {
		t.Fatalf("latency spread %d ps at constant load", spread)
	}
}

func TestLatencyTestCountMode(t *testing.T) {
	e := sim.NewEngine()
	dev, _ := demoTopology(e, switchsim.Config{})
	res, err := (&LatencyTest{
		Device: dev, TxPort: 0, RxPort: 1,
		Spec: spec, Count: 100, Load: 0.01,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TxPackets != 100 {
		t.Fatalf("tx %d, want 100", res.TxPackets)
	}
	if res.Latency.Count() != 100 {
		t.Fatalf("samples %d, want 100", res.Latency.Count())
	}
}

func TestLatencyGrowsNearSaturation(t *testing.T) {
	// Demo Part I shape: latency at 95% load ≫ latency at 20% load on a
	// jittery switch whose capacity sits just below line rate.
	run := func(load float64) float64 {
		e := sim.NewEngine()
		dev, _ := demoTopology(e, switchsim.Config{
			LookupPerByte: sim.Picoseconds(820), LookupJitter: 0.5, Seed: 3,
		})
		res, err := (&LatencyTest{
			Device: dev, TxPort: 0, RxPort: 1,
			Spec: spec, FrameSize: 512, Load: load,
			Spacing:  gen.Poisson{Mean: sim.Duration(float64(wire.SerializationTime(512, wire.Rate10G)) / load)},
			Duration: 20 * sim.Millisecond,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	low := run(0.2)
	high := run(0.95)
	if high < low*1.5 {
		t.Fatalf("latency: %.0f ps at 20%% vs %.0f ps at 95%% — no queueing growth", low, high)
	}
}

func TestThroughputLineRate(t *testing.T) {
	// Straight cable: delivered must equal offered at 100% load for any
	// frame size (E1's property).
	for _, fs := range []int{64, 512, 1518} {
		e := sim.NewEngine()
		dev := NewDevice(e, netfpga.Config{})
		dev.WireUp(0, 1, 0)
		res, err := (&ThroughputTest{
			Device: dev, TxPort: 0, RxPort: 1,
			Spec: spec, FrameSize: fs, Load: 1.0,
			Duration: 2 * sim.Millisecond,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.LossFraction != 0 {
			t.Fatalf("fs=%d loss %v at line rate over a cable", fs, res.LossFraction)
		}
		wantPPS := wire.MaxPPS(fs, wire.Rate10G)
		if res.DeliveredPPS < wantPPS*0.999 || res.DeliveredPPS > wantPPS*1.001 {
			t.Fatalf("fs=%d delivered %.0f pps, want ≈%.0f", fs, res.DeliveredPPS, wantPPS)
		}
		// Wire-level bit rate must be 10G at every frame size.
		if res.DeliveredBPS < 9.99e9 || res.DeliveredBPS > 10.01e9 {
			t.Fatalf("fs=%d delivered %.3g bps on the wire", fs, res.DeliveredBPS)
		}
	}
}

func TestThroughputFindsDUTSaturation(t *testing.T) {
	// A switch with capacity below line rate must show loss at full load
	// but none at half load.
	mk := func(load float64) *ThroughputResult {
		e := sim.NewEngine()
		dev, _ := demoTopology(e, switchsim.Config{
			LookupPerByte: sim.Picoseconds(900), // ≈88% of line rate at 512B
		})
		res, err := (&ThroughputTest{
			Device: dev, TxPort: 0, RxPort: 1,
			Spec: spec, FrameSize: 512, Load: load,
			Duration: 10 * sim.Millisecond,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if r := mk(0.5); r.LossFraction > 0.001 {
		t.Fatalf("loss %v at half load", r.LossFraction)
	}
	r := mk(1.0)
	if r.LossFraction < 0.05 {
		t.Fatalf("loss %v at full load through a sub-line-rate switch", r.LossFraction)
	}
	// Delivered rate ≈ the switch's service capacity (the 512-deep lookup
	// queue drains after the generator stops, inflating the count by up
	// to 512/Duration ≈ 2.5%).
	cap512 := 1e12 / float64(20000+512*900) // pps
	if r.DeliveredPPS > cap512*1.05 || r.DeliveredPPS < cap512*0.9 {
		t.Fatalf("delivered %.0f pps, switch capacity %.0f", r.DeliveredPPS, cap512)
	}
}

func TestGeneratorMonitorAccessors(t *testing.T) {
	e := sim.NewEngine()
	dev := NewDevice(e, netfpga.Config{})
	dev.WireUp(0, 1, 0)
	if dev.Generator(0) != nil || dev.Monitor(1) != nil {
		t.Fatal("accessors before configure")
	}
	g, err := dev.ConfigureGenerator(0, gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: gen.CBR{Interval: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dev.ConfigureMonitor(1, mon.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Generator(0) != g || dev.Monitor(1) != m {
		t.Fatal("accessors after configure")
	}
}

func BenchmarkLatencyTest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		dev, _ := demoTopology(e, switchsim.Config{})
		if _, err := (&LatencyTest{
			Device: dev, TxPort: 0, RxPort: 1,
			Spec: spec, Count: 100, Load: 0.1,
		}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
