// Package fabric synthesizes parameterized k-ary fat-tree / folded-Clos
// fabrics into validated topo graphs: a one-line Spec (radix k,
// oversubscription ratio, trunk width) expands into pods of edge and
// aggregation switches under a core layer, with deterministic host
// placement and addressing, every FDB pre-learned (zero flood warm-up),
// ECMP spray groups over the uplink fans, and trunked bundles declared
// as topo group links. Because synthesis goes through topo.Builder, the
// scenario DropLedger, HopTrace stamping and LossMap conservation work
// unchanged on an 80-switch fabric, and the package's tier map reduces
// per-hop drop attribution to the edge/aggregation/core question an
// operator actually asks. Synthesis is pure construction — no traffic,
// no randomness — so two Builds of the same Spec are identical.
package fabric

import (
	"fmt"
	"strings"

	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// Spec parameterises a k-ary fat-tree. The zero value of every knob
// except K selects the canonical fabric: full bisection (Oversub 1),
// single-cable links (Trunk 1), 10G everywhere.
type Spec struct {
	// K is the switch radix. Must be even and ≥ 4. A k-ary fat-tree has
	// k pods of k/2 edge and (k/2)/Oversub aggregation switches, k²/4
	// hosts per pod (k³/4 total), and (k/2)·(k/2)/Oversub cores:
	// k=4 → 20 switches / 16 hosts, k=8 → 80 switches / 128 hosts.
	K int
	// Oversub is the edge-uplink oversubscription ratio: each edge
	// switch serves k/2 hosts over (k/2)/Oversub uplinks. Must divide
	// k/2. Default 1 (full bisection bandwidth).
	Oversub int
	// Trunk widens every inter-switch link into a w-cable bundle
	// declared as a topo group link (LAG). Default 1.
	Trunk int
	// Rate is the uniform port/link rate. Default 10 Gb/s.
	Rate wire.Rate
	// LinkDelay is the per-cable propagation delay. Default 0.
	LinkDelay sim.Duration
	// Switch is the template for every synthesized switch: lookup and
	// queue knobs are copied verbatim, while Ports, Rate, PortRates and
	// HopID are owned by the synthesizer (topo assigns hop IDs).
	Switch switchsim.Config
}

// Tier classifies a ledger hop for per-tier drop attribution.
type Tier uint8

// The tiers of a synthesized fabric, in drop-table order.
const (
	TierOther Tier = iota // monitors and anything post-Build
	TierEdge
	TierAgg
	TierCore
	TierHost // the host NICs (TX-overflow drops)
	tierCount
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierAgg:
		return "agg"
	case TierCore:
		return "core"
	case TierHost:
		return "host"
	}
	return "other"
}

// Host is one deterministically placed end station: host (pod, edge,
// slot) is port slot of edge switch (pod, edge), with a MAC and IP
// derived from the coordinates alone.
type Host struct {
	Index, Pod, Edge, Slot int
	Name                   string // tester node name ("h0", "h1", …)
	MAC                    packet.MAC
	IP                     packet.IP4
}

// Fabric is a synthesized fat-tree: the built topology plus the
// placement and tier metadata synthesis derived from the Spec.
type Fabric struct {
	*topo.Topology
	Spec  Spec
	Hosts []Host
	// Switch names by tier, declaration order (= hop-ID order).
	Edges, Aggs, Cores []string

	tierOf []Tier // ledger hop ID → tier
}

func (s *Spec) fill() error {
	if s.K < 4 || s.K%2 != 0 {
		return fmt.Errorf("fabric: radix K must be even and ≥ 4, got %d", s.K)
	}
	if s.K/2 > 255 {
		return fmt.Errorf("fabric: radix %d overflows the addressing plan", s.K)
	}
	if s.Oversub == 0 {
		s.Oversub = 1
	}
	if s.Oversub < 1 || (s.K/2)%s.Oversub != 0 {
		return fmt.Errorf("fabric: oversubscription %d must divide K/2 = %d", s.Oversub, s.K/2)
	}
	if s.Trunk == 0 {
		s.Trunk = 1
	}
	if s.Trunk < 1 {
		return fmt.Errorf("fabric: trunk width %d must be ≥ 1", s.Trunk)
	}
	if s.Rate == 0 {
		s.Rate = wire.Rate10G
	}
	return nil
}

// NumSwitches returns the switch count the spec expands to.
func (s Spec) NumSwitches() int {
	if err := s.fill(); err != nil {
		return 0
	}
	h := s.K / 2
	u := h / s.Oversub
	return s.K*h + s.K*u + u*h
}

// NumHosts returns the host count the spec expands to (K³/4 / Oversub-
// independent).
func (s Spec) NumHosts() int {
	if err := s.fill(); err != nil {
		return 0
	}
	return s.K * s.K / 2 * s.K / 2
}

func edgeName(p, e int) string { return fmt.Sprintf("edge%d.%d", p, e) }
func aggName(p, a int) string  { return fmt.Sprintf("agg%d.%d", p, a) }
func coreName(j, c int) string { return fmt.Sprintf("core%d.%d", j, c) }

// hostMAC derives the station MAC from placement coordinates: locally
// administered, collision-free for any legal radix.
func hostMAC(p, e, s int) packet.MAC {
	return packet.MAC{0x02, 0xfa, 0x00, byte(p), byte(e), byte(s)}
}

// hostIP derives the station address 10.pod.edge.slot+1.
func hostIP(p, e, s int) packet.IP4 {
	return packet.IP4{10, byte(p), byte(e), byte(s + 1)}
}

// Build synthesizes the fat-tree on the engine. The returned Fabric
// embeds the validated topology: every switch is a DUT with a ledger
// hop ID, every host a 1-port tester, every FDB pre-learned so the
// first frame already ECMP-sprays instead of flooding.
func Build(e *sim.Engine, spec Spec) (*Fabric, error) {
	return synth(spec, func(b *topo.Builder) (*topo.Topology, error) { return b.Build(e) })
}

// BuildPartitioned synthesizes the fat-tree across a topo.Partition —
// the sharded-execution spelling of Build. The partition's ShardOf is
// normally Spec.PodShard, which keeps each pod (and its hosts) on one
// shard so only the agg↔core cables cross the cut; those cables carry
// Spec.LinkDelay, which must then be positive (topo rejects zero-delay
// cut edges). A 1-engine partition is exactly Build.
func BuildPartitioned(p topo.Partition, spec Spec) (*Fabric, error) {
	return synth(spec, func(b *topo.Builder) (*topo.Topology, error) { return b.BuildPartitioned(p) })
}

// synth expands the spec into a topo graph, builds it through the given
// terminal operation, and derives the placement/tier metadata.
func synth(spec Spec, build func(*topo.Builder) (*topo.Topology, error)) (*Fabric, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	k := spec.K
	h := k / 2            // hosts per edge, edges per pod, cores per plane
	u := h / spec.Oversub // aggs per pod = uplink fan of an edge = planes
	w := spec.Trunk

	f := &Fabric{Spec: spec}
	b := topo.New()

	// Switch template: the synthesizer owns the shape fields, and every
	// switch gets its own spray salt — correlated ECMP hashes across
	// stages would collapse each agg's spray onto the one core its own
	// ordinal selects (see switchsim.Config.SpraySeed).
	ordinal := uint64(0)
	sw := func(ports int) switchsim.Config {
		cfg := spec.Switch
		cfg.Ports = ports
		cfg.Rate = spec.Rate
		cfg.PortRates = nil
		cfg.HopID = 0
		ordinal++
		cfg.SpraySeed = packet.Mix64(0xfab<<16 | ordinal)
		return cfg
	}

	// Declaration order fixes hop-ID order: edges, then aggs, then
	// cores — so per-tier ledger reductions cover contiguous ID runs —
	// then the host testers.
	for p := 0; p < k; p++ {
		for ed := 0; ed < h; ed++ {
			name := edgeName(p, ed)
			f.Edges = append(f.Edges, name)
			b.DUT(name, sw(h+u*w))
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < u; a++ {
			name := aggName(p, a)
			f.Aggs = append(f.Aggs, name)
			b.DUT(name, sw(k*w))
		}
	}
	for j := 0; j < u; j++ {
		for c := 0; c < h; c++ {
			name := coreName(j, c)
			f.Cores = append(f.Cores, name)
			b.DUT(name, sw(k*w))
		}
	}
	for p := 0; p < k; p++ {
		for ed := 0; ed < h; ed++ {
			for s := 0; s < h; s++ {
				host := Host{
					Index: len(f.Hosts), Pod: p, Edge: ed, Slot: s,
					Name: fmt.Sprintf("h%d", len(f.Hosts)),
					MAC:  hostMAC(p, ed, s), IP: hostIP(p, ed, s),
				}
				f.Hosts = append(f.Hosts, host)
				b.Tester(host.Name, netfpga.Config{Ports: 1, Rate: spec.Rate})
			}
		}
	}

	// trunk declares one inter-switch bundle: a plain duplex cable at
	// width 1, a topo group link otherwise.
	trunk := func(from, to string) {
		if w == 1 {
			b.DuplexAt(from, to, spec.Rate, spec.LinkDelay)
		} else {
			b.GroupDuplexAt(from, to, w, spec.Rate, spec.LinkDelay)
		}
	}
	port := func(name string, p int) string { return fmt.Sprintf("%s:%d", name, p) }

	for p := 0; p < k; p++ {
		for ed := 0; ed < h; ed++ {
			edge := edgeName(p, ed)
			// Edge ports [0,h): hosts; [h, h+u·w): uplink a at h+a·w.
			for s := 0; s < h; s++ {
				hostIdx := p*h*h + ed*h + s
				b.DuplexAt(port(f.Hosts[hostIdx].Name, 0), port(edge, s), spec.Rate, spec.LinkDelay)
			}
			// Agg ports [0,h·w): edge ed at ed·w; [h·w, k·w): core uplinks.
			for a := 0; a < u; a++ {
				trunk(port(edge, h+a*w), port(aggName(p, a), ed*w))
			}
		}
		for a := 0; a < u; a++ {
			// Agg a peers with plane a's h cores; core (a,c) gives pod p
			// its port window at p·w.
			for c := 0; c < h; c++ {
				trunk(port(aggName(p, a), h*w+c*w), port(coreName(a, c), p*w))
			}
		}
	}

	tp, err := build(b)
	if err != nil {
		return nil, err
	}
	f.Topology = tp

	// Pre-learn every FDB. learnSpan maps a MAC to a port window of
	// width n: a plain Learn for a single port, an ECMP/LAG group
	// otherwise. Group IDs are cached per (switch, first-port) so each
	// window allocates its group once.
	type span struct {
		sw    *switchsim.Switch
		first int
	}
	gids := make(map[span]int)
	learnSpan := func(dut *switchsim.Switch, mac packet.MAC, first, n int) {
		if n == 1 {
			dut.Learn(mac, first)
			return
		}
		key := span{dut, first}
		gid, ok := gids[key]
		if !ok {
			ports := make([]int, n)
			for i := range ports {
				ports[i] = first + i
			}
			gid = dut.AddGroup(ports...)
			gids[key] = gid
		}
		dut.LearnGroup(mac, gid)
	}

	for p := 0; p < k; p++ {
		for ed := 0; ed < h; ed++ {
			edge := tp.DUT(edgeName(p, ed))
			for _, host := range f.Hosts {
				if host.Pod == p && host.Edge == ed {
					edge.Learn(host.MAC, host.Slot) // local: host port
				} else {
					learnSpan(edge, host.MAC, h, u*w) // remote: spray up
				}
			}
		}
		for a := 0; a < u; a++ {
			agg := tp.DUT(aggName(p, a))
			for _, host := range f.Hosts {
				if host.Pod == p {
					learnSpan(agg, host.MAC, host.Edge*w, w) // down to its edge
				} else {
					learnSpan(agg, host.MAC, h*w, h*w) // spray across cores
				}
			}
		}
	}
	for j := 0; j < u; j++ {
		for c := 0; c < h; c++ {
			core := tp.DUT(coreName(j, c))
			for _, host := range f.Hosts {
				learnSpan(core, host.MAC, host.Pod*w, w) // down to its pod
			}
		}
	}

	// Tier map over the ledger: hop 0 is the unattributed slot, DUT and
	// tester hops carry the node names synthesis chose.
	f.tierOf = make([]Tier, tp.Drops().Hops())
	tag := func(names []string, t Tier) {
		for _, n := range names {
			f.tierOf[tp.Hop(n)] = t
		}
	}
	tag(f.Edges, TierEdge)
	tag(f.Aggs, TierAgg)
	tag(f.Cores, TierCore)
	for _, host := range f.Hosts {
		f.tierOf[tp.Hop(host.Name)] = TierHost
	}
	return f, nil
}

// MustBuild is Build, panicking on a spec or validation error.
func MustBuild(e *sim.Engine, spec Spec) *Fabric {
	f, err := Build(e, spec)
	if err != nil {
		panic(err)
	}
	return f
}

// MustBuildPartitioned is BuildPartitioned, panicking on a spec or
// validation error.
func MustBuildPartitioned(p topo.Partition, spec Spec) *Fabric {
	f, err := BuildPartitioned(p, spec)
	if err != nil {
		panic(err)
	}
	return f
}

// PodShard returns the pod-aligned shard map for an n-shard partition:
// pod p — its edge and aggregation switches and all of its hosts — lands
// on shard p mod n, and core j.c (the c-th core of plane j) on shard
// (j·(k/2) + c) mod n. Host↔edge and edge↔agg cables are therefore
// always intra-shard; only the agg↔core cables cross the cut, and every
// one of them carries Spec.LinkDelay — the structure the synthesizer
// knows is exactly the lookahead-friendly cut. Balanced whenever n
// divides the pod count k (and the core count k²/(4·Oversub)).
//
// The map answers by node name, so it plugs straight into
// shard.Cluster.Partition. Unknown names (there are none in a
// synthesized fabric) map to shard 0.
func (s Spec) PodShard(n int) func(name string) int {
	if err := s.fill(); err != nil {
		panic(err)
	}
	if n < 1 {
		panic(fmt.Sprintf("fabric: PodShard over %d shards", n))
	}
	h := s.K / 2 // hosts per edge, edges per pod, cores per plane
	return func(name string) int {
		var a, b int
		switch {
		case len(name) > 1 && name[0] == 'h' && name[1] != 'o': // "h<i>" but not "host..."
			if _, err := fmt.Sscanf(name, "h%d", &a); err == nil {
				return a / (h * h) % n // host index → pod
			}
		case strings.HasPrefix(name, "edge"):
			if _, err := fmt.Sscanf(name, "edge%d.%d", &a, &b); err == nil {
				return a % n
			}
		case strings.HasPrefix(name, "agg"):
			if _, err := fmt.Sscanf(name, "agg%d.%d", &a, &b); err == nil {
				return a % n
			}
		case strings.HasPrefix(name, "core"):
			if _, err := fmt.Sscanf(name, "core%d.%d", &a, &b); err == nil {
				return (a*h + b) % n
			}
		}
		return 0
	}
}

// HostPort returns host i's single NIC port (generators transmit on it,
// its RxStats/OnReceive are the delivery side).
func (f *Fabric) HostPort(i int) *netfpga.Port {
	return f.Tester(f.Hosts[i].Name).Card.Port(0)
}

// TierOf classifies a ledger hop ID.
func (f *Fabric) TierOf(hop int) Tier {
	if hop < 0 || hop >= len(f.tierOf) {
		return TierOther
	}
	return f.tierOf[hop]
}

// TierDrops reduces the scenario ledger to per-tier totals, indexed by
// Tier. Σ TierDrops == ledger.Total(): the reduction loses nothing, so
// LossMap conservation carries over to the tier view.
func (f *Fabric) TierDrops() [tierCount]uint64 {
	var out [tierCount]uint64
	l := f.Drops()
	for hop := 0; hop < l.Hops(); hop++ {
		out[f.TierOf(hop)] += l.HopTotal(hop)
	}
	return out
}

// Delivered sums the packets every host NIC received.
func (f *Fabric) Delivered() uint64 {
	var n uint64
	for i := range f.Hosts {
		n += f.HostPort(i).RxStats().Packets
	}
	return n
}
