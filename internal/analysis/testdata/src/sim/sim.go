// Package sim is a miniature stand-in for osnt/internal/sim: the Time /
// Duration named types and the Engine scheduling surface the simtime
// corpus exercises. Matched by package name + type name, like the real
// package.
package sim

// Time is an instant in virtual picoseconds.
type Time int64

// Duration is a span of virtual picoseconds.
type Duration int64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a scheduled callback.
type Event struct{}

// Engine is the discrete-event scheduler.
type Engine struct{ now Time }

// Now returns the current virtual instant.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at instant at.
func (e *Engine) Schedule(at Time, fn func()) *Event { return &Event{} }

// Reschedule re-arms ev for instant at.
func (e *Engine) Reschedule(ev *Event, at Time) {}

// ScheduleEvery runs fn every period starting at t0.
func (e *Engine) ScheduleEvery(t0 Time, period Duration, fn func()) {}
