package wire

import "fmt"

// DropReason classifies why a device discarded a frame. Every drop path
// in the stack reports one of these into the scenario's DropLedger, so a
// multi-hop experiment can say not just *that* packets were lost but
// *where* and *why* — the loss analogue of the per-hop latency trace
// (HopTrace). The vocabulary is closed: a device inventing a new way to
// lose frames must add a reason here, which keeps the conservation
// arithmetic (sent = delivered + Σ attributed drops) checkable.
type DropReason uint8

// Drop reasons, one per distinct loss mechanism in the stack.
const (
	// DropEgressOverflow is a bounded egress FIFO overflowing under
	// same-rate fan-in (switchsim / ofswitch output queues).
	DropEgressOverflow DropReason = iota
	// DropLookupOverflow is a saturated ingress lookup pipeline shedding
	// packets (switchsim per-port lookup queues).
	DropLookupOverflow
	// DropRateBoundary is an egress FIFO overflowing at a speed
	// conversion point: the queue drains at a slower rate than the bits
	// arrived, so sustained overload is structural, not incidental.
	DropRateBoundary
	// DropRunt is a frame too short to carry a parseable Ethernet
	// header, discarded at the forwarding decision.
	DropRunt
	// DropHairpin is a frame addressed out its own ingress port.
	DropHairpin
	// DropRingFull is a capture queue's DMA descriptor ring overflowing
	// (the loss-limited host path).
	DropRingFull
	// DropFilterReject is a frame discarded by a hardware filter
	// verdict at the capture pipeline.
	DropFilterReject
	// DropNoRule is an OpenFlow table miss with no controller attached.
	DropNoRule
	// DropUnconnected is a frame forwarded out a port with no link.
	DropUnconnected
	// DropTxOverflow is a card TX queue overflowing because software
	// offered more than line rate.
	DropTxOverflow
	// DropUnterminated is a frame transmitted into a link with no peer.
	DropUnterminated

	// NumDropReasons bounds the reason space; ledgers index arrays by
	// reason.
	NumDropReasons
)

var dropReasonNames = [NumDropReasons]string{
	"egress-overflow",
	"lookup-overflow",
	"rate-boundary",
	"runt",
	"hairpin",
	"ring-full",
	"filter-reject",
	"no-rule",
	"unconnected",
	"tx-overflow",
	"unterminated",
}

// String names the reason as it appears in loss tables.
func (r DropReason) String() string {
	if r < NumDropReasons {
		return dropReasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// DropLedger is the scenario-wide loss-attribution ledger: a dense
// (hop × reason) counter matrix plus a label per hop. One ledger is
// owned by the scenario (internal/topo builds and threads it, exactly
// as it threads HopTrace hop IDs); every device holding a drop site
// reports each discarded frame as (hop, reason, count). Hop IDs share
// the HopTrace namespace — a DUT's ledger hop is its trace hop ID — so
// latency decomposition and loss attribution line up row for row.
//
// Reporting is an array increment once the hop is registered, so the
// drop hot path allocates nothing; all methods are nil-safe on the
// receiver, so devices without an attached ledger pay one branch.
// The zero value is an empty ledger ready for use.
type DropLedger struct {
	hops []hopDrops // indexed by hop ID; slot 0 is the unattributed bucket
}

type hopDrops struct {
	label  string
	counts [NumDropReasons]uint64
}

// grow ensures slot hop exists.
func (l *DropLedger) grow(hop int) {
	for len(l.hops) <= hop {
		l.hops = append(l.hops, hopDrops{})
	}
}

// Register labels hop ID hop (creating it, and any lower unlabelled
// slots, as needed). Registering ahead of traffic keeps Report an
// array increment.
func (l *DropLedger) Register(hop int, label string) {
	if l == nil || hop < 0 {
		return
	}
	l.grow(hop)
	l.hops[hop].label = label
}

// Add registers label at the lowest unused hop ID ≥ 1 and returns it —
// the spelling for hand-built rigs that do not pin hop IDs. A slot is
// used if it is labelled or has already been reported to, so a later
// Add can never adopt another device's anonymous counts.
func (l *DropLedger) Add(label string) int {
	hop := 1
	for hop < len(l.hops) && (l.hops[hop].label != "" || l.hops[hop].counts != [NumDropReasons]uint64{}) {
		hop++
	}
	l.Register(hop, label)
	return hop
}

// Report attributes n dropped frames to (hop, reason). Negative hops
// fall into the unattributed bucket (hop 0); unregistered non-negative
// hops are counted under their own (unlabelled) ID. Either way the
// drop is counted — conservation would silently break otherwise.
func (l *DropLedger) Report(hop int, reason DropReason, n uint64) {
	if l == nil {
		return
	}
	if hop < 0 {
		hop = 0
	}
	if hop >= len(l.hops) {
		l.grow(hop)
	}
	l.hops[hop].counts[reason] += n
}

// Hops returns the number of hop slots (registered or reported-to),
// including the unattributed slot 0.
func (l *DropLedger) Hops() int {
	if l == nil {
		return 0
	}
	return len(l.hops)
}

// Label returns hop's label ("" for the unattributed bucket and
// unregistered hops).
func (l *DropLedger) Label(hop int) string {
	if l == nil || hop < 0 || hop >= len(l.hops) {
		return ""
	}
	return l.hops[hop].label
}

// Count returns the drops attributed to (hop, reason).
func (l *DropLedger) Count(hop int, reason DropReason) uint64 {
	if l == nil || hop < 0 || hop >= len(l.hops) || reason >= NumDropReasons {
		return 0
	}
	return l.hops[hop].counts[reason]
}

// HopTotal returns all drops attributed to one hop.
func (l *DropLedger) HopTotal(hop int) uint64 {
	if l == nil || hop < 0 || hop >= len(l.hops) {
		return 0
	}
	var n uint64
	for _, c := range l.hops[hop].counts {
		n += c
	}
	return n
}

// ReasonTotal returns all drops with one reason across hops.
func (l *DropLedger) ReasonTotal(reason DropReason) uint64 {
	if l == nil || reason >= NumDropReasons {
		return 0
	}
	var n uint64
	for i := range l.hops {
		n += l.hops[i].counts[reason]
	}
	return n
}

// Merge folds src into l: counts add hop by hop and src's labels are
// adopted wherever l has none. It is the reduction step for sharded
// scenarios, where each shard owns a private ledger (devices report only
// into their own shard's) but hop IDs are assigned globally — so merging
// the per-shard ledgers reproduces exactly the single ledger a
// single-shard build would have written.
func (l *DropLedger) Merge(src *DropLedger) {
	if l == nil || src == nil {
		return
	}
	if len(src.hops) > 0 {
		l.grow(len(src.hops) - 1)
	}
	for hop := range src.hops {
		if lbl := src.hops[hop].label; lbl != "" && l.hops[hop].label == "" {
			l.hops[hop].label = lbl
		}
		for r := range src.hops[hop].counts {
			l.hops[hop].counts[r] += src.hops[hop].counts[r]
		}
	}
}

// Total returns every attributed drop in the ledger — the Σ in
// sent = delivered + Σ attributed drops.
func (l *DropLedger) Total() uint64 {
	if l == nil {
		return 0
	}
	var n uint64
	for i := range l.hops {
		for _, c := range l.hops[i].counts {
			n += c
		}
	}
	return n
}
