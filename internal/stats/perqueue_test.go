package stats

import "testing"

func TestPerQueueReduction(t *testing.T) {
	pq := NewPerQueue(4)
	pq.Set(0, 100, 100, 0)
	pq.Set(1, 100, 90, 10)
	pq.Set(2, 100, 100, 0)
	pq.Set(3, 100, 100, 0)

	if pq.Queues() != 4 {
		t.Fatalf("queues = %d", pq.Queues())
	}
	if pq.TotalSteered() != 400 || pq.TotalDelivered() != 390 || pq.TotalDropped() != 10 {
		t.Fatalf("totals %d/%d/%d", pq.TotalSteered(), pq.TotalDelivered(), pq.TotalDropped())
	}
	if got := pq.Share(1); got != 0.25 {
		t.Fatalf("share = %v", got)
	}
	if got := pq.DropFraction(1); got != 0.1 {
		t.Fatalf("drop fraction = %v", got)
	}
	if got := pq.DropFraction(0); got != 0 {
		t.Fatalf("lossless queue drop fraction = %v", got)
	}
	if got := pq.TotalDropFraction(); got != 0.025 {
		t.Fatalf("total drop fraction = %v", got)
	}
	if got := pq.Imbalance(); got != 1.0 {
		t.Fatalf("balanced imbalance = %v", got)
	}
}

func TestPerQueueImbalance(t *testing.T) {
	pq := NewPerQueue(4)
	pq.Set(0, 400, 400, 0) // one hot queue
	if got := pq.Imbalance(); got != 4.0 {
		t.Fatalf("imbalance = %v, want 4.0 (everything on one of four queues)", got)
	}
	empty := NewPerQueue(2)
	if empty.Imbalance() != 0 || empty.Share(0) != 0 || empty.TotalDropFraction() != 0 {
		t.Fatal("empty reduction must read zero")
	}
}
