package openflow

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"osnt/internal/packet"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
)

func roundTrip(t *testing.T, m Message, xid uint32) Message {
	t.Helper()
	raw := Encode(m, xid)
	got, gotXid, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode %s: %v", m.Type(), err)
	}
	if gotXid != xid {
		t.Fatalf("xid %d, want %d", gotXid, xid)
	}
	if got.Type() != m.Type() {
		t.Fatalf("type %s, want %s", got.Type(), m.Type())
	}
	return got
}

func TestHeaderFormat(t *testing.T) {
	raw := Encode(&Hello{}, 0xdeadbeef)
	if len(raw) != 8 {
		t.Fatalf("hello len %d", len(raw))
	}
	if raw[0] != 0x01 || raw[1] != 0 {
		t.Fatalf("header %x", raw[:2])
	}
	if raw[2] != 0 || raw[3] != 8 {
		t.Fatalf("length field %x", raw[2:4])
	}
	if raw[4] != 0xde || raw[7] != 0xef {
		t.Fatalf("xid bytes %x", raw[4:8])
	}
}

func TestSimpleMessagesRoundTrip(t *testing.T) {
	for _, m := range []Message{
		&Hello{}, &BarrierRequest{}, &BarrierReply{}, &FeaturesRequest{},
	} {
		roundTrip(t, m, 7)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	m := roundTrip(t, &EchoRequest{Data: []byte("osnt-ping")}, 3).(*EchoRequest)
	if string(m.Data) != "osnt-ping" {
		t.Fatalf("payload %q", m.Data)
	}
	r := roundTrip(t, &EchoReply{Data: []byte("pong")}, 4).(*EchoReply)
	if string(r.Data) != "pong" {
		t.Fatalf("payload %q", r.Data)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	m := roundTrip(t, &Error{ErrType: 3, Code: 2, Data: []byte{1, 2, 3}}, 9).(*Error)
	if m.ErrType != 3 || m.Code != 2 || !bytes.Equal(m.Data, []byte{1, 2, 3}) {
		t.Fatalf("%+v", m)
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	in := &FeaturesReply{
		DatapathID: 0x00004e4f46504741, NBuffers: 256, NTables: 2,
		Capabilities: 0x87, Actions: 0xfff,
		Ports: []PhyPort{
			{No: 1, HWAddr: macA, Name: "eth1", Curr: 1 << 6},
			{No: 2, HWAddr: macB, Name: "eth2"},
		},
	}
	m := roundTrip(t, in, 1).(*FeaturesReply)
	if m.DatapathID != in.DatapathID || m.NBuffers != 256 || m.NTables != 2 {
		t.Fatalf("%+v", m)
	}
	if len(m.Ports) != 2 || m.Ports[0].Name != "eth1" || m.Ports[1].HWAddr != macB {
		t.Fatalf("ports %+v", m.Ports)
	}
	if m.Ports[0].Curr != 1<<6 {
		t.Fatal("port curr")
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	in := &PacketIn{BufferID: 0xffffffff, TotalLen: 1500, InPort: 3,
		Reason: ReasonNoMatch, Data: []byte{0xaa, 0xbb}}
	m := roundTrip(t, in, 77).(*PacketIn)
	if !reflect.DeepEqual(m, in) {
		t.Fatalf("%+v != %+v", m, in)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	in := &PacketOut{
		BufferID: 0xffffffff, InPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 2, MaxLen: 0}},
		Data:    []byte{1, 2, 3, 4},
	}
	m := roundTrip(t, in, 5).(*PacketOut)
	if !reflect.DeepEqual(m, in) {
		t.Fatalf("%+v != %+v", m, in)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	match := MatchAll()
	match.Wildcards &^= WildDlType | WildNwProto | WildTpDst
	match.DlType = packet.EtherTypeIPv4
	match.NwProto = packet.ProtoUDP
	match.TpDst = 53
	match.SetNwDstPrefix(packet.IP4{10, 1, 2, 0}, 24)
	in := &FlowMod{
		Match: match, Cookie: 0xc00c1e, Command: FCAdd,
		IdleTimeout: 30, HardTimeout: 300, Priority: 100,
		BufferID: 0xffffffff, OutPort: PortNone, Flags: FlagSendFlowRem,
		Actions: []Action{
			&ActionSetDlAddr{TypeCode: ActTypeSetDlDst, Addr: macB},
			&ActionOutput{Port: 1},
		},
	}
	m := roundTrip(t, in, 42).(*FlowMod)
	if !reflect.DeepEqual(m, in) {
		t.Fatalf("\n got %+v\nwant %+v", m, in)
	}
	if m.Match.NwDstWildBits() != 8 {
		t.Fatalf("nw_dst wild bits %d", m.Match.NwDstWildBits())
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	in := &FlowRemoved{
		Match: MatchAll(), Cookie: 1, Priority: 10, Reason: RemovedIdleTimeout,
		DurationSec: 5, DurationNsec: 500, IdleTimeout: 30,
		PacketCount: 1000, ByteCount: 64000,
	}
	m := roundTrip(t, in, 8).(*FlowRemoved)
	if !reflect.DeepEqual(m, in) {
		t.Fatalf("%+v != %+v", m, in)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	in := &PortStatus{Reason: 2, Desc: PhyPort{No: 4, HWAddr: macA, Name: "nf3"}}
	m := roundTrip(t, in, 2).(*PortStatus)
	if m.Reason != 2 || m.Desc.No != 4 || m.Desc.Name != "nf3" {
		t.Fatalf("%+v", m)
	}
}

func TestStatsFlowRoundTrip(t *testing.T) {
	req := &StatsRequest{StatsType: StatsFlow,
		Flow: &FlowStatsRequest{Match: MatchAll(), OutPort: PortNone}}
	m := roundTrip(t, req, 11).(*StatsRequest)
	if m.StatsType != StatsFlow || m.Flow == nil || m.Flow.OutPort != PortNone {
		t.Fatalf("%+v", m)
	}

	rep := &StatsReply{StatsType: StatsFlow, Flows: []FlowStats{
		{
			TableID: 0, Match: MatchAll(), DurationSec: 1, Priority: 5,
			Cookie: 7, PacketCount: 100, ByteCount: 6400,
			Actions: []Action{&ActionOutput{Port: 3}},
		},
		{TableID: 1, Match: MatchAll(), PacketCount: 1},
	}}
	rm := roundTrip(t, rep, 12).(*StatsReply)
	if len(rm.Flows) != 2 {
		t.Fatalf("flows %d", len(rm.Flows))
	}
	if rm.Flows[0].PacketCount != 100 || rm.Flows[0].Cookie != 7 {
		t.Fatalf("%+v", rm.Flows[0])
	}
	if len(rm.Flows[0].Actions) != 1 {
		t.Fatal("actions lost")
	}
	if rm.Flows[1].TableID != 1 {
		t.Fatal("second entry")
	}
}

func TestStatsAggregateAndPortRoundTrip(t *testing.T) {
	agg := roundTrip(t, &StatsReply{StatsType: StatsAggregate,
		Aggregate: &AggregateStats{PacketCount: 10, ByteCount: 640, FlowCount: 2}}, 1).(*StatsReply)
	if agg.Aggregate.FlowCount != 2 || agg.Aggregate.ByteCount != 640 {
		t.Fatalf("%+v", agg.Aggregate)
	}

	port := roundTrip(t, &StatsReply{StatsType: StatsPort, Ports: []PortStats{
		{PortNo: 1, RxPackets: 5, TxPackets: 6, RxBytes: 7, TxBytes: 8, RxDropped: 1},
		{PortNo: 2},
	}}, 2).(*StatsReply)
	if len(port.Ports) != 2 || port.Ports[0].TxPackets != 6 || port.Ports[0].RxDropped != 1 {
		t.Fatalf("%+v", port.Ports)
	}

	preq := roundTrip(t, &StatsRequest{StatsType: StatsPort,
		Port: &PortStatsRequest{PortNo: 3}}, 3).(*StatsRequest)
	if preq.Port.PortNo != 3 {
		t.Fatalf("%+v", preq)
	}
}

func TestAllActionsRoundTrip(t *testing.T) {
	in := &PacketOut{BufferID: 1, InPort: 1, Actions: []Action{
		&ActionOutput{Port: 1, MaxLen: 128},
		&ActionSetVlanVid{Vid: 100},
		&ActionStripVlan{},
		&ActionSetDlAddr{TypeCode: ActTypeSetDlSrc, Addr: macA},
		&ActionSetDlAddr{TypeCode: ActTypeSetDlDst, Addr: macB},
		&ActionSetNwAddr{TypeCode: ActTypeSetNwSrc, Addr: packet.IP4{1, 2, 3, 4}},
		&ActionSetNwAddr{TypeCode: ActTypeSetNwDst, Addr: packet.IP4{5, 6, 7, 8}},
		&ActionSetTpPort{TypeCode: ActTypeSetTpSrc, Port: 80},
		&ActionSetTpPort{TypeCode: ActTypeSetTpDst, Port: 443},
	}}
	m := roundTrip(t, in, 1).(*PacketOut)
	if !reflect.DeepEqual(m.Actions, in.Actions) {
		t.Fatalf("\n got %+v\nwant %+v", m.Actions, in.Actions)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 0, 0}); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	bad := Encode(&Hello{}, 1)
	bad[0] = 4 // OF 1.3
	if _, _, err := Decode(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	tooLong := Encode(&Hello{}, 1)
	tooLong[3] = 200 // length > buffer
	if _, _, err := Decode(tooLong); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
	truncBody := Encode(&FlowMod{Match: MatchAll()}, 1)[:HeaderLen+10]
	truncBody[2] = 0
	truncBody[3] = HeaderLen + 10
	if _, _, err := Decode(truncBody); err == nil {
		t.Fatal("truncated flow_mod accepted")
	}
}

func TestMatchCoversSemantics(t *testing.T) {
	frame := packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: packet.IP4{10, 1, 2, 3}, DstIP: packet.IP4{10, 9, 8, 7},
		SrcPort: 1234, DstPort: 80, FrameSize: 128,
	}.Build()
	key, err := KeyFromPacket(frame, 2)
	if err != nil {
		t.Fatal(err)
	}
	if key.InPort != 2 || key.DlVlan != VlanNone || key.NwProto != packet.ProtoUDP ||
		key.TpDst != 80 || key.NwSrc != (packet.IP4{10, 1, 2, 3}).Uint32() {
		t.Fatalf("key %+v", key)
	}

	all := MatchAll()
	if !all.Covers(&key) {
		t.Fatal("wildcard-all must cover everything")
	}

	exact := MatchFromKey(key)
	if !exact.Exact() {
		t.Fatal("MatchFromKey not exact")
	}
	if !exact.Covers(&key) {
		t.Fatal("exact match must cover its own key")
	}
	other := key
	other.TpDst = 81
	if exact.Covers(&other) {
		t.Fatal("exact match covered a different key")
	}
	if exact.ExactKey() != key {
		t.Fatal("ExactKey round trip")
	}

	// Prefix semantics.
	m := MatchAll()
	m.Wildcards &^= WildDlType
	m.DlType = packet.EtherTypeIPv4
	m.SetNwSrcPrefix(packet.IP4{10, 1, 0, 0}, 16)
	if !m.Covers(&key) {
		t.Fatal("10.1/16 must cover 10.1.2.3")
	}
	m.SetNwSrcPrefix(packet.IP4{10, 2, 0, 0}, 16)
	if m.Covers(&key) {
		t.Fatal("10.2/16 must not cover 10.1.2.3")
	}

	// Field-specific mismatch.
	mp := MatchAll()
	mp.Wildcards &^= WildInPort
	mp.InPort = 3
	if mp.Covers(&key) {
		t.Fatal("in_port=3 covered in_port=2")
	}
}

func TestKeyFromPacketVLANAndARP(t *testing.T) {
	inner := packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: packet.IP4{1, 1, 1, 1}, DstIP: packet.IP4{2, 2, 2, 2},
		SrcPort: 5, DstPort: 6, FrameSize: 64,
	}.Build()
	eth := &packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeVLAN}
	vlan := &packet.VLAN{ID: 300, Priority: 4, EtherType: packet.EtherTypeIPv4}
	buf := packet.NewSerializeBuffer(18, len(inner))
	tagged, _ := packet.Serialize(buf, packet.SerializeOptions{}, eth, vlan,
		packet.Payload(inner[packet.EthernetHeaderLen:]))
	key, err := KeyFromPacket(tagged, 1)
	if err != nil {
		t.Fatal(err)
	}
	if key.DlVlan != 300 || key.DlVlanPcp != 4 || key.DlType != packet.EtherTypeIPv4 || key.TpDst != 6 {
		t.Fatalf("vlan key %+v", key)
	}

	arp := &packet.ARP{Op: packet.ARPRequest, SenderHW: macA,
		SenderIP: packet.IP4{10, 0, 0, 1}, TargetIP: packet.IP4{10, 0, 0, 2}}
	ethArp := &packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeARP}
	buf2 := packet.NewSerializeBuffer(48, 0)
	arpFrame, _ := packet.Serialize(buf2, packet.SerializeOptions{}, ethArp, arp)
	akey, err := KeyFromPacket(arpFrame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if akey.NwProto != uint8(packet.ARPRequest) || akey.NwSrc != (packet.IP4{10, 0, 0, 1}).Uint32() {
		t.Fatalf("arp key %+v", akey)
	}
}

// Property: every FlowMod round trips exactly through encode/decode.
func TestPropertyFlowModRoundTrip(t *testing.T) {
	f := func(wild uint32, inPort, prio, tpDst uint16, proto uint8, nwsrc uint32, outPort uint16) bool {
		m := &FlowMod{
			Match: Match{
				Wildcards: wild & WildAll, InPort: inPort,
				NwProto: proto, NwSrc: nwsrc, TpDst: tpDst,
			},
			Command: FCAdd, Priority: prio, BufferID: 0xffffffff, OutPort: PortNone,
			Actions: []Action{&ActionOutput{Port: outPort}},
		}
		got, _, err := Decode(Encode(m, 1))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: match covering is reflexive for exact matches built from
// arbitrary keys.
func TestPropertyExactCoversSelf(t *testing.T) {
	f := func(inPort uint16, vlan uint16, dlType uint16, proto uint8, src, dst uint32, sp, dp uint16) bool {
		k := Key{InPort: inPort, DlVlan: vlan, DlType: dlType, NwProto: proto,
			NwSrc: src, NwDst: dst, TpSrc: sp, TpDst: dp}
		m := MatchFromKey(k)
		return m.Covers(&k) && m.Exact() && m.ExactKey() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteOverTCP(t *testing.T) {
	// The codec must interoperate with a real TCP stream (the form
	// OFLOPS-turbo would use against a production switch).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking:", err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		// Expect HELLO then FLOW_MOD, answer BARRIER_REPLY.
		m1, _, err := ReadMessage(conn)
		if err != nil || m1.Type() != TypeHello {
			done <- err
			return
		}
		m2, xid, err := ReadMessage(conn)
		if err != nil || m2.Type() != TypeFlowMod {
			done <- err
			return
		}
		done <- WriteMessage(conn, &BarrierReply{}, xid)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Hello{}, 1); err != nil {
		t.Fatal(err)
	}
	fm := &FlowMod{Match: MatchAll(), Command: FCAdd, BufferID: 0xffffffff,
		OutPort: PortNone, Actions: []Action{&ActionOutput{Port: 1}}}
	if err := WriteMessage(conn, fm, 99); err != nil {
		t.Fatal(err)
	}
	reply, xid, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type() != TypeBarrierReply || xid != 99 {
		t.Fatalf("reply %s xid %d", reply.Type(), xid)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMatchString(t *testing.T) {
	m := MatchAll()
	if m.String() != "any" {
		t.Fatalf("wildcard string %q", m.String())
	}
	m.Wildcards &^= WildTpDst
	m.TpDst = 80
	m.SetNwDstPrefix(packet.IP4{10, 0, 0, 0}, 8)
	s := m.String()
	if s != "nw_dst=10.0.0.0/8,tp_dst=80" {
		t.Fatalf("match string %q", s)
	}
}

func BenchmarkFlowModEncodeDecode(b *testing.B) {
	fm := &FlowMod{Match: MatchAll(), Command: FCAdd, Priority: 100,
		BufferID: 0xffffffff, OutPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 1}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := Encode(fm, uint32(i))
		if _, _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchCovers(b *testing.B) {
	frame := packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: packet.IP4{10, 1, 2, 3}, DstIP: packet.IP4{10, 9, 8, 7},
		SrcPort: 1234, DstPort: 80, FrameSize: 128,
	}.Build()
	key, _ := KeyFromPacket(frame, 2)
	m := MatchAll()
	m.Wildcards &^= WildDlType | WildNwProto
	m.DlType = packet.EtherTypeIPv4
	m.NwProto = packet.ProtoUDP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !m.Covers(&key) {
			b.Fatal("no cover")
		}
	}
}
