// Package detorder is the corpus for the determinism analyzer: map ranges
// that feed output versus the sanctioned sorted-key / accumulation /
// map-copy idioms, wall-clock reads, global math/rand, and multi-way
// selects.
package detorder

import (
	"math/rand"
	"slices"
	"sort"
	"time"
)

// emitUnsorted leaks map order straight into output.
func emitUnsorted(m map[string]int, emit func(string, int)) {
	for k, v := range m { // want "map iteration order is nondeterministic"
		emit(k, v)
	}
}

// emitSorted is the sanctioned idiom: collect, sort, iterate.
func emitSorted(m map[string]int, emit func(string, int)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, m[k])
	}
}

// collectedNeverSorted gathers keys but forgets the sort: order still
// leaks.
func collectedNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

// sortSliceLater sorts through a comparator closure; still sanctioned.
func sortSliceLater(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// integerFold is order-free: integer accumulation commutes.
func integerFold(m map[string]uint64) uint64 {
	var total uint64
	n := 0
	for _, v := range m {
		total += v
		n++
	}
	return total / uint64(n+1)
}

// floatFold is NOT order-free: float addition is not associative, so the
// low bits depend on iteration order.
func floatFold(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

// mapCopy builds another map: order-free.
func mapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// pruneInPlace deletes during iteration: order-free.
func pruneInPlace(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// branchingBody is order-sensitive (first-wins tie-breaking depends on
// iteration order) and must be reported.
func branchingBody(m map[string]int) string {
	best := ""
	bestV := -1
	for k, v := range m { // want "map iteration order is nondeterministic"
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

// ignoredRange is deliberately order-free in a way the analyzer cannot
// prove; the directive carries the argument.
func ignoredRange(m map[string]int, addCommutative func(int)) {
	//lint:ignore detorder the sink folds with a commutative operation
	for _, v := range m {
		addCommutative(v)
	}
}

// inbox is a per-source record buffer, the shard-style boundary-channel
// shape: drains consume recs and reset the buffer.
type inbox struct {
	recs []int
}

// drainSorted is the sanctioned inbox-drain idiom: merge every source's
// buffered records into one slice, reset each buffer (clear + truncate
// to zero), and sort the merge before replaying — the order the sources
// were visited in cannot survive the sort.
func drainSorted(chans map[string]*inbox, replay func(int)) {
	var merged []int
	for _, ch := range chans {
		merged = append(merged, ch.recs...)
		clear(ch.recs)
		ch.recs = ch.recs[:0]
	}
	slices.SortFunc(merged, func(a, b int) int { return a - b })
	for _, r := range merged {
		replay(r)
	}
}

// drainUnsorted forgets the sort: the merge order (map iteration) leaks
// straight into the replay.
func drainUnsorted(chans map[string]*inbox, replay func(int)) {
	var merged []int
	for _, ch := range chans { // want "map iteration order is nondeterministic"
		merged = append(merged, ch.recs...)
		ch.recs = ch.recs[:0]
	}
	for _, r := range merged {
		replay(r)
	}
}

// drainPartialTruncate truncates to a nonzero bound: the surviving
// element depends on which source was visited last, so the reset is not
// order-free.
func drainPartialTruncate(chans map[string]*inbox) {
	for _, ch := range chans { // want "map iteration order is nondeterministic"
		ch.recs = ch.recs[:1]
	}
}

// wallClock reads real time inside a simulation package.
func wallClock() int64 {
	t := time.Now() // want "wall-clock time.Now in a simulation package"
	return t.UnixNano()
}

// globalRand uses the process-wide stream.
func globalRand() int {
	return rand.Intn(10) // want "global math/rand stream is nondeterministic"
}

// multiSelect races two ready channels.
func multiSelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// singleSelectWithDefault is a deterministic non-blocking poll.
func singleSelectWithDefault(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
