package wire

import (
	"osnt/internal/sim"
)

// Exporter receives the traffic a boundary link would otherwise deliver
// locally. It is the egress half of a cross-shard cable: the transmitting
// shard's link serialises exactly as usual (busying the wire, accounting
// frames and bytes, computing the propagation-delayed first-bit/last-bit
// instants) and then hands the frame or train to the exporter instead of
// arming a local delivery event. Ownership transfers with the call — the
// link never touches the frame again, so the destination shard can
// release it into the (thread-safe) pool without sharing.
//
// Export happens synchronously inside Transmit, on the transmitting
// shard's goroutine; implementations must not touch any other shard's
// state. The shard runtime buffers exports per (src, dst) pair and
// replays them into the destination engine at the next barrier, sorted
// by (last-bit instant, delivery key, source shard, export sequence).
//
// key is the boundary link's structural delivery key (SetDeliveryKey):
// the same-instant priority its delivery events carry. Replaying a
// boundary delivery at (lastBit, key) puts it in exactly the heap
// position the link's own event would occupy in a single-engine run —
// same-instant arrivals at a device order by cable, a property of the
// topology rather than of scheduling history — which is what makes the
// sharded digests byte-identical, not merely statistically equal.
type Exporter interface {
	// ExportFrame hands over one frame whose first and last bits arrive
	// at the far end at the given instants.
	ExportFrame(f *Frame, firstBit, lastBit sim.Time, key uint64)
	// ExportTrain hands over a back-to-back run; the instants are the
	// first frame's window and the rest follow arithmetically at t.Rate
	// (already set to the link rate).
	ExportTrain(t *Train, firstBit, lastBit sim.Time, key uint64)
}

// NewExportLink builds a boundary link: it serialises like NewLink but
// delivers through exp instead of a local peer. The propagation delay is
// the conservative-lookahead budget of the cut — it must be strictly
// positive, or the destination shard could observe traffic inside its
// current safe window (internal/topo rejects zero-delay cross-shard
// edges for exactly this reason).
func NewExportLink(e *sim.Engine, r Rate, d sim.Duration, exp Exporter) *Link {
	if d <= 0 {
		panic("wire: export link needs a positive propagation delay (the lookahead budget)")
	}
	return &Link{Engine: e, Rate: r, Delay: d, exporter: exp, deliverPrio: sim.PrioDefault}
}

// DeliverTrain hands a train to an endpoint the way a link delivery event
// would: batch-aware peers get the whole run in one call, and everyone
// else gets per-frame Receive calls whose boundary instants are recovered
// arithmetically from the train (frames abut, so frame k's first bit
// arrives the instant frame k-1's last bit did). start and at are the
// first frame's first-bit and last-bit arrival instants. The train
// container is consumed either way.
func DeliverTrain(peer Endpoint, t *Train, start, at sim.Time) {
	if tep, ok := peer.(TrainEndpoint); ok {
		tep.ReceiveTrain(t, start, at)
		return
	}
	fb, lb := start, at
	for i, f := range t.Frames {
		t.Frames[i] = nil
		peer.Receive(f, fb, lb)
		if i+1 < len(t.Frames) {
			fb = lb
			lb = fb.Add(SerializationTime(t.Frames[i+1].Size, t.Rate))
		}
	}
	t.Frames = t.Frames[:0]
	t.Recycle()
}
