package hostnic

import (
	"testing"

	"osnt/internal/sim"
	"osnt/internal/wire"
)

func frame(n int) *wire.Frame { return wire.NewFrame(make([]byte, n-4)) }

func TestCoalesceByCount(t *testing.T) {
	e := sim.NewEngine()
	var swTS []sim.Time
	var arrivals []sim.Time
	nic := New(e, Config{CoalesceCount: 4, Seed: 1,
		Sink: func(_ []byte, ts, at sim.Time) { swTS = append(swTS, ts); arrivals = append(arrivals, at) }})
	l := wire.NewLink(e, wire.Rate10G, 0, nic)
	for i := 0; i < 4; i++ {
		l.Transmit(frame(64))
	}
	e.Run()
	if len(swTS) != 4 {
		t.Fatalf("delivered %d", len(swTS))
	}
	if nic.Interrupts() != 1 {
		t.Fatalf("interrupts %d, want 1 (coalesced)", nic.Interrupts())
	}
	// All packets in the batch share one software timestamp...
	for _, ts := range swTS {
		if ts != swTS[0] {
			t.Fatal("batch timestamps differ")
		}
	}
	// ...which is strictly later than every true arrival.
	for _, at := range arrivals {
		if swTS[0] <= at {
			t.Fatal("software timestamp not delayed")
		}
	}
}

func TestCoalesceByTimeout(t *testing.T) {
	e := sim.NewEngine()
	n := 0
	nic := New(e, Config{CoalesceCount: 64, CoalesceTimeout: 30 * sim.Microsecond, Seed: 2,
		Sink: func([]byte, sim.Time, sim.Time) { n++ }})
	l := wire.NewLink(e, wire.Rate10G, 0, nic)
	l.Transmit(frame(64)) // a single frame must still be delivered
	e.Run()
	if n != 1 || nic.Interrupts() != 1 {
		t.Fatalf("delivered %d, interrupts %d", n, nic.Interrupts())
	}
}

func TestTimestampErrorDominatesHardware(t *testing.T) {
	// E6's essence: mean software timestamp error must exceed the 6.25ns
	// hardware quantum by orders of magnitude.
	e := sim.NewEngine()
	var worst, sum sim.Duration
	cnt := 0
	nic := New(e, Config{Seed: 3, Sink: func(_ []byte, ts, at sim.Time) {
		errD := ts.Sub(at)
		sum += errD
		cnt++
		if errD > worst {
			worst = errD
		}
	}})
	l := wire.NewLink(e, wire.Rate10G, 0, nic)
	for i := 0; i < 1000; i++ {
		at := sim.Time(i) * sim.Time(10*sim.Microsecond)
		e.Schedule(at, func() { l.Transmit(frame(256)) })
	}
	e.Run()
	if cnt != 1000 {
		t.Fatalf("delivered %d", cnt)
	}
	mean := sum / sim.Duration(cnt)
	if mean < sim.Microsecond {
		t.Fatalf("mean software error %v, expected ≫ 1µs", mean)
	}
	if worst < 10*sim.Microsecond {
		t.Fatalf("worst software error %v", worst)
	}
}

func TestBatchesIndependent(t *testing.T) {
	// Two widely spaced packets land in different batches with different
	// timestamps.
	e := sim.NewEngine()
	var ts []sim.Time
	nic := New(e, Config{Seed: 4, Sink: func(_ []byte, s, _ sim.Time) { ts = append(ts, s) }})
	l := wire.NewLink(e, wire.Rate10G, 0, nic)
	l.Transmit(frame(64))
	e.Schedule(sim.Time(sim.Millisecond), func() { l.Transmit(frame(64)) })
	e.Run()
	if len(ts) != 2 || ts[0] == ts[1] {
		t.Fatalf("timestamps %v", ts)
	}
	if nic.Interrupts() != 2 {
		t.Fatalf("interrupts %d", nic.Interrupts())
	}
	if nic.Captured().Packets != 2 {
		t.Fatal("captured counter")
	}
}

func TestDataCopied(t *testing.T) {
	e := sim.NewEngine()
	var got [][]byte
	nic := New(e, Config{Seed: 5, Sink: func(d []byte, _, _ sim.Time) { got = append(got, d) }})
	f := frame(64)
	f.Data[0] = 0x42
	nic.Receive(f, 0, 0)
	f.Data[0] = 0x00 // datapath reuses the buffer
	e.Run()
	if len(got) != 1 || got[0][0] != 0x42 {
		t.Fatal("NIC did not copy packet data")
	}
}
