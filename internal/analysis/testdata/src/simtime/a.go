// Package simtime is the corpus for the virtual-time hygiene analyzer:
// raw arithmetic on sim.Time outside internal/sim, and Schedule time
// arguments that can precede the engine's now.
package simtime

import "sim"

// rawAdd mixes an untyped constant into an instant.
func rawAdd(t sim.Time) sim.Time {
	return t + 800 // want "raw . arithmetic on sim.Time"
}

// rawSub subtracts instants without Sub.
func rawSub(a, b sim.Time) sim.Time {
	return a - b // want "raw - arithmetic on sim.Time"
}

// rawScale multiplies an instant, which has no meaning.
func rawScale(t sim.Time) sim.Time {
	return t * 2 // want "raw . arithmetic on sim.Time"
}

// properAdd combines through the typed API.
func properAdd(t sim.Time, d sim.Duration) sim.Time {
	return t.Add(d)
}

// properSub measures a span through the typed API.
func properSub(a, b sim.Time) sim.Duration {
	return a.Sub(b)
}

// durationScale is fine: Duration is a span, scaling spans is meaningful.
func durationScale(d sim.Duration) sim.Duration {
	return d * 2
}

// compareOK: ordering comparisons carry no unit risk.
func compareOK(a, b sim.Time) bool {
	return a < b
}

// scheduleBackward passes a subtraction as the schedule instant.
func scheduleBackward(e *sim.Engine, d sim.Duration) {
	e.Schedule(e.Now()-sim.Time(d), func() {}) // want "Schedule time argument is a subtraction" "raw - arithmetic on sim.Time"
}

// scheduleSub converts a span into an instant: epoch confusion, and the
// result precedes now whenever epoch is positive.
func scheduleSub(e *sim.Engine, epoch sim.Time) {
	e.Schedule(sim.Time(e.Now().Sub(epoch)), func() {}) // want "Schedule time argument is built from Time.Sub"
}

// scheduleNegAdd adds a negated duration.
func scheduleNegAdd(e *sim.Engine, d sim.Duration) {
	e.Schedule(e.Now().Add(-d), func() {}) // want "Schedule time argument adds a negated duration"
}

// rescheduleBackward re-arms an event before now.
func rescheduleBackward(e *sim.Engine, ev *sim.Event, d sim.Duration) {
	e.Reschedule(ev, e.Now()-sim.Time(d)) // want "raw - arithmetic on sim.Time" "Reschedule time argument is a subtraction"
}

// scheduleForward is clean.
func scheduleForward(e *sim.Engine, d sim.Duration) {
	e.Schedule(e.Now().Add(d), func() {})
}

// scheduleIgnored carries a proven-monotone exception: the negated offset
// would be flagged, the directive suppresses it.
func scheduleIgnored(e *sim.Engine, ev *sim.Event, last sim.Time, d sim.Duration) {
	//lint:ignore simtime last+(-d) is the previous emission instant, always <= now here
	e.Reschedule(ev, last.Add(-d))
}
