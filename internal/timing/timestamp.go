// Package timing implements OSNT's timestamping model: the 64-bit 32.32
// fixed-point timestamp format used by the NetFPGA-10G design, the 6.25 ns
// hardware resolution of the 160 MHz stamping counter, a free-running
// oscillator model with frequency error and wander, and the GPS/PPS
// discipline servo that the paper credits for sub-microsecond precision.
package timing

import (
	"fmt"
	"math/bits"

	"osnt/internal/sim"
)

// Timestamp is the OSNT hardware timestamp: the upper 32 bits count whole
// seconds, the lower 32 bits are a binary fraction of a second (1 unit =
// 2^-32 s ≈ 232.8 ps). This is the exact format the OSNT design embeds in
// generated packets and attaches to captured ones.
type Timestamp uint64

// Resolution is the quantum of the OSNT stamping counter. The datapath
// clock runs at 160 MHz, so hardware timestamps advance in 6.25 ns steps —
// the figure quoted in the paper.
const Resolution = 6250 * sim.Picosecond

const picosPerSecond = 1_000_000_000_000

// FromSim converts an instant of virtual time into a Timestamp with full
// 2^-32 s precision (no hardware quantisation). Use Quantize for the value
// a real OSNT counter would produce.
func FromSim(t sim.Time) Timestamp {
	ps := t.Picoseconds()
	if ps < 0 {
		panic("timing: negative time")
	}
	sec := uint64(ps) / picosPerSecond
	rem := uint64(ps) % picosPerSecond
	// frac = rem * 2^32 / 1e12, computed in 128 bits to keep every bit.
	hi, lo := bits.Mul64(rem, 1<<32)
	frac, _ := bits.Div64(hi, lo, picosPerSecond)
	return Timestamp(sec<<32 | frac)
}

// Sim converts the timestamp back to virtual time, truncated to the
// picosecond.
func (ts Timestamp) Sim() sim.Time {
	sec := uint64(ts) >> 32
	frac := uint64(ts) & 0xffffffff
	hi, lo := bits.Mul64(frac, picosPerSecond)
	ps, _ := bits.Div64(hi, lo, 1<<32)
	return sim.Time(sec*picosPerSecond + ps)
}

// Seconds returns the whole-seconds field.
func (ts Timestamp) Seconds() uint32 { return uint32(ts >> 32) }

// Frac returns the 32-bit binary fraction-of-second field.
func (ts Timestamp) Frac() uint32 { return uint32(ts) }

// Sub returns the signed difference ts-u as a virtual duration. Because
// both operands share the 32.32 format the subtraction is exact to the
// fraction unit before conversion to picoseconds.
func (ts Timestamp) Sub(u Timestamp) sim.Duration {
	return ts.Sim().Sub(u.Sim())
}

// Add returns the timestamp d later than ts.
func (ts Timestamp) Add(d sim.Duration) Timestamp {
	return FromSim(ts.Sim().Add(d))
}

// String renders the timestamp as seconds.nanoseconds.
func (ts Timestamp) String() string {
	t := ts.Sim()
	return fmt.Sprintf("%d.%09ds", t.Picoseconds()/picosPerSecond,
		(t.Picoseconds()%picosPerSecond)/1000)
}

// Quantize truncates t to the 6.25 ns grid of the OSNT stamping counter
// and returns the corresponding timestamp — the value hardware would
// latch for an event at t.
func Quantize(t sim.Time) Timestamp {
	return FromSim(t.Truncate(Resolution))
}
