package snmp

import (
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestOIDParseString(t *testing.T) {
	o := MustOID("1.3.6.1.2.1.2.2.1.10.1")
	if o.String() != "1.3.6.1.2.1.2.2.1.10.1" {
		t.Fatalf("round trip %q", o.String())
	}
	if _, err := ParseOID("1"); err == nil {
		t.Fatal("one-arc OID accepted")
	}
	if _, err := ParseOID("1.x.3"); err == nil {
		t.Fatal("junk arc accepted")
	}
}

func TestOIDCmpAppend(t *testing.T) {
	a := MustOID("1.3.6.1")
	b := MustOID("1.3.6.1.2")
	c := MustOID("1.3.7")
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 || b.Cmp(c) != -1 {
		t.Fatal("Cmp ordering")
	}
	d := a.Append(9)
	if d.String() != "1.3.6.1.9" || a.String() != "1.3.6.1" {
		t.Fatal("Append aliasing")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Version:   Version2c,
		Community: "public",
		PDU: PDU{
			Type: GetRequest, RequestID: 0x1234567,
			VarBinds: []VarBind{
				{OID: MustOID("1.3.6.1.2.1.1.3.0"), Value: Null},
				{OID: MustOID("1.3.6.1.2.1.2.2.1.10.2"), Value: Null},
			},
		},
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != "public" || got.PDU.RequestID != 0x1234567 || got.PDU.Type != GetRequest {
		t.Fatalf("%+v", got)
	}
	if len(got.PDU.VarBinds) != 2 || got.PDU.VarBinds[1].OID.String() != "1.3.6.1.2.1.2.2.1.10.2" {
		t.Fatalf("varbinds %+v", got.PDU.VarBinds)
	}
}

func TestValueEncodings(t *testing.T) {
	m := Message{Version: Version2c, Community: "c", PDU: PDU{
		Type: GetResponse, RequestID: 1,
		VarBinds: []VarBind{
			{OID: MustOID("1.3.1"), Value: Int64(-300)},
			{OID: MustOID("1.3.2"), Value: Counter32(4000000000)},
			{OID: MustOID("1.3.3"), Value: Counter64(1 << 40)},
			{OID: MustOID("1.3.4"), Value: TimeTicks(8640000)},
			{OID: MustOID("1.3.5"), Value: Str("osnt")},
		},
	}}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	vb := got.PDU.VarBinds
	if vb[0].Value.Int != -300 {
		t.Fatalf("int %d", vb[0].Value.Int)
	}
	if vb[1].Value.Int != 4000000000 {
		t.Fatalf("counter32 %d", vb[1].Value.Int)
	}
	if vb[2].Value.Int != 1<<40 {
		t.Fatalf("counter64 %d", vb[2].Value.Int)
	}
	if vb[3].Value.Int != 8640000 {
		t.Fatalf("ticks %d", vb[3].Value.Int)
	}
	if string(vb[4].Value.Bytes) != "osnt" {
		t.Fatalf("string %q", vb[4].Value.Bytes)
	}
}

// Property: arbitrary request IDs, communities and counter values round
// trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(reqID int32, comm string, v uint64, arc uint16) bool {
		if len(comm) > 100 {
			comm = comm[:100]
		}
		m := Message{Version: Version2c, Community: comm, PDU: PDU{
			Type: GetResponse, RequestID: reqID,
			VarBinds: []VarBind{
				{OID: OID{1, 3, 6, 1, uint32(arc)}, Value: Counter64(v)},
			},
		}}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return got.Community == comm && got.PDU.RequestID == reqID &&
			got.PDU.VarBinds[0].Value.Int == int64(v) &&
			got.PDU.VarBinds[0].OID.Cmp(m.PDU.VarBinds[0].OID) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, junk := range [][]byte{nil, {0x30}, {0x30, 0x05, 1, 2}, {0x04, 0x02, 1, 2}} {
		if _, err := Decode(junk); err == nil {
			t.Fatalf("accepted %x", junk)
		}
	}
}

func newTestAgent() *Agent {
	a := NewAgent("public")
	in := uint64(1000)
	a.Register(OIDSysUpTime, func() Value { return TimeTicks(42) })
	a.Register(OIDIfInOctets.Append(1), func() Value { return Counter64(in) })
	a.Register(OIDIfOutOctets.Append(1), func() Value { return Counter64(2000) })
	return a
}

func TestAgentGet(t *testing.T) {
	a := newTestAgent()
	req := Encode(Message{Version: Version2c, Community: "public", PDU: PDU{
		Type: GetRequest, RequestID: 5,
		VarBinds: []VarBind{{OID: OIDIfInOctets.Append(1), Value: Null}},
	}})
	resp, err := Decode(a.Handle(req))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PDU.Type != GetResponse || resp.PDU.RequestID != 5 {
		t.Fatalf("%+v", resp.PDU)
	}
	if resp.PDU.VarBinds[0].Value.Int != 1000 {
		t.Fatalf("value %d", resp.PDU.VarBinds[0].Value.Int)
	}
}

func TestAgentGetMissing(t *testing.T) {
	a := newTestAgent()
	req := Encode(Message{Version: Version2c, Community: "public", PDU: PDU{
		Type: GetRequest, RequestID: 6,
		VarBinds: []VarBind{{OID: MustOID("1.3.9.9.9"), Value: Null}},
	}})
	resp, _ := Decode(a.Handle(req))
	if resp.PDU.VarBinds[0].Value.Kind != NoSuchObject.Kind {
		t.Fatal("missing OID should return noSuchObject")
	}
}

func TestAgentGetNextWalk(t *testing.T) {
	a := newTestAgent()
	// Walk from the root.
	cur := MustOID("1.3")
	var seen []string
	for i := 0; i < 10; i++ {
		req := Encode(Message{Version: Version2c, Community: "public", PDU: PDU{
			Type: GetNext, RequestID: int32(i),
			VarBinds: []VarBind{{OID: cur, Value: Null}},
		}})
		resp, err := Decode(a.Handle(req))
		if err != nil {
			t.Fatal(err)
		}
		vb := resp.PDU.VarBinds[0]
		if vb.Value.Kind == NoSuchObject.Kind {
			break
		}
		seen = append(seen, vb.OID.String())
		cur = vb.OID
	}
	// MIB order: sysUpTime (1.3.6.1.2.1.1...) before ifInOctets (...2.2.1.10)
	// before ifOutOctets (...2.2.1.16).
	if len(seen) != 3 {
		t.Fatalf("walk %v", seen)
	}
	if seen[0] != OIDSysUpTime.String() || seen[2] != OIDIfOutOctets.Append(1).String() {
		t.Fatalf("walk order %v", seen)
	}
	if len(a.Walk()) != 3 {
		t.Fatal("Walk()")
	}
}

func TestAgentCommunityMismatch(t *testing.T) {
	a := newTestAgent()
	req := Encode(Message{Version: Version2c, Community: "wrong", PDU: PDU{
		Type: GetRequest, RequestID: 1,
		VarBinds: []VarBind{{OID: OIDSysUpTime, Value: Null}},
	}})
	if a.Handle(req) != nil {
		t.Fatal("wrong community answered")
	}
}

func TestAgentOverUDP(t *testing.T) {
	// The BER bytes must survive a real UDP datagram.
	a := newTestAgent()
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking:", err)
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 2048)
		n, addr, err := srv.ReadFrom(buf)
		if err != nil {
			return
		}
		if resp := a.Handle(buf[:n]); resp != nil {
			_, _ = srv.WriteTo(resp, addr)
		}
	}()

	cli, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	req := Encode(Message{Version: Version2c, Community: "public", PDU: PDU{
		Type: GetRequest, RequestID: 77,
		VarBinds: []VarBind{{OID: OIDSysUpTime, Value: Null}},
	}})
	if _, err := cli.Write(req); err != nil {
		t.Fatal(err)
	}
	_ = cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := cli.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.PDU.RequestID != 77 || resp.PDU.VarBinds[0].Value.Int != 42 {
		t.Fatalf("%+v", resp.PDU)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	m := Message{Version: Version2c, Community: "public", PDU: PDU{
		Type: GetRequest, RequestID: 1,
		VarBinds: []VarBind{{OID: OIDIfInOctets.Append(1), Value: Null}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(Encode(m)); err != nil {
			b.Fatal(err)
		}
	}
}
