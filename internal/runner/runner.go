// Package runner fans an experiment's parameter sweep out across worker
// goroutines. The simulation engine is deliberately single-threaded
// (determinism is a design requirement), so the unit of parallelism is
// one sweep point: every point builds its own sim.Engine and its own
// seeded sim.Rand streams, runs to completion, and returns its rows.
// Results are merged in canonical point order, which makes the output
// byte-identical at any worker count — the property the determinism
// tests pin down, and what lets `osnt-bench` sweep dozens of
// configurations in the wall time of the slowest one.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes sweep points on a bounded worker pool.
type Runner struct {
	// Workers is the concurrency; 0 selects GOMAXPROCS, 1 runs the sweep
	// inline on the calling goroutine (no goroutines, byte-identical
	// results — the serial reference the determinism tests compare
	// against).
	Workers int
}

// New returns a runner with the given worker count (0 = GOMAXPROCS).
func New(workers int) *Runner { return &Runner{Workers: workers} }

// NewScaled returns a runner for sweeps whose points are themselves
// parallel — each point runs on up to inner goroutines (a sharded
// cluster) — so the shards × workers product stays within the machine:
// an auto worker count (workers == 0) resolves to GOMAXPROCS/inner
// (min 1) instead of GOMAXPROCS. An explicit workers wins unchanged,
// exactly as in New; results are byte-identical either way.
func NewScaled(workers, inner int) *Runner {
	if workers == 0 {
		if inner < 1 {
			inner = 1
		}
		if workers = runtime.GOMAXPROCS(0) / inner; workers < 1 {
			workers = 1
		}
	}
	return &Runner{Workers: workers}
}

func (r *Runner) workers(points int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > points {
		w = points
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep runs fn(i) for every i in [0, n) across r's workers and returns
// the results indexed by point, regardless of completion order. Points
// are claimed in index order, so heavy points placed first keep the pool
// busy (schedule longest-first when point costs are skewed). A panic in
// any point is re-raised on the calling goroutine after the pool drains,
// matching serial behaviour.
func Sweep[T any](r *Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	w := r.workers(n)
	if w == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = p
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Rows is Sweep specialised to experiment tables: each point contributes
// zero or more formatted rows, concatenated in point order.
func (r *Runner) Rows(n int, fn func(i int) [][]string) [][]string {
	parts := Sweep(r, n, fn)
	var rows [][]string
	for _, p := range parts {
		rows = append(rows, p...)
	}
	return rows
}

// PointSeed derives a well-spread, reproducible seed for sweep point i
// from a base seed (one splitmix64 step), so per-point sim.Rand streams
// stay decorrelated while the whole sweep remains deterministic.
func PointSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
