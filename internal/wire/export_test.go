package wire

import (
	"testing"

	"osnt/internal/sim"
)

// captureExporter records what the boundary link hands over.
type captureExporter struct {
	frames []struct {
		size              int
		firstBit, lastBit sim.Time
		key               uint64
	}
	trains []struct {
		n                 int
		firstBit, lastBit sim.Time
		key               uint64
	}
}

func (c *captureExporter) ExportFrame(f *Frame, firstBit, lastBit sim.Time, key uint64) {
	c.frames = append(c.frames, struct {
		size              int
		firstBit, lastBit sim.Time
		key               uint64
	}{f.Size, firstBit, lastBit, key})
}

func (c *captureExporter) ExportTrain(t *Train, firstBit, lastBit sim.Time, key uint64) {
	c.trains = append(c.trains, struct {
		n                 int
		firstBit, lastBit sim.Time
		key               uint64
	}{t.Len(), firstBit, lastBit, key})
}

func TestNewExportLinkRejectsZeroDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExportLink with zero delay did not panic")
		}
	}()
	NewExportLink(sim.NewEngine(), Rate10G, 0, &captureExporter{})
}

// TestExportLinkMirrorsLocalDelivery holds the boundary link to the
// local link's exact timing and accounting: the exported
// (firstBit, lastBit) instants equal the instants a NewLink with the
// same rate and delay delivers at, the busy horizon and TX counters
// match, and — the point of exporting — no delivery event is scheduled
// on the transmitting engine.
func TestExportLinkMirrorsLocalDelivery(t *testing.T) {
	const delay = 5 * sim.Nanosecond
	// Local reference.
	le := sim.NewEngine()
	var refStart, refEnd sim.Time
	local := NewLink(le, Rate10G, delay, EndpointFunc(func(f *Frame, start, at sim.Time) {
		refStart, refEnd = start, at
	}))
	localTx := local.Transmit(NewFrame(make([]byte, 60)))
	le.Run()

	// Boundary link, same wire parameters.
	ee := sim.NewEngine()
	exp := &captureExporter{}
	bl := NewExportLink(ee, Rate10G, delay, exp)
	exportTx := bl.Transmit(NewFrame(make([]byte, 60)))

	if exportTx != localTx {
		t.Fatalf("serialization end: export %v, local %v", exportTx, localTx)
	}
	if len(exp.frames) != 1 {
		t.Fatalf("exporter saw %d frames, want 1", len(exp.frames))
	}
	got := exp.frames[0]
	if got.firstBit != refStart || got.lastBit != refEnd {
		t.Fatalf("exported instants (%v, %v) != local delivery (%v, %v)",
			got.firstBit, got.lastBit, refStart, refEnd)
	}
	if bl.TxFrames() != local.TxFrames() || bl.TxWireBytes() != local.TxWireBytes() {
		t.Fatalf("counters: export %d/%d, local %d/%d",
			bl.TxFrames(), bl.TxWireBytes(), local.TxFrames(), local.TxWireBytes())
	}
	if bl.BusyUntil() != local.BusyUntil() {
		t.Fatalf("busy horizon: export %v, local %v", bl.BusyUntil(), local.BusyUntil())
	}
	if _, pending := ee.Peek(); pending {
		t.Fatal("export link scheduled a local event; delivery belongs to the destination shard")
	}
}

// TestExportLinkCarriesDeliveryKey pins the Exporter contract: the key
// is PrioDefault until the topology assigns one, and every subsequent
// export carries the assigned structural key.
func TestExportLinkCarriesDeliveryKey(t *testing.T) {
	e := sim.NewEngine()
	exp := &captureExporter{}
	l := NewExportLink(e, Rate10G, sim.Microsecond, exp)
	if l.DeliveryKey() != sim.PrioDefault {
		t.Fatalf("fresh export link key = %d, want PrioDefault", l.DeliveryKey())
	}
	l.Transmit(NewFrame(make([]byte, 60)))
	l.SetDeliveryKey(42)
	l.TransmitAt(NewFrame(make([]byte, 60)), l.BusyUntil())
	if exp.frames[0].key != sim.PrioDefault || exp.frames[1].key != 42 {
		t.Fatalf("exported keys %d, %d; want PrioDefault then 42",
			exp.frames[0].key, exp.frames[1].key)
	}
}

// TestExportTrainKeepsTheRunWhole checks that a coalesced run crosses
// the boundary as one export carrying the first frame's arrival window
// and the link's key.
func TestExportTrainKeepsTheRunWhole(t *testing.T) {
	const delay = 30 * sim.Nanosecond
	e := sim.NewEngine()
	exp := &captureExporter{}
	l := NewExportLink(e, Rate10G, delay, exp)
	l.SetDeliveryKey(7)
	tr := &Train{Frames: trainFrames(60, 1514, 124)}
	l.TransmitTrain(tr, 0)
	if len(exp.trains) != 1 || len(exp.frames) != 0 {
		t.Fatalf("exporter saw %d trains / %d frames, want one whole train",
			len(exp.trains), len(exp.frames))
	}
	got := exp.trains[0]
	first := SerializationTime(64, Rate10G)
	if got.n != 3 || got.key != 7 {
		t.Fatalf("exported train n=%d key=%d, want n=3 key=7", got.n, got.key)
	}
	if got.firstBit != sim.Time(delay) || got.lastBit != sim.Time(delay).Add(first) {
		t.Fatalf("train window (%v, %v), want first frame's (%v, %v)",
			got.firstBit, got.lastBit, sim.Time(delay), sim.Time(delay).Add(first))
	}
	if _, pending := e.Peek(); pending {
		t.Fatal("export link scheduled a local event for the train")
	}
}

// TestDeliverTrainUnbundlesPerFrame checks the replay helper the shard
// barrier uses: handed a train and a per-frame endpoint, it recovers
// each frame's abutting (firstBit, lastBit) window arithmetically.
func TestDeliverTrainUnbundlesPerFrame(t *testing.T) {
	var got []struct{ start, at sim.Time }
	peer := EndpointFunc(func(f *Frame, start, at sim.Time) {
		got = append(got, struct{ start, at sim.Time }{start, at})
	})
	tr := &Train{Frames: trainFrames(60, 1514), Rate: Rate10G}
	s0, s1 := SerializationTime(64, Rate10G), SerializationTime(1518, Rate10G)
	start := sim.Time(1000)
	DeliverTrain(peer, tr, start, start.Add(s0))
	if len(got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(got))
	}
	if got[0].start != start || got[0].at != start.Add(s0) {
		t.Fatalf("frame 0 window (%v, %v)", got[0].start, got[0].at)
	}
	if got[1].start != got[0].at || got[1].at != got[0].at.Add(s1) {
		t.Fatalf("frame 1 window (%v, %v), want abutting (%v, %v)",
			got[1].start, got[1].at, got[0].at, got[0].at.Add(s1))
	}
}
