// Capture engine walkthrough: hardware wildcard filters, per-rule
// packet thinning, hashing, and the multi-queue loss-limited host path.
//
// A mixed workload (DNS-ish UDP, web-ish TCP, bulk UDP) is captured with
// a three-rule filter table: DNS is captured in full and pinned to its
// own DMA queue, web traffic is thinned to headers and pinned to a
// second queue, bulk traffic is dropped in hardware. The final report
// shows per-rule hit counters and per-queue accounting, and demonstrates
// that the host path stays lossless because the filters shed the bulk
// and the pins keep each class on its own ring.
//
//	go run ./examples/capture-filter
package main

import (
	"fmt"
	"log"

	"osnt/internal/filter"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/wire"
)

func main() {
	engine := sim.NewEngine()
	txCard := netfpga.New(engine, netfpga.Config{})
	rxCard := netfpga.New(engine, netfpga.Config{})
	txCard.Port(0).SetLink(wire.NewLink(engine, wire.Rate10G, 0, rxCard.Port(0)))

	// Hardware filter table, first match wins. PinQueue steers each
	// captured class to its own DMA queue (1-based queue numbers).
	rules := filter.NewTable(filter.Drop)
	must(rules.Append(&filter.Rule{
		Name: "dns-full", Action: filter.Capture,
		Proto: packet.ProtoUDP, DstPortMin: 53, DstPortMax: 53,
		PinQueue: 1,
	}))
	must(rules.Append(&filter.Rule{
		Name: "web-headers", Action: filter.Capture,
		Proto: packet.ProtoTCP, DstPortMin: 80, DstPortMax: 80,
		SnapLen:  64, // per-rule packet thinning
		PinQueue: 2,
	}))
	must(rules.Append(&filter.Rule{
		Name: "bulk-drop", Action: filter.Drop, Proto: packet.ProtoUDP,
	}))

	byLen := map[int]int{}
	monitor := mon.Attach(rxCard.Port(0), mon.Config{
		Filters:   rules,
		HashBytes: 64,
		Queues: []mon.QueueConfig{
			{}, // queue 0: dns-full pins here
			{}, // queue 1: web-headers pins here
		},
		Sink: func(rec mon.Record) { byLen[len(rec.Data)]++ },
	})

	// Build the mixed workload: one template per class, round-robin.
	mkUDP := func(dport uint16, size int) *wire.Frame {
		return wire.NewFrame(packet.UDPSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
			SrcPort: 4000, DstPort: dport, FrameSize: size,
		}.Build())
	}
	web := wire.NewFrame(packet.TCPSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
		SrcPort: 4001, DstPort: 80, Flags: packet.TCPAck,
		Payload: make([]byte, 400),
	}.Build())
	workload := &gen.SliceSource{
		Frames: []*wire.Frame{
			mkUDP(53, 128),    // DNS
			web,               // web
			mkUDP(9999, 1518), // bulk
		},
		Loop: true,
	}

	g, err := gen.New(txCard.Port(0), gen.Config{
		Source:  workload,
		Spacing: gen.CBRForLoad(1518, wire.Rate10G, 0.9),
		Count:   30000,
	})
	if err != nil {
		log.Fatal(err)
	}
	g.Start(0)
	engine.Run()

	fmt.Println("filter table:")
	for i := 0; i < rules.Len(); i++ {
		fmt.Printf("  %-40s hits=%d\n", rules.Rule(i).String(), rules.Hits(i))
	}
	fmt.Printf("  (default %s) hits=%d\n", rules.DefaultAction, rules.DefaultHits())
	fmt.Printf("\npipeline: seen=%d filtered=%d accepted=%d ring-drops=%d delivered=%d\n",
		monitor.Seen().Packets, monitor.Filtered(), monitor.Accepted().Packets,
		monitor.RingDrops(), monitor.Delivered().Packets)
	fmt.Println("\ncapture queues (rule-pinned steering):")
	for q := 0; q < monitor.NumQueues(); q++ {
		qs := monitor.QueueStats(q)
		fmt.Printf("  queue %d: steered=%d ring-drops=%d delivered=%d\n",
			q, qs.Seen.Packets, qs.RingDrops, qs.Delivered.Packets)
	}
	fmt.Println("\ncaptured record sizes (thinning at work):")
	for l, n := range byLen {
		fmt.Printf("  %4d bytes x %d\n", l, n)
	}
	if monitor.RingDrops() == 0 {
		fmt.Println("\nhost path lossless: hardware filtering shed the bulk traffic")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
