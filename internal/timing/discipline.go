package timing

import (
	"osnt/internal/sim"
)

// Clock is the timestamp source a card's stamping units read. Now must be
// called with non-decreasing instants (hardware cannot observe the past).
type Clock interface {
	// Now returns the hardware timestamp the clock would latch for an
	// event occurring at true instant t.
	Now(t sim.Time) Timestamp
}

// PerfectClock returns ground-truth timestamps quantised to the hardware
// grid. It models an ideal, drift-free oscillator and is used as the
// reference when measuring clock error.
type PerfectClock struct{}

// Now implements Clock.
func (PerfectClock) Now(t sim.Time) Timestamp { return Quantize(t) }

// FreeClock reads an undisciplined oscillator: device time drifts away
// from true time without bound. This is the "no GPS" configuration of
// experiment E2.
type FreeClock struct {
	Osc *Oscillator
}

// Now implements Clock.
func (c *FreeClock) Now(t sim.Time) Timestamp {
	return Quantize(c.Osc.DeviceTimeAt(t))
}

// Discipline steers an oscillator using a 1-pulse-per-second GPS
// reference, reproducing OSNT's "clock drift and phase coordination
// maintained by a GPS input". At every PPS edge it measures the phase
// error against true time and applies a proportional-integral frequency
// correction plus a phase slew, the same structure as an NTP/PTP servo.
type Discipline struct {
	Osc *Oscillator

	// Kp and Ki are the proportional and integral servo gains applied to
	// the measured offset (in ppm per second-of-offset-per-second). The
	// defaults from NewDiscipline converge in a few tens of PPS edges.
	Kp, Ki float64
	// MaxSlewPPM caps the magnitude of a single frequency correction, as
	// real servos do to ride through a GPS glitch.
	MaxSlewPPM float64
	// StepThreshold: offsets larger than this are corrected by stepping
	// the phase outright rather than slewing (cold-start behaviour).
	StepThreshold sim.Duration

	integral float64 // integral of offset, in ppm
	locked   bool
	edges    int

	// history of |offset| observed at each PPS edge, for reporting.
	offsets []sim.Duration
}

// NewDiscipline returns a servo with gains suitable for the simulated
// oscillator parameters (converges within ~30 PPS edges for ±50 ppm
// initial error).
func NewDiscipline(osc *Oscillator) *Discipline {
	return &Discipline{
		Osc:           osc,
		Kp:            0.7e6,  // 0.7 ppm per µs of offset
		Ki:            0.15e6, // 0.15 ppm·s⁻¹ per µs of offset
		MaxSlewPPM:    100,
		StepThreshold: 10 * sim.Millisecond,
	}
}

// Start begins disciplining: the servo observes a PPS edge at every whole
// true second on the engine, beginning at the next one.
func (d *Discipline) Start(e *sim.Engine) {
	next := e.Now().Truncate(sim.Second).Add(sim.Second)
	e.ScheduleEvery(next, sim.Second, func() { d.onPPS(e.Now()) })
}

// onPPS handles one GPS pulse at true instant t (a whole second).
func (d *Discipline) onPPS(t sim.Time) {
	dev := d.Osc.DeviceTimeAt(t)
	offset := dev.Sub(t) // positive: device clock runs fast
	d.edges++
	d.offsets = append(d.offsets, absDur(offset))

	if absDur(offset) > d.StepThreshold {
		// Cold start or gross error: step the phase, leave frequency to
		// the servo on subsequent edges.
		d.Osc.AdjustPhase(-offset)
		d.locked = false
		d.integral = 0
		return
	}

	offSec := offset.Seconds() // seconds of phase error per 1 s of PPS interval
	d.integral += offSec
	corr := d.Kp*offSec + d.Ki*d.integral // ppm
	if corr > d.MaxSlewPPM {
		corr = d.MaxSlewPPM
	} else if corr < -d.MaxSlewPPM {
		corr = -d.MaxSlewPPM
	}
	d.Osc.AdjustFreqPPM(-corr)
	// Slew out the residual phase error immediately; the quantity is small
	// (sub-µs once near lock) so this models a fine phase adjustment.
	d.Osc.AdjustPhase(-offset)
	if absDur(offset) < 1*sim.Microsecond {
		d.locked = true
	}
}

// Locked reports whether the most recent PPS offset was below 1 µs.
func (d *Discipline) Locked() bool { return d.locked }

// Edges returns the number of PPS edges processed.
func (d *Discipline) Edges() int { return d.edges }

// Offsets returns the absolute phase error observed at each PPS edge, in
// arrival order.
func (d *Discipline) Offsets() []sim.Duration { return d.offsets }

// MaxOffsetAfter returns the worst absolute PPS offset observed after the
// first skip edges — the steady-state error bound once lock is reached.
func (d *Discipline) MaxOffsetAfter(skip int) sim.Duration {
	var max sim.Duration
	for i, o := range d.offsets {
		if i < skip {
			continue
		}
		if o > max {
			max = o
		}
	}
	return max
}

func absDur(d sim.Duration) sim.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// DisciplinedClock reads an oscillator that is being steered by a
// Discipline servo. This is the GPS-corrected configuration the paper
// describes.
type DisciplinedClock struct {
	Osc *Oscillator
}

// Now implements Clock.
func (c *DisciplinedClock) Now(t sim.Time) Timestamp {
	return Quantize(c.Osc.DeviceTimeAt(t))
}
