// Package hostnic models the conventional software capture stack OSNT
// exists to replace: a commodity NIC with interrupt coalescing feeding a
// kernel/userspace path that timestamps packets when the handler finally
// runs. The gap between that software timestamp and the true arrival —
// coalescing delay plus scheduling jitter, shared by every packet in a
// batch — is the "queueing noise" the paper's MAC-level timestamping
// eliminates (experiment E6).
package hostnic

import (
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// Config parameterises the software stack model.
type Config struct {
	// CoalesceCount delivers an interrupt after this many frames
	// (default 32).
	CoalesceCount int
	// CoalesceTimeout delivers an interrupt this long after the first
	// frame of a batch (default 50 µs, a typical rx-usecs setting).
	CoalesceTimeout sim.Duration
	// IRQOverhead is the fixed interrupt-to-handler delay (default 4 µs).
	IRQOverhead sim.Duration
	// SchedJitterMean is the mean of the exponential scheduling delay
	// before the userspace handler timestamps the batch (default 15 µs).
	SchedJitterMean sim.Duration
	// Seed feeds the jitter stream.
	Seed uint64
	// Sink receives each packet with its software timestamp and the true
	// arrival instant.
	Sink func(data []byte, swTS, arrival sim.Time)
}

func (c *Config) fill() {
	if c.CoalesceCount == 0 {
		c.CoalesceCount = 32
	}
	if c.CoalesceTimeout == 0 {
		c.CoalesceTimeout = 50 * sim.Microsecond
	}
	if c.IRQOverhead == 0 {
		c.IRQOverhead = 4 * sim.Microsecond
	}
	if c.SchedJitterMean == 0 {
		c.SchedJitterMean = 15 * sim.Microsecond
	}
}

// NIC is one software-timestamping capture interface. It implements
// wire.Endpoint so it can terminate a link exactly like an OSNT port.
type NIC struct {
	engine *sim.Engine
	cfg    Config
	rand   *sim.Rand

	batch      []pending
	timeoutEv  *sim.Event
	interrupts uint64
	captured   stats.Counter
}

type pending struct {
	data    []byte
	arrival sim.Time
}

// New builds a NIC on the engine.
func New(e *sim.Engine, cfg Config) *NIC {
	cfg.fill()
	return &NIC{engine: e, cfg: cfg, rand: sim.NewRand(cfg.Seed ^ 0x501c)}
}

// Interrupts returns how many interrupts fired.
func (n *NIC) Interrupts() uint64 { return n.interrupts }

// Captured returns counters over delivered packets.
func (n *NIC) Captured() stats.Counter { return n.captured }

// Receive implements wire.Endpoint.
func (n *NIC) Receive(f *wire.Frame, _ sim.Time, at sim.Time) {
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	n.batch = append(n.batch, pending{data: data, arrival: at})
	if len(n.batch) == 1 {
		n.timeoutEv = n.engine.ScheduleAfter(n.cfg.CoalesceTimeout, n.fire)
	}
	if len(n.batch) >= n.cfg.CoalesceCount {
		if n.timeoutEv != nil {
			n.timeoutEv.Cancel()
			n.timeoutEv = nil
		}
		n.fire()
	}
}

// fire raises the interrupt: after IRQ overhead plus scheduling jitter
// the handler runs and stamps every batched packet with the same
// software timestamp.
func (n *NIC) fire() {
	if len(n.batch) == 0 {
		return
	}
	batch := n.batch
	n.batch = nil
	n.timeoutEv = nil
	n.interrupts++
	delay := n.cfg.IRQOverhead +
		sim.Duration(float64(n.cfg.SchedJitterMean)*n.rand.ExpFloat64())
	n.engine.ScheduleAfter(delay, func() {
		ts := n.engine.Now()
		for _, p := range batch {
			n.captured.Add(len(p.data))
			if n.cfg.Sink != nil {
				n.cfg.Sink(p.data, ts, p.arrival)
			}
		}
	})
}
