// Command lintcheck is the repository's invariant gate: a multichecker
// running the internal/analysis suite — framelease (pooled-frame
// ownership), hotpathalloc (zero-alloc hot paths), detorder (byte-identical
// determinism) and simtime (virtual-time hygiene) — over the module and
// failing when any contract is violated. CI runs it on every PR:
//
//	go run ./cmd/lintcheck ./...
//
// Diagnostics print as file:line:col: message (analyzer). Deliberate
// exceptions are encoded in the source as
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it; hot-path roots are declared
// with //lint:hotpath in a function's doc comment.
//
// Flags:
//
//	-list            print the analyzers and exit
//	-disable a,b     skip the named analyzers for this run
//
// Patterns are accepted for command-line symmetry with go vet but the
// whole module is always analysed: the loader type-checks every package in
// dependency order, so partial loads would cost as much as full ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"osnt/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	var suite []*analysis.Analyzer
	for _, a := range analysis.All() {
		if !disabled[a.Name] {
			suite = append(suite, a)
		}
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintcheck: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintcheck: %v\n", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintcheck: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 1
		}
	}
	os.Exit(exit)
}
