package experiments

import (
	"runtime"
	"testing"
	"time"

	"osnt/internal/race"
	"osnt/internal/sim"
	"osnt/internal/stats"
)

// withWorkers runs fn with the package-level sweep parallelism pinned.
func withWorkers(w int, fn func() *stats.Table) *stats.Table {
	old := Workers
	Workers = w
	defer func() { Workers = old }()
	return fn()
}

// The tentpole invariant: the same experiment must render byte-identical
// tables at any worker count — parallelism is an orchestration detail,
// never an input to the simulation. Run with -race to also certify the
// runner's memory discipline.
func TestTablesByteIdenticalAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name string
		fn   func() *stats.Table
	}{
		{"E1", func() *stats.Table { return E1LineRate(sim.Millisecond) }},
		{"E3", func() *stats.Table { return E3SwitchLatency(2 * sim.Millisecond) }},
		{"E5", func() *stats.Table { return E5Consistency() }},
		{"E7", func() *stats.Table { return E7CapturePath(2 * sim.Millisecond) }},
		{"E9", func() *stats.Table { return E9PortScaling(sim.Millisecond) }},
		{"E10", func() *stats.Table { return E10TesterMesh(sim.Millisecond) }},
		{"E11", func() *stats.Table { return E11Rate40G(sim.Millisecond) }},
		{"E12", func() *stats.Table { return E12MixedRateFanIn(2 * sim.Millisecond) }},
		{"E13", func() *stats.Table { return E13MultiDUTChain(2 * sim.Millisecond) }},
		{"E14", func() *stats.Table { return E14Capture100G(sim.Millisecond) }},
		{"E15", func() *stats.Table { return E15Oversubscribed(2 * sim.Millisecond) }},
		{"E16", func() *stats.Table { return E16LossAttribution(2 * sim.Millisecond) }},
		{"E17", func() *stats.Table { return E17FlowAnalytics(2 * sim.Millisecond) }},
		// Under -race the k=8 fabric (80 instrumented switches × 9 sweep
		// points × 4 worker counts) alone costs minutes and tips the
		// package past go test's 10m default; the worker-count invariant
		// is what's being certified, so the k=4 slice carries it there.
		{"E19", func() *stats.Table {
			if race.Enabled {
				return e19Table([]int{4}, 250*sim.Microsecond)
			}
			return E19FatTree(250 * sim.Microsecond)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := withWorkers(1, tc.fn).String()
			for _, w := range []int{2, 8, 16} {
				if got := withWorkers(w, tc.fn).String(); got != serial {
					t.Fatalf("workers=%d diverged from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
						w, serial, w, got)
				}
			}
		})
	}
}

// Repeated serial runs must also be identical: the frame pool and event
// reuse must not leak one run's state into the next.
func TestE9RepeatableAcrossRuns(t *testing.T) {
	a := withWorkers(1, func() *stats.Table { return E9PortScaling(sim.Millisecond) }).String()
	b := withWorkers(1, func() *stats.Table { return E9PortScaling(sim.Millisecond) }).String()
	if a != b {
		t.Fatalf("consecutive serial runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// The runner must actually buy wall time on the E9 sweep. The sweep is
// ordered heaviest-point-first, so with ≥4 workers the wall time should
// approach the 8-pair point alone (~40% of the serial sum); assert a
// conservative 0.7× so scheduler noise cannot flake CI, and log the real
// ratio for the record.
func TestE9ParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if race.Enabled {
		t.Skip("race instrumentation distorts wall-clock ratios")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs ≥4 physical CPUs, have %d", runtime.NumCPU())
	}
	const dur = 4 * sim.Millisecond
	// Warm the frame pool and page caches off the clock.
	withWorkers(4, func() *stats.Table { return E9PortScaling(sim.Millisecond) })

	t0 := time.Now()
	serial := withWorkers(1, func() *stats.Table { return E9PortScaling(dur) })
	serialWall := time.Since(t0)

	t0 = time.Now()
	parallel := withWorkers(4, func() *stats.Table { return E9PortScaling(dur) })
	parallelWall := time.Since(t0)

	if serial.String() != parallel.String() {
		t.Fatal("speedup run diverged from serial")
	}
	ratio := float64(parallelWall) / float64(serialWall)
	t.Logf("E9 wall: serial=%v 4-workers=%v ratio=%.2f", serialWall, parallelWall, ratio)
	if ratio > 0.7 {
		t.Errorf("4-worker E9 took %.2f× the serial wall time, want < 0.7×", ratio)
	}
}
