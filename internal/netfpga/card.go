// Package netfpga simulates the NetFPGA-10G board that hosts OSNT: four
// 10GbE ports, per-port TX queues and MACs, receive-side timestamping at
// the MAC (the paper's "associates packets with a 64-bit timestamp on
// receipt by the MAC module, thus minimising queueing noise"), and the
// register file the host driver reads statistics from.
package netfpga

import (
	"fmt"

	"osnt/internal/ring"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// Config sizes a simulated card. Zero values select the NetFPGA-10G
// defaults.
type Config struct {
	// Ports is the port count (default 4, as on the NetFPGA-10G).
	Ports int
	// Rate is the per-port line rate (default 10 Gb/s).
	Rate wire.Rate
	// Clock is the timestamp source (default a GPS-perfect clock).
	Clock timing.Clock
	// TxQueueCap bounds each port's TX queue in frames (default 8192).
	// The generator paces itself, so the queue only fills when software
	// offers more than line rate.
	TxQueueCap int
	// CaptureQueues is the per-port DMA capture queue budget (default
	// 8): how many independent descriptor rings the card's DMA engine
	// can expose for one port's capture. mon.Attach validates its queue
	// count against it.
	CaptureQueues int
}

func (c *Config) fill() {
	if c.Ports == 0 {
		c.Ports = 4
	}
	if c.Rate == 0 {
		c.Rate = wire.Rate10G
	}
	if c.Clock == nil {
		c.Clock = timing.PerfectClock{}
	}
	if c.TxQueueCap == 0 {
		c.TxQueueCap = 8192
	}
	if c.CaptureQueues == 0 {
		c.CaptureQueues = 8
	}
}

// Card is one simulated NetFPGA-10G board.
type Card struct {
	Engine *sim.Engine
	Clock  timing.Clock
	Regs   *Registers

	cfg   Config
	ports []*Port

	// Loss attribution: TX queue overflows report (dropHop, reason)
	// into the scenario ledger when one is attached (topo threads it).
	ledger  *wire.DropLedger
	dropHop int
}

// SetDropSite attaches the scenario's loss-attribution ledger; TX queue
// overflows on any port report at the given hop ID.
func (c *Card) SetDropSite(ledger *wire.DropLedger, hop int) {
	c.ledger, c.dropHop = ledger, hop
}

// New builds a card on the given engine.
func New(e *sim.Engine, cfg Config) *Card {
	cfg.fill()
	c := &Card{Engine: e, Clock: cfg.Clock, Regs: NewRegisters(), cfg: cfg}
	for i := 0; i < cfg.Ports; i++ {
		p := &Port{card: c, index: i}
		// Register indices are resolved once here: the TX/RX paths bump
		// these counters per packet and must pay neither a fmt.Sprintf
		// nor a map probe there.
		p.regTxPackets = c.Regs.Index(p.regName("tx_packets"))
		p.regTxBytes = c.Regs.Index(p.regName("tx_bytes"))
		p.regTxDrops = c.Regs.Index(p.regName("tx_drops"))
		p.regRxPackets = c.Regs.Index(p.regName("rx_packets"))
		p.regRxBytes = c.Regs.Index(p.regName("rx_bytes"))
		c.ports = append(c.ports, p)
	}
	c.Regs.Set("device.id", 0x05170)
	c.Regs.Set("device.ports", uint64(cfg.Ports))
	return c
}

// NumPorts returns the port count.
func (c *Card) NumPorts() int { return len(c.ports) }

// Port returns port i.
func (c *Card) Port(i int) *Port { return c.ports[i] }

// Rate returns the per-port line rate.
func (c *Card) Rate() wire.Rate { return c.cfg.Rate }

// CaptureQueues returns the per-port DMA capture queue budget.
func (c *Card) CaptureQueues() int { return c.cfg.CaptureQueues }

// Port is one 10GbE interface: a TX queue feeding a MAC, and an RX MAC
// that timestamps every arriving frame.
type Port struct {
	card  *Card
	index int

	// TX side.
	txLink *wire.Link
	txq    ring.FIFO[*wire.Frame]
	txBusy bool
	// OnTransmit fires when a frame is latched into the MAC, just before
	// serialisation begins — the point where OSNT's generator embeds the
	// departure timestamp. The callback may modify the frame bytes.
	OnTransmit func(f *wire.Frame, start sim.Time, ts timing.Timestamp)

	// RX side.
	// OnReceive fires for every frame whose last bit has arrived, with
	// the MAC-latched receive timestamp.
	OnReceive func(f *wire.Frame, at sim.Time, ts timing.Timestamp)
	// OnReceiveTrain, when set, takes whole frame trains in one callback
	// (at is the first frame's last-bit arrival; later boundaries follow
	// arithmetically at t.Rate). The consumer latches per-frame
	// timestamps itself via Card().Clock, in arrival order — the port
	// does not pre-latch, so stateful clocks still step exactly once per
	// frame. When nil, trains unbundle into per-frame OnReceive calls.
	OnReceiveTrain func(t *wire.Train, at sim.Time)

	txStats stats.Counter
	rxStats stats.Counter
	txDrops uint64

	// txDoneEv is the reusable MAC-idle event: at most one transmission
	// is in flight per port, so one Event serves every frame.
	txDoneEv *sim.Event

	// Pre-resolved register indices (see New) keep the per-packet counter
	// updates allocation-free and map-free.
	regTxPackets, regTxBytes, regTxDrops int
	regRxPackets, regRxBytes             int
}

// Index returns the port number on the card.
func (p *Port) Index() int { return p.index }

// Card returns the owning card.
func (p *Port) Card() *Card { return p.card }

// SetLink attaches the egress link (towards the device under test).
func (p *Port) SetLink(l *wire.Link) { p.txLink = l }

// Link returns the attached egress link.
func (p *Port) Link() *wire.Link { return p.txLink }

// Enqueue places a frame on the TX queue. It reports false (and counts a
// drop) when the queue is full — software offered more than line rate for
// longer than the queue can absorb.
//
//lint:hotpath
func (p *Port) Enqueue(f *wire.Frame) bool {
	if p.txLink == nil {
		panic(fmt.Sprintf("netfpga: port %d transmit with no link attached", p.index))
	}
	if p.txq.Len() >= p.card.cfg.TxQueueCap {
		p.txDrops++
		p.card.Regs.AddAt(p.regTxDrops, 1)
		p.card.ledger.Report(p.card.dropHop, wire.DropTxOverflow, 1)
		return false
	}
	p.txq.Push(f)
	p.trySend()
	return true
}

// TxIdle reports whether the MAC is between transmissions with an empty
// TX queue — the precondition for handing it a coalesced frame train.
// It holds at every emission instant as long as offered load stays at or
// below line rate.
func (p *Port) TxIdle() bool { return !p.txBusy && p.txq.Len() == 0 }

// EnqueueTrain transmits a whole back-to-back run in one MAC pass: one
// transmit event, one register/stat update batch, per-frame OnTransmit
// hooks at each frame's exact latch instant. The caller must have
// checked TxIdle — coalescing a run through a busy MAC would reorder it
// against queued frames, so that is a contract violation, not a
// recoverable condition.
//
//lint:hotpath
func (p *Port) EnqueueTrain(t *wire.Train) {
	if p.txLink == nil {
		panic(fmt.Sprintf("netfpga: port %d transmit with no link attached", p.index))
	}
	if !p.TxIdle() {
		panic(fmt.Sprintf("netfpga: port %d EnqueueTrain on a busy MAC", p.index))
	}
	e := p.card.Engine
	rate := p.txLink.Rate
	start := e.Now()
	var sizes uint64
	for _, f := range t.Frames {
		// Latch instant and timestamp per frame, exactly as N trySend
		// passes would have produced them: frame k is latched the moment
		// frame k-1's last bit leaves.
		ts := p.card.Clock.Now(start)
		if p.OnTransmit != nil {
			p.OnTransmit(f, start, ts)
		}
		p.txStats.Add(wire.WireBytes(f.Size))
		sizes += uint64(f.Size)
		start = start.Add(wire.SerializationTime(f.Size, rate))
	}
	p.card.Regs.AddAt(p.regTxPackets, uint64(len(t.Frames)))
	p.card.Regs.AddAt(p.regTxBytes, sizes)
	end := p.txLink.TransmitTrain(t, e.Now())
	p.txBusy = true
	if p.txDoneEv == nil {
		//lint:ignore hotpathalloc one-time event creation per port; steady state reschedules
		p.txDoneEv = e.Schedule(end, p.txDone)
	} else {
		e.Reschedule(p.txDoneEv, end)
	}
}

// trySend latches and serialises the head of the TX queue when the MAC
// is free.
//
//lint:hotpath
func (p *Port) trySend() {
	if p.txBusy || p.txq.Len() == 0 {
		return
	}
	f := p.txq.Pop()

	now := p.card.Engine.Now()
	ts := p.card.Clock.Now(now)
	if p.OnTransmit != nil {
		p.OnTransmit(f, now, ts)
	}
	p.txBusy = true
	end := p.txLink.Transmit(f)
	p.txStats.Add(wire.WireBytes(f.Size))
	p.card.Regs.AddAt(p.regTxPackets, 1)
	p.card.Regs.AddAt(p.regTxBytes, uint64(f.Size))
	if p.txDoneEv == nil {
		//lint:ignore hotpathalloc one-time event creation per port; steady state reschedules
		p.txDoneEv = p.card.Engine.Schedule(end, p.txDone)
	} else {
		p.card.Engine.Reschedule(p.txDoneEv, end)
	}
}

func (p *Port) txDone() {
	p.txBusy = false
	p.trySend()
}

// Receive implements wire.Endpoint: the RX MAC latches a timestamp the
// instant the frame fully arrives and hands it to the attached subsystem.
// The card port is a terminal endpoint, so pooled frames are released
// once OnReceive returns; hooks that keep the bytes past the callback
// must copy them (the monitor's capture ring does).
//
//lint:hotpath
func (p *Port) Receive(f *wire.Frame, _ sim.Time, at sim.Time) {
	ts := p.card.Clock.Now(at)
	p.rxStats.Add(wire.WireBytes(f.Size))
	p.card.Regs.AddAt(p.regRxPackets, 1)
	p.card.Regs.AddAt(p.regRxBytes, uint64(f.Size))
	if p.OnReceive != nil {
		p.OnReceive(f, at, ts)
	}
	f.Release()
}

// ReceiveTrain implements wire.TrainEndpoint: one delivery event covers
// the whole back-to-back run. Register and stat counters update in bulk;
// timestamp latching stays strictly per frame in arrival order — by the
// consumer when an OnReceiveTrain hook is attached, or by the unbundling
// loop below — so a stateful clock observes exactly the per-frame
// sequence of latch calls.
//
//lint:hotpath
func (p *Port) ReceiveTrain(t *wire.Train, start, at sim.Time) {
	var sizes uint64
	for _, f := range t.Frames {
		p.rxStats.Add(wire.WireBytes(f.Size))
		sizes += uint64(f.Size)
	}
	p.card.Regs.AddAt(p.regRxPackets, uint64(len(t.Frames)))
	p.card.Regs.AddAt(p.regRxBytes, sizes)
	if p.OnReceiveTrain != nil {
		p.OnReceiveTrain(t, at)
		t.Release()
		return
	}
	// Unbundle: recover each frame's last-bit instant arithmetically and
	// replay the per-frame receive path.
	lb := at
	for i, f := range t.Frames {
		t.Frames[i] = nil
		ts := p.card.Clock.Now(lb)
		if p.OnReceive != nil {
			p.OnReceive(f, lb, ts)
		}
		if i+1 < len(t.Frames) {
			lb = lb.Add(wire.SerializationTime(t.Frames[i+1].Size, t.Rate))
		}
		f.Release()
	}
	t.Frames = t.Frames[:0]
	t.Recycle()
}

// TxStats returns cumulative transmit counters (wire bytes).
func (p *Port) TxStats() stats.Counter { return p.txStats }

// RxStats returns cumulative receive counters (wire bytes).
func (p *Port) RxStats() stats.Counter { return p.rxStats }

// TxDrops returns frames dropped at the TX queue.
func (p *Port) TxDrops() uint64 { return p.txDrops }

// TxQueueDepth returns the instantaneous TX queue occupancy.
func (p *Port) TxQueueDepth() int { return p.txq.Len() }

func (p *Port) regName(suffix string) string {
	return fmt.Sprintf("port%d.%s", p.index, suffix)
}

// Registers is the card's host-visible register file. Real OSNT exposes
// statistics and configuration through memory-mapped registers; the
// simulated card keeps the same observable surface so host tools read
// stats the way a driver would. Values live in a flat array addressed by
// a stable per-name index — the driver-style split between the one-time
// address lookup and the per-packet counter bump, so hot paths that
// resolve Index once pay an array add per packet instead of a map probe.
type Registers struct {
	idx   map[string]int
	vals  []uint64
	order []string
}

// NewRegisters returns an empty register file.
func NewRegisters() *Registers { return &Registers{idx: make(map[string]int)} }

// Index resolves a register name to its stable array index, creating the
// register at zero if needed. Resolve once, then use AddAt/GetAt on the
// per-packet path.
func (r *Registers) Index(name string) int {
	i, ok := r.idx[name]
	if !ok {
		i = len(r.vals)
		r.idx[name] = i
		r.vals = append(r.vals, 0)
		r.order = append(r.order, name)
	}
	return i
}

// Set stores a register value, creating the register if needed.
func (r *Registers) Set(name string, v uint64) { r.vals[r.Index(name)] = v }

// Add increments a register, creating it at zero if needed.
func (r *Registers) Add(name string, delta uint64) { r.vals[r.Index(name)] += delta }

// AddAt increments the register at a previously resolved index.
func (r *Registers) AddAt(i int, delta uint64) { r.vals[i] += delta }

// Get reads a register; absent registers read zero, as on hardware.
func (r *Registers) Get(name string) uint64 {
	i, ok := r.idx[name]
	if !ok {
		return 0
	}
	return r.vals[i]
}

// GetAt reads the register at a previously resolved index.
func (r *Registers) GetAt(i int) uint64 { return r.vals[i] }

// Names returns the registers in creation order.
func (r *Registers) Names() []string { return append([]string(nil), r.order...) }
