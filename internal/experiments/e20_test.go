package experiments

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"osnt/internal/race"
	"osnt/internal/sim"
	"osnt/internal/stats"
)

// e20TestDuration keeps the shard-determinism sweeps affordable: the
// digest compares every delivered frame's timestamp, latency and size,
// so even a short window is an exacting witness.
func e20TestDuration() sim.Duration {
	if race.Enabled {
		return 40 * sim.Microsecond
	}
	return 100 * sim.Microsecond
}

// The tentpole invariant on the shards axis: the E20 table sweeps every
// matrix over shards 1/2/4/8, and its match column compares each
// sharded point's stream digest against the 1-shard reference — all of
// them must hold, and the whole table must render byte-identically
// across worker counts (shards × workers, both orchestration details).
// Run with -race to certify the barrier protocol's memory discipline.
func TestE20ShardDigestsByteIdentical(t *testing.T) {
	dur := e20TestDuration()
	serial := withWorkers(1, func() *stats.Table { return E20ShardedFabric(dur) })
	matchCol := len(serial.Columns) - 1
	for _, row := range serial.Rows {
		if m := row[matchCol]; m != "ref" && m != "true" {
			t.Errorf("matrix %s at %s shards: digest diverged from the 1-shard reference\n%s",
				row[1], row[2], serial.String())
		}
	}
	for _, w := range []int{4} {
		if got := withWorkers(w, func() *stats.Table { return E20ShardedFabric(dur) }).String(); got != serial.String() {
			t.Fatalf("workers=%d diverged from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, serial.String(), w, got)
		}
	}
}

// The sharded benchgate workload must hold the same invariant: the k=4
// nine-point sweep renders byte-identically at shards 1/2/4/8 — digests
// included — at workers 1 and 4. This is the shards × workers matrix
// the sharded engine is certified on.
func TestE19ShardedByteIdenticalAcrossShards(t *testing.T) {
	dur := e20TestDuration()
	var ref string
	for _, shards := range []int{1, 2, 4, 8} {
		for _, w := range []int{1, 4} {
			got := withWorkers(w, func() *stats.Table { return E19FatTreeK4Sharded(dur, shards) })
			// Titles name the shard count; the payload must not. The
			// rendered table leads with a "== title ==" banner line — cut
			// through its newline.
			full := got.String()
			body := full[strings.IndexByte(full, '\n')+1:]
			if ref == "" {
				ref = body
				continue
			}
			if body != ref {
				t.Fatalf("shards=%d workers=%d diverged from the 1-shard reference:\n--- reference ---\n%s--- got ---\n%s",
					shards, w, ref, body)
			}
		}
	}
}

// The cluster must actually buy wall time on the E20 workload: one k=8
// permutation point, serial engine vs the same point on 4 shards. The
// tentpole targets ≥2.5×; assert a conservative 0.55× (≈1.8×) so
// scheduler noise cannot flake CI, and log the real ratio for the
// record (EXPERIMENTS.md quotes a measured run).
func TestE20ShardSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if race.Enabled {
		t.Skip("race instrumentation distorts wall-clock ratios")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs ≥4 physical CPUs, have %d", runtime.NumCPU())
	}
	const dur = 400 * sim.Microsecond
	// Warm the frame pool and page caches off the clock.
	e20Point(50*sim.Microsecond, 8, "permutation", e20Load, e20LinkDelay, 0, 4)

	t0 := time.Now()
	serial := e20Point(dur, 8, "permutation", e20Load, e20LinkDelay, 0, 1)
	serialWall := time.Since(t0)

	t0 = time.Now()
	sharded := e20Point(dur, 8, "permutation", e20Load, e20LinkDelay, 0, 4)
	shardedWall := time.Since(t0)

	if serial.digest != sharded.digest {
		t.Fatalf("sharded digest %016x diverged from serial %016x", sharded.digest, serial.digest)
	}
	ratio := float64(shardedWall) / float64(serialWall)
	t.Logf("E20 k=8 permutation wall: serial=%v 4-shards=%v ratio=%.2f (speedup %.2f×)",
		serialWall, shardedWall, ratio, 1/ratio)
	if ratio > 0.55 {
		t.Errorf("4-shard point took %.2f× the serial wall time, want < 0.55×", ratio)
	}
}
