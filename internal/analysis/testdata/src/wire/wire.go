// Package wire is a miniature stand-in for osnt/internal/wire: just enough
// surface (Pool.Get/GetTrain, Frame.Release/Clone, Train.Recycle, transfer
// sinks) for the framelease corpus. The analyzers match these by package
// name + type name, exactly as they match the real package.
package wire

// Frame is a pooled packet buffer.
type Frame struct {
	Data []byte
	Size int
	pool *Pool
}

// Release returns the frame to its pool.
func (f *Frame) Release() {}

// Clone returns an unpooled copy.
func (f *Frame) Clone() *Frame { return &Frame{Data: append([]byte(nil), f.Data...)} }

// CopyFrom overwrites f with src's bytes.
func (f *Frame) CopyFrom(src *Frame) {}

// Train is a pooled batch of frames.
type Train struct {
	Frames []*Frame
	pool   *Pool
}

// Release releases every frame and the container.
func (t *Train) Release() {}

// Recycle returns only the container.
func (t *Train) Recycle() {}

// Pool recycles frames and trains.
type Pool struct{}

// Get returns a pooled frame sized to n bytes.
func (p *Pool) Get(n int) *Frame { return &Frame{Data: make([]byte, n), pool: p} }

// GetTrain returns a pooled train container.
func (p *Pool) GetTrain() *Train { return &Train{pool: p} }

// Link is a transfer sink.
type Link struct{}

// Transmit takes ownership of f.
func (l *Link) Transmit(f *Frame) {}

// TransmitTrain takes ownership of t.
func (l *Link) TransmitTrain(t *Train) {}
