package ofswitch

import (
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/wire"
)

// rewriteFrame applies one OF 1.0 set-field action to the frame bytes in
// place, keeping IPv4/TCP/UDP checksums consistent — the header rewrite
// engine of the switch dataplane.
func rewriteFrame(f *wire.Frame, a openflow.Action) {
	data := f.Data
	if len(data) < packet.EthernetHeaderLen {
		return
	}
	switch act := a.(type) {
	case *openflow.ActionSetDlAddr:
		if act.TypeCode == openflow.ActTypeSetDlDst {
			copy(data[0:6], act.Addr[:])
		} else {
			copy(data[6:12], act.Addr[:])
		}
	case *openflow.ActionSetVlanVid:
		setVlanVid(f, act.Vid)
	case *openflow.ActionStripVlan:
		stripVlan(f)
	case *openflow.ActionSetNwAddr:
		setNwAddr(data, act.TypeCode == openflow.ActTypeSetNwSrc, act.Addr)
	case *openflow.ActionSetTpPort:
		setTpPort(data, act.TypeCode == openflow.ActTypeSetTpSrc, act.Port)
	}
}

// ipHeader locates the IPv4 header, skipping one VLAN tag.
func ipHeader(data []byte) (off int, ok bool) {
	et := uint16(data[12])<<8 | uint16(data[13])
	off = packet.EthernetHeaderLen
	if et == packet.EtherTypeVLAN {
		if len(data) < off+4 {
			return 0, false
		}
		et = uint16(data[off+2])<<8 | uint16(data[off+3])
		off += 4
	}
	if et != packet.EtherTypeIPv4 || len(data) < off+packet.IPv4MinLen {
		return 0, false
	}
	if data[off]>>4 != 4 {
		return 0, false
	}
	return off, true
}

func setNwAddr(data []byte, src bool, addr packet.IP4) {
	off, ok := ipHeader(data)
	if !ok {
		return
	}
	pos := off + 16
	if src {
		pos = off + 12
	}
	copy(data[pos:pos+4], addr[:])
	fixChecksums(data, off)
}

func setTpPort(data []byte, src bool, port uint16) {
	off, ok := ipHeader(data)
	if !ok {
		return
	}
	ihl := int(data[off]&0x0f) * 4
	proto := data[off+9]
	if proto != packet.ProtoTCP && proto != packet.ProtoUDP {
		return
	}
	l4 := off + ihl
	if len(data) < l4+4 {
		return
	}
	pos := l4 + 2
	if src {
		pos = l4
	}
	data[pos] = byte(port >> 8)
	data[pos+1] = byte(port)
	fixChecksums(data, off)
}

// fixChecksums recomputes the IPv4 header checksum and, when the payload
// is TCP or UDP, the transport checksum with its pseudo header.
func fixChecksums(data []byte, ipOff int) {
	ihl := int(data[ipOff]&0x0f) * 4
	if len(data) < ipOff+ihl {
		return
	}
	hdr := data[ipOff : ipOff+ihl]
	hdr[10], hdr[11] = 0, 0
	ipsum := packet.Checksum(hdr, 0)
	hdr[10], hdr[11] = byte(ipsum>>8), byte(ipsum)

	proto := hdr[9]
	totalLen := int(hdr[2])<<8 | int(hdr[3])
	if totalLen < ihl || ipOff+totalLen > len(data) {
		totalLen = len(data) - ipOff
	}
	seg := data[ipOff+ihl : ipOff+totalLen]
	var src, dst packet.IP4
	copy(src[:], hdr[12:16])
	copy(dst[:], hdr[16:20])
	switch proto {
	case packet.ProtoUDP:
		if len(seg) < packet.UDPHeaderLen {
			return
		}
		seg[6], seg[7] = 0, 0
		sum := packet.Checksum(seg, packet.PseudoV4(src, dst, proto, len(seg)))
		if sum == 0 {
			sum = 0xffff
		}
		seg[6], seg[7] = byte(sum>>8), byte(sum)
	case packet.ProtoTCP:
		if len(seg) < packet.TCPMinLen {
			return
		}
		seg[16], seg[17] = 0, 0
		sum := packet.Checksum(seg, packet.PseudoV4(src, dst, proto, len(seg)))
		seg[16], seg[17] = byte(sum>>8), byte(sum)
	}
}

// setVlanVid rewrites the VID of a tagged frame, or pushes a tag onto an
// untagged one (OF 1.0 semantics).
func setVlanVid(f *wire.Frame, vid uint16) {
	data := f.Data
	et := uint16(data[12])<<8 | uint16(data[13])
	if et == packet.EtherTypeVLAN && len(data) >= 18 {
		tci := uint16(data[14])<<8 | uint16(data[15])
		tci = tci&0xf000 | vid&0x0fff
		data[14], data[15] = byte(tci>>8), byte(tci)
		return
	}
	// Push a new tag after the MAC addresses.
	grown := make([]byte, len(data)+4)
	copy(grown, data[:12])
	grown[12], grown[13] = 0x81, 0x00
	grown[14], grown[15] = byte(vid>>8), byte(vid)
	copy(grown[16:], data[12:])
	f.Data = grown
	f.Size += 4
}

// stripVlan removes the outer 802.1Q tag if present.
func stripVlan(f *wire.Frame) {
	data := f.Data
	if len(data) < 18 {
		return
	}
	if uint16(data[12])<<8|uint16(data[13]) != packet.EtherTypeVLAN {
		return
	}
	shrunk := make([]byte, len(data)-4)
	copy(shrunk, data[:12])
	copy(shrunk[12:], data[16:])
	f.Data = shrunk
	f.Size -= 4
}
