package stats

import (
	"strings"
	"testing"

	"osnt/internal/wire"
)

func lossFixture() (*wire.DropLedger, int, int) {
	l := &wire.DropLedger{}
	leaf := l.Add("leaf")
	spine := l.Add("spine")
	l.Report(leaf, wire.DropEgressOverflow, 30)
	l.Report(leaf, wire.DropRunt, 2)
	l.Report(spine, wire.DropLookupOverflow, 8)
	return l, leaf, spine
}

func TestLossMapConservation(t *testing.T) {
	l, _, _ := lossFixture()
	lm := NewLossMap(100, 60, l)
	if got := lm.Attributed(); got != 40 {
		t.Fatalf("Attributed = %d", got)
	}
	if !lm.Conserved() {
		t.Fatal("100 = 60 + 40 should conserve")
	}
	if got := lm.LossFraction(); got != 0.4 {
		t.Fatalf("LossFraction = %v", got)
	}
	if NewLossMap(100, 61, l).Conserved() {
		t.Fatal("off-by-one must not conserve")
	}
}

func TestLossMapEntriesOrderedAndElided(t *testing.T) {
	l, leaf, spine := lossFixture()
	lm := NewLossMap(100, 60, l)
	es := lm.Entries()
	if len(es) != 3 {
		t.Fatalf("entries %d, want 3 (zero cells elided)", len(es))
	}
	want := []struct {
		hop    int
		reason wire.DropReason
		count  uint64
	}{
		{leaf, wire.DropEgressOverflow, 30},
		{leaf, wire.DropRunt, 2},
		{spine, wire.DropLookupOverflow, 8},
	}
	for i, w := range want {
		if es[i].Hop != w.hop || es[i].Reason != w.reason || es[i].Count != w.count {
			t.Fatalf("entry %d = %+v, want %+v", i, es[i], w)
		}
	}
	if f := lm.Fraction(es[0]); f != 0.3 {
		t.Fatalf("Fraction = %v", f)
	}
}

func TestLossMapTableRendering(t *testing.T) {
	l, _, _ := lossFixture()
	s := NewLossMap(100, 60, l).Table().String()
	for _, frag := range []string{"leaf", "spine", "egress-overflow", "runt", "lookup-overflow", "conserved exactly", "40"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("table missing %q:\n%s", frag, s)
		}
	}
	bad := NewLossMap(100, 70, l).Table().String()
	if !strings.Contains(bad, "NOT conserved (off by -10)") {
		t.Fatalf("broken conservation not flagged:\n%s", bad)
	}
}

// A snapshot stays stable while the ledger keeps counting.
func TestLossMapSnapshots(t *testing.T) {
	l, leaf, _ := lossFixture()
	lm := NewLossMap(100, 60, l)
	l.Report(leaf, wire.DropEgressOverflow, 1000)
	if got := lm.Attributed(); got != 40 {
		t.Fatalf("snapshot moved: %d", got)
	}
}

// Regression: NewLossMap calls ledger.Hops() (and Count/Label) directly,
// which is only safe because every DropLedger method is nil-safe on the
// receiver. A rig without loss attribution (osnt-mon before any drop
// site is added, hand-built monitors with no SetDropSite) passes a nil
// ledger, and both the map and its rendered table must keep working.
func TestLossMapNilLedger(t *testing.T) {
	lm := NewLossMap(10, 10, nil)
	if len(lm.Entries()) != 0 {
		t.Fatalf("nil ledger produced %d entries", len(lm.Entries()))
	}
	if lm.Attributed() != 0 {
		t.Fatalf("nil ledger attributed %d drops", lm.Attributed())
	}
	if !lm.Conserved() {
		t.Fatal("10 sent = 10 delivered + 0 attributed should conserve")
	}
	if s := lm.Table().String(); !strings.Contains(s, "conserved exactly") {
		t.Fatalf("nil-ledger table missing conservation verdict:\n%s", s)
	}

	// Unaccounted loss with no ledger must surface, not panic.
	lm = NewLossMap(10, 7, nil)
	if lm.Conserved() {
		t.Fatal("3 unattributed losses must not conserve")
	}
	if s := lm.Table().String(); !strings.Contains(s, "NOT conserved (off by 3)") {
		t.Fatalf("nil-ledger table hides the unattributed loss:\n%s", s)
	}
}
