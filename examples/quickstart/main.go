// Quickstart: measure the latency of a switch with OSNT in ~40 lines.
//
// An OSNT tester (simulated NetFPGA-10G) generates timestamped traffic
// through a store-and-forward switch and captures it on a second port;
// the latency distribution comes straight from the hardware timestamps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"osnt/internal/core"
	"osnt/internal/experiments"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
)

func main() {
	engine := sim.NewEngine()

	// Tester port 0 → switch → tester port 1 (Demo Part I topology, with
	// the switch's MAC table pre-learned).
	device, _ := experiments.E3Topology(engine, switchsim.Config{})

	probe := packet.UDPSpec{
		SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
		DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
		SrcIP:   packet.IP4{10, 0, 0, 1},
		DstIP:   packet.IP4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 7000,
	}

	result, err := (&core.LatencyTest{
		Device: device,
		TxPort: 0, RxPort: 1,
		Spec:      probe,
		FrameSize: 512,
		Load:      0.2, // 20% of 10G line rate
		Duration:  10 * sim.Millisecond,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sent %d packets, captured %d, DUT loss %.2f%%\n",
		result.TxPackets, result.RxPackets, result.LossFraction()*100)
	fmt.Printf("switch latency: %s\n", result.Latency.Summary(1e6, "µs"))
}
