// Package filter implements the OSNT monitor's hardware packet filters:
// an ordered, TCAM-style table of wildcard rules evaluated first-match
// against each arriving frame. A rule can match on maskable Ethernet
// addresses, EtherType, IPv4 prefixes, protocol and port ranges, or on a
// raw value/mask pattern over the first bytes of the frame — the two
// match styles real TCAM pipelines provide.
package filter

import (
	"fmt"
	"strings"

	"osnt/internal/packet"
)

// Action is a rule's verdict.
type Action uint8

// Verdicts. Capture sends the packet up the host path; Drop discards it
// at the filter stage.
const (
	Capture Action = iota
	Drop
)

// String names the action.
func (a Action) String() string {
	if a == Drop {
		return "drop"
	}
	return "capture"
}

// Rule is one TCAM entry. Zero-valued fields are wildcards. The rule
// matches when every specified field matches.
type Rule struct {
	Name   string
	Action Action

	// Link layer. A zero mask byte wildcards the corresponding address
	// byte; an all-0xff mask is an exact match.
	DstMAC, DstMACMask packet.MAC
	SrcMAC, SrcMACMask packet.MAC
	EtherType          uint16 // 0 = any
	VLANID             uint16 // 0 = any; matches the 802.1Q VID
	MatchVLAN          bool   // require a VLAN tag to be present

	// IPv4. PrefixLen 0 = any.
	SrcIP        packet.IP4
	SrcPrefixLen int
	DstIP        packet.IP4
	DstPrefixLen int
	Proto        byte // 0 = any

	// Transport ports, inclusive ranges. Max 0 = any.
	SrcPortMin, SrcPortMax uint16
	DstPortMin, DstPortMax uint16

	// Raw value/mask match over the first len(RawValue) bytes of the
	// frame. RawMask must be the same length as RawValue; a zero mask
	// byte wildcards that byte. Raw matching composes with the typed
	// fields above.
	RawValue, RawMask []byte

	// SnapLen overrides the monitor's thinning length for packets
	// accepted by this rule (0 = monitor default). This reproduces
	// OSNT's per-filter packet-cutting configuration.
	SnapLen int

	// PinQueue steers packets accepted by this rule to capture queue
	// PinQueue-1, overriding the monitor's steering policy — the
	// rule-based queue steering ("flow director") of multi-queue NICs.
	// 0 is no pin; the monitor rejects pins beyond its queue count.
	PinQueue int
}

// Validate reports configuration errors a hardware driver would reject.
func (r *Rule) Validate() error {
	if len(r.RawValue) != len(r.RawMask) {
		return fmt.Errorf("filter: raw value/mask length mismatch (%d vs %d)", len(r.RawValue), len(r.RawMask))
	}
	if r.SrcPrefixLen < 0 || r.SrcPrefixLen > 32 || r.DstPrefixLen < 0 || r.DstPrefixLen > 32 {
		return fmt.Errorf("filter: prefix length out of range")
	}
	if r.SrcPortMax != 0 && r.SrcPortMin > r.SrcPortMax {
		return fmt.Errorf("filter: src port range inverted")
	}
	if r.DstPortMax != 0 && r.DstPortMin > r.DstPortMax {
		return fmt.Errorf("filter: dst port range inverted")
	}
	if r.SnapLen < 0 {
		return fmt.Errorf("filter: negative snap length")
	}
	if r.PinQueue < 0 {
		return fmt.Errorf("filter: negative queue pin")
	}
	return nil
}

// String gives a compact one-line description.
func (r *Rule) String() string {
	var parts []string
	if r.EtherType != 0 {
		parts = append(parts, fmt.Sprintf("eth=%#04x", r.EtherType))
	}
	if r.Proto != 0 {
		parts = append(parts, fmt.Sprintf("proto=%d", r.Proto))
	}
	if r.SrcPrefixLen > 0 {
		parts = append(parts, fmt.Sprintf("src=%s/%d", r.SrcIP, r.SrcPrefixLen))
	}
	if r.DstPrefixLen > 0 {
		parts = append(parts, fmt.Sprintf("dst=%s/%d", r.DstIP, r.DstPrefixLen))
	}
	if r.DstPortMax != 0 {
		parts = append(parts, fmt.Sprintf("dport=%d-%d", r.DstPortMin, r.DstPortMax))
	}
	if r.SrcPortMax != 0 {
		parts = append(parts, fmt.Sprintf("sport=%d-%d", r.SrcPortMin, r.SrcPortMax))
	}
	if len(r.RawValue) > 0 {
		parts = append(parts, fmt.Sprintf("raw[%dB]", len(r.RawValue)))
	}
	if len(parts) == 0 {
		parts = append(parts, "any")
	}
	return fmt.Sprintf("%s(%s)->%s", r.Name, strings.Join(parts, ","), r.Action)
}

// Table is an ordered rule list with per-rule hit counters. The zero
// value is an empty table whose Match returns the default action.
type Table struct {
	rules []*Rule
	hits  []uint64
	// DefaultAction applies when no rule matches. The OSNT monitor's
	// default is to capture everything (filters opt traffic out).
	DefaultAction Action
	defaultHits   uint64
}

// NewTable returns an empty table with the given default action.
func NewTable(def Action) *Table { return &Table{DefaultAction: def} }

// Append adds a rule at the lowest priority (end of the table).
func (t *Table) Append(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	t.rules = append(t.rules, r)
	t.hits = append(t.hits, 0)
	return nil
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Hits returns the hit counter of rule i.
func (t *Table) Hits(i int) uint64 { return t.hits[i] }

// DefaultHits returns how many packets fell through to the default
// action.
func (t *Table) DefaultHits() uint64 { return t.defaultHits }

// DropHits returns how many matches resolved to the Drop verdict: the
// hit counters of every Drop rule plus the default hits when the
// default action drops. The monitor reports the same quantity into the
// loss ledger as filter-reject, so the two stay cross-checkable.
func (t *Table) DropHits() uint64 {
	var n uint64
	for i, r := range t.rules {
		if r.Action == Drop {
			n += t.hits[i]
		}
	}
	if t.DefaultAction == Drop {
		n += t.defaultHits
	}
	return n
}

// Rule returns rule i.
func (t *Table) Rule(i int) *Rule { return t.rules[i] }

// Reset clears all hit counters.
func (t *Table) Reset() {
	for i := range t.hits {
		t.hits[i] = 0
	}
	t.defaultHits = 0
}

// Match evaluates the frame against the table in order and returns the
// verdict, the matching rule index (-1 for the default action), and the
// effective snap length override (0 if none).
func (t *Table) Match(data []byte) (Action, int, int) {
	var pp parsed
	pp.parse(data)
	for i, r := range t.rules {
		if ruleMatches(r, data, &pp) {
			t.hits[i]++
			return r.Action, i, r.SnapLen
		}
	}
	t.defaultHits++
	return t.DefaultAction, -1, 0
}

// parsed caches the fields Match needs so each rule check is cheap.
type parsed struct {
	ok      bool // Ethernet header present
	ethDst  packet.MAC
	ethSrc  packet.MAC
	ethType uint16
	hasVLAN bool
	vlanID  uint16
	isIPv4  bool
	srcIP   packet.IP4
	dstIP   packet.IP4
	proto   byte
	hasL4   bool
	srcPort uint16
	dstPort uint16
}

func (p *parsed) parse(data []byte) {
	if len(data) < packet.EthernetHeaderLen {
		return
	}
	p.ok = true
	copy(p.ethDst[:], data[0:6])
	copy(p.ethSrc[:], data[6:12])
	p.ethType = uint16(data[12])<<8 | uint16(data[13])
	off := packet.EthernetHeaderLen
	if p.ethType == packet.EtherTypeVLAN && len(data) >= off+4 {
		p.hasVLAN = true
		p.vlanID = (uint16(data[off])<<8 | uint16(data[off+1])) & 0x0fff
		p.ethType = uint16(data[off+2])<<8 | uint16(data[off+3])
		off += 4
	}
	if p.ethType != packet.EtherTypeIPv4 || len(data) < off+packet.IPv4MinLen {
		return
	}
	ip := data[off:]
	ihl := int(ip[0]&0x0f) * 4
	if ip[0]>>4 != 4 || ihl < packet.IPv4MinLen || len(ip) < ihl {
		return
	}
	p.isIPv4 = true
	copy(p.srcIP[:], ip[12:16])
	copy(p.dstIP[:], ip[16:20])
	p.proto = ip[9]
	if (p.proto == packet.ProtoTCP || p.proto == packet.ProtoUDP) &&
		(uint16(ip[6])<<8|uint16(ip[7]))&0x1fff == 0 && len(ip) >= ihl+4 {
		p.hasL4 = true
		p.srcPort = uint16(ip[ihl])<<8 | uint16(ip[ihl+1])
		p.dstPort = uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3])
	}
}

func ruleMatches(r *Rule, data []byte, p *parsed) bool {
	// Raw value/mask first: it applies regardless of parseability.
	for i := range r.RawValue {
		if i >= len(data) {
			return false
		}
		if data[i]&r.RawMask[i] != r.RawValue[i]&r.RawMask[i] {
			return false
		}
	}
	if !p.ok {
		// Non-Ethernet-parseable frames match only pure-raw rules.
		return !typedFieldsSet(r)
	}
	if !macMatches(p.ethDst, r.DstMAC, r.DstMACMask) {
		return false
	}
	if !macMatches(p.ethSrc, r.SrcMAC, r.SrcMACMask) {
		return false
	}
	if r.MatchVLAN && !p.hasVLAN {
		return false
	}
	if r.VLANID != 0 && (!p.hasVLAN || p.vlanID != r.VLANID) {
		return false
	}
	if r.EtherType != 0 && p.ethType != r.EtherType {
		return false
	}
	ipNeeded := r.SrcPrefixLen > 0 || r.DstPrefixLen > 0 || r.Proto != 0 ||
		r.SrcPortMax != 0 || r.DstPortMax != 0
	if !ipNeeded {
		return true
	}
	if !p.isIPv4 {
		return false
	}
	if r.Proto != 0 && p.proto != r.Proto {
		return false
	}
	if r.SrcPrefixLen > 0 && !prefixMatches(p.srcIP, r.SrcIP, r.SrcPrefixLen) {
		return false
	}
	if r.DstPrefixLen > 0 && !prefixMatches(p.dstIP, r.DstIP, r.DstPrefixLen) {
		return false
	}
	if r.SrcPortMax != 0 {
		if !p.hasL4 || p.srcPort < r.SrcPortMin || p.srcPort > r.SrcPortMax {
			return false
		}
	}
	if r.DstPortMax != 0 {
		if !p.hasL4 || p.dstPort < r.DstPortMin || p.dstPort > r.DstPortMax {
			return false
		}
	}
	return true
}

func typedFieldsSet(r *Rule) bool {
	return r.DstMACMask != (packet.MAC{}) || r.SrcMACMask != (packet.MAC{}) ||
		r.EtherType != 0 || r.VLANID != 0 || r.MatchVLAN ||
		r.SrcPrefixLen > 0 || r.DstPrefixLen > 0 || r.Proto != 0 ||
		r.SrcPortMax != 0 || r.DstPortMax != 0
}

func macMatches(got, want, mask packet.MAC) bool {
	for i := 0; i < 6; i++ {
		if got[i]&mask[i] != want[i]&mask[i] {
			return false
		}
	}
	return true
}

func prefixMatches(got, want packet.IP4, plen int) bool {
	if plen <= 0 {
		return true
	}
	if plen > 32 {
		plen = 32
	}
	mask := ^uint32(0) << uint(32-plen)
	return got.Uint32()&mask == want.Uint32()&mask
}

// ExactMAC is the all-ones mask for exact MAC matching.
var ExactMAC = packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
