package experiments

import (
	"fmt"

	"osnt/internal/fabric"
	"osnt/internal/gen"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// E19Loads sweeps the per-host offered load as a fraction of the 10G
// host line rate, heaviest first for the worker pool.
var E19Loads = []float64{0.9, 0.6, 0.3}

// e19Matrices is the traffic-matrix sweep: the all-to-all permutation
// baseline, a k-degree incast, and the hot-spot overload.
var e19Matrices = []string{"permutation", "incast", "hot-spot"}

// e19FrameSize keeps the embedded timestamp inside the payload and the
// per-hop service slots comfortable (512 B, as in E15).
const e19FrameSize = 512

// e19Fabric synthesizes the k-ary fat-tree every E19 point runs on:
// full bisection, single cables, and the E15 overspeed lookup so the
// only loss mechanism is queue overflow at the convergence points the
// matrix creates.
func e19Fabric(e *sim.Engine, k int) *fabric.Fabric {
	return fabric.MustBuild(e, fabric.Spec{
		K:      k,
		Switch: e15OverspeedLookup(switchsim.Config{}),
	})
}

// e19Matrix names a matrix on the fabric; the incast fan-in degree is
// the radix itself, so the senders of each group necessarily span edge
// switches.
func e19Matrix(f *fabric.Fabric, name string) fabric.TrafficMatrix {
	switch name {
	case "permutation":
		return f.Permutation()
	case "incast":
		return f.Incast(f.Spec.K)
	case "hot-spot":
		return f.HotSpot()
	}
	panic("e19: unknown matrix " + name)
}

// e19Point runs one (k, matrix, load) point on a fresh engine and
// returns the loss map, the per-tier drop totals, the delivery-latency
// histogram and the offered count.
func e19Point(duration sim.Duration, k int, matrix string, load float64, pointSeed int) (*stats.LossMap, [5]uint64, *stats.Histogram, uint64) {
	e := sim.NewEngine()
	f := e19Fabric(e, k)

	lat := stats.NewHistogram()
	for i := range f.Hosts {
		f.HostPort(i).OnReceive = func(fr *wire.Frame, _ sim.Time, ts timing.Timestamp) {
			if t0, ok := gen.ExtractTimestamp(fr.Data, gen.DefaultTimestampOffset); ok {
				lat.Record(int64(ts.Sub(t0)))
			}
		}
	}

	slot := wire.SerializationTime(e19FrameSize, f.Spec.Rate)
	srcs := f.Sources(e19Matrix(f, matrix), e19FrameSize)
	var gens []*gen.Generator
	for i, src := range srcs {
		if src == nil {
			continue
		}
		g, err := gen.New(f.HostPort(i), gen.Config{
			Source:         src,
			Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           runner.PointSeed(0xe19, pointSeed*256+i),
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		gens = append(gens, g)
	}
	e.RunUntil(sim.Time(duration))
	var offered uint64
	for _, g := range gens {
		g.Stop()
		offered += g.Sent().Packets + g.Dropped()
	}
	e.Run() // drain the fabric

	lm := stats.NewLossMap(offered, f.Delivered(), f.Drops())
	return lm, f.TierDrops(), lat, offered
}

// e19Table sweeps the given radices × matrices × loads; every row's
// conservation column checks sent = delivered + Σ attributed exactly,
// and the tier columns split the attributed drops between the edge,
// aggregation and core layers.
func e19Table(ks []int, duration sim.Duration) *stats.Table {
	tbl := &stats.Table{
		Title: "E19: synthesized fat-tree fabrics under permutation / incast / hot-spot (512B Poisson per host)",
		Columns: []string{"k", "switches", "hosts", "matrix", "load(%)", "offered(Mpps)",
			"delivered(Mpps)", "loss(%)", "edge(%)", "agg(%)", "core(%)", "p99(µs)", "conserved"},
	}
	perK := len(e19Matrices) * len(E19Loads)
	tbl.Rows = sweeper().Rows(len(ks)*perK, func(i int) [][]string {
		k := ks[i/perK]
		matrix := e19Matrices[(i%perK)/len(E19Loads)]
		load := E19Loads[i%len(E19Loads)]
		lm, tiers, lat, offered := e19Point(duration, k, matrix, load, i)

		// Tier shares of the attributed drops; a lossless point shows
		// 0.0 everywhere.
		share := func(t fabric.Tier) float64 {
			if lm.Attributed() == 0 {
				return 0
			}
			return float64(tiers[t]) / float64(lm.Attributed()) * 100
		}
		spec := fabric.Spec{K: k}
		secs := duration.Seconds()
		return [][]string{{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", spec.NumSwitches()),
			fmt.Sprintf("%d", spec.NumHosts()),
			matrix,
			fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%.3f", float64(offered)/secs/1e6),
			fmt.Sprintf("%.3f", float64(lm.Delivered)/secs/1e6),
			fmt.Sprintf("%.2f", lm.LossFraction()*100),
			fmt.Sprintf("%.1f", share(fabric.TierEdge)),
			fmt.Sprintf("%.1f", share(fabric.TierAgg)),
			fmt.Sprintf("%.1f", share(fabric.TierCore)),
			fmt.Sprintf("%.2f", float64(lat.Percentile(99))/1e6),
			fmt.Sprintf("%v", lm.Conserved()),
		}}
	})
	return tbl
}

// E19FatTree is the full sweep the fabric synthesizer unlocks: a k=8
// fat-tree (80 switches, 128 hosts) and the k=4 reference (20/16),
// each under the three canonical datacenter matrices across load. The
// permutation rows stay lossless and flat across k — full bisection
// bandwidth is what a fat-tree buys — while incast and hot-spot
// concentrate their losses on the edge tier, with the aggregation
// layer absorbing the spill, and the ledger proves it per row: the
// conservation column checks sent = delivered + Σ attributed drops
// exactly over all 80 switches.
func E19FatTree(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	return e19Table([]int{8, 4}, duration)
}

// E19FatTreeK4 is the k=4 slice of E19 at benchmark duration — the
// shape cmd/benchgate tracks (20 switches and 16 hosts synthesized,
// driven and torn down per iteration).
func E19FatTreeK4(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = sim.Millisecond
	}
	return e19Table([]int{4}, duration)
}

// FabricSynthMicroBench isolates synthesis itself: build a k=8
// fat-tree (80 switches, 128 hosts, every FDB pre-learned) on a fresh
// engine and return the switch count. cmd/benchgate samples it to
// prove generation is cheap relative to running traffic.
func FabricSynthMicroBench() int {
	f := fabric.MustBuild(sim.NewEngine(), fabric.Spec{K: 8})
	return len(f.Edges) + len(f.Aggs) + len(f.Cores)
}
