package wire

import (
	"testing"

	"osnt/internal/sim"
)

func TestDropLedgerAccounting(t *testing.T) {
	l := &DropLedger{}
	hopA := l.Add("leaf")
	hopB := l.Add("spine")
	if hopA != 1 || hopB != 2 {
		t.Fatalf("Add assigned hops %d, %d; want 1, 2", hopA, hopB)
	}
	l.Report(hopA, DropEgressOverflow, 3)
	l.Report(hopA, DropRunt, 1)
	l.Report(hopB, DropLookupOverflow, 2)

	if got := l.Count(hopA, DropEgressOverflow); got != 3 {
		t.Fatalf("Count(leaf, egress) = %d", got)
	}
	if got := l.HopTotal(hopA); got != 4 {
		t.Fatalf("HopTotal(leaf) = %d", got)
	}
	if got := l.ReasonTotal(DropLookupOverflow); got != 2 {
		t.Fatalf("ReasonTotal(lookup) = %d", got)
	}
	if got := l.Total(); got != 6 {
		t.Fatalf("Total = %d", got)
	}
	if l.Label(hopA) != "leaf" || l.Label(hopB) != "spine" {
		t.Fatalf("labels: %q, %q", l.Label(hopA), l.Label(hopB))
	}
}

func TestDropLedgerRegisterPinsHop(t *testing.T) {
	l := &DropLedger{}
	l.Register(4, "pinned")
	if got := l.Add("next"); got != 1 {
		t.Fatalf("Add after Register(4) = %d, want the lowest free slot 1", got)
	}
	if l.Label(4) != "pinned" {
		t.Fatalf("Label(4) = %q", l.Label(4))
	}
}

// Unregistered and negative hops must still be counted — losing drops
// would silently break every conservation check downstream.
func TestDropLedgerUnattributedBuckets(t *testing.T) {
	l := &DropLedger{}
	l.Report(-3, DropRunt, 1)
	l.Report(0, DropRunt, 1)
	l.Report(9, DropHairpin, 2)
	if got := l.Count(0, DropRunt); got != 2 {
		t.Fatalf("unattributed runts = %d, want 2", got)
	}
	if got := l.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
}

// Every method must be a no-op on a nil ledger: devices without an
// attached scenario ledger call Report unconditionally.
func TestDropLedgerNilSafe(t *testing.T) {
	var l *DropLedger
	l.Report(1, DropRunt, 1)
	l.Register(1, "x")
	if l.Total() != 0 || l.Hops() != 0 || l.Count(1, DropRunt) != 0 ||
		l.HopTotal(1) != 0 || l.ReasonTotal(DropRunt) != 0 || l.Label(1) != "" {
		t.Fatal("nil ledger is not inert")
	}
}

func TestDropReasonStrings(t *testing.T) {
	seen := map[string]bool{}
	for r := DropReason(0); r < NumDropReasons; r++ {
		s := r.String()
		if s == "" || seen[s] {
			t.Fatalf("reason %d has empty or duplicate name %q", r, s)
		}
		seen[s] = true
	}
	if NumDropReasons.String() == "" {
		t.Fatal("out-of-range reason has no fallback name")
	}
}

// An unterminated link (no peer) must release the frame and account the
// loss instead of leaking it silently.
func TestUnterminatedLinkCountsDrops(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, Rate10G, 0, nil)
	ledger := &DropLedger{}
	l.SetDropSite(ledger, ledger.Add("stub"))

	pool := NewPool()
	f := pool.Get(64)
	l.Transmit(f)
	e.Run()

	if got := l.Drops(); got != 1 {
		t.Fatalf("link drops = %d, want 1", got)
	}
	if got := ledger.Count(1, DropUnterminated); got != 1 {
		t.Fatalf("ledger unterminated = %d, want 1", got)
	}
	if _, puts, _ := pool.Stats(); puts != 1 {
		t.Fatalf("dropped frame not released to its pool (puts=%d)", puts)
	}
	if l.TxFrames() != 1 {
		t.Fatalf("unterminated transmit must still busy the wire (txFrames=%d)", l.TxFrames())
	}
}

// Add must never adopt a slot that already carries anonymous counts —
// the new device would inherit foreign drops.
func TestAddSkipsReportedSlots(t *testing.T) {
	l := &DropLedger{}
	l.Report(2, DropRunt, 5) // anonymous counts at hop 2
	if got := l.Add("a"); got != 1 {
		t.Fatalf("Add = %d, want 1", got)
	}
	if got := l.Add("b"); got != 3 {
		t.Fatalf("Add = %d, want 3 (slot 2 holds foreign counts)", got)
	}
	if got := l.Count(2, DropRunt); got != 5 {
		t.Fatalf("foreign counts disturbed: %d", got)
	}
}
