package mon

import (
	"testing"

	"osnt/internal/filter"
	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/wire"
)

var spec = packet.UDPSpec{
	SrcMAC:  packet.MAC{2, 0, 0, 0, 0, 1},
	DstMAC:  packet.MAC{2, 0, 0, 0, 0, 2},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

// rig wires generator card port 0 -> monitor card port 0.
type rig struct {
	e    *sim.Engine
	tx   *netfpga.Card
	rx   *netfpga.Card
	mon  *Monitor
	recs []Record
}

func newRig(t *testing.T, cfg Config, frameSize int, load float64) (*rig, *gen.Generator) {
	t.Helper()
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	if cfg.Sink == nil {
		cfg.Sink = func(rec Record) { r.recs = append(r.recs, rec) }
	}
	r.mon = Attach(r.rx.Port(0), cfg)
	g, err := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: frameSize},
		Spacing: gen.CBRForLoad(frameSize, wire.Rate10G, load),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

func TestCaptureBasics(t *testing.T) {
	r, g := newRig(t, Config{}, 512, 0.01)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run() // let the ring drain

	if r.mon.Seen().Packets == 0 {
		t.Fatal("monitor saw nothing")
	}
	if r.mon.RingDrops() != 0 {
		t.Fatalf("low-rate capture dropped %d", r.mon.RingDrops())
	}
	if uint64(len(r.recs)) != r.mon.Seen().Packets {
		t.Fatalf("delivered %d of %d", len(r.recs), r.mon.Seen().Packets)
	}
	rec := r.recs[0]
	if rec.WireSize != 512 || len(rec.Data) != 508 {
		t.Fatalf("record size %d/%d", rec.WireSize, len(rec.Data))
	}
	if rec.Port != 0 || rec.Rule != -1 {
		t.Fatalf("record meta %+v", rec)
	}
	// MAC timestamp within one quantum below true arrival.
	errPs := rec.Arrival.Sub(rec.TS.Sim())
	if errPs < 0 || errPs >= sim.Duration(6250) {
		t.Fatalf("timestamp error %v", errPs)
	}
	if rec.Delivered <= rec.Arrival {
		t.Fatal("delivery must be after arrival")
	}
}

func TestThinning(t *testing.T) {
	r, g := newRig(t, Config{SnapLen: 64}, 1518, 0.01)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range r.recs {
		if len(rec.Data) != 64 {
			t.Fatalf("thinned record len %d", len(rec.Data))
		}
		if rec.WireSize != 1518 {
			t.Fatalf("wire size lost: %d", rec.WireSize)
		}
	}
}

func TestFilterDropAndCounters(t *testing.T) {
	tbl := filter.NewTable(filter.Capture)
	// Drop everything UDP from the generator's first flow port.
	_ = tbl.Append(&filter.Rule{
		Action: filter.Drop, Proto: packet.ProtoUDP,
		SrcPortMin: 5000, SrcPortMax: 5000,
	})
	r, g := newRig(t, Config{Filters: tbl}, 256, 0.01)
	g.Start(0)
	r.e.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) != 0 {
		t.Fatalf("filter leak: %d records", len(r.recs))
	}
	if r.mon.Filtered() != r.mon.Seen().Packets {
		t.Fatalf("filtered %d of %d", r.mon.Filtered(), r.mon.Seen().Packets)
	}
	if r.mon.Accepted().Packets != 0 {
		t.Fatal("accepted counter should be zero")
	}
}

func TestPerRuleSnapLenOverride(t *testing.T) {
	tbl := filter.NewTable(filter.Capture)
	_ = tbl.Append(&filter.Rule{
		Action: filter.Capture, Proto: packet.ProtoUDP, SnapLen: 96,
	})
	r, g := newRig(t, Config{Filters: tbl, SnapLen: 1500}, 1024, 0.01)
	g.Start(0)
	r.e.RunUntil(200 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range r.recs {
		if len(rec.Data) != 96 {
			t.Fatalf("rule snap override: len %d, want 96", len(rec.Data))
		}
		if rec.Rule != 0 {
			t.Fatalf("rule index %d", rec.Rule)
		}
	}
}

func TestHashing(t *testing.T) {
	r, g := newRig(t, Config{HashBytes: 64}, 512, 0.01)
	g.Start(0)
	r.e.RunUntil(100 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) < 2 {
		t.Fatal("need records")
	}
	// Same template packet → same digest.
	if r.recs[0].Hash == 0 || r.recs[0].Hash != r.recs[1].Hash {
		t.Fatalf("hashes %x %x", r.recs[0].Hash, r.recs[1].Hash)
	}
	want := packet.PacketDigest(r.recs[0].Data, 64)
	if r.recs[0].Hash != want {
		t.Fatal("hash mismatch with PacketDigest")
	}
}

func TestLossLimitedPathOverflows(t *testing.T) {
	// E7 in miniature: full-size frames at line rate far exceed the host
	// drain (~1.25GB/s effective) → ring overflow.
	r, g := newRig(t, Config{RingSize: 64}, 1518, 1.0)
	g.Start(0)
	r.e.RunUntil(5 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if r.mon.RingDrops() == 0 {
		t.Fatal("line-rate full-size capture did not overflow the ring")
	}
	if r.mon.LossFraction() <= 0 {
		t.Fatal("loss fraction")
	}
}

func TestThinningRestoresLosslessness(t *testing.T) {
	// Same offered load, thinned to 64B: per-packet host cost dominates
	// but at 812kpps (1518B frames) the host keeps up.
	r, g := newRig(t, Config{RingSize: 64, SnapLen: 64}, 1518, 1.0)
	g.Start(0)
	r.e.RunUntil(5 * sim.Time(sim.Millisecond))
	g.Stop()
	r.e.Run()
	if r.mon.RingDrops() != 0 {
		t.Fatalf("thinned capture dropped %d", r.mon.RingDrops())
	}
}

func TestThinBeforeFilterAblation(t *testing.T) {
	// A filter that needs the UDP header fails when thinning to 20 bytes
	// happens first — the documented pipeline-order ablation.
	mk := func(thinFirst bool) uint64 {
		tbl := filter.NewTable(filter.Drop)
		_ = tbl.Append(&filter.Rule{
			Action: filter.Capture, Proto: packet.ProtoUDP,
			DstPortMin: 7000, DstPortMax: 7000,
		})
		r, g := newRig(t, Config{Filters: tbl, SnapLen: 20, ThinBeforeFilter: thinFirst}, 256, 0.01)
		g.Start(0)
		r.e.RunUntil(100 * sim.Time(sim.Microsecond))
		g.Stop()
		r.e.Run()
		return r.mon.Accepted().Packets
	}
	filterFirst := mk(false)
	thinFirst := mk(true)
	if filterFirst == 0 {
		t.Fatal("filter-first pipeline captured nothing")
	}
	if thinFirst != 0 {
		t.Fatalf("thin-first pipeline should break the port match, got %d", thinFirst)
	}
}

func TestRingDepthBounded(t *testing.T) {
	r, g := newRig(t, Config{RingSize: 16}, 1518, 1.0)
	maxDepth := 0
	r.e.ScheduleEvery(0, 10*sim.Microsecond, func() {
		if d := r.mon.RingDepth(); d > maxDepth {
			maxDepth = d
		}
	})
	g.Start(0)
	r.e.RunUntil(2 * sim.Time(sim.Millisecond))
	g.Stop()
	if maxDepth > 16 {
		t.Fatalf("ring depth %d exceeded capacity 16", maxDepth)
	}
}

func TestNilSinkStillCounts(t *testing.T) {
	r := &rig{e: sim.NewEngine()}
	r.tx = netfpga.New(r.e, netfpga.Config{})
	r.rx = netfpga.New(r.e, netfpga.Config{})
	r.tx.Port(0).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, r.rx.Port(0)))
	m := Attach(r.rx.Port(0), Config{Sink: nil})
	g, _ := gen.New(r.tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing: gen.CBR{Interval: 10 * sim.Microsecond},
		Count:   10,
	})
	g.Start(0)
	r.e.Run()
	if m.Delivered().Packets != 10 {
		t.Fatalf("delivered %d", m.Delivered().Packets)
	}
}

func TestRecordDataIsCopied(t *testing.T) {
	// The record's bytes must survive datapath buffer reuse.
	r, g := newRig(t, Config{}, 128, 0.01)
	g.Start(0)
	r.e.RunUntil(50 * sim.Time(sim.Microsecond))
	g.Stop()
	r.e.Run()
	if len(r.recs) < 2 {
		t.Fatal("need records")
	}
	d0 := append([]byte(nil), r.recs[0].Data...)
	// Mutate a later record's buffer; the first must be unaffected.
	r.recs[1].Data[0] = ^r.recs[1].Data[0]
	for i := range d0 {
		if r.recs[0].Data[i] != d0[i] {
			t.Fatal("record buffers alias")
		}
	}
}

func BenchmarkMonitorPipeline(b *testing.B) {
	e := sim.NewEngine()
	tx := netfpga.New(e, netfpga.Config{})
	rx := netfpga.New(e, netfpga.Config{})
	tx.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rx.Port(0)))
	tbl := filter.NewTable(filter.Capture)
	_ = tbl.Append(&filter.Rule{Action: filter.Capture, Proto: packet.ProtoUDP})
	Attach(rx.Port(0), Config{Filters: tbl, SnapLen: 64, HashBytes: 64})
	g, _ := gen.New(tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 256},
		Spacing: gen.CBRForLoad(256, wire.Rate10G, 0.5),
	})
	g.Start(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.RunFor(sim.Microsecond)
	}
	g.Stop()
}
