package integration_test

import (
	"testing"

	"osnt/internal/fabric"
	"osnt/internal/gen"
	"osnt/internal/shard"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// runReadmeShard runs the README's sharded-execution example on a
// cluster of the given shard count and returns its loss map plus a
// per-host stream digest (an FNV-1a fold over every delivered frame's
// arrival instant and size, combined in host order).
func runReadmeShard(shards int) (*stats.LossMap, uint64) {
	cl := shard.NewCluster(shards) // one engine per shard
	defer cl.Close()

	// Delayed cables make every pod-aligned cut legal; the 1 µs delay is
	// the lookahead budget (and the barrier cadence).
	spec := fabric.Spec{K: 4, LinkDelay: sim.Microsecond}
	f := fabric.MustBuildPartitioned(cl.Partition(spec.PodShard(cl.Shards())), spec)

	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	mix := func(h, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * fnvPrime
			v >>= 8
		}
		return h
	}
	digests := make([]uint64, len(f.Hosts))
	for i := range f.Hosts {
		digests[i] = fnvOffset
		d := &digests[i]
		f.HostPort(i).OnReceive = func(fr *wire.Frame, at sim.Time, _ timing.Timestamp) {
			*d = mix(mix(*d, uint64(at)), uint64(fr.Size))
		}
	}

	srcs := f.Sources(f.Permutation(), 512)
	var gens []*gen.Generator
	for i, src := range srcs {
		g, err := gen.New(f.HostPort(i), gen.Config{
			Source:  src,
			Spacing: gen.CBRForLoad(512, wire.Rate10G, 0.5),
			Pool:    wire.DefaultPool,
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		gens = append(gens, g)
	}
	cl.RunUntil(sim.Time(sim.Millisecond)) // windows + barriers, shard 0 inline
	var offered uint64
	for _, g := range gens {
		g.Stop()
		offered += g.Sent().Packets + g.Dropped()
	}
	cl.Run() // drain in-flight traffic to empty

	lm := stats.NewLossMap(offered, f.Delivered(), f.Drops()) // ledgers merge across shards
	digest := uint64(fnvOffset)
	for _, d := range digests {
		digest = mix(digest, d)
	}
	return lm, digest
}

// TestReadmeShardSnippet mirrors the README's sharded-execution example
// so the documentation stays compile-verified and behaviour-verified:
// the 4-shard run of a k=4 delayed fat-tree conserves exactly, loses
// nothing at half load, and is byte-identical — same counters, same
// stream digest — to the 1-shard run of the same spec.
func TestReadmeShardSnippet(t *testing.T) {
	lm4, digest4 := runReadmeShard(4)
	if lm4.Sent == 0 {
		t.Fatal("nothing offered")
	}
	if !lm4.Conserved() {
		t.Fatalf("loss not conserved: sent %d delivered %d attributed %d",
			lm4.Sent, lm4.Delivered, lm4.Attributed())
	}
	if lm4.Delivered != lm4.Sent {
		t.Fatalf("half-load permutation lost frames: sent %d delivered %d",
			lm4.Sent, lm4.Delivered)
	}

	lm1, digest1 := runReadmeShard(1)
	if lm1.Sent != lm4.Sent || lm1.Delivered != lm4.Delivered {
		t.Fatalf("shard counts disagree on counters: 1-shard %d/%d, 4-shard %d/%d",
			lm1.Sent, lm1.Delivered, lm4.Sent, lm4.Delivered)
	}
	if digest1 != digest4 {
		t.Fatalf("stream digests diverge: 1-shard %016x, 4-shard %016x", digest1, digest4)
	}
}
