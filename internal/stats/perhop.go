package stats

// PerHop aggregates one latency histogram per hop index, the reduction
// behind per-hop latency decomposition: a capture sink walks each
// record's hop trace, records the delta to the previous stamp under the
// hop's index, and the experiment reads one distribution per hop. Hop
// indices are dense and small (a chain of N devices uses 0..N-1), so the
// histograms live in a slice grown on first use.
type PerHop struct {
	hists []*Histogram
}

// NewPerHop returns an empty decomposition sized for n hops (further
// hops grow the set on demand).
func NewPerHop(n int) *PerHop {
	p := &PerHop{hists: make([]*Histogram, 0, n)}
	p.grow(n)
	return p
}

func (p *PerHop) grow(n int) {
	for len(p.hists) < n {
		p.hists = append(p.hists, NewHistogram())
	}
}

// Record adds one sample for hop index i (growing the set if needed).
func (p *PerHop) Record(i int, v int64) {
	p.grow(i + 1)
	p.hists[i].Record(v)
}

// Hops returns the number of hop indices seen.
func (p *PerHop) Hops() int { return len(p.hists) }

// Hist returns hop i's histogram, or nil when that hop was never
// recorded.
func (p *PerHop) Hist(i int) *Histogram {
	if i < 0 || i >= len(p.hists) {
		return nil
	}
	return p.hists[i]
}
