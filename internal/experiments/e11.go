package experiments

import (
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// E11PairCounts sweeps generator→monitor pairs on the 40G card, heaviest
// first for the worker pool.
var E11PairCounts = []int{2, 1}

// E11FrameSizes is the line-rate sweep at 40G: 64 B is the 59.52 Mpps
// worst case, 1518 B the bandwidth-bound best case.
var E11FrameSizes = []int{64, 512, 1518}

// E11Rate40G is the first consumer of wire.Rate40G: the E9 pair rig
// (see pairScalingSweep) with every port at 40 Gb/s, swept over gen→mon
// loopback pairs and frame sizes at 100% offered load. One 64 B frame
// occupies a 40G link for exactly 16.8 ns — 59.52 Mpps per port, four
// times the 10G figure the paper demonstrates — and the MAC-level
// capture must keep up packet for packet. The host(%) column shows how
// little of that even a thinned (64 B snap) DMA path delivers, extending
// E7's loss-limited-path story to the next rate generation.
func E11Rate40G(duration sim.Duration) *stats.Table {
	return pairScalingSweep(
		"E11: 40G ports — gen→mon pairs at 40 Gb/s line rate",
		wire.Rate40G, E11PairCounts, E11FrameSizes, 0xe11, duration)
}
