// Package shard runs one scenario across several sim.Engines in
// parallel while keeping the results byte-identical to a single-engine
// run. It is a conservative-lookahead (CMB-style) parallel
// discrete-event runtime: the topology is partitioned so that every
// cross-shard wire carries a positive propagation delay, and the
// smallest such delay L is the lookahead — during the window
// [W, W + L) no shard can influence another, so all shards advance
// through the window concurrently, one goroutine per engine, and meet
// at a barrier.
//
// Cross-shard links are wire export links (wire.NewExportLink): the
// transmitting shard serialises the frame exactly as a local link
// would — same busy horizon, same counters, same propagation-delayed
// arrival instants — but instead of arming a delivery event it appends
// a record to the (src, dst) boundary channel. Frame ownership
// transfers with the export: the source shard never touches the frame
// again, so the pooled zero-alloc hot path survives the cut without
// sharing. At each barrier the coordinator drains every destination's
// channels, sorts the records by (arrival instant, delivery key,
// source shard, export sequence) — a deterministic total order,
// independent of which shard finished its window first — and schedules
// the deliveries into the destination engine with the boundary link's
// delivery key as the same-instant priority (sim.Engine.SchedulePrio).
// The topology builder gives every positive-delay link a unique key in
// build order, so simultaneous arrivals at a device fire in cable
// order — a property of the wiring, identical at every shard count —
// and a replayed arrival that collides with a local delivery at the
// exact same instant fires in the same relative order a single-engine
// run produces: equality to the last byte, not merely statistical
// equivalence. The lookahead contract makes the arrivals
// provably inside the *next* window: a frame exported at instant τ
// arrives no earlier than τ + L, so the destination — which has only
// advanced to W + L − 1 — has never run past it.
//
// Determinism therefore needs exactly two properties: every per-window
// computation is confined to one engine (the builder partitions
// devices, ledgers and statistics per shard), and every cross-window
// hand-off is replayed in the sorted order above. go test -race runs
// the whole suite over the barrier protocol.
package shard

import (
	"fmt"
	"slices"

	"osnt/internal/sim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// record is one exported frame or train crossing a shard boundary,
// buffered between the window it was transmitted in and the barrier
// that replays it.
type record struct {
	f                 *wire.Frame
	train             *wire.Train // non-nil: a coalesced run, f unused
	peer              wire.Endpoint
	firstBit, lastBit sim.Time
	// key is the boundary link's structural delivery key (wire.Exporter's
	// contract); the replay passes it through to the destination engine
	// so the delivery takes the same same-instant position a
	// single-engine run gives it.
	key uint64
	src int
	seq uint64
}

// channel buffers the records of one (src, dst) shard pair. All
// boundary links from src to dst share it; seq counts exports in src's
// event order, which breaks arrival-instant ties deterministically.
// Only shard src appends (during its window) and only the coordinator
// drains (at the barrier), so the buffer needs no lock — the barrier's
// happens-before edges carry it between goroutines.
type channel struct {
	src, dst int
	recs     []record
	seq      uint64
}

// boundary adapts one cross-shard link onto its (src, dst) channel; it
// is the wire.Exporter the export link calls from the hot path.
type boundary struct {
	ch   *channel
	peer wire.Endpoint
}

// ExportFrame implements wire.Exporter.
func (b *boundary) ExportFrame(f *wire.Frame, firstBit, lastBit sim.Time, key uint64) {
	ch := b.ch
	ch.recs = append(ch.recs, record{f: f, peer: b.peer, firstBit: firstBit, lastBit: lastBit, key: key, src: ch.src, seq: ch.seq})
	ch.seq++
}

// ExportTrain implements wire.Exporter.
func (b *boundary) ExportTrain(t *wire.Train, firstBit, lastBit sim.Time, key uint64) {
	ch := b.ch
	ch.recs = append(ch.recs, record{train: t, peer: b.peer, firstBit: firstBit, lastBit: lastBit, key: key, src: ch.src, seq: ch.seq})
	ch.seq++
}

// slot is one reusable delivery event on a destination engine: the
// barrier loads it with a record and schedules it; firing hands the
// record to the device endpoint and returns the slot to the shard's
// freelist. Steady state, boundary deliveries allocate nothing.
type slot struct {
	c   *Cluster
	dst int
	ev  *sim.Event
	rec record
}

func (s *slot) fire() {
	rec := s.rec
	s.rec = record{}
	s.c.free[s.dst] = append(s.c.free[s.dst], s)
	if rec.train != nil {
		wire.DeliverTrain(rec.peer, rec.train, rec.firstBit, rec.lastBit)
		return
	}
	rec.peer.Receive(rec.f, rec.firstBit, rec.lastBit)
}

// Cluster owns one engine per shard plus the boundary channels and the
// barrier protocol between them. Shard 0 runs on the calling goroutine;
// shards 1..n-1 each get a worker goroutine that is parked except while
// stepping a window, so between Run/RunUntil calls the caller may touch
// any engine or device directly (the barrier's channel operations order
// those accesses). A 1-shard cluster is a passthrough to the plain
// engine: no goroutines, no channels, no per-event overhead.
type Cluster struct {
	engines   []*sim.Engine
	lookahead sim.Duration // min cross-shard delay; 0 until a boundary exists
	chans     [][]*channel // [src][dst]; nil where no boundary link exists
	free      [][]*slot    // per-destination delivery-slot freelist
	inbox     []record     // barrier merge scratch, reused across windows
	now       sim.Time     // exclusive frontier: all events < now have run
	cmd       []chan sim.Time
	ack       chan any
	closed    bool
}

// NewCluster returns a cluster of n fresh engines (n ≥ 1) and starts
// the n−1 worker goroutines. Call Close when done with a multi-shard
// cluster to stop them.
func NewCluster(n int) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("shard: cluster of %d shards", n))
	}
	c := &Cluster{
		engines: make([]*sim.Engine, n),
		chans:   make([][]*channel, n),
		free:    make([][]*slot, n),
	}
	for i := range c.engines {
		c.engines[i] = sim.NewEngine()
		c.chans[i] = make([]*channel, n)
	}
	if n > 1 {
		c.ack = make(chan any, n-1)
		c.cmd = make([]chan sim.Time, n)
		for i := 1; i < n; i++ {
			c.cmd[i] = make(chan sim.Time, 1)
			go c.worker(i)
		}
	}
	return c
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.engines) }

// Engine returns shard i's engine.
func (c *Cluster) Engine(i int) *sim.Engine { return c.engines[i] }

// Engines returns the per-shard engines, indexed by shard.
func (c *Cluster) Engines() []*sim.Engine { return c.engines }

// Lookahead returns the conservative window width: the smallest
// propagation delay over all cross-shard links built so far (0 when no
// boundary exists yet).
func (c *Cluster) Lookahead() sim.Duration { return c.lookahead }

// CrossLink builds the boundary link for a cross-shard edge. It has the
// signature of topo.Partition.CrossLink, and Partition wires it there.
// The edge's propagation delay must be positive; the smallest delay
// seen across all CrossLink calls becomes the cluster's lookahead.
func (c *Cluster) CrossLink(src, dst int, e *sim.Engine, rate wire.Rate, delay sim.Duration, peer wire.Endpoint) *wire.Link {
	if delay <= 0 {
		panic(fmt.Sprintf("shard: cross-shard link %d → %d with non-positive delay %v", src, dst, delay))
	}
	ch := c.chans[src][dst]
	if ch == nil {
		ch = &channel{src: src, dst: dst}
		c.chans[src][dst] = ch
	}
	if c.lookahead == 0 || delay < c.lookahead {
		c.lookahead = delay
	}
	return wire.NewExportLink(e, rate, delay, &boundary{ch: ch, peer: peer})
}

// Partition returns the topo.Partition that instantiates a graph onto
// this cluster: shardOf maps node names to shard indices (for
// synthesized fabrics, fabric.Spec.PodShard is the natural choice).
func (c *Cluster) Partition(shardOf func(name string) int) topo.Partition {
	return topo.Partition{Engines: c.engines, ShardOf: shardOf, CrossLink: c.CrossLink}
}

// worker is the goroutine body for shards ≥ 1: step the engine to each
// commanded target, acknowledging with the recovered panic value (nil
// on success). No select — the protocol is a strict command/ack pair
// per window, so delivery order is total.
func (c *Cluster) worker(i int) {
	e := c.engines[i]
	for target := range c.cmd[i] {
		c.ack <- protect(e, target)
	}
}

// protect steps one engine to target (target < 0 means run to empty),
// converting a panic into a value so the barrier can re-raise it on the
// caller after every shard has stopped.
func protect(e *sim.Engine, target sim.Time) (p any) {
	defer func() { p = recover() }()
	if target < 0 {
		e.Run()
	} else {
		e.RunUntil(target)
	}
	return nil
}

// step advances every shard to target in parallel (shard 0 inline) and
// waits for all of them — the barrier. A panic in any shard is
// re-raised here once every shard has quiesced.
func (c *Cluster) step(target sim.Time) {
	for i := 1; i < len(c.engines); i++ {
		c.cmd[i] <- target
	}
	p := protect(c.engines[0], target)
	for i := 1; i < len(c.engines); i++ {
		if r := <-c.ack; r != nil && p == nil {
			p = r
		}
	}
	if p != nil {
		panic(p)
	}
}

// drain replays every buffered boundary record into its destination
// engine. Records for one destination merge across all source channels
// and sort by (arrival instant, delivery key, source shard, export
// sequence): a total order fixed by the simulation alone, so the
// replay — and everything downstream of it — is independent of
// goroutine scheduling. Each delivery is scheduled with its link's
// delivery key as the same-instant priority, slotting it exactly where
// the single-engine link event would fire among equal-instant locals.
// Deliveries are scheduled on reused slots; the defensive clamp to the
// destination clock mirrors wire.Link's delivery clamp and is dead code
// whenever the lookahead contract holds.
func (c *Cluster) drain() {
	for dst := range c.engines {
		recs := c.inbox[:0]
		for src := range c.engines {
			ch := c.chans[src][dst]
			if ch == nil || len(ch.recs) == 0 {
				continue
			}
			recs = append(recs, ch.recs...)
			clear(ch.recs)
			ch.recs = ch.recs[:0]
		}
		if len(recs) == 0 {
			continue
		}
		slices.SortFunc(recs, func(a, b record) int {
			switch {
			case a.lastBit != b.lastBit:
				if a.lastBit < b.lastBit {
					return -1
				}
				return 1
			case a.key != b.key:
				if a.key < b.key {
					return -1
				}
				return 1
			case a.src != b.src:
				return a.src - b.src
			case a.seq != b.seq:
				if a.seq < b.seq {
					return -1
				}
				return 1
			default:
				return 0
			}
		})
		e := c.engines[dst]
		fl := c.free[dst]
		for i := range recs {
			at := recs[i].lastBit
			if now := e.Now(); at < now {
				at = now
			}
			var s *slot
			if n := len(fl); n > 0 {
				s = fl[n-1]
				fl = fl[:n-1]
			} else {
				s = &slot{c: c, dst: dst}
			}
			s.rec = recs[i]
			if s.ev == nil {
				s.ev = e.SchedulePrio(at, recs[i].key, s.fire)
			} else {
				e.ReschedulePrio(s.ev, at, recs[i].key)
			}
		}
		c.free[dst] = fl
		clear(recs)
		c.inbox = recs[:0]
	}
}

// RunUntil executes every shard's events up to and including instant t,
// then sets all clocks to t — the sharded spelling of
// sim.Engine.RunUntil. It advances in lookahead-wide windows with a
// barrier and a boundary drain between each. On return all shards are
// parked, so the caller may read any engine or device directly.
func (c *Cluster) RunUntil(t sim.Time) {
	if len(c.engines) == 1 {
		c.engines[0].RunUntil(t)
		if end := t.Add(1); c.now < end {
			c.now = end
		}
		return
	}
	end := t.Add(1) // exclusive frontier target
	for c.now < end {
		w := end
		if c.lookahead > 0 {
			if h := c.now.Add(c.lookahead); h < w {
				w = h
			}
		}
		c.step(w.Add(-1))
		c.drain()
		c.now = w
	}
}

// Run executes events until every shard's queue is empty — the sharded
// spelling of sim.Engine.Run, used to drain in-flight traffic after the
// measurement window. Windows that contain no work are skipped, so an
// almost-empty cluster converges in a handful of barriers rather than
// one per lookahead.
func (c *Cluster) Run() {
	if len(c.engines) == 1 {
		c.engines[0].Run()
		return
	}
	if c.lookahead <= 0 {
		// No boundary links: the shards are fully independent, so one
		// unbounded parallel step empties everything.
		c.step(-1)
		return
	}
	for {
		var next sim.Time
		pending := false
		for _, e := range c.engines {
			if at, ok := e.Peek(); ok && (!pending || at < next) {
				next, pending = at, true
			}
		}
		if !pending {
			return // queues empty; drain always empties the channels
		}
		if next >= c.now {
			c.now = next // idle-skip to the next event's window
		}
		w := c.now.Add(c.lookahead)
		c.step(w.Add(-1))
		c.drain()
		c.now = w
	}
}

// RunFor executes events for a span d of virtual time from the current
// frontier.
func (c *Cluster) RunFor(d sim.Duration) {
	c.RunUntil(c.now.Add(d))
}

// Close stops the worker goroutines. The engines stay readable; only
// Run/RunUntil become invalid. Close is idempotent and a no-op on a
// 1-shard cluster.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for i := 1; i < len(c.engines); i++ {
		close(c.cmd[i])
	}
}
