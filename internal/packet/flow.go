package packet

import "fmt"

// Flow is the canonical 5-tuple of a packet plus address family, usable as
// a map key. IPv4 addresses occupy the first four bytes of the arrays.
type Flow struct {
	V6               bool
	Src, Dst         IP6
	Proto            byte
	SrcPort, DstPort uint16
}

// ExtractFlow parses just enough of an Ethernet frame to build its flow
// 5-tuple, skipping a single 802.1Q tag if present. It allocates nothing.
// ok is false for non-IP frames or truncated headers; ARP and other
// non-IP traffic simply has no 5-tuple.
func ExtractFlow(data []byte) (f Flow, ok bool) {
	if len(data) < EthernetHeaderLen {
		return f, false
	}
	et := beU16(data[12:14])
	off := EthernetHeaderLen
	if et == EtherTypeVLAN {
		if len(data) < off+VLANHeaderLen {
			return f, false
		}
		et = beU16(data[off+2 : off+4])
		off += VLANHeaderLen
	}
	switch et {
	case EtherTypeIPv4:
		if len(data) < off+IPv4MinLen {
			return f, false
		}
		ip := data[off:]
		ihl := int(ip[0]&0x0f) * 4
		if ip[0]>>4 != 4 || ihl < IPv4MinLen || len(ip) < ihl {
			return f, false
		}
		copy(f.Src[:4], ip[12:16])
		copy(f.Dst[:4], ip[16:20])
		f.Proto = ip[9]
		// Fragments with nonzero offset carry no transport header.
		if beU16(ip[6:8])&0x1fff == 0 {
			f.SrcPort, f.DstPort = transportPorts(f.Proto, ip[ihl:])
		}
		return f, true
	case EtherTypeIPv6:
		if len(data) < off+IPv6HeaderLen {
			return f, false
		}
		ip := data[off:]
		if ip[0]>>4 != 6 {
			return f, false
		}
		f.V6 = true
		copy(f.Src[:], ip[8:24])
		copy(f.Dst[:], ip[24:40])
		f.Proto = ip[6]
		f.SrcPort, f.DstPort = transportPorts(f.Proto, ip[IPv6HeaderLen:])
		return f, true
	}
	return f, false
}

func transportPorts(proto byte, l4 []byte) (src, dst uint16) {
	switch proto {
	case ProtoTCP, ProtoUDP:
		if len(l4) >= 4 {
			return beU16(l4[0:2]), beU16(l4[2:4])
		}
	}
	return 0, 0
}

// SrcIP4 returns the IPv4 source address of a v4 flow.
func (f Flow) SrcIP4() IP4 { return IP4{f.Src[0], f.Src[1], f.Src[2], f.Src[3]} }

// DstIP4 returns the IPv4 destination address of a v4 flow.
func (f Flow) DstIP4() IP4 { return IP4{f.Dst[0], f.Dst[1], f.Dst[2], f.Dst[3]} }

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow {
	f.Src, f.Dst = f.Dst, f.Src
	f.SrcPort, f.DstPort = f.DstPort, f.SrcPort
	return f
}

// String renders the flow as "src:port > dst:port/proto".
func (f Flow) String() string {
	if f.V6 {
		return fmt.Sprintf("[%s]:%d > [%s]:%d/%d", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Proto)
	}
	return fmt.Sprintf("%s:%d > %s:%d/%d", f.SrcIP4(), f.SrcPort, f.DstIP4(), f.DstPort, f.Proto)
}

// fnv-1a constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hash returns a 64-bit FNV-1a hash of the flow, suitable for
// load-balancing captured packets across rings. Different directions of
// the same conversation hash differently; see SymmetricHash.
func (f Flow) Hash() uint64 {
	h := fnvOffset
	h = fnvBytes(h, f.Src[:])
	h = fnvBytes(h, f.Dst[:])
	h = fnvByte(h, f.Proto)
	h = fnvByte(h, byte(f.SrcPort>>8))
	h = fnvByte(h, byte(f.SrcPort))
	h = fnvByte(h, byte(f.DstPort>>8))
	h = fnvByte(h, byte(f.DstPort))
	if f.V6 {
		h = fnvByte(h, 1)
	}
	return h
}

// SymmetricHash hashes both directions of a conversation to the same
// value (gopacket's FastHash property), so a load balancer keeps
// request and response on the same queue.
func (f Flow) SymmetricHash() uint64 {
	a, b := f.Hash(), f.Reverse().Hash()
	return a ^ b
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, v := range b {
		h = (h ^ uint64(v)) * fnvPrime
	}
	return h
}

func fnvByte(h uint64, v byte) uint64 { return (h ^ uint64(v)) * fnvPrime }

// HeaderDigestBytes covers exactly the L2–L4 headers of an untagged
// IPv4/UDP probe (Ethernet 14 + IPv4 20 + UDP 8). Hashing this prefix
// and no more gives one digest per flow: payload bytes — in particular
// a generator's embedded transmit timestamp, which starts right at this
// offset — differ packet by packet and would split every flow apart.
// RSS steering, ECMP spray and flow analytics all key on it.
const HeaderDigestBytes = 42

// PacketDigest returns a 64-bit FNV-1a hash over up to the first n bytes
// of the frame. The OSNT monitor's hardware hash unit uses this to let
// software match a thinned capture against the original packet.
func PacketDigest(data []byte, n int) uint64 {
	if n > len(data) || n <= 0 {
		n = len(data)
	}
	return fnvBytes(fnvOffset, data[:n])
}

// Mix64 whitens a hardware digest before a modulo spread (the RSS
// indirection step, and likewise a switch fabric's ECMP member select):
// FNV's low bits are weak on structured header input — flows differing
// only in a port number can share a low-bit residue, collapsing onto few
// buckets — so the avalanche finaliser (Murmur3's) spreads every digest
// bit into the selector.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
