package ofswitch

import (
	"testing"
	"testing/quick"

	"osnt/internal/netfpga"
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/wire"
)

func netfpgaCard(e *sim.Engine) *netfpga.Card {
	return netfpga.New(e, netfpga.Config{Ports: 1})
}

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	ipA  = packet.IP4{10, 0, 0, 1}
	ipB  = packet.IP4{10, 0, 0, 2}
)

func probe(dport uint16, size int) []byte {
	return packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 4000, DstPort: dport, FrameSize: size,
	}.Build()
}

// rig: host cards on switch ports 1 and 2 (OF numbering), controller
// attached.
type rig struct {
	e    *sim.Engine
	sw   *Switch
	ctl  *Controller
	in   *wire.Link // into switch port index 0
	rx   []sim.Time // deliveries at host behind port index 1
	rxD  [][]byte
	msgs []openflow.Message
	xids []uint32
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{e: sim.NewEngine()}
	r.sw = New(r.e, cfg)
	r.in = wire.NewLink(r.e, wire.Rate10G, 0, r.sw.Port(0))
	sink := wire.EndpointFunc(func(f *wire.Frame, _, at sim.Time) {
		r.rx = append(r.rx, at)
		r.rxD = append(r.rxD, f.Data)
	})
	r.sw.Port(1).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, sink))
	r.sw.Port(2).SetLink(wire.NewLink(r.e, wire.Rate10G, 0, nil))
	r.ctl = Connect(r.sw)
	r.ctl.OnMessage = func(m openflow.Message, xid uint32) {
		r.msgs = append(r.msgs, m)
		r.xids = append(r.xids, xid)
	}
	return r
}

// addFlow installs dport→port2 (OF port 2 = index 1) and waits for
// install.
func (r *rig) addFlow(t *testing.T, dport uint16, outPort uint16) {
	t.Helper()
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildDlType | openflow.WildNwProto | openflow.WildTpDst
	m.DlType = packet.EtherTypeIPv4
	m.NwProto = packet.ProtoUDP
	m.TpDst = dport
	r.ctl.Send(&openflow.FlowMod{
		Match: m, Command: openflow.FCAdd, Priority: 100,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: outPort}},
	}, uint32(dport))
	r.e.Run() // control latency + CPU + HW install all drain
}

func TestFlowInstallAndForward(t *testing.T) {
	r := newRig(t, Config{})
	r.addFlow(t, 80, 2)
	if r.sw.Table().Len() != 1 {
		t.Fatalf("table len %d", r.sw.Table().Len())
	}
	r.in.Transmit(wire.NewFrame(probe(80, 256)))
	r.e.Run()
	if len(r.rx) != 1 {
		t.Fatalf("delivered %d", len(r.rx))
	}
	if r.sw.Forwarded().Packets != 1 {
		t.Fatal("forwarded counter")
	}
	lookups, hits := r.sw.Table().Stats()
	if lookups != 1 || hits != 1 {
		t.Fatalf("lookup stats %d/%d", lookups, hits)
	}
}

func TestTableMissGeneratesPacketIn(t *testing.T) {
	r := newRig(t, Config{})
	r.in.Transmit(wire.NewFrame(probe(9999, 512)))
	r.e.Run()
	if r.sw.Misses() != 1 {
		t.Fatalf("misses %d", r.sw.Misses())
	}
	if len(r.msgs) != 1 {
		t.Fatalf("controller messages %d", len(r.msgs))
	}
	pin, ok := r.msgs[0].(*openflow.PacketIn)
	if !ok {
		t.Fatalf("got %T", r.msgs[0])
	}
	if pin.Reason != openflow.ReasonNoMatch || pin.InPort != 1 {
		t.Fatalf("%+v", pin)
	}
	if len(pin.Data) != 128 { // default MissSendLen
		t.Fatalf("miss data %d", len(pin.Data))
	}
	if int(pin.TotalLen) != 508 {
		t.Fatalf("total len %d", pin.TotalLen)
	}
}

func TestMissWithoutControllerDrops(t *testing.T) {
	e := sim.NewEngine()
	sw := New(e, Config{})
	in := wire.NewLink(e, wire.Rate10G, 0, sw.Port(0))
	in.Transmit(wire.NewFrame(probe(1, 64)))
	e.Run()
	if sw.DropsNoRule() != 1 {
		t.Fatalf("drops %d", sw.DropsNoRule())
	}
}

func TestBarrierOrderingAndHWLag(t *testing.T) {
	// Send FLOW_MOD then BARRIER. The barrier reply must come after the
	// flow_mod's CPU work but BEFORE the dataplane applies the rule —
	// the forwarding-consistency window.
	r := newRig(t, Config{})
	m := openflow.MatchAll()
	r.ctl.Send(&openflow.FlowMod{
		Match: m, Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}, 1)
	r.ctl.Send(&openflow.BarrierRequest{}, 2)

	var barrierAt, installedAt sim.Time
	r.ctl.OnMessage = func(msg openflow.Message, xid uint32) {
		if msg.Type() == openflow.TypeBarrierReply {
			barrierAt = r.e.Now()
		}
	}
	// Poll for dataplane visibility.
	r.e.ScheduleEvery(0, 50*sim.Microsecond, func() {
		if installedAt == 0 && r.sw.Table().Len() > 0 {
			installedAt = r.e.Now()
		}
	})
	r.e.RunUntil(20 * sim.Time(sim.Millisecond))
	if barrierAt == 0 || installedAt == 0 {
		t.Fatalf("barrier %v installed %v", barrierAt, installedAt)
	}
	if barrierAt >= installedAt {
		t.Fatalf("barrier (%v) should precede dataplane install (%v)", barrierAt, installedAt)
	}
	gap := installedAt.Sub(barrierAt)
	if gap < sim.Millisecond {
		t.Fatalf("consistency window %v, expected ≈HWInstallDelay", gap)
	}
}

func TestEchoRTT(t *testing.T) {
	r := newRig(t, Config{})
	start := r.e.Now()
	var rtt sim.Duration
	r.ctl.OnMessage = func(m openflow.Message, xid uint32) {
		if m.Type() == openflow.TypeEchoReply && xid == 42 {
			rtt = r.e.Now().Sub(start)
		}
	}
	r.ctl.Send(&openflow.EchoRequest{Data: []byte("x")}, 42)
	r.e.Run()
	// 2×100µs channel + 5µs CPU.
	want := 205 * sim.Microsecond
	if rtt != want {
		t.Fatalf("echo RTT %v, want %v", rtt, want)
	}
}

func TestFeaturesHandshake(t *testing.T) {
	r := newRig(t, Config{DatapathID: 0xabc})
	r.ctl.Send(&openflow.FeaturesRequest{}, 5)
	r.e.Run()
	if len(r.msgs) != 1 {
		t.Fatalf("messages %d", len(r.msgs))
	}
	fr, ok := r.msgs[0].(*openflow.FeaturesReply)
	if !ok || fr.DatapathID != 0xabc || len(fr.Ports) != 4 {
		t.Fatalf("%+v", r.msgs[0])
	}
	if r.xids[0] != 5 {
		t.Fatal("xid not echoed")
	}
}

func TestModifyChangesActions(t *testing.T) {
	r := newRig(t, Config{})
	r.addFlow(t, 80, 2)
	r.in.Transmit(wire.NewFrame(probe(80, 128)))
	r.e.Run()
	n := len(r.rx)

	// Redirect port 80 traffic to OF port 3 (unconnected → vanishes).
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildDlType | openflow.WildNwProto | openflow.WildTpDst
	m.DlType = packet.EtherTypeIPv4
	m.NwProto = packet.ProtoUDP
	m.TpDst = 80
	r.ctl.Send(&openflow.FlowMod{
		Match: m, Command: openflow.FCModify, Priority: 100,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 3}},
	}, 9)
	r.e.Run()
	r.in.Transmit(wire.NewFrame(probe(80, 128)))
	r.e.Run()
	if len(r.rx) != n {
		t.Fatal("modified flow still reaches old port")
	}
	if r.sw.Table().Len() != 1 {
		t.Fatalf("modify duplicated the entry: %d", r.sw.Table().Len())
	}
}

func TestDeleteRemovesAndNotifies(t *testing.T) {
	r := newRig(t, Config{})
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildTpDst
	m.TpDst = 80
	r.ctl.Send(&openflow.FlowMod{
		Match: m, Command: openflow.FCAdd, Priority: 7,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Flags:   openflow.FlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}, 1)
	r.e.Run()
	if r.sw.Table().Len() != 1 {
		t.Fatal("not installed")
	}
	// Non-strict delete with a broader match.
	r.ctl.Send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FCDelete,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
	}, 2)
	r.e.Run()
	if r.sw.Table().Len() != 0 {
		t.Fatal("delete left entries")
	}
	var removed *openflow.FlowRemoved
	for _, msg := range r.msgs {
		if fr, ok := msg.(*openflow.FlowRemoved); ok {
			removed = fr
		}
	}
	if removed == nil || removed.Reason != openflow.RemovedDelete || removed.Priority != 7 {
		t.Fatalf("flow removed %+v", removed)
	}
}

func TestPriorityOrdering(t *testing.T) {
	r := newRig(t, Config{})
	// Low-priority catch-all → port 3 (unconnected), high-priority port
	// 80 → port 2.
	r.ctl.Send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 3}},
	}, 1)
	r.addFlow(t, 80, 2)
	r.in.Transmit(wire.NewFrame(probe(80, 128)))
	r.in.Transmit(wire.NewFrame(probe(81, 128)))
	r.e.Run()
	if len(r.rx) != 1 {
		t.Fatalf("deliveries %d, want only the port-80 probe", len(r.rx))
	}
}

func TestHeaderRewriteActions(t *testing.T) {
	r := newRig(t, Config{})
	m := openflow.MatchAll()
	r.ctl.Send(&openflow.FlowMod{
		Match: m, Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionSetDlAddr{TypeCode: openflow.ActTypeSetDlDst, Addr: packet.MAC{9, 9, 9, 9, 9, 9}},
			&openflow.ActionSetNwAddr{TypeCode: openflow.ActTypeSetNwDst, Addr: packet.IP4{192, 168, 9, 9}},
			&openflow.ActionSetTpPort{TypeCode: openflow.ActTypeSetTpDst, Port: 9999},
			&openflow.ActionOutput{Port: 2},
		},
	}, 1)
	r.e.Run()
	r.in.Transmit(wire.NewFrame(probe(80, 256)))
	r.e.Run()
	if len(r.rxD) != 1 {
		t.Fatal("no delivery")
	}
	out := r.rxD[0]
	var eth packet.Ethernet
	var ip packet.IPv4
	var udp packet.UDP
	if err := eth.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != (packet.MAC{9, 9, 9, 9, 9, 9}) {
		t.Fatalf("dl_dst %v", eth.Dst)
	}
	if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
		t.Fatal(err)
	}
	if ip.Dst != (packet.IP4{192, 168, 9, 9}) {
		t.Fatalf("nw_dst %v", ip.Dst)
	}
	if !ip.VerifyChecksum(eth.Payload()) {
		t.Fatal("IP checksum broken by rewrite")
	}
	if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatal(err)
	}
	if udp.DstPort != 9999 {
		t.Fatalf("tp_dst %d", udp.DstPort)
	}
	if !udp.VerifyChecksum(ip.Payload(), ip.Src, ip.Dst) {
		t.Fatal("UDP checksum broken by rewrite")
	}
}

func TestRewriteAfterOutputDoesNotCorruptQueuedFrame(t *testing.T) {
	// A rewrite action AFTER an output must not mutate the frame already
	// handed to the egress queue: [output:2, set_dl_dst X] transmits the
	// original bytes, exactly as the clone-per-output dataplane did.
	r := newRig(t, Config{})
	r.ctl.Send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionOutput{Port: 2},
			&openflow.ActionSetDlAddr{TypeCode: openflow.ActTypeSetDlDst, Addr: packet.MAC{9, 9, 9, 9, 9, 9}},
		},
	}, 1)
	r.e.Run()
	r.in.Transmit(wire.NewFrame(probe(80, 256)))
	r.e.Run()
	if len(r.rxD) != 1 {
		t.Fatal("no delivery")
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(r.rxD[0]); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != macB {
		t.Fatalf("trailing rewrite leaked into the transmitted frame: dst %v", eth.Dst)
	}
}

func TestControllerOutputAfterPortOutput(t *testing.T) {
	// [output:2, output:CONTROLLER]: the port egress and the PACKET_IN
	// must both carry the probe's bytes — the trailing controller read
	// must not race the frame handed to (or dropped by) the egress
	// queue.
	r := newRig(t, Config{})
	r.ctl.Send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionOutput{Port: 2},
			&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 64},
		},
	}, 1)
	r.e.Run()
	want := probe(80, 256)
	r.msgs = nil
	r.in.Transmit(wire.NewFrame(want))
	r.e.Run()
	if len(r.rxD) != 1 || string(r.rxD[0]) != string(want) {
		t.Fatalf("port egress: %d deliveries", len(r.rxD))
	}
	if len(r.msgs) != 1 {
		t.Fatalf("controller messages %d", len(r.msgs))
	}
	pin, ok := r.msgs[0].(*openflow.PacketIn)
	if !ok || pin.Reason != openflow.ReasonAction {
		t.Fatalf("got %+v", r.msgs[0])
	}
	if string(pin.Data) != string(want[:64]) {
		t.Fatal("PACKET_IN prefix does not match the probe")
	}
}

func TestVlanPushRewriteStrip(t *testing.T) {
	f := wire.NewFrame(probe(80, 128))
	origSize := f.Size
	rewriteFrame(f, &openflow.ActionSetVlanVid{Vid: 42})
	if f.Size != origSize+4 {
		t.Fatalf("push: size %d", f.Size)
	}
	key, err := openflow.KeyFromPacket(f.Data, 1)
	if err != nil || key.DlVlan != 42 {
		t.Fatalf("pushed vlan key %+v err %v", key, err)
	}
	rewriteFrame(f, &openflow.ActionSetVlanVid{Vid: 100})
	if f.Size != origSize+4 {
		t.Fatal("rewrite should not grow")
	}
	key, _ = openflow.KeyFromPacket(f.Data, 1)
	if key.DlVlan != 100 {
		t.Fatalf("rewritten vid %d", key.DlVlan)
	}
	rewriteFrame(f, &openflow.ActionStripVlan{})
	if f.Size != origSize {
		t.Fatalf("strip: size %d want %d", f.Size, origSize)
	}
	key, _ = openflow.KeyFromPacket(f.Data, 1)
	if key.DlVlan != openflow.VlanNone || key.TpDst != 80 {
		t.Fatalf("stripped key %+v", key)
	}
}

func TestFloodAction(t *testing.T) {
	r := newRig(t, Config{})
	r.ctl.Send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
	}, 1)
	r.e.Run()
	r.in.Transmit(wire.NewFrame(probe(80, 64)))
	r.e.Run()
	// Flood from port index 0 reaches the sink on index 1 exactly once
	// (index 2's link has no peer, index 3 unconnected).
	if len(r.rx) != 1 {
		t.Fatalf("flood deliveries %d", len(r.rx))
	}
}

func TestPacketOutInjection(t *testing.T) {
	r := newRig(t, Config{})
	r.ctl.Send(&openflow.PacketOut{
		BufferID: 0xffffffff, InPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		Data:    probe(80, 128),
	}, 1)
	r.e.Run()
	if len(r.rx) != 1 {
		t.Fatalf("packet-out deliveries %d", len(r.rx))
	}
}

func TestStatsReplies(t *testing.T) {
	r := newRig(t, Config{})
	r.addFlow(t, 80, 2)
	r.in.Transmit(wire.NewFrame(probe(80, 256)))
	r.e.Run()

	r.msgs = nil
	r.ctl.Send(&openflow.StatsRequest{StatsType: openflow.StatsFlow,
		Flow: &openflow.FlowStatsRequest{Match: openflow.MatchAll(), OutPort: openflow.PortNone}}, 1)
	r.ctl.Send(&openflow.StatsRequest{StatsType: openflow.StatsAggregate,
		Flow: &openflow.FlowStatsRequest{Match: openflow.MatchAll(), OutPort: openflow.PortNone}}, 2)
	r.ctl.Send(&openflow.StatsRequest{StatsType: openflow.StatsPort,
		Port: &openflow.PortStatsRequest{PortNo: openflow.PortNone}}, 3)
	r.e.Run()
	if len(r.msgs) != 3 {
		t.Fatalf("stats replies %d", len(r.msgs))
	}
	flow := r.msgs[0].(*openflow.StatsReply)
	if len(flow.Flows) != 1 || flow.Flows[0].PacketCount != 1 {
		t.Fatalf("flow stats %+v", flow.Flows)
	}
	agg := r.msgs[1].(*openflow.StatsReply)
	if agg.Aggregate.FlowCount != 1 || agg.Aggregate.PacketCount != 1 {
		t.Fatalf("aggregate %+v", agg.Aggregate)
	}
	ports := r.msgs[2].(*openflow.StatsReply)
	if len(ports.Ports) != 4 {
		t.Fatalf("port stats %d", len(ports.Ports))
	}
	if ports.Ports[0].RxPackets != 1 { // OF port 1 received the probe
		t.Fatalf("port1 rx %d", ports.Ports[0].RxPackets)
	}
}

func TestHardTimeoutExpiry(t *testing.T) {
	r := newRig(t, Config{})
	m := openflow.MatchAll()
	r.ctl.Send(&openflow.FlowMod{
		Match: m, Command: openflow.FCAdd, Priority: 1, HardTimeout: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Flags:   openflow.FlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}, 1)
	r.e.RunUntil(500 * sim.Time(sim.Millisecond))
	if r.sw.Table().Len() != 1 {
		t.Fatal("entry missing before timeout")
	}
	r.e.RunUntil(3 * sim.Time(sim.Second))
	if r.sw.Table().Len() != 0 {
		t.Fatal("hard timeout did not evict")
	}
	found := false
	for _, msg := range r.msgs {
		if fr, ok := msg.(*openflow.FlowRemoved); ok && fr.Reason == openflow.RemovedHardTimeout {
			found = true
		}
	}
	if !found {
		t.Fatal("no FLOW_REMOVED(hard timeout)")
	}
}

func TestTableCapacity(t *testing.T) {
	tab := NewFlowTable(2, false)
	mk := func(p uint16) *Entry {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildTpDst
		m.TpDst = p
		return &Entry{Match: m, Priority: p}
	}
	if !tab.Add(mk(1)) || !tab.Add(mk(2)) {
		t.Fatal("adds failed")
	}
	if tab.Add(mk(3)) {
		t.Fatal("overfull add accepted")
	}
	// Replacing an existing match succeeds at capacity.
	if !tab.Add(mk(2)) {
		t.Fatal("replacement rejected")
	}
}

func TestExactFastPathEquivalence(t *testing.T) {
	// Property: for random rule sets of exact matches plus one wildcard
	// rule, the hash path and the linear path agree on every lookup.
	f := func(ports []uint16, probePort uint16) bool {
		if len(ports) > 32 {
			ports = ports[:32]
		}
		linear := NewFlowTable(0, false)
		hashed := NewFlowTable(0, true)
		for i, p := range ports {
			fr := probe(p, 96)
			key, err := openflow.KeyFromPacket(fr, 1)
			if err != nil {
				return false
			}
			e1 := &Entry{Match: openflow.MatchFromKey(key), Priority: 50, Cookie: uint64(i)}
			e2 := &Entry{Match: openflow.MatchFromKey(key), Priority: 50, Cookie: uint64(i)}
			linear.Add(e1)
			hashed.Add(e2)
		}
		wild := openflow.MatchAll()
		wild.Wildcards &^= openflow.WildTpDst
		wild.TpDst = 7777
		linear.Add(&Entry{Match: wild, Priority: 200, Cookie: 999})
		hashed.Add(&Entry{Match: wild, Priority: 200, Cookie: 999})

		key, err := openflow.KeyFromPacket(probe(probePort, 96), 1)
		if err != nil {
			return false
		}
		a := linear.Lookup(&key)
		b := hashed.Lookup(&key)
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || a.Cookie == b.Cookie
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowModCostScalesWithTable(t *testing.T) {
	// Installing into a 2000-entry table must take measurably longer
	// than into an empty one (FlowModPerEntry).
	installTime := func(prefill int) sim.Duration {
		r := newRig(t, Config{HWInstallDelay: sim.Nanosecond})
		for i := 0; i < prefill; i++ {
			m := openflow.MatchAll()
			m.Wildcards &^= openflow.WildTpDst
			m.TpDst = uint16(i + 1)
			r.sw.Table().Add(&Entry{Match: m, Priority: 10})
		}
		start := r.e.Now()
		var done sim.Time
		r.ctl.OnMessage = func(msg openflow.Message, _ uint32) {
			if msg.Type() == openflow.TypeBarrierReply {
				done = r.e.Now()
			}
		}
		m := openflow.MatchAll()
		r.ctl.Send(&openflow.FlowMod{Match: m, Command: openflow.FCAdd, Priority: 1,
			BufferID: 0xffffffff, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, 1)
		r.ctl.Send(&openflow.BarrierRequest{}, 2)
		r.e.Run()
		return done.Sub(start)
	}
	empty := installTime(0)
	full := installTime(2000)
	if full <= empty {
		t.Fatalf("install into full table (%v) not slower than empty (%v)", full, empty)
	}
}

func TestCutoverUsesTimestampClock(t *testing.T) {
	// Sanity: dataplane forwarding works with a card as the traffic
	// source, matching the OFLOPS topology.
	e := sim.NewEngine()
	sw := New(e, Config{})
	card := netfpgaCard(e)
	card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, sw.Port(0)))
	got := 0
	sink := wire.EndpointFunc(func(*wire.Frame, sim.Time, sim.Time) { got++ })
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, sink))
	ctl := Connect(sw)
	ctl.Send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FCAdd,
		Priority: 1, BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, 1)
	e.Run()
	card.Port(0).Enqueue(wire.NewFrame(probe(80, 64)))
	e.Run()
	if got != 1 {
		t.Fatalf("delivered %d", got)
	}
}

func BenchmarkLookupLinear64Rules(b *testing.B) {
	benchLookup(b, false)
}

func BenchmarkLookupExactPath64Rules(b *testing.B) {
	benchLookup(b, true)
}

func benchLookup(b *testing.B, exact bool) {
	tab := NewFlowTable(0, exact)
	for i := 0; i < 64; i++ {
		fr := probe(uint16(i+1), 96)
		key, _ := openflow.KeyFromPacket(fr, 1)
		tab.Add(&Entry{Match: openflow.MatchFromKey(key), Priority: 50})
	}
	key, _ := openflow.KeyFromPacket(probe(64, 96), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab.Lookup(&key) == nil {
			b.Fatal("miss")
		}
	}
}
