// Package experiments regenerates every quantitative claim of the paper
// (DESIGN.md's per-experiment index, E1–E8) plus the scaling sweeps the
// testbed enables beyond it (E9 multi-port, E10 tester mesh, E11 40G
// ports, E12 mixed-rate fan-in, E13 multi-DUT chain decomposition, E14
// 100G multi-queue capture, E15 oversubscribed ECMP fabric, E16 per-hop
// loss attribution, E17 per-flow analytics over merged multi-queue
// capture, E18 frame-train coalescing, E19 synthesized fat-tree
// fabrics).
// Each driver declares its rig as an internal/topo scenario
// graph, runs the workload in virtual time and returns a printable table
// whose shape can be compared against the paper; the cmd/osnt-bench
// binary and the repository-level benchmarks are thin wrappers around
// these functions. Sweep points run on the internal/runner worker pool
// (see Workers) and draw per-packet frames from a shared wire.Pool, so
// regenerating the full evaluation costs neither serial wall time nor
// per-packet garbage.
package experiments

import (
	"fmt"

	"osnt/internal/core"
	"osnt/internal/gen"
	"osnt/internal/hostnic"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/oflops"
	"osnt/internal/ofswitch"
	"osnt/internal/packet"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/timing"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// FrameSizes is the standard RFC 2544 sweep used across experiments.
var FrameSizes = []int{64, 128, 256, 512, 1024, 1280, 1518}

// Workers is the sweep parallelism every experiment driver uses: 0 means
// GOMAXPROCS, 1 forces the serial reference. Every sweep point is an
// independent engine with its own seeds and the runner merges rows in
// canonical order, so tables are byte-identical at any setting.
var Workers int

// TrainCap, when non-zero, overrides the generator frame-train cap of
// the experiments that batch (E14 and the steering/merge micro-
// benchmarks): 1 forces the per-frame reference path, higher values
// deepen the coalescing. Tables are byte-identical at any setting —
// trains only coalesce simulator bookkeeping, never frame timing — so
// the override exists to measure host-side cost, not to change results.
// E18 sweeps caps explicitly and ignores it.
var TrainCap int

// trainCap returns the effective frame-train cap: the TrainCap override
// if set, else the experiment's own default.
func trainCap(def int) int {
	if TrainCap > 0 {
		return TrainCap
	}
	return def
}

func sweeper() *runner.Runner { return runner.New(Workers) }

// osntPorts and sinkNames are preformatted topology references: tight
// sweeps build one scenario graph per point and must not pay a
// fmt.Sprintf per port on top of it.
var (
	osntPorts [16]string
	sinkNames [4]string
)

func init() {
	for i := range osntPorts {
		osntPorts[i] = fmt.Sprintf("osnt:%d", i)
	}
	for i := range sinkNames {
		sinkNames[i] = fmt.Sprintf("sink%d", i)
	}
}

// idealCapture is the monitor configuration for sweeps that measure the
// DUT rather than the capture path (cf. core.ThroughputTest): one
// capture queue with an effectively infinite ring drained at zero cost,
// thinned to 64 B (the embedded timestamp at offset 42..50 survives), so
// every MAC-captured frame reaches the sink. E12 and E13 share it;
// changing the idealisation recipe in one place keeps their figures
// comparable.
func idealCapture(sink func(mon.Record)) mon.Config {
	return mon.Config{
		Queues: []mon.QueueConfig{{
			RingSize:      1 << 20,
			HostPerPacket: sim.Picosecond,
			HostPerByte:   -1,
		}},
		SnapLen:        64,
		RecycleRecords: true,
		Sink:           sink,
	}
}

var probeSpec = packet.UDPSpec{
	SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
	DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

// E1LineRate verifies "full line-rate traffic generation regardless of
// packet size across the four card ports": CBR at 100% offered load on
// 1–4 ports for the standard frame-size sweep, reporting achieved vs
// theoretical rate.
func E1LineRate(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E1: line-rate generation vs frame size (offered 100%)",
		Columns: []string{"frame(B)", "ports", "theoretical(Mpps)", "achieved(Mpps)", "rate(Gb/s)", "ok"},
	}
	portCounts := []int{1, 4}
	tbl.Rows = sweeper().Rows(len(FrameSizes)*len(portCounts), func(i int) [][]string {
		fs := FrameSizes[i/len(portCounts)]
		nports := portCounts[i%len(portCounts)]
		e := sim.NewEngine()
		b := topo.New().Tester("osnt", netfpga.Config{})
		for p := 0; p < nports; p++ {
			b.Sink(sinkNames[p]).Link(osntPorts[p], sinkNames[p])
		}
		t := b.MustBuild(e)
		gens := make([]*gen.Generator, 0, nports)
		for p := 0; p < nports; p++ {
			spec := probeSpec
			spec.SrcPort = uint16(5000 + p)
			g, err := gen.New(t.Port(osntPorts[p]), gen.Config{
				Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: fs},
				Spacing: gen.CBRForLoad(fs, wire.Rate10G, 1.0),
				Pool:    wire.DefaultPool,
			})
			if err != nil {
				panic(err)
			}
			g.Start(0)
			gens = append(gens, g)
		}
		e.RunUntil(sim.Time(duration))
		for _, g := range gens {
			g.Stop()
		}
		var total uint64
		for p := 0; p < nports; p++ {
			total += t.Sink(sinkNames[p]).Received().Packets
		}
		perPort := float64(total) / float64(nports) / duration.Seconds()
		theo := wire.MaxPPS(fs, wire.Rate10G)
		gbps := perPort * float64(wire.WireBytes(fs)) * 8 / 1e9
		ok := perPort > theo*0.999
		return [][]string{{
			fmt.Sprintf("%d", fs),
			fmt.Sprintf("%d", nports),
			fmt.Sprintf("%.3f", theo/1e6),
			fmt.Sprintf("%.3f", perPort/1e6),
			fmt.Sprintf("%.3f", gbps),
			fmt.Sprintf("%v", ok),
		}}
	})
	return tbl
}

// E2ClockDiscipline reproduces "sub-µsec time precision ... corrected
// using an external GPS device": absolute clock error over time for a
// free-running ±50 ppm oscillator vs the same oscillator under the PPS
// servo.
func E2ClockDiscipline(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 120 * sim.Second
	}
	tbl := &stats.Table{
		Title:   "E2: clock error — free-running vs GPS-disciplined (50ppm oscillator)",
		Columns: []string{"t(s)", "free-running(µs)", "disciplined(µs)"},
	}
	e := sim.NewEngine()
	free := timing.NewOscillator(50, 0.01, 100*sim.Millisecond, 21)
	free.DeviceTimeAt(0)
	disc := timing.NewOscillator(50, 0.01, 100*sim.Millisecond, 22)
	disc.DeviceTimeAt(0)
	servo := timing.NewDiscipline(disc)
	servo.Start(e)

	// Sample half a second past each checkpoint: mid-second is where the
	// disciplined clock's residual frequency error has accumulated the
	// longest since the last PPS correction, making it the honest (worst
	// within a second) figure.
	step := sim.Duration(duration / 8)
	for i := 1; i <= 8; i++ {
		target := sim.After(step*sim.Duration(i) + 500*sim.Millisecond)
		e.RunUntil(target)
		now := e.Now()
		freeErr := absDur(free.DeviceTimeAt(now).Sub(now))
		discErr := absDur(disc.DeviceTimeAt(now).Sub(now))
		tbl.AddRow(
			fmt.Sprintf("%.1f", now.Seconds()),
			fmt.Sprintf("%.3f", freeErr.Seconds()*1e6),
			fmt.Sprintf("%.3f", discErr.Seconds()*1e6),
		)
	}
	return tbl
}

func absDur(d sim.Duration) sim.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// E3Topology builds the Demo Part I rig: OSNT port 0 → legacy switch →
// OSNT port 1, with station MACs pre-learned, returning the device.
func E3Topology(e *sim.Engine, swCfg switchsim.Config) (*core.Device, *switchsim.Switch) {
	t := topo.New().
		Tester("osnt", netfpga.Config{}).
		DUT("sw", swCfg).
		Link("osnt:0", "sw:0").
		Duplex("sw:1", "osnt:1").
		MustBuild(e)
	dev, sw := t.Tester("osnt"), t.DUT("sw")
	// Teach the switch the capture-side station with a real warm-up frame
	// (the paper's rig does the same; the generator-side station is
	// learned from the first probe).
	teach := probeSpec
	teach.SrcMAC, teach.DstMAC = probeSpec.DstMAC, probeSpec.SrcMAC
	teach.FrameSize = 64
	dev.Card.Port(1).Enqueue(wire.NewFrame(teach.Build()))
	e.Run()
	return dev, sw
}

// E3SwitchLatency is Demo Part I: "accurately measure the packet-
// processing latency of a legacy switch under different load conditions".
// Poisson traffic sweeps offered load; latency comes from embedded TX
// timestamps vs MAC RX timestamps.
func E3SwitchLatency(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 20 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E3: legacy switch latency vs offered load (512B Poisson, store-and-forward DUT)",
		Columns: []string{"load(%)", "mean(µs)", "p50(µs)", "p99(µs)", "max(µs)", "loss(%)"},
	}
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 1.0}
	tbl.Rows = sweeper().Rows(len(loads), func(i int) [][]string {
		load := loads[i]
		e := sim.NewEngine()
		dev, _ := E3Topology(e, switchsim.Config{
			LookupPerByte: sim.Picoseconds(820), // capacity just below line rate
			LookupJitter:  0.5,
			Seed:          31,
		})
		slot := wire.SerializationTime(512, wire.Rate10G)
		res, err := (&core.LatencyTest{
			Device: dev, TxPort: 0, RxPort: 1, Spec: probeSpec,
			FrameSize: 512, Load: load,
			Spacing:  gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
			Duration: duration, Seed: 77,
		}).Run()
		if err != nil {
			panic(err)
		}
		h := res.Latency
		return [][]string{{
			fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%.2f", h.Mean()/1e6),
			fmt.Sprintf("%.2f", float64(h.Percentile(50))/1e6),
			fmt.Sprintf("%.2f", float64(h.Percentile(99))/1e6),
			fmt.Sprintf("%.2f", float64(h.Max())/1e6),
			fmt.Sprintf("%.2f", res.LossFraction()*100),
		}}
	})
	return tbl
}

// E4FlowModLatency is Demo Part II's headline: control-plane vs
// data-plane flow-table update latency as the batch size grows.
func E4FlowModLatency() *stats.Table {
	tbl := &stats.Table{
		Title:   "E4: flow_mod batch latency — control plane (barrier) vs data plane (first packet)",
		Columns: []string{"batch", "control(ms)", "data p50(ms)", "data max(ms)", "confirmed"},
	}
	// Largest batch first: it dominates the sweep's serial cost, so the
	// worker pool starts the long pole immediately.
	batches := []int{512, 128, 32, 8, 1}
	rows := sweeper().Rows(len(batches), func(i int) [][]string {
		n := batches[i]
		r := oflops.NewRunner(oflops.Config{Timeout: 10 * sim.Second})
		m := &oflops.FlowInsertLatency{Rules: n}
		if err := r.Run(m); err != nil {
			panic(err)
		}
		h, seen := m.DataLatencies()
		return [][]string{{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", m.ControlLatency().Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(h.Percentile(50))/1e9),
			fmt.Sprintf("%.3f", float64(h.Max())/1e9),
			fmt.Sprintf("%d/%d", seen, n),
		}}
	})
	// Present in ascending batch order, as the paper's figure does.
	for i := len(rows) - 1; i >= 0; i-- {
		tbl.Rows = append(tbl.Rows, rows[i])
	}
	return tbl
}

// E5Consistency is Demo Part II's closing observation: forwarding
// consistency during large flow-table updates.
func E5Consistency() *stats.Table {
	tbl := &stats.Table{
		Title:   "E5: forwarding consistency during table updates (old-marker packets after barrier)",
		Columns: []string{"rules", "hw-lag", "old-after-barrier", "window(ms)", "old-pkts", "new-pkts"},
	}
	ruleCounts := []int{64, 256, 512}
	lags := []sim.Duration{sim.Nanosecond, 1500 * sim.Microsecond}
	tbl.Rows = sweeper().Rows(len(ruleCounts)*len(lags), func(i int) [][]string {
		n := ruleCounts[i/len(lags)]
		lag := lags[i%len(lags)]
		r := oflops.NewRunner(oflops.Config{
			Timeout: 20 * sim.Second,
			Switch:  ofswitch.Config{HWInstallDelay: lag},
		})
		m := &oflops.ForwardingConsistency{Rules: n}
		if err := r.Run(m); err != nil {
			panic(err)
		}
		res := m.Result()
		lagName := "none"
		if lag > sim.Microsecond {
			lagName = lag.String()
		}
		return [][]string{{
			fmt.Sprintf("%d", n),
			lagName,
			fmt.Sprintf("%d", res.OldAfterBarrier),
			fmt.Sprintf("%.3f", res.TransitionWindow.Seconds()*1e3),
			fmt.Sprintf("%d", res.OldTotal),
			fmt.Sprintf("%d", res.NewTotal),
		}}
	})
	return tbl
}

// E6TimestampNoise quantifies the motivation for MAC-level timestamping:
// the same traffic timestamped by OSNT hardware (6.25 ns quantisation)
// vs a software stack with coalescing and scheduling jitter.
func E6TimestampNoise(packets int) *stats.Table {
	if packets == 0 {
		packets = 2000
	}
	tbl := &stats.Table{
		Title:   "E6: timestamp error vs true arrival — OSNT hardware vs software stack",
		Columns: []string{"method", "mean", "p99", "max"},
	}

	// Hardware: card RX timestamps vs ground truth.
	{
		e := sim.NewEngine()
		card := netfpga.New(e, netfpga.Config{})
		h := stats.NewHistogram()
		card.Port(0).OnReceive = func(f *wire.Frame, at sim.Time, ts timing.Timestamp) {
			h.Record(int64(at.Sub(ts.Sim())))
		}
		l := wire.NewLink(e, wire.Rate10G, 0, card.Port(0))
		feedProbes(e, l, packets)
		e.Run()
		tbl.AddRow("OSNT (MAC timestamp)", fmtDur(h.Mean()), fmtDur(float64(h.Percentile(99))), fmtDur(float64(h.Max())))
	}

	// Software: hostnic path.
	{
		e := sim.NewEngine()
		h := stats.NewHistogram()
		nic := hostnic.New(e, hostnic.Config{Seed: 6, Sink: func(_ []byte, sw, at sim.Time) {
			h.Record(int64(sw.Sub(at)))
		}})
		l := wire.NewLink(e, wire.Rate10G, 0, nic)
		feedProbes(e, l, packets)
		e.Run()
		tbl.AddRow("software stack", fmtDur(h.Mean()), fmtDur(float64(h.Percentile(99))), fmtDur(float64(h.Max())))
	}
	return tbl
}

func feedProbes(e *sim.Engine, l *wire.Link, n int) {
	spec := probeSpec
	spec.FrameSize = 256
	data := spec.Build()
	rnd := sim.NewRand(99)
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at = at.Add(sim.Duration(rnd.Intn(int(20 * sim.Microsecond))))
		e.Schedule(at, func() { l.Transmit(wire.NewFrame(data)) })
	}
}

func fmtDur(ps float64) string {
	return sim.Duration(ps).String()
}

// E7CapturePath reproduces the loss-limited capture path behaviour:
// capture loss vs offered rate, with thinning and filtering as the
// hardware remedies.
func E7CapturePath(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 5 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E7: capture-path loss vs offered load (1518B frames)",
		Columns: []string{"load(%)", "pipeline", "captured", "ring-drops", "loss(%)"},
	}
	type pipeline struct {
		name string
		cfg  mon.Config
	}
	pipes := []pipeline{
		{"full packets", mon.Config{Queues: []mon.QueueConfig{{RingSize: 128}}}},
		{"thin 64B", mon.Config{Queues: []mon.QueueConfig{{RingSize: 128}}, SnapLen: 64}},
	}
	loads := []float64{0.2, 0.5, 0.8, 1.0}
	tbl.Rows = sweeper().Rows(len(loads)*len(pipes), func(i int) [][]string {
		load := loads[i/len(pipes)]
		p := pipes[i%len(pipes)]
		e := sim.NewEngine()
		t := topo.New().
			Tester("tx", netfpga.Config{}).
			Tester("rx", netfpga.Config{}).
			Link("tx:0", "rx:0").
			MustBuild(e)
		monitor := t.AttachMonitor("rx:0", p.cfg)
		g, err := gen.New(t.Port("tx:0"), gen.Config{
			Source:  &gen.UDPFlowSource{Spec: probeSpec, FrameSize: 1518},
			Spacing: gen.CBRForLoad(1518, wire.Rate10G, load),
			Pool:    wire.DefaultPool,
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		e.RunUntil(sim.Time(duration))
		g.Stop()
		e.Run()
		return [][]string{{
			fmt.Sprintf("%.0f", load*100),
			p.name,
			fmt.Sprintf("%d", monitor.Delivered().Packets),
			fmt.Sprintf("%d", monitor.RingDrops()),
			fmt.Sprintf("%.1f", monitor.LossFraction()*100),
		}}
	})
	return tbl
}

// E8ControlUnderLoad measures control-channel responsiveness (echo RTT)
// while the dataplane load sweeps, on a switch whose management CPU pays
// a per-packet tax.
func E8ControlUnderLoad() *stats.Table {
	tbl := &stats.Table{
		Title:   "E8: OpenFlow echo RTT vs dataplane load (CPU-coupled switch)",
		Columns: []string{"load(%)", "rtt mean(µs)", "rtt p99(µs)", "rtt max(µs)"},
	}
	loads := []float64{0, 0.25, 0.5, 0.75, 0.9}
	tbl.Rows = sweeper().Rows(len(loads), func(i int) [][]string {
		load := loads[i]
		r := oflops.NewRunner(oflops.Config{
			Timeout: 10 * sim.Second,
			Switch:  ofswitch.Config{DataplaneCPUTax: 150 * sim.Nanosecond},
		})
		m := &oflops.EchoUnderLoad{Load: load, Echoes: 15}
		if err := r.Run(m); err != nil {
			panic(err)
		}
		h := m.RTTs()
		return [][]string{{
			fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%.1f", h.Mean()/1e6),
			fmt.Sprintf("%.1f", float64(h.Percentile(99))/1e6),
			fmt.Sprintf("%.1f", float64(h.Max())/1e6),
		}}
	})
	return tbl
}

// All runs every experiment with default parameters, in paper order.
func All() []*stats.Table {
	return []*stats.Table{
		E1LineRate(0),
		E2ClockDiscipline(0),
		E3SwitchLatency(0),
		E4FlowModLatency(),
		E5Consistency(),
		E6TimestampNoise(0),
		E7CapturePath(0),
		E8ControlUnderLoad(),
		E9PortScaling(0),
		E10TesterMesh(0),
		E11Rate40G(0),
		E12MixedRateFanIn(0),
		E13MultiDUTChain(0),
		E14Capture100G(0),
		E15Oversubscribed(0),
		E16LossAttribution(0),
		E17FlowAnalytics(0),
		E18TrainSpeedup(0),
		E19FatTree(0),
		E20ShardedFabric(0),
	}
}
