// Package sim provides the discrete-event simulation engine that stands in
// for the NetFPGA-10G hardware substrate of OSNT.
//
// All OSNT components (MACs, timestamp units, DMA engines, switches under
// test) advance a shared virtual clock with picosecond resolution. Because
// time is virtual, a 10 Gb/s data path can be modelled exactly: no garbage
// collection pause or scheduler hiccup can distort a measurement, and every
// run is deterministic and repeatable.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, measured in integer picoseconds from
// the start of the simulation. At 10 Gb/s one bit lasts 100 ps and one byte
// 800 ps, so picoseconds represent every event on the wire exactly.
// The int64 range covers about 106 days of virtual time.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations, expressed in picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Epoch is the simulation start instant, t = 0.
const Epoch Time = 0

// After returns the instant d past the simulation epoch — the sanctioned
// conversion from a duration-since-start to an instant (rather than raw
// arithmetic mixing Time and Duration representations).
func After(d Duration) Time { return Epoch.Add(d) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Truncate rounds t down to the previous multiple of d — the start of the
// enclosing whole second, timestamp-counter grid cell, etc. Non-positive d
// returns t unchanged.
func (t Time) Truncate(d Duration) Time {
	if d <= 0 {
		return t
	}
	return t - t%Time(d)
}

// Picoseconds returns t as an integer count of picoseconds.
func (t Time) Picoseconds() int64 { return int64(t) }

// Nanoseconds returns t rounded down to nanoseconds.
func (t Time) Nanoseconds() int64 { return int64(t) / int64(Nanosecond) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a time.Duration from the simulation epoch, saturating
// instead of overflowing (time.Duration has nanosecond resolution, so the
// conversion is always in range for valid Times).
func (t Time) Std() time.Duration { return time.Duration(t.Nanoseconds()) * time.Nanosecond }

// String formats t with an adaptive unit, e.g. "1.5µs" or "2.000s".
func (t Time) String() string { return Duration(t).String() }

// Picoseconds returns d as an integer count of picoseconds.
func (d Duration) Picoseconds() int64 { return int64(d) }

// Nanoseconds returns d in nanoseconds, truncated toward zero.
func (d Duration) Nanoseconds() int64 { return int64(d) / int64(Nanosecond) }

// Microseconds returns d in microseconds, truncated toward zero.
func (d Duration) Microseconds() int64 { return int64(d) / int64(Microsecond) }

// Seconds returns d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration (nanosecond resolution).
func (d Duration) Std() time.Duration { return time.Duration(d.Nanoseconds()) * time.Nanosecond }

// DurationOf converts a standard library duration into a simulation
// Duration.
func DurationOf(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Picoseconds builds a Duration from an integer picosecond count.
func Picoseconds(ps int64) Duration { return Duration(ps) }

// Nanoseconds builds a Duration from an integer nanosecond count.
func Nanoseconds(ns int64) Duration { return Duration(ns) * Nanosecond }

// Microseconds builds a Duration from an integer microsecond count.
func Microseconds(us int64) Duration { return Duration(us) * Microsecond }

// Milliseconds builds a Duration from an integer millisecond count.
func Milliseconds(ms int64) Duration { return Duration(ms) * Millisecond }

// Seconds builds a Duration from floating-point seconds. Fractions below
// one picosecond are truncated.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// String formats d with an adaptive unit.
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%s%dps", neg, int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%s%.3gns", neg, float64(d)/float64(Nanosecond))
	case d < Millisecond:
		return fmt.Sprintf("%s%.4gµs", neg, float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%s%.4gms", neg, float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.4gs", neg, float64(d)/float64(Second))
	}
}
