package runner

import (
	"fmt"
	"sync/atomic"
	"testing"

	"osnt/internal/sim"
)

func TestSweepCanonicalOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		r := New(workers)
		got := Sweep(r, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d point %d: got %d", workers, i, v)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	if got := Sweep(New(4), 0, func(i int) int { t.Fatal("called"); return 0 }); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSweepRunsEveryPointOnce(t *testing.T) {
	var calls [64]atomic.Int32
	Sweep(New(8), len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("point %d ran %d times", i, n)
		}
	}
}

// Each point owns an independent engine; identical seeds must give
// identical results at any worker count.
func TestSweepEnginePerPointDeterminism(t *testing.T) {
	run := func(workers int) []uint64 {
		return Sweep(New(workers), 16, func(i int) uint64 {
			e := sim.NewEngine()
			rnd := sim.NewRand(PointSeed(42, i))
			var acc uint64
			var tick func()
			tick = func() {
				acc = acc*31 + rnd.Uint64()%1000
				if e.Fired() < 500 {
					e.ScheduleAfter(sim.Duration(1+rnd.Intn(100)), tick)
				}
			}
			e.Schedule(0, tick)
			e.Run()
			return acc
		})
	}
	serial := run(1)
	for _, w := range []int{2, 4, 13} {
		if got := run(w); fmt.Sprint(got) != fmt.Sprint(serial) {
			t.Fatalf("workers=%d diverged:\n%v\n%v", w, got, serial)
		}
	}
}

func TestRowsConcatenatesInPointOrder(t *testing.T) {
	rows := New(4).Rows(10, func(i int) [][]string {
		if i%3 == 0 {
			return nil // points may contribute no rows
		}
		return [][]string{{fmt.Sprint(i), "a"}, {fmt.Sprint(i), "b"}}
	})
	var want [][]string
	for i := 0; i < 10; i++ {
		if i%3 == 0 {
			continue
		}
		want = append(want, []string{fmt.Sprint(i), "a"}, []string{fmt.Sprint(i), "b"})
	}
	if fmt.Sprint(rows) != fmt.Sprint(want) {
		t.Fatalf("rows:\n%v\nwant:\n%v", rows, want)
	}
}

func TestSweepPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Sweep(New(4), 8, func(i int) int {
		if i == 5 {
			panic("boom")
		}
		return i
	})
}

func TestPointSeedSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := PointSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at point %d", i)
		}
		seen[s] = true
	}
	if PointSeed(7, 3) != PointSeed(7, 3) {
		t.Fatal("not reproducible")
	}
}
