// Package integration_test exercises whole-system paths that no single
// module owns: capture → pcap → replay fidelity, latency measurement
// across two cards with independently drifting GPS-disciplined clocks,
// and OSNT measuring the OpenFlow switch through the full Figure 2 stack.
package integration_test

import (
	"bytes"
	"testing"

	"osnt/internal/core"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/ofswitch"
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/pcap"
	"osnt/internal/sim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

var spec = packet.UDPSpec{
	SrcMAC:  packet.MAC{2, 0, 0, 0, 0, 1},
	DstMAC:  packet.MAC{2, 0, 0, 0, 0, 2},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

// TestCaptureReplayRoundTrip drives synthetic traffic into a monitor,
// writes the capture as a nanosecond pcap, replays that file through a
// fresh card preserving recorded gaps, and checks the replayed stream
// matches the original in bytes and spacing.
func TestCaptureReplayRoundTrip(t *testing.T) {
	// Phase 1: generate and capture.
	e1 := sim.NewEngine()
	tx := netfpga.New(e1, netfpga.Config{})
	rx := netfpga.New(e1, netfpga.Config{})
	tx.Port(0).SetLink(wire.NewLink(e1, wire.Rate10G, 0, rx.Port(0)))
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var captured int
	mon.Attach(rx.Port(0), mon.Config{Sink: func(rec mon.Record) {
		captured++
		if err := w.Write(pcap.Record{
			TS: rec.TS.Sim(), Data: rec.Data, OrigLen: rec.WireSize - wire.FCSLen,
		}); err != nil {
			t.Fatal(err)
		}
	}})
	g, err := gen.New(tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, NumFlows: 3, FrameSize: 256},
		Spacing: gen.Poisson{Mean: 30 * sim.Microsecond},
		Count:   200,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e1.Run()
	if captured != 200 {
		t.Fatalf("captured %d", captured)
	}

	// Phase 2: replay the capture through a fresh topology.
	recs, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e2 := sim.NewEngine()
	tx2 := netfpga.New(e2, netfpga.Config{})
	var replayed [][]byte
	var times []sim.Time
	tx2.Port(0).SetLink(wire.NewLink(e2, wire.Rate10G, 0,
		wire.EndpointFunc(func(f *wire.Frame, _, at sim.Time) {
			replayed = append(replayed, f.Data)
			times = append(times, at)
		})))
	g2, err := gen.New(tx2.Port(0), gen.Config{
		Source:  &gen.PCAPSource{Records: recs},
		Spacing: &gen.RecordedSpacing{Records: recs},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2.Start(0)
	e2.Run()

	if len(replayed) != 200 {
		t.Fatalf("replayed %d", len(replayed))
	}
	for i := range replayed {
		if !bytes.Equal(replayed[i], recs[i].Data) {
			t.Fatalf("packet %d bytes differ after round trip", i)
		}
	}
	// Replay preserves recorded inter-departure gaps to nanosecond pcap
	// resolution (MAC serialisation may stretch gaps shorter than a slot;
	// Poisson@30µs means none are).
	for i := 2; i < len(times); i++ {
		wantGap := recs[i].TS.Sub(recs[i-1].TS)
		gotGap := times[i].Sub(times[i-1])
		diff := gotGap - wantGap
		if diff < -sim.Microsecond || diff > sim.Microsecond {
			t.Fatalf("gap %d: got %v want %v", i, gotGap, wantGap)
		}
	}
}

// TestCrossCardLatencyWithDisciplinedClocks measures one-way latency
// between two cards whose oscillators drift independently. Undisciplined,
// the measurement is garbage within seconds; with both clocks under GPS
// discipline the error stays sub-microsecond — the reason OSNT ships a
// GPS input.
func TestCrossCardLatencyWithDisciplinedClocks(t *testing.T) {
	run := func(discipline bool) sim.Duration {
		e := sim.NewEngine()
		oscTx := timing.NewOscillator(40, 0.01, 100*sim.Millisecond, 1)
		oscTx.DeviceTimeAt(0)
		oscRx := timing.NewOscillator(-35, 0.01, 100*sim.Millisecond, 2)
		oscRx.DeviceTimeAt(0)
		var txClock, rxClock timing.Clock
		if discipline {
			timing.NewDiscipline(oscTx).Start(e)
			timing.NewDiscipline(oscRx).Start(e)
			txClock = &timing.DisciplinedClock{Osc: oscTx}
			rxClock = &timing.DisciplinedClock{Osc: oscRx}
		} else {
			txClock = &timing.FreeClock{Osc: oscTx}
			rxClock = &timing.FreeClock{Osc: oscRx}
		}
		txCard := netfpga.New(e, netfpga.Config{Clock: txClock})
		rxCard := netfpga.New(e, netfpga.Config{Clock: rxClock})
		const trueDelay = 5 * sim.Microsecond
		txCard.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, trueDelay, rxCard.Port(0)))

		// Let the servos converge before measuring.
		e.RunUntil(60 * sim.Time(sim.Second))

		var measured sim.Duration
		var n int
		rxCard.Port(0).OnReceive = func(f *wire.Frame, _ sim.Time, ts timing.Timestamp) {
			if txTS, ok := gen.ExtractTimestamp(f.Data, gen.DefaultTimestampOffset); ok {
				measured += ts.Sub(txTS)
				n++
			}
		}
		g, err := gen.New(txCard.Port(0), gen.Config{
			Source:         &gen.UDPFlowSource{Spec: spec, FrameSize: 128},
			Spacing:        gen.CBR{Interval: 100 * sim.Microsecond},
			Count:          100,
			EmbedTimestamp: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(e.Now())
		e.RunUntil(e.Now() + 20*sim.Time(sim.Millisecond))
		if n == 0 {
			t.Fatal("no samples")
		}
		mean := measured / sim.Duration(n)
		wireTime := wire.SerializationTime(128, wire.Rate10G)
		truth := trueDelay + wireTime
		err2 := mean - truth
		if err2 < 0 {
			err2 = -err2
		}
		return err2
	}
	free := run(false)
	disc := run(true)
	// 75 ppm relative drift over 60 s ≈ 4.5 ms of clock offset: one-way
	// delay measurement is meaningless without discipline.
	if free < sim.Millisecond {
		t.Fatalf("free-running cross-card error %v, expected ms-scale", free)
	}
	if disc > 2*sim.Microsecond {
		t.Fatalf("disciplined cross-card error %v, want sub-µs-ish", disc)
	}
}

// TestOSNTMeasuresOpenFlowSwitchDataplane runs the core LatencyTest
// through the OpenFlow switch (instead of the legacy one), with the
// forwarding rule installed over the real control channel.
func TestOSNTMeasuresOpenFlowSwitchDataplane(t *testing.T) {
	e := sim.NewEngine()
	dev := core.NewDevice(e, netfpga.Config{})
	sw := ofswitch.New(e, ofswitch.Config{})
	dev.Card.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, sw.Port(0)))
	sw.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, dev.Card.Port(1)))
	dev.Card.Port(1).SetLink(wire.NewLink(e, wire.Rate10G, 0, sw.Port(1)))
	ctl := ofswitch.Connect(sw)

	// Install "everything → OF port 2" over the wire protocol.
	ctl.Send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FCAdd, Priority: 1,
		BufferID: 0xffffffff, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}, 1)
	e.Run() // control latency + CPU + HW install

	res, err := (&core.LatencyTest{
		Device: dev, TxPort: 0, RxPort: 1,
		Spec: spec, FrameSize: 256, Load: 0.05,
		Duration: 5 * sim.Millisecond,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RxPackets == 0 || res.Lost() != 0 {
		t.Fatalf("rx=%d lost=%d", res.RxPackets, res.Lost())
	}
	// Latency ≈ serialisation + 600ns pipeline + serialisation.
	ser := wire.SerializationTime(256, wire.Rate10G)
	want := int64(2*ser + 600*sim.Nanosecond)
	mean := int64(res.Latency.Mean())
	if d := mean - want; d < -13000 || d > 13000 {
		t.Fatalf("latency %d ps, want ≈%d ps", mean, want)
	}
}

// TestFourPortBidirectionalSaturation wires two cards back to back on all
// four ports and saturates every direction simultaneously: 8×10G of
// aggregate virtual traffic with zero loss and exact line rate each way.
func TestFourPortBidirectionalSaturation(t *testing.T) {
	e := sim.NewEngine()
	a := netfpga.New(e, netfpga.Config{})
	b := netfpga.New(e, netfpga.Config{})
	counts := make([]uint64, 8)
	var gens []*gen.Generator
	for p := 0; p < 4; p++ {
		p := p
		ab, ba := wire.Connect(e, wire.Rate10G, 0, a.Port(p), b.Port(p))
		a.Port(p).SetLink(ab)
		b.Port(p).SetLink(ba)
		a.Port(p).OnReceive = func(*wire.Frame, sim.Time, timing.Timestamp) { counts[p]++ }
		b.Port(p).OnReceive = func(*wire.Frame, sim.Time, timing.Timestamp) { counts[4+p]++ }
		for _, card := range []*netfpga.Card{a, b} {
			g, err := gen.New(card.Port(p), gen.Config{
				Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: 512},
				Spacing: gen.CBRForLoad(512, wire.Rate10G, 1.0),
			})
			if err != nil {
				t.Fatal(err)
			}
			g.Start(0)
			gens = append(gens, g)
		}
	}
	e.RunUntil(sim.Time(sim.Millisecond))
	for _, g := range gens {
		g.Stop()
	}
	want := uint64(wire.MaxPPS(512, wire.Rate10G) / 1000) // per ms
	for i, c := range counts {
		if c < want-2 || c > want+2 {
			t.Fatalf("direction %d delivered %d, want ≈%d", i, c, want)
		}
	}
	for _, g := range gens {
		if g.Dropped() != 0 {
			t.Fatal("drops at exactly line rate")
		}
	}
}

// TestMonitorPcapChainMatchesGeneratorCounts pushes IMIX traffic through
// monitor thinning into a pcap and confirms OrigLen survives thinning
// while capture bytes shrink.
func TestMonitorPcapChainMatchesGeneratorCounts(t *testing.T) {
	e := sim.NewEngine()
	tx := netfpga.New(e, netfpga.Config{})
	rx := netfpga.New(e, netfpga.Config{})
	tx.Port(0).SetLink(wire.NewLink(e, wire.Rate10G, 0, rx.Port(0)))
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf, 0, true)
	mon.Attach(rx.Port(0), mon.Config{SnapLen: 64, Sink: func(rec mon.Record) {
		_ = w.Write(pcap.Record{TS: rec.TS.Sim(), Data: rec.Data, OrigLen: rec.WireSize - wire.FCSLen})
	}})
	g, _ := gen.New(tx.Port(0), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: spec, Sizes: gen.IMIXSizes},
		Spacing: gen.CBR{Interval: 5 * sim.Microsecond},
		Count:   120,
	})
	g.Start(0)
	e.Run()
	recs, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 120 {
		t.Fatalf("records %d", len(recs))
	}
	sizes := map[int]int{}
	for _, r := range recs {
		if len(r.Data) > 64 {
			t.Fatalf("thinning leaked %d bytes", len(r.Data))
		}
		sizes[r.OrigLen+wire.FCSLen]++
	}
	if sizes[64] != 70 || sizes[570] != 40 || sizes[1518] != 10 {
		t.Fatalf("IMIX OrigLen mix %v", sizes)
	}
}
