package stats

import (
	"fmt"

	"osnt/internal/wire"
)

// LossEntry is one (hop, reason) cell of a loss map.
type LossEntry struct {
	Hop    int
	Label  string
	Reason wire.DropReason
	Count  uint64
}

// LossMap reduces a scenario's drop ledger into the per-hop, per-reason
// loss attribution an experiment reports: each non-zero (hop, reason)
// cell with its fraction of the offered traffic, plus the conservation
// check that makes the attribution trustworthy — every frame sent must
// be either delivered or attributed to exactly one drop cell
// (sent = delivered + Σ attributed), with nothing lost to an uncounted
// path. It snapshots the ledger at construction, so the map stays
// stable while the rig keeps running.
type LossMap struct {
	// Sent is the offered frame count (what the generators emitted into
	// the scenario).
	Sent uint64
	// Delivered is the frame count that reached a terminal endpoint
	// (MAC receive counters or sink counters).
	Delivered uint64

	entries []LossEntry
}

// NewLossMap snapshots ledger against the given sent/delivered counts.
// Hops appear in ID order, reasons in declaration order; zero cells are
// elided.
func NewLossMap(sent, delivered uint64, ledger *wire.DropLedger) *LossMap {
	m := &LossMap{Sent: sent, Delivered: delivered}
	for hop := 0; hop < ledger.Hops(); hop++ {
		for r := wire.DropReason(0); r < wire.NumDropReasons; r++ {
			if c := ledger.Count(hop, r); c > 0 {
				m.entries = append(m.entries, LossEntry{
					Hop: hop, Label: ledger.Label(hop), Reason: r, Count: c,
				})
			}
		}
	}
	return m
}

// Entries returns the non-zero loss cells in (hop, reason) order.
func (m *LossMap) Entries() []LossEntry { return m.entries }

// Attributed returns the total drops across all cells.
func (m *LossMap) Attributed() uint64 {
	var n uint64
	for _, e := range m.entries {
		n += e.Count
	}
	return n
}

// Conserved reports whether the attribution closes exactly:
// sent = delivered + Σ attributed drops.
func (m *LossMap) Conserved() bool {
	return m.Sent == m.Delivered+m.Attributed()
}

// LossFraction returns total attributed drops over sent (0 when nothing
// was sent).
func (m *LossMap) LossFraction() float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(m.Attributed()) / float64(m.Sent)
}

// Fraction returns one cell's drops over sent.
func (m *LossMap) Fraction(e LossEntry) float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(e.Count) / float64(m.Sent)
}

// Table renders the map as the per-hop/per-reason loss table the CLIs
// print: one row per non-zero cell plus a totals row carrying the
// conservation verdict.
func (m *LossMap) Table() *Table {
	tbl := &Table{
		Title:   fmt.Sprintf("loss attribution (sent %d, delivered %d)", m.Sent, m.Delivered),
		Columns: []string{"hop", "device", "reason", "drops", "of-sent(%)"},
	}
	for _, e := range m.entries {
		label := e.Label
		if label == "" {
			label = "(unattributed)"
		}
		tbl.AddRow(
			fmt.Sprintf("%d", e.Hop),
			label,
			e.Reason.String(),
			fmt.Sprintf("%d", e.Count),
			fmt.Sprintf("%.3f", m.Fraction(e)*100),
		)
	}
	conserved := "conserved exactly"
	if !m.Conserved() {
		conserved = fmt.Sprintf("NOT conserved (off by %d)",
			int64(m.Sent)-int64(m.Delivered)-int64(m.Attributed()))
	}
	tbl.AddRow("-", "total", conserved,
		fmt.Sprintf("%d", m.Attributed()),
		fmt.Sprintf("%.3f", m.LossFraction()*100))
	return tbl
}
