package wire

import (
	"testing"
	"testing/quick"

	"osnt/internal/sim"
)

func TestByteTime(t *testing.T) {
	if got := Rate10G.ByteTime(); got != 800 {
		t.Fatalf("10G byte time = %dps, want 800", got)
	}
	if got := Rate1G.ByteTime(); got != 8000 {
		t.Fatalf("1G byte time = %dps, want 8000", got)
	}
}

func TestSerializationTime64B(t *testing.T) {
	// The canonical figure: 64B frame + 20B overhead = 84B = 67.2ns at 10G.
	got := SerializationTime(64, Rate10G)
	if got != 67200 {
		t.Fatalf("64B@10G = %v ps, want 67200", int64(got))
	}
	// 1518B: 1538 * 0.8ns = 1230.4ns.
	if got := SerializationTime(1518, Rate10G); got != 1230400 {
		t.Fatalf("1518B@10G = %v ps, want 1230400", int64(got))
	}
}

func TestMaxPPS(t *testing.T) {
	// 14.88 Mpps for 64B at 10G.
	got := MaxPPS(64, Rate10G)
	if got < 14_880_000 || got > 14_881_000 {
		t.Fatalf("MaxPPS(64,10G) = %v, want ≈14.88M", got)
	}
	// 812743 pps for 1518B at 10G.
	got = MaxPPS(1518, Rate10G)
	if got < 812_000 || got > 813_500 {
		t.Fatalf("MaxPPS(1518,10G) = %v, want ≈812.7k", got)
	}
}

func TestFrameSizeAndClone(t *testing.T) {
	data := make([]byte, 60)
	f := NewFrame(data)
	if f.Size != 64 {
		t.Fatalf("FCS-inclusive size = %d, want 64", f.Size)
	}
	g := f.Clone()
	g.Data[0] = 0xff
	if f.Data[0] == 0xff {
		t.Fatal("Clone aliases original buffer")
	}
	if g.Size != f.Size || g.SrcPort != f.SrcPort {
		t.Fatal("Clone lost metadata")
	}
}

func TestLinkDelivery(t *testing.T) {
	e := sim.NewEngine()
	var gotStart, gotEnd sim.Time
	var gotLen int
	sink := EndpointFunc(func(f *Frame, start, at sim.Time) {
		gotStart, gotEnd, gotLen = start, at, f.Size
	})
	l := NewLink(e, Rate10G, 5*sim.Nanosecond, sink)
	f := NewFrame(make([]byte, 60)) // 64B frame
	txEnd := l.Transmit(f)
	e.Run()
	if txEnd != sim.Time(67200) {
		t.Fatalf("tx end = %v, want 67.2ns", txEnd)
	}
	if gotLen != 64 {
		t.Fatalf("delivered size = %d", gotLen)
	}
	if gotStart != sim.Time(5000) {
		t.Fatalf("first bit arrived at %v, want 5ns", gotStart)
	}
	if gotEnd != sim.Time(67200+5000) {
		t.Fatalf("last bit arrived at %v, want 72.2ns", gotEnd)
	}
}

func TestLinkBackToBack(t *testing.T) {
	e := sim.NewEngine()
	var arrivals []sim.Time
	sink := EndpointFunc(func(f *Frame, _, at sim.Time) { arrivals = append(arrivals, at) })
	l := NewLink(e, Rate10G, 0, sink)
	// Submit 3 frames at t=0; they must serialise back-to-back.
	for i := 0; i < 3; i++ {
		l.Transmit(NewFrame(make([]byte, 60)))
	}
	e.Run()
	want := []sim.Time{67200, 134400, 201600}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, arrivals[i], want[i])
		}
	}
	if l.TxFrames() != 3 {
		t.Fatalf("TxFrames = %d", l.TxFrames())
	}
	if l.TxWireBytes() != 3*84 {
		t.Fatalf("TxWireBytes = %d, want 252", l.TxWireBytes())
	}
}

func TestSerializationTime40G(t *testing.T) {
	// One byte takes 200ps at 40G.
	if got := Rate40G.ByteTime(); got != 200 {
		t.Fatalf("40G byte time = %dps, want 200", got)
	}
	// 64B + 20B overhead = 84B = 16.8ns at 40G, a quarter of the 10G slot.
	if got := SerializationTime(64, Rate40G); got != 16800 {
		t.Fatalf("64B@40G = %vps, want 16800", int64(got))
	}
	if got := SerializationTime(1518, Rate40G); got != 307600 {
		t.Fatalf("1518B@40G = %vps, want 307600 (1538B × 200ps)", int64(got))
	}
	// 59.52 Mpps for 64B at 40G — 4× the canonical 14.88M figure.
	got := MaxPPS(64, Rate40G)
	if got < 59_523_000 || got > 59_524_000 {
		t.Fatalf("MaxPPS(64,40G) = %v, want ≈59.52M", got)
	}
	if MaxPPS(64, Rate40G) != 4*MaxPPS(64, Rate10G) {
		t.Fatal("40G line rate is not exactly 4× the 10G line rate")
	}
	if Rate40G.String() != "40Gb/s" {
		t.Fatalf("got %q", Rate40G.String())
	}
}

func TestSerializationTime100G(t *testing.T) {
	// One byte takes 80ps at 100G.
	if got := Rate100G.ByteTime(); got != 80 {
		t.Fatalf("100G byte time = %dps, want 80", got)
	}
	// 64B + 20B overhead = 84B = 6.72ns at 100G, a tenth of the 10G slot.
	if got := SerializationTime(64, Rate100G); got != 6720 {
		t.Fatalf("64B@100G = %vps, want 6720", int64(got))
	}
	// 148.81 Mpps for 64B at 100G — 10× the canonical 14.88M figure.
	if MaxPPS(64, Rate100G) != 10*MaxPPS(64, Rate10G) {
		t.Fatal("100G line rate is not exactly 10× the 10G line rate")
	}
	if Rate100G.String() != "100Gb/s" {
		t.Fatalf("got %q", Rate100G.String())
	}
}

// A burst of back-to-back frames must occupy a single event-heap slot:
// the link batches deliveries through one reusable event however deep the
// in-flight queue gets, while every frame still arrives at its exact
// serialisation instant and in order.
func TestLinkBurstBatchesDeliveries(t *testing.T) {
	e := sim.NewEngine()
	var arrivals []sim.Time
	sink := EndpointFunc(func(f *Frame, _, at sim.Time) {
		arrivals = append(arrivals, at)
		f.Release()
	})
	l := NewLink(e, Rate10G, 3*sim.Nanosecond, sink)
	const burst = 100
	for i := 0; i < burst; i++ {
		l.Transmit(NewFrame(make([]byte, 60)))
	}
	if got := l.InFlight(); got != burst {
		t.Fatalf("in-flight = %d, want %d", got, burst)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("a %d-frame burst scheduled %d events, want 1", burst, got)
	}
	e.Run()
	if len(arrivals) != burst {
		t.Fatalf("delivered %d frames, want %d", len(arrivals), burst)
	}
	slot := SerializationTime(64, Rate10G)
	for i, at := range arrivals {
		want := sim.Time(slot)*sim.Time(i+1) + sim.Time(3*sim.Nanosecond)
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
	if l.InFlight() != 0 {
		t.Fatalf("in-flight after drain = %d", l.InFlight())
	}
}

func TestLinkNeverExceedsLineRate(t *testing.T) {
	// Offer 2x line rate for 10000 frames; delivered spacing must never be
	// tighter than the serialisation time.
	e := sim.NewEngine()
	var last sim.Time
	var minGap sim.Duration = 1 << 62
	n := 0
	sink := EndpointFunc(func(f *Frame, _, at sim.Time) {
		if n > 0 {
			if gap := at.Sub(last); gap < minGap {
				minGap = gap
			}
		}
		last = at
		n++
	})
	l := NewLink(e, Rate10G, 0, sink)
	slot := SerializationTime(64, Rate10G)
	for i := 0; i < 10000; i++ {
		at := sim.Time(i) * sim.Time(slot/2) // 2x offered load
		e.Schedule(at, func() { l.Transmit(NewFrame(make([]byte, 60))) })
	}
	e.Run()
	if n != 10000 {
		t.Fatalf("delivered %d frames", n)
	}
	if minGap < slot {
		t.Fatalf("frames spaced %v apart, line rate slot is %v", minGap, slot)
	}
}

func TestLinkUtilisation(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, Rate10G, 0, nil)
	// 10 full-size frames: 10*1538*800ps of wire time.
	for i := 0; i < 10; i++ {
		l.Transmit(NewFrame(make([]byte, 1514)))
	}
	e.Run()
	busy := l.BusyUntil()
	u := l.Utilisation(busy)
	if u < 0.999 || u > 1.001 {
		t.Fatalf("utilisation during saturation = %v, want 1.0", u)
	}
	u = l.Utilisation(busy * 2)
	if u < 0.499 || u > 0.501 {
		t.Fatalf("utilisation at 2x window = %v, want 0.5", u)
	}
}

// Property: for any frame size and any rate, serialisation time equals
// wire bytes times byte time and MaxPPS is its reciprocal.
func TestPropertyWireArithmetic(t *testing.T) {
	f := func(sz uint16) bool {
		size := int(sz%1455) + 64
		st := SerializationTime(size, Rate10G)
		if st != sim.Duration(size+20)*800 {
			return false
		}
		pps := MaxPPS(size, Rate10G)
		wantGap := 1e12 / pps // ps between frames at line rate
		return wantGap > float64(st)*0.999 && wantGap < float64(st)*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLinkBurstDelivery drives deep TX bursts through one link: the
// per-frame cost of the batched delivery path (ring push/pop + one event
// reschedule), with pooled frames so the link itself is what's measured.
func BenchmarkLinkBurstDelivery(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	pool := NewPool()
	sink := EndpointFunc(func(f *Frame, _, _ sim.Time) { f.Release() })
	l := NewLink(e, Rate10G, 0, sink)
	const burst = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			l.Transmit(pool.Get(60))
		}
		e.Run()
	}
}

func TestRateString(t *testing.T) {
	if Rate10G.String() != "10Gb/s" {
		t.Fatalf("got %q", Rate10G.String())
	}
	if Rate(100_000_000).String() != "100Mb/s" {
		t.Fatalf("got %q", Rate(100_000_000).String())
	}
}

func TestHopTraceStampAndOverflow(t *testing.T) {
	var tr HopTrace
	for i := 0; i < MaxHops+3; i++ {
		tr.Stamp(i+1, sim.Time(i*100))
	}
	if tr.Len() != MaxHops {
		t.Fatalf("trace holds %d hops, want cap %d", tr.Len(), MaxHops)
	}
	for i := 0; i < MaxHops; i++ {
		if h := tr.At(i); h.Node != i+1 || h.At != sim.Time(i*100) {
			t.Fatalf("hop %d = %+v", i, h)
		}
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset trace not empty")
	}
}

func TestFrameCopiesCarryTrace(t *testing.T) {
	f := NewFrame(make([]byte, 60))
	f.Trace.Stamp(1, 100)
	f.Trace.Stamp(2, 200)
	if c := f.Clone(); c.Trace.Len() != 2 || c.Trace.At(1) != (Hop{Node: 2, At: 200}) {
		t.Fatalf("clone trace %v hops", c.Trace.Len())
	}
	var g Frame
	g.CopyFrom(f)
	if g.Trace.Len() != 2 || g.Trace.At(0) != (Hop{Node: 1, At: 100}) {
		t.Fatalf("CopyFrom trace %v hops", g.Trace.Len())
	}
}

func TestPoolGetResetsTrace(t *testing.T) {
	p := NewPool()
	f := p.Get(60)
	f.Trace.Stamp(3, 300)
	f.Release()
	// Whatever frame comes back (recycled or fresh), its trace is clean.
	if g := p.Get(60); g.Trace.Len() != 0 {
		t.Fatalf("pooled frame keeps %d stale hops", g.Trace.Len())
	}
}
