// Package mon implements the OSNT traffic monitoring subsystem: packets
// are timestamped on receipt by the MAC (done in netfpga.Port, minimising
// queueing noise), pass through the hardware wildcard filter table, are
// optionally thinned (cut to a snap length) and hashed, and finally cross
// a loss-limited DMA path into the host, where a software sink consumes
// capture records.
//
// The DMA path is the part the paper calls "a loss-limited path that gets
// (a subset of) captured packets into the host": a bounded descriptor
// ring drained at host speed. When capture demand exceeds what the host
// can drain, the ring overflows and drops are counted — exactly the
// behaviour hardware filtering and thinning exist to avoid.
package mon

import (
	"osnt/internal/filter"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// Record is one captured packet as the host sees it.
type Record struct {
	// Data holds the captured bytes (possibly thinned).
	Data []byte
	// WireSize is the original FCS-inclusive frame size.
	WireSize int
	// TS is the hardware receive timestamp latched at the MAC.
	TS timing.Timestamp
	// Arrival is the true arrival instant (ground truth available only in
	// simulation; used to quantify timestamp error).
	Arrival sim.Time
	// Delivered is the instant the record reached the host sink.
	Delivered sim.Time
	// Port is the card port that captured the packet.
	Port int
	// Rule is the index of the filter rule that accepted the packet, or
	// -1 for the default action.
	Rule int
	// Hash is the hardware packet digest (FNV over the first HashBytes),
	// 0 when hashing is disabled.
	Hash uint64
	// Trace carries the frame's per-hop egress timestamps (stamped by
	// forwarding devices with a hop ID), so sinks can decompose latency
	// hop by hop instead of only end to end.
	Trace wire.HopTrace
}

// Config parameterises a Monitor.
type Config struct {
	// Filters is the hardware wildcard table; nil captures everything.
	Filters *filter.Table
	// SnapLen thins captured packets to this many bytes (0 = full
	// packet). Per-rule SnapLen overrides take precedence.
	SnapLen int
	// HashBytes computes a digest over the first n bytes of each
	// accepted packet (0 disables hashing).
	HashBytes int
	// ThinBeforeFilter applies thinning before the filter stage. The
	// hardware pipeline filters first (ablation: thinning first breaks
	// rules that need bytes beyond the snap length).
	ThinBeforeFilter bool

	// RingSize is the DMA descriptor ring capacity in packets (default
	// 1024).
	RingSize int
	// HostPerPacket is the host-side fixed cost to consume one record:
	// DMA completion, ring bookkeeping, syscall amortisation (default
	// 120 ns).
	HostPerPacket sim.Duration
	// HostPerByte is the per-byte DMA/copy cost (default 0.8 ns/B,
	// ≈1.25 GB/s effective host path — the reason 10 Gb/s line-rate
	// capture needs thinning). A negative value selects zero cost (an
	// idealised infinitely fast host, used when a test wants to count at
	// the MAC rather than model the host).
	HostPerByte sim.Duration

	// Sink receives records in delivery order. A nil sink still models
	// the ring (records are counted and discarded at the host).
	Sink func(Record)

	// RecycleRecords returns each record's Data buffer to an internal
	// free list once the Sink has returned, making the steady-state
	// capture path allocation-free. The Sink must then copy any bytes it
	// keeps past the callback. Always on when Sink is nil (nobody can
	// retain the buffer).
	RecycleRecords bool
}

func (c *Config) fill() {
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.HostPerPacket == 0 {
		c.HostPerPacket = 120 * sim.Nanosecond
	}
	if c.HostPerByte == 0 {
		c.HostPerByte = sim.Picoseconds(800)
	}
	if c.HostPerByte < 0 {
		c.HostPerByte = 0
	}
}

// Monitor is the capture pipeline attached to one card port.
type Monitor struct {
	port *netfpga.Port
	cfg  Config
	eng  *sim.Engine

	// ring is a head-indexed FIFO: head advances on delivery and the
	// tail grows by append; pending occupancy is len(ring)-head. The
	// slice is compacted only when the dead prefix dominates, so the
	// per-packet cost is O(1) with no copy-down.
	ring     []Record
	head     int
	draining bool
	drainEv  *sim.Event // reusable: at most one DMA completion in flight

	// bufFree recycles record buffers when cfg.RecycleRecords (or a nil
	// Sink) allows it; bounded by the ring capacity.
	bufFree [][]byte
	recycle bool

	seen      stats.Counter // all frames presented to the pipeline
	accepted  stats.Counter // past the filter stage
	filtered  uint64        // dropped by filter verdict
	ringDrops uint64        // lost to ring overflow
	delivered stats.Counter // reached the host sink
}

// Attach builds a monitor on the port, taking over its OnReceive hook.
func Attach(port *netfpga.Port, cfg Config) *Monitor {
	cfg.fill()
	m := &Monitor{port: port, cfg: cfg, eng: port.Card().Engine}
	m.recycle = cfg.RecycleRecords || cfg.Sink == nil
	port.OnReceive = m.onReceive
	return m
}

func (m *Monitor) onReceive(f *wire.Frame, at sim.Time, ts timing.Timestamp) {
	m.seen.Add(wire.WireBytes(f.Size))

	data := f.Data
	snap := m.cfg.SnapLen

	if m.cfg.ThinBeforeFilter && snap > 0 && len(data) > snap {
		data = data[:snap]
	}

	ruleIdx := -1
	if m.cfg.Filters != nil {
		act, idx, ruleSnap := m.cfg.Filters.Match(data)
		ruleIdx = idx
		if act == filter.Drop {
			m.filtered++
			return
		}
		if ruleSnap > 0 {
			snap = ruleSnap
		}
	}
	if !m.cfg.ThinBeforeFilter && snap > 0 && len(data) > snap {
		data = data[:snap]
	}

	var hash uint64
	if m.cfg.HashBytes > 0 {
		hash = packet.PacketDigest(data, m.cfg.HashBytes)
	}

	m.accepted.Add(wire.WireBytes(f.Size))

	if len(m.ring)-m.head >= m.cfg.RingSize {
		m.ringDrops++
		return
	}
	// The descriptor ring owns a copy: the frame buffer belongs to the
	// datapath and may be reused.
	cp := m.getBuf(len(data))
	copy(cp, data)
	m.ring = append(m.ring, Record{
		Data: cp, WireSize: f.Size, TS: ts, Arrival: at,
		Port: m.port.Index(), Rule: ruleIdx, Hash: hash, Trace: f.Trace,
	})
	m.drain()
}

// getBuf returns a buffer of length n, recycled from delivered records
// when the configuration allows it.
func (m *Monitor) getBuf(n int) []byte {
	if k := len(m.bufFree); k > 0 {
		b := m.bufFree[k-1]
		m.bufFree[k-1] = nil
		m.bufFree = m.bufFree[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// drain models the host consuming the ring one record at a time.
func (m *Monitor) drain() {
	if m.draining || len(m.ring) == m.head {
		return
	}
	m.draining = true
	cost := m.cfg.HostPerPacket + sim.Duration(len(m.ring[m.head].Data))*m.cfg.HostPerByte
	if m.drainEv == nil {
		m.drainEv = m.eng.ScheduleAfter(cost, m.drainDone)
	} else {
		m.eng.RescheduleAfter(m.drainEv, cost)
	}
}

// drainDone is the DMA-completion handler for the record at the ring
// head.
func (m *Monitor) drainDone() {
	rec := m.ring[m.head]
	m.ring[m.head] = Record{}
	m.head++
	// Compact once the dead prefix dominates a non-trivial ring, so the
	// backing array stays proportional to occupancy.
	if m.head >= 256 && m.head*2 >= len(m.ring) {
		n := copy(m.ring, m.ring[m.head:])
		for i := n; i < len(m.ring); i++ {
			m.ring[i] = Record{}
		}
		m.ring = m.ring[:n]
		m.head = 0
	}
	rec.Delivered = m.eng.Now()
	m.delivered.Add(rec.WireSize)
	if m.cfg.Sink != nil {
		m.cfg.Sink(rec)
	}
	if m.recycle {
		m.bufFree = append(m.bufFree, rec.Data[:0])
	}
	m.draining = false
	m.drain()
}

// Seen returns counters over every frame presented to the pipeline.
func (m *Monitor) Seen() stats.Counter { return m.seen }

// Accepted returns counters over frames that passed the filter stage.
func (m *Monitor) Accepted() stats.Counter { return m.accepted }

// Filtered returns the number of frames dropped by filter verdicts.
func (m *Monitor) Filtered() uint64 { return m.filtered }

// RingDrops returns frames lost to DMA ring overflow — the loss-limited
// path's loss counter.
func (m *Monitor) RingDrops() uint64 { return m.ringDrops }

// Delivered returns counters over records that reached the host sink.
func (m *Monitor) Delivered() stats.Counter { return m.delivered }

// RingDepth returns the instantaneous ring occupancy.
func (m *Monitor) RingDepth() int { return len(m.ring) - m.head }

// LossFraction returns ring drops as a fraction of accepted frames.
func (m *Monitor) LossFraction() float64 {
	if m.accepted.Packets == 0 {
		return 0
	}
	return float64(m.ringDrops) / float64(m.accepted.Packets)
}
