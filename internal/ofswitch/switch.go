package ofswitch

import (
	"fmt"

	"osnt/internal/openflow"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// Config parameterises a simulated OpenFlow switch.
type Config struct {
	// Ports is the dataplane port count (default 4). OpenFlow port
	// numbers are 1-based: port index i is OF port i+1.
	Ports int
	// Rate is the per-port line rate (default 10 Gb/s).
	Rate wire.Rate
	// DatapathID identifies the switch in FEATURES_REPLY.
	DatapathID uint64
	// TableCap bounds the flow table (default 4096, a typical hardware
	// TCAM size of the era).
	TableCap int
	// ExactFastPath enables the exact-match hash lookup (ablation).
	ExactFastPath bool

	// PipelineLatency is the fixed dataplane forwarding delay (default
	// 600 ns).
	PipelineLatency sim.Duration
	// EgressQueueCap bounds each output queue in packets (default 512).
	EgressQueueCap int

	// --- control plane model ---

	// CtrlLatency is the one-way control channel latency (default
	// 100 µs, a management-network RTT of 200 µs).
	CtrlLatency sim.Duration
	// FlowModCost is the management CPU time to process one FLOW_MOD
	// (default 150 µs: firmware parsing, validation, driver call).
	FlowModCost sim.Duration
	// FlowModPerEntry adds table-scan cost per existing entry (default
	// 30 ns) — large tables make modifications slower.
	FlowModPerEntry sim.Duration
	// HWInstallDelay is the lag between control-plane completion of a
	// FLOW_MOD and the dataplane actually applying it (default 1.5 ms,
	// the TCAM-write asynchrony OFLOPS exposed).
	HWInstallDelay sim.Duration
	// BarrierCost is the CPU time to process a BARRIER_REQUEST (default
	// 20 µs).
	BarrierCost sim.Duration
	// EchoCost is the CPU time to answer an ECHO_REQUEST (default 5 µs).
	EchoCost sim.Duration
	// PacketInCost is the slow-path CPU time per table-miss packet
	// (default 80 µs).
	PacketInCost sim.Duration
	// DataplaneCPUTax is management CPU time consumed per forwarded
	// packet (counter maintenance etc., default 0: ideal hardware).
	// Non-zero values reproduce control-plane starvation under
	// dataplane load (experiment E8).
	DataplaneCPUTax sim.Duration
	// CPUBacklogCap bounds the CPU work backlog (default 20 ms): tax
	// beyond it is shed, protocol messages queue regardless.
	CPUBacklogCap sim.Duration
	// MissSendLen is the packet prefix bytes sent in PACKET_IN (default
	// 128).
	MissSendLen int
	// ExpirySweep is the flow-timeout sweep period (default 500 ms).
	ExpirySweep sim.Duration
}

func (c *Config) fill() {
	if c.Ports == 0 {
		c.Ports = 4
	}
	if c.Rate == 0 {
		c.Rate = wire.Rate10G
	}
	if c.TableCap == 0 {
		c.TableCap = 4096
	}
	if c.PipelineLatency == 0 {
		c.PipelineLatency = 600 * sim.Nanosecond
	}
	if c.EgressQueueCap == 0 {
		c.EgressQueueCap = 512
	}
	if c.CtrlLatency == 0 {
		c.CtrlLatency = 100 * sim.Microsecond
	}
	if c.FlowModCost == 0 {
		c.FlowModCost = 150 * sim.Microsecond
	}
	if c.FlowModPerEntry == 0 {
		c.FlowModPerEntry = 30 * sim.Nanosecond
	}
	if c.HWInstallDelay == 0 {
		c.HWInstallDelay = 1500 * sim.Microsecond
	}
	if c.BarrierCost == 0 {
		c.BarrierCost = 20 * sim.Microsecond
	}
	if c.EchoCost == 0 {
		c.EchoCost = 5 * sim.Microsecond
	}
	if c.PacketInCost == 0 {
		c.PacketInCost = 80 * sim.Microsecond
	}
	if c.CPUBacklogCap == 0 {
		c.CPUBacklogCap = 20 * sim.Millisecond
	}
	if c.MissSendLen == 0 {
		c.MissSendLen = 128
	}
	if c.ExpirySweep == 0 {
		c.ExpirySweep = 500 * sim.Millisecond
	}
}

// Switch is one simulated OpenFlow switch.
type Switch struct {
	Engine *sim.Engine

	cfg   Config
	ports []*Port

	// table is the dataplane's view. Control-plane changes land here
	// only after HWInstallDelay.
	table *FlowTable

	ctl *Controller // attached control channel, nil if none

	// Management CPU: a single serial server.
	cpuFreeAt sim.Time

	misses         uint64
	forwarded      stats.Counter
	dropsNoRule    uint64
	sweepScheduled bool
}

// New builds a switch on the engine.
func New(e *sim.Engine, cfg Config) *Switch {
	cfg.fill()
	s := &Switch{
		Engine: e,
		cfg:    cfg,
		table:  NewFlowTable(cfg.TableCap, cfg.ExactFastPath),
	}
	for i := 0; i < cfg.Ports; i++ {
		s.ports = append(s.ports, &Port{sw: s, index: i})
	}
	return s
}

// NumPorts returns the dataplane port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Rate returns the per-port line rate.
func (s *Switch) Rate() wire.Rate { return s.cfg.Rate }

// Port returns port index i (OF port i+1).
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Table exposes the dataplane flow table (read-mostly; tests inspect
// it).
func (s *Switch) Table() *FlowTable { return s.table }

// Misses returns the number of table-miss packets.
func (s *Switch) Misses() uint64 { return s.misses }

// Forwarded returns counters over frames forwarded by the dataplane.
func (s *Switch) Forwarded() stats.Counter { return s.forwarded }

// DropsNoRule returns packets dropped because a miss could not be sent
// to a controller (no channel attached).
func (s *Switch) DropsNoRule() uint64 { return s.dropsNoRule }

// cpuRun enqueues cost on the serial management CPU and invokes fn when
// that work completes. It returns the completion instant.
func (s *Switch) cpuRun(cost sim.Duration, fn func()) sim.Time {
	now := s.Engine.Now()
	start := now
	if s.cpuFreeAt > start {
		start = s.cpuFreeAt
	}
	done := start.Add(cost)
	s.cpuFreeAt = done
	if fn != nil {
		s.Engine.Schedule(done, fn)
	}
	return done
}

// cpuTax consumes CPU without a completion callback, shedding work when
// the backlog exceeds the cap (dataplane counter work is best-effort;
// protocol work is not).
func (s *Switch) cpuTax(cost sim.Duration) {
	now := s.Engine.Now()
	if s.cpuFreeAt.Sub(now) > s.cfg.CPUBacklogCap {
		return
	}
	if s.cpuFreeAt < now {
		s.cpuFreeAt = now
	}
	s.cpuFreeAt = s.cpuFreeAt.Add(cost)
}

// ensureSweep keeps a timeout sweep pending for as long as any installed
// entry carries a timeout. Demand-driven scheduling keeps the event queue
// quiescent otherwise, so Engine.Run terminates on idle topologies.
func (s *Switch) ensureSweep() {
	if s.sweepScheduled {
		return
	}
	s.sweepScheduled = true
	s.Engine.ScheduleAfter(s.cfg.ExpirySweep, func() {
		s.sweepScheduled = false
		s.sweepExpired()
		for _, e := range s.table.Entries() {
			if e.IdleTimeout > 0 || e.HardTimeout > 0 {
				s.ensureSweep()
				return
			}
		}
	})
}

func (s *Switch) sweepExpired() {
	for _, e := range s.table.Expired(s.Engine.Now()) {
		if e.Flags&openflow.FlagSendFlowRem != 0 && s.ctl != nil {
			reason := openflow.RemovedIdleTimeout
			if e.HardTimeout > 0 {
				reason = openflow.RemovedHardTimeout
			}
			dur := s.Engine.Now().Sub(e.InstalledAt)
			s.ctl.fromSwitch(&openflow.FlowRemoved{
				Match: e.Match, Cookie: e.Cookie, Priority: e.Priority,
				Reason:      reason,
				DurationSec: uint32(dur / sim.Second), DurationNsec: uint32(dur % sim.Second / sim.Nanosecond),
				IdleTimeout: e.IdleTimeout,
				PacketCount: e.Packets, ByteCount: e.Bytes,
			}, 0)
		}
	}
}

// Port is one dataplane interface.
type Port struct {
	sw    *Switch
	index int

	link  *wire.Link
	queue []*wire.Frame
	busy  bool
	drops uint64

	rx stats.Counter
	tx stats.Counter
}

// Index returns the port index (OF port Index()+1).
func (p *Port) Index() int { return p.index }

// OFPort returns the 1-based OpenFlow port number.
func (p *Port) OFPort() uint16 { return uint16(p.index + 1) }

// SetLink attaches the egress link.
func (p *Port) SetLink(l *wire.Link) { p.link = l }

// Drops returns egress queue overflow drops.
func (p *Port) Drops() uint64 { return p.drops }

// RxStats and TxStats return the port counters (frame sizes, FCS
// inclusive).
func (p *Port) RxStats() stats.Counter { return p.rx }

// TxStats returns the transmit counters.
func (p *Port) TxStats() stats.Counter { return p.tx }

// Receive implements wire.Endpoint: dataplane packet arrival.
func (p *Port) Receive(f *wire.Frame, _ sim.Time, at sim.Time) {
	p.rx.Add(f.Size)
	s := p.sw
	key, err := openflow.KeyFromPacket(f.Data, p.OFPort())
	if err != nil {
		return // unparseable runt: dropped
	}
	if s.cfg.DataplaneCPUTax > 0 {
		s.cpuTax(s.cfg.DataplaneCPUTax)
	}
	entry := s.table.Lookup(&key)
	if entry == nil {
		s.misses++
		if s.ctl == nil {
			s.dropsNoRule++
			return
		}
		// Slow path: the CPU builds a PACKET_IN.
		data := f.Data
		if len(data) > s.cfg.MissSendLen {
			data = data[:s.cfg.MissSendLen]
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		total := uint16(len(f.Data))
		inPort := p.OFPort()
		s.cpuRun(s.cfg.PacketInCost, func() {
			s.ctl.fromSwitch(&openflow.PacketIn{
				BufferID: 0xffffffff, TotalLen: total, InPort: inPort,
				Reason: openflow.ReasonNoMatch, Data: cp,
			}, 0)
		})
		return
	}
	entry.Packets++
	entry.Bytes += uint64(f.Size)
	entry.LastUsed = at
	out := f
	ready := at.Add(s.cfg.PipelineLatency)
	s.applyActions(entry.Actions, out, p, ready)
}

// applyActions executes an OF 1.0 action list on a frame arriving on
// ingress in, with forwarding allowed from instant ready.
func (s *Switch) applyActions(actions []openflow.Action, f *wire.Frame, in *Port, ready sim.Time) {
	cur := f
	for _, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionOutput:
			s.output(act, cur.Clone(), in, ready)
		default:
			// Header rewrites mutate the working copy carried forward to
			// subsequent outputs, per OF semantics.
			cur = cur.Clone()
			rewriteFrame(cur, a)
		}
	}
}

func (s *Switch) output(act *openflow.ActionOutput, f *wire.Frame, in *Port, ready sim.Time) {
	switch {
	case act.Port == openflow.PortController:
		if s.ctl != nil {
			data := f.Data
			maxLen := int(act.MaxLen)
			if maxLen > 0 && len(data) > maxLen {
				data = data[:maxLen]
			}
			cp := make([]byte, len(data))
			copy(cp, data)
			total := uint16(len(f.Data))
			inPort := in.OFPort()
			s.cpuRun(s.cfg.PacketInCost, func() {
				s.ctl.fromSwitch(&openflow.PacketIn{
					BufferID: 0xffffffff, TotalLen: total, InPort: inPort,
					Reason: openflow.ReasonAction, Data: cp,
				}, 0)
			})
		}
	case act.Port == openflow.PortFlood || act.Port == openflow.PortAll:
		for _, p := range s.ports {
			if p == in || p.link == nil {
				continue
			}
			p.enqueue(f.Clone(), ready)
		}
	case act.Port == openflow.PortInPort:
		in.enqueue(f, ready)
	case act.Port >= 1 && int(act.Port) <= len(s.ports):
		s.ports[act.Port-1].enqueue(f, ready)
	default:
		// PortNone / unsupported reserved port: drop.
	}
}

func (p *Port) enqueue(f *wire.Frame, earliest sim.Time) {
	if p.link == nil {
		return // unconnected port: black hole, as hardware would
	}
	if len(p.queue) >= p.sw.cfg.EgressQueueCap {
		p.drops++
		return
	}
	f.SrcPort = p.index
	p.queue = append(p.queue, f)
	p.sendFrom(earliest)
}

func (p *Port) sendFrom(earliest sim.Time) {
	if p.busy || len(p.queue) == 0 {
		return
	}
	f := p.queue[0]
	copy(p.queue, p.queue[1:])
	p.queue[len(p.queue)-1] = nil
	p.queue = p.queue[:len(p.queue)-1]
	p.busy = true
	end := p.link.TransmitAt(f, earliest)
	p.tx.Add(f.Size)
	p.sw.forwarded.Add(f.Size)
	eventAt := end
	if now := p.sw.Engine.Now(); eventAt < now {
		eventAt = now
	}
	p.sw.Engine.Schedule(eventAt, func() {
		p.busy = false
		p.sendFrom(p.sw.Engine.Now())
	})
}

// String describes the switch.
func (s *Switch) String() string {
	return fmt.Sprintf("ofswitch(dpid=%#x ports=%d table=%d/%d)",
		s.cfg.DatapathID, len(s.ports), s.table.Len(), s.cfg.TableCap)
}
