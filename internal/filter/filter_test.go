package filter

import (
	"strings"
	"testing"
	"testing/quick"

	"osnt/internal/packet"
)

var (
	macA = packet.MAC{0x02, 0, 0, 0, 0, 0x01}
	macB = packet.MAC{0x02, 0, 0, 0, 0, 0x02}
	ip1  = packet.IP4{10, 1, 0, 5}
	ip2  = packet.IP4{10, 2, 0, 9}
)

func udpFrame(sport, dport uint16) []byte {
	return packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		SrcPort: sport, DstPort: dport, FrameSize: 128,
	}.Build()
}

func tcpFrame(dport uint16) []byte {
	return packet.TCPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		SrcPort: 40000, DstPort: dport, Flags: packet.TCPSyn,
	}.Build()
}

func TestEmptyTableDefault(t *testing.T) {
	tb := NewTable(Capture)
	act, idx, snap := tb.Match(udpFrame(1, 2))
	if act != Capture || idx != -1 || snap != 0 {
		t.Fatalf("default path: %v %d %d", act, idx, snap)
	}
	if tb.DefaultHits() != 1 {
		t.Fatalf("default hits = %d", tb.DefaultHits())
	}

	drop := NewTable(Drop)
	if act, _, _ := drop.Match(udpFrame(1, 2)); act != Drop {
		t.Fatal("default drop not honoured")
	}
}

func TestFirstMatchWins(t *testing.T) {
	tb := NewTable(Drop)
	if err := tb.Append(&Rule{Name: "dns", Action: Capture, Proto: packet.ProtoUDP, DstPortMin: 53, DstPortMax: 53}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(&Rule{Name: "udp-any", Action: Drop, Proto: packet.ProtoUDP}); err != nil {
		t.Fatal(err)
	}
	act, idx, _ := tb.Match(udpFrame(1234, 53))
	if act != Capture || idx != 0 {
		t.Fatalf("dns packet: %v %d", act, idx)
	}
	act, idx, _ = tb.Match(udpFrame(1234, 80))
	if act != Drop || idx != 1 {
		t.Fatalf("other udp: %v %d", act, idx)
	}
	if tb.Hits(0) != 1 || tb.Hits(1) != 1 {
		t.Fatalf("hits %d %d", tb.Hits(0), tb.Hits(1))
	}
	tb.Reset()
	if tb.Hits(0) != 0 || tb.DefaultHits() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestMACMasking(t *testing.T) {
	tb := NewTable(Drop)
	// Match any source MAC in the 02:00:00:00:00:xx range except by last byte.
	r := &Rule{
		Name: "vendor", Action: Capture,
		SrcMAC:     packet.MAC{0x02, 0, 0, 0, 0, 0},
		SrcMACMask: packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0x00},
	}
	if err := tb.Append(r); err != nil {
		t.Fatal(err)
	}
	if act, _, _ := tb.Match(udpFrame(1, 2)); act != Capture {
		t.Fatal("masked MAC should match")
	}
	exact := &Rule{Name: "exact", Action: Capture, SrcMAC: macB, SrcMACMask: ExactMAC}
	tb2 := NewTable(Drop)
	_ = tb2.Append(exact)
	if act, _, _ := tb2.Match(udpFrame(1, 2)); act != Drop {
		t.Fatal("exact MAC mismatch should not match")
	}
}

func TestIPPrefix(t *testing.T) {
	tb := NewTable(Drop)
	_ = tb.Append(&Rule{Name: "net10.1", Action: Capture, SrcIP: packet.IP4{10, 1, 0, 0}, SrcPrefixLen: 16})
	if act, _, _ := tb.Match(udpFrame(5, 6)); act != Capture {
		t.Fatal("10.1.0.5 should match 10.1/16")
	}
	tb2 := NewTable(Drop)
	_ = tb2.Append(&Rule{Name: "net10.3", Action: Capture, SrcIP: packet.IP4{10, 3, 0, 0}, SrcPrefixLen: 16})
	if act, _, _ := tb2.Match(udpFrame(5, 6)); act != Drop {
		t.Fatal("10.1.0.5 should not match 10.3/16")
	}
	// /32 exact.
	tb3 := NewTable(Drop)
	_ = tb3.Append(&Rule{Name: "host", Action: Capture, DstIP: ip2, DstPrefixLen: 32})
	if act, _, _ := tb3.Match(udpFrame(5, 6)); act != Capture {
		t.Fatal("/32 dst failed")
	}
}

func TestPortRanges(t *testing.T) {
	tb := NewTable(Drop)
	_ = tb.Append(&Rule{Name: "ephemeral", Action: Capture, SrcPortMin: 1024, SrcPortMax: 65535})
	if act, _, _ := tb.Match(udpFrame(2000, 80)); act != Capture {
		t.Fatal("2000 in [1024,65535]")
	}
	if act, _, _ := tb.Match(udpFrame(80, 80)); act != Drop {
		t.Fatal("80 not in [1024,65535]")
	}
}

func TestProtoAndEtherType(t *testing.T) {
	tb := NewTable(Drop)
	_ = tb.Append(&Rule{Name: "tcp", Action: Capture, Proto: packet.ProtoTCP})
	if act, _, _ := tb.Match(tcpFrame(80)); act != Capture {
		t.Fatal("tcp frame should match proto 6")
	}
	if act, _, _ := tb.Match(udpFrame(1, 2)); act != Drop {
		t.Fatal("udp frame should not match proto 6")
	}

	arp := &packet.ARP{Op: packet.ARPRequest, SenderHW: macA, SenderIP: ip1, TargetIP: ip2}
	eth := &packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeARP}
	b := packet.NewSerializeBuffer(48, 0)
	arpFrame, _ := packet.Serialize(b, packet.SerializeOptions{}, eth, arp)
	tb2 := NewTable(Drop)
	_ = tb2.Append(&Rule{Name: "arp", Action: Capture, EtherType: packet.EtherTypeARP})
	if act, _, _ := tb2.Match(arpFrame); act != Capture {
		t.Fatal("ARP EtherType should match")
	}
	if act, _, _ := tb2.Match(udpFrame(1, 2)); act != Drop {
		t.Fatal("IPv4 frame should not match ARP rule")
	}
}

func TestVLANMatching(t *testing.T) {
	inner := udpFrame(1, 2)
	eth := &packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeVLAN}
	vlan := &packet.VLAN{ID: 100, EtherType: packet.EtherTypeIPv4}
	b := packet.NewSerializeBuffer(18, len(inner))
	tagged, _ := packet.Serialize(b, packet.SerializeOptions{}, eth, vlan,
		packet.Payload(inner[packet.EthernetHeaderLen:]))

	tb := NewTable(Drop)
	_ = tb.Append(&Rule{Name: "vlan100", Action: Capture, VLANID: 100})
	if act, _, _ := tb.Match(tagged); act != Capture {
		t.Fatal("VLAN 100 should match")
	}
	if act, _, _ := tb.Match(inner); act != Drop {
		t.Fatal("untagged should not match VLAN rule")
	}

	tbAny := NewTable(Drop)
	_ = tbAny.Append(&Rule{Name: "anyvlan", Action: Capture, MatchVLAN: true})
	if act, _, _ := tbAny.Match(tagged); act != Capture {
		t.Fatal("MatchVLAN should accept tagged")
	}
	if act, _, _ := tbAny.Match(inner); act != Drop {
		t.Fatal("MatchVLAN should reject untagged")
	}

	// Typed IP fields still work through the tag.
	tbIP := NewTable(Drop)
	_ = tbIP.Append(&Rule{Name: "ip-through-vlan", Action: Capture, DstIP: ip2, DstPrefixLen: 32})
	if act, _, _ := tbIP.Match(tagged); act != Capture {
		t.Fatal("IP match through VLAN failed")
	}
}

func TestRawValueMask(t *testing.T) {
	fr := udpFrame(1, 2)
	tb := NewTable(Drop)
	// Match the first 3 bytes of the destination MAC via raw mask.
	r := &Rule{
		Name: "raw", Action: Capture,
		RawValue: []byte{macB[0], macB[1], macB[2]},
		RawMask:  []byte{0xff, 0xff, 0xff},
	}
	if err := tb.Append(r); err != nil {
		t.Fatal(err)
	}
	if act, _, _ := tb.Match(fr); act != Capture {
		t.Fatal("raw prefix should match")
	}
	// Short frame: raw beyond length never matches.
	if act, _, _ := tb.Match(fr[:2]); act != Drop {
		t.Fatal("short frame matched raw rule")
	}
}

func TestSnapLenOverride(t *testing.T) {
	tb := NewTable(Capture)
	_ = tb.Append(&Rule{Name: "thin-udp", Action: Capture, Proto: packet.ProtoUDP, SnapLen: 64})
	_, _, snap := tb.Match(udpFrame(1, 2))
	if snap != 64 {
		t.Fatalf("snap = %d, want 64", snap)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Rule{
		{RawValue: []byte{1}, RawMask: []byte{}},
		{SrcPrefixLen: 33},
		{DstPrefixLen: -1},
		{SrcPortMin: 10, SrcPortMax: 5},
		{DstPortMin: 10, DstPortMax: 5},
		{SnapLen: -2},
		{PinQueue: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d validated", i)
		}
		tb := NewTable(Capture)
		if err := tb.Append(r); err == nil {
			t.Errorf("bad rule %d appended", i)
		}
	}
	good := &Rule{Proto: packet.ProtoUDP, DstPortMin: 53, DstPortMax: 53}
	if err := good.Validate(); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
	pinned := &Rule{Proto: packet.ProtoUDP, PinQueue: 4}
	if err := pinned.Validate(); err != nil {
		t.Errorf("queue-pinned rule rejected: %v", err)
	}
}

func TestNonIPFieldsRejectIPRules(t *testing.T) {
	// An IP-field rule must not match a non-IP frame.
	arpEth := &packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeARP}
	arp := &packet.ARP{Op: packet.ARPReply, SenderHW: macA, SenderIP: ip1, TargetIP: ip2}
	b := packet.NewSerializeBuffer(48, 0)
	fr, _ := packet.Serialize(b, packet.SerializeOptions{}, arpEth, arp)
	tb := NewTable(Drop)
	_ = tb.Append(&Rule{Name: "ip", Action: Capture, SrcIP: ip1, SrcPrefixLen: 8})
	if act, _, _ := tb.Match(fr); act != Drop {
		t.Fatal("ARP matched an IP-prefix rule")
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{Name: "x", Proto: 17, DstPortMin: 53, DstPortMax: 53}
	s := r.String()
	if !strings.Contains(s, "proto=17") || !strings.Contains(s, "dport=53-53") {
		t.Fatalf("String = %q", s)
	}
	if !strings.Contains((&Rule{Name: "all"}).String(), "any") {
		t.Fatal("wildcard rule should describe as any")
	}
	if Drop.String() != "drop" || Capture.String() != "capture" {
		t.Fatal("action strings")
	}
}

// Property: a rule built from a packet's own 5-tuple always matches that
// packet, and the all-wildcard rule matches everything.
func TestPropertySelfMatch(t *testing.T) {
	f := func(sp, dp uint16, a, b, c, d byte) bool {
		src := packet.IP4{10, a, b, 1}
		dst := packet.IP4{10, c, d, 2}
		fr := packet.UDPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: dst,
			SrcPort: sp, DstPort: dp, FrameSize: 96,
		}.Build()
		tb := NewTable(Drop)
		err := tb.Append(&Rule{
			Action: Capture, Proto: packet.ProtoUDP,
			SrcIP: src, SrcPrefixLen: 32, DstIP: dst, DstPrefixLen: 32,
			SrcPortMin: sp, SrcPortMax: sp, DstPortMin: dp, DstPortMax: dp,
		})
		if sp == 0 || dp == 0 {
			// Port 0 can't be expressed as an exact range (0 = wildcard);
			// skip those inputs.
			return true
		}
		if err != nil {
			return false
		}
		act, idx, _ := tb.Match(fr)
		if act != Capture || idx != 0 {
			return false
		}
		wild := NewTable(Drop)
		_ = wild.Append(&Rule{Action: Capture})
		wact, _, _ := wild.Match(fr)
		return wact == Capture
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatch16Rules(b *testing.B) {
	tb := NewTable(Capture)
	for i := 0; i < 16; i++ {
		_ = tb.Append(&Rule{
			Action: Drop, Proto: packet.ProtoTCP,
			DstPortMin: uint16(i*100 + 1), DstPortMax: uint16(i*100 + 50),
		})
	}
	fr := udpFrame(1234, 9999)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Match(fr)
	}
}
