package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FrameLease enforces the pooled-buffer ownership contract: every value
// acquired from wire.Pool.Get / wire.Pool.GetTrain / wire.NewPooledFrame /
// Frame.Clone must, on every control-flow path, either be released
// (Release/Recycle), transferred to another component (passed to any call:
// Transmit, TransmitTrain, Enqueue, Deliver, ring pushes, ledger drops, …),
// or escape the function (returned, stored into a field/slice/map/channel,
// captured by a closure). The analysis is a path-sensitive abstract
// interpretation of each function body; it reports
//
//   - leaks: an owned frame still held at a return (the PR 5 silent-leak
//     class — cold error paths that forget Release),
//   - double releases: Release on a path where the frame is already
//     definitely released,
//   - discarded acquisitions and owned frames overwritten by reassignment.
//
// The check is intra-procedural and modular: passing a frame to any callee
// transfers the obligation to that callee's own framelease check. Frames
// received as parameters are not tracked (their lease belongs to the
// caller until transferred).
var FrameLease = &Analyzer{
	Name: "framelease",
	Doc: "report pooled wire.Frame/wire.Train values that leak, are " +
		"double-released, or are overwritten while owned on some control-flow path",
	Run: runFrameLease,
}

// mark is the per-variable ownership state inside one abstract path.
type mark uint8

const (
	markOwned    mark = iota // acquired, not yet consumed on this path
	markReleased             // definitely released on this path
	markEscaped              // transferred/aliased/unknown — no further obligations
)

// absState is one abstract execution path: ownership marks plus the set of
// variables with a deferred release pending.
type absState struct {
	vars     map[types.Object]mark
	deferred map[types.Object]bool
}

func newState() *absState {
	return &absState{vars: map[types.Object]mark{}, deferred: map[types.Object]bool{}}
}

func (s *absState) clone() *absState {
	n := newState()
	for k, v := range s.vars {
		n.vars[k] = v
	}
	for k := range s.deferred {
		n.deferred[k] = true
	}
	return n
}

// key canonicalises the state for deduplication; objects are ordered by
// declaration position.
func (s *absState) key() string {
	objs := make([]types.Object, 0, len(s.vars))
	for o := range s.vars {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	var b strings.Builder
	for _, o := range objs {
		fmt.Fprintf(&b, "%d=%d;", o.Pos(), s.vars[o])
		if s.deferred[o] {
			b.WriteByte('d')
		}
	}
	return b.String()
}

// maxStates bounds the abstract path set; beyond it the paths merge into
// one conservative state (disagreeing marks become escaped, silencing
// reports rather than inventing them).
const maxStates = 64

func dedupe(states []*absState) []*absState {
	if len(states) <= 1 {
		return states
	}
	seen := map[string]bool{}
	out := states[:0]
	for _, s := range states {
		k := s.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	if len(out) <= maxStates {
		return out
	}
	merged := out[0].clone()
	for _, s := range out[1:] {
		//lint:ignore detorder lattice join: the merged mark per key is independent of visit order
		for o, m := range s.vars {
			if have, ok := merged.vars[o]; !ok || have != m {
				merged.vars[o] = markEscaped
			}
		}
		//lint:ignore detorder lattice join: keys absent from s demote to escaped regardless of order
		for o := range merged.vars {
			if _, ok := s.vars[o]; !ok {
				merged.vars[o] = markEscaped
			}
		}
		for o := range s.deferred {
			merged.deferred[o] = true
		}
	}
	return []*absState{merged}
}

// fnInterp analyses one function body.
type fnInterp struct {
	pass     *Pass
	info     *types.Info
	acquired map[types.Object]token.Pos // where each tracked var was acquired
	reported map[string]bool            // dedupe across paths
	pending  []Diagnostic               // flushed unless the function bails
	bailed   bool                       // goto/labelled branch: give up silently

	breakStack    [][]*absState
	continueStack [][]*absState
}

func runFrameLease(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			it := &fnInterp{
				pass:     pass,
				info:     pass.TypesInfo,
				acquired: map[types.Object]token.Pos{},
				reported: map[string]bool{},
			}
			out := it.stmts(body.List, []*absState{newState()})
			it.exitCheck(out, body.Rbrace)
			if !it.bailed {
				*pass.diags = append(*pass.diags, it.pending...)
			}
			return true // nested FuncLits are analysed independently too
		})
	}
	return nil
}

func (it *fnInterp) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	k := fmt.Sprintf("%d:%s", pos, msg)
	if it.reported[k] {
		return
	}
	it.reported[k] = true
	it.pending = append(it.pending, Diagnostic{Pos: pos, Message: msg, Analyzer: it.pass.Analyzer.Name})
}

// line formats the acquisition site for messages.
func (it *fnInterp) line(o types.Object) string {
	return it.pass.Fset.Position(it.acquired[o]).String()
}

// exitCheck applies pending deferred releases and reports owned frames at
// a function exit.
func (it *fnInterp) exitCheck(states []*absState, at token.Pos) {
	for _, st := range states {
		//lint:ignore detorder per-key mark flip: iteration order cannot affect the result
		for o := range st.deferred {
			if st.vars[o] == markOwned {
				st.vars[o] = markReleased
			}
		}
		objs := make([]types.Object, 0, len(st.vars))
		for o := range st.vars {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
		for _, o := range objs {
			if st.vars[o] == markOwned {
				it.reportf(at, "pooled %s acquired at %s is not released or transferred on this path", o.Name(), it.line(o))
			}
		}
	}
}

// acquireKind reports whether the call acquires a pooled value.
func (it *fnInterp) isAcquire(call *ast.CallExpr) bool {
	fn := calleeFunc(it.info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		switch fn.Name() {
		case "Get", "GetTrain":
			return isNamedFrom(recv.Type(), "wire", "Pool")
		case "Clone":
			return isNamedFrom(recv.Type(), "wire", "Frame")
		}
		return false
	}
	return fn.Name() == "NewPooledFrame" && fn.Pkg() != nil && pkgPathMatches(fn.Pkg().Path(), "wire")
}

// releaseTarget returns the tracked object a call releases (f.Release() /
// t.Recycle()), or nil.
func (it *fnInterp) releaseTarget(call *ast.CallExpr, st *absState) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Release" && sel.Sel.Name != "Recycle") {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	o := it.info.Uses[id]
	if o == nil {
		return nil
	}
	if _, tracked := st.vars[o]; tracked {
		return o
	}
	return nil
}

// trackedIdent resolves e to a tracked object in st, or nil.
func (it *fnInterp) trackedIdent(e ast.Expr, st *absState) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	o := it.info.Uses[id]
	if o == nil {
		return nil
	}
	if _, tracked := st.vars[o]; tracked {
		return o
	}
	return nil
}

// evalExpr walks an expression updating st: Release/Recycle calls consume,
// any other use of a tracked variable as a call argument, composite-literal
// element, address-of operand, channel payload, or closure capture marks it
// escaped (the obligation transfers).
func (it *fnInterp) evalExpr(e ast.Expr, st *absState) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if o := it.releaseTarget(x, st); o != nil {
			for _, arg := range x.Args {
				it.evalExpr(arg, st)
			}
			if st.vars[o] == markReleased {
				it.reportf(x.Pos(), "double release of pooled %s acquired at %s", o.Name(), it.line(o))
			}
			if st.vars[o] != markEscaped {
				st.vars[o] = markReleased
			}
			return
		}
		// A nested acquisition flows straight into the enclosing expression
		// (return f.Clone(), enqueue(f.Clone()), …) — an immediate transfer,
		// so nothing further to track. The truly-discarded case (a bare
		// statement-level acquire) is reported by the ExprStmt handler.
		if it.isAcquire(x) {
			it.evalExpr(receiverOrFun(x), st)
			for _, arg := range x.Args {
				it.evalExpr(arg, st)
			}
			return
		}
		it.evalExpr(x.Fun, st)
		for _, arg := range x.Args {
			if o := it.trackedIdent(arg, st); o != nil {
				st.vars[o] = markEscaped
				continue
			}
			it.evalExpr(arg, st)
		}
	case *ast.FuncLit:
		// Captured frames may be consumed at any later time.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := it.info.Uses[id]; o != nil {
					if _, tracked := st.vars[o]; tracked {
						st.vars[o] = markEscaped
					}
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if o := it.trackedIdent(x.X, st); o != nil {
				st.vars[o] = markEscaped
				return
			}
		}
		it.evalExpr(x.X, st)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if o := it.trackedIdent(elt, st); o != nil {
				st.vars[o] = markEscaped
				continue
			}
			it.evalExpr(elt, st)
		}
	case *ast.SelectorExpr:
		it.evalExpr(x.X, st)
	case *ast.ParenExpr:
		it.evalExpr(x.X, st)
	case *ast.StarExpr:
		it.evalExpr(x.X, st)
	case *ast.BinaryExpr:
		it.evalExpr(x.X, st)
		it.evalExpr(x.Y, st)
	case *ast.IndexExpr:
		it.evalExpr(x.X, st)
		it.evalExpr(x.Index, st)
	case *ast.SliceExpr:
		it.evalExpr(x.X, st)
		it.evalExpr(x.Low, st)
		it.evalExpr(x.High, st)
		it.evalExpr(x.Max, st)
	case *ast.TypeAssertExpr:
		it.evalExpr(x.X, st)
	case *ast.KeyValueExpr:
		it.evalExpr(x.Key, st)
		it.evalExpr(x.Value, st)
	}
}

// receiverOrFun returns the callee expression for recursive evaluation.
func receiverOrFun(call *ast.CallExpr) ast.Expr { return call.Fun }

// assign handles one lhs ← rhs pair.
func (it *fnInterp) assign(lhs, rhs ast.Expr, st *absState) {
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	if isCall && it.isAcquire(call) {
		it.evalExpr(call.Fun, st)
		for _, arg := range call.Args {
			it.evalExpr(arg, st)
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			o := it.info.Defs[id]
			if o == nil {
				o = it.info.Uses[id]
			}
			if o != nil {
				if m, tracked := st.vars[o]; tracked && m == markOwned {
					it.reportf(rhs.Pos(), "pooled %s reacquired here while the value from %s is still owned", o.Name(), it.line(o))
				}
				st.vars[o] = markOwned
				it.acquired[o] = call.Pos()
				return
			}
		}
		// Acquired straight into a field/index/blank: stored or discarded.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			it.reportf(rhs.Pos(), "pooled value acquired here is discarded without Release or transfer")
		} else {
			it.evalExpr(lhs, st)
		}
		return
	}

	// Aliasing or storing a tracked value transfers its obligation.
	if o := it.trackedIdent(rhs, st); o != nil {
		st.vars[o] = markEscaped
	} else {
		it.evalExpr(rhs, st)
	}

	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		o := it.info.Uses[id]
		if o == nil {
			o = it.info.Defs[id]
		}
		if o != nil {
			if m, tracked := st.vars[o]; tracked && m == markOwned {
				it.reportf(lhs.Pos(), "pooled %s acquired at %s is overwritten while still owned", o.Name(), it.line(o))
			}
			delete(st.vars, o)
			delete(st.deferred, o)
		}
		return
	}
	it.evalExpr(lhs, st)
}

// isTerminal reports whether a call ends the path abnormally (panic,
// os.Exit, runtime.Goexit, t.Fatal…): owned frames are unreachable for the
// pool either way, so no leak is reported past it.
func (it *fnInterp) isTerminal(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	if fn := calleeFunc(it.info, call); fn != nil && fn.Pkg() != nil {
		full := fn.Pkg().Path() + "." + fn.Name()
		switch full {
		case "os.Exit", "runtime.Goexit":
			return true
		}
	}
	return false
}

// stmts threads the state set through a statement list.
func (it *fnInterp) stmts(list []ast.Stmt, in []*absState) []*absState {
	states := in
	for _, s := range list {
		if it.bailed || len(states) == 0 {
			return nil
		}
		states = it.stmt(s, states)
	}
	return dedupe(states)
}

func (it *fnInterp) stmt(s ast.Stmt, in []*absState) []*absState {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if it.isTerminal(call) {
				return nil
			}
			if it.isAcquire(call) {
				it.reportf(call.Pos(), "pooled value acquired here is discarded without Release or transfer")
			}
		}
		for _, st := range in {
			it.evalExpr(x.X, st)
		}
		return in

	case *ast.AssignStmt:
		for _, st := range in {
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					it.assign(x.Lhs[i], x.Rhs[i], st)
				}
			} else {
				// Multi-value assignment: acquires never appear here (all
				// acquire calls are single-result); treat as generic uses.
				for _, r := range x.Rhs {
					it.evalExpr(r, st)
				}
				for _, l := range x.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						o := it.info.Uses[id]
						if o == nil {
							o = it.info.Defs[id]
						}
						if o != nil {
							if m, tracked := st.vars[o]; tracked && m == markOwned {
								it.reportf(l.Pos(), "pooled %s acquired at %s is overwritten while still owned", o.Name(), it.line(o))
							}
							delete(st.vars, o)
						}
						continue
					}
					it.evalExpr(l, st)
				}
			}
		}
		return in

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for _, st := range in {
					for i := range vs.Names {
						it.assign(vs.Names[i], vs.Values[i], st)
					}
				}
			}
		}
		return in

	case *ast.ReturnStmt:
		for _, st := range in {
			for _, r := range x.Results {
				if o := it.trackedIdent(r, st); o != nil {
					st.vars[o] = markEscaped
					continue
				}
				it.evalExpr(r, st)
			}
		}
		it.exitCheck(in, x.Pos())
		return nil

	case *ast.DeferStmt:
		for _, st := range in {
			if o := it.releaseTarget(x.Call, st); o != nil {
				st.deferred[o] = true
				continue
			}
			it.evalExpr(x.Call.Fun, st)
			for _, arg := range x.Call.Args {
				if o := it.trackedIdent(arg, st); o != nil {
					st.vars[o] = markEscaped
					continue
				}
				it.evalExpr(arg, st)
			}
		}
		return in

	case *ast.GoStmt:
		for _, st := range in {
			it.evalExpr(x.Call.Fun, st)
			for _, arg := range x.Call.Args {
				if o := it.trackedIdent(arg, st); o != nil {
					st.vars[o] = markEscaped
					continue
				}
				it.evalExpr(arg, st)
			}
		}
		return in

	case *ast.SendStmt:
		for _, st := range in {
			it.evalExpr(x.Chan, st)
			if o := it.trackedIdent(x.Value, st); o != nil {
				st.vars[o] = markEscaped
				continue
			}
			it.evalExpr(x.Value, st)
		}
		return in

	case *ast.IncDecStmt:
		for _, st := range in {
			it.evalExpr(x.X, st)
		}
		return in

	case *ast.BlockStmt:
		return it.stmts(x.List, in)

	case *ast.IfStmt:
		if x.Init != nil {
			in = it.stmt(x.Init, in)
		}
		for _, st := range in {
			it.evalExpr(x.Cond, st)
		}
		var thenIn, elseIn []*absState
		for _, st := range in {
			thenIn = append(thenIn, st.clone())
			elseIn = append(elseIn, st)
		}
		out := it.stmts(x.Body.List, thenIn)
		if x.Else != nil {
			out = append(out, it.stmt(x.Else, elseIn)...)
		} else {
			out = append(out, elseIn...)
		}
		return dedupe(out)

	case *ast.SwitchStmt:
		if x.Init != nil {
			in = it.stmt(x.Init, in)
		}
		for _, st := range in {
			it.evalExpr(x.Tag, st)
		}
		return it.caseClauses(x.Body, in, func(cc *ast.CaseClause, st *absState) {
			for _, e := range cc.List {
				it.evalExpr(e, st)
			}
		})

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			in = it.stmt(x.Init, in)
		}
		for _, st := range in {
			if as, ok := x.Assign.(*ast.AssignStmt); ok {
				for _, r := range as.Rhs {
					it.evalExpr(r, st)
				}
			} else if es, ok := x.Assign.(*ast.ExprStmt); ok {
				it.evalExpr(es.X, st)
			}
		}
		return it.caseClauses(x.Body, in, nil)

	case *ast.SelectStmt:
		it.pushBreak()
		var out []*absState
		hasDefault := false
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			branch := cloneAll(in)
			if cc.Comm != nil {
				branch = it.stmt(cc.Comm, branch)
			}
			out = append(out, it.stmts(cc.Body, branch)...)
		}
		_ = hasDefault // a select with no ready case blocks; all exits covered above
		out = append(out, it.popBreak()...)
		return dedupe(out)

	case *ast.ForStmt:
		if x.Init != nil {
			in = it.stmt(x.Init, in)
		}
		return it.loop(in, func(states []*absState) []*absState {
			for _, st := range states {
				if x.Cond != nil {
					it.evalExpr(x.Cond, st)
				}
			}
			states = it.stmts(x.Body.List, cloneAll(states))
			states = append(states, it.popContinueKeep()...)
			if x.Post != nil {
				states = it.stmt(x.Post, states)
			}
			return states
		}, x.Cond == nil)

	case *ast.RangeStmt:
		for _, st := range in {
			it.evalExpr(x.X, st)
		}
		return it.loop(in, func(states []*absState) []*absState {
			body := cloneAll(states)
			for _, st := range body {
				// Loop variables shadow/overwrite each iteration.
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e == nil {
						continue
					}
					if id, ok := e.(*ast.Ident); ok {
						o := it.info.Defs[id]
						if o == nil {
							o = it.info.Uses[id]
						}
						if o != nil {
							delete(st.vars, o)
						}
					}
				}
			}
			body = it.stmts(x.Body.List, body)
			body = append(body, it.popContinueKeep()...)
			return body
		}, false)

	case *ast.BranchStmt:
		if x.Label != nil || x.Tok == token.GOTO {
			it.bailed = true
			return nil
		}
		switch x.Tok {
		case token.BREAK:
			it.addBreak(in)
			return nil
		case token.CONTINUE:
			it.addContinue(in)
			return nil
		case token.FALLTHROUGH:
			// Approximated: treated as the end of the case body. The next
			// clause is analysed from the switch entry states as well, so
			// no consume is missed, only correlated precision.
			return in
		}
		return in

	case *ast.LabeledStmt:
		// Labels exist to be branch targets; the targeted branches bail.
		return it.stmt(x.Stmt, in)

	case *ast.EmptyStmt:
		return in
	}
	return in
}

// caseClauses runs each case body from a copy of the entry states (plus a
// no-match fall-through when there is no default clause).
func (it *fnInterp) caseClauses(body *ast.BlockStmt, in []*absState, evalCase func(*ast.CaseClause, *absState)) []*absState {
	it.pushBreak()
	var out []*absState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		branch := cloneAll(in)
		if evalCase != nil {
			for _, st := range branch {
				evalCase(cc, st)
			}
		}
		out = append(out, it.stmts(cc.Body, branch)...)
	}
	if !hasDefault {
		out = append(out, in...)
	}
	out = append(out, it.popBreak()...)
	return dedupe(out)
}

// loop iterates body to a fixpoint over the abstract states. always marks
// `for {}` loops, whose only normal exits are breaks.
func (it *fnInterp) loop(in []*absState, body func([]*absState) []*absState, always bool) []*absState {
	it.pushBreak()
	it.pushContinue()
	seen := map[string]bool{}
	frontier := cloneAll(in)
	var exits []*absState
	if !always {
		exits = append(exits, cloneAll(in)...) // zero iterations
	}
	for iter := 0; iter < 4 && len(frontier) > 0; iter++ {
		var next []*absState
		for _, st := range frontier {
			if k := st.key(); !seen[k] {
				seen[k] = true
				next = append(next, st)
			}
		}
		if len(next) == 0 {
			break
		}
		after := body(next)
		if !always {
			exits = append(exits, cloneAll(after)...)
		}
		frontier = after
	}
	it.popContinue()
	exits = append(exits, it.popBreak()...)
	return dedupe(exits)
}

func (it *fnInterp) pushBreak()    { it.breakStack = append(it.breakStack, nil) }
func (it *fnInterp) pushContinue() { it.continueStack = append(it.continueStack, nil) }

func (it *fnInterp) addBreak(states []*absState) {
	if n := len(it.breakStack); n > 0 {
		it.breakStack[n-1] = append(it.breakStack[n-1], cloneAll(states)...)
	}
}

func (it *fnInterp) addContinue(states []*absState) {
	if n := len(it.continueStack); n > 0 {
		it.continueStack[n-1] = append(it.continueStack[n-1], cloneAll(states)...)
	}
}

func (it *fnInterp) popBreak() []*absState {
	n := len(it.breakStack)
	out := it.breakStack[n-1]
	it.breakStack = it.breakStack[:n-1]
	return out
}

func (it *fnInterp) popContinue() {
	it.continueStack = it.continueStack[:len(it.continueStack)-1]
}

// popContinueKeep drains accumulated continue states back into the loop
// body flow without popping the collector (the loop driver pops it).
func (it *fnInterp) popContinueKeep() []*absState {
	n := len(it.continueStack)
	out := it.continueStack[n-1]
	it.continueStack[n-1] = nil
	return out
}

func cloneAll(states []*absState) []*absState {
	out := make([]*absState, len(states))
	for i, s := range states {
		out[i] = s.clone()
	}
	return out
}
