package ofswitch

import (
	"fmt"

	"osnt/internal/openflow"
	"osnt/internal/ring"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// Config parameterises a simulated OpenFlow switch.
type Config struct {
	// Ports is the dataplane port count (default 4). OpenFlow port
	// numbers are 1-based: port index i is OF port i+1.
	Ports int
	// Rate is the per-port line rate (default 10 Gb/s).
	Rate wire.Rate
	// DatapathID identifies the switch in FEATURES_REPLY.
	DatapathID uint64
	// TableCap bounds the flow table (default 4096, a typical hardware
	// TCAM size of the era).
	TableCap int
	// ExactFastPath enables the exact-match hash lookup (ablation).
	ExactFastPath bool

	// PipelineLatency is the fixed dataplane forwarding delay (default
	// 600 ns).
	PipelineLatency sim.Duration
	// EgressQueueCap bounds each output queue in packets (default 512).
	EgressQueueCap int

	// --- control plane model ---

	// CtrlLatency is the one-way control channel latency (default
	// 100 µs, a management-network RTT of 200 µs).
	CtrlLatency sim.Duration
	// FlowModCost is the management CPU time to process one FLOW_MOD
	// (default 150 µs: firmware parsing, validation, driver call).
	FlowModCost sim.Duration
	// FlowModPerEntry adds table-scan cost per existing entry (default
	// 30 ns) — large tables make modifications slower.
	FlowModPerEntry sim.Duration
	// HWInstallDelay is the lag between control-plane completion of a
	// FLOW_MOD and the dataplane actually applying it (default 1.5 ms,
	// the TCAM-write asynchrony OFLOPS exposed).
	HWInstallDelay sim.Duration
	// BarrierCost is the CPU time to process a BARRIER_REQUEST (default
	// 20 µs).
	BarrierCost sim.Duration
	// EchoCost is the CPU time to answer an ECHO_REQUEST (default 5 µs).
	EchoCost sim.Duration
	// PacketInCost is the slow-path CPU time per table-miss packet
	// (default 80 µs).
	PacketInCost sim.Duration
	// DataplaneCPUTax is management CPU time consumed per forwarded
	// packet (counter maintenance etc., default 0: ideal hardware).
	// Non-zero values reproduce control-plane starvation under
	// dataplane load (experiment E8).
	DataplaneCPUTax sim.Duration
	// CPUBacklogCap bounds the CPU work backlog (default 20 ms): tax
	// beyond it is shed, protocol messages queue regardless.
	CPUBacklogCap sim.Duration
	// MissSendLen is the packet prefix bytes sent in PACKET_IN (default
	// 128).
	MissSendLen int
	// ExpirySweep is the flow-timeout sweep period (default 500 ms).
	ExpirySweep sim.Duration
}

func (c *Config) fill() {
	if c.Ports == 0 {
		c.Ports = 4
	}
	if c.Rate == 0 {
		c.Rate = wire.Rate10G
	}
	if c.TableCap == 0 {
		c.TableCap = 4096
	}
	if c.PipelineLatency == 0 {
		c.PipelineLatency = 600 * sim.Nanosecond
	}
	if c.EgressQueueCap == 0 {
		c.EgressQueueCap = 512
	}
	if c.CtrlLatency == 0 {
		c.CtrlLatency = 100 * sim.Microsecond
	}
	if c.FlowModCost == 0 {
		c.FlowModCost = 150 * sim.Microsecond
	}
	if c.FlowModPerEntry == 0 {
		c.FlowModPerEntry = 30 * sim.Nanosecond
	}
	if c.HWInstallDelay == 0 {
		c.HWInstallDelay = 1500 * sim.Microsecond
	}
	if c.BarrierCost == 0 {
		c.BarrierCost = 20 * sim.Microsecond
	}
	if c.EchoCost == 0 {
		c.EchoCost = 5 * sim.Microsecond
	}
	if c.PacketInCost == 0 {
		c.PacketInCost = 80 * sim.Microsecond
	}
	if c.CPUBacklogCap == 0 {
		c.CPUBacklogCap = 20 * sim.Millisecond
	}
	if c.MissSendLen == 0 {
		c.MissSendLen = 128
	}
	if c.ExpirySweep == 0 {
		c.ExpirySweep = 500 * sim.Millisecond
	}
}

// Switch is one simulated OpenFlow switch.
type Switch struct {
	Engine *sim.Engine

	cfg   Config
	ports []*Port

	// table is the dataplane's view. Control-plane changes land here
	// only after HWInstallDelay.
	table *FlowTable

	ctl *Controller // attached control channel, nil if none

	// Management CPU: a single serial server.
	cpuFreeAt sim.Time

	misses         uint64
	forwarded      stats.Counter
	dropsNoRule    uint64
	runtDrops      uint64
	unconnDrops    uint64
	sweepScheduled bool

	// Loss attribution: drop paths report (dropHop, reason) into the
	// scenario ledger when one is attached (topo threads it).
	ledger  *wire.DropLedger
	dropHop int
}

// SetDropSite attaches the scenario's loss-attribution ledger; every
// dataplane drop path reports at the given hop ID.
func (s *Switch) SetDropSite(ledger *wire.DropLedger, hop int) {
	s.ledger, s.dropHop = ledger, hop
}

// New builds a switch on the engine.
func New(e *sim.Engine, cfg Config) *Switch {
	cfg.fill()
	s := &Switch{
		Engine: e,
		cfg:    cfg,
		table:  NewFlowTable(cfg.TableCap, cfg.ExactFastPath),
	}
	for i := 0; i < cfg.Ports; i++ {
		s.ports = append(s.ports, &Port{sw: s, index: i})
	}
	return s
}

// NumPorts returns the dataplane port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Rate returns the per-port line rate.
func (s *Switch) Rate() wire.Rate { return s.cfg.Rate }

// Port returns port index i (OF port i+1).
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Table exposes the dataplane flow table (read-mostly; tests inspect
// it).
func (s *Switch) Table() *FlowTable { return s.table }

// Misses returns the number of table-miss packets.
func (s *Switch) Misses() uint64 { return s.misses }

// Forwarded returns counters over frames forwarded by the dataplane.
func (s *Switch) Forwarded() stats.Counter { return s.forwarded }

// DropsNoRule returns packets dropped because a miss could not be sent
// to a controller (no channel attached).
func (s *Switch) DropsNoRule() uint64 { return s.dropsNoRule }

// RuntDrops returns unparseable frames discarded at the dataplane
// parser.
func (s *Switch) RuntDrops() uint64 { return s.runtDrops }

// UnconnectedDrops returns frames output toward ports with no link.
func (s *Switch) UnconnectedDrops() uint64 { return s.unconnDrops }

// cpuRun enqueues cost on the serial management CPU and invokes fn when
// that work completes. It returns the completion instant.
func (s *Switch) cpuRun(cost sim.Duration, fn func()) sim.Time {
	now := s.Engine.Now()
	start := now
	if s.cpuFreeAt > start {
		start = s.cpuFreeAt
	}
	done := start.Add(cost)
	s.cpuFreeAt = done
	if fn != nil {
		s.Engine.Schedule(done, fn)
	}
	return done
}

// cpuTax consumes CPU without a completion callback, shedding work when
// the backlog exceeds the cap (dataplane counter work is best-effort;
// protocol work is not).
func (s *Switch) cpuTax(cost sim.Duration) {
	now := s.Engine.Now()
	if s.cpuFreeAt.Sub(now) > s.cfg.CPUBacklogCap {
		return
	}
	if s.cpuFreeAt < now {
		s.cpuFreeAt = now
	}
	s.cpuFreeAt = s.cpuFreeAt.Add(cost)
}

// ensureSweep keeps a timeout sweep pending for as long as any installed
// entry carries a timeout. Demand-driven scheduling keeps the event queue
// quiescent otherwise, so Engine.Run terminates on idle topologies.
func (s *Switch) ensureSweep() {
	if s.sweepScheduled {
		return
	}
	s.sweepScheduled = true
	s.Engine.ScheduleAfter(s.cfg.ExpirySweep, func() {
		s.sweepScheduled = false
		s.sweepExpired()
		for _, e := range s.table.Entries() {
			if e.IdleTimeout > 0 || e.HardTimeout > 0 {
				s.ensureSweep()
				return
			}
		}
	})
}

func (s *Switch) sweepExpired() {
	for _, e := range s.table.Expired(s.Engine.Now()) {
		if e.Flags&openflow.FlagSendFlowRem != 0 && s.ctl != nil {
			reason := openflow.RemovedIdleTimeout
			if e.HardTimeout > 0 {
				reason = openflow.RemovedHardTimeout
			}
			dur := s.Engine.Now().Sub(e.InstalledAt)
			s.ctl.fromSwitch(&openflow.FlowRemoved{
				Match: e.Match, Cookie: e.Cookie, Priority: e.Priority,
				Reason:      reason,
				DurationSec: uint32(dur / sim.Second), DurationNsec: uint32(dur % sim.Second / sim.Nanosecond),
				IdleTimeout: e.IdleTimeout,
				PacketCount: e.Packets, ByteCount: e.Bytes,
			}, 0)
		}
	}
}

// Port is one dataplane interface.
type Port struct {
	sw    *Switch
	index int

	link *wire.Link
	// queue is the egress FIFO: head-indexed with a recycled backing
	// array, drained by one reusable event per port, so steady-state
	// egress queueing allocates nothing per packet.
	queue ring.FIFO[*wire.Frame]
	busy  bool
	txEv  *sim.Event // reusable: at most one transmission in flight
	drops uint64

	rx stats.Counter
	tx stats.Counter
}

// Index returns the port index (OF port Index()+1).
func (p *Port) Index() int { return p.index }

// OFPort returns the 1-based OpenFlow port number.
func (p *Port) OFPort() uint16 { return uint16(p.index + 1) }

// SetLink attaches the egress link.
func (p *Port) SetLink(l *wire.Link) { p.link = l }

// Drops returns egress queue overflow drops.
func (p *Port) Drops() uint64 { return p.drops }

// RxStats and TxStats return the port counters (frame sizes, FCS
// inclusive).
func (p *Port) RxStats() stats.Counter { return p.rx }

// TxStats returns the transmit counters.
func (p *Port) TxStats() stats.Counter { return p.tx }

// Receive implements wire.Endpoint: dataplane packet arrival. The
// switch owns the delivered frame: it is either forwarded onward (the
// egress link carries it to the next device) or released back to its
// pool on every drop path, so the dataplane stays allocation-free under
// load.
func (p *Port) Receive(f *wire.Frame, _ sim.Time, at sim.Time) {
	p.rx.Add(f.Size)
	s := p.sw
	key, err := openflow.KeyFromPacket(f.Data, p.OFPort())
	if err != nil {
		s.runtDrops++
		s.ledger.Report(s.dropHop, wire.DropRunt, 1)
		f.Release()
		return // unparseable runt: dropped
	}
	if s.cfg.DataplaneCPUTax > 0 {
		s.cpuTax(s.cfg.DataplaneCPUTax)
	}
	entry := s.table.Lookup(&key)
	if entry == nil {
		s.misses++
		if s.ctl == nil {
			s.dropsNoRule++
			s.ledger.Report(s.dropHop, wire.DropNoRule, 1)
			f.Release()
			return
		}
		// Slow path: the CPU builds a PACKET_IN from a copied prefix;
		// the frame itself goes no further.
		data := f.Data
		if len(data) > s.cfg.MissSendLen {
			data = data[:s.cfg.MissSendLen]
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		total := uint16(len(f.Data))
		inPort := p.OFPort()
		f.Release()
		s.cpuRun(s.cfg.PacketInCost, func() {
			s.ctl.fromSwitch(&openflow.PacketIn{
				BufferID: 0xffffffff, TotalLen: total, InPort: inPort,
				Reason: openflow.ReasonNoMatch, Data: cp,
			}, 0)
		})
		return
	}
	entry.Packets++
	entry.Bytes += uint64(f.Size)
	entry.LastUsed = at
	ready := at.Add(s.cfg.PipelineLatency)
	s.applyActions(entry.Actions, f, p, ready)
}

// ReceiveTrain implements wire.TrainEndpoint: a uniform run whose flow
// hits the table with a single concrete output and an idle egress port
// crosses the dataplane as one lookup, one bulk counter update, and one
// back-to-back transmission. Everything else — misses, floods, rewrites,
// CPU-taxed dataplanes, busy egress — unbundles into per-frame Receive
// calls with each frame's exact arrival instants.
func (p *Port) ReceiveTrain(t *wire.Train, start, at sim.Time) {
	if p.sw.receiveTrainFast(p, t, at) {
		return
	}
	fb, lb := start, at
	for i, f := range t.Frames {
		t.Frames[i] = nil
		p.Receive(f, fb, lb)
		if i+1 < len(t.Frames) {
			fb = lb
			lb = fb.Add(wire.SerializationTime(t.Frames[i+1].Size, t.Rate))
		}
	}
	t.Frames = t.Frames[:0]
	t.Recycle()
}

// receiveTrainFast attempts the coalesced dataplane pass, reporting
// whether it consumed the train. The guards guarantee per-frame
// equivalence: byte-identical frames share one flow key and verdict; an
// idle, empty egress whose wire is no faster than the arrival spacing
// serialises the run back-to-back exactly as N chained TransmitAt calls
// would; and a zero CPU tax means no per-frame management-CPU state to
// advance.
func (s *Switch) receiveTrainFast(p *Port, t *wire.Train, at sim.Time) bool {
	n := len(t.Frames)
	if !t.Uniform || n < 2 || s.cfg.DataplaneCPUTax > 0 {
		return false
	}
	f0 := t.Frames[0]
	slot := wire.SerializationTime(f0.Size, t.Rate)
	if wire.SerializationTime(f0.Size, s.cfg.Rate) < slot {
		return false // faster egress wire opens inter-frame gaps
	}
	key, err := openflow.KeyFromPacket(f0.Data, p.OFPort())
	if err != nil {
		return false // runts drop per frame
	}
	entry := s.table.Lookup(&key)
	if entry == nil || len(entry.Actions) != 1 {
		return false
	}
	act, ok := entry.Actions[0].(*openflow.ActionOutput)
	if !ok || act.Port < 1 || int(act.Port) > len(s.ports) {
		return false
	}
	out := s.ports[act.Port-1]
	if out.link == nil || out.busy || out.queue.Len() > 0 {
		return false
	}

	size := f0.Size
	for range t.Frames {
		p.rx.Add(size)
	}
	entry.Packets += uint64(n)
	entry.Bytes += uint64(n) * uint64(size)
	entry.LastUsed = at.Add(sim.Duration(n-1) * slot) // last frame's arrival
	for _, f := range t.Frames {
		f.SrcPort = out.index
	}
	ready := at.Add(s.cfg.PipelineLatency)
	out.busy = true
	end := out.link.TransmitTrain(t, ready)
	for i := 0; i < n; i++ {
		out.tx.Add(size)
		s.forwarded.Add(size)
	}
	eventAt := end
	if now := s.Engine.Now(); eventAt < now {
		eventAt = now
	}
	if out.txEv == nil {
		out.txEv = s.Engine.Schedule(eventAt, out.txDone)
	} else {
		s.Engine.Reschedule(out.txEv, eventAt)
	}
	return true
}

// applyActions executes an OF 1.0 action list on a frame arriving on
// ingress in, with forwarding allowed from instant ready. The switch
// owns the frame: header rewrites mutate it in place, every consuming
// output before the last takes a clone of the working packet, and the
// last one carries the frame itself — so the common single-output path
// moves the packet through the dataplane without copying it. A frame no
// output consumes is released back to its pool.
func (s *Switch) applyActions(actions []openflow.Action, f *wire.Frame, in *Port, ready sim.Time) {
	last := -1
	for i, a := range actions {
		if act, ok := a.(*openflow.ActionOutput); ok && s.consumesFrame(act, in) {
			last = i
		}
	}
	// Ownership may transfer at the last consuming output only when it
	// is the final action: a later rewrite would mutate a frame already
	// sitting in an egress queue, and a later controller output would
	// read a frame the queue (or its overflow Release) no longer
	// guarantees. Those action-list-pathological cases fall back to
	// cloning at every output and releasing the working frame at the
	// end; the common lists — rewrites first, one output last — keep
	// the zero-copy path.
	transfer := last >= 0 && last == len(actions)-1
	for i, a := range actions {
		if act, ok := a.(*openflow.ActionOutput); ok {
			s.output(act, f, in, ready, transfer && i == last)
		} else {
			rewriteFrame(f, a)
		}
	}
	if !transfer {
		f.Release()
	}
}

// lastFloodEligible returns the highest port index a flood from ingress
// in reaches (-1 when none): the single source of truth for both the
// ownership accounting and the flood fan-out itself.
func (s *Switch) lastFloodEligible(in *Port) int {
	last := -1
	for i, p := range s.ports {
		if p != in && p.link != nil {
			last = i
		}
	}
	return last
}

// consumesFrame reports whether an output action will take ownership of
// the working frame, i.e. hand it to at least one egress queue. The
// controller port only copies a prefix, and reserved/unknown ports drop.
func (s *Switch) consumesFrame(act *openflow.ActionOutput, in *Port) bool {
	switch {
	case act.Port == openflow.PortFlood || act.Port == openflow.PortAll:
		return s.lastFloodEligible(in) >= 0
	case act.Port == openflow.PortInPort:
		return true
	case act.Port >= 1 && int(act.Port) <= len(s.ports):
		return true
	default:
		return false
	}
}

// output applies one output action. own marks the action that inherits
// the working frame; every other consumer clones it.
func (s *Switch) output(act *openflow.ActionOutput, f *wire.Frame, in *Port, ready sim.Time, own bool) {
	take := func() *wire.Frame {
		if own {
			return f
		}
		return f.Clone()
	}
	switch {
	case act.Port == openflow.PortController:
		if s.ctl != nil {
			data := f.Data
			maxLen := int(act.MaxLen)
			if maxLen > 0 && len(data) > maxLen {
				data = data[:maxLen]
			}
			cp := make([]byte, len(data))
			copy(cp, data)
			total := uint16(len(f.Data))
			inPort := in.OFPort()
			s.cpuRun(s.cfg.PacketInCost, func() {
				s.ctl.fromSwitch(&openflow.PacketIn{
					BufferID: 0xffffffff, TotalLen: total, InPort: inPort,
					Reason: openflow.ReasonAction, Data: cp,
				}, 0)
			})
		}
	case act.Port == openflow.PortFlood || act.Port == openflow.PortAll:
		lastEligible := s.lastFloodEligible(in)
		for i, p := range s.ports {
			if p == in || p.link == nil {
				continue
			}
			if i == lastEligible {
				p.enqueue(take(), ready)
			} else {
				p.enqueue(f.Clone(), ready)
			}
		}
	case act.Port == openflow.PortInPort:
		in.enqueue(take(), ready)
	case act.Port >= 1 && int(act.Port) <= len(s.ports):
		s.ports[act.Port-1].enqueue(take(), ready)
	default:
		// PortNone / unsupported reserved port: drop (applyActions
		// releases the frame if nothing consumed it).
	}
}

func (p *Port) enqueue(f *wire.Frame, earliest sim.Time) {
	if p.link == nil {
		// Unconnected port: black hole, as hardware would — but the
		// ledger still attributes the loss.
		p.sw.unconnDrops++
		p.sw.ledger.Report(p.sw.dropHop, wire.DropUnconnected, 1)
		f.Release()
		return
	}
	if p.queue.Len() >= p.sw.cfg.EgressQueueCap {
		p.drops++
		p.sw.ledger.Report(p.sw.dropHop, wire.DropEgressOverflow, 1)
		f.Release()
		return
	}
	f.SrcPort = p.index
	p.queue.Push(f)
	p.sendFrom(earliest)
}

func (p *Port) sendFrom(earliest sim.Time) {
	if p.busy || p.queue.Len() == 0 {
		return
	}
	f := p.queue.Pop()
	p.busy = true
	end := p.link.TransmitAt(f, earliest)
	p.tx.Add(f.Size)
	p.sw.forwarded.Add(f.Size)
	eventAt := end
	if now := p.sw.Engine.Now(); eventAt < now {
		eventAt = now
	}
	if p.txEv == nil {
		p.txEv = p.sw.Engine.Schedule(eventAt, p.txDone)
	} else {
		p.sw.Engine.Reschedule(p.txEv, eventAt)
	}
}

func (p *Port) txDone() {
	p.busy = false
	p.sendFrom(p.sw.Engine.Now())
}

// String describes the switch.
func (s *Switch) String() string {
	return fmt.Sprintf("ofswitch(dpid=%#x ports=%d table=%d/%d)",
		s.cfg.DatapathID, len(s.ports), s.table.Len(), s.cfg.TableCap)
}
