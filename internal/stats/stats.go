// Package stats provides the streaming statistics the OSNT host tools
// report: latency histograms with percentile queries, running
// mean/variance, rate meters and simple time series. Everything is
// allocation-light so it can run inside per-packet callbacks.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Histogram is an HDR-style log-linear histogram of non-negative int64
// samples (typically latencies in picoseconds or nanoseconds). Values are
// bucketed by power of two with subBuckets linear divisions inside each
// power, giving a bounded relative error of 1/subBuckets while covering
// the full int64 range in a few KiB.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    float64
	min    int64
	max    int64
}

// subBucketBits fixes the relative resolution: 64 sub-buckets per octave
// keeps quantile error under ~1.6%.
const subBucketBits = 6
const subBuckets = 1 << subBucketBits

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, (64-subBucketBits)*subBuckets),
		min:    math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	top := 63 - bits.LeadingZeros64(u)
	shift := top - subBucketBits
	sub := int(u>>uint(shift)) - subBuckets // 0..subBuckets-1
	return (shift+1)*subBuckets + sub
}

// bucketLow returns the smallest value mapping to index i, the value
// reported for quantiles in that bucket.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	shift := i/subBuckets - 1
	sub := i % subBuckets
	return int64(subBuckets+sub) << uint(shift)
}

// Record adds one sample. Negative samples are clamped to zero (latency
// can round slightly negative when two clocks disagree). The clamp
// applies before any accumulation, so Mean, Min, Max and every
// percentile describe the same clamped sample — they can never disagree
// about a negative tail.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.count++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the recorded (clamped) samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded sample (clamped at 0), or 0 when
// empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the value at quantile p in [0,100]. The result is
// the lower bound of the bucket containing the quantile, so it
// underestimates by at most one part in 64 — except at p ≥ 100, which
// returns the exact recorded maximum (the bucket floor would otherwise
// understate the worst case by up to the same factor).
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds all of o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Summary formats count/mean/p50/p99/max using unit as a divisor (e.g.
// 1000 to display picosecond samples in nanoseconds).
func (h *Histogram) Summary(unit float64, unitName string) string {
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p99=%.1f%s max=%.1f%s",
		h.count, h.Mean()/unit, unitName,
		float64(h.Percentile(50))/unit, unitName,
		float64(h.Percentile(99))/unit, unitName,
		float64(h.max)/unit, unitName)
}

// Welford tracks running mean and variance without storing samples.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Counter is a monotonically increasing event/byte counter pair, the
// shape of every OSNT hardware statistics register.
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Add counts one packet of n bytes.
func (c *Counter) Add(n int) {
	c.Packets++
	c.Bytes += uint64(n)
}

// Sub returns the difference c-o, for interval rates.
func (c Counter) Sub(o Counter) Counter {
	return Counter{Packets: c.Packets - o.Packets, Bytes: c.Bytes - o.Bytes}
}

// BitsPerSecond converts a byte delta over elapsed seconds to a bit rate.
func (c Counter) BitsPerSecond(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Bytes) * 8 / elapsed
}

// PacketsPerSecond converts a packet delta over elapsed seconds to pps.
func (c Counter) PacketsPerSecond(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Packets) / elapsed
}

// Series is an append-only (x, y) sequence used to hold experiment
// curves (e.g. latency vs offered load).
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample of a series.
type Point struct{ X, Y float64 }

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the Y of the point with the given X, or ok=false.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the largest Y in the series, or 0 when empty.
func (s *Series) MaxY() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Table is a printable experiment result: the harness emits one per
// paper table/figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Quantiles computes exact quantiles of a small sample set (sorts a
// copy). For the big streams use Histogram instead.
func Quantiles(samples []float64, qs ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(qs))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		pos := q / 100 * float64(len(s)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(s) {
			out[i] = s[len(s)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = s[lo]*(1-frac) + s[hi]*frac
	}
	return out
}
