package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"osnt/internal/sim"
)

func mkRecord(ts sim.Time, n int) Record {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)
	}
	return Record{TS: ts, Data: d, OrigLen: n}
}

func TestRoundTripNano(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		mkRecord(0, 64),
		mkRecord(sim.Time(1_234_567_891)*sim.Time(sim.Nanosecond), 128),
		mkRecord(2*sim.Time(sim.Second)+sim.Time(42*sim.Nanosecond), 1514),
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i].TS != recs[i].TS {
			t.Errorf("rec %d ts = %v, want %v", i, got[i].TS, recs[i].TS)
		}
		if !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("rec %d data mismatch", i)
		}
		if got[i].OrigLen != recs[i].OrigLen {
			t.Errorf("rec %d origlen = %d", i, got[i].OrigLen)
		}
	}
}

func TestRoundTripMicroTruncatesTimestamps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0, false)
	ts := sim.Time(1_500_000)*sim.Time(sim.Microsecond) + 999*sim.Time(sim.Nanosecond)
	if err := w.Write(mkRecord(ts, 60)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1_500_000) * sim.Time(sim.Microsecond) // ns part dropped
	if got[0].TS != want {
		t.Fatalf("ts = %v, want %v", got[0].TS, want)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 96, true)
	if err := w.Write(mkRecord(0, 1514)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Data) != 96 {
		t.Fatalf("capLen = %d, want 96", len(got[0].Data))
	}
	if got[0].OrigLen != 1514 {
		t.Fatalf("origLen = %d, want 1514", got[0].OrigLen)
	}
}

func TestReaderHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	_, _ = NewWriter(&buf, 2048, true)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Nano() || r.SnapLen() != 2048 || r.LinkType() != LinkTypeEthernet {
		t.Fatalf("header: nano=%v snap=%d link=%d", r.Nano(), r.SnapLen(), r.LinkType())
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian microsecond file with one 4-byte packet.
	var buf bytes.Buffer
	be := binary.BigEndian
	gh := make([]byte, 24)
	be.PutUint32(gh[0:4], MagicMicro)
	be.PutUint16(gh[4:6], 2)
	be.PutUint16(gh[6:8], 4)
	be.PutUint32(gh[16:20], 65535)
	be.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh)
	rh := make([]byte, 16)
	be.PutUint32(rh[0:4], 7)    // 7 s
	be.PutUint32(rh[4:8], 500)  // 500 µs
	be.PutUint32(rh[8:12], 4)   // capLen
	be.PutUint32(rh[12:16], 60) // origLen
	buf.Write(rh)
	buf.Write([]byte{1, 2, 3, 4})

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := 7*sim.Time(sim.Second) + 500*sim.Time(sim.Microsecond)
	if got[0].TS != want || got[0].OrigLen != 60 || !bytes.Equal(got[0].Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("big-endian record: %+v", got[0])
	}
}

func TestBadMagic(t *testing.T) {
	junk := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(junk)); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0, true)
	_ = w.Write(mkRecord(0, 64))
	full := buf.Bytes()

	// Cut inside the record data.
	r, err := NewReader(bytes.NewReader(full[:len(full)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated data: err = %v, want truncation error", err)
	}

	// Cut inside the record header.
	r, _ = NewReader(bytes.NewReader(full[:24+8]))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated header: err = %v", err)
	}

	// Exactly at record boundary: clean EOF.
	r, _ = NewReader(bytes.NewReader(full[:24]))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty body: err = %v, want io.EOF", err)
	}
}

func TestImplausibleCapLen(t *testing.T) {
	var buf bytes.Buffer
	_, _ = NewWriter(&buf, 0, true)
	rh := make([]byte, 16)
	binary.LittleEndian.PutUint32(rh[8:12], 1<<30)
	buf.Write(rh)
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.Next(); err == nil {
		t.Fatal("accepted 1GiB capture length")
	}
}

// Property: any batch of records with ns-aligned timestamps round trips
// exactly through the nanosecond format.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(lens []uint16, tsns []uint32) bool {
		if len(lens) > 50 {
			lens = lens[:50]
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0, true)
		if err != nil {
			return false
		}
		var recs []Record
		for i, l := range lens {
			n := int(l%2000) + 1
			var ts sim.Time
			if i < len(tsns) {
				ts = sim.Time(tsns[i]) * sim.Time(sim.Nanosecond)
			}
			r := mkRecord(ts, n)
			recs = append(recs, r)
			if err := w.Write(r); err != nil {
				return false
			}
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i].TS != recs[i].TS || !bytes.Equal(got[i].Data, recs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	rec := mkRecord(12345678, 512)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w, _ := NewWriter(&buf, 0, true)
		_ = w.Write(rec)
		if _, err := ReadAll(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
