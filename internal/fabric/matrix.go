package fabric

// Traffic matrices: deterministic sender → destination schedules over a
// fabric's hosts, compiled onto the zero-alloc generator path. A matrix
// is data, not behaviour — Sources turns it into looping SliceSources
// (one per transmitting host) that a gen.Generator with a frame pool
// replays without allocating.

import (
	"osnt/internal/gen"
	"osnt/internal/packet"
	"osnt/internal/wire"
)

// TrafficMatrix is a per-sender cyclic destination schedule: sender i
// rotates through Dests[i] (host indices), splitting its offered load
// evenly across the slots. An empty slot list keeps the host silent.
type TrafficMatrix struct {
	Name  string
	Dests [][]int
}

// flowsPerSlot is how many distinct source ports each (sender, slot)
// pair cycles through, so the ECMP header digest sees enough flow
// entropy to spread a bundle instead of pinning one five-tuple to one
// member.
const flowsPerSlot = 4

// Senders counts hosts with a non-empty schedule.
func (m TrafficMatrix) Senders() int {
	n := 0
	for _, d := range m.Dests {
		if len(d) > 0 {
			n++
		}
	}
	return n
}

// Permutation is the classic all-to-all stress pattern: host i sends to
// host (i + hostsPerPod) mod N, so every host sends and receives
// exactly one unit of load and every byte crosses the core.
func (f *Fabric) Permutation() TrafficMatrix {
	n := len(f.Hosts)
	shift := f.Spec.K * f.Spec.K / 4 // hosts per pod
	m := TrafficMatrix{Name: "permutation", Dests: make([][]int, n)}
	for i := 0; i < n; i++ {
		m.Dests[i] = []int{(i + shift) % n}
	}
	return m
}

// Incast partitions the hosts into groups of fanIn+1: the first member
// of each group receives, the other fanIn members all send to it. With
// fanIn ≥ hosts-per-edge the senders necessarily span edge switches,
// so the convergence pressure lands on the receiver's edge downlink.
// Hosts in an incomplete trailing group stay silent.
func (f *Fabric) Incast(fanIn int) TrafficMatrix {
	n := len(f.Hosts)
	m := TrafficMatrix{Name: "incast", Dests: make([][]int, n)}
	for base := 0; base+fanIn < n; base += fanIn + 1 {
		for s := 1; s <= fanIn; s++ {
			m.Dests[base+s] = []int{base}
		}
	}
	return m
}

// hotSpotSlots splits each sender's load: 1 slot to the hot host,
// hotSpotSlots-1 to its permutation partner, i.e. a quarter of the
// fabric-wide load converges on one host port.
const hotSpotSlots = 4

// HotSpot overlays a single hot destination on the permutation matrix:
// every other host keeps its permutation partner for 3/4 of its load
// and aims the remaining quarter at host 0, overloading host 0's edge
// downlink while the rest of the fabric stays busy.
func (f *Fabric) HotSpot() TrafficMatrix {
	perm := f.Permutation()
	m := TrafficMatrix{Name: "hot-spot", Dests: make([][]int, len(f.Hosts))}
	for i, d := range perm.Dests {
		if i == 0 {
			m.Dests[i] = d // the hot host itself only sends its permutation flow
			continue
		}
		slots := make([]int, 0, hotSpotSlots)
		slots = append(slots, 0)
		for len(slots) < hotSpotSlots {
			slots = append(slots, d[0])
		}
		m.Dests[i] = slots
	}
	return m
}

// Sources compiles the matrix into per-host frame schedules: entry i is
// a looping SliceSource cycling sender i's slots (flowsPerSlot source-
// port variants each, for ECMP entropy), or nil when host i is silent.
// The templates are built once here; with a frame Pool the generator's
// replay path is zero-alloc.
func (f *Fabric) Sources(m TrafficMatrix, frameSize int) []*gen.SliceSource {
	out := make([]*gen.SliceSource, len(f.Hosts))
	for i, dests := range m.Dests {
		if len(dests) == 0 {
			continue
		}
		src := f.Hosts[i]
		frames := make([]*wire.Frame, 0, len(dests)*flowsPerSlot)
		for s, d := range dests {
			dst := f.Hosts[d]
			for v := 0; v < flowsPerSlot; v++ {
				spec := packet.UDPSpec{
					SrcMAC: src.MAC, DstMAC: dst.MAC,
					SrcIP: src.IP, DstIP: dst.IP,
					SrcPort: uint16(5000 + s*flowsPerSlot + v),
					DstPort: 9, FrameSize: frameSize,
				}
				frames = append(frames, wire.NewFrame(spec.Build()))
			}
		}
		out[i] = &gen.SliceSource{Frames: frames, Loop: true}
	}
	return out
}
