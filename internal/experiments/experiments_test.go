package experiments

import (
	"strconv"
	"strings"
	"testing"

	"osnt/internal/sim"
	"osnt/internal/wire"
)

func cell(t *testing.T, tbl interface{ String() string }, row, col int) string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	fields := strings.Fields(lines[2+row]) // title + header
	if col >= len(fields) {
		t.Fatalf("row %d has %d fields: %q", row, len(fields), lines[2+row])
	}
	return fields[col]
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE1EveryRowHitsLineRate(t *testing.T) {
	tbl := E1LineRate(sim.Millisecond)
	if len(tbl.Rows) != len(FrameSizes)*2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[5] != "true" {
			t.Fatalf("row failed line rate: %v", row)
		}
	}
	// Wire rate must be ≈10G at the extremes.
	for _, ri := range []int{0, len(tbl.Rows) - 1} {
		g := parseF(t, tbl.Rows[ri][4])
		if g < 9.98 || g > 10.02 {
			t.Fatalf("wire rate %v", tbl.Rows[ri])
		}
	}
}

func TestE2DisciplinedStaysSubMicrosecond(t *testing.T) {
	tbl := E2ClockDiscipline(80 * sim.Second)
	last := tbl.Rows[len(tbl.Rows)-1]
	free := parseF(t, last[1])
	disc := parseF(t, last[2])
	if free < 1000 {
		t.Fatalf("free-running error %vµs, expected ms-scale at 50ppm", free)
	}
	if disc >= 1.0 {
		t.Fatalf("disciplined error %vµs, paper claims sub-µs", disc)
	}
}

func TestE3LatencyHockeyStick(t *testing.T) {
	tbl := E3SwitchLatency(10 * sim.Millisecond)
	first := parseF(t, tbl.Rows[0][1])
	var at95 float64
	for _, row := range tbl.Rows {
		if row[0] == "95" {
			at95 = parseF(t, row[1])
		}
	}
	if at95 < first*1.5 {
		t.Fatalf("no latency growth: 10%% → %vµs, 95%% → %vµs", first, at95)
	}
	// Monotone-ish growth of p99 with load (allowing small noise).
	prev := 0.0
	for i, row := range tbl.Rows {
		p99 := parseF(t, row[3])
		if i > 0 && p99 < prev*0.7 {
			t.Fatalf("p99 collapsed between loads: %v", tbl.Rows)
		}
		prev = p99
	}
}

func TestE4ControlPrecedesDataAndScales(t *testing.T) {
	tbl := E4FlowModLatency()
	var ctl1, ctl512, dmax1 float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "1":
			ctl1 = parseF(t, row[1])
			dmax1 = parseF(t, row[3])
		case "512":
			ctl512 = parseF(t, row[1])
		}
		// every batch fully confirmed on the dataplane
		parts := strings.Split(row[4], "/")
		if parts[0] != parts[1] {
			t.Fatalf("unconfirmed rules: %v", row)
		}
	}
	if dmax1 <= ctl1 {
		t.Fatalf("dataplane (%vms) should lag control (%vms)", dmax1, ctl1)
	}
	if ctl512 < ctl1*50 {
		t.Fatalf("batch scaling: 1→%vms, 512→%vms", ctl1, ctl512)
	}
}

func TestE5InconsistencyRequiresHWLag(t *testing.T) {
	tbl := E5Consistency()
	for _, row := range tbl.Rows {
		old := parseF(t, row[2])
		if row[1] == "none" && old != 0 {
			t.Fatalf("inconsistency without HW lag: %v", row)
		}
		if row[1] != "none" && old == 0 {
			t.Fatalf("no inconsistency with HW lag: %v", row)
		}
	}
}

func TestE6SoftwareNoiseDominates(t *testing.T) {
	tbl := E6TimestampNoise(1000)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Hardware row must be ns-scale, software µs/ms-scale. Compare by
	// unit suffix: hardware mean ends in "ns" (or ps), software in µs+.
	hw, sw := tbl.Rows[0][3], tbl.Rows[1][3]
	if !strings.Contains(hw, "ns") && !strings.Contains(hw, "ps") {
		t.Fatalf("hardware max error %q not ns-scale", hw)
	}
	if strings.Contains(sw, "ns") || strings.Contains(sw, "ps") {
		t.Fatalf("software max error %q implausibly small", sw)
	}
}

func TestE7ThinningRemovesLoss(t *testing.T) {
	tbl := E7CapturePath(0)
	var fullAt100, thinAt100 float64
	for _, row := range tbl.Rows {
		if row[0] == "100" {
			switch row[1] {
			case "full packets":
				fullAt100 = parseF(t, row[4])
			case "thin 64B":
				thinAt100 = parseF(t, row[4])
			}
		}
	}
	if fullAt100 <= 0 {
		t.Fatal("full-packet capture at line rate showed no loss")
	}
	if thinAt100 != 0 {
		t.Fatalf("thinned capture lost %v%%", thinAt100)
	}
}

func TestE8EchoInflatesWithLoad(t *testing.T) {
	tbl := E8ControlUnderLoad()
	idle := parseF(t, tbl.Rows[0][1])
	loaded := parseF(t, tbl.Rows[len(tbl.Rows)-1][1])
	if loaded < idle*2 {
		t.Fatalf("echo RTT idle %vµs vs 90%% load %vµs", idle, loaded)
	}
}

// E12: the fan-in direction must be lossless at full aggregate load at
// every sweep point, while the 40G→10G down-conversion is lossless below
// the 25% knee and both queues (bounded delay) and tail-drops above it.
func TestE12ConversionKneeAndDropOnset(t *testing.T) {
	tbl := E12MixedRateFanIn(5 * sim.Millisecond)
	if len(tbl.Rows) != len(E12DownLoads) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for r, row := range tbl.Rows {
		load := E12DownLoads[r]
		if upDrops := row[3]; upDrops != "0" {
			t.Fatalf("fan-in direction dropped at down-load %.0f%%: %v", load*100, row)
		}
		qdrops := parseF(t, row[7])
		lossPct := parseF(t, row[8])
		if load > 0.26 {
			if qdrops == 0 || lossPct == 0 {
				t.Fatalf("down-load %.0f%% above the knee shows no tail drop: %v", load*100, row)
			}
		} else if load < 0.25 {
			if qdrops != 0 || lossPct != 0 {
				t.Fatalf("down-load %.0f%% below the knee is lossy: %v", load*100, row)
			}
		}
	}
	// Queueing delay above the knee is bounded by the egress FIFO depth:
	// p99 latency must sit near cap × the 10G serialisation slot, not
	// grow with offered load.
	slot := wire.SerializationTime(e12FrameSize, wire.Rate10G)
	bound := float64(e12EdgeQueueCap) * slot.Seconds() * 1e6 * 1.2
	for r, row := range tbl.Rows {
		if E12DownLoads[r] <= 0.26 {
			continue
		}
		if p99 := parseF(t, row[6]); p99 > bound {
			t.Fatalf("down-p99 %vµs exceeds the bounded-FIFO ceiling %.1fµs: %v", p99, bound, row)
		}
	}
}

// E13: every chain length is lossless, hop 1 carries the most queueing
// (the raw Poisson stream), later hops see smoothed traffic, and the
// per-hop means must sum to the end-to-end mean (the decomposition is
// exact because the final hop closes on the MAC RX timestamp).
func TestE13DecompositionSumsToTotal(t *testing.T) {
	tbl := E13MultiDUTChain(5 * sim.Millisecond)
	if len(tbl.Rows) != len(E13ChainLengths) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for r, row := range tbl.Rows {
		n := E13ChainLengths[r]
		if loss := parseF(t, row[7]); loss != 0 {
			t.Fatalf("chain of %d lost packets: %v", n, row)
		}
		var sum float64
		for h := 0; h < n; h++ {
			sum += parseF(t, row[1+h])
		}
		total := parseF(t, row[5])
		if diff := sum - total; diff > 0.05 || diff < -0.05 {
			t.Fatalf("chain of %d: hops sum to %.2fµs but total is %.2fµs: %v", n, sum, total, row)
		}
		if n >= 2 {
			if hop1, hop2 := parseF(t, row[1]), parseF(t, row[2]); hop1 <= hop2 {
				t.Fatalf("chain of %d: hop1 %.2fµs not above hop2 %.2fµs (queueing should concentrate at hop 1): %v",
					n, hop1, hop2, row)
			}
		}
	}
}

// E15: below the 2:1 oversubscription knee the fabric is lossless;
// above it the excess is lost, every lost frame is attributed to the
// leaf's uplink egress overflow (other-drops stays 0), and every row
// conserves exactly.
func TestE15KneeAndExactAttribution(t *testing.T) {
	tbl := E15Oversubscribed(3 * sim.Millisecond)
	if len(tbl.Rows) != len(E15Loads) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for r, row := range tbl.Rows {
		load := E15Loads[r]
		if row[8] != "true" {
			t.Fatalf("load %.0f%% does not conserve: %v", load*100, row)
		}
		if other := row[6]; other != "0" {
			t.Fatalf("load %.0f%% attributes drops off the uplinks: %v", load*100, row)
		}
		loss := parseF(t, row[7])
		if load >= 0.6 && loss == 0 {
			t.Fatalf("load %.0f%% above the knee shows no loss: %v", load*100, row)
		}
		// Hash imbalance may overload one uplink slightly before the
		// aggregate knee, but well below it the fabric must be clean.
		if load <= 0.3 && loss != 0 {
			t.Fatalf("load %.0f%% below the knee is lossy: %v", load*100, row)
		}
	}
}

// E15's canonical loss map (the -losses CLI path) must conserve, and
// every cell must sit on the leaf's uplink egress.
func TestE15LossMapConserves(t *testing.T) {
	lm := E15LossMap(2 * sim.Millisecond)
	if !lm.Conserved() {
		t.Fatalf("sent %d, delivered %d, attributed %d", lm.Sent, lm.Delivered, lm.Attributed())
	}
	if lm.Attributed() == 0 {
		t.Fatal("overloaded fabric attributed no drops")
	}
	for _, e := range lm.Entries() {
		if e.Label != "leaf" || e.Reason != wire.DropEgressOverflow {
			t.Fatalf("unexpected loss cell: hop %d (%s) %v ×%d", e.Hop, e.Label, e.Reason, e.Count)
		}
	}
}

// E16: each engineered loss mechanism lands in its own (hop, reason)
// cell, nothing lands anywhere else, and every row closes exactly.
func TestE16AttributionExact(t *testing.T) {
	tbl := E16LossAttribution(5 * sim.Millisecond)
	if len(tbl.Rows) != len(E16Loads) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for r, row := range tbl.Rows {
		load := E16Loads[r]
		if row[10] != "true" {
			t.Fatalf("load %.0f%% does not conserve: %v", load*100, row)
		}
		if other := row[9]; other != "0" {
			t.Fatalf("load %.0f%% has unattributed reasons: %v", load*100, row)
		}
		if runts := row[2]; parseF(t, row[6]) != parseF(t, runts) {
			t.Fatalf("load %.0f%%: injected runts %s but hop 1 counted %s: %v", load*100, runts, row[6], row)
		}
		rateDrops := parseF(t, row[5])
		if load > 0.26 && rateDrops == 0 {
			t.Fatalf("load %.0f%% above the conversion knee shows no rate-boundary drops: %v", load*100, row)
		}
		if load < 0.25 && rateDrops != 0 {
			t.Fatalf("load %.0f%% below the knee drops at the boundary: %v", load*100, row)
		}
		hairpins := parseF(t, row[7])
		if load <= 0.25 && hairpins != parseF(t, row[3]) {
			t.Fatalf("load %.0f%%: hairpin probes did not all reach hop 2: %v", load*100, row)
		}
		lookups := parseF(t, row[8])
		if load >= 0.25 && lookups == 0 {
			t.Fatalf("load %.0f%%: starved hop-3 lookup dropped nothing: %v", load*100, row)
		}
		if load <= 0.2 && lookups != 0 {
			t.Fatalf("load %.0f%%: hop-3 lookup dropped below its saturation point: %v", load*100, row)
		}
	}
}

// The ECMP spray micro-rig must spread a 64-flow workload across both
// members and deliver the lion's share of a line-rate second.
func TestSprayMicroBenchSpreads(t *testing.T) {
	m0, m1 := SprayMicroBench(sim.Millisecond)
	if m0 == 0 || m1 == 0 {
		t.Fatalf("degenerate spray: %d/%d", m0, m1)
	}
	total := m0 + m1
	if total < 14000 {
		t.Fatalf("spray rig delivered %d packets in a 64B line-rate millisecond, want ≈14881", total)
	}
}

// E17: the per-flow analytics must not depend on the capture-queue
// topology — every queue-count block reports the same stream digest,
// merged count and flow rows — and the inferred loss must agree with the
// schedule's exact arithmetic on a CBR workload.
func TestE17AnalyticsQueueInvariant(t *testing.T) {
	tbl := E17FlowAnalytics(2 * sim.Millisecond)
	if len(tbl.Rows) != len(E17QueueCounts)*e17TopK {
		t.Fatalf("rows %d, want %d", len(tbl.Rows), len(E17QueueCounts)*e17TopK)
	}
	ref := tbl.Rows[:e17TopK]
	for b := 1; b < len(E17QueueCounts); b++ {
		blk := tbl.Rows[b*e17TopK : (b+1)*e17TopK]
		for r := range blk {
			// Everything except the queue-count column must match the
			// 8-queue reference block cell for cell.
			for c := 1; c < len(tbl.Columns); c++ {
				if blk[r][c] != ref[r][c] {
					t.Fatalf("queue count %s diverged at rank %d col %s: %q vs %q",
						blk[r][0], r+1, tbl.Columns[c], blk[r][c], ref[r][c])
				}
			}
		}
	}
	for _, row := range tbl.Rows {
		if row[10] != "true" {
			t.Fatalf("row failed its invariants: %v", row)
		}
		if row[7] != "0" {
			t.Fatalf("store-and-forward DUT reordered a flow: %v", row)
		}
		lossEx, lossInf := parseF(t, row[4]), parseF(t, row[5])
		if lossEx <= 0 {
			t.Fatalf("starved lookup lost nothing — the workload no longer exercises inference: %v", row)
		}
		if d := lossInf - lossEx; d < -0.5 || d > 0.5 {
			t.Fatalf("inferred loss %v%% disagrees with exact %v%%: %v", lossInf, lossEx, row)
		}
	}
}

// The merge micro-rig deals a line-rate 64B millisecond round-robin
// across 8 queues and must re-emit every record.
func TestMergeMicroBenchEmitsLineRate(t *testing.T) {
	if got := MergeMicroBench(sim.Millisecond); got < 14000 {
		t.Fatalf("merge rig emitted %d packets in a 64B line-rate millisecond, want ≈14881", got)
	}
}

// The flow-table micro-rig tracks all of its synthetic samples.
func TestFlowTableMicroBenchTracksAll(t *testing.T) {
	if got := FlowTableMicroBench(); got != 1<<20 {
		t.Fatalf("tracked %d of %d samples", got, 1<<20)
	}
}
