//go:build race

package race

// Enabled reports that the race detector is active.
const Enabled = true
