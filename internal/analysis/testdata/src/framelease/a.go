// Package framelease is the corpus for the pooled-frame ownership
// analyzer: leaks on cold error paths, double releases, transfer sinks,
// escapes, deferred releases, and the lint:ignore escape hatch.
package framelease

import "wire"

var errFail = false

// leakOnErrorPath is the PR 5 silent-leak class: the early return forgets
// the frame.
func leakOnErrorPath(p *wire.Pool, l *wire.Link) {
	f := p.Get(64)
	if errFail {
		return // want "pooled f acquired at .* is not released or transferred"
	}
	l.Transmit(f)
}

// releasedOnAllPaths is clean: both paths consume.
func releasedOnAllPaths(p *wire.Pool, l *wire.Link) {
	f := p.Get(64)
	if errFail {
		f.Release()
		return
	}
	l.Transmit(f)
}

// doubleRelease releases twice on the same path.
func doubleRelease(p *wire.Pool) {
	f := p.Get(64)
	f.Release()
	f.Release() // want "double release of pooled f"
}

// conditionalDouble double-releases only on one path.
func conditionalDouble(p *wire.Pool) {
	f := p.Get(64)
	if errFail {
		f.Release()
	}
	f.Release() // want "double release of pooled f"
}

// transferSink hands the frame to a sink: ownership moves, no report.
func transferSink(p *wire.Pool, l *wire.Link) {
	f := p.Get(128)
	l.Transmit(f)
}

// trainTransfer moves a pooled train through TransmitTrain.
func trainTransfer(p *wire.Pool, l *wire.Link) {
	t := p.GetTrain()
	l.TransmitTrain(t)
}

// trainLeak forgets the container on the empty path.
func trainLeak(p *wire.Pool, l *wire.Link) {
	t := p.GetTrain()
	if errFail {
		return // want "pooled t acquired at .* is not released or transferred"
	}
	t.Recycle()
}

// escapeByReturn transfers ownership to the caller.
func escapeByReturn(p *wire.Pool) *wire.Frame {
	f := p.Get(64)
	return f
}

// escapeByStore parks the frame in a structure; the structure's owner
// inherits the lease.
type holder struct{ f *wire.Frame }

func escapeByStore(p *wire.Pool, h *holder) {
	f := p.Get(64)
	h.f = f
}

// escapeBySliceStore appends into a caller-visible slice.
func escapeBySliceStore(p *wire.Pool, t *wire.Train) {
	f := p.Get(64)
	t.Frames = append(t.Frames, f)
}

// escapeByClosure lets a closure consume the frame later.
func escapeByClosure(p *wire.Pool, run func(func())) {
	f := p.Get(64)
	run(func() { f.Release() })
}

// deferredRelease is the canonical scope-bound lease.
func deferredRelease(p *wire.Pool) {
	f := p.Get(64)
	defer f.Release()
	if errFail {
		return
	}
}

// discarded drops the acquisition on the floor immediately.
func discarded(p *wire.Pool) {
	p.Get(64) // want "discarded without Release or transfer"
}

// overwrittenWhileOwned loses the first frame by reassignment.
func overwrittenWhileOwned(p *wire.Pool) {
	f := p.Get(64)
	f = p.Get(128) // want "reacquired here while the value from .* is still owned"
	f.Release()
}

// loopReacquire is clean: each iteration consumes before reacquiring.
func loopReacquire(p *wire.Pool, l *wire.Link) {
	for i := 0; i < 4; i++ {
		f := p.Get(64)
		l.Transmit(f)
	}
}

// loopLeak leaks on the continue path.
func loopLeak(p *wire.Pool, l *wire.Link) {
	for i := 0; i < 4; i++ {
		f := p.Get(64)
		if errFail {
			break
		}
		l.Transmit(f)
	}
} // want "pooled f acquired at .* is not released or transferred"

// ignored is a deliberate exception: the directive must suppress the leak
// report on the return below it.
func ignored(p *wire.Pool) bool {
	f := p.Get(64)
	ok := f != nil
	//lint:ignore framelease corpus: frame intentionally abandoned to pin the escape hatch
	return ok
}

// cloneEscape: clones are acquisitions too; returning one is a transfer.
func cloneEscape(f *wire.Frame) *wire.Frame {
	c := f.Clone()
	return c
}

// cloneLeak forgets the clone.
func cloneLeak(f *wire.Frame) {
	c := f.Clone()
	if errFail {
		return // want "pooled c acquired at .* is not released or transferred"
	}
	c.Release()
}

// switchPaths: every case must consume.
func switchPaths(p *wire.Pool, l *wire.Link, mode int) {
	f := p.Get(64)
	switch mode {
	case 0:
		f.Release()
	case 1:
		l.Transmit(f)
	default:
		return // want "pooled f acquired at .* is not released or transferred"
	}
}

// panicPath: abnormal exits carry no lease obligation.
func panicPath(p *wire.Pool) {
	f := p.Get(64)
	if errFail {
		panic("fatal")
	}
	f.Release()
}
