package sim

import "testing"

// TestReprogramPendingRekeys checks the in-place re-key: moving a queued
// event forward or backward must fire it exactly once, at the final
// instant, without a cancel/re-create pair.
func TestReprogramPendingRekeys(t *testing.T) {
	e := NewEngine()
	var fired []Time
	ev := e.Schedule(100, func() { fired = append(fired, e.Now()) })
	e.Reprogram(ev, 40) // pull earlier
	e.Reprogram(ev, 70) // push later again
	e.Run()
	if len(fired) != 1 || fired[0] != 70 {
		t.Fatalf("fired at %v, want exactly [70]", fired)
	}
}

// TestReprogramFiredRearms checks the Reschedule-equivalent half: an
// event that already fired (index -1) re-arms like a fresh schedule.
func TestReprogramFiredRearms(t *testing.T) {
	e := NewEngine()
	count := 0
	var ev *Event
	ev = e.Schedule(10, func() {
		count++
		if count == 1 {
			e.Reprogram(ev, e.Now().Add(5))
		}
	})
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d times, want 2", count)
	}
}

// TestReprogramRevivesCancelledQueuedEvent is the case Reschedule cannot
// handle: a cancelled event still sitting in the queue is re-keyed and
// un-cancelled in place, so it fires at the new instant.
func TestReprogramRevivesCancelledQueuedEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	ev := e.Schedule(10, func() { fired = append(fired, e.Now()) })
	ev.Cancel()
	e.Reprogram(ev, 25)
	if ev.Cancelled() {
		t.Fatal("reprogram left the event cancelled")
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 25 {
		t.Fatalf("fired at %v, want exactly [25]", fired)
	}
}

// TestReprogramOrdersAfterSameInstant checks the FIFO contract: a
// reprogrammed event takes a fresh sequence number, so it runs after
// events already scheduled for the same instant — exactly where a
// freshly scheduled event would land.
func TestReprogramOrdersAfterSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	ev := e.Schedule(10, func() { order = append(order, "moved") })
	e.Schedule(50, func() { order = append(order, "resident") })
	e.Reprogram(ev, 50)
	e.Run()
	if len(order) != 2 || order[0] != "resident" || order[1] != "moved" {
		t.Fatalf("order = %v, want [resident moved]", order)
	}
}

// TestReprogramPastPanics checks causality enforcement on both halves of
// the API: a queued and an already-fired event alike refuse to move into
// the past.
func TestReprogramPastPanics(t *testing.T) {
	e := NewEngine()
	fired := e.Schedule(10, func() {})
	queued := e.Schedule(100, func() {})
	e.Schedule(20, func() {
		for _, ev := range []*Event{fired, queued} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("no panic reprogramming into the past")
					}
				}()
				e.Reprogram(ev, 5)
			}()
		}
	})
	e.Run()
}
