package topo

import (
	"strings"
	"testing"

	"osnt/internal/netfpga"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
	"osnt/internal/wire"
)

// passLink is a CrossLink stub for build-structure tests: it satisfies
// the Partition contract shape without a shard runtime (nothing here
// runs events across the cut).
func passLink(src, dst int, e *sim.Engine, rate wire.Rate, delay sim.Duration, peer wire.Endpoint) *wire.Link {
	return wire.NewLink(e, rate, delay, peer)
}

// twoShards maps t0/sw0 to shard 0 and everything else to shard 1.
func twoShards(name string) int {
	if name == "t0" || name == "sw0" {
		return 0
	}
	return 1
}

func twoEnginePartition() Partition {
	return Partition{
		Engines:   []*sim.Engine{sim.NewEngine(), sim.NewEngine()},
		ShardOf:   twoShards,
		CrossLink: passLink,
	}
}

// wantPartitionError asserts BuildPartitioned fails mentioning every
// fragment.
func wantPartitionError(t *testing.T, b *Builder, p Partition, fragments ...string) {
	t.Helper()
	_, err := b.BuildPartitioned(p)
	if err == nil {
		t.Fatal("BuildPartitioned succeeded, want validation error")
	}
	for _, frag := range fragments {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestPartitionRejectsZeroDelayCutEdge(t *testing.T) {
	wantPartitionError(t,
		New().Tester("t0", netfpga.Config{}).Tester("t1", netfpga.Config{}).
			Link("t0:0", "t1:0"), // zero delay across the cut
		twoEnginePartition(),
		"cross-shard edge", "zero propagation delay", "lookahead")
}

func TestPartitionIntraShardZeroDelayStaysLegal(t *testing.T) {
	// The same zero-delay edge is fine when both endpoints share a shard.
	p := twoEnginePartition()
	tp, err := New().
		Tester("t0", netfpga.Config{Ports: 2}).
		Tester("t1", netfpga.Config{}).
		Link("t0:0", "t0:1").
		LinkAt("t0:1", "t1:0", 0, sim.Microsecond).
		BuildPartitioned(p)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Shard("t0") != 0 || tp.Shard("t1") != 1 {
		t.Fatalf("Shard(t0)=%d Shard(t1)=%d, want 0/1", tp.Shard("t0"), tp.Shard("t1"))
	}
}

func TestPartitionValidatesItsOwnFields(t *testing.T) {
	wantPartitionError(t,
		New().Tester("t0", netfpga.Config{}),
		Partition{},
		"no engines")
	wantPartitionError(t,
		New().Tester("t0", netfpga.Config{}),
		Partition{Engines: []*sim.Engine{sim.NewEngine(), sim.NewEngine()}},
		"needs ShardOf and CrossLink")
	p := twoEnginePartition()
	p.ShardOf = func(string) int { return 7 }
	wantPartitionError(t,
		New().Tester("t0", netfpga.Config{}),
		p,
		`ShardOf("t0") = 7`, "outside [0, 2)")
}

func TestShardAccessorDefaultsToZero(t *testing.T) {
	tp := New().Tester("t0", netfpga.Config{}).MustBuild(sim.NewEngine())
	if tp.Shard("t0") != 0 {
		t.Fatalf("single-engine Shard(t0) = %d", tp.Shard("t0"))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Shard on an unknown node did not panic")
		}
	}()
	tp.Shard("ghost")
}

// TestPartitionedDropsMerge exercises the per-shard ledger split: each
// DUT reports into its own shard's private ledger under the global hop
// numbering, and Topology.Drops merges the shards back into the
// single-engine view.
func TestPartitionedDropsMerge(t *testing.T) {
	tp, err := New().
		Tester("t0", netfpga.Config{}).
		DUT("sw0", switchsim.Config{}).
		DUT("sw1", switchsim.Config{}).
		Tester("t1", netfpga.Config{}).
		LinkAt("t0:0", "sw0:0", 0, sim.Microsecond).
		LinkAt("sw0:1", "sw1:0", 0, sim.Microsecond).
		LinkAt("sw1:1", "t1:0", 0, sim.Microsecond).
		BuildPartitioned(twoEnginePartition())
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.ledgers) != 2 {
		t.Fatalf("partitioned build holds %d shard ledgers, want 2", len(tp.ledgers))
	}
	// Global numbering: both DUTs are registered on both the authority
	// ledger and their own shard's.
	h0, h1 := tp.Hop("sw0"), tp.Hop("sw1")
	if tp.ledgers[0].Label(h0) != "sw0" || tp.ledgers[1].Label(h1) != "sw1" {
		t.Fatalf("shard ledgers mislabel hops: %q / %q",
			tp.ledgers[0].Label(h0), tp.ledgers[1].Label(h1))
	}
	// Report drops on each shard's private ledger — the way the devices
	// do from the hot path — and check the merged snapshot.
	tp.ledgers[0].Report(h0, wire.DropEgressOverflow, 3)
	tp.ledgers[1].Report(h1, wire.DropEgressOverflow, 5)
	m := tp.Drops()
	if got := m.Count(h0, wire.DropEgressOverflow); got != 3 {
		t.Fatalf("merged count for sw0 = %d, want 3", got)
	}
	if got := m.Count(h1, wire.DropEgressOverflow); got != 5 {
		t.Fatalf("merged count for sw1 = %d, want 5", got)
	}
	if m.Total() != 8 {
		t.Fatalf("merged total = %d, want 8", m.Total())
	}
	// Drops snapshots are fresh: reporting more afterwards shows up in a
	// re-taken snapshot, not the old one.
	tp.ledgers[0].Report(h0, wire.DropEgressOverflow, 1)
	if m.Total() != 8 {
		t.Fatal("snapshot mutated after the fact")
	}
	if tp.Drops().Total() != 9 {
		t.Fatalf("fresh snapshot total = %d, want 9", tp.Drops().Total())
	}
}

// TestDeliveryKeysArePartitionIndependent pins the structural-priority
// contract at the topo layer: every positive-delay link gets the same
// delivery key whether the graph is built on one engine or across a
// cut, because keys are assigned in edge-declaration order before any
// partition concern. Zero-delay links keep wire's default (no key).
func TestDeliveryKeysArePartitionIndependent(t *testing.T) {
	declare := func() *Builder {
		return New().
			Tester("t0", netfpga.Config{Ports: 2}).
			Tester("t1", netfpga.Config{Ports: 2}).
			Link("t0:1", "t0:0"). // zero delay: no key
			LinkAt("t0:0", "t1:0", 0, sim.Microsecond).
			LinkAt("t1:0", "t0:1", 0, 2*sim.Microsecond)
	}
	keys := func(tp *Topology) []uint64 {
		var out []uint64
		for _, ref := range []string{"t0:1", "t0:0", "t1:0"} {
			out = append(out, tp.Port(ref).Link().DeliveryKey())
		}
		return out
	}
	single, err := declare().Build(sim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	split, err := declare().BuildPartitioned(twoEnginePartition())
	if err != nil {
		t.Fatal(err)
	}
	ks, kp := keys(single), keys(split)
	for i := range ks {
		if ks[i] != kp[i] {
			t.Fatalf("delivery keys diverge across partitioning: single %v, split %v", ks, kp)
		}
	}
	if ks[0] != sim.PrioDefault {
		t.Fatalf("zero-delay link carries key %d, want the PrioDefault sentinel", ks[0])
	}
	if ks[1] != 1 || ks[2] != 2 {
		t.Fatalf("positive-delay links keyed %v, want declaration order 1, 2", ks[1:])
	}
}
