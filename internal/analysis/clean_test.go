package analysis_test

import (
	"testing"

	"osnt/internal/analysis"
)

// TestTreeIsClean is the contract gate itself: the full suite must report
// nothing on the real tree. A regression here is a leaked frame, a hot-path
// allocation, a nondeterminism source, or a sim.Time hygiene violation
// introduced by a PR — exactly what cmd/lintcheck fails CI for, run from
// inside go test so `go test ./...` alone already enforces the contracts.
func TestTreeIsClean(t *testing.T) {
	diags, fset, err := analysis.SelfCheck(".")
	if err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Logf("%d diagnostics — fix them or encode deliberate exceptions as //lint:ignore <analyzer> <reason>", len(diags))
	}
}
