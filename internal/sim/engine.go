package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. It is returned by the Schedule family so
// callers can cancel pending work (for example a retransmit timer).
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among events at the same instant
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// At returns the instant the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.cancel = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancel }

// Pending reports whether the event is still in the queue waiting to
// fire (a cancelled-but-unpopped event still counts as pending).
func (ev *Event) Pending() bool { return ev.index != -1 }

// eventHeap orders events by time, then by insertion sequence so that
// events scheduled for the same instant fire in FIFO order. Deterministic
// ordering is essential: experiment results must not depend on map or heap
// tie-breaking accidents.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not ready to use; construct one with NewEngine.
//
// Engine is deliberately not safe for concurrent use: OSNT's hardware
// pipelines are modelled as a causal sequence of events, and determinism is
// a design requirement (see DESIGN.md).
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	fired   uint64
}

// NewEngine returns an engine with its clock at instant 0 and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far. Useful for
// workload accounting in benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// it would mean a component violated causality, which is always a bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter queues fn to run d after the current instant. A negative d
// panics.
func (e *Engine) ScheduleAfter(d Duration, fn func()) *Event {
	return e.Schedule(e.now.Add(d), fn)
}

// Reschedule re-arms an event that has already fired (or been popped as
// cancelled), reusing its allocation and callback instead of building a
// fresh Event. This is the zero-allocation path for self-rescheduling
// work: a component that fires once per packet keeps a single Event alive
// for its whole lifetime rather than pushing one heap allocation per
// packet through the garbage collector. Rescheduling an event that is
// still queued panics — that would corrupt the heap.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	if ev.index != -1 {
		panic("sim: reschedule of an event still in the queue")
	}
	ev.at = at
	ev.seq = e.seq
	ev.cancel = false
	e.seq++
	heap.Push(&e.queue, ev)
}

// RescheduleAfter re-arms a fired event d after the current instant.
func (e *Engine) RescheduleAfter(ev *Event, d Duration) {
	e.Reschedule(ev, e.now.Add(d))
}

// Reprogram moves an event to a new instant whether or not it is still
// queued: a pending event is re-keyed in place (heap.Fix, no pop/push
// churn) and a fired or cancelled-and-popped one is re-armed exactly like
// Reschedule. Either way the event takes a fresh sequence number, so it
// orders after everything already scheduled for the same instant — the
// same FIFO position a freshly scheduled event would get. Batch consumers
// use this to slide an in-flight completion event (a DMA drain, a
// retransmit timer) forward or backward without cancel/re-create pairs.
func (e *Engine) Reprogram(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reprogram at %v before now %v", at, e.now))
	}
	if ev.index == -1 {
		e.Reschedule(ev, at)
		return
	}
	ev.at = at
	ev.seq = e.seq
	ev.cancel = false
	e.seq++
	heap.Fix(&e.queue, ev.index)
}

// Step executes the next pending event, advancing the clock to its instant.
// It returns false when the queue is empty. Cancelled events are discarded
// without advancing the clock.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil executes events up to and including instant t, then sets the
// clock to t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	for e.running {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	e.running = false
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for a span d of virtual time from the current
// instant.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop makes a Run/RunUntil in progress return after the current event.
// Calling Stop outside an event callback has no effect.
func (e *Engine) Stop() { e.running = false }

// Peek returns the instant of the next pending event without executing
// it.
func (e *Engine) Peek() (Time, bool) { return e.peek() }

func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].cancel {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// ScheduleEvery schedules fn at t0, t0+period, t0+2*period, ... until the
// returned Ticker is stopped; fn observes the engine clock at each firing.
// It is the allocation-free periodic primitive: one Event (and one
// callback closure) is reused for every tick, so a CBR source ticking
// 14.88 M times per simulated second costs the event heap nothing beyond
// its single long-lived entry.
func (e *Engine) ScheduleEvery(t0 Time, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.ev = e.Schedule(t0, t.fire)
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual-time period. The
// underlying Event is reused across firings (see ScheduleEvery).
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.engine.RescheduleAfter(t.ev, t.period)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
