package experiments

import (
	"testing"

	"osnt/internal/race"
)

// TestAllTablesWellFormed is the harness-level smoke test: every
// experiment in All() must produce a titled table whose rows all match
// the header width and carry no empty cells — the shape contract
// cmd/osnt-bench and EXPERIMENTS.md rely on.
func TestAllTablesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full E1–E20 evaluation")
	}
	if race.Enabled {
		// Table shape is build-independent and the full-duration E1–E20
		// sweep costs many minutes race-instrumented; the determinism
		// suite is the race-certification path for every sweep.
		t.Skip("full-duration sweep; shape does not depend on -race")
	}
	tables := All()
	if len(tables) != 20 {
		t.Fatalf("All() returned %d tables, want 20 (E1–E20)", len(tables))
	}
	for i, tbl := range tables {
		if tbl.Title == "" {
			t.Errorf("table %d has no title", i+1)
		}
		if len(tbl.Columns) == 0 {
			t.Errorf("%s: no columns", tbl.Title)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.Title)
		}
		for r, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: row %d has %d cells, header has %d",
					tbl.Title, r, len(row), len(tbl.Columns))
				continue
			}
			for c, cell := range row {
				if cell == "" {
					t.Errorf("%s: empty cell at row %d col %d (%s)",
						tbl.Title, r, c, tbl.Columns[c])
				}
			}
		}
	}
}
