// Package topo is the declarative topology layer: experiments describe a
// measurement scenario as a graph of named nodes and port-to-port edges,
// and the validating builder instantiates every device on one sim.Engine
// and hands back named handles. Separating topology *description* from
// device *construction* (the EvalNet split) turns each new scenario from
// a bespoke page of SetLink calls into a few lines of graph:
//
//	t := topo.New().
//		Tester("osnt", netfpga.Config{}).
//		DUT("sw", switchsim.Config{}).
//		Link("osnt:0", "sw:0").
//		Duplex("osnt:1", "sw:1").
//		MustBuild(engine)
//	dev, sw := t.Tester("osnt"), t.DUT("sw")
//
// Node kinds are the vocabulary of the paper's rigs: a Tester is one OSNT
// device (a simulated NetFPGA card plus host drivers, core.Device), a DUT
// is a legacy switch under test (switchsim.Switch), an OFSwitch is an
// OpenFlow switch (ofswitch.Switch), and a Sink is a terminal endpoint
// that counts and releases whatever reaches it. Edges are unidirectional
// "node:port" → "node:port" links with a wire.Rate and propagation delay;
// Duplex declares the two directions of one cable at once.
//
// Build validates the graph before touching the engine: unknown or
// duplicate node names, dangling edge endpoints, out-of-range ports,
// transmit/receive port reuse (a port can head exactly one cable in each
// direction), transmitting sinks, and rate mismatches between an edge and
// the native port rate of either endpoint are all construction-time
// errors, not silent miswirings.
//
// Rates are resolved per port, not per device: a DUT whose switchsim
// config carries PortRates can expose a 40G uplink next to 10G edge
// ports, and each edge must match the rate of the specific ports it
// joins. An edge between ports at *different* rates is still an error at
// a dumb cable, but may be declared as an explicit conversion edge
// (Convert/ConvertAt) when at least one endpoint is a DUT — the device
// that store-and-forwards across the rate boundary. A conversion edge
// serialises at the transmitting port's rate. DUTs are also assigned
// sequential hop IDs (1, 2, ... in declaration order, unless the config
// pins one), so chains of switches stamp per-hop egress timestamps into
// every frame's wire.HopTrace and latency decomposes hop by hop.
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"osnt/internal/core"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/ofswitch"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/wire"
)

// kind discriminates node types.
type kind int

const (
	kindTester kind = iota
	kindDUT
	kindOFSwitch
	kindSink
)

func (k kind) String() string {
	switch k {
	case kindTester:
		return "tester"
	case kindDUT:
		return "dut"
	case kindOFSwitch:
		return "ofswitch"
	default:
		return "sink"
	}
}

// node is one declared vertex of the scenario graph.
type node struct {
	name      string
	kind      kind
	testerCfg netfpga.Config
	dutCfg    switchsim.Config
	ofCfg     ofswitch.Config

	// hop is the node's loss-ledger hop ID (for DUTs it equals the
	// HopTrace hop ID, so latency decomposition and loss attribution
	// share a namespace).
	hop int

	// shard is the engine index the node was instantiated on (0 for
	// single-engine builds).
	shard int

	// instantiated handles (one of these, post-Build). The sink lives in
	// the node itself: one allocation per node, not two.
	tester *core.Device
	dut    *switchsim.Switch
	of     *ofswitch.Switch
	sink   Sink
}

// Edge is one unidirectional link of the scenario graph. From and To are
// "node" or "node:port" references (the port defaults to 0).
type Edge struct {
	From, To string
	// Rate is the link speed; 0 inherits the endpoints' native port rate
	// (which must then agree, unless Convert is set).
	Rate wire.Rate
	// Delay is the propagation delay.
	Delay sim.Duration
	// Convert marks a speed-conversion edge: the endpoints' port rates
	// may differ, provided at least one endpoint is a DUT (the device
	// that store-and-forwards across the boundary). The wire serialises
	// at the transmitting port's rate; Rate, if set, must equal it.
	Convert bool
}

// Builder accumulates a scenario graph. Declaration order is preserved:
// nodes are instantiated and edges wired in the order they were added, so
// a topology description is also a deterministic construction recipe.
type Builder struct {
	nodes  []*node
	byName map[string]*node
	edges  []Edge
	groups []groupDecl
	errs   []error
	built  bool
}

// groupDecl records one Group declaration: its member edges live at
// edges[start:start+n], and Build additionally checks that all members
// resolve to one rate (ECMP members must be equal-cost).
type groupDecl struct {
	from, to string
	start, n int
}

// New returns an empty scenario graph. Capacities cover the common rigs
// so declaring one costs a handful of allocations, cheap enough to build
// a fresh graph per sweep point.
func New() *Builder {
	return &Builder{
		byName: make(map[string]*node, 8),
		nodes:  make([]*node, 0, 8),
		edges:  make([]Edge, 0, 8),
	}
}

func (b *Builder) addNode(n *node) *Builder {
	if n.name == "" {
		b.errs = append(b.errs, fmt.Errorf("topo: %s node with empty name", n.kind))
		return b
	}
	if strings.Contains(n.name, ":") {
		b.errs = append(b.errs, fmt.Errorf("topo: node name %q contains ':'", n.name))
		return b
	}
	if _, dup := b.byName[n.name]; dup {
		b.errs = append(b.errs, fmt.Errorf("topo: duplicate node name %q", n.name))
		return b
	}
	b.byName[n.name] = n
	b.nodes = append(b.nodes, n)
	return b
}

// Tester declares one OSNT tester (a simulated NetFPGA card plus host
// drivers).
func (b *Builder) Tester(name string, cfg netfpga.Config) *Builder {
	return b.addNode(&node{name: name, kind: kindTester, testerCfg: cfg})
}

// DUT declares one legacy switch under test.
func (b *Builder) DUT(name string, cfg switchsim.Config) *Builder {
	return b.addNode(&node{name: name, kind: kindDUT, dutCfg: cfg})
}

// OFSwitch declares one OpenFlow switch under test.
func (b *Builder) OFSwitch(name string, cfg ofswitch.Config) *Builder {
	return b.addNode(&node{name: name, kind: kindOFSwitch, ofCfg: cfg})
}

// Sink declares a terminal endpoint that counts and releases every frame
// delivered to it (port 0, receive only).
func (b *Builder) Sink(name string) *Builder {
	return b.addNode(&node{name: name, kind: kindSink})
}

// Link declares a unidirectional edge from → to at the endpoints' native
// rate with zero delay.
func (b *Builder) Link(from, to string) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to})
	return b
}

// LinkAt is Link with an explicit rate and propagation delay.
func (b *Builder) LinkAt(from, to string, rate wire.Rate, delay sim.Duration) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to, Rate: rate, Delay: delay})
	return b
}

// Duplex declares the two unidirectional edges of one full-duplex cable
// between a and c.
func (b *Builder) Duplex(a, c string) *Builder {
	return b.Link(a, c).Link(c, a)
}

// DuplexAt is Duplex with an explicit rate and propagation delay.
func (b *Builder) DuplexAt(a, c string, rate wire.Rate, delay sim.Duration) *Builder {
	return b.LinkAt(a, c, rate, delay).LinkAt(c, a, rate, delay)
}

// Convert declares a unidirectional speed-conversion edge from → to:
// the endpoints' port rates may differ when at least one endpoint is a
// DUT, and the wire runs at the transmitting port's rate.
func (b *Builder) Convert(from, to string) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to, Convert: true})
	return b
}

// ConvertAt is Convert with an explicit propagation delay.
func (b *Builder) ConvertAt(from, to string, delay sim.Duration) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to, Delay: delay, Convert: true})
	return b
}

// Add appends a pre-built Edge (the non-fluent spelling of Link/LinkAt).
func (b *Builder) Add(e Edge) *Builder {
	b.edges = append(b.edges, e)
	return b
}

// offsetRef shifts the port of a "node" or "node:port" reference by k
// (the port defaults to 0). Malformed references pass through unchanged
// so edge validation reports them with the usual message.
func offsetRef(ref string, k int) string {
	name, portStr, hasPort := strings.Cut(ref, ":")
	port := 0
	if hasPort {
		p, err := strconv.Atoi(portStr)
		if err != nil || p < 0 {
			return ref
		}
		port = p
	}
	return name + ":" + strconv.Itoa(port+k)
}

// Group declares n parallel unidirectional edges from → to — a
// multi-edge group link, the fabric idiom for N×uplink bundles: member
// k joins from's port+k to to's port+k. Every member is validated
// exactly like a single edge (port ranges, reuse, rate agreement) and a
// failing member reports its own index and ports, and all members must
// resolve to one rate — ECMP spraying across the bundle
// (switchsim.AddGroup over the same ports) assumes equal-cost members.
// n must be at least 2.
func (b *Builder) Group(from, to string, n int) *Builder {
	return b.GroupAt(from, to, n, 0, 0)
}

// GroupAt is Group with an explicit per-member rate and propagation
// delay — the spelling fabric synthesis uses for trunked bundles whose
// cables carry a delay.
func (b *Builder) GroupAt(from, to string, n int, rate wire.Rate, delay sim.Duration) *Builder {
	if n < 2 {
		b.errs = append(b.errs, fmt.Errorf("topo: group link %s → %s needs ≥2 members, got %d", from, to, n))
		return b
	}
	b.groups = append(b.groups, groupDecl{from: from, to: to, start: len(b.edges), n: n})
	for k := 0; k < n; k++ {
		b.edges = append(b.edges, Edge{From: offsetRef(from, k), To: offsetRef(to, k), Rate: rate, Delay: delay})
	}
	return b
}

// GroupDuplex declares the two directions of an n-wide group link: n
// parallel cables between a's ports a..a+n-1 and c's ports c..c+n-1.
func (b *Builder) GroupDuplex(a, c string, n int) *Builder {
	return b.Group(a, c, n).Group(c, a, n)
}

// GroupDuplexAt is GroupDuplex with an explicit per-member rate and
// propagation delay.
func (b *Builder) GroupDuplexAt(a, c string, n int, rate wire.Rate, delay sim.Duration) *Builder {
	return b.GroupAt(a, c, n, rate, delay).GroupAt(c, a, n, rate, delay)
}

// memberContext locates edge index idx inside a group declaration and
// returns the "group link … member k" error prefix, or "" for plain
// edges. A k-wide synthesized bundle that fails validation must say
// *which member* (and therefore which concrete ports) is wrong — on an
// 80-switch fabric, "group link agg0.1:8 → core3:0 member 3" is the
// difference between a debuggable error and a guess.
func (b *Builder) memberContext(idx int) string {
	for _, g := range b.groups {
		if idx >= g.start && idx < g.start+g.n {
			return fmt.Sprintf("group link %s → %s member %d: ", g.from, g.to, idx-g.start)
		}
	}
	return ""
}

// endpoint is one resolved side of an edge.
type endpoint struct {
	n    *node
	port int
}

// resolveRef parses a "node" or "node:port" reference against a name
// index and range-checks the port against the instantiated device — the
// single implementation of the reference grammar, shared by edge
// validation and Topology.Port.
func resolveRef(byName map[string]*node, ref string) (endpoint, error) {
	name, portStr, hasPort := strings.Cut(ref, ":")
	n, ok := byName[name]
	if !ok {
		return endpoint{}, fmt.Errorf("topo: reference to unknown node %q", name)
	}
	port := 0
	if hasPort {
		p, err := strconv.Atoi(portStr)
		if err != nil || p < 0 {
			return endpoint{}, fmt.Errorf("topo: bad port in reference %q", ref)
		}
		port = p
	}
	if port >= n.numPorts() {
		return endpoint{}, fmt.Errorf("topo: %s %q has %d port(s), reference %q out of range",
			n.kind, n.name, n.numPorts(), ref)
	}
	return endpoint{n: n, port: port}, nil
}

// numPorts is the instantiated device's port count; nodes are built
// before edges are validated, so the device constructors' own config
// defaulting is the single source of truth.
func (n *node) numPorts() int {
	switch n.kind {
	case kindTester:
		return n.tester.Card.NumPorts()
	case kindDUT:
		return n.dut.NumPorts()
	case kindOFSwitch:
		return n.of.NumPorts()
	default:
		return 1
	}
}

// rateAt is the instantiated device's native rate for one specific port,
// or 0 when the node accepts any rate (sinks). DUTs may run mixed-rate
// ports (switchsim PortRates); testers and OpenFlow switches are uniform.
func (n *node) rateAt(port int) wire.Rate {
	switch n.kind {
	case kindTester:
		return n.tester.Card.Rate()
	case kindDUT:
		return n.dut.PortRate(port)
	case kindOFSwitch:
		return n.of.Rate()
	default:
		return 0
	}
}

// rxEndpoint returns the wire.Endpoint frames delivered to this node port
// land on (valid after instantiation).
func (n *node) rxEndpoint(port int) wire.Endpoint {
	switch n.kind {
	case kindTester:
		return n.tester.Card.Port(port)
	case kindDUT:
		return n.dut.Port(port)
	case kindOFSwitch:
		return n.of.Port(port)
	default:
		return &n.sink
	}
}

// setLink attaches the egress link to this node port (valid after
// instantiation; sinks cannot transmit, which validation rejects first).
func (n *node) setLink(port int, l *wire.Link) {
	switch n.kind {
	case kindTester:
		n.tester.Card.Port(port).SetLink(l)
	case kindDUT:
		n.dut.Port(port).SetLink(l)
	case kindOFSwitch:
		n.of.Port(port).SetLink(l)
	}
}

func validationError(errs []error) error {
	msgs := make([]string, len(errs))
	for i, err := range errs {
		msgs[i] = err.Error()
	}
	return fmt.Errorf("topo: invalid scenario graph:\n  %s", strings.Join(msgs, "\n  "))
}

// Partition describes how to split a scenario graph across several
// engines — the topology side of sharded (conservative-lookahead)
// execution. Engines lists one sim.Engine per shard; ShardOf maps a node
// name to its shard index; CrossLink builds the boundary link for an
// edge whose endpoints landed on different shards (typically
// shard.Cluster.CrossLink, which turns the edge into an export channel
// drained at window barriers). With a single engine the other two fields
// are unused and BuildPartitioned degenerates to exactly Build.
type Partition struct {
	// Engines holds one engine per shard; len(Engines) is the shard
	// count and must be ≥ 1.
	Engines []*sim.Engine
	// ShardOf maps a node name to its shard in [0, len(Engines)).
	// Required when len(Engines) > 1.
	ShardOf func(name string) int
	// CrossLink builds the egress link for a cross-shard edge: src and
	// dst are the shard indices, e is the transmitting shard's engine,
	// and peer is the receiving device's endpoint (owned by shard dst —
	// the link must not deliver into it directly). Required when
	// len(Engines) > 1.
	CrossLink func(src, dst int, e *sim.Engine, rate wire.Rate, delay sim.Duration, peer wire.Endpoint) *wire.Link
}

// Build validates the graph and instantiates it on engine e: every node
// becomes a device, every edge a wire.Link. Node-declaration errors are
// reported before anything is built; edge errors are reported all at
// once (the devices already exist then, but nothing is wired and no
// event is scheduled, so a failed Build leaves the engine inert). Build
// is the builder's terminal operation: the resulting Topology owns the
// node handles, so building the same graph on a second engine requires
// declaring it again.
func (b *Builder) Build(e *sim.Engine) (*Topology, error) {
	return b.BuildPartitioned(Partition{Engines: []*sim.Engine{e}})
}

// BuildPartitioned is Build across a Partition: every node is
// instantiated on its shard's engine, intra-shard edges become ordinary
// wire.Links on that engine, and cross-shard edges go through
// p.CrossLink. Hop IDs are assigned globally (the same numbering a
// single-shard build produces), but each device reports drops into a
// private per-shard ledger so the hot path never crosses a shard;
// Topology.Drops merges them back into the single-shard view.
//
// A cross-shard edge with zero propagation delay is a validation error:
// the delay of the cut edges is the conservative-lookahead budget that
// lets shards advance in parallel, and a zero-delay cut would force the
// window to zero width. (Intra-shard edges may keep zero delay.)
func (b *Builder) BuildPartitioned(p Partition) (*Topology, error) {
	if b.built {
		return nil, fmt.Errorf("topo: Build called twice on one Builder (declare the graph again for a second engine)")
	}
	if len(p.Engines) == 0 {
		return nil, validationError([]error{fmt.Errorf("topo: partition has no engines")})
	}
	single := len(p.Engines) == 1
	if !single && (p.ShardOf == nil || p.CrossLink == nil) {
		return nil, validationError([]error{fmt.Errorf("topo: a %d-shard partition needs ShardOf and CrossLink", len(p.Engines))})
	}
	if len(b.errs) > 0 {
		return nil, validationError(b.errs)
	}

	// Assign shards before instantiation (devices must be constructed on
	// their own engine). A ShardOf out of range is a description error.
	if !single {
		for _, n := range b.nodes {
			s := p.ShardOf(n.name)
			if s < 0 || s >= len(p.Engines) {
				return nil, validationError([]error{fmt.Errorf("topo: ShardOf(%q) = %d, outside [0, %d)",
					n.name, s, len(p.Engines))})
			}
			n.shard = s
		}
	}

	// DUTs get sequential hop IDs (1-based, declaration order) unless
	// their config pins one, so chain rigs stamp per-hop traces without
	// per-experiment bookkeeping. Pinned IDs are claimed first — two
	// devices stamping the same Hop.Node would silently merge their
	// latency in every decomposition, so a clash is a validation error
	// and the auto-assigner skips claimed values.
	pinned := make(map[int]string)
	for _, n := range b.nodes {
		if n.kind != kindDUT || n.dutCfg.HopID == 0 {
			continue
		}
		if prev, dup := pinned[n.dutCfg.HopID]; dup {
			return nil, validationError([]error{fmt.Errorf("topo: DUTs %q and %q both pin hop ID %d",
				prev, n.name, n.dutCfg.HopID)})
		}
		pinned[n.dutCfg.HopID] = n.name
	}

	// Instantiate nodes in declaration order before validating edges, so
	// port counts and rates come from the devices themselves (the
	// constructors' config defaulting is the single source of truth).
	// Construction schedules nothing, so this order only fixes handle
	// identity, never event timing.
	nextHop := 1
	for _, n := range b.nodes {
		e := p.Engines[n.shard]
		switch n.kind {
		case kindTester:
			n.tester = core.NewDevice(e, n.testerCfg)
		case kindDUT:
			cfg := n.dutCfg
			if cfg.HopID == 0 {
				for pinned[nextHop] != "" {
					nextHop++
				}
				cfg.HopID = nextHop
				nextHop++
			}
			n.hop = cfg.HopID
			n.dut = switchsim.New(e, cfg)
		case kindOFSwitch:
			n.of = ofswitch.New(e, n.ofCfg)
		}
	}

	// Thread the scenario's loss-attribution ledger, the way hop IDs
	// thread the latency trace: DUTs report drops under their HopTrace
	// hop ID (so per-hop loss and per-hop latency line up), then every
	// other device that can lose frames — OpenFlow switches, tester
	// cards, and later each attached monitor — registers at the next
	// free hop in declaration order.
	//
	// Sharded builds keep that numbering global (drops stays the
	// assignment authority) but give every shard a private ledger
	// holding only its own devices' labels and counts: reporting a drop
	// is then a plain array increment with no cross-shard write, and
	// Topology.Drops merges the shards back into the single view.
	drops := &wire.DropLedger{}
	ledgers := make([]*wire.DropLedger, len(p.Engines))
	if single {
		ledgers[0] = drops
	} else {
		for i := range ledgers {
			ledgers[i] = &wire.DropLedger{}
		}
	}
	register := func(n *node) {
		if !single {
			ledgers[n.shard].Register(n.hop, n.name)
		}
	}
	for _, n := range b.nodes {
		if n.kind == kindDUT {
			drops.Register(n.hop, n.name)
			register(n)
			n.dut.SetDropSite(ledgers[n.shard], n.hop)
		}
	}
	for _, n := range b.nodes {
		switch n.kind {
		case kindOFSwitch:
			n.hop = drops.Add(n.name)
			register(n)
			n.of.SetDropSite(ledgers[n.shard], n.hop)
		case kindTester:
			n.hop = drops.Add(n.name)
			register(n)
			n.tester.Card.SetDropSite(ledgers[n.shard], n.hop)
		}
	}

	var errs []error
	type resolved struct {
		from, to endpoint
		rate     wire.Rate
		delay    sim.Duration
	}
	// Port-reuse detection scans the already-resolved edges: graphs are a
	// few dozen edges at most, and a linear scan keeps the per-Build
	// footprint small enough for tight sweep loops (one Build per point).
	wires := make([]resolved, 0, len(b.edges))

	for idx, edge := range b.edges {
		// fail records a validation error; a group-member edge is
		// re-prefixed so the message names the failing member, not just
		// the bundle.
		fail := func(err error) {
			if ctx := b.memberContext(idx); ctx != "" {
				err = fmt.Errorf("topo: %s%s", ctx, strings.TrimPrefix(err.Error(), "topo: "))
			}
			errs = append(errs, err)
		}
		from, errF := resolveRef(b.byName, edge.From)
		to, errT := resolveRef(b.byName, edge.To)
		if errF != nil {
			fail(errF)
		}
		if errT != nil {
			fail(errT)
		}
		if errF != nil || errT != nil {
			continue
		}
		if from.n.kind == kindSink {
			fail(fmt.Errorf("topo: sink %q cannot transmit (edge %s → %s)",
				from.n.name, edge.From, edge.To))
			continue
		}
		dup := false
		for _, w := range wires {
			if w.from == from {
				fail(fmt.Errorf("topo: transmit port %s:%d used by two edges",
					from.n.name, from.port))
				dup = true
				break
			}
			if w.to == to {
				fail(fmt.Errorf("topo: receive port %s:%d fed by two edges",
					to.n.name, to.port))
				dup = true
				break
			}
		}
		if dup {
			continue
		}

		// Resolve the link rate and demand agreement with both endpoints'
		// native port rates: a 40G fibre into a 10G MAC is a miswiring.
		// Rates resolve per port (a mixed-rate DUT exposes different
		// rates on different ports). A genuine rate boundary is legal
		// only on an explicit conversion edge anchored at a DUT, which
		// serialises at the transmitting port's rate.
		rate := edge.Rate
		fromRate := from.n.rateAt(from.port)
		toRate := to.n.rateAt(to.port)
		if edge.Convert {
			if from.n.kind != kindDUT && to.n.kind != kindDUT {
				fail(fmt.Errorf("topo: conversion edge %s → %s joins no DUT (only a DUT store-and-forwards across a rate boundary)",
					edge.From, edge.To))
				continue
			}
			if rate == 0 {
				rate = fromRate
			} else if fromRate != 0 && rate != fromRate {
				fail(fmt.Errorf("topo: conversion edge %s → %s at %v, but the transmitting %s %q port runs at %v",
					edge.From, edge.To, rate, from.n.kind, from.n.name, fromRate))
				continue
			}
		} else {
			if fromRate != 0 && toRate != 0 && fromRate != toRate {
				fail(fmt.Errorf("topo: edge %s → %s joins %s %q at %v to %s %q at %v; use a Convert edge at a DUT for store-and-forward speed conversion",
					edge.From, edge.To, from.n.kind, from.n.name, fromRate, to.n.kind, to.n.name, toRate))
				continue
			}
			for _, native := range []wire.Rate{fromRate, toRate} {
				if native == 0 {
					continue
				}
				if rate == 0 {
					rate = native
				} else if rate != native {
					fail(fmt.Errorf("topo: edge %s → %s at %v, but its ports run at %v",
						edge.From, edge.To, rate, native))
					break
				}
			}
		}
		if rate == 0 {
			rate = wire.Rate10G // sink-to-sink never happens; belt and braces
		}
		// A cut edge with no propagation delay would give the shard pair
		// zero lookahead: the receiving shard could never advance without
		// risking a same-instant arrival from its neighbour. Demand the
		// delay at build time rather than deadlock (or diverge) at run
		// time.
		if from.n.shard != to.n.shard && edge.Delay <= 0 {
			fail(fmt.Errorf("topo: cross-shard edge %s → %s (shard %d → %d) has zero propagation delay; cut edges need a positive delay (the conservative-lookahead budget)",
				edge.From, edge.To, from.n.shard, to.n.shard))
			continue
		}
		wires = append(wires, resolved{from: from, to: to, rate: rate, delay: edge.Delay})
	}

	// Group members must be equal-cost: ECMP spraying across a bundle
	// whose members run at different rates would silently weight flows
	// by hash luck, so a mixed-rate group is a construction error.
	for _, g := range b.groups {
		var rate wire.Rate
		for k := 0; k < g.n; k++ {
			from, err := resolveRef(b.byName, b.edges[g.start+k].From)
			if err != nil {
				break // already reported by the edge loop
			}
			r := from.n.rateAt(from.port)
			if k == 0 {
				rate = r
			} else if r != rate {
				errs = append(errs, fmt.Errorf("topo: group link %s → %s mixes member rates: member 0 (%s) at %v, member %d (%s) at %v",
					g.from, g.to, b.edges[g.start].From, rate, k, b.edges[g.start+k].From, r))
				break
			}
		}
	}

	if len(errs) > 0 {
		return nil, validationError(errs)
	}

	// Delivery keys: every positive-delay link gets a unique structural
	// key, assigned in edge-declaration order. Same-instant arrivals at a
	// device then fire in cable order — a property of the wiring alone.
	// The edge walk is identical at every shard count, so the keys (and
	// with them every same-instant ordering decision) are partition
	// independent: the foundation of the byte-identical-digests contract.
	// Zero-delay links keep wire's default (plain FIFO), which preserves
	// the historical event order of every delay-free topology exactly.
	deliveryKey := uint64(1)
	for _, w := range wires {
		peer := w.to.n.rxEndpoint(w.to.port)
		var l *wire.Link
		if w.from.n.shard == w.to.n.shard {
			l = wire.NewLink(p.Engines[w.from.n.shard], w.rate, w.delay, peer)
		} else {
			l = p.CrossLink(w.from.n.shard, w.to.n.shard, p.Engines[w.from.n.shard], w.rate, w.delay, peer)
		}
		if w.delay > 0 {
			l.SetDeliveryKey(deliveryKey)
			deliveryKey++
		}
		w.from.n.setLink(w.from.port, l)
	}

	// The topology takes over the builder's name index; the built flag
	// keeps a stale Builder from re-pointing these handles elsewhere.
	b.built = true
	t := &Topology{Engine: p.Engines[0], byName: b.byName, drops: drops}
	if !single {
		t.ledgers = ledgers
	}
	return t, nil
}

// MustBuild is Build, panicking on validation errors — the spelling for
// experiment rigs whose graphs are static.
func (b *Builder) MustBuild(e *sim.Engine) *Topology {
	t, err := b.Build(e)
	if err != nil {
		panic(err)
	}
	return t
}

// Topology is an instantiated scenario graph: named handles onto the
// devices living on one engine (or, for partitioned builds, one engine
// per shard — Engine then holds shard 0's).
type Topology struct {
	Engine *sim.Engine

	byName map[string]*node
	drops  *wire.DropLedger
	// ledgers holds the per-shard drop ledgers of a partitioned build
	// (nil for single-engine builds, where drops is the one ledger).
	ledgers []*wire.DropLedger
}

// Drops returns the scenario's loss-attribution ledger: every device
// Build instantiated (and every monitor attached through
// AttachMonitor) reports its discarded frames into it as (hop, reason),
// so sent = delivered + Σ ledger drops holds across the whole graph.
// stats.NewLossMap reduces it to the printable per-hop table.
//
// On a partitioned build each shard owns a private ledger and Drops
// merges them into a fresh snapshot under the global hop numbering —
// byte-identical to what a single-shard build of the same graph reports.
// Take the snapshot only while no shard is running (after the cluster's
// barriers), and re-call it for fresh counts.
func (t *Topology) Drops() *wire.DropLedger {
	if t.ledgers == nil {
		return t.drops
	}
	m := &wire.DropLedger{}
	m.Merge(t.drops) // global labels, zero counts
	for _, l := range t.ledgers {
		m.Merge(l)
	}
	return m
}

// Shard returns the shard index a node was instantiated on (0 for
// single-engine builds).
func (t *Topology) Shard(name string) int {
	n, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no node %q", name))
	}
	return n.shard
}

// Hop returns a node's loss-ledger hop ID (for DUTs, also its HopTrace
// hop ID).
func (t *Topology) Hop(name string) int {
	n, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no node %q", name))
	}
	return n.hop
}

func (t *Topology) node(name string, k kind) *node {
	n, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no node %q", name))
	}
	if n.kind != k {
		panic(fmt.Sprintf("topo: node %q is a %s, not a %s", name, n.kind, k))
	}
	return n
}

// Tester returns the named OSNT tester.
func (t *Topology) Tester(name string) *core.Device { return t.node(name, kindTester).tester }

// DUT returns the named legacy switch.
func (t *Topology) DUT(name string) *switchsim.Switch { return t.node(name, kindDUT).dut }

// OFSwitch returns the named OpenFlow switch.
func (t *Topology) OFSwitch(name string) *ofswitch.Switch { return t.node(name, kindOFSwitch).of }

// Sink returns the named sink.
func (t *Topology) Sink(name string) *Sink { return &t.node(name, kindSink).sink }

// Port resolves a "tester:port" reference to the card port, the handle
// gen.New and mon.Attach take. References are held to exactly the
// grammar Build validates (see resolveRef); a bad one panics with a
// topo-level message.
func (t *Topology) Port(ref string) *netfpga.Port {
	ep, err := resolveRef(t.byName, ref)
	if err != nil {
		panic(err.Error())
	}
	if ep.n.kind != kindTester {
		panic(fmt.Sprintf("topo: node %q is a %s, not a tester", ep.n.name, ep.n.kind))
	}
	return ep.n.tester.Card.Port(ep.port)
}

// AttachMonitor attaches a capture engine to a tester port declared in
// the graph — the mon.Attach spelling for declarative rigs. The monitor
// configuration is validated per node: mon.New rejects negative ring or
// host-cost parameters, and a queue count beyond the card's per-port DMA
// budget (netfpga.Config.CaptureQueues) is a configuration error here,
// not a silent truncation. Invalid references or configs panic with a
// topo-level message, like Port and MustBuild.
func (t *Topology) AttachMonitor(ref string, cfg mon.Config) *mon.Monitor {
	m, err := mon.New(t.Port(ref), cfg)
	if err != nil {
		panic(fmt.Sprintf("topo: monitor on %s: %v", ref, err))
	}
	// The monitor is a loss point of its own (filter rejects, DMA ring
	// overflow): register it on the scenario ledger in attach order. On a
	// partitioned build the hop ID still comes from the global numbering,
	// but the counts land on the monitored port's shard ledger.
	hop := t.drops.Add("mon:" + ref)
	ledger := t.drops
	if t.ledgers != nil {
		ep, _ := resolveRef(t.byName, ref) // t.Port above already validated ref
		ledger = t.ledgers[ep.n.shard]
		ledger.Register(hop, "mon:"+ref)
	}
	m.SetDropSite(ledger, hop)
	return m
}

// Sink is a terminal endpoint: it counts every delivered frame and
// releases it back to its pool. Experiments read the counters after the
// run.
type Sink struct {
	received stats.Counter
}

// Receive implements wire.Endpoint.
func (s *Sink) Receive(f *wire.Frame, _, _ sim.Time) {
	s.received.Add(wire.WireBytes(f.Size))
	f.Release()
}

// ReceiveTrain implements wire.TrainEndpoint: one delivery event counts
// and releases the whole run.
func (s *Sink) ReceiveTrain(t *wire.Train, _, _ sim.Time) {
	for _, f := range t.Frames {
		s.received.Add(wire.WireBytes(f.Size))
	}
	t.Release()
}

// Received returns counters over the delivered frames (wire bytes).
func (s *Sink) Received() stats.Counter { return s.received }
