package sim

import "testing"

func TestRescheduleReusesEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var ev *Event
	ev = e.Schedule(10, func() {
		fired = append(fired, e.Now())
		if len(fired) < 3 {
			e.Reschedule(ev, e.Now().Add(5))
		}
	})
	e.Run()
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 15 || fired[2] != 20 {
		t.Fatalf("fired at %v", fired)
	}
}

func TestRescheduleAfterCancelRearms(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.Schedule(10, func() { count++ })
	ev.Cancel()
	e.Run() // pops the cancelled event without firing
	if count != 0 {
		t.Fatal("cancelled event fired")
	}
	e.Reschedule(ev, e.Now().Add(1))
	e.Run()
	if count != 1 {
		t.Fatalf("re-armed event fired %d times", count)
	}
}

func TestRescheduleQueuedEventPanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic rescheduling a queued event")
		}
	}()
	e.Reschedule(ev, 20)
}

func TestReschedulePastPanics(t *testing.T) {
	e := NewEngine()
	var ev *Event
	ev = e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic rescheduling into the past")
			}
		}()
		e.Reschedule(ev, 5)
	})
	e.Run()
}

func TestScheduleEveryTicksAndStops(t *testing.T) {
	e := NewEngine()
	var at []Time
	var tk *Ticker
	tk = e.ScheduleEvery(100, 50, func() {
		at = append(at, e.Now())
		if len(at) == 4 {
			tk.Stop()
		}
	})
	e.Run()
	want := []Time{100, 150, 200, 250}
	if len(at) != len(want) {
		t.Fatalf("ticked at %v", at)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticked at %v, want %v", at, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events left after Stop", e.Pending())
	}
}

// The whole point of ScheduleEvery: a long-running periodic task must not
// allocate per tick.
func TestScheduleEveryZeroAllocPerTick(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.ScheduleEvery(0, 10, func() { ticks++ })
	e.RunUntil(1000) // warm up
	avg := testing.AllocsPerRun(10, func() {
		e.RunFor(10000) // 1000 ticks
	})
	if avg > 1 {
		t.Errorf("periodic tick allocates (%.1f allocs per 1000 ticks)", avg)
	}
	if ticks < 1000 {
		t.Fatalf("only %d ticks", ticks)
	}
}
