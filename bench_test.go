// Package osnt_test holds the repository-level benchmark harness: one
// benchmark per experiment table/figure in DESIGN.md (E1–E8, plus the
// E9–E19 scaling sweeps). Each iteration regenerates the corresponding
// table from scratch, so `go test -bench=. -benchmem` both exercises the
// full stack and reports how much host CPU a complete experiment costs.
// The tables themselves are printed by `go run ./cmd/osnt-bench` and
// recorded in EXPERIMENTS.md.
package osnt_test

import (
	"testing"

	"osnt/internal/experiments"
	"osnt/internal/sim"
)

// short durations keep a single benchmark iteration around the hundreds
// of milliseconds of host time while preserving every experiment's shape.
const (
	// E1 needs a window long enough that losing the packet straddling the
	// window edge stays under the 0.1% line-rate tolerance.
	benchE1Dur  = sim.Millisecond
	benchE2Dur  = 60 * sim.Second
	benchE3Dur  = 5 * sim.Millisecond
	benchE7Dur  = 5 * sim.Millisecond
	benchE9Dur  = sim.Millisecond
	benchE10Dur = sim.Millisecond
	benchE11Dur = sim.Millisecond
	benchE12Dur = 2 * sim.Millisecond
	benchE13Dur = 2 * sim.Millisecond
	benchE14Dur = sim.Millisecond
	benchE15Dur = sim.Millisecond
	benchE16Dur = 2 * sim.Millisecond
	benchE17Dur = 2 * sim.Millisecond
	benchE18Dur = sim.Millisecond
	benchE19Dur = 250 * sim.Microsecond
)

func BenchmarkE1LineRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E1LineRate(benchE1Dur)
		for _, row := range tbl.Rows {
			if row[5] != "true" {
				b.Fatalf("line rate missed: %v", row)
			}
		}
	}
}

func BenchmarkE2ClockDiscipline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E2ClockDiscipline(benchE2Dur); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE3SwitchLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E3SwitchLatency(benchE3Dur); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE4FlowModLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E4FlowModLatency(); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE5Consistency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E5Consistency(); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE6TimestampNoise(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E6TimestampNoise(500); len(tbl.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkE7CapturePath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E7CapturePath(benchE7Dur); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE8ControlUnderLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E8ControlUnderLoad(); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE9PortScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E9PortScaling(benchE9Dur)
		for _, row := range tbl.Rows {
			if row[6] != "true" {
				b.Fatalf("scaling missed line rate: %v", row)
			}
		}
	}
}

func BenchmarkE10TesterMesh(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E10TesterMesh(benchE10Dur)
		for _, row := range tbl.Rows {
			if row[7] != "true" {
				b.Fatalf("mesh missed line rate: %v", row)
			}
		}
	}
}

func BenchmarkE11Rate40G(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E11Rate40G(benchE11Dur)
		for _, row := range tbl.Rows {
			if row[6] != "true" {
				b.Fatalf("40G missed line rate: %v", row)
			}
		}
	}
}

func BenchmarkE12MixedRateFanIn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E12MixedRateFanIn(benchE12Dur)
		for _, row := range tbl.Rows {
			if row[3] != "0" {
				b.Fatalf("fan-in direction dropped: %v", row)
			}
		}
	}
}

func BenchmarkE13MultiDUTChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E13MultiDUTChain(benchE13Dur)
		for _, row := range tbl.Rows {
			if row[7] != "0.00" {
				b.Fatalf("chain lost packets: %v", row)
			}
		}
	}
}

func BenchmarkE14Capture100G(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E14Capture100G(benchE14Dur)
		for _, row := range tbl.Rows {
			queues, frame, lossless := row[0], row[1], row[8]
			// The tentpole claim at the bandwidth-bound frame size: one
			// DMA queue saturates, two restore lossless thinned capture.
			if frame == "1518" {
				want := "true"
				if queues == "1" {
					want = "false"
				}
				if lossless != want {
					b.Fatalf("100G capture at %s queues: lossless=%s, want %s (%v)", queues, lossless, want, row)
				}
			}
		}
	}
}

func BenchmarkE15Oversubscribed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E15Oversubscribed(benchE15Dur)
		for _, row := range tbl.Rows {
			if row[8] != "true" {
				b.Fatalf("fabric loss not conserved: %v", row)
			}
		}
	}
}

func BenchmarkE16LossAttribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E16LossAttribution(benchE16Dur)
		for _, row := range tbl.Rows {
			if row[10] != "true" {
				b.Fatalf("chain loss not conserved: %v", row)
			}
		}
	}
}

func BenchmarkE17FlowAnalytics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E17FlowAnalytics(benchE17Dur)
		for _, row := range tbl.Rows {
			if row[10] != "true" {
				b.Fatalf("flow analytics invariant failed: %v", row)
			}
		}
	}
}

// BenchmarkE18TrainSweep runs the frame-train coalescing sweep and
// asserts its core contract: every row's stream digest matches the
// per-frame (cap 1) reference run of its frame size.
func BenchmarkE18TrainSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E18TrainSpeedup(benchE18Dur)
		for _, row := range tbl.Rows {
			if row[6] != "true" {
				b.Fatalf("train run diverged from the per-frame reference: %v", row)
			}
		}
	}
}

// BenchmarkE19FatTreeK4 runs the k=4 slice of the synthesized-fabric
// sweep (20 switches, 16 hosts, three traffic matrices across load) and
// asserts the ledger's conservation column on every row.
func BenchmarkE19FatTreeK4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E19FatTreeK4(benchE19Dur)
		for _, row := range tbl.Rows {
			if row[12] != "true" {
				b.Fatalf("fabric loss not conserved: %v", row)
			}
		}
	}
}

// BenchmarkE19FatTreeK4Sharded runs the same nine (matrix, load) points
// as BenchmarkE19FatTreeK4 on the 1 µs-cable variant of the k=4 fabric,
// each point executed across 4 conservative-lookahead shards (one
// engine per core). This is the benchgate's gated E19FatTreeK4 workload
// post-sharding: the frozen BENCH_PRESHARD.json snapshot holds the
// serial pre-sharding figure it must beat.
func BenchmarkE19FatTreeK4Sharded(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiments.E19FatTreeK4Sharded(benchE19Dur, 4)
		if len(tbl.Rows) != 9 {
			b.Fatalf("sharded sweep produced %d rows, want 9", len(tbl.Rows))
		}
	}
}

// BenchmarkE20ShardScaling is one k=8 permutation point on 4 shards —
// the shard runtime's barrier/window/drain overhead and parallel win in
// a single number (machine-dependent by design: more cores, lower
// ns/op).
func BenchmarkE20ShardScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.E20ShardMicroBench() == 0 {
			b.Fatal("degenerate digest")
		}
	}
}

// BenchmarkFabricSynthK8 isolates fabric synthesis: one iteration
// builds a full k=8 fat-tree (80 switches, 128 hosts, every FDB
// pre-learned) on a fresh engine — the fixed cost every E19 point pays
// before the first frame.
func BenchmarkFabricSynthK8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.FabricSynthMicroBench() != 80 {
			b.Fatal("k=8 synthesis produced the wrong switch count")
		}
	}
}

// BenchmarkDUTSpray2W isolates the ECMP spray hot path: 64 B line-rate
// traffic hashed across a two-member uplink group.
func BenchmarkDUTSpray2W(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m0, m1 := experiments.SprayMicroBench(sim.Millisecond)
		if m0 == 0 || m1 == 0 {
			b.Fatalf("degenerate spray: %d/%d", m0, m1)
		}
	}
}

// BenchmarkMonSteer8Q isolates the multi-queue steering hot path: 64 B
// line-rate capture spread across 8 idealised queues.
func BenchmarkMonSteer8Q(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.SteerMicroBench(sim.Millisecond) == 0 {
			b.Fatal("steering rig delivered nothing")
		}
	}
}

// BenchmarkMonMerge8Q isolates the k-way merge hot path: 64 B line-rate
// capture dealt round-robin across 8 idealised queues and re-sequenced
// into global (TS, Queue, Seq) order.
func BenchmarkMonMerge8Q(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.MergeMicroBench(sim.Millisecond) == 0 {
			b.Fatal("merge rig emitted nothing")
		}
	}
}

// BenchmarkFlowTableUpsert isolates the flow-analytics upsert hot path:
// 2^20 samples over 512 flows into the flow table and both sketches.
func BenchmarkFlowTableUpsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.FlowTableMicroBench() == 0 {
			b.Fatal("flow table tracked nothing")
		}
	}
}

// BenchmarkE9Serial is the 1-worker reference for the same sweep: the
// ratio to BenchmarkE9PortScaling is the parallel runner's speedup.
func BenchmarkE9Serial(b *testing.B) {
	b.ReportAllocs()
	old := experiments.Workers
	experiments.Workers = 1
	defer func() { experiments.Workers = old }()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E9PortScaling(benchE9Dur); len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
