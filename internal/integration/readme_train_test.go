package integration_test

import (
	"testing"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/sim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// TestReadmeTrainSnippet mirrors the README's frame-train example so the
// documentation stays compile-verified and behaviour-verified: a
// saturated 100G stream with MaxTrain 64 must deliver the line-rate
// frame count while spending well under one engine event per frame.
func TestReadmeTrainSnippet(t *testing.T) {
	engine := sim.NewEngine()
	tp := topo.New().
		Tester("osnt", netfpga.Config{Ports: 2, Rate: wire.Rate100G}).
		Link("osnt:0", "osnt:1").
		MustBuild(engine)

	m := tp.AttachMonitor("osnt:1", mon.Config{
		SnapLen: 64,
		Queues:  []mon.QueueConfig{{RingSize: 1 << 20, HostPerPacket: sim.Picosecond, HostPerByte: -1}},
	})

	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:   &gen.UDPFlowSource{Spec: spec, FrameSize: 64},
		Spacing:  gen.CBRForLoad(64, wire.Rate100G, 1.0), // saturated: frames abut
		Pool:     wire.DefaultPool,                       // trains ride the pooled path
		MaxTrain: 64,                                     // coalesce up to 64 frames/event
		Until:    sim.Time(sim.Millisecond),              // formation looks ahead to this
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	engine.RunUntil(sim.Time(sim.Millisecond))
	g.Stop()
	engine.Run()

	frames := m.Delivered().Packets
	// 100G moves 64B frames at 148.81 Mpps: 1 ms is ≈148810 frames.
	if frames < 148800 || frames > 148820 {
		t.Fatalf("delivered %d frames in 1ms at 100G, want ≈148810", frames)
	}
	evPerFrame := float64(engine.Fired()) / float64(frames)
	if evPerFrame >= 0.5 {
		t.Fatalf("%.3f events/frame with MaxTrain 64, want well under 0.5", evPerFrame)
	}
}
