package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	mac1 = MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	mac2 = MAC{0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb}
	ipA  = IP4{10, 0, 0, 1}
	ipB  = IP4{192, 168, 1, 200}
)

func TestSerializeBufferPrependAppend(t *testing.T) {
	b := NewSerializeBuffer(4, 4)
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	copy(b.AppendBytes(2), []byte{4, 5})
	copy(b.PrependBytes(1), []byte{0})
	want := []byte{0, 1, 2, 3, 4, 5}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("Bytes = %v, want %v", b.Bytes(), want)
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatalf("Len after Clear = %d", b.Len())
	}
	copy(b.PrependBytes(2), []byte{9, 9})
	if !bytes.Equal(b.Bytes(), []byte{9, 9}) {
		t.Fatalf("after Clear+Prepend: %v", b.Bytes())
	}
}

func TestSerializeBufferGrowsFront(t *testing.T) {
	b := NewSerializeBuffer(0, 0)
	copy(b.PrependBytes(100), make([]byte, 100))
	if b.Len() != 100 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Clear()
	// Second round with the same shape must work and keep content correct.
	p := b.PrependBytes(100)
	for i := range p {
		p[i] = byte(i)
	}
	if b.Bytes()[99] != 99 {
		t.Fatal("content corrupted after regrow")
	}
}

func TestSerializeBufferSteadyStateNoAlloc(t *testing.T) {
	b := NewSerializeBuffer(64, 128)
	round := func() {
		b.Clear()
		copy(b.PrependBytes(20), make([]byte, 20))
		copy(b.AppendBytes(40), make([]byte, 40))
	}
	round()
	allocs := testing.AllocsPerRun(100, round)
	if allocs != 0 {
		t.Fatalf("steady-state serialize allocates %v/op", allocs)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{Dst: mac2, Src: mac1, EtherType: EtherTypeIPv4}
	b := NewSerializeBuffer(14, 0)
	out, err := Serialize(b, SerializeOptions{}, e, Payload([]byte{0xde, 0xad}))
	if err != nil {
		t.Fatal(err)
	}
	var d Ethernet
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.Dst != mac2 || d.Src != mac1 || d.EtherType != EtherTypeIPv4 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(d.Payload(), []byte{0xde, 0xad}) {
		t.Fatalf("payload %v", d.Payload())
	}
}

func TestEthernetTooShort(t *testing.T) {
	var d Ethernet
	if err := d.DecodeFromBytes(make([]byte, 13)); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestMACHelpers(t *testing.T) {
	if mac1.String() != "00:11:22:33:44:55" {
		t.Fatalf("String = %q", mac1.String())
	}
	bcast := MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if !bcast.IsBroadcast() || !bcast.IsMulticast() {
		t.Fatal("broadcast misclassified")
	}
	if mac1.IsMulticast() || mac1.IsBroadcast() {
		t.Fatal("unicast misclassified")
	}
	mcast := MAC{0x01, 0, 0x5e, 0, 0, 1}
	if !mcast.IsMulticast() || mcast.IsBroadcast() {
		t.Fatal("multicast misclassified")
	}
}

func TestVLANRoundTrip(t *testing.T) {
	v := &VLAN{Priority: 5, DropOK: true, ID: 0x123, EtherType: EtherTypeIPv4}
	b := NewSerializeBuffer(4, 0)
	out, err := Serialize(b, SerializeOptions{}, v, Payload([]byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	var d VLAN
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.Priority != 5 || !d.DropOK || d.ID != 0x123 || d.EtherType != EtherTypeIPv4 {
		t.Fatalf("decoded %+v", d)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Op: ARPRequest, SenderHW: mac1, SenderIP: ipA, TargetIP: ipB}
	b := NewSerializeBuffer(28, 0)
	out, err := Serialize(b, SerializeOptions{}, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != ARPLen {
		t.Fatalf("len = %d", len(out))
	}
	var d ARP
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.Op != ARPRequest || d.SenderHW != mac1 || d.SenderIP != ipA || d.TargetIP != ipB {
		t.Fatalf("decoded %+v", d)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := &IPv4{TOS: 0x10, ID: 0xbeef, Flags: IPv4DontFragment, TTL: 63, Proto: ProtoUDP, Src: ipA, Dst: ipB}
	b := NewSerializeBuffer(34, 0)
	payload := Payload(bytes.Repeat([]byte{0xab}, 30))
	out, err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip, payload)
	if err != nil {
		t.Fatal(err)
	}
	var d IPv4
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.TotalLen != 50 {
		t.Fatalf("TotalLen = %d, want 50", d.TotalLen)
	}
	if d.TOS != 0x10 || d.ID != 0xbeef || d.Flags != IPv4DontFragment || d.TTL != 63 ||
		d.Proto != ProtoUDP || d.Src != ipA || d.Dst != ipB {
		t.Fatalf("decoded %+v", d)
	}
	if !d.VerifyChecksum(out) {
		t.Fatal("checksum does not verify")
	}
	out[8] = 10 // corrupt TTL
	if d.VerifyChecksum(out) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestIPv4Options(t *testing.T) {
	ip := &IPv4{TTL: 1, Proto: ProtoTCP, Src: ipA, Dst: ipB, Options: []byte{0x94, 0x04, 0, 0}} // router alert
	b := NewSerializeBuffer(64, 0)
	out, err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 24 {
		t.Fatalf("header with options len = %d, want 24", len(out))
	}
	var d IPv4
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Options, []byte{0x94, 0x04, 0, 0}) {
		t.Fatalf("options %v", d.Options)
	}
	if !d.VerifyChecksum(out) {
		t.Fatal("options checksum")
	}
}

func TestIPv4PayloadTrimsPadding(t *testing.T) {
	// 20B header + 6B payload inside a 60B buffer (Ethernet padding).
	ip := &IPv4{TTL: 64, Proto: ProtoUDP, Src: ipA, Dst: ipB}
	b := NewSerializeBuffer(20, 40)
	out, _ := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		ip, Payload([]byte{1, 2, 3, 4, 5, 6}))
	padded := append(append([]byte{}, out...), make([]byte, 34)...)
	var d IPv4
	if err := d.DecodeFromBytes(padded); err != nil {
		t.Fatal(err)
	}
	if len(d.Payload()) != 6 {
		t.Fatalf("payload len = %d, want 6 (padding must be trimmed)", len(d.Payload()))
	}
}

func TestIPv4Malformed(t *testing.T) {
	var d IPv4
	if err := d.DecodeFromBytes(make([]byte, 10)); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if err := d.DecodeFromBytes(bad); err != ErrVersion {
		t.Fatalf("version: %v", err)
	}
	bad[0] = 0x43 // IHL 3 (<5)
	if err := d.DecodeFromBytes(bad); err != ErrTooShort {
		t.Fatalf("ihl: %v", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	src := IP6{0x20, 0x01, 0x0d, 0xb8}
	dst := IP6{0xfe, 0x80, 15: 0x01}
	ip := &IPv6{TrafficClass: 0xc0, FlowLabel: 0xabcde, NextHeader: ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	b := NewSerializeBuffer(40, 0)
	out, err := Serialize(b, SerializeOptions{FixLengths: true}, ip, Payload([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	var d IPv6
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.TrafficClass != 0xc0 || d.FlowLabel != 0xabcde || d.NextHeader != ProtoUDP ||
		d.HopLimit != 64 || d.Src != src || d.Dst != dst || d.PayloadLen != 3 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(d.Payload(), []byte{1, 2, 3}) {
		t.Fatalf("payload %v", d.Payload())
	}
}

func TestUDPRoundTripChecksum(t *testing.T) {
	u := &UDP{SrcPort: 1234, DstPort: 80}
	u.SetNetworkForChecksum(ipA, ipB)
	b := NewSerializeBuffer(8, 16)
	out, err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		u, Payload([]byte("hello world")))
	if err != nil {
		t.Fatal(err)
	}
	var d UDP
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1234 || d.DstPort != 80 || d.Length != 19 {
		t.Fatalf("decoded %+v", d)
	}
	if string(d.Payload()) != "hello world" {
		t.Fatalf("payload %q", d.Payload())
	}
	if !d.VerifyChecksum(out, ipA, ipB) {
		t.Fatal("checksum does not verify")
	}
	out[9]++ // corrupt payload
	if d.VerifyChecksum(out, ipA, ipB) {
		t.Fatal("corrupted segment passed checksum")
	}
}

func TestTCPRoundTripChecksum(t *testing.T) {
	tc := &TCP{
		SrcPort: 443, DstPort: 55555, Seq: 0x01020304, Ack: 0x05060708,
		Flags: TCPSyn | TCPAck, Window: 65535,
		Options: []byte{2, 4, 5, 0xb4}, // MSS
	}
	tc.SetNetworkForChecksum(ipA, ipB)
	b := NewSerializeBuffer(64, 16)
	out, err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		tc, Payload([]byte("GET /")))
	if err != nil {
		t.Fatal(err)
	}
	var d TCP
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 443 || d.Seq != 0x01020304 || d.Flags != TCPSyn|TCPAck || d.Window != 65535 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(d.Options, []byte{2, 4, 5, 0xb4}) {
		t.Fatalf("options %v", d.Options)
	}
	if string(d.Payload()) != "GET /" {
		t.Fatalf("payload %q", d.Payload())
	}
	if !d.VerifyChecksum(out, ipA, ipB) {
		t.Fatal("checksum does not verify")
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	c := &ICMPv4{Type: ICMPv4EchoRequest, Rest: 0x00010002}
	b := NewSerializeBuffer(8, 8)
	out, err := Serialize(b, SerializeOptions{ComputeChecksums: true}, c, Payload([]byte("ping")))
	if err != nil {
		t.Fatal(err)
	}
	var d ICMPv4
	if err := d.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if d.Type != ICMPv4EchoRequest || d.Rest != 0x00010002 || string(d.Payload()) != "ping" {
		t.Fatalf("decoded %+v", d)
	}
	if Checksum(out, 0) != 0 {
		t.Fatal("ICMP checksum does not verify")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

// Property: the checksum of any buffer with its own checksum appended
// verifies to zero.
func TestPropertyChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		c := Checksum(data, 0)
		whole := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return Checksum(whole, 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPSpecBuild(t *testing.T) {
	p := UDPSpec{
		SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB,
		SrcPort: 5000, DstPort: 6000, FrameSize: 128,
	}.Build()
	if len(p) != 124 { // 128 minus FCS
		t.Fatalf("len = %d, want 124", len(p))
	}
	var eth Ethernet
	if err := eth.DecodeFromBytes(p); err != nil {
		t.Fatal(err)
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
		t.Fatal(err)
	}
	if !ip.VerifyChecksum(eth.Payload()) {
		t.Fatal("crafted IP checksum invalid")
	}
	var udp UDP
	if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatal(err)
	}
	if !udp.VerifyChecksum(ip.Payload(), ip.Src, ip.Dst) {
		t.Fatal("crafted UDP checksum invalid")
	}
	if udp.SrcPort != 5000 || udp.DstPort != 6000 {
		t.Fatalf("ports %d %d", udp.SrcPort, udp.DstPort)
	}
}

func TestTCPSpecBuild(t *testing.T) {
	p := TCPSpec{
		SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB,
		SrcPort: 80, DstPort: 2000, Flags: TCPSyn, Payload: []byte("x"),
	}.Build()
	var eth Ethernet
	var ip IPv4
	var tcp TCP
	if err := eth.DecodeFromBytes(p); err != nil {
		t.Fatal(err)
	}
	if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
		t.Fatal(err)
	}
	if err := tcp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatal(err)
	}
	if !tcp.VerifyChecksum(ip.Payload(), ip.Src, ip.Dst) {
		t.Fatal("crafted TCP checksum invalid")
	}
}

func TestExtractFlow(t *testing.T) {
	p := UDPSpec{
		SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1111, DstPort: 2222, FrameSize: 64,
	}.Build()
	f, ok := ExtractFlow(p)
	if !ok {
		t.Fatal("ExtractFlow failed")
	}
	if f.SrcIP4() != ipA || f.DstIP4() != ipB || f.Proto != ProtoUDP ||
		f.SrcPort != 1111 || f.DstPort != 2222 || f.V6 {
		t.Fatalf("flow %+v", f)
	}
}

func TestExtractFlowVLAN(t *testing.T) {
	inner := UDPSpec{
		SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB,
		SrcPort: 7, DstPort: 9, FrameSize: 64,
	}.Build()
	// Rebuild with a VLAN tag inserted.
	eth := &Ethernet{Dst: mac2, Src: mac1, EtherType: EtherTypeVLAN}
	vlan := &VLAN{ID: 42, EtherType: EtherTypeIPv4}
	b := NewSerializeBuffer(18, len(inner))
	out, err := Serialize(b, SerializeOptions{}, eth, vlan, Payload(inner[EthernetHeaderLen:]))
	if err != nil {
		t.Fatal(err)
	}
	f, ok := ExtractFlow(out)
	if !ok || f.SrcPort != 7 || f.DstPort != 9 {
		t.Fatalf("VLAN flow %+v ok=%v", f, ok)
	}
}

func TestExtractFlowNonIP(t *testing.T) {
	arp := &ARP{Op: ARPRequest, SenderHW: mac1, SenderIP: ipA, TargetIP: ipB}
	eth := &Ethernet{Dst: mac2, Src: mac1, EtherType: EtherTypeARP}
	b := NewSerializeBuffer(42, 0)
	out, _ := Serialize(b, SerializeOptions{}, eth, arp)
	if _, ok := ExtractFlow(out); ok {
		t.Fatal("ARP should have no flow")
	}
}

func TestExtractFlowFragment(t *testing.T) {
	p := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, FrameSize: 64}.Build()
	// Set a nonzero fragment offset; ports must be zeroed.
	ff := beU16(p[EthernetHeaderLen+6 : EthernetHeaderLen+8])
	putU16(p[EthernetHeaderLen+6:EthernetHeaderLen+8], ff|100)
	f, ok := ExtractFlow(p)
	if !ok {
		t.Fatal("fragment should still have a network flow")
	}
	if f.SrcPort != 0 || f.DstPort != 0 {
		t.Fatalf("fragment ports %d %d, want 0 0", f.SrcPort, f.DstPort)
	}
}

func TestExtractFlowAllocFree(t *testing.T) {
	p := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, FrameSize: 256}.Build()
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := ExtractFlow(p); !ok {
			t.Fatal("extract failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtractFlow allocates %v/op", allocs)
	}
}

func TestFlowHashProperties(t *testing.T) {
	p := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 1111, DstPort: 2222, FrameSize: 64}.Build()
	f, _ := ExtractFlow(p)
	r := f.Reverse()
	if f.Hash() == r.Hash() {
		t.Fatal("directional hash collided for reverse flow")
	}
	if f.SymmetricHash() != r.SymmetricHash() {
		t.Fatal("symmetric hash differs across directions")
	}
	if f.Reverse().Reverse() != f {
		t.Fatal("double reverse != identity")
	}
}

// Property: symmetric hash is invariant under reversal for arbitrary
// flows.
func TestPropertySymmetricHash(t *testing.T) {
	f := func(src, dst [4]byte, proto byte, sp, dp uint16) bool {
		fl := Flow{Proto: proto, SrcPort: sp, DstPort: dp}
		copy(fl.Src[:4], src[:])
		copy(fl.Dst[:4], dst[:])
		return fl.SymmetricHash() == fl.Reverse().SymmetricHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketDigest(t *testing.T) {
	p1 := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, FrameSize: 256}.Build()
	p2 := append([]byte{}, p1...)
	if PacketDigest(p1, 64) != PacketDigest(p2, 64) {
		t.Fatal("identical packets digest differently")
	}
	p2[100] = ^p2[100]
	if PacketDigest(p1, 64) != PacketDigest(p2, 64) {
		t.Fatal("digest over first 64B must ignore byte 100")
	}
	if PacketDigest(p1, 0) == PacketDigest(p1, 64) && len(p1) != 64 {
		t.Fatal("full digest should differ from 64B digest")
	}
	if PacketDigest(p1, 9999) != PacketDigest(p1, len(p1)) {
		t.Fatal("overlong n must clamp to packet length")
	}
}

func TestIPHelpers(t *testing.T) {
	if ipA.String() != "10.0.0.1" {
		t.Fatalf("IP4 String = %q", ipA.String())
	}
	if IP4FromUint32(ipB.Uint32()) != ipB {
		t.Fatal("IP4 uint32 round trip")
	}
	var v6 IP6
	v6[0], v6[15] = 0x20, 0x01
	if v6.String() != "2000:0:0:0:0:0:0:1" {
		t.Fatalf("IP6 String = %q", v6.String())
	}
}

func TestFlowString(t *testing.T) {
	p := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 5, DstPort: 6, FrameSize: 64}.Build()
	f, _ := ExtractFlow(p)
	if got := f.String(); got != "10.0.0.1:5 > 192.168.1.200:6/17" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkUDPSerialize(b *testing.B) {
	udp := &UDP{SrcPort: 1, DstPort: 2}
	udp.SetNetworkForChecksum(ipA, ipB)
	ip := &IPv4{TTL: 64, Proto: ProtoUDP, Src: ipA, Dst: ipB}
	eth := &Ethernet{Dst: mac2, Src: mac1, EtherType: EtherTypeIPv4}
	payload := Payload(make([]byte, 64))
	buf := NewSerializeBuffer(42, 64)
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Serialize(buf, opts, eth, ip, udp, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeStack(b *testing.B) {
	p := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, FrameSize: 512}.Build()
	var eth Ethernet
	var ip IPv4
	var udp UDP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := eth.DecodeFromBytes(p); err != nil {
			b.Fatal(err)
		}
		if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
			b.Fatal(err)
		}
		if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractFlow(b *testing.B) {
	p := UDPSpec{SrcMAC: mac1, DstMAC: mac2, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, FrameSize: 512}.Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ExtractFlow(p); !ok {
			b.Fatal("extract failed")
		}
	}
}
