package experiments

import (
	"fmt"

	"osnt/internal/fabric"
	"osnt/internal/gen"
	"osnt/internal/runner"
	"osnt/internal/shard"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// Shards, when non-zero, caps the shard axis of the sharded experiment
// (E20): a 2-core box can run `osnt-bench -e e20 -shards 2` and sweep
// only shards ∈ {1, 2}. The default (0) runs the full 1/2/4/8 axis,
// which is what the committed EXPERIMENTS.md and the CI drift gate use.
// Unlike Workers and TrainCap this knob removes rows rather than
// changing any — every row that remains is byte-identical at any
// setting, shards=1 included: sharding repartitions the event loop,
// never the simulation.
var Shards int

// e20ShardCounts is the full shard axis of E20.
var e20ShardCounts = []int{1, 2, 4, 8}

// e20LinkDelay is the per-cable propagation delay of the E20 fabric:
// every cable — host↔edge included — carries 1 µs, so any cut of the
// graph has a 1 µs conservative-lookahead budget and the pod-aligned
// partition steps in 1 µs safe windows. The delay is part of the
// physical scenario (the same fabric at every shard count), which is
// what makes the cross-shard digest comparison meaningful.
const e20LinkDelay = sim.Microsecond

// e20Load is the per-host offered load of every E20 point (the heavy
// end of the E19 sweep).
const e20Load = 0.9

// e20shardCounts returns the effective shard axis under the Shards cap.
func e20shardCounts() []int {
	if Shards <= 0 {
		return e20ShardCounts
	}
	counts := make([]int, 0, len(e20ShardCounts))
	for _, s := range e20ShardCounts {
		if s <= Shards || s == 1 {
			counts = append(counts, s)
		}
	}
	return counts
}

// e20Result is one sharded point's reduction, carried from the sweep
// to the serial formatting pass (where digests are compared across
// shard counts).
type e20Result struct {
	lm      *stats.LossMap
	lat     *stats.Histogram
	offered uint64
	digest  uint64
}

// fnvMix folds one 64-bit value into an FNV-1a digest byte by byte.
func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * prime
		v >>= 8
	}
	return h
}

const fnvOffset = 14695981039346656037

// e20Point runs one (k, matrix) point of the delayed fabric on a
// cluster of the given shard count and reduces it to loss, latency and
// a stream digest. The digest folds, per host in arrival order, each
// delivered frame's embedded send timestamp, its measured latency and
// its size, and then combines the per-host digests in host-index
// order — any reordering, retiming, loss or corruption anywhere in the
// fabric changes it. pointSeed must depend only on the scenario (not
// the shard count), so every shard count offers bit-identical traffic.
// delay is the per-cable propagation delay — the cut's lookahead
// budget, and therefore the barrier cadence of a sharded run.
func e20Point(duration sim.Duration, k int, matrix string, load float64, delay sim.Duration, pointSeed, shards int) e20Result {
	cl := shard.NewCluster(shards)
	defer cl.Close()
	spec := fabric.Spec{
		K:         k,
		LinkDelay: delay,
		Switch:    e15OverspeedLookup(switchsim.Config{}),
	}
	f := fabric.MustBuildPartitioned(cl.Partition(spec.PodShard(shards)), spec)

	// Per-host digest state and per-shard latency histograms: each is
	// written only from its owner shard's engine, so the windows run
	// race-free; the merge below happens after the final barrier.
	digests := make([]uint64, len(f.Hosts))
	lats := make([]*stats.Histogram, shards)
	for i := range lats {
		lats[i] = stats.NewHistogram()
	}
	for i := range f.Hosts {
		digests[i] = fnvOffset
		lat := lats[f.Shard(f.Hosts[i].Name)]
		d := &digests[i]
		f.HostPort(i).OnReceive = func(fr *wire.Frame, _ sim.Time, ts timing.Timestamp) {
			if t0, ok := gen.ExtractTimestamp(fr.Data, gen.DefaultTimestampOffset); ok {
				delta := ts.Sub(t0)
				lat.Record(int64(delta))
				*d = fnvMix(fnvMix(fnvMix(*d, uint64(t0)), uint64(delta)), uint64(fr.Size))
			}
		}
	}

	slot := wire.SerializationTime(e19FrameSize, f.Spec.Rate)
	srcs := f.Sources(e19Matrix(f, matrix), e19FrameSize)
	var gens []*gen.Generator
	for i, src := range srcs {
		if src == nil {
			continue
		}
		g, err := gen.New(f.HostPort(i), gen.Config{
			Source:         src,
			Spacing:        gen.Poisson{Mean: sim.Duration(float64(slot) / load)},
			EmbedTimestamp: true,
			Pool:           wire.DefaultPool,
			Seed:           runner.PointSeed(0xe20, pointSeed*256+i),
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		gens = append(gens, g)
	}
	cl.RunUntil(sim.Time(duration))
	var offered uint64
	for _, g := range gens {
		g.Stop()
		offered += g.Sent().Packets + g.Dropped()
	}
	cl.Run() // drain the fabric

	lat := lats[0]
	for _, h := range lats[1:] {
		lat.Merge(h)
	}
	digest := uint64(fnvOffset)
	for _, d := range digests {
		digest = fnvMix(digest, d)
	}
	return e20Result{
		lm:      stats.NewLossMap(offered, f.Delivered(), f.Drops()),
		lat:     lat,
		offered: offered,
		digest:  digest,
	}
}

// e20Runner is the shards × workers composition: every E20 point spins
// up to max-shards goroutines of its own, so the auto worker count
// divides GOMAXPROCS by that instead of oversubscribing.
func e20Runner() *runner.Runner {
	inner := 1
	for _, s := range e20shardCounts() {
		if s > inner {
			inner = s
		}
	}
	return runner.NewScaled(Workers, inner)
}

// E20ShardedFabric sweeps the E19 k=8 matrices over 1/2/4/8 shards on
// the 1 µs-delay fabric and proves, row by row, that partitioning the
// engine changes nothing: the digest column is a stream digest over
// every delivered frame's send timestamp, latency and size, and the
// match column compares it against the 1-shard reference of the same
// matrix. Wall-clock speedup is deliberately not a column (tables must
// be byte-identical across machines and worker counts); the shard
// scaling is measured by TestE20ShardSpeedup and the benchgate
// E20ShardScaling driver instead.
func E20ShardedFabric(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 400 * sim.Microsecond
	}
	const k = 8
	counts := e20shardCounts()
	tbl := &stats.Table{
		Title: "E20: sharded conservative-lookahead execution — E19's k=8 matrices at 1/2/4/8 shards (1µs cables, load 90%)",
		Columns: []string{"k", "matrix", "shards", "lookahead(µs)", "offered(Mpps)",
			"delivered(Mpps)", "loss(%)", "p99(µs)", "digest", "match"},
	}
	n := len(e19Matrices) * len(counts)
	results := runner.Sweep(e20Runner(), n, func(i int) e20Result {
		matrix := e19Matrices[i/len(counts)]
		shards := counts[i%len(counts)]
		// The point seed depends on the matrix alone: every shard count
		// replays bit-identical traffic.
		return e20Point(duration, k, matrix, e20Load, e20LinkDelay, i/len(counts), shards)
	})
	secs := duration.Seconds()
	for i, r := range results {
		matrix := e19Matrices[i/len(counts)]
		shards := counts[i%len(counts)]
		ref := results[(i/len(counts))*len(counts)] // the shards=1 point of this matrix
		match := "ref"
		if shards != 1 {
			match = fmt.Sprintf("%v", r.digest == ref.digest)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", k),
			matrix,
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%.1f", float64(e20LinkDelay)/1e6),
			fmt.Sprintf("%.3f", float64(r.offered)/secs/1e6),
			fmt.Sprintf("%.3f", float64(r.lm.Delivered)/secs/1e6),
			fmt.Sprintf("%.2f", r.lm.LossFraction()*100),
			fmt.Sprintf("%.2f", float64(r.lat.Percentile(99))/1e6),
			fmt.Sprintf("%016x", r.digest),
			match,
		)
	}
	return tbl
}

// e19ShardedLinkDelay is the per-cable delay of the E19-class benchgate
// workload. Wider than E20's 1 µs deliberately: the delay is the
// lookahead, so 5 µs cables mean one barrier per 5 µs of virtual time —
// the windowed run spends its time simulating, not synchronising, and
// the single-core overhead of a 4-shard run stays small enough that the
// partitioned (shallower) event heaps win outright even before a second
// core shows up.
const e19ShardedLinkDelay = 5 * sim.Microsecond

// E19FatTreeK4Sharded is the benchgate workload for the sharded engine:
// the same nine (matrix, load) points as E19FatTreeK4, on the same k=4
// fabric but with 5 µs cables, each point executed on a cluster of the
// given shard count (sweep points themselves run serially — benchgate
// pins Workers to 1 — so the measured speedup is the engine
// partitioning, not sweep parallelism). E19FatTreeK4 itself is
// untouched: its zero-delay fabric cannot be cut (a zero-delay
// cross-shard edge is a topo build error), and its table must stay
// byte-identical.
func E19FatTreeK4Sharded(duration sim.Duration, shards int) *stats.Table {
	if duration == 0 {
		duration = sim.Millisecond
	}
	tbl := &stats.Table{
		Title: fmt.Sprintf("E19-class sharded benchmark: k=4, 5µs cables, %d shards", shards),
		Columns: []string{"k", "matrix", "load(%)", "offered(Mpps)", "delivered(Mpps)",
			"loss(%)", "p99(µs)", "digest"},
	}
	perK := len(e19Matrices) * len(E19Loads)
	secs := duration.Seconds()
	tbl.Rows = sweeper().Rows(perK, func(i int) [][]string {
		matrix := e19Matrices[i/len(E19Loads)]
		load := E19Loads[i%len(E19Loads)]
		r := e20Point(duration, 4, matrix, load, e19ShardedLinkDelay, i, shards)
		return [][]string{{
			"4",
			matrix,
			fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%.3f", float64(r.offered)/secs/1e6),
			fmt.Sprintf("%.3f", float64(r.lm.Delivered)/secs/1e6),
			fmt.Sprintf("%.2f", r.lm.LossFraction()*100),
			fmt.Sprintf("%.2f", float64(r.lat.Percentile(99))/1e6),
			fmt.Sprintf("%016x", r.digest),
		}}
	})
	return tbl
}

// E20ShardMicroBench is the benchgate probe for shard scaling: one
// k=8 permutation point at 4 shards, returning its stream digest so
// the work cannot be elided.
func E20ShardMicroBench() uint64 {
	return e20Point(100*sim.Microsecond, 8, "permutation", e20Load, e20LinkDelay, 0, 4).digest
}
