// Package ofswitch simulates a production OpenFlow 1.0 switch — the
// device under test of the demo's Part II. It combines a hardware
// dataplane (flow table lookup at line rate, bounded egress queues) with
// the slow control-plane path that OFLOPS-turbo measures: a serial
// management CPU that processes protocol messages, and a hardware-install
// lag between a FLOW_MOD's control-plane acknowledgement and the instant
// the dataplane actually applies it. That lag is what makes "forwarding
// consistency during large flow table updates" a measurable phenomenon.
package ofswitch

import (
	"sort"

	"osnt/internal/openflow"
	"osnt/internal/sim"
)

// Entry is one installed flow.
type Entry struct {
	Match       openflow.Match
	Priority    uint16
	Cookie      uint64
	Actions     []openflow.Action
	IdleTimeout uint16
	HardTimeout uint16
	Flags       uint16

	InstalledAt sim.Time
	LastUsed    sim.Time
	Packets     uint64
	Bytes       uint64
}

// FlowTable is a priority-ordered OpenFlow 1.0 table with an optional
// exact-match hash fast path (the linear-scan-vs-hash ablation from
// DESIGN.md).
type FlowTable struct {
	// entries sorted by descending priority; stable insertion order
	// within equal priority.
	entries []*Entry
	// exact indexes exact-match entries by key when the fast path is on.
	exact map[openflow.Key]*Entry

	Cap          int
	UseExactPath bool

	lookups uint64
	hits    uint64
}

// NewFlowTable builds a table bounded to cap entries (0 = 65536).
func NewFlowTable(cap int, exactPath bool) *FlowTable {
	if cap == 0 {
		cap = 65536
	}
	t := &FlowTable{Cap: cap, UseExactPath: exactPath}
	if exactPath {
		t.exact = make(map[openflow.Key]*Entry)
	}
	return t
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns the entries in match order (highest priority first).
func (t *FlowTable) Entries() []*Entry { return t.entries }

// Stats returns lookup and hit counters.
func (t *FlowTable) Stats() (lookups, hits uint64) { return t.lookups, t.hits }

// Lookup returns the highest-priority entry covering the key, or nil.
func (t *FlowTable) Lookup(k *openflow.Key) *Entry {
	t.lookups++
	if t.UseExactPath {
		if e, ok := t.exact[*k]; ok {
			// A wildcard entry with strictly higher priority could still
			// shadow the exact entry; check the prefix of the scan.
			best := e
			for _, cand := range t.entries {
				if cand.Priority <= best.Priority {
					break
				}
				if cand.Match.Covers(k) {
					best = cand
					break
				}
			}
			t.hits++
			return best
		}
	}
	for _, e := range t.entries {
		if e.Match.Covers(k) {
			t.hits++
			return e
		}
	}
	return nil
}

// Add installs an entry following OFPFC_ADD semantics: an entry with an
// identical match and priority is replaced (counters reset). It reports
// false when the table is full.
func (t *FlowTable) Add(e *Entry) bool {
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match == e.Match {
			t.entries[i] = e
			t.reindex(old, e)
			return true
		}
	}
	if len(t.entries) >= t.Cap {
		return false
	}
	t.entries = append(t.entries, e)
	// Stable sort keeps insertion order among equal priorities.
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
	if t.exact != nil && e.Match.Exact() {
		t.exact[e.Match.ExactKey()] = e
	}
	return true
}

func (t *FlowTable) reindex(old, new *Entry) {
	if t.exact == nil {
		return
	}
	if old.Match.Exact() {
		delete(t.exact, old.Match.ExactKey())
	}
	if new != nil && new.Match.Exact() {
		t.exact[new.Match.ExactKey()] = new
	}
}

// Modify updates the actions of matching entries (OFPFC_MODIFY
// semantics: non-strict subsumption match; strict requires equal match
// and priority). It returns the number of entries changed; when none
// match and the command is a modify, the spec says act as an add — the
// caller handles that.
func (t *FlowTable) Modify(m openflow.Match, priority uint16, actions []openflow.Action, strict bool) int {
	n := 0
	for _, e := range t.entries {
		if strict {
			if e.Priority != priority || e.Match != m {
				continue
			}
		} else if !m.Subsumes(&e.Match) {
			continue
		}
		e.Actions = actions
		n++
	}
	return n
}

// Delete removes matching entries (strict or non-strict per OF 1.0) and
// returns them (so the control plane can emit FLOW_REMOVED).
func (t *FlowTable) Delete(m openflow.Match, priority uint16, outPort uint16, strict bool) []*Entry {
	var removed []*Entry
	keep := t.entries[:0]
	for _, e := range t.entries {
		match := false
		if strict {
			match = e.Priority == priority && e.Match == m
		} else {
			match = m.Subsumes(&e.Match)
		}
		if match && outPort != openflow.PortNone {
			match = outputsTo(e.Actions, outPort)
		}
		if match {
			removed = append(removed, e)
			t.reindex(e, nil)
		} else {
			keep = append(keep, e)
		}
	}
	// Zero the tail so removed entries do not linger in the backing
	// array.
	for i := len(keep); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = keep
	return removed
}

// Expired collects entries whose idle or hard timeout has elapsed at
// instant now, removing them from the table.
func (t *FlowTable) Expired(now sim.Time) []*Entry {
	var out []*Entry
	keep := t.entries[:0]
	for _, e := range t.entries {
		hard := e.HardTimeout > 0 &&
			now.Sub(e.InstalledAt) >= sim.Duration(e.HardTimeout)*sim.Second
		idle := e.IdleTimeout > 0 &&
			now.Sub(e.LastUsed) >= sim.Duration(e.IdleTimeout)*sim.Second
		if hard || idle {
			out = append(out, e)
			t.reindex(e, nil)
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = keep
	return out
}

func outputsTo(actions []openflow.Action, port uint16) bool {
	for _, a := range actions {
		if out, ok := a.(*openflow.ActionOutput); ok && out.Port == port {
			return true
		}
	}
	return false
}
