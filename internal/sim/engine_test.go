package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine Now = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine Pending = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final Now = %v, want 30", e.Now())
	}
}

func TestScheduleFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(40, func() {
		e.ScheduleAfter(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 45 {
		t.Fatalf("nested ScheduleAfter fired at %v, want 45", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	// Engine clock must not advance for cancelled work.
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v for cancelled event", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("RunUntil(25) fired %v, want [10 20]", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now after RunUntil(25) = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(40)
	if len(fired) != 4 {
		t.Fatalf("after second RunUntil fired %v, want all four", fired)
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(25, func() { fired = true })
	e.RunUntil(25)
	if !fired {
		t.Fatal("event exactly at the RunUntil bound did not fire")
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine()
	n := 0
	e.ScheduleEvery(0, 10, func() { n++ })
	e.RunFor(95)
	// t = 0, 10, ..., 90 → 10 firings.
	if n != 10 {
		t.Fatalf("ticker fired %d times in 95ps with period 10, want 10", n)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(10, func() { n++; e.Stop() })
	e.Schedule(20, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt Run: %d events fired", n)
	}
	e.Run()
	if n != 2 {
		t.Fatalf("Run after Stop did not resume: %d events fired", n)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.ScheduleEvery(0, 10, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
}

// Property: for any set of event times, the engine fires them in
// non-decreasing time order and the clock matches each event's time.
func TestPropertyEventOrder(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, off := range offsets {
			at := Time(off)
			e.Schedule(at, func() {
				if e.Now() != at {
					t.Errorf("callback at %v saw clock %v", at, e.Now())
				}
				seen = append(seen, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the calendar queue pops events in exactly the order the
// engine's heap would (time, then FIFO).
func TestPropertyCalendarQueueMatchesHeap(t *testing.T) {
	f := func(offsets []uint16) bool {
		cq := NewCalendarQueue(64, 100)
		heapEng := NewEngine()
		for _, off := range offsets {
			at := Time(off)
			cq.Push(at, nil)
			heapEng.Schedule(at, func() {})
		}
		var cqOrder []Time
		for ev := cq.Pop(); ev != nil; ev = cq.Pop() {
			cqOrder = append(cqOrder, ev.At())
		}
		var heapOrder []Time
		for heapEng.Step() {
			heapOrder = append(heapOrder, heapEng.Now())
		}
		if len(cqOrder) != len(heapOrder) {
			return false
		}
		for i := range cqOrder {
			if cqOrder[i] != heapOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2ns"},
		{6250, "6.25ns"},
		{3 * Microsecond, "3µs"},
		{15 * Millisecond, "15ms"},
		{2 * Second, "2s"},
		{-2 * Second, "-2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(2_500_000) // 2.5 µs
	if tm.Nanoseconds() != 2500 {
		t.Fatalf("Nanoseconds = %d, want 2500", tm.Nanoseconds())
	}
	if tm.Std() != 2500*time.Nanosecond {
		t.Fatalf("Std = %v", tm.Std())
	}
	if got := DurationOf(3 * time.Microsecond); got != 3*Microsecond {
		t.Fatalf("DurationOf = %v", got)
	}
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ≈1", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ≈0", mean)
	}
	if variance < 0.97 || variance > 1.03 {
		t.Fatalf("NormFloat64 variance = %v, want ≈1", variance)
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(17)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(10) value %d occurred %d/100000 times", v, c)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%64), func() {})
		e.Step()
	}
}

func BenchmarkHeapQueue(b *testing.B) {
	e := NewEngine()
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(r.Intn(10000)), func() {})
		if e.Pending() > 1024 {
			e.Step()
		}
	}
	for e.Step() {
	}
}

func BenchmarkCalendarQueue(b *testing.B) {
	q := NewCalendarQueue(1024, 16)
	r := NewRand(1)
	now := Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(now+Time(r.Intn(10000)), nil)
		if q.Len() > 1024 {
			ev := q.Pop()
			now = ev.At()
		}
	}
	for q.Pop() != nil {
	}
}

// BenchmarkEngineChurn is schedule/fire churn against a one-million-
// pending event heap: every step fires the head event, which immediately
// re-arms itself a pseudo-random span ahead, so the heap stays at 1M
// entries and every operation pays a full-depth sift. This is the shape
// a saturated fat-tree run drives the queue with, and the benchmark that
// pins the inlined-heap win over container/heap (steady state allocates
// nothing — the interface boxing of heap.Push/Pop would show up here as
// allocs/op).
func BenchmarkEngineChurn(b *testing.B) {
	const pending = 1 << 20
	e := NewEngine()
	evs := make([]*Event, pending)
	for i := range evs {
		i := i
		evs[i] = e.Schedule(Time(1+i), func() {
			e.RescheduleAfter(evs[i], Duration(1+uint64(i)*2654435761%100000))
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Step()
	}
}
